#!/usr/bin/env bash
# Smoke-fuzz every harness over the checked-in corpus.
#
# Usage: tools/run_fuzzers.sh <build-dir> [seconds-per-target]
#
# With a libFuzzer build (clang) each target explores for the given budget
# (-max_total_time); with the standalone driver (gcc) each target replays
# the corpus and then runs a fixed batch of mutations, time-boxed by the
# same budget. Any crash/OOM/timeout fails the script.
set -euo pipefail

build_dir=${1:?usage: tools/run_fuzzers.sh <build-dir> [seconds-per-target]}
build_dir=$(cd "$build_dir" && pwd)
budget=${2:-5}
repo_root=$(cd "$(dirname "$0")/.." && pwd)
corpus_root="$repo_root/fuzz/corpus"

targets=$(find "$build_dir/fuzz" -maxdepth 1 -name 'fuzz_*' -type f -perm -u+x | sort)
if [ -z "$targets" ]; then
  echo "run_fuzzers: no fuzz targets under $build_dir/fuzz" >&2
  echo "run_fuzzers: configure with -DGRAPHENE_BUILD_FUZZERS=ON" >&2
  exit 1
fi

# Detect driver flavor once: libFuzzer binaries answer -help=1.
flavor=standalone
if "$(echo "$targets" | head -1)" -help=1 2>/dev/null | grep -q max_total_time; then
  flavor=libfuzzer
fi
echo "run_fuzzers: driver=$flavor budget=${budget}s/target"

status=0
for target in $targets; do
  name=$(basename "$target")
  corpus="$corpus_root/$name"
  if [ ! -d "$corpus" ]; then
    echo "run_fuzzers: WARNING no corpus for $name (run gen_fuzz_corpus), fuzzing from nothing" >&2
    corpus=""
  fi
  workdir=$(mktemp -d)
  echo "=== $name"
  if [ "$flavor" = libfuzzer ]; then
    # -rss_limit_mb guards the unbounded-allocation class explicitly.
    (cd "$workdir" && "$target" -max_total_time="$budget" -timeout=10 -rss_limit_mb=2048 \
        ${corpus:+"$corpus"}) || status=1
  else
    # The standalone driver is not time-boxed internally; a generous batch
    # of mutations stays well inside the budget, and `timeout` catches
    # hangs the same way libFuzzer's -timeout would.
    (cd "$workdir" && timeout "$((budget * 4 + 30))" \
        "$target" -mutate=$((budget * 2000)) ${corpus:+"$corpus"}) || status=1
  fi
  if [ $status -ne 0 ]; then
    if [ -f "$workdir/.fuzz-last-input.bin" ]; then
      cp "$workdir/.fuzz-last-input.bin" "$repo_root/crash-$name.bin"
      echo "run_fuzzers: FAILED $name — reproducer saved to crash-$name.bin" >&2
    else
      echo "run_fuzzers: FAILED $name" >&2
    fi
    rm -rf "$workdir"
    exit $status
  fi
  rm -rf "$workdir"
done
echo "run_fuzzers: all targets clean"
