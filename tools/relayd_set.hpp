// Shared set derivation for the relay daemon CLIs.
//
// graphene_relayd and loadgen run in different processes, so they cannot
// hand each other an ItemSet — instead both derive their sets from the same
// (seed, items) pair: the daemon holds digests [0, items), the client drops
// the first `diff` of those and substitutes `diff` fresh ones, giving a
// symmetric difference of exactly 2*diff. Same flags on both sides, and the
// sessions reconcile end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "reconcile/types.hpp"
#include "util/random.hpp"

namespace graphene::tools {

inline std::vector<reconcile::ItemDigest> derive_digests(std::uint64_t seed,
                                                         std::uint64_t count) {
  util::Rng rng(seed);
  std::vector<reconcile::ItemDigest> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    reconcile::ItemDigest d;
    for (auto& byte : d) byte = static_cast<std::uint8_t>(rng.next());
    out.push_back(d);
  }
  return out;
}

inline reconcile::ItemSet host_set(std::uint64_t seed, std::uint64_t items) {
  reconcile::ItemSet out;
  out.reserve(items);
  for (const reconcile::ItemDigest& d : derive_digests(seed, items)) out.insert(d);
  return out;
}

inline reconcile::ItemSet client_set(std::uint64_t seed, std::uint64_t items,
                                     std::uint64_t diff) {
  if (diff > items) diff = items;
  const std::vector<reconcile::ItemDigest> base = derive_digests(seed, items);
  // Fresh replacements come from a distinct stream so they cannot collide
  // with any host digest.
  const std::vector<reconcile::ItemDigest> fresh =
      derive_digests(seed ^ 0x636c69656e74ULL, diff);
  reconcile::ItemSet out;
  out.reserve(items);
  for (std::uint64_t i = diff; i < items; ++i) out.insert(base[i]);
  for (const reconcile::ItemDigest& d : fresh) out.insert(d);
  return out;
}

}  // namespace graphene::tools
