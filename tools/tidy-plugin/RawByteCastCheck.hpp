// graphene-raw-byte-cast: byte-pointer reinterpretation outside src/util/.
//
// Casting an object pointer to char* / unsigned char* / uint8_t* /
// std::byte* (via reinterpret_cast or a C-style cast) starts an aliasing
// argument that must stay auditable in one place. The util::bytes helpers
// (ByteView, str_bytes, to_hex) are that place; everything else routes
// through them. Supersedes lint.py's rule 1, which pattern-matched the
// literal token `reinterpret_cast` and so missed C-style spellings.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::graphene {

class RawByteCastCheck : public ClangTidyCheck {
 public:
  RawByteCastCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::graphene
