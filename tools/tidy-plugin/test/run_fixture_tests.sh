#!/usr/bin/env bash
# Self-test for the graphene-* clang-tidy checks: every rule must fire on
# its seeded-violation fixture, stay silent on its clean fixture, and honor
# its directory exemption (fixtures replicate src/util/, src/obs/,
# src/testkit/ under the fixture tree).
#
# Usage: run_fixture_tests.sh [plugin.so] [--require]
#
#   plugin.so   path to GrapheneTidyModule.so; defaults to the common build
#               locations under the repo, then $GRAPHENE_TIDY_PLUGIN
#   --require   fail (exit 1) instead of skipping when clang-tidy or the
#               plugin is missing — CI passes this, developer machines
#               without clang get a notice and exit 0
set -euo pipefail

here=$(cd "$(dirname "$0")" && pwd)
repo_root=$(cd "$here/../../.." && pwd)

plugin="${GRAPHENE_TIDY_PLUGIN:-}"
require=0
for arg in "$@"; do
  case "$arg" in
    --require) require=1 ;;
    *) plugin="$arg" ;;
  esac
done
if [ -z "$plugin" ]; then
  for cand in \
    "$repo_root/build-tidy-plugin/libGrapheneTidyModule.so" \
    "$repo_root/build/tools/tidy-plugin/libGrapheneTidyModule.so" \
    "$here/../libGrapheneTidyModule.so"; do
    if [ -f "$cand" ]; then plugin="$cand"; break; fi
  done
fi

tidy_bin=${CLANG_TIDY:-clang-tidy}
missing=""
command -v "$tidy_bin" >/dev/null 2>&1 || missing="$tidy_bin not installed"
if [ -z "$missing" ] && [ ! -f "${plugin:-/nonexistent}" ]; then
  missing="plugin not built (cmake -S tools/tidy-plugin -B build-tidy-plugin && cmake --build build-tidy-plugin)"
fi
if [ -n "$missing" ]; then
  if [ "$require" = 1 ]; then
    echo "tidy-plugin fixtures: $missing" >&2
    exit 1
  fi
  echo "tidy-plugin fixtures: SKIP ($missing)"
  exit 0
fi

echo "tidy-plugin fixtures: $("$tidy_bin" --version | sed -n 's/^ *\(LLVM version.*\)/\1/p' | head -1)"
echo "tidy-plugin fixtures: plugin $plugin"

# Older clang-tidy silently ignores unknown names in -checks globs, which
# would turn a load failure into a sea of green — so first prove all four
# checks actually registered.
listed=$("$tidy_bin" --load "$plugin" --checks='-*,graphene-*' --list-checks 2>&1) || {
  echo "tidy-plugin fixtures: --load failed:" >&2
  echo "$listed" >&2
  exit 1
}
fail=0
for check in graphene-bounded-wire-read graphene-raw-byte-cast \
             graphene-raw-clock graphene-deterministic-rng; do
  if ! grep -q "$check" <<<"$listed"; then
    echo "FAIL: $check not registered by the plugin" >&2
    fail=1
  fi
done
[ "$fail" = 0 ] || exit 1

# run <file> <check> → clang-tidy output (never fails the script directly).
run_tidy() {
  "$tidy_bin" --load "$plugin" --checks="-*,$2" --quiet "$1" -- \
    -std=c++20 2>/dev/null || true
}

expect_warnings() {  # file check min_count
  local out n
  out=$(run_tidy "$1" "$2")
  n=$(grep -c "\[$2\]" <<<"$out" || true)
  if [ "$n" -lt "$3" ]; then
    echo "FAIL: expected >= $3 [$2] warnings in ${1#$here/}, got $n" >&2
    [ -n "$out" ] && sed 's/^/  | /' <<<"$out" >&2
    fail=1
  else
    echo "PASS: ${1#$here/} ($n x $2)"
  fi
}

expect_clean() {  # file check
  local out
  out=$(run_tidy "$1" "$2")
  if grep -q "\[$2\]" <<<"$out"; then
    echo "FAIL: expected no [$2] warnings in ${1#$here/}" >&2
    sed 's/^/  | /' <<<"$out" >&2
    fail=1
  else
    echo "PASS: ${1#$here/} (clean)"
  fi
}

fx="$here/fixtures"
expect_warnings "$fx/bounded-wire-read/violation.cpp" graphene-bounded-wire-read 4
expect_clean    "$fx/bounded-wire-read/clean.cpp"     graphene-bounded-wire-read

expect_warnings "$fx/raw-byte-cast/violation.cpp"        graphene-raw-byte-cast 3
expect_clean    "$fx/raw-byte-cast/clean.cpp"            graphene-raw-byte-cast
expect_clean    "$fx/raw-byte-cast/src/util/exempt.cpp"  graphene-raw-byte-cast

expect_warnings "$fx/raw-clock/violation.cpp"       graphene-raw-clock 3
expect_clean    "$fx/raw-clock/clean.cpp"           graphene-raw-clock
expect_clean    "$fx/raw-clock/src/obs/exempt.cpp"  graphene-raw-clock

expect_warnings "$fx/deterministic-rng/violation.cpp"          graphene-deterministic-rng 4
expect_clean    "$fx/deterministic-rng/clean.cpp"              graphene-deterministic-rng
expect_clean    "$fx/deterministic-rng/src/testkit/exempt.cpp" graphene-deterministic-rng

if [ "$fail" -ne 0 ]; then
  echo "tidy-plugin fixtures: FAILED" >&2
  exit 1
fi
echo "tidy-plugin fixtures: all checks fire on violations and stay silent on clean code"
