// Seeded violations for graphene-raw-byte-cast. Expected: 3 warnings
// (reinterpret_cast to const uint8_t*, C-style cast to char*,
// reinterpret_cast to std::byte*), each tagged [graphene-raw-byte-cast].
#include <cstddef>
#include <cstdint>

std::uint8_t first_byte(const std::uint32_t* words) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(words);  // WARN
  return p[0];
}

char first_char(double* d) {
  char* c = (char*)d;  // WARN: C-style spelling of the same aliasing cast
  return c[0];
}

std::byte first_std_byte(const int* v) {
  const auto* b = reinterpret_cast<const std::byte*>(v);  // WARN
  return b[0];
}
