// Path-exemption fixture: this file lives under a src/util/ directory, the
// one place byte-pointer aliasing is allowed (it is where util::bytes
// centralizes it). Expected: 0 warnings despite the casts.
#include <cstdint>

const std::uint8_t* str_bytes_like(const char* s) {
  return reinterpret_cast<const std::uint8_t*>(s);
}
