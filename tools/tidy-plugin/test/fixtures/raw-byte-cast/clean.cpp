// Clean counterpart for graphene-raw-byte-cast. Expected: 0 warnings.
#include <cstdint>
#include <cstring>

// memcpy through void* is the sanctioned way to move bytes across types.
std::uint32_t load_le32(const std::uint8_t* bytes) {
  std::uint32_t v = 0;
  std::memcpy(&v, bytes, sizeof(v));
  return v;
}

// Pointer casts to non-byte types are some other check's business.
const std::uint32_t* as_words(const void* p) {
  return static_cast<const std::uint32_t*>(p);
}

// Numeric casts that merely *mention* char are not byte-pointer aliasing.
char truncate(int v) { return (char)v; }
