// Seeded violations for graphene-bounded-wire-read. Self-contained stub of
// the util::ByteReader surface — the check matches reader primitives and
// varint helpers by name, so no repo headers are needed.
//
// Expected: 4 warnings (reserve, resize, assign, raw), each tagged
// [graphene-bounded-wire-read].
#include <cstdint>
#include <vector>

struct ByteReader {
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  void raw(std::uint64_t n);
  std::uint64_t remaining() const;
};
std::uint64_t read_varint(ByteReader&);
std::uint64_t read_varint_bounded(ByteReader&, std::uint64_t max, const char* what);

struct Msg {
  std::vector<std::uint64_t> ids;
  std::vector<std::uint8_t> payload;
  std::uint32_t size_bytes = 0;
};

Msg deserialize(ByteReader& r) {
  Msg m;
  // Same-line flow: raw read straight into a sizing call.
  const std::uint64_t count = r.u64();
  m.ids.reserve(count);  // WARN: unvalidated length reaches reserve

  // Unbounded varint is a taint source too.
  const std::uint64_t n = read_varint(r);
  m.ids.resize(n);  // WARN: unvalidated length reaches resize

  std::uint64_t words = r.u32();
  m.payload.assign(words, 0);  // WARN: unvalidated length reaches assign

  // The cross-statement flow lint.py's same-line regex could never see:
  // the claimed size lands in a member, is transformed two statements
  // later, and finally pads a raw() read.
  m.size_bytes = r.u32();
  const std::uint64_t body = m.size_bytes > 36 ? m.size_bytes - 36 : 0;
  r.raw(body);  // WARN: unvalidated length reaches raw
  return m;
}
