// Clean counterpart for graphene-bounded-wire-read: every length is either
// read through read_varint_bounded or guarded by an if-throw before it
// reaches a sizing call. Expected: 0 warnings.
#include <cstdint>
#include <vector>

struct ByteReader {
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  void raw(std::uint64_t n);
  std::uint64_t remaining() const;
};
std::uint64_t read_varint(ByteReader&);
std::uint64_t read_varint_bounded(ByteReader&, std::uint64_t max, const char* what);

constexpr std::uint64_t kMaxCollection = 1ULL << 24;
constexpr std::uint32_t kMaxTxWireSize = 1u << 22;

struct Msg {
  std::vector<std::uint64_t> ids;
  std::uint32_t size_bytes = 0;
};

Msg read_msg(ByteReader& r) {
  Msg m;
  // Bounded read: the helper validates before returning.
  const std::uint64_t count = read_varint_bounded(r, kMaxCollection, "count");
  m.ids.reserve(count);

  // Raw read, but validated by a guard that throws — the flow-aware check
  // clears the taint after the if.
  m.size_bytes = r.u32();
  if (m.size_bytes > kMaxTxWireSize) {
    throw "oversized";
  }
  const std::uint64_t body = m.size_bytes > 36 ? m.size_bytes - 36 : 0;
  r.raw(body);

  // Derived-comparison guard: validating `n * 8 > remaining()` validates n.
  std::uint64_t n = r.u64();
  if (n * 8 > r.remaining()) {
    throw "count exceeds buffer";
  }
  m.ids.resize(n);
  return m;
}

// Outside the deserializer naming scope: raw reads feeding sizing calls in
// arbitrary helpers are not this check's business.
void helper_not_in_scope(ByteReader& r) {
  std::vector<int> v;
  v.resize(r.u64());
}
