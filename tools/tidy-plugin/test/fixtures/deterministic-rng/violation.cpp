// Seeded violations for graphene-deterministic-rng. Expected: 4 warnings
// (random_device, unseeded mt19937, unseeded minstd_rand via the
// linear_congruential_engine template, std::rand), each tagged
// [graphene-deterministic-rng].
#include <cstdlib>
#include <random>

unsigned roll_entropy() {
  std::random_device rd;  // WARN: unreplayable entropy source
  return rd();
}

unsigned roll_unseeded() {
  std::mt19937 gen;  // WARN: implementation-defined default seed
  return static_cast<unsigned>(gen());
}

unsigned roll_unseeded_lcg() {
  std::minstd_rand lcg;  // WARN: same, different engine template
  return static_cast<unsigned>(lcg());
}

int roll_c_library() {
  return std::rand();  // WARN: hidden global state
}
