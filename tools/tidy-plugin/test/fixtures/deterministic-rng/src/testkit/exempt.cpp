// Path-exemption fixture: files under a src/testkit/ directory may touch
// real entropy — that is where fresh seeds are minted before being printed
// for replay. Expected: 0 warnings.
#include <random>

unsigned mint_seed() {
  std::random_device rd;
  return rd();
}
