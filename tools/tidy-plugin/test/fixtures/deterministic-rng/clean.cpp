// Clean counterpart for graphene-deterministic-rng: explicitly seeded
// engines replay, and copies/moves of an engine are not re-seeding.
// Expected: 0 warnings.
#include <cstdint>
#include <random>

std::uint64_t roll_seeded(std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  return gen();
}

std::uint64_t roll_copy(std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::mt19937_64 fork = gen;  // one-argument ctor: copy, not default-seed
  return fork();
}

std::uint64_t roll_distribution(std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_int_distribution<std::uint64_t> d(0, 5);  // not an engine
  return d(gen);
}
