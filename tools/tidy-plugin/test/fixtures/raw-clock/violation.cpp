// Seeded violations for graphene-raw-clock. Expected: 3 warnings (steady,
// system, high_resolution), each tagged [graphene-raw-clock].
#include <chrono>
#include <cstdint>

std::int64_t stamp_steady() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())  // WARN
      .count();
}

std::int64_t stamp_wall() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // WARN
}

auto stamp_hires() {
  return std::chrono::high_resolution_clock::now();  // WARN
}
