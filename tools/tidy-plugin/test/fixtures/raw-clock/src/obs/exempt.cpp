// Path-exemption fixture: files under a src/obs/ directory implement the
// clock abstraction itself and may read the real clock. Expected: 0
// warnings.
#include <chrono>
#include <cstdint>

std::int64_t monotonic_ns_like() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
