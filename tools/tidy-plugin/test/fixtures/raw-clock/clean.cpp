// Clean counterpart for graphene-raw-clock. Expected: 0 warnings.
#include <chrono>
#include <cstdint>

// Duration arithmetic without a clock read is fine.
std::int64_t to_ns(std::chrono::milliseconds ms) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(ms).count();
}

// A non-chrono now() must not trip the check: only std::chrono::*::now is
// a raw clock read.
struct FakeClock {
  std::int64_t now() const { return 42; }
};
std::int64_t fake_stamp(const FakeClock& c) { return c.now(); }
