#include "BoundedWireReadCheck.hpp"

#include "clang/AST/Decl.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/Stmt.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallPtrSet.h"

using namespace clang::ast_matchers;

namespace clang::tidy::graphene {

namespace {

bool is_raw_read_method(StringRef Name) {
  return Name == "u8" || Name == "u16" || Name == "u32" || Name == "u64";
}

bool is_sink_method(StringRef Name) {
  // resize/reserve/assign size containers; ByteReader::raw(n) consumes n
  // payload bytes and is how a claimed size pads a record.
  return Name == "resize" || Name == "reserve" || Name == "assign" ||
         Name == "raw";
}

/// Statement-ordered taint walk over one deserializer body. Deliberately not
/// a full CFG analysis: deserializers in this codebase are straight-line
/// code with guards, and a lint that over-approximates loops (taint is never
/// cleared inside one) is the right trade.
class TaintWalker {
 public:
  explicit TaintWalker(BoundedWireReadCheck &Check) : Check_(Check) {}

  void run(const Stmt *Body) { walk(Body); }

 private:
  // ---- taint state -------------------------------------------------------
  // Locals are keyed by VarDecl; struct members coarsely by FieldDecl (the
  // base object is ignored — two Transaction locals in one deserializer
  // share member taint, which only ever over-approximates).
  llvm::SmallPtrSet<const ValueDecl *, 16> Tainted_;

  /// The decl an lvalue expression names, or null.
  static const ValueDecl *referenced_decl(const Expr *E) {
    E = E->IgnoreParenImpCasts();
    if (const auto *DRE = dyn_cast<DeclRefExpr>(E)) return DRE->getDecl();
    if (const auto *ME = dyn_cast<MemberExpr>(E)) return ME->getMemberDecl();
    return nullptr;
  }

  bool is_tainted(const Expr *E) const {
    if (E == nullptr) return false;
    E = E->IgnoreParenImpCasts();
    if (const auto *DRE = dyn_cast<DeclRefExpr>(E))
      return Tainted_.count(DRE->getDecl()) != 0;
    if (const auto *ME = dyn_cast<MemberExpr>(E))
      return Tainted_.count(ME->getMemberDecl()) != 0;
    if (const auto *MC = dyn_cast<CXXMemberCallExpr>(E)) {
      if (const CXXMethodDecl *MD = MC->getMethodDecl())
        if (is_raw_read_method(MD->getName())) return true;
      return false;
    }
    if (const auto *CE = dyn_cast<CallExpr>(E)) {
      if (const FunctionDecl *FD = CE->getDirectCallee()) {
        // read_varint_bounded validates before returning; plain read_varint
        // hands back whatever the peer encoded.
        if (FD->getName() == "read_varint") return true;
      }
      return false;
    }
    if (const auto *BO = dyn_cast<BinaryOperator>(E))
      return is_tainted(BO->getLHS()) || is_tainted(BO->getRHS());
    if (const auto *CO = dyn_cast<ConditionalOperator>(E))
      return is_tainted(CO->getTrueExpr()) || is_tainted(CO->getFalseExpr());
    if (const auto *UO = dyn_cast<UnaryOperator>(E))
      return is_tainted(UO->getSubExpr());
    if (const auto *CA = dyn_cast<ExplicitCastExpr>(E))
      return is_tainted(CA->getSubExpr());
    return false;
  }

  // ---- guards ------------------------------------------------------------

  /// True when the branch unconditionally leaves the function or throws
  /// (anywhere inside it — a guard body is small, over-matching is fine).
  static bool branch_exits(const Stmt *S) {
    if (S == nullptr) return false;
    if (isa<CXXThrowExpr>(S) || isa<ReturnStmt>(S)) return true;
    for (const Stmt *Child : S->children())
      if (branch_exits(Child)) return true;
    return false;
  }

  /// Clears taint from every decl that appears inside a comparison in the
  /// guard condition: `if (tx.size_bytes > kMax) throw ...` validates
  /// tx.size_bytes for everything after the if.
  void clear_compared_decls(const Expr *Cond) {
    if (Cond == nullptr) return;
    const Expr *E = Cond->IgnoreParenImpCasts();
    if (const auto *BO = dyn_cast<BinaryOperator>(E)) {
      if (BO->isComparisonOp()) {
        clear_operand(BO->getLHS());
        clear_operand(BO->getRHS());
        return;
      }
      clear_compared_decls(BO->getLHS());
      clear_compared_decls(BO->getRHS());
      return;
    }
    if (const auto *UO = dyn_cast<UnaryOperator>(E)) {
      clear_compared_decls(UO->getSubExpr());
      return;
    }
    // `!(a > 0 && a <= cap)` style guards hide the comparisons one call or
    // cast deeper; descend through anything else generically.
    for (const Stmt *Child : E->children())
      if (const auto *CE = dyn_cast_or_null<Expr>(Child))
        clear_compared_decls(CE);
  }

  void clear_operand(const Expr *Op) {
    if (Op == nullptr) return;
    Op = Op->IgnoreParenImpCasts();
    if (const ValueDecl *D = referenced_decl(Op)) {
      Tainted_.erase(D);
      return;
    }
    // Comparisons of derived values (`count * kTxBytes > remaining()`)
    // validate the decls inside the arithmetic.
    for (const Stmt *Child : Op->children())
      if (const auto *CE = dyn_cast_or_null<Expr>(Child)) clear_operand(CE);
  }

  // ---- sinks -------------------------------------------------------------

  void scan_for_sinks(const Expr *E) {
    if (E == nullptr) return;
    if (const auto *MC = dyn_cast<CXXMemberCallExpr>(E->IgnoreParenImpCasts())) {
      const CXXMethodDecl *MD = MC->getMethodDecl();
      if (MD != nullptr && is_sink_method(MD->getName())) {
        for (const Expr *Arg : MC->arguments()) {
          if (is_tainted(Arg)) {
            Check_.diag(MC->getExprLoc(),
                        "length from an unbounded wire read reaches '%0'; "
                        "read it with util::read_varint_bounded or guard it "
                        "against a util::wire limit first")
                << MD->getName();
            break;
          }
        }
      }
    }
    for (const Stmt *Child : E->children())
      if (const auto *CE = dyn_cast_or_null<Expr>(Child)) scan_for_sinks(CE);
  }

  // ---- statement walk ----------------------------------------------------

  void process_expr(const Expr *E) {
    scan_for_sinks(E);
    const Expr *Stripped = E->IgnoreParenImpCasts();
    if (const auto *BO = dyn_cast<BinaryOperator>(Stripped)) {
      if (BO->isAssignmentOp()) {
        if (const ValueDecl *D = referenced_decl(BO->getLHS())) {
          if (BO->getOpcode() == BO_Assign && !is_tainted(BO->getRHS()))
            Tainted_.erase(D);
          else if (is_tainted(BO->getRHS()))
            Tainted_.insert(D);
        }
      }
    }
  }

  void walk(const Stmt *S) {
    if (S == nullptr) return;
    if (const auto *DS = dyn_cast<DeclStmt>(S)) {
      for (const Decl *D : DS->decls()) {
        if (const auto *VD = dyn_cast<VarDecl>(D)) {
          if (VD->hasInit()) {
            scan_for_sinks(VD->getInit());
            if (is_tainted(VD->getInit())) Tainted_.insert(VD);
          }
        }
      }
      return;
    }
    if (const auto *If = dyn_cast<IfStmt>(S)) {
      scan_for_sinks(If->getCond());
      const bool Guards = branch_exits(If->getThen()) ||
                          (If->getElse() != nullptr && branch_exits(If->getElse()));
      walk(If->getThen());
      walk(If->getElse());
      if (Guards) clear_compared_decls(If->getCond());
      return;
    }
    if (const auto *E = dyn_cast<Expr>(S)) {
      process_expr(E);
      return;
    }
    if (const auto *Ret = dyn_cast<ReturnStmt>(S)) {
      if (Ret->getRetValue() != nullptr) scan_for_sinks(Ret->getRetValue());
      return;
    }
    // Compound statements, loops, switches: children in source order. Loop
    // bodies run with the pre-loop state and never clear taint (a guard
    // inside an earlier iteration proves nothing about the next read).
    for (const Stmt *Child : S->children()) walk(Child);
  }

  BoundedWireReadCheck &Check_;
};

}  // namespace

void BoundedWireReadCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      functionDecl(isDefinition(),
                   matchesName("::(deserialize|read_[A-Za-z0-9_]+|"
                               "decode_[A-Za-z0-9_]+)$"))
          .bind("func"),
      this);
}

void BoundedWireReadCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
  if (Func == nullptr || !Func->hasBody()) return;
  TaintWalker Walker(*this);
  Walker.run(Func->getBody());
}

}  // namespace clang::tidy::graphene
