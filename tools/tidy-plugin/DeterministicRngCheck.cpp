#include "DeterministicRngCheck.hpp"

#include "GrapheneTidyUtil.hpp"
#include "clang/AST/Decl.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::graphene {

namespace {
constexpr char kExemptDir[] = "/src/testkit/";
}  // namespace

void DeterministicRngCheck::registerMatchers(MatchFinder *Finder) {
  // Entropy source: any construction of std::random_device.
  Finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(
                           ofClass(hasName("::std::random_device")))))
          .bind("random-device"),
      this);
  // C library RNG: globally-seeded hidden state.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::rand", "::srand", "::std::rand", "::std::srand",
                   "::random", "::srandom", "::rand_r", "::drand48"))))
          .bind("c-rand"),
      this);
  // Default-constructed standard engines run from an implementation-defined
  // seed. Zero arguments singles out the default constructor — seeded
  // construction, copies, and moves all carry a real argument; the
  // default-arg form covers standard libraries that still spell the default
  // constructor as `explicit engine(result_type s = default_seed)`. The
  // adaptor templates are included because default-constructing an adaptor
  // default-constructs its base engine.
  Finder->addMatcher(
      cxxConstructExpr(
          anyOf(argumentCountIs(0), hasArgument(0, cxxDefaultArgExpr())),
          hasDeclaration(cxxConstructorDecl(ofClass(hasAnyName(
              "::std::mersenne_twister_engine",
              "::std::linear_congruential_engine",
              "::std::subtract_with_carry_engine",
              "::std::discard_block_engine",
              "::std::independent_bits_engine",
              "::std::shuffle_order_engine")))))
          .bind("unseeded-engine"),
      this);
}

void DeterministicRngCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  if (const auto *RD = Result.Nodes.getNodeAs<CXXConstructExpr>("random-device")) {
    if (in_exempt_dir(SM, RD->getBeginLoc(), kExemptDir)) return;
    diag(RD->getBeginLoc(),
         "std::random_device outside src/testkit/ makes a run unreplayable; "
         "take an explicit seed and use util::Rng");
    return;
  }
  if (const auto *CR = Result.Nodes.getNodeAs<CallExpr>("c-rand")) {
    if (in_exempt_dir(SM, CR->getBeginLoc(), kExemptDir)) return;
    diag(CR->getBeginLoc(),
         "C library RNG has hidden global state; use util::Rng with an "
         "explicit seed");
    return;
  }
  if (const auto *UE = Result.Nodes.getNodeAs<CXXConstructExpr>("unseeded-engine")) {
    if (in_exempt_dir(SM, UE->getBeginLoc(), kExemptDir)) return;
    diag(UE->getBeginLoc(),
         "default-constructed random engine runs from an implementation "
         "seed; pass the seed explicitly (or use util::Rng)");
  }
}

}  // namespace clang::tidy::graphene
