#include "RawByteCastCheck.hpp"

#include "GrapheneTidyUtil.hpp"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/Type.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::graphene {

namespace {

/// Pointer-to-byte destination: char*, unsigned char*, signed char*,
/// std::byte*, and typedefs thereof (uint8_t canonicalizes to unsigned
/// char). Pointers to wider types are some other check's business.
bool is_byte_pointer(QualType T) {
  const QualType Canon = T.getCanonicalType();
  if (!Canon->isPointerType()) return false;
  const QualType Pointee = Canon->getPointeeType();
  return Pointee->isCharType() || Pointee->isStdByteType();
}

}  // namespace

void RawByteCastCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(cxxReinterpretCastExpr().bind("cast"), this);
  Finder->addMatcher(cStyleCastExpr().bind("cast"), this);
}

void RawByteCastCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Cast = Result.Nodes.getNodeAs<ExplicitCastExpr>("cast");
  if (Cast == nullptr) return;
  if (!is_byte_pointer(Cast->getTypeAsWritten())) return;
  // Only pointer reinterpretation is the aliasing hazard; (char*)0 or an
  // integer-to-pointer cast is caught by other diagnostics.
  if (!Cast->getSubExpr()->getType().getCanonicalType()->isPointerType())
    return;
  if (in_exempt_dir(*Result.SourceManager, Cast->getBeginLoc(), "/src/util/"))
    return;
  diag(Cast->getBeginLoc(),
       "raw byte-pointer cast outside src/util/; go through the util::bytes "
       "helpers (ByteView / str_bytes) so aliasing stays in one audited "
       "place");
}

}  // namespace clang::tidy::graphene
