// graphene-raw-clock: std::chrono clock reads outside src/obs/.
//
// Every timestamp in the library flows through obs::monotonic_ns so tests
// can pin time with obs::ScopedFakeClock; a direct steady_clock::now() is
// invisible to the fake clock and makes timing-dependent behavior
// untestable. Supersedes lint.py's rule 4 (token match on `::now(`), which
// could not tell a chrono clock from any other now() method.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::graphene {

class RawClockCheck : public ClangTidyCheck {
 public:
  RawClockCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::graphene
