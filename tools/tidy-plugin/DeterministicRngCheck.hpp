// graphene-deterministic-rng: nondeterministic randomness outside
// src/testkit/.
//
// Every experiment in the reproduction must replay from a printed seed
// (ROADMAP: determinism is a tier-1 property; the fault harness and the
// simulator both key their schedules on explicit seeds). std::random_device,
// C rand()/srand(), and default-constructed (therefore
// implementation-seeded) standard engines all break that. util::Rng with an
// explicit seed is the sanctioned source; src/testkit/ may touch entropy to
// *generate* seeds.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::graphene {

class DeterministicRngCheck : public ClangTidyCheck {
 public:
  DeterministicRngCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::graphene
