// Out-of-tree clang-tidy module bundling the graphene-* checks.
//
// Built as a MODULE library with undefined symbols left for the host
// clang-tidy binary to satisfy at --load time, which is why the plugin must
// be compiled against the same major LLVM release as the clang-tidy that
// loads it (the CI leg installs both from one distro snapshot). See
// README.md for the check catalog and tools/run_clang_tidy.sh for how the
// sweep loads it.
#include "BoundedWireReadCheck.hpp"
#include "DeterministicRngCheck.hpp"
#include "RawByteCastCheck.hpp"
#include "RawClockCheck.hpp"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy {
namespace graphene {

class GrapheneTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<BoundedWireReadCheck>(
        "graphene-bounded-wire-read");
    CheckFactories.registerCheck<RawByteCastCheck>("graphene-raw-byte-cast");
    CheckFactories.registerCheck<RawClockCheck>("graphene-raw-clock");
    CheckFactories.registerCheck<DeterministicRngCheck>(
        "graphene-deterministic-rng");
  }
};

}  // namespace graphene

static ClangTidyModuleRegistry::Add<graphene::GrapheneTidyModule>
    X("graphene-module", "Wire-hardening and determinism checks for the "
                         "Graphene reproduction.");

// Referenced (nowhere) to defeat linkers that would drop the registration
// static above from an otherwise symbol-free module.
volatile int GrapheneTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
