// graphene-bounded-wire-read: flow-aware guard over length fields read from
// the untrusted wire.
//
// Inside any function named deserialize / read_* / decode_*, a value that
// originates from a raw reader primitive (ByteReader::u8/u16/u32/u64 or the
// unbounded util::read_varint) is *tainted*. Taint follows assignments into
// locals and members, and through arithmetic. It is cleared by
//   * reading through util::read_varint_bounded instead, or
//   * a validation guard: `if (<comparison involving the value>) throw/return`.
// A tainted value reaching a size-consuming sink — resize / reserve / assign
// / ByteReader::raw — is diagnosed.
//
// This supersedes lint.py's rule 3 ("unchecked resize from reader"), which
// could only see source and sink on the same line. The motivating true
// positive was read_full_tx (src/graphene/messages.cpp): `tx.size_bytes =
// r.u32();` on one line, the padded `r.raw(body)` two statements later.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::graphene {

class BoundedWireReadCheck : public ClangTidyCheck {
 public:
  BoundedWireReadCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::graphene
