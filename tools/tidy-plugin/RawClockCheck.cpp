#include "RawClockCheck.hpp"

#include <string>

#include "GrapheneTidyUtil.hpp"
#include "clang/AST/Decl.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::graphene {

void RawClockCheck::registerMatchers(MatchFinder *Finder) {
  // now() on the chrono clocks is a static member, so the call is a plain
  // CallExpr; the qualified-name test in check() keeps unrelated now()
  // methods (TraceSpan::now, a future Timer::now) out of scope.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasName("now")))).bind("call"), this);
}

void RawClockCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  if (Call == nullptr) return;
  const FunctionDecl *Callee = Call->getDirectCallee();
  if (Callee == nullptr) return;
  // std::string::rfind(_, 0), not StringRef::starts_with: the latter was
  // renamed between the LLVM versions this plugin supports.
  const std::string Qualified = Callee->getQualifiedNameAsString();
  if (Qualified.rfind("std::chrono::", 0) != 0) return;
  if (in_exempt_dir(*Result.SourceManager, Call->getBeginLoc(), "/src/obs/"))
    return;
  diag(Call->getBeginLoc(),
       "raw std::chrono clock read outside src/obs/; use obs::monotonic_ns "
       "so ScopedFakeClock can pin time in tests");
}

}  // namespace clang::tidy::graphene
