// Shared helpers for the graphene clang-tidy checks.
//
// Compatibility note: this plugin compiles against clang-tidy 14 through 19.
// Stick to the stable core API — ClangTidyCheck, MatchFinder, the AST node
// classes — and avoid OptionsView (its return types changed across releases)
// and matcher names added after 14.
#pragma once

#include <string>

#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang::tidy::graphene {

/// True when `Loc` (after macro expansion) lives under a directory whose
/// path contains `NeedleDir` (e.g. "/src/util/"). The checks use directory
/// containment — not check options — to express their exemptions, so the
/// policy is identical everywhere the plugin loads and the fixture tree can
/// exercise it by replicating the directory name (see test/fixtures/).
inline bool in_exempt_dir(const SourceManager &SM, SourceLocation Loc,
                          llvm::StringRef NeedleDir) {
  if (Loc.isInvalid()) return false;
  std::string File = SM.getFilename(SM.getExpansionLoc(Loc)).str();
  for (char &C : File) {
    if (C == '\\') C = '/';
  }
  return llvm::StringRef(File).contains(NeedleDir);
}

}  // namespace clang::tidy::graphene
