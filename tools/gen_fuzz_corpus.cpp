// Seeds the fuzz corpus with real serialized messages.
//
// Usage: gen_fuzz_corpus <corpus-root>
//
// Emits, per harness, a handful of wire buffers produced by the actual
// serializers at several protocol scales — the same bytes the simulator
// would put on a socket — so coverage-guided fuzzing starts from deep in
// the accepting paths instead of rediscovering the framing byte by byte.
// The outputs are deterministic (fixed seeds); regenerate and re-commit
// whenever a wire format changes.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <tuple>

#include "bloom/cuckoo_filter.hpp"
#include "bloom/golomb_set.hpp"
#include "chain/transaction.hpp"
#include "daemon/wire.hpp"
#include "graphene/messages.hpp"
#include "net/frame.hpp"
#include "iblt/coded_symbol.hpp"
#include "iblt/strata_estimator.hpp"
#include "reconcile/graphene_backend.hpp"
#include "reconcile/rateless_backend.hpp"
#include "reconcile/types.hpp"
#include "util/random.hpp"
#include "util/varint.hpp"

namespace {

using namespace graphene;

std::filesystem::path g_root;

void emit(const std::string& harness, const std::string& name, const util::Bytes& bytes) {
  const std::filesystem::path dir = g_root / harness;
  std::filesystem::create_directories(dir);
  // fwrite takes void*, which std::uint8_t* converts to implicitly — no cast.
  std::FILE* out = std::fopen((dir / (name + ".bin")).string().c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "gen_fuzz_corpus: cannot open %s\n",
                 (dir / (name + ".bin")).string().c_str());
    std::exit(1);
  }
  if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), out);
  std::fclose(out);
}

util::Bytes prefix_byte(std::uint8_t b, const util::Bytes& rest) {
  util::Bytes out;
  out.reserve(1 + rest.size());
  out.push_back(b);
  out.insert(out.end(), rest.begin(), rest.end());
  return out;
}

bloom::BloomFilter sample_filter(util::Rng& rng, std::uint64_t items, double fpr,
                                 bloom::HashStrategy strategy =
                                     bloom::HashStrategy::kSplitDigest) {
  bloom::BloomFilter f(items, fpr, rng.next(), strategy);
  for (std::uint64_t i = 0; i < items; ++i) {
    const auto id = chain::make_random_transaction(rng).id;
    f.insert(util::ByteView(id.data(), id.size()));
  }
  return f;
}

iblt::Iblt sample_iblt(util::Rng& rng, std::uint32_t k, std::uint64_t cells,
                       std::uint64_t items) {
  iblt::Iblt t(iblt::IbltParams{k, cells}, rng.next());
  for (std::uint64_t i = 0; i < items; ++i) t.insert(rng.next());
  return t;
}

std::vector<chain::Transaction> sample_txs(util::Rng& rng, std::size_t count) {
  std::vector<chain::Transaction> txs;
  txs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    chain::Transaction tx = chain::make_random_transaction(rng);
    tx.size_bytes = 150 + static_cast<std::uint32_t>(rng.below(400));
    txs.push_back(tx);
  }
  return txs;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  g_root = argv[1];
  util::Rng rng(0x5eedc0de);

  // bytereader: an op script length, script bytes, then varint-rich payload.
  {
    util::ByteWriter w;
    w.u8(6);
    for (int op : {0, 5, 2, 7, 6, 3}) w.u8(static_cast<std::uint8_t>(op));
    util::write_varint(w, 0xfc);
    util::write_varint(w, 0xfd);
    util::write_varint(w, 0x10000);
    util::write_varint(w, 0x100000000ULL);
    w.u64(rng.next());
    emit("fuzz_bytereader", "seed-varints", w.take());
  }

  // Standalone structures at three representative scales each.
  for (const auto& [tag, items] :
       {std::pair<const char*, std::uint64_t>{"small", 20},
        {"medium", 500},
        {"large", 5000}}) {
    emit("fuzz_bloom_filter", std::string("seed-") + tag,
         sample_filter(rng, items, 0.02).serialize());
    emit("fuzz_iblt", std::string("seed-") + tag,
         sample_iblt(rng, 4, items / 4 + 8, items / 10 + 2).serialize());
  }
  emit("fuzz_bloom_filter", "seed-degenerate", bloom::BloomFilter(0, 1.0).serialize());
  // Blocked-layout headers (strategy byte 0xC0|k) at both scales the
  // bounded deserializer branches on, so the fuzzer starts from valid
  // whole-block filters and mutates toward the header edge cases.
  emit("fuzz_bloom_filter", "seed-blocked-small",
       sample_filter(rng, 30, 0.02, bloom::HashStrategy::kBlocked).serialize());
  emit("fuzz_bloom_filter", "seed-blocked-large",
       sample_filter(rng, 4000, 0.005, bloom::HashStrategy::kBlocked).serialize());

  {
    std::vector<util::Bytes> digests;
    for (int i = 0; i < 200; ++i) {
      const auto id = chain::make_random_transaction(rng).id;
      digests.emplace_back(id.begin(), id.end());
    }
    emit("fuzz_golomb_set", "seed-200", bloom::GolombSet(digests, 0.01, rng.next()).serialize());
  }
  {
    bloom::CuckooFilter cf(300, 0.02, rng.next());
    for (int i = 0; i < 250; ++i) {
      const auto id = chain::make_random_transaction(rng).id;
      cf.insert(util::ByteView(id.data(), id.size()));
    }
    emit("fuzz_cuckoo_filter", "seed-300", cf.serialize());
  }
  {
    iblt::StrataEstimator est(/*universe_hint=*/1u << 16);
    for (int i = 0; i < 400; ++i) est.insert(rng.next());
    emit("fuzz_strata_estimator", "seed-400", est.serialize());
  }

  // Protocol messages, as a sender/receiver pair would emit them.
  for (const auto& [tag, n] : {std::pair<const char*, std::size_t>{"small", 30},
                               {"medium", 400}}) {
    const auto txs = sample_txs(rng, n);

    core::GrapheneBlockMsg blk;
    blk.n = n;
    blk.shortid_salt = rng.next();
    blk.filter_s = sample_filter(rng, n, 0.005,
                                 n % 2 == 0 ? bloom::HashStrategy::kBlocked
                                            : bloom::HashStrategy::kSplitDigest);
    blk.iblt_i = sample_iblt(rng, 4, n / 5 + 8, n / 20 + 2);
    emit("fuzz_graphene_block", std::string("seed-") + tag, blk.serialize());

    core::GrapheneRequestMsg req;
    req.z = n + 40;
    req.b = 6;
    req.y_star = 12;
    req.fpr_r = 0.05;
    req.reversed = (n > 100);
    req.filter_r = sample_filter(rng, n + 40, 0.05);
    emit("fuzz_graphene_request", std::string("seed-") + tag, req.serialize());

    core::GrapheneResponseMsg resp;
    resp.missing = sample_txs(rng, 4);
    resp.iblt_j = sample_iblt(rng, 4, 24, 5);
    if (n > 100) resp.filter_f = sample_filter(rng, n, 0.1);
    emit("fuzz_graphene_response", std::string("seed-") + tag, resp.serialize());

    core::RepairRequestMsg rreq;
    for (std::size_t i = 0; i < n / 10 + 1; ++i) rreq.short_ids.push_back(rng.next());
    emit("fuzz_repair", std::string("seed-req-") + tag, prefix_byte(0, rreq.serialize()));

    core::RepairResponseMsg rresp;
    rresp.txns = sample_txs(rng, n / 10 + 1);
    emit("fuzz_repair", std::string("seed-resp-") + tag, prefix_byte(1, rresp.serialize()));
  }

  // Rateless backend messages: a symbol-bearing chunk at two stream offsets
  // plus a continuation ask (first byte routes, as in fuzz_repair). Own Rng
  // so inserting this section left every older seed byte-identical.
  util::Rng rateless_rng(0x247e1e55);
  for (const auto& [tag, items, start, symbols] :
       {std::tuple<const char*, int, std::uint64_t, int>{"small", 40, 0, 12},
        {"deep", 800, 96, 48}}) {
    reconcile::RatelessChunk chunk;
    chunk.start = start;
    chunk.host_count = static_cast<std::uint64_t>(items);
    chunk.salt = rateless_rng.next();
    iblt::RatelessEncoder enc(chunk.salt);
    for (int i = 0; i < items; ++i) {
      const auto id = chain::make_random_transaction(rateless_rng).id;
      reconcile::ItemDigest d;
      std::copy(id.begin(), id.end(), d.begin());
      enc.add_item(d);
    }
    chunk.set_checksum = enc.set_checksum();
    for (std::uint64_t i = 0; i < start; ++i) (void)enc.next_symbol();
    for (int i = 0; i < symbols; ++i) chunk.symbols.push_back(enc.next_symbol());
    emit("fuzz_rateless_chunk", std::string("seed-chunk-") + tag,
         prefix_byte(0, chunk.serialize()));

    reconcile::RatelessNeed need;
    need.next_index = start + static_cast<std::uint64_t>(symbols);
    need.count = static_cast<std::uint64_t>(symbols) * 2;
    emit("fuzz_rateless_chunk", std::string("seed-need-") + tag,
         prefix_byte(1, need.serialize()));
  }

  // Framing reader: the first byte is the chunk-size hint the harness reads,
  // the rest a raw TCP stream. Seeds cover a lone control frame, a coalesced
  // multi-frame session transcript, a mid-frame truncation, and a rateless
  // exchange. Own Rng so inserting this section left every older seed
  // byte-identical.
  {
    util::Rng frame_rng(0x66726d65);
    const auto framed = [](net::MessageType type, const util::Bytes& payload) {
      return net::encode_frame(net::Message{type, payload});
    };

    daemon::HelloMsg hello;
    hello.backend = 0;
    hello.item_count = 30;
    emit("fuzz_frame", "seed-hello",
         prefix_byte(17, framed(net::MessageType::kDaemonHello, hello.serialize())));

    // One full session as it coalesces on the wire: hello, the offer the
    // daemon answers with, the client's bye, and a typed error frame.
    core::GrapheneBlockMsg blk;
    blk.n = 30;
    blk.shortid_salt = frame_rng.next();
    blk.filter_s = sample_filter(frame_rng, 30, 0.02);
    blk.iblt_i = sample_iblt(frame_rng, 4, 16, 4);
    daemon::ByeMsg bye;
    bye.ok = 1;
    bye.rounds = 2;
    daemon::ErrorMsg err;
    err.code = daemon::ErrorCode::kLimit;
    err.detail = "daemon: session message cap";
    util::Bytes stream;
    for (const util::Bytes& frame :
         {framed(net::MessageType::kDaemonHello, hello.serialize()),
          framed(net::MessageType::kGrapheneBlock, blk.serialize()),
          framed(net::MessageType::kDaemonBye, bye.serialize()),
          framed(net::MessageType::kDaemonError, err.serialize())}) {
      stream.insert(stream.end(), frame.begin(), frame.end());
    }
    emit("fuzz_frame", "seed-session-stream", prefix_byte(3, stream));

    util::Bytes truncated(stream.begin(),
                          stream.begin() + static_cast<std::ptrdiff_t>(stream.size() / 2));
    emit("fuzz_frame", "seed-truncated", prefix_byte(96, truncated));

    daemon::HelloMsg rhello;
    rhello.backend = 1;
    rhello.item_count = 40;
    reconcile::RatelessChunk chunk;
    chunk.start = 0;
    chunk.host_count = 40;
    chunk.salt = frame_rng.next();
    iblt::RatelessEncoder enc(chunk.salt);
    for (int i = 0; i < 40; ++i) {
      const auto id = chain::make_random_transaction(frame_rng).id;
      reconcile::ItemDigest d;
      std::copy(id.begin(), id.end(), d.begin());
      enc.add_item(d);
    }
    chunk.set_checksum = enc.set_checksum();
    for (int i = 0; i < 16; ++i) chunk.symbols.push_back(enc.next_symbol());
    util::Bytes rstream = framed(net::MessageType::kDaemonHello, rhello.serialize());
    const util::Bytes rchunk = framed(net::MessageType::kRatelessChunk, chunk.serialize());
    rstream.insert(rstream.end(), rchunk.begin(), rchunk.end());
    emit("fuzz_frame", "seed-rateless-stream", prefix_byte(41, rstream));
  }

  // Zero-copy differential reader: first byte routes among the wire types
  // (see fuzz_zero_copy_reader.cpp's switch). One accepting seed per
  // representative route so the fuzzer starts inside every parser family.
  // Own Rng so inserting this section left every older seed byte-identical.
  {
    util::Rng zc_rng(0x2e20c0de);
    emit("fuzz_zero_copy_reader", "seed-bloom",
         prefix_byte(0, sample_filter(zc_rng, 60, 0.02).serialize()));
    emit("fuzz_zero_copy_reader", "seed-bloom-blocked",
         prefix_byte(0,
                     sample_filter(zc_rng, 60, 0.02, bloom::HashStrategy::kBlocked)
                         .serialize()));
    {
      std::vector<util::Bytes> digests;
      for (int i = 0; i < 40; ++i) {
        const auto id = chain::make_random_transaction(zc_rng).id;
        digests.emplace_back(id.begin(), id.end());
      }
      emit("fuzz_zero_copy_reader", "seed-golomb",
           prefix_byte(1, bloom::GolombSet(digests, 0.01, zc_rng.next()).serialize()));
    }
    emit("fuzz_zero_copy_reader", "seed-iblt",
         prefix_byte(3, sample_iblt(zc_rng, 4, 32, 10).serialize()));

    core::GrapheneBlockMsg blk;
    blk.n = 30;
    blk.shortid_salt = zc_rng.next();
    blk.filter_s = sample_filter(zc_rng, 30, 0.02);
    blk.iblt_i = sample_iblt(zc_rng, 4, 16, 4);
    emit("fuzz_zero_copy_reader", "seed-block-msg", prefix_byte(6, blk.serialize()));

    core::GrapheneResponseMsg resp;
    resp.missing = sample_txs(zc_rng, 3);
    resp.iblt_j = sample_iblt(zc_rng, 4, 24, 5);
    resp.filter_f = sample_filter(zc_rng, 40, 0.1);
    emit("fuzz_zero_copy_reader", "seed-response-msg", prefix_byte(8, resp.serialize()));

    reconcile::Offer offer;
    offer.count = 50;
    offer.salt = zc_rng.next();
    offer.set_checksum = zc_rng.next();
    offer.filter = sample_filter(zc_rng, 50, 0.02);
    offer.correction = sample_iblt(zc_rng, 4, 16, 6);
    emit("fuzz_zero_copy_reader", "seed-offer", prefix_byte(11, offer.serialize()));

    reconcile::RatelessChunk chunk;
    chunk.start = 0;
    chunk.host_count = 20;
    chunk.salt = zc_rng.next();
    iblt::RatelessEncoder enc(chunk.salt);
    for (int i = 0; i < 20; ++i) {
      const auto id = chain::make_random_transaction(zc_rng).id;
      reconcile::ItemDigest d;
      std::copy(id.begin(), id.end(), d.begin());
      enc.add_item(d);
    }
    chunk.set_checksum = enc.set_checksum();
    for (int i = 0; i < 8; ++i) chunk.symbols.push_back(enc.next_symbol());
    emit("fuzz_zero_copy_reader", "seed-chunk", prefix_byte(16, chunk.serialize()));

    daemon::HelloMsg hello;
    hello.backend = 0;
    hello.item_count = 25;
    emit("fuzz_zero_copy_reader", "seed-hello", prefix_byte(18, hello.serialize()));
    emit("fuzz_zero_copy_reader", "seed-frame",
         prefix_byte(21, net::encode_frame(net::Message{net::MessageType::kDaemonHello,
                                                        hello.serialize()})));
  }

  // roundtrip consumes a parameter stream, not wire bytes: raw entropy seeds.
  {
    util::ByteWriter w;
    for (int i = 0; i < 64; ++i) w.u64(rng.next());
    emit("fuzz_roundtrip", "seed-params", w.take());
  }

  std::printf("corpus written under %s\n", g_root.string().c_str());
  return 0;
}
