#!/usr/bin/env python3
"""Line-coverage ratchet for the decode-critical libraries.

Reads the .gcda files produced by a GRAPHENE_COVERAGE=ON build after a ctest
run, asks gcov for machine-readable (JSON) line records, and aggregates line
coverage for each scoped directory (src/graphene, src/iblt by default).  The
run fails if any scope drops below its floor in tools/coverage_baseline.json
by more than the tolerance.

No third-party dependencies on purpose: gcov ships with gcc and the JSON
format is stable since gcc 9.  Usage:

    cmake -B build-cov -DGRAPHENE_COVERAGE=ON && cmake --build build-cov
    ctest --test-dir build-cov
    python3 tools/coverage_gate.py build-cov [--report coverage.txt]

Raising the floors after coverage improves is encouraged; lowering them
belongs in code review, not in a green CI run.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "tools", "coverage_baseline.json")

# Measured floors may be beaten by up to this many percentage points of noise
# (different gcc minors attribute close-brace lines differently).
TOLERANCE = 0.5


def find_gcda(build_dir: str) -> list[str]:
    out = []
    for root, _dirs, files in os.walk(os.path.abspath(build_dir)):
        out.extend(os.path.join(root, f) for f in files if f.endswith(".gcda"))
    return sorted(out)


def gcov_json_records(gcda: str, gcov: str) -> list[dict]:
    """Run gcov on one .gcda and return the parsed JSON documents."""
    proc = subprocess.run(
        [gcov, "--json-format", "--stdout", gcda],
        capture_output=True,
        text=True,
        cwd=os.path.dirname(gcda),
    )
    if proc.returncode != 0:
        print(f"warning: gcov failed on {gcda}: {proc.stderr.strip()}", file=sys.stderr)
        return []
    docs, decoder, text, pos = [], json.JSONDecoder(), proc.stdout, 0
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            break
        doc, pos = decoder.raw_decode(text, pos)
        docs.append(doc)
    return docs


def normalize(path: str) -> str | None:
    """Map a gcov source path to a repo-relative one, or None if external."""
    abspath = os.path.normpath(os.path.join(REPO_ROOT, path)) if not os.path.isabs(path) else os.path.normpath(path)
    if not abspath.startswith(REPO_ROOT + os.sep):
        return None
    return os.path.relpath(abspath, REPO_ROOT)


def collect(build_dir: str, gcov: str) -> dict[str, dict[int, bool]]:
    """repo-relative file -> {line_number: covered} unioned across all TUs."""
    gcda_files = find_gcda(build_dir)
    if not gcda_files:
        print(f"error: no .gcda files under {build_dir} — build with "
              "-DGRAPHENE_COVERAGE=ON and run ctest first", file=sys.stderr)
        sys.exit(2)
    lines: dict[str, dict[int, bool]] = {}
    for gcda in gcda_files:
        for doc in gcov_json_records(gcda, gcov):
            cwd = doc.get("current_working_directory", "")
            for frecord in doc.get("files", []):
                src = frecord.get("file", "")
                rel = normalize(src if os.path.isabs(src) else os.path.join(cwd, src))
                if rel is None:
                    continue
                per_file = lines.setdefault(rel, {})
                for line in frecord.get("lines", []):
                    num = line.get("line_number")
                    if num is None:
                        continue
                    covered = line.get("count", 0) > 0
                    per_file[num] = per_file.get(num, False) or covered
    return lines


def scope_stats(lines: dict[str, dict[int, bool]], scope: str):
    """(covered, total, per-file breakdown) for files under `scope`."""
    covered = total = 0
    per_file = []
    prefix = scope.rstrip("/") + "/"
    for rel in sorted(lines):
        if not rel.startswith(prefix):
            continue
        file_lines = lines[rel]
        c = sum(1 for hit in file_lines.values() if hit)
        t = len(file_lines)
        covered += c
        total += t
        per_file.append((rel, c, t))
    return covered, total, per_file


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("build_dir", help="coverage-instrumented build directory")
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument("--report", default=None,
                        help="also write a per-file text report here")
    parser.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    lines = collect(args.build_dir, args.gcov)
    report_lines = []
    failed = False
    for scope, floor in sorted(baseline.items()):
        if scope.startswith("_"):
            continue  # comment keys
        covered, total, per_file = scope_stats(lines, scope)
        if total == 0:
            print(f"FAIL {scope}: no instrumented lines found (wrong build dir?)")
            failed = True
            continue
        pct = 100.0 * covered / total
        verdict = "ok" if pct >= floor - TOLERANCE else "FAIL"
        failed |= verdict == "FAIL"
        print(f"{verdict:4s} {scope}: {pct:6.2f}% line coverage "
              f"({covered}/{total} lines, floor {floor:.2f}%)")
        report_lines.append(f"{scope}: {pct:.2f}% ({covered}/{total}), floor {floor:.2f}%")
        for rel, c, t in per_file:
            if t == 0:
                continue  # header pulled in with no instrumented lines of its own
            report_lines.append(f"  {rel}: {100.0 * c / t:6.2f}% ({c}/{t})")

    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write("\n".join(report_lines) + "\n")
        print(f"per-file report written to {args.report}")

    if failed:
        print("\ncoverage gate FAILED — coverage regressed below the checked-in "
              "baseline (tools/coverage_baseline.json). Add tests for the new "
              "uncovered paths, or justify a lower floor in review.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
