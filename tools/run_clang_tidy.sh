#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the library, fuzz, and tool
# sources using the compile database.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [--allow-missing]
#
#   build-dir        directory holding compile_commands.json (default: build;
#                    configure with any generator — CMAKE_EXPORT_COMPILE_COMMANDS
#                    is always on for this project)
#   --allow-missing  exit 0 with a notice when clang-tidy is not installed
#                    (for developer machines; CI installs it and enforces)
#
# When the graphene tidy plugin is built (tools/tidy-plugin/, or a path in
# $GRAPHENE_TIDY_PLUGIN), the sweep loads it and enables the graphene-*
# checks on top of the .clang-tidy config; tools/lint.py detects the same
# conditions and retires its regex fallbacks for those rules.
#
# WarningsAsErrors: '*' in .clang-tidy makes any diagnostic fatal, so "new
# warnings" cannot land: the tree must stay at zero.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir="$repo_root/build"
allow_missing=0
for arg in "$@"; do
  case "$arg" in
    --allow-missing) allow_missing=1 ;;
    *) build_dir=$(cd "$arg" && pwd) ;;
  esac
done

tidy_bin=${CLANG_TIDY:-clang-tidy}
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  if [ "$allow_missing" = 1 ]; then
    echo "run_clang_tidy: $tidy_bin not installed, skipping (--allow-missing)"
    exit 0
  fi
  echo "run_clang_tidy: $tidy_bin not found; install clang-tidy or pass --allow-missing" >&2
  exit 1
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "run_clang_tidy: $db missing; configure cmake first (any options)" >&2
  exit 1
fi

# Sources with entries in the compile database, library + fuzz + tools only:
# tests and bench follow gtest/benchmark idioms the config is not tuned for.
mapfile -t sources < <(cd "$repo_root" && git ls-files 'src/**/*.cpp' 'fuzz/*.cpp' 'tools/*.cpp')

# Load the graphene-* plugin when a build of it exists. --checks appends to
# the .clang-tidy Checks list, and WarningsAsErrors '*' makes the plugin's
# diagnostics fatal like every other.
plugin="${GRAPHENE_TIDY_PLUGIN:-}"
if [ -z "$plugin" ]; then
  for cand in "$repo_root/build-tidy-plugin/libGrapheneTidyModule.so" \
              "$build_dir/tools/tidy-plugin/libGrapheneTidyModule.so"; do
    if [ -f "$cand" ]; then plugin="$cand"; break; fi
  done
fi
extra_args=()
if [ -n "$plugin" ] && [ -f "$plugin" ]; then
  extra_args+=(--load "$plugin" --checks='graphene-*')
  echo "run_clang_tidy: graphene-* checks loaded from $plugin"
else
  echo "run_clang_tidy: no tidy plugin built; graphene-* rules stay with lint.py"
fi

echo "run_clang_tidy: $(${tidy_bin} --version | head -1 | sed 's/^ *//')"
echo "run_clang_tidy: checking ${#sources[@]} files"

fail=0
for src in "${sources[@]}"; do
  # Skip files that have no compile entry (e.g. fuzzers in a non-fuzz build).
  if ! grep -q "$src" "$db"; then
    continue
  fi
  if ! "$tidy_bin" -p "$build_dir" --quiet "${extra_args[@]}" "$repo_root/$src"; then
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "run_clang_tidy: FAILED — fix the diagnostics above (config: .clang-tidy)" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
