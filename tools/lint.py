#!/usr/bin/env python3
"""Repo-specific banned-pattern lint for the untrusted wire surface.

Rules (each with the reasoning that motivated it):

  1. raw-reinterpret-cast: `reinterpret_cast` is allowed only in src/util/,
     where the one sanctioned helper (util::str_bytes) lives. Everywhere
     else a pointer reinterpretation is either a ByteView construction that
     should go through that helper or a type-pun that breaks under strict
     aliasing.

  2. unbounded-wire-length: inside src/, deserializers must read length
     fields with util::read_varint_bounded (which enforces the hard caps in
     util/wire_limits.hpp *before* any arithmetic on the value). A plain
     util::read_varint in a file that defines a deserialize() is exactly
     the integer-overflow / unbounded-allocation pattern this PR removed,
     so it is banned outside util/ itself.

  3. unchecked-resize-from-reader: a container resize/reserve/assign whose
     argument comes straight off the reader on the same line
     (reader.u8()/u16()/u32()/u64()/read_varint) skips both the cap and
     the buffer bound. Lengths must land in a named, validated variable
     first.

  4. raw-chrono-clock: direct std::chrono clock reads (steady_clock /
     system_clock / high_resolution_clock :: now) are allowed only in
     src/obs/, where obs::monotonic_ns wraps them behind the fake-clock
     override. Everywhere else a raw clock read produces timing a test
     cannot control (ScopedFakeClock can't intercept it) and a capture
     replay cannot reproduce — use obs::monotonic_ns.

Usage: tools/lint.py [--list] [paths...]   (default: every tracked C++ file)
Exits non-zero with file:line diagnostics on any hit.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".inc"}

RE_REINTERPRET = re.compile(r"\breinterpret_cast\s*<")
RE_PLAIN_READ_VARINT = re.compile(r"(?<![a-zA-Z0-9_])read_varint\s*\(")
RE_DESERIALIZE_DEF = re.compile(r"\bdeserialize\s*\(")
RE_RESIZE_FROM_READER = re.compile(
    r"\.(?:resize|reserve|assign)\s*\(\s*[^;]*"
    r"(?:\breader\.(?:u8|u16|u32|u64)\s*\(|\bread_varint(?:_bounded)?\s*\()"
)
RE_CHRONO_CLOCK = re.compile(
    r"\b(?:std\s*::\s*)?chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
)


def tracked_cpp_files():
    out = subprocess.run(
        ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True, text=True, check=True
    ).stdout
    return [
        Path(p)
        for p in out.splitlines()
        if Path(p).suffix in CPP_SUFFIXES
    ]


def strip_comments_and_strings(line: str) -> str:
    """Good-enough single-line scrub: drops // comments and string literals
    so documentation mentioning a banned token does not trip the lint."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def lint_file(rel: Path):
    findings = []
    text = (REPO_ROOT / rel).read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    in_util = rel.parts[:2] == ("src", "util")
    in_src = rel.parts[:1] == ("src",)
    in_obs = rel.parts[:2] == ("src", "obs")
    has_deserializer = any(RE_DESERIALIZE_DEF.search(strip_comments_and_strings(l))
                           for l in lines)

    in_block_comment = False
    for lineno, raw in enumerate(lines, 1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        if "/*" in line and "*/" not in line[line.find("/*"):]:
            line = line[: line.find("/*")]
            in_block_comment = True
        code = strip_comments_and_strings(line)

        if not in_util and RE_REINTERPRET.search(code):
            findings.append(
                (lineno, "raw-reinterpret-cast",
                 "reinterpret_cast outside src/util/ — use util::str_bytes "
                 "or a ByteReader/ByteWriter primitive")
            )
        if in_src and not in_util and has_deserializer \
                and RE_PLAIN_READ_VARINT.search(code) \
                and "read_varint_bounded" not in code:
            findings.append(
                (lineno, "unbounded-wire-length",
                 "plain read_varint in a deserializing translation unit — "
                 "use util::read_varint_bounded with a wire_limits.hpp cap")
            )
        if in_src and RE_RESIZE_FROM_READER.search(code):
            findings.append(
                (lineno, "unchecked-resize-from-reader",
                 "container sized directly from reader output — bind the "
                 "length to a validated variable first")
            )
        if not in_obs and RE_CHRONO_CLOCK.search(code):
            findings.append(
                (lineno, "raw-chrono-clock",
                 "direct std::chrono clock read outside src/obs/ — use "
                 "obs::monotonic_ns so fake clocks and capture replay work")
            )
    return findings


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    list_only = "--list" in argv
    files = [Path(a) for a in args] if args else tracked_cpp_files()

    if list_only:
        for f in files:
            print(f)
        return 0

    total = 0
    for rel in files:
        if not (REPO_ROOT / rel).is_file():
            continue
        for lineno, rule, msg in lint_file(rel):
            print(f"{rel}:{lineno}: [{rule}] {msg}")
            total += 1
    if total:
        print(f"lint.py: {total} finding(s)", file=sys.stderr)
        return 1
    print(f"lint.py: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
