#!/usr/bin/env python3
"""Repo-specific lint for the untrusted wire surface and suppression hygiene.

Two tiers of rules (docs/STATIC_ANALYSIS.md has the full stack):

FIRST-CLASS — things no AST check can express, enforced everywhere:

  nolint-hygiene: every NOLINT-family suppression must name the check it
     suppresses (`NOLINT(check-name)`, never bare `NOLINT`) and carry a
     justification — trailing text on the same line or a comment directly
     above. A bare NOLINT silences every present and future check at that
     location; an unjustified one cannot be audited when the suppressed
     check evolves.

  confined-intrinsics: vector-intrinsic headers (<immintrin.h>,
     <x86intrin.h>, <arm_neon.h>) and raw intrinsic calls (_mm*/_mm256*/
     _mm512*/vld1q*-family identifiers) are allowed only under
     src/util/simd/. Everything else routes through util::simd::active()
     so the capability check in dispatch.cpp is the single gate deciding
     whether a vector instruction can execute — an intrinsic anywhere else
     can SIGILL on an older CPU before dispatch ever runs.

FALLBACK — regex approximations of the graphene-* clang-tidy checks in
tools/tidy-plugin/. On toolchains that can build and load the plugin, the
flow-aware AST versions are the single source of truth and these are
skipped (GRAPHENE_TIDY_PLUGIN_ENFORCED=1 in the environment — exported by
the CI tidy-plugin leg — or --no-fallback). Everywhere else, e.g. a gcc-only
container with no clang, they stay live so the invariants never go
unenforced:

  raw-reinterpret-cast  (→ graphene-raw-byte-cast): `reinterpret_cast` only
     in src/util/, where util::str_bytes centralizes the one sanctioned
     pointer reinterpretation. The AST check additionally sees C-style byte
     casts; this regex cannot.

  unbounded-wire-length  (→ graphene-bounded-wire-read): in a deserializing
     translation unit under src/, length fields come from
     util::read_varint_bounded, never plain read_varint.

  unchecked-resize-from-reader  (→ graphene-bounded-wire-read): a container
     resize/reserve/assign fed from reader primitives on the same line skips
     both the cap and the buffer bound. Same-line only — the AST check
     tracks the flow across statements; this regex famously missed
     read_full_tx's claimed-size amplification (see wire_limits.hpp
     kMaxTxWireSize).

  raw-chrono-clock  (→ graphene-raw-clock): std::chrono clock reads only in
     src/obs/, behind obs::monotonic_ns and the fake clock.

(graphene-deterministic-rng has no regex fallback: it shipped directly as
an AST check, and the repo's util::Rng idiom never regressed under regex
review.)

Usage: tools/lint.py [--list] [--no-fallback] [paths...]
       (default: every tracked C++ file)
Exits non-zero with file:line diagnostics on any hit.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".inc"}

# Deliberately-violating test corpora (tidy-plugin fixtures, lint.py's own
# test fixtures). Skipped by the default sweep; explicit path arguments
# still lint them, which is how their tests invoke us.
EXCLUDED_PREFIXES = (
    "tools/tidy-plugin/test/fixtures/",
    "tools/tests/fixtures/",
)

RE_REINTERPRET = re.compile(r"\breinterpret_cast\s*<")
RE_PLAIN_READ_VARINT = re.compile(r"(?<![a-zA-Z0-9_])read_varint\s*\(")
RE_DESERIALIZE_DEF = re.compile(r"\bdeserialize\s*\(")
RE_RESIZE_FROM_READER = re.compile(
    r"\.(?:resize|reserve|assign)\s*\(\s*[^;]*"
    r"(?:\breader\.(?:u8|u16|u32|u64)\s*\(|\bread_varint(?:_bounded)?\s*\()"
)
RE_CHRONO_CLOCK = re.compile(
    r"\b(?:std\s*::\s*)?chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
)
# NOLINT / NOLINTNEXTLINE / NOLINTBEGIN / NOLINTEND with an optional
# (check-list); group 2 is None for the bare form.
RE_NOLINT = re.compile(r"\bNOLINT(NEXTLINE|BEGIN|END)?\b(\(([^)]*)\))?")

RE_INTRINSIC_HEADER = re.compile(
    r'#\s*include\s*[<"](?:immintrin|x86intrin|arm_neon|emmintrin|smmintrin|'
    r"tmmintrin|avxintrin|avx2intrin)\.h"
)
# x86 vector intrinsics and types (_mm_/_mm256_/_mm512_, __m128*/__m256*/
# __m512*) and the NEON load/store/arith prefixes (vld1q_u8(...), vaddq, ...).
RE_INTRINSIC_CALL = re.compile(
    r"\b(?:_mm(?:256|512)?_[a-z0-9_]+\s*\(|__m(?:128|256|512)[a-z]*\b|"
    r"v(?:ld|st)[1-4]q?_[a-z0-9_]+\s*\(|"
    r"v(?:add|sub|mul|and|orr|eor|ceq|shl|shr|dup|get|set|ext|tbl)q?_[a-z0-9_]+\s*\()"
)


def tracked_cpp_files():
    out = subprocess.run(
        ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True, text=True, check=True
    ).stdout
    return [
        Path(p)
        for p in out.splitlines()
        if Path(p).suffix in CPP_SUFFIXES
        and not p.startswith(EXCLUDED_PREFIXES)
    ]


def strip_comments_and_strings(line: str) -> str:
    """Good-enough single-line scrub: drops // comments and string literals
    so documentation mentioning a banned token does not trip the lint."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def fallback_enforced_elsewhere() -> bool:
    """True when the clang-tidy plugin owns the superseded rules (CI tidy
    leg exports the env var after a successful plugin sweep)."""
    return os.environ.get("GRAPHENE_TIDY_PLUGIN_ENFORCED", "") == "1"


def _has_words(text: str) -> bool:
    """A justification needs at least two real words."""
    return len(re.findall(r"[A-Za-z]{2,}", text)) >= 2


def lint_nolint_hygiene(lines):
    """nolint-hygiene findings for one file (list of (lineno, rule, msg)).

    Operates on raw lines: NOLINT lives inside comments, so the comment
    scrub used by the code rules must not run here.
    """
    findings = []
    for lineno, raw in enumerate(lines, 1):
        for m in RE_NOLINT.finditer(raw):
            kind = "NOLINT" + (m.group(1) or "")
            if m.group(2) is None:
                findings.append(
                    (lineno, "nolint-hygiene",
                     f"bare {kind} suppresses every check at this location — "
                     f"scope it: {kind}(check-name)")
                )
                continue
            if not m.group(3).strip():
                findings.append(
                    (lineno, "nolint-hygiene",
                     f"{kind}() with an empty check list — name the check")
                )
                continue
            # Justification: trailing words after the suppression on the same
            # line, or a non-NOLINT comment line directly above.
            trailing = raw[m.end():]
            above = lines[lineno - 2].strip() if lineno >= 2 else ""
            above_ok = (
                above.startswith("//") and "NOLINT" not in above and _has_words(above)
            )
            if not _has_words(trailing) and not above_ok:
                findings.append(
                    (lineno, "nolint-hygiene",
                     f"{kind}({m.group(3).strip()}) without a justification — "
                     "say why the suppression is sound, on this line or the "
                     "comment above")
                )
    return findings


def lint_file(rel: Path, text=None, fallback=True):
    findings = []
    if text is None:
        text = (REPO_ROOT / rel).read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()

    findings.extend(lint_nolint_hygiene(lines))

    # First-class: intrinsics stay behind the runtime dispatch boundary.
    in_simd = rel.parts[:3] == ("src", "util", "simd")
    if not in_simd:
        in_block = False
        for lineno, raw in enumerate(lines, 1):
            line = raw
            if in_block:
                end = line.find("*/")
                if end < 0:
                    continue
                line = line[end + 2:]
                in_block = False
            if "/*" in line and "*/" not in line[line.find("/*"):]:
                line = line[: line.find("/*")]
                in_block = True
            code = strip_comments_and_strings(line)
            if RE_INTRINSIC_HEADER.search(code):
                findings.append(
                    (lineno, "confined-intrinsics",
                     "vector-intrinsic header outside src/util/simd/ — add a "
                     "kernel there and call util::simd::active()")
                )
            elif RE_INTRINSIC_CALL.search(code):
                findings.append(
                    (lineno, "confined-intrinsics",
                     "raw vector intrinsic outside src/util/simd/ — it can "
                     "execute before the CPU capability check; route through "
                     "util::simd::active()")
                )

    if not fallback:
        return sorted(findings)

    in_util = rel.parts[:2] == ("src", "util")
    in_src = rel.parts[:1] == ("src",)
    in_obs = rel.parts[:2] == ("src", "obs")
    has_deserializer = any(RE_DESERIALIZE_DEF.search(strip_comments_and_strings(l))
                           for l in lines)

    in_block_comment = False
    for lineno, raw in enumerate(lines, 1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        if "/*" in line and "*/" not in line[line.find("/*"):]:
            line = line[: line.find("/*")]
            in_block_comment = True
        code = strip_comments_and_strings(line)

        if not in_util and RE_REINTERPRET.search(code):
            findings.append(
                (lineno, "raw-reinterpret-cast",
                 "reinterpret_cast outside src/util/ — use util::str_bytes "
                 "or a ByteReader/ByteWriter primitive")
            )
        if in_src and not in_util and has_deserializer \
                and RE_PLAIN_READ_VARINT.search(code) \
                and "read_varint_bounded" not in code:
            findings.append(
                (lineno, "unbounded-wire-length",
                 "plain read_varint in a deserializing translation unit — "
                 "use util::read_varint_bounded with a wire_limits.hpp cap")
            )
        if in_src and RE_RESIZE_FROM_READER.search(code):
            findings.append(
                (lineno, "unchecked-resize-from-reader",
                 "container sized directly from reader output — bind the "
                 "length to a validated variable first")
            )
        if not in_obs and RE_CHRONO_CLOCK.search(code):
            findings.append(
                (lineno, "raw-chrono-clock",
                 "direct std::chrono clock read outside src/obs/ — use "
                 "obs::monotonic_ns so fake clocks and capture replay work")
            )
    return sorted(findings)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    list_only = "--list" in argv
    fallback = not ("--no-fallback" in argv or fallback_enforced_elsewhere())
    files = [Path(a) for a in args] if args else tracked_cpp_files()

    if list_only:
        for f in files:
            print(f)
        return 0

    total = 0
    for rel in files:
        if not (REPO_ROOT / rel).is_file():
            continue
        for lineno, rule, msg in lint_file(rel, fallback=fallback):
            print(f"{rel}:{lineno}: [{rule}] {msg}")
            total += 1
    if total:
        print(f"lint.py: {total} finding(s)", file=sys.stderr)
        return 1
    tier = "all rules" if fallback else "first-class rules only (AST checks own the rest)"
    print(f"lint.py: clean ({len(files)} files, {tier})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
