// Load-generator CLI for graphene_relayd.
//
//   loadgen [--host 127.0.0.1] [--port 9723] [--connections 64] [--sessions 4]
//           [--workers 4] [--items 500] [--diff 20] [--seed 0x5eed]
//           [--backend graphene|rateless]
//
// Derives its client set from the same (--seed, --items, --diff) convention
// as graphene_relayd (relayd_set.hpp), opens `--connections` concurrent TCP
// connections, runs `--sessions` reconcile sessions back to back on each,
// and prints sessions/sec with p50/p95/p99 latency. Exits non-zero if any
// session fails, so a shell loop doubles as a smoke gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "daemon/loadgen.hpp"
#include "iblt/param_cache.hpp"
#include "relayd_set.hpp"

namespace {

std::uint64_t flag_u64(int argc, char** argv, const char* name, std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::strtoull(argv[i + 1], nullptr, 0);
  }
  return fallback;
}

const char* flag_str(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graphene;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--host H] [--port P] [--connections N] [--sessions N]\n"
          "          [--workers N] [--items N] [--diff N] [--seed S]\n"
          "          [--backend graphene|rateless]\n",
          argv[0]);
      return 0;
    }
  }
  const std::uint64_t items = flag_u64(argc, argv, "--items", 500);
  const std::uint64_t seed = flag_u64(argc, argv, "--seed", 0x5eed);
  const std::uint64_t diff = flag_u64(argc, argv, "--diff", 20);
  const reconcile::ItemSet client_items = tools::client_set(seed, items, diff);

  iblt::ParamCache cache;
  daemon::LoadgenOptions lg;
  lg.host = flag_str(argc, argv, "--host", "127.0.0.1");
  lg.port = static_cast<std::uint16_t>(flag_u64(argc, argv, "--port", 9723));
  lg.connections =
      static_cast<std::uint32_t>(flag_u64(argc, argv, "--connections", 64));
  lg.sessions_per_conn =
      static_cast<std::uint32_t>(flag_u64(argc, argv, "--sessions", 4));
  lg.workers = static_cast<std::uint32_t>(flag_u64(argc, argv, "--workers", 4));
  lg.items = &client_items;
  lg.protocol.param_cache = &cache;
  const char* backend = flag_str(argc, argv, "--backend", "graphene");
  if (std::strcmp(backend, "rateless") == 0) {
    lg.protocol.reconcile_backend = core::ReconcileBackend::kRatelessIblt;
  } else if (std::strcmp(backend, "graphene") != 0) {
    std::fprintf(stderr, "loadgen: unknown --backend %s\n", backend);
    return 2;
  }

  daemon::LoadgenReport report;
  try {
    report = daemon::run_loadgen(lg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: %s\n", e.what());
    return 1;
  }

  std::printf("loadgen: %llu ok, %llu failed, %llu conn errors\n",
              static_cast<unsigned long long>(report.sessions_ok),
              static_cast<unsigned long long>(report.sessions_failed),
              static_cast<unsigned long long>(report.conn_errors));
  std::printf("  %.0f sessions/sec over %.2f s  (%llu B in, %llu B out)\n",
              report.sessions_per_sec, static_cast<double>(report.elapsed_ns) / 1e9,
              static_cast<unsigned long long>(report.bytes_in),
              static_cast<unsigned long long>(report.bytes_out));
  std::printf("  latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
              static_cast<double>(report.p50_ns) / 1e6,
              static_cast<double>(report.p95_ns) / 1e6,
              static_cast<double>(report.p99_ns) / 1e6);
  return (report.sessions_failed == 0 && report.conn_errors == 0) ? 0 : 1;
}
