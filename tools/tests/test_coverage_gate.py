#!/usr/bin/env python3
"""Unit tests for tools/coverage_gate.py (stdlib unittest only; wired into
ctest). gcov itself is stubbed — these tests pin the path normalization,
the per-scope aggregation, the multi-document JSON parsing, and the
floor/tolerance verdict logic that CI's coverage leg depends on."""

import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout
from pathlib import Path
from unittest import mock

TOOLS_DIR = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location("coverage_gate",
                                              TOOLS_DIR / "coverage_gate.py")
coverage_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(coverage_gate)


class Normalize(unittest.TestCase):
    def test_repo_relative_passthrough(self):
        self.assertEqual(coverage_gate.normalize("src/iblt/iblt.cpp"),
                         os.path.join("src", "iblt", "iblt.cpp"))

    def test_absolute_inside_repo(self):
        abspath = os.path.join(coverage_gate.REPO_ROOT, "src", "util", "bytes.hpp")
        self.assertEqual(coverage_gate.normalize(abspath),
                         os.path.join("src", "util", "bytes.hpp"))

    def test_external_paths_rejected(self):
        self.assertIsNone(coverage_gate.normalize("/usr/include/c++/12/vector"))

    def test_dotdot_escape_rejected(self):
        self.assertIsNone(coverage_gate.normalize("../outside/evil.cpp"))


class ScopeStats(unittest.TestCase):
    LINES = {
        "src/iblt/iblt.cpp": {1: True, 2: True, 3: False, 4: False},
        "src/iblt/param_cache.cpp": {1: True, 2: False},
        "src/graphene/sender.cpp": {1: True},
        "tests/iblt/test_iblt.cpp": {1: True},
    }

    def test_aggregates_only_the_scope(self):
        covered, total, per_file = coverage_gate.scope_stats(self.LINES, "src/iblt")
        self.assertEqual((covered, total), (3, 6))
        self.assertEqual([f for f, _c, _t in per_file],
                         ["src/iblt/iblt.cpp", "src/iblt/param_cache.cpp"])

    def test_scope_is_a_path_prefix_not_a_substring(self):
        covered, total, _ = coverage_gate.scope_stats(self.LINES, "src/ibl")
        self.assertEqual((covered, total), (0, 0))

    def test_trailing_slash_equivalent(self):
        self.assertEqual(coverage_gate.scope_stats(self.LINES, "src/iblt/")[:2],
                         coverage_gate.scope_stats(self.LINES, "src/iblt")[:2])


class GcovJsonRecords(unittest.TestCase):
    def test_parses_concatenated_documents(self):
        two_docs = json.dumps({"files": [{"file": "a.cpp"}]}) + "\n" + \
                   json.dumps({"files": [{"file": "b.cpp"}]})
        fake = mock.Mock(returncode=0, stdout=two_docs, stderr="")
        with mock.patch.object(coverage_gate.subprocess, "run", return_value=fake):
            docs = coverage_gate.gcov_json_records("/tmp/x.gcda", "gcov")
        self.assertEqual(len(docs), 2)
        self.assertEqual(docs[1]["files"][0]["file"], "b.cpp")

    def test_gcov_failure_is_a_warning_not_a_crash(self):
        fake = mock.Mock(returncode=1, stdout="", stderr="boom")
        with mock.patch.object(coverage_gate.subprocess, "run", return_value=fake):
            self.assertEqual(coverage_gate.gcov_json_records("/tmp/x.gcda", "gcov"), [])


class Collect(unittest.TestCase):
    def test_union_across_translation_units(self):
        doc_a = {"current_working_directory": coverage_gate.REPO_ROOT,
                 "files": [{"file": "src/iblt/iblt.cpp",
                            "lines": [{"line_number": 1, "count": 0},
                                      {"line_number": 2, "count": 5}]}]}
        doc_b = {"current_working_directory": coverage_gate.REPO_ROOT,
                 "files": [{"file": "src/iblt/iblt.cpp",
                            "lines": [{"line_number": 1, "count": 3},
                                      {"line_number": 2, "count": 0}]}]}
        with mock.patch.object(coverage_gate, "find_gcda",
                               return_value=["a.gcda", "b.gcda"]), \
             mock.patch.object(coverage_gate, "gcov_json_records",
                               side_effect=[[doc_a], [doc_b]]):
            lines = coverage_gate.collect("build-cov", "gcov")
        rel = os.path.join("src", "iblt", "iblt.cpp")
        # A line covered by either TU counts as covered.
        self.assertEqual(lines[rel], {1: True, 2: True})

    def test_no_gcda_files_exits(self):
        with mock.patch.object(coverage_gate, "find_gcda", return_value=[]):
            with self.assertRaises(SystemExit):
                coverage_gate.collect("build-cov", "gcov")


class VerdictLogic(unittest.TestCase):
    """End-to-end main() with collect() stubbed: floors vs tolerance."""

    def run_gate(self, baseline, lines):
        with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
            json.dump(baseline, f)
            baseline_path = f.name
        try:
            argv = ["coverage_gate.py", "ignored-build-dir",
                    "--baseline", baseline_path]
            out = io.StringIO()
            with mock.patch.object(coverage_gate, "collect", return_value=lines), \
                 mock.patch.object(sys, "argv", argv), redirect_stdout(out):
                rc = coverage_gate.main()
            return rc, out.getvalue()
        finally:
            os.unlink(baseline_path)

    LINES = {"src/iblt/iblt.cpp": {n: n <= 80 for n in range(1, 101)}}  # 80%

    def test_above_floor_passes(self):
        rc, out = self.run_gate({"src/iblt": 75.0}, self.LINES)
        self.assertEqual(rc, 0)
        self.assertIn("ok", out)

    def test_within_tolerance_passes(self):
        rc, _ = self.run_gate({"src/iblt": 80.0 + coverage_gate.TOLERANCE}, self.LINES)
        self.assertEqual(rc, 0)

    def test_below_floor_fails(self):
        rc, out = self.run_gate({"src/iblt": 90.0}, self.LINES)
        self.assertEqual(rc, 1)
        self.assertIn("FAIL", out)

    def test_scope_with_no_lines_fails_loudly(self):
        rc, out = self.run_gate({"src/nonexistent": 10.0}, self.LINES)
        self.assertEqual(rc, 1)
        self.assertIn("no instrumented lines", out)

    def test_comment_keys_ignored(self):
        rc, _ = self.run_gate({"_comment": 0, "src/iblt": 75.0}, self.LINES)
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    sys.exit(unittest.main())
