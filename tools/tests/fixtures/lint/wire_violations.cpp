// Lint fixture: every fallback-tier wire rule fires here when the file is
// linted as if it lived at src/graphene/wire_violations.cpp (the tests pass
// that virtual path; this corpus directory itself is excluded from sweeps).
#include <cstdint>
#include <vector>

struct Reader {
  std::uint32_t u32();
};
std::uint64_t read_varint(Reader&);

struct Thing {
  std::vector<std::uint8_t> buf;

  void deserialize(Reader& reader) {
    const std::uint64_t n = read_varint(reader);  // unbounded-wire-length
    buf.resize(reader.u32());                     // unchecked-resize-from-reader
    (void)n;
  }

  const std::uint8_t* alias() const {
    return reinterpret_cast<const std::uint8_t*>(this);  // raw-reinterpret-cast
  }
};

long long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // raw-chrono-clock
}
