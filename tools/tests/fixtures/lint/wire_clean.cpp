// Lint fixture: the clean counterpart — bounded reads, validated lengths,
// no aliasing casts, no raw clocks. Expected: zero findings at any virtual
// path.
#include <cstdint>
#include <vector>

struct Reader {
  std::uint32_t u32();
};
std::uint64_t read_varint_bounded(Reader&, std::uint64_t, const char*);

struct Thing {
  std::vector<std::uint8_t> buf;

  void deserialize(Reader& reader) {
    const std::uint64_t n = read_varint_bounded(reader, 1u << 20, "n");
    buf.resize(n);
  }
};

// Mentions of banned tokens in comments and strings must not trip the
// regexes: reinterpret_cast<const char*>, reader.u32(), chrono::steady_clock::now().
const char* doc() { return "never call std::chrono::steady_clock::now() directly"; }
