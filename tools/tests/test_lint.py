#!/usr/bin/env python3
"""Unit tests for tools/lint.py (stdlib unittest only; wired into ctest).

The fixture corpus under fixtures/lint/ is linted at *virtual* paths —
lint.py's rules are path-scoped (src/util/ may alias, src/obs/ may read
clocks), so the same bytes must flag or pass depending on where they
nominally live. The corpus directory itself sits in lint.py's
EXCLUDED_PREFIXES so the repo-wide sweep never trips over it.
"""

import importlib.util
import os
import sys
import unittest
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

spec = importlib.util.spec_from_file_location("lint", TOOLS_DIR / "lint.py")
lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint)


def rules_of(findings):
    return [rule for _lineno, rule, _msg in findings]


def lint_text(virtual_path, text, fallback=True):
    return lint.lint_file(Path(virtual_path), text=text, fallback=fallback)


class FallbackWireRules(unittest.TestCase):
    def setUp(self):
        self.violations = (FIXTURES / "wire_violations.cpp").read_text()
        self.clean = (FIXTURES / "wire_clean.cpp").read_text()

    def test_all_four_rules_fire_in_src(self):
        rules = rules_of(lint_text("src/graphene/wire_violations.cpp", self.violations))
        self.assertIn("unbounded-wire-length", rules)
        self.assertIn("unchecked-resize-from-reader", rules)
        self.assertIn("raw-reinterpret-cast", rules)
        self.assertIn("raw-chrono-clock", rules)

    def test_clean_fixture_has_no_findings_anywhere(self):
        for virtual in ("src/graphene/x.cpp", "src/util/x.cpp", "tests/x.cpp"):
            self.assertEqual(lint_text(virtual, self.clean), [])

    def test_src_util_may_alias_and_read_varint(self):
        rules = rules_of(lint_text("src/util/wire_violations.cpp", self.violations))
        self.assertNotIn("raw-reinterpret-cast", rules)
        self.assertNotIn("unbounded-wire-length", rules)
        # The resize-from-reader and clock rules still apply in util.
        self.assertIn("unchecked-resize-from-reader", rules)
        self.assertIn("raw-chrono-clock", rules)

    def test_src_obs_may_read_clocks(self):
        rules = rules_of(lint_text("src/obs/wire_violations.cpp", self.violations))
        self.assertNotIn("raw-chrono-clock", rules)

    def test_outside_src_only_cast_and_clock_rules_apply(self):
        rules = rules_of(lint_text("bench/wire_violations.cpp", self.violations))
        self.assertNotIn("unbounded-wire-length", rules)
        self.assertNotIn("unchecked-resize-from-reader", rules)
        self.assertIn("raw-reinterpret-cast", rules)
        self.assertIn("raw-chrono-clock", rules)

    def test_fallback_tier_retires_when_ast_checks_own_the_rules(self):
        findings = lint_text("src/graphene/wire_violations.cpp", self.violations,
                             fallback=False)
        self.assertEqual(findings, [])  # fixture has no NOLINTs

    def test_block_comments_do_not_flag(self):
        text = "/*\n reinterpret_cast<const char*>(p);\n*/\nint x;\n"
        self.assertEqual(lint_text("src/graphene/x.cpp", text), [])


class NolintHygiene(unittest.TestCase):
    def findings(self, text):
        return lint_text("src/graphene/x.cpp", text)

    def test_bare_nolint_flagged(self):
        (lineno, rule, msg), = self.findings("int x; // NOLINT\n")
        self.assertEqual((lineno, rule), (1, "nolint-hygiene"))
        self.assertIn("bare NOLINT", msg)

    def test_bare_nolintnextline_flagged(self):
        findings = self.findings("// NOLINTNEXTLINE\nint x;\n")
        self.assertEqual(rules_of(findings), ["nolint-hygiene"])
        self.assertIn("NOLINTNEXTLINE(check-name)", findings[0][2])

    def test_empty_check_list_flagged(self):
        findings = self.findings("int x; // NOLINT()\n")
        self.assertEqual(rules_of(findings), ["nolint-hygiene"])
        self.assertIn("empty check list", findings[0][2])

    def test_scoped_without_justification_flagged(self):
        findings = self.findings("int x; // NOLINT(some-check)\n")
        self.assertEqual(rules_of(findings), ["nolint-hygiene"])
        self.assertIn("without a justification", findings[0][2])

    def test_scoped_with_trailing_justification_ok(self):
        text = "int x; // NOLINT(some-check) third-party macro expands here\n"
        self.assertEqual(self.findings(text), [])

    def test_scoped_with_comment_above_ok(self):
        text = ("// The cast is required by the C API contract.\n"
                "// NOLINTNEXTLINE(some-check)\n"
                "int x;\n")
        self.assertEqual(self.findings(text), [])

    def test_nolint_line_above_is_not_a_justification(self):
        text = ("// NOLINTNEXTLINE(other-check) reason for the other one\n"
                "int x; // NOLINT(some-check)\n")
        self.assertEqual(rules_of(self.findings(text)), ["nolint-hygiene"])

    def test_hygiene_enforced_even_without_fallback_tier(self):
        findings = lint_text("src/graphene/x.cpp", "int x; // NOLINT\n",
                             fallback=False)
        self.assertEqual(rules_of(findings), ["nolint-hygiene"])


class ConfinedIntrinsics(unittest.TestCase):
    """Intrinsic headers and raw vector calls live only in src/util/simd/."""

    HEADER = "#include <immintrin.h>\n"
    CALL = "auto v = _mm256_loadu_si256(p);\n"
    NEON = "auto v = vld1q_u8(p);\n"
    TYPE = "__m256i acc;\n"

    def test_header_flagged_outside_kernel_dir(self):
        for path in ("src/bloom/bloom_filter.cpp", "src/iblt/iblt.cpp",
                     "bench/hotpath.cpp", "src/util/bytes.hpp"):
            rules = rules_of(lint_text(path, self.HEADER))
            self.assertEqual(rules, ["confined-intrinsics"], path)

    def test_calls_and_types_flagged_outside_kernel_dir(self):
        for text in (self.CALL, self.NEON, self.TYPE):
            rules = rules_of(lint_text("src/net/frame.cpp", text))
            self.assertEqual(rules, ["confined-intrinsics"], text)

    def test_kernel_dir_is_exempt(self):
        for text in (self.HEADER, self.CALL, self.NEON, self.TYPE):
            self.assertEqual(lint_text("src/util/simd/avx2.cpp", text), [], text)

    def test_commented_mention_is_ignored(self):
        text = "// dispatch confines _mm256_xor_si256 to the kernel TU\nint x;\n"
        self.assertEqual(lint_text("src/net/frame.cpp", text), [])

    def test_enforced_even_without_fallback_tier(self):
        rules = rules_of(lint_text("src/net/frame.cpp", self.HEADER,
                                   fallback=False))
        self.assertEqual(rules, ["confined-intrinsics"])


class TierSelection(unittest.TestCase):
    def test_env_var_retires_fallback(self):
        old = os.environ.pop("GRAPHENE_TIDY_PLUGIN_ENFORCED", None)
        try:
            self.assertFalse(lint.fallback_enforced_elsewhere())
            os.environ["GRAPHENE_TIDY_PLUGIN_ENFORCED"] = "1"
            self.assertTrue(lint.fallback_enforced_elsewhere())
            os.environ["GRAPHENE_TIDY_PLUGIN_ENFORCED"] = "0"
            self.assertFalse(lint.fallback_enforced_elsewhere())
        finally:
            os.environ.pop("GRAPHENE_TIDY_PLUGIN_ENFORCED", None)
            if old is not None:
                os.environ["GRAPHENE_TIDY_PLUGIN_ENFORCED"] = old

    def test_fixture_corpora_excluded_from_default_sweep(self):
        for rel in lint.tracked_cpp_files():
            self.assertFalse(str(rel).startswith("tools/tidy-plugin/test/fixtures/"),
                             f"{rel} should be excluded from the sweep")
            self.assertFalse(str(rel).startswith("tools/tests/fixtures/"),
                             f"{rel} should be excluded from the sweep")


class RepoIsClean(unittest.TestCase):
    """The tree itself must lint clean — the same invariant CI enforces,
    surfaced locally through ctest."""

    def test_full_sweep_clean(self):
        for rel in lint.tracked_cpp_files():
            if not (Path(lint.REPO_ROOT) / rel).is_file():
                continue
            self.assertEqual(lint.lint_file(rel), [], f"findings in {rel}")


if __name__ == "__main__":
    sys.exit(unittest.main())
