// Relay daemon CLI: serves reconcile sessions over TCP until SIGINT/SIGTERM.
//
//   graphene_relayd [--host 127.0.0.1] [--port 9723] [--items 500]
//                   [--seed 0x5eed] [--diff n] [--max-conns 8192]
//
// The served set is derived from (--seed, --items) via relayd_set.hpp;
// point a `loadgen` with the same flags at it and every session reconciles.
// On shutdown the daemon aborts in-flight sessions with a typed error and
// prints its lifetime stats.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "daemon/daemon.hpp"
#include "iblt/param_cache.hpp"
#include "relayd_set.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

std::uint64_t flag_u64(int argc, char** argv, const char* name, std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::strtoull(argv[i + 1], nullptr, 0);
  }
  return fallback;
}

const char* flag_str(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graphene;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--host H] [--port P] [--items N] [--seed S] [--max-conns N]\n",
          argv[0]);
      return 0;
    }
  }
  const char* host = flag_str(argc, argv, "--host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(flag_u64(argc, argv, "--port", 9723));
  const std::uint64_t items = flag_u64(argc, argv, "--items", 500);
  const std::uint64_t seed = flag_u64(argc, argv, "--seed", 0x5eed);

  iblt::ParamCache cache;
  daemon::DaemonOptions opts;
  opts.protocol.param_cache = &cache;
  opts.max_connections = flag_u64(argc, argv, "--max-conns", opts.max_connections);

  daemon::RelayDaemon served(tools::host_set(seed, items), opts);
  const std::uint16_t bound = served.listen(host, port);
  if (bound == 0) {
    std::fprintf(stderr, "graphene_relayd: cannot bind %s:%u\n", host, port);
    return 1;
  }
  served.start();
  std::printf("graphene_relayd: serving %llu items on %s:%u (seed %#llx)\n",
              static_cast<unsigned long long>(items), host, bound,
              static_cast<unsigned long long>(seed));

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  served.stop();
  const daemon::DaemonStats stats = served.stats();
  std::printf("graphene_relayd: %llu conns, %llu sessions ok, %llu failed\n",
              static_cast<unsigned long long>(stats.conns_opened),
              static_cast<unsigned long long>(stats.sessions_ok),
              static_cast<unsigned long long>(stats.sessions_failed));
  return 0;
}
