// Replays a forensic capture dumped by a failed protocol session.
//
// Usage: replay_capture <capture.json> [more.json ...]
//
// For each file: parse the capture, re-execute it against a fresh
// Sender/ReceiveSession (full loop when the capture carries the block),
// and report whether the replay reproduced the recorded outcome and wire
// bytes. Exit status 0 when every capture replays clean, 1 when any replay
// diverges or fails to parse — so CI can run it over an artifact directory.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "graphene/forensics.hpp"

namespace {

int replay_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  graphene::core::ForensicCapture cap;
  try {
    cap = graphene::core::ForensicCapture::from_json(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: parse failed: %s\n", path, e.what());
    return 1;
  }

  std::printf("%s\n", path);
  std::printf("  kind=%s stage=%s events=%zu mempool=%zu block=%s\n", cap.kind.c_str(),
              cap.stage.c_str(), cap.events.size(), cap.mempool.size(),
              cap.has_block ? "yes" : "no");

  graphene::core::ReplayReport rep;
  try {
    rep = graphene::core::replay_capture(cap);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "  replay crashed: %s\n", e.what());
    return 1;
  }

  std::printf("  recorded: %s\n  replayed: %s\n", rep.recorded_outcome.c_str(),
              rep.replayed_outcome.c_str());
  for (const std::string& note : rep.notes) std::printf("  note: %s\n", note.c_str());
  std::printf("  ran=%s outcome_match=%s bytes_match=%s => %s\n", rep.ran ? "yes" : "no",
              rep.outcome_match ? "yes" : "no", rep.bytes_match ? "yes" : "no",
              rep.ok() ? "REPRODUCED" : "DIVERGED");
  return rep.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <capture.json> [more.json ...]\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (replay_file(argv[i]) != 0) rc = 1;
  }
  return rc;
}
