# Empty compiler generated dependencies file for graphene_bloom.
# This may be replaced when dependencies are built.
