
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bloom/bloom_filter.cpp" "src/CMakeFiles/graphene_bloom.dir/bloom/bloom_filter.cpp.o" "gcc" "src/CMakeFiles/graphene_bloom.dir/bloom/bloom_filter.cpp.o.d"
  "/root/repo/src/bloom/bloom_math.cpp" "src/CMakeFiles/graphene_bloom.dir/bloom/bloom_math.cpp.o" "gcc" "src/CMakeFiles/graphene_bloom.dir/bloom/bloom_math.cpp.o.d"
  "/root/repo/src/bloom/cuckoo_filter.cpp" "src/CMakeFiles/graphene_bloom.dir/bloom/cuckoo_filter.cpp.o" "gcc" "src/CMakeFiles/graphene_bloom.dir/bloom/cuckoo_filter.cpp.o.d"
  "/root/repo/src/bloom/golomb_set.cpp" "src/CMakeFiles/graphene_bloom.dir/bloom/golomb_set.cpp.o" "gcc" "src/CMakeFiles/graphene_bloom.dir/bloom/golomb_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphene_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
