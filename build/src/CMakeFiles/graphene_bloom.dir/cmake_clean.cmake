file(REMOVE_RECURSE
  "CMakeFiles/graphene_bloom.dir/bloom/bloom_filter.cpp.o"
  "CMakeFiles/graphene_bloom.dir/bloom/bloom_filter.cpp.o.d"
  "CMakeFiles/graphene_bloom.dir/bloom/bloom_math.cpp.o"
  "CMakeFiles/graphene_bloom.dir/bloom/bloom_math.cpp.o.d"
  "CMakeFiles/graphene_bloom.dir/bloom/cuckoo_filter.cpp.o"
  "CMakeFiles/graphene_bloom.dir/bloom/cuckoo_filter.cpp.o.d"
  "CMakeFiles/graphene_bloom.dir/bloom/golomb_set.cpp.o"
  "CMakeFiles/graphene_bloom.dir/bloom/golomb_set.cpp.o.d"
  "libgraphene_bloom.a"
  "libgraphene_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
