file(REMOVE_RECURSE
  "libgraphene_bloom.a"
)
