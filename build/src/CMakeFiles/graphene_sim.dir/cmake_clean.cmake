file(REMOVE_RECURSE
  "CMakeFiles/graphene_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/graphene_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/graphene_sim.dir/sim/scenario.cpp.o"
  "CMakeFiles/graphene_sim.dir/sim/scenario.cpp.o.d"
  "CMakeFiles/graphene_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/graphene_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/graphene_sim.dir/sim/table.cpp.o"
  "CMakeFiles/graphene_sim.dir/sim/table.cpp.o.d"
  "libgraphene_sim.a"
  "libgraphene_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
