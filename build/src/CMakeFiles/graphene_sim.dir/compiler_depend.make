# Empty compiler generated dependencies file for graphene_sim.
# This may be replaced when dependencies are built.
