file(REMOVE_RECURSE
  "libgraphene_sim.a"
)
