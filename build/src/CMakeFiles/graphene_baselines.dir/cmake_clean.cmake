file(REMOVE_RECURSE
  "CMakeFiles/graphene_baselines.dir/baselines/bloom_only.cpp.o"
  "CMakeFiles/graphene_baselines.dir/baselines/bloom_only.cpp.o.d"
  "CMakeFiles/graphene_baselines.dir/baselines/compact_blocks.cpp.o"
  "CMakeFiles/graphene_baselines.dir/baselines/compact_blocks.cpp.o.d"
  "CMakeFiles/graphene_baselines.dir/baselines/difference_digest.cpp.o"
  "CMakeFiles/graphene_baselines.dir/baselines/difference_digest.cpp.o.d"
  "CMakeFiles/graphene_baselines.dir/baselines/xthin.cpp.o"
  "CMakeFiles/graphene_baselines.dir/baselines/xthin.cpp.o.d"
  "libgraphene_baselines.a"
  "libgraphene_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
