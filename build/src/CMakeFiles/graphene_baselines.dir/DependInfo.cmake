
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bloom_only.cpp" "src/CMakeFiles/graphene_baselines.dir/baselines/bloom_only.cpp.o" "gcc" "src/CMakeFiles/graphene_baselines.dir/baselines/bloom_only.cpp.o.d"
  "/root/repo/src/baselines/compact_blocks.cpp" "src/CMakeFiles/graphene_baselines.dir/baselines/compact_blocks.cpp.o" "gcc" "src/CMakeFiles/graphene_baselines.dir/baselines/compact_blocks.cpp.o.d"
  "/root/repo/src/baselines/difference_digest.cpp" "src/CMakeFiles/graphene_baselines.dir/baselines/difference_digest.cpp.o" "gcc" "src/CMakeFiles/graphene_baselines.dir/baselines/difference_digest.cpp.o.d"
  "/root/repo/src/baselines/xthin.cpp" "src/CMakeFiles/graphene_baselines.dir/baselines/xthin.cpp.o" "gcc" "src/CMakeFiles/graphene_baselines.dir/baselines/xthin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphene_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_iblt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
