file(REMOVE_RECURSE
  "libgraphene_baselines.a"
)
