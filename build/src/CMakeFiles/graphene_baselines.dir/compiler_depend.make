# Empty compiler generated dependencies file for graphene_baselines.
# This may be replaced when dependencies are built.
