file(REMOVE_RECURSE
  "CMakeFiles/graphene_net.dir/net/channel.cpp.o"
  "CMakeFiles/graphene_net.dir/net/channel.cpp.o.d"
  "CMakeFiles/graphene_net.dir/net/message.cpp.o"
  "CMakeFiles/graphene_net.dir/net/message.cpp.o.d"
  "libgraphene_net.a"
  "libgraphene_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
