# Empty dependencies file for graphene_net.
# This may be replaced when dependencies are built.
