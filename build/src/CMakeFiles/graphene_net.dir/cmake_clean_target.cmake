file(REMOVE_RECURSE
  "libgraphene_net.a"
)
