
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphene/bounds.cpp" "src/CMakeFiles/graphene_core.dir/graphene/bounds.cpp.o" "gcc" "src/CMakeFiles/graphene_core.dir/graphene/bounds.cpp.o.d"
  "/root/repo/src/graphene/mempool_sync.cpp" "src/CMakeFiles/graphene_core.dir/graphene/mempool_sync.cpp.o" "gcc" "src/CMakeFiles/graphene_core.dir/graphene/mempool_sync.cpp.o.d"
  "/root/repo/src/graphene/messages.cpp" "src/CMakeFiles/graphene_core.dir/graphene/messages.cpp.o" "gcc" "src/CMakeFiles/graphene_core.dir/graphene/messages.cpp.o.d"
  "/root/repo/src/graphene/params.cpp" "src/CMakeFiles/graphene_core.dir/graphene/params.cpp.o" "gcc" "src/CMakeFiles/graphene_core.dir/graphene/params.cpp.o.d"
  "/root/repo/src/graphene/receiver.cpp" "src/CMakeFiles/graphene_core.dir/graphene/receiver.cpp.o" "gcc" "src/CMakeFiles/graphene_core.dir/graphene/receiver.cpp.o.d"
  "/root/repo/src/graphene/sender.cpp" "src/CMakeFiles/graphene_core.dir/graphene/sender.cpp.o" "gcc" "src/CMakeFiles/graphene_core.dir/graphene/sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphene_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_iblt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
