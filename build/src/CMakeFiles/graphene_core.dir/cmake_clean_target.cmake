file(REMOVE_RECURSE
  "libgraphene_core.a"
)
