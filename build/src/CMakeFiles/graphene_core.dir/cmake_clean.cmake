file(REMOVE_RECURSE
  "CMakeFiles/graphene_core.dir/graphene/bounds.cpp.o"
  "CMakeFiles/graphene_core.dir/graphene/bounds.cpp.o.d"
  "CMakeFiles/graphene_core.dir/graphene/mempool_sync.cpp.o"
  "CMakeFiles/graphene_core.dir/graphene/mempool_sync.cpp.o.d"
  "CMakeFiles/graphene_core.dir/graphene/messages.cpp.o"
  "CMakeFiles/graphene_core.dir/graphene/messages.cpp.o.d"
  "CMakeFiles/graphene_core.dir/graphene/params.cpp.o"
  "CMakeFiles/graphene_core.dir/graphene/params.cpp.o.d"
  "CMakeFiles/graphene_core.dir/graphene/receiver.cpp.o"
  "CMakeFiles/graphene_core.dir/graphene/receiver.cpp.o.d"
  "CMakeFiles/graphene_core.dir/graphene/sender.cpp.o"
  "CMakeFiles/graphene_core.dir/graphene/sender.cpp.o.d"
  "libgraphene_core.a"
  "libgraphene_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
