# Empty compiler generated dependencies file for graphene_core.
# This may be replaced when dependencies are built.
