# Empty dependencies file for graphene_iblt.
# This may be replaced when dependencies are built.
