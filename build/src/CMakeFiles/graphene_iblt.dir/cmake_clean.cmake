file(REMOVE_RECURSE
  "CMakeFiles/graphene_iblt.dir/iblt/hypergraph.cpp.o"
  "CMakeFiles/graphene_iblt.dir/iblt/hypergraph.cpp.o.d"
  "CMakeFiles/graphene_iblt.dir/iblt/iblt.cpp.o"
  "CMakeFiles/graphene_iblt.dir/iblt/iblt.cpp.o.d"
  "CMakeFiles/graphene_iblt.dir/iblt/kv_iblt.cpp.o"
  "CMakeFiles/graphene_iblt.dir/iblt/kv_iblt.cpp.o.d"
  "CMakeFiles/graphene_iblt.dir/iblt/param_search.cpp.o"
  "CMakeFiles/graphene_iblt.dir/iblt/param_search.cpp.o.d"
  "CMakeFiles/graphene_iblt.dir/iblt/param_table.cpp.o"
  "CMakeFiles/graphene_iblt.dir/iblt/param_table.cpp.o.d"
  "CMakeFiles/graphene_iblt.dir/iblt/pingpong.cpp.o"
  "CMakeFiles/graphene_iblt.dir/iblt/pingpong.cpp.o.d"
  "CMakeFiles/graphene_iblt.dir/iblt/strata_estimator.cpp.o"
  "CMakeFiles/graphene_iblt.dir/iblt/strata_estimator.cpp.o.d"
  "libgraphene_iblt.a"
  "libgraphene_iblt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_iblt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
