
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iblt/hypergraph.cpp" "src/CMakeFiles/graphene_iblt.dir/iblt/hypergraph.cpp.o" "gcc" "src/CMakeFiles/graphene_iblt.dir/iblt/hypergraph.cpp.o.d"
  "/root/repo/src/iblt/iblt.cpp" "src/CMakeFiles/graphene_iblt.dir/iblt/iblt.cpp.o" "gcc" "src/CMakeFiles/graphene_iblt.dir/iblt/iblt.cpp.o.d"
  "/root/repo/src/iblt/kv_iblt.cpp" "src/CMakeFiles/graphene_iblt.dir/iblt/kv_iblt.cpp.o" "gcc" "src/CMakeFiles/graphene_iblt.dir/iblt/kv_iblt.cpp.o.d"
  "/root/repo/src/iblt/param_search.cpp" "src/CMakeFiles/graphene_iblt.dir/iblt/param_search.cpp.o" "gcc" "src/CMakeFiles/graphene_iblt.dir/iblt/param_search.cpp.o.d"
  "/root/repo/src/iblt/param_table.cpp" "src/CMakeFiles/graphene_iblt.dir/iblt/param_table.cpp.o" "gcc" "src/CMakeFiles/graphene_iblt.dir/iblt/param_table.cpp.o.d"
  "/root/repo/src/iblt/pingpong.cpp" "src/CMakeFiles/graphene_iblt.dir/iblt/pingpong.cpp.o" "gcc" "src/CMakeFiles/graphene_iblt.dir/iblt/pingpong.cpp.o.d"
  "/root/repo/src/iblt/strata_estimator.cpp" "src/CMakeFiles/graphene_iblt.dir/iblt/strata_estimator.cpp.o" "gcc" "src/CMakeFiles/graphene_iblt.dir/iblt/strata_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphene_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
