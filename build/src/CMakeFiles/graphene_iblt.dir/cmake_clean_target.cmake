file(REMOVE_RECURSE
  "libgraphene_iblt.a"
)
