file(REMOVE_RECURSE
  "CMakeFiles/graphene_p2p.dir/p2p/propagation.cpp.o"
  "CMakeFiles/graphene_p2p.dir/p2p/propagation.cpp.o.d"
  "CMakeFiles/graphene_p2p.dir/p2p/topology.cpp.o"
  "CMakeFiles/graphene_p2p.dir/p2p/topology.cpp.o.d"
  "libgraphene_p2p.a"
  "libgraphene_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
