file(REMOVE_RECURSE
  "libgraphene_p2p.a"
)
