# Empty compiler generated dependencies file for graphene_p2p.
# This may be replaced when dependencies are built.
