# Empty compiler generated dependencies file for graphene_util.
# This may be replaced when dependencies are built.
