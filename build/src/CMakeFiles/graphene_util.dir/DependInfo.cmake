
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/graphene_util.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/graphene_util.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/hash.cpp" "src/CMakeFiles/graphene_util.dir/util/hash.cpp.o" "gcc" "src/CMakeFiles/graphene_util.dir/util/hash.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "src/CMakeFiles/graphene_util.dir/util/hex.cpp.o" "gcc" "src/CMakeFiles/graphene_util.dir/util/hex.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/CMakeFiles/graphene_util.dir/util/random.cpp.o" "gcc" "src/CMakeFiles/graphene_util.dir/util/random.cpp.o.d"
  "/root/repo/src/util/sha256.cpp" "src/CMakeFiles/graphene_util.dir/util/sha256.cpp.o" "gcc" "src/CMakeFiles/graphene_util.dir/util/sha256.cpp.o.d"
  "/root/repo/src/util/siphash.cpp" "src/CMakeFiles/graphene_util.dir/util/siphash.cpp.o" "gcc" "src/CMakeFiles/graphene_util.dir/util/siphash.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/graphene_util.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/graphene_util.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/varint.cpp" "src/CMakeFiles/graphene_util.dir/util/varint.cpp.o" "gcc" "src/CMakeFiles/graphene_util.dir/util/varint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
