file(REMOVE_RECURSE
  "CMakeFiles/graphene_util.dir/util/bytes.cpp.o"
  "CMakeFiles/graphene_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/graphene_util.dir/util/hash.cpp.o"
  "CMakeFiles/graphene_util.dir/util/hash.cpp.o.d"
  "CMakeFiles/graphene_util.dir/util/hex.cpp.o"
  "CMakeFiles/graphene_util.dir/util/hex.cpp.o.d"
  "CMakeFiles/graphene_util.dir/util/random.cpp.o"
  "CMakeFiles/graphene_util.dir/util/random.cpp.o.d"
  "CMakeFiles/graphene_util.dir/util/sha256.cpp.o"
  "CMakeFiles/graphene_util.dir/util/sha256.cpp.o.d"
  "CMakeFiles/graphene_util.dir/util/siphash.cpp.o"
  "CMakeFiles/graphene_util.dir/util/siphash.cpp.o.d"
  "CMakeFiles/graphene_util.dir/util/stats.cpp.o"
  "CMakeFiles/graphene_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/graphene_util.dir/util/varint.cpp.o"
  "CMakeFiles/graphene_util.dir/util/varint.cpp.o.d"
  "libgraphene_util.a"
  "libgraphene_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
