file(REMOVE_RECURSE
  "libgraphene_util.a"
)
