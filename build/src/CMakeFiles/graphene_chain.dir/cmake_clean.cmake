file(REMOVE_RECURSE
  "CMakeFiles/graphene_chain.dir/chain/block.cpp.o"
  "CMakeFiles/graphene_chain.dir/chain/block.cpp.o.d"
  "CMakeFiles/graphene_chain.dir/chain/mempool.cpp.o"
  "CMakeFiles/graphene_chain.dir/chain/mempool.cpp.o.d"
  "CMakeFiles/graphene_chain.dir/chain/merkle.cpp.o"
  "CMakeFiles/graphene_chain.dir/chain/merkle.cpp.o.d"
  "CMakeFiles/graphene_chain.dir/chain/transaction.cpp.o"
  "CMakeFiles/graphene_chain.dir/chain/transaction.cpp.o.d"
  "CMakeFiles/graphene_chain.dir/chain/workload.cpp.o"
  "CMakeFiles/graphene_chain.dir/chain/workload.cpp.o.d"
  "libgraphene_chain.a"
  "libgraphene_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
