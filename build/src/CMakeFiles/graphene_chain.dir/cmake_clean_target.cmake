file(REMOVE_RECURSE
  "libgraphene_chain.a"
)
