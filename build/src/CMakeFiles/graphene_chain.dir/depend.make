# Empty dependencies file for graphene_chain.
# This may be replaced when dependencies are built.
