
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cpp" "src/CMakeFiles/graphene_chain.dir/chain/block.cpp.o" "gcc" "src/CMakeFiles/graphene_chain.dir/chain/block.cpp.o.d"
  "/root/repo/src/chain/mempool.cpp" "src/CMakeFiles/graphene_chain.dir/chain/mempool.cpp.o" "gcc" "src/CMakeFiles/graphene_chain.dir/chain/mempool.cpp.o.d"
  "/root/repo/src/chain/merkle.cpp" "src/CMakeFiles/graphene_chain.dir/chain/merkle.cpp.o" "gcc" "src/CMakeFiles/graphene_chain.dir/chain/merkle.cpp.o.d"
  "/root/repo/src/chain/transaction.cpp" "src/CMakeFiles/graphene_chain.dir/chain/transaction.cpp.o" "gcc" "src/CMakeFiles/graphene_chain.dir/chain/transaction.cpp.o.d"
  "/root/repo/src/chain/workload.cpp" "src/CMakeFiles/graphene_chain.dir/chain/workload.cpp.o" "gcc" "src/CMakeFiles/graphene_chain.dir/chain/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphene_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
