# Empty dependencies file for graphene_reconcile.
# This may be replaced when dependencies are built.
