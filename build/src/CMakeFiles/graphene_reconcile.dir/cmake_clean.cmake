file(REMOVE_RECURSE
  "CMakeFiles/graphene_reconcile.dir/reconcile/set_reconciler.cpp.o"
  "CMakeFiles/graphene_reconcile.dir/reconcile/set_reconciler.cpp.o.d"
  "libgraphene_reconcile.a"
  "libgraphene_reconcile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphene_reconcile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
