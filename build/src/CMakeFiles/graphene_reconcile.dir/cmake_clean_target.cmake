file(REMOVE_RECURSE
  "libgraphene_reconcile.a"
)
