# Empty compiler generated dependencies file for gen_param_table.
# This may be replaced when dependencies are built.
