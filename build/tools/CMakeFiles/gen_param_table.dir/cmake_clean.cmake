file(REMOVE_RECURSE
  "CMakeFiles/gen_param_table.dir/gen_param_table.cpp.o"
  "CMakeFiles/gen_param_table.dir/gen_param_table.cpp.o.d"
  "gen_param_table"
  "gen_param_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_param_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
