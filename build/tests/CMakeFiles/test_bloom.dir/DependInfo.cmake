
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bloom/test_bloom_filter.cpp" "tests/CMakeFiles/test_bloom.dir/bloom/test_bloom_filter.cpp.o" "gcc" "tests/CMakeFiles/test_bloom.dir/bloom/test_bloom_filter.cpp.o.d"
  "/root/repo/tests/bloom/test_bloom_math.cpp" "tests/CMakeFiles/test_bloom.dir/bloom/test_bloom_math.cpp.o" "gcc" "tests/CMakeFiles/test_bloom.dir/bloom/test_bloom_math.cpp.o.d"
  "/root/repo/tests/bloom/test_cuckoo_filter.cpp" "tests/CMakeFiles/test_bloom.dir/bloom/test_cuckoo_filter.cpp.o" "gcc" "tests/CMakeFiles/test_bloom.dir/bloom/test_cuckoo_filter.cpp.o.d"
  "/root/repo/tests/bloom/test_golomb_set.cpp" "tests/CMakeFiles/test_bloom.dir/bloom/test_golomb_set.cpp.o" "gcc" "tests/CMakeFiles/test_bloom.dir/bloom/test_golomb_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphene_reconcile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_iblt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
