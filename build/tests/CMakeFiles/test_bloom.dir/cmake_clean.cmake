file(REMOVE_RECURSE
  "CMakeFiles/test_bloom.dir/bloom/test_bloom_filter.cpp.o"
  "CMakeFiles/test_bloom.dir/bloom/test_bloom_filter.cpp.o.d"
  "CMakeFiles/test_bloom.dir/bloom/test_bloom_math.cpp.o"
  "CMakeFiles/test_bloom.dir/bloom/test_bloom_math.cpp.o.d"
  "CMakeFiles/test_bloom.dir/bloom/test_cuckoo_filter.cpp.o"
  "CMakeFiles/test_bloom.dir/bloom/test_cuckoo_filter.cpp.o.d"
  "CMakeFiles/test_bloom.dir/bloom/test_golomb_set.cpp.o"
  "CMakeFiles/test_bloom.dir/bloom/test_golomb_set.cpp.o.d"
  "test_bloom"
  "test_bloom.pdb"
  "test_bloom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
