file(REMOVE_RECURSE
  "CMakeFiles/test_baselines.dir/baselines/test_bloom_only.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_bloom_only.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_compact_blocks.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_compact_blocks.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_difference_digest.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_difference_digest.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_xthin.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_xthin.cpp.o.d"
  "test_baselines"
  "test_baselines.pdb"
  "test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
