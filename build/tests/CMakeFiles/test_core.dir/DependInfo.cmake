
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graphene/test_bounds.cpp" "tests/CMakeFiles/test_core.dir/graphene/test_bounds.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/graphene/test_bounds.cpp.o.d"
  "/root/repo/tests/graphene/test_config_variants.cpp" "tests/CMakeFiles/test_core.dir/graphene/test_config_variants.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/graphene/test_config_variants.cpp.o.d"
  "/root/repo/tests/graphene/test_fuzz_messages.cpp" "tests/CMakeFiles/test_core.dir/graphene/test_fuzz_messages.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/graphene/test_fuzz_messages.cpp.o.d"
  "/root/repo/tests/graphene/test_mempool_sync.cpp" "tests/CMakeFiles/test_core.dir/graphene/test_mempool_sync.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/graphene/test_mempool_sync.cpp.o.d"
  "/root/repo/tests/graphene/test_messages.cpp" "tests/CMakeFiles/test_core.dir/graphene/test_messages.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/graphene/test_messages.cpp.o.d"
  "/root/repo/tests/graphene/test_params.cpp" "tests/CMakeFiles/test_core.dir/graphene/test_params.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/graphene/test_params.cpp.o.d"
  "/root/repo/tests/graphene/test_protocol1.cpp" "tests/CMakeFiles/test_core.dir/graphene/test_protocol1.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/graphene/test_protocol1.cpp.o.d"
  "/root/repo/tests/graphene/test_protocol2.cpp" "tests/CMakeFiles/test_core.dir/graphene/test_protocol2.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/graphene/test_protocol2.cpp.o.d"
  "/root/repo/tests/graphene/test_receiver_edges.cpp" "tests/CMakeFiles/test_core.dir/graphene/test_receiver_edges.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/graphene/test_receiver_edges.cpp.o.d"
  "/root/repo/tests/graphene/test_security.cpp" "tests/CMakeFiles/test_core.dir/graphene/test_security.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/graphene/test_security.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphene_reconcile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_iblt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
