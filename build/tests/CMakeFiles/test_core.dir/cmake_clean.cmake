file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/graphene/test_bounds.cpp.o"
  "CMakeFiles/test_core.dir/graphene/test_bounds.cpp.o.d"
  "CMakeFiles/test_core.dir/graphene/test_config_variants.cpp.o"
  "CMakeFiles/test_core.dir/graphene/test_config_variants.cpp.o.d"
  "CMakeFiles/test_core.dir/graphene/test_fuzz_messages.cpp.o"
  "CMakeFiles/test_core.dir/graphene/test_fuzz_messages.cpp.o.d"
  "CMakeFiles/test_core.dir/graphene/test_mempool_sync.cpp.o"
  "CMakeFiles/test_core.dir/graphene/test_mempool_sync.cpp.o.d"
  "CMakeFiles/test_core.dir/graphene/test_messages.cpp.o"
  "CMakeFiles/test_core.dir/graphene/test_messages.cpp.o.d"
  "CMakeFiles/test_core.dir/graphene/test_params.cpp.o"
  "CMakeFiles/test_core.dir/graphene/test_params.cpp.o.d"
  "CMakeFiles/test_core.dir/graphene/test_protocol1.cpp.o"
  "CMakeFiles/test_core.dir/graphene/test_protocol1.cpp.o.d"
  "CMakeFiles/test_core.dir/graphene/test_protocol2.cpp.o"
  "CMakeFiles/test_core.dir/graphene/test_protocol2.cpp.o.d"
  "CMakeFiles/test_core.dir/graphene/test_receiver_edges.cpp.o"
  "CMakeFiles/test_core.dir/graphene/test_receiver_edges.cpp.o.d"
  "CMakeFiles/test_core.dir/graphene/test_security.cpp.o"
  "CMakeFiles/test_core.dir/graphene/test_security.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
