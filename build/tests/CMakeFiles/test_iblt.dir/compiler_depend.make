# Empty compiler generated dependencies file for test_iblt.
# This may be replaced when dependencies are built.
