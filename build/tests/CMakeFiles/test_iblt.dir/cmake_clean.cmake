file(REMOVE_RECURSE
  "CMakeFiles/test_iblt.dir/iblt/test_hypergraph.cpp.o"
  "CMakeFiles/test_iblt.dir/iblt/test_hypergraph.cpp.o.d"
  "CMakeFiles/test_iblt.dir/iblt/test_iblt.cpp.o"
  "CMakeFiles/test_iblt.dir/iblt/test_iblt.cpp.o.d"
  "CMakeFiles/test_iblt.dir/iblt/test_kv_iblt.cpp.o"
  "CMakeFiles/test_iblt.dir/iblt/test_kv_iblt.cpp.o.d"
  "CMakeFiles/test_iblt.dir/iblt/test_param_search.cpp.o"
  "CMakeFiles/test_iblt.dir/iblt/test_param_search.cpp.o.d"
  "CMakeFiles/test_iblt.dir/iblt/test_param_table.cpp.o"
  "CMakeFiles/test_iblt.dir/iblt/test_param_table.cpp.o.d"
  "CMakeFiles/test_iblt.dir/iblt/test_pingpong.cpp.o"
  "CMakeFiles/test_iblt.dir/iblt/test_pingpong.cpp.o.d"
  "CMakeFiles/test_iblt.dir/iblt/test_pingpong_multi.cpp.o"
  "CMakeFiles/test_iblt.dir/iblt/test_pingpong_multi.cpp.o.d"
  "CMakeFiles/test_iblt.dir/iblt/test_strata_estimator.cpp.o"
  "CMakeFiles/test_iblt.dir/iblt/test_strata_estimator.cpp.o.d"
  "test_iblt"
  "test_iblt.pdb"
  "test_iblt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iblt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
