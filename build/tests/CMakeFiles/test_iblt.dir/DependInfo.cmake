
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/iblt/test_hypergraph.cpp" "tests/CMakeFiles/test_iblt.dir/iblt/test_hypergraph.cpp.o" "gcc" "tests/CMakeFiles/test_iblt.dir/iblt/test_hypergraph.cpp.o.d"
  "/root/repo/tests/iblt/test_iblt.cpp" "tests/CMakeFiles/test_iblt.dir/iblt/test_iblt.cpp.o" "gcc" "tests/CMakeFiles/test_iblt.dir/iblt/test_iblt.cpp.o.d"
  "/root/repo/tests/iblt/test_kv_iblt.cpp" "tests/CMakeFiles/test_iblt.dir/iblt/test_kv_iblt.cpp.o" "gcc" "tests/CMakeFiles/test_iblt.dir/iblt/test_kv_iblt.cpp.o.d"
  "/root/repo/tests/iblt/test_param_search.cpp" "tests/CMakeFiles/test_iblt.dir/iblt/test_param_search.cpp.o" "gcc" "tests/CMakeFiles/test_iblt.dir/iblt/test_param_search.cpp.o.d"
  "/root/repo/tests/iblt/test_param_table.cpp" "tests/CMakeFiles/test_iblt.dir/iblt/test_param_table.cpp.o" "gcc" "tests/CMakeFiles/test_iblt.dir/iblt/test_param_table.cpp.o.d"
  "/root/repo/tests/iblt/test_pingpong.cpp" "tests/CMakeFiles/test_iblt.dir/iblt/test_pingpong.cpp.o" "gcc" "tests/CMakeFiles/test_iblt.dir/iblt/test_pingpong.cpp.o.d"
  "/root/repo/tests/iblt/test_pingpong_multi.cpp" "tests/CMakeFiles/test_iblt.dir/iblt/test_pingpong_multi.cpp.o" "gcc" "tests/CMakeFiles/test_iblt.dir/iblt/test_pingpong_multi.cpp.o.d"
  "/root/repo/tests/iblt/test_strata_estimator.cpp" "tests/CMakeFiles/test_iblt.dir/iblt/test_strata_estimator.cpp.o" "gcc" "tests/CMakeFiles/test_iblt.dir/iblt/test_strata_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphene_reconcile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_iblt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
