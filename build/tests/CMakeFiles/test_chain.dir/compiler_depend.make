# Empty compiler generated dependencies file for test_chain.
# This may be replaced when dependencies are built.
