file(REMOVE_RECURSE
  "CMakeFiles/test_chain.dir/chain/test_block.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_block.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_mempool.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_mempool.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_merkle.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_merkle.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_transaction.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_transaction.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_workload.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_workload.cpp.o.d"
  "test_chain"
  "test_chain.pdb"
  "test_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
