# Empty dependencies file for test_reconcile.
# This may be replaced when dependencies are built.
