file(REMOVE_RECURSE
  "CMakeFiles/test_reconcile.dir/reconcile/test_set_reconciler.cpp.o"
  "CMakeFiles/test_reconcile.dir/reconcile/test_set_reconciler.cpp.o.d"
  "test_reconcile"
  "test_reconcile.pdb"
  "test_reconcile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reconcile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
