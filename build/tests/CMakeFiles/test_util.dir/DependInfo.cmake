
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_bytes.cpp" "tests/CMakeFiles/test_util.dir/util/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_bytes.cpp.o.d"
  "/root/repo/tests/util/test_hash.cpp" "tests/CMakeFiles/test_util.dir/util/test_hash.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_hash.cpp.o.d"
  "/root/repo/tests/util/test_hex.cpp" "tests/CMakeFiles/test_util.dir/util/test_hex.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_hex.cpp.o.d"
  "/root/repo/tests/util/test_random.cpp" "tests/CMakeFiles/test_util.dir/util/test_random.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_random.cpp.o.d"
  "/root/repo/tests/util/test_sha256.cpp" "tests/CMakeFiles/test_util.dir/util/test_sha256.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_sha256.cpp.o.d"
  "/root/repo/tests/util/test_siphash.cpp" "tests/CMakeFiles/test_util.dir/util/test_siphash.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_siphash.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_varint.cpp" "tests/CMakeFiles/test_util.dir/util/test_varint.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_varint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphene_reconcile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_iblt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
