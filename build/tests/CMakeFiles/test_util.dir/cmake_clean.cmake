file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/test_bytes.cpp.o"
  "CMakeFiles/test_util.dir/util/test_bytes.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_hash.cpp.o"
  "CMakeFiles/test_util.dir/util/test_hash.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_hex.cpp.o"
  "CMakeFiles/test_util.dir/util/test_hex.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_random.cpp.o"
  "CMakeFiles/test_util.dir/util/test_random.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_sha256.cpp.o"
  "CMakeFiles/test_util.dir/util/test_sha256.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_siphash.cpp.o"
  "CMakeFiles/test_util.dir/util/test_siphash.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_stats.cpp.o"
  "CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_varint.cpp.o"
  "CMakeFiles/test_util.dir/util/test_varint.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
