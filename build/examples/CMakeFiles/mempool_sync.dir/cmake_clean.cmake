file(REMOVE_RECURSE
  "CMakeFiles/mempool_sync.dir/mempool_sync.cpp.o"
  "CMakeFiles/mempool_sync.dir/mempool_sync.cpp.o.d"
  "mempool_sync"
  "mempool_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempool_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
