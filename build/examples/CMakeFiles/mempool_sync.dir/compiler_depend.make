# Empty compiler generated dependencies file for mempool_sync.
# This may be replaced when dependencies are built.
