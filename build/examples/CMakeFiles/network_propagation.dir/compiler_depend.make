# Empty compiler generated dependencies file for network_propagation.
# This may be replaced when dependencies are built.
