file(REMOVE_RECURSE
  "CMakeFiles/network_propagation.dir/network_propagation.cpp.o"
  "CMakeFiles/network_propagation.dir/network_propagation.cpp.o.d"
  "network_propagation"
  "network_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
