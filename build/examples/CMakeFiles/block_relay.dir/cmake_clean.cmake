file(REMOVE_RECURSE
  "CMakeFiles/block_relay.dir/block_relay.cpp.o"
  "CMakeFiles/block_relay.dir/block_relay.cpp.o.d"
  "block_relay"
  "block_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
