# Empty dependencies file for block_relay.
# This may be replaced when dependencies are built.
