# Empty dependencies file for cert_revocation.
# This may be replaced when dependencies are built.
