file(REMOVE_RECURSE
  "CMakeFiles/cert_revocation.dir/cert_revocation.cpp.o"
  "CMakeFiles/cert_revocation.dir/cert_revocation.cpp.o.d"
  "cert_revocation"
  "cert_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cert_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
