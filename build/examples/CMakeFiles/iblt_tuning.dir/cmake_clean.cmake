file(REMOVE_RECURSE
  "CMakeFiles/iblt_tuning.dir/iblt_tuning.cpp.o"
  "CMakeFiles/iblt_tuning.dir/iblt_tuning.cpp.o.d"
  "iblt_tuning"
  "iblt_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iblt_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
