# Empty compiler generated dependencies file for iblt_tuning.
# This may be replaced when dependencies are built.
