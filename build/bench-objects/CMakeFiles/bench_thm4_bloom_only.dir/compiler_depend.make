# Empty compiler generated dependencies file for bench_thm4_bloom_only.
# This may be replaced when dependencies are built.
