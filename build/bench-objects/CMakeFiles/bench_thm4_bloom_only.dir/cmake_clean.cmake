file(REMOVE_RECURSE
  "../bench/bench_thm4_bloom_only"
  "../bench/bench_thm4_bloom_only.pdb"
  "CMakeFiles/bench_thm4_bloom_only.dir/thm4_bloom_only.cpp.o"
  "CMakeFiles/bench_thm4_bloom_only.dir/thm4_bloom_only.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm4_bloom_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
