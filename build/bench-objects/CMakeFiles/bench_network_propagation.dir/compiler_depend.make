# Empty compiler generated dependencies file for bench_network_propagation.
# This may be replaced when dependencies are built.
