file(REMOVE_RECURSE
  "../bench/bench_network_propagation"
  "../bench/bench_network_propagation.pdb"
  "CMakeFiles/bench_network_propagation.dir/network_propagation.cpp.o"
  "CMakeFiles/bench_network_propagation.dir/network_propagation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
