# Empty dependencies file for bench_fig18_mempool_sync.
# This may be replaced when dependencies are built.
