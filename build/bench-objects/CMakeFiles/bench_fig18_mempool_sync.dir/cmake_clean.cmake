file(REMOVE_RECURSE
  "../bench/bench_fig18_mempool_sync"
  "../bench/bench_fig18_mempool_sync.pdb"
  "CMakeFiles/bench_fig18_mempool_sync.dir/fig18_mempool_sync.cpp.o"
  "CMakeFiles/bench_fig18_mempool_sync.dir/fig18_mempool_sync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_mempool_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
