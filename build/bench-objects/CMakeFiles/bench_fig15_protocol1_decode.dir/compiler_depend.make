# Empty compiler generated dependencies file for bench_fig15_protocol1_decode.
# This may be replaced when dependencies are built.
