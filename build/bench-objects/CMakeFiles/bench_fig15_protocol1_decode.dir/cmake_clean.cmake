file(REMOVE_RECURSE
  "../bench/bench_fig15_protocol1_decode"
  "../bench/bench_fig15_protocol1_decode.pdb"
  "CMakeFiles/bench_fig15_protocol1_decode.dir/fig15_protocol1_decode.cpp.o"
  "CMakeFiles/bench_fig15_protocol1_decode.dir/fig15_protocol1_decode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_protocol1_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
