# Empty dependencies file for bench_param_search_speed.
# This may be replaced when dependencies are built.
