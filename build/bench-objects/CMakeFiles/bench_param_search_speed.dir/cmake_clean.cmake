file(REMOVE_RECURSE
  "../bench/bench_param_search_speed"
  "../bench/bench_param_search_speed.pdb"
  "CMakeFiles/bench_param_search_speed.dir/param_search_speed.cpp.o"
  "CMakeFiles/bench_param_search_speed.dir/param_search_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_search_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
