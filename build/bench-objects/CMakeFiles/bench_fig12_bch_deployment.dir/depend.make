# Empty dependencies file for bench_fig12_bch_deployment.
# This may be replaced when dependencies are built.
