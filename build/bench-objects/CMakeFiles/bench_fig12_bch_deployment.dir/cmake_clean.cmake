file(REMOVE_RECURSE
  "../bench/bench_fig12_bch_deployment"
  "../bench/bench_fig12_bch_deployment.pdb"
  "CMakeFiles/bench_fig12_bch_deployment.dir/fig12_bch_deployment.cpp.o"
  "CMakeFiles/bench_fig12_bch_deployment.dir/fig12_bch_deployment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_bch_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
