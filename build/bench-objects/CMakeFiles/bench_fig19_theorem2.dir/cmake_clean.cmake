file(REMOVE_RECURSE
  "../bench/bench_fig19_theorem2"
  "../bench/bench_fig19_theorem2.pdb"
  "CMakeFiles/bench_fig19_theorem2.dir/fig19_theorem2.cpp.o"
  "CMakeFiles/bench_fig19_theorem2.dir/fig19_theorem2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_theorem2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
