# Empty dependencies file for bench_fig19_theorem2.
# This may be replaced when dependencies are built.
