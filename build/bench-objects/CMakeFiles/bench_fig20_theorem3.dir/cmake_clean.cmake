file(REMOVE_RECURSE
  "../bench/bench_fig20_theorem3"
  "../bench/bench_fig20_theorem3.pdb"
  "CMakeFiles/bench_fig20_theorem3.dir/fig20_theorem3.cpp.o"
  "CMakeFiles/bench_fig20_theorem3.dir/fig20_theorem3.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_theorem3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
