# Empty dependencies file for bench_fig20_theorem3.
# This may be replaced when dependencies are built.
