# Empty dependencies file for bench_fig16_protocol2_decode.
# This may be replaced when dependencies are built.
