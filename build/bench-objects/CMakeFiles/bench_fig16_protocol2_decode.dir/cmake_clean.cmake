file(REMOVE_RECURSE
  "../bench/bench_fig16_protocol2_decode"
  "../bench/bench_fig16_protocol2_decode.pdb"
  "CMakeFiles/bench_fig16_protocol2_decode.dir/fig16_protocol2_decode.cpp.o"
  "CMakeFiles/bench_fig16_protocol2_decode.dir/fig16_protocol2_decode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_protocol2_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
