file(REMOVE_RECURSE
  "../bench/bench_filter_alternatives"
  "../bench/bench_filter_alternatives.pdb"
  "CMakeFiles/bench_filter_alternatives.dir/filter_alternatives.cpp.o"
  "CMakeFiles/bench_filter_alternatives.dir/filter_alternatives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filter_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
