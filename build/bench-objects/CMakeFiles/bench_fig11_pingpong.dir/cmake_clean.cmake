file(REMOVE_RECURSE
  "../bench/bench_fig11_pingpong"
  "../bench/bench_fig11_pingpong.pdb"
  "CMakeFiles/bench_fig11_pingpong.dir/fig11_pingpong.cpp.o"
  "CMakeFiles/bench_fig11_pingpong.dir/fig11_pingpong.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
