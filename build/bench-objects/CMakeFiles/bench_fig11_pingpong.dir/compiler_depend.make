# Empty compiler generated dependencies file for bench_fig11_pingpong.
# This may be replaced when dependencies are built.
