# Empty dependencies file for bench_fig14_protocol1_size.
# This may be replaced when dependencies are built.
