file(REMOVE_RECURSE
  "../bench/bench_fig14_protocol1_size"
  "../bench/bench_fig14_protocol1_size.pdb"
  "CMakeFiles/bench_fig14_protocol1_size.dir/fig14_protocol1_size.cpp.o"
  "CMakeFiles/bench_fig14_protocol1_size.dir/fig14_protocol1_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_protocol1_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
