# Empty dependencies file for bench_fig13_ethereum.
# This may be replaced when dependencies are built.
