file(REMOVE_RECURSE
  "../bench/bench_fig13_ethereum"
  "../bench/bench_fig13_ethereum.pdb"
  "CMakeFiles/bench_fig13_ethereum.dir/fig13_ethereum.cpp.o"
  "CMakeFiles/bench_fig13_ethereum.dir/fig13_ethereum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ethereum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
