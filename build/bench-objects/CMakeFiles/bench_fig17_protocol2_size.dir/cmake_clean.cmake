file(REMOVE_RECURSE
  "../bench/bench_fig17_protocol2_size"
  "../bench/bench_fig17_protocol2_size.pdb"
  "CMakeFiles/bench_fig17_protocol2_size.dir/fig17_protocol2_size.cpp.o"
  "CMakeFiles/bench_fig17_protocol2_size.dir/fig17_protocol2_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_protocol2_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
