
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_protocol2_size.cpp" "bench-objects/CMakeFiles/bench_fig17_protocol2_size.dir/fig17_protocol2_size.cpp.o" "gcc" "bench-objects/CMakeFiles/bench_fig17_protocol2_size.dir/fig17_protocol2_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphene_reconcile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_iblt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphene_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
