# Empty compiler generated dependencies file for bench_fig17_protocol2_size.
# This may be replaced when dependencies are built.
