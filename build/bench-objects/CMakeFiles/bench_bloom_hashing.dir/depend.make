# Empty dependencies file for bench_bloom_hashing.
# This may be replaced when dependencies are built.
