file(REMOVE_RECURSE
  "../bench/bench_bloom_hashing"
  "../bench/bench_bloom_hashing.pdb"
  "CMakeFiles/bench_bloom_hashing.dir/bloom_hashing.cpp.o"
  "CMakeFiles/bench_bloom_hashing.dir/bloom_hashing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bloom_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
