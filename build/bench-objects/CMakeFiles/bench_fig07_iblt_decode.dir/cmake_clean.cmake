file(REMOVE_RECURSE
  "../bench/bench_fig07_iblt_decode"
  "../bench/bench_fig07_iblt_decode.pdb"
  "CMakeFiles/bench_fig07_iblt_decode.dir/fig07_iblt_decode.cpp.o"
  "CMakeFiles/bench_fig07_iblt_decode.dir/fig07_iblt_decode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_iblt_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
