# Empty dependencies file for bench_fig07_iblt_decode.
# This may be replaced when dependencies are built.
