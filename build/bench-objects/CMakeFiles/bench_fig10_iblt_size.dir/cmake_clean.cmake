file(REMOVE_RECURSE
  "../bench/bench_fig10_iblt_size"
  "../bench/bench_fig10_iblt_size.pdb"
  "CMakeFiles/bench_fig10_iblt_size.dir/fig10_iblt_size.cpp.o"
  "CMakeFiles/bench_fig10_iblt_size.dir/fig10_iblt_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_iblt_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
