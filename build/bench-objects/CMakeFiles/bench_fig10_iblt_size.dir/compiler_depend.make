# Empty compiler generated dependencies file for bench_fig10_iblt_size.
# This may be replaced when dependencies are built.
