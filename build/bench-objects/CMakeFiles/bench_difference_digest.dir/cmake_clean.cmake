file(REMOVE_RECURSE
  "../bench/bench_difference_digest"
  "../bench/bench_difference_digest.pdb"
  "CMakeFiles/bench_difference_digest.dir/difference_digest.cpp.o"
  "CMakeFiles/bench_difference_digest.dir/difference_digest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_difference_digest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
