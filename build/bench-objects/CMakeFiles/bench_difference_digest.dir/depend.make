# Empty dependencies file for bench_difference_digest.
# This may be replaced when dependencies are built.
