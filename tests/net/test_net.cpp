#include "net/channel.hpp"
#include "net/message.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

namespace graphene::net {
namespace {

TEST(Message, WireSizeIncludesEnvelope) {
  Message msg{MessageType::kInv, util::Bytes(100, 0)};
  EXPECT_EQ(msg.wire_size(), 100u + kEnvelopeBytes);
}

TEST(Message, CommandNamesAreUniqueAndNonEmpty) {
  const MessageType all[] = {
      MessageType::kInv,           MessageType::kGetData,
      MessageType::kBlockHeader,   MessageType::kFullBlock,
      MessageType::kGrapheneBlock, MessageType::kGrapheneRequest,
      MessageType::kGrapheneResponse, MessageType::kCompactBlock,
      MessageType::kGetBlockTxn,   MessageType::kBlockTxn,
      MessageType::kXthinGetData,  MessageType::kXthinBlock,
      MessageType::kMempoolSyncOffer, MessageType::kMempoolSyncRequest,
      MessageType::kMempoolSyncResponse};
  std::set<std::string_view> names;
  for (const MessageType t : all) {
    const std::string_view name = command_name(t);
    EXPECT_FALSE(name.empty());
    EXPECT_LE(name.size(), 12u);  // Bitcoin command field is 12 bytes
    EXPECT_TRUE(names.insert(name).second) << name;
  }
}

TEST(Channel, AccountsBytesPerDirection) {
  Channel ch;
  ch.send(Direction::kSenderToReceiver, Message{MessageType::kInv, util::Bytes(10, 0)});
  ch.send(Direction::kReceiverToSender, Message{MessageType::kGetData, util::Bytes(20, 0)});
  ch.send(Direction::kSenderToReceiver, Message{MessageType::kFullBlock, util::Bytes(30, 0)});

  EXPECT_EQ(ch.payload_bytes(Direction::kSenderToReceiver), 40u);
  EXPECT_EQ(ch.payload_bytes(Direction::kReceiverToSender), 20u);
  EXPECT_EQ(ch.bytes(Direction::kSenderToReceiver), 40u + 2 * kEnvelopeBytes);
  EXPECT_EQ(ch.bytes(Direction::kReceiverToSender), 20u + kEnvelopeBytes);
  EXPECT_EQ(ch.message_count(), 3u);
}

TEST(Channel, PayloadByTypeAggregates) {
  Channel ch;
  ch.send(Direction::kSenderToReceiver, Message{MessageType::kInv, util::Bytes(5, 0)});
  ch.send(Direction::kReceiverToSender, Message{MessageType::kInv, util::Bytes(7, 0)});
  ch.send(Direction::kSenderToReceiver, Message{MessageType::kBlockTxn, util::Bytes(9, 0)});
  const auto by_type = ch.payload_by_type();
  EXPECT_EQ(by_type.at(MessageType::kInv), 12u);
  EXPECT_EQ(by_type.at(MessageType::kBlockTxn), 9u);
}

TEST(Channel, ResetClearsEverything) {
  Channel ch;
  ch.send(Direction::kSenderToReceiver, Message{MessageType::kInv, util::Bytes(5, 0)});
  ch.reset();
  EXPECT_EQ(ch.message_count(), 0u);
  EXPECT_EQ(ch.bytes(Direction::kSenderToReceiver), 0u);
  EXPECT_EQ(ch.payload_bytes(Direction::kSenderToReceiver), 0u);
}

TEST(Channel, LogPreservesOrder) {
  Channel ch;
  ch.send(Direction::kSenderToReceiver, Message{MessageType::kInv, {}});
  ch.send(Direction::kReceiverToSender, Message{MessageType::kGetData, {}});
  ASSERT_EQ(ch.log().size(), 2u);
  EXPECT_EQ(ch.log()[0].second.type, MessageType::kInv);
  EXPECT_EQ(ch.log()[1].second.type, MessageType::kGetData);
  EXPECT_EQ(ch.log()[1].first, Direction::kReceiverToSender);
}

}  // namespace
}  // namespace graphene::net
