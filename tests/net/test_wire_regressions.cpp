// Byte-fixture regressions for hardening findings on the untrusted wire
// surface. Each fixture is the minimized hostile input for a bug class that
// the deserializers now reject up front:
//
//   * length-field overflow — a varint near 2^64 made `(v + 7) / 8` wrap to
//     a tiny payload check while `(v + 63) / 64` still drove a huge
//     allocation (BloomFilter; the same shape existed in GolombSet);
//   * unbounded allocation — counts far beyond any real message reached
//     reserve()/assign() before any buffer-size comparison;
//   * non-canonical encodings — presence flags above 1 and zero-cell IBLTs
//     parsed into states no serializer emits, breaking the
//     deserialize(serialize(x)) == x fuzz invariant;
//   * poisoned parameters — NaN / out-of-range FPRs flowed into the
//     sender's Theorem 2/3 bound arithmetic, and oversized b/y* sized the
//     response IBLT directly.
//
// If any of these starts parsing again, a fuzz harness will also find it —
// this suite just fails faster and points at the exact fixture.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>

#include "bloom/bloom_filter.hpp"
#include "bloom/cuckoo_filter.hpp"
#include "bloom/golomb_set.hpp"
#include "graphene/errors.hpp"
#include "graphene/forensics.hpp"
#include "graphene/messages.hpp"
#include "graphene/sender.hpp"
#include "iblt/iblt.hpp"
#include "iblt/kv_iblt.hpp"
#include "sim/scenario.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"
#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene {
namespace {

void put_u64(util::Bytes& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

template <typename T>
void expect_rejected(const util::Bytes& wire, const char* why) {
  util::ByteReader r{util::ByteView(wire)};
  EXPECT_THROW((void)T::deserialize(r), util::DeserializeError) << why;
}

// ---------------------------------------------------------------------------
// BloomFilter: bit count 2^64-7 wraps (v+7)/8 to 0, so the payload check
// passed on an 8-byte tail while bits_.assign((v+63)/64, 0) attempted a
// ~2^58-word allocation. Must now die at the varint cap, before arithmetic.
TEST(WireRegression, BloomFilterHugeBitCountRejected) {
  util::Bytes wire = {0xff};  // 9-byte varint marker
  put_u64(wire, std::numeric_limits<std::uint64_t>::max() - 6);  // n_bits = 2^64 - 7
  wire.push_back(0x04);  // k = 4
  put_u64(wire, 0);      // seed
  expect_rejected<bloom::BloomFilter>(wire, "wrapping bit count");
}

TEST(WireRegression, BloomFilterJustOverCapRejectedAndCapRoundTrips) {
  // 2^32 bits (the cap) is still parseable in principle; 2^32 + 1 is not.
  util::Bytes wire = {0xff};
  put_u64(wire, (1ULL << 32) + 1);
  wire.push_back(0x04);
  put_u64(wire, 0);
  expect_rejected<bloom::BloomFilter>(wire, "bit count just over cap");

  // And a genuine filter still round-trips, so the cap is not over-eager.
  bloom::BloomFilter f(100, 0.01, 7);
  const util::Bytes ok = f.serialize();
  util::ByteReader r{util::ByteView(ok)};
  EXPECT_EQ(bloom::BloomFilter::deserialize(r).serialize(), ok);
}

// ---------------------------------------------------------------------------
// GolombSet: the item count drove values.reserve(n) in decode_all() with no
// relation to the coded stream, and a near-2^64 bit count had the same
// (v+7)/8 wrap as the Bloom filter.
TEST(WireRegression, GolombSetItemCountBeyondStreamRejected) {
  util::Bytes wire;
  wire.push_back(0xfe);  // 5-byte varint: n = 2^28 items (at the cap)
  for (int i = 0; i < 4; ++i) wire.push_back(i == 3 ? 0x10 : 0x00);
  wire.push_back(0x14);  // rice = 20 → every item needs ≥ 21 bits
  put_u64(wire, 0);      // seed
  wire.push_back(0x40);  // bit_count = 64: backs at most 3 items
  put_u64(wire, 0);      // 8 payload bytes
  expect_rejected<bloom::GolombSet>(wire, "item count unpayable by stream");
}

TEST(WireRegression, GolombSetHugeBitCountRejected) {
  util::Bytes wire = {0x02, 0x14};  // n = 2, rice = 20
  put_u64(wire, 0);                 // seed
  wire.push_back(0xff);             // bit_count = 2^64 - 7 (wraps (v+7)/8)
  put_u64(wire, std::numeric_limits<std::uint64_t>::max() - 6);
  expect_rejected<bloom::GolombSet>(wire, "wrapping bit count");
}

// ---------------------------------------------------------------------------
// IBLT: a zero cell count deserialized into a table no constructor can
// produce (the ctor rounds 0 up to k), breaking re-serialization canonicity;
// a huge count reached cells_.assign() before any buffer comparison.
TEST(WireRegression, IbltZeroCellsRejected) {
  util::Bytes wire = {0x00, 0x04};  // cells = 0, k = 4
  put_u64(wire, 0);                 // seed
  expect_rejected<iblt::Iblt>(wire, "zero cells");
}

TEST(WireRegression, IbltCellCountNotMultipleOfKRejected) {
  util::Bytes wire = {0x05, 0x04};  // cells = 5, k = 4
  put_u64(wire, 0);
  wire.resize(wire.size() + 5 * iblt::Iblt::kCellBytes, 0x00);
  expect_rejected<iblt::Iblt>(wire, "cells % k != 0");
}

TEST(WireRegression, IbltHugeCellCountRejectedBeforeAllocation) {
  util::Bytes wire;
  wire.push_back(0xff);               // cells = 2^32 (over the 2^24 cap)
  put_u64(wire, 1ULL << 32);
  wire.push_back(0x04);
  put_u64(wire, 0);
  expect_rejected<iblt::Iblt>(wire, "cell count over cap");
}

TEST(WireRegression, KvIbltZeroCellsRejected) {
  util::Bytes wire = {0x00, 0x04};
  put_u64(wire, 0);
  expect_rejected<iblt::KvIblt>(wire, "zero cells");
}

// Found by fuzz_iblt under UBSan: a wire cell carrying count INT32_MIN sat
// on one of a peelable key's positions, so peeling computed INT32_MIN - 1 —
// signed overflow. Count arithmetic now wraps (two's-complement), which is
// harmless: peeling termination is bounded by the seen-key map, not counts.
//
// The fixture is a genuine one-item table whose second key-cell count is
// patched to INT32_MIN at its exact wire offset.
util::Bytes one_item_iblt_wire_with_patched_count(std::int32_t patched) {
  iblt::Iblt t(iblt::IbltParams{2, 8}, /*seed=*/5);
  t.insert(0x1234567890abcdefULL);
  util::Bytes wire = t.serialize();
  // Layout: varint(8) | u8(k) | u64(seed) | 8 × (i32 count, u64 key, u32 chk).
  constexpr std::size_t kHeader = 1 + 1 + 8;
  bool first = true;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t off = kHeader + i * iblt::Iblt::kCellBytes;
    if (wire[off] == 1) {  // count == 1 (LE), one of the key's two cells
      if (first) {
        first = false;
        continue;  // leave the first pure so peeling starts
      }
      for (int b = 0; b < 4; ++b) {
        wire[off + static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(static_cast<std::uint32_t>(patched) >> (8 * b));
      }
      return wire;
    }
  }
  ADD_FAILURE() << "expected two cells with count 1";
  return wire;
}

TEST(WireRegression, IbltDecodeSurvivesInt32MinCellCount) {
  const util::Bytes wire =
      one_item_iblt_wire_with_patched_count(std::numeric_limits<std::int32_t>::min());
  util::ByteReader r{util::ByteView(wire)};
  const iblt::Iblt hostile = iblt::Iblt::deserialize(r);
  const iblt::DecodeResult decoded = hostile.decode();  // UB before the fix
  EXPECT_FALSE(decoded.success);  // the patched cell can never zero out
}

TEST(WireRegression, IbltSubtractSurvivesInt32MinCellCount) {
  const util::Bytes patched =
      one_item_iblt_wire_with_patched_count(std::numeric_limits<std::int32_t>::min());
  iblt::Iblt t(iblt::IbltParams{2, 8}, /*seed=*/5);
  t.insert(0x1234567890abcdefULL);
  util::ByteReader r{util::ByteView(patched)};
  const iblt::Iblt hostile = iblt::Iblt::deserialize(r);
  (void)hostile.subtract(t).decode();  // INT32_MIN - 1: UB before the fix
  (void)t.subtract(hostile).decode();  // 1 - INT32_MIN: likewise
}

// ---------------------------------------------------------------------------
// CuckooFilter: bucket and stash counts reached assign()/resize() unbounded.
TEST(WireRegression, CuckooFilterHugeBucketCountRejected) {
  util::Bytes wire;
  wire.push_back(0xfe);  // buckets = 2^30 (power of two, but over the 2^28 cap)
  for (int i = 0; i < 4; ++i) wire.push_back(i == 3 ? 0x40 : 0x00);
  wire.push_back(0x08);  // fp_bits = 8
  put_u64(wire, 0);      // seed
  expect_rejected<bloom::CuckooFilter>(wire, "bucket count over cap");
}

// ---------------------------------------------------------------------------
// Presence flags: any nonzero byte used to read as "present", so flag = 2
// produced a message whose re-serialization (flag = 1) differed from its
// wire image. Canonical form is now enforced.
TEST(WireRegression, ResponsePresenceFlagTwoRejected) {
  util::ByteWriter w;
  util::write_varint(w, 0);                        // no missing transactions
  w.raw(util::ByteView(iblt::Iblt(iblt::IbltParams{4, 8}, 3).serialize()));
  w.u8(2);                                         // non-canonical flag
  expect_rejected<core::GrapheneResponseMsg>(w.take(), "presence flag 2");
}

TEST(WireRegression, RequestReversedFlagTwoRejected) {
  util::ByteWriter w;
  util::write_varint(w, 10);  // z
  util::write_varint(w, 1);   // b
  util::write_varint(w, 1);   // y*
  const double fpr = 0.1;
  std::uint64_t bits = 0;
  std::memcpy(&bits, &fpr, sizeof(bits));
  w.u64(bits);
  w.u8(2);                    // reversed must be 0 or 1
  w.raw(util::ByteView(bloom::BloomFilter(10, 0.1, 1).serialize()));
  expect_rejected<core::GrapheneRequestMsg>(w.take(), "reversed flag 2");
}

// ---------------------------------------------------------------------------
// FPR poisoning: NaN compares false against every bound, so an attacker's
// NaN fpr_r sailed through `fpr <= 0 || fpr > 1`-style checks written the
// naive way and reached the sender's log()-based sizing.
TEST(WireRegression, RequestNanFprRejected) {
  util::Bytes wire = {0x0a, 0x01, 0x01};           // z = 10, b = 1, y* = 1
  put_u64(wire, 0x7ff8000000000000ULL);            // quiet NaN
  wire.push_back(0x00);
  expect_rejected<core::GrapheneRequestMsg>(wire, "NaN fpr");
}

TEST(WireRegression, RequestZeroFprRejected) {
  util::Bytes wire = {0x0a, 0x01, 0x01};
  put_u64(wire, 0);                                // +0.0: not a usable FPR
  wire.push_back(0x00);
  expect_rejected<core::GrapheneRequestMsg>(wire, "fpr = 0");
}

// ---------------------------------------------------------------------------
// Full-tx records: the claimed size_bytes was buffer-checked at read time
// (r.raw(body) can't overrun) but crossed the deserializer otherwise
// unvalidated, and full_tx_wire_size()/write_full_tx() pad re-serialization
// to the claim — so a record whose body IS present but whose claim is
// absurd amplified into equally absurd downstream encodes. Found by the
// flow-aware graphene-bounded-wire-read tidy check (tools/tidy-plugin);
// lint.py's same-line regex could not see the cross-statement flow.
util::Bytes repair_response_with_one_claim(std::uint32_t claimed) {
  util::ByteWriter w;
  util::write_varint(w, 1);  // count
  const util::Bytes id(32, 0x11);
  w.raw(util::ByteView(id));
  w.u32(claimed);
  // The body bytes are genuinely present, so every remaining()-style buffer
  // check passes; only the absolute cap can reject the claim.
  const util::Bytes body(claimed > 36 ? claimed - 36 : 0, 0xab);
  w.raw(util::ByteView(body));
  return w.take();
}

TEST(WireRegression, FullTxClaimOverCapRejectedEvenWhenBufferBacked) {
  const auto claimed = static_cast<std::uint32_t>(util::wire::kMaxTxWireSize + 1);
  expect_rejected<core::RepairResponseMsg>(repair_response_with_one_claim(claimed),
                                           "buffer-backed over-cap tx claim");
}

TEST(WireRegression, FullTxClaimAtCapStillRoundTrips) {
  const auto claimed = static_cast<std::uint32_t>(util::wire::kMaxTxWireSize);
  const util::Bytes wire = repair_response_with_one_claim(claimed);
  util::ByteReader r{util::ByteView(wire)};
  const core::RepairResponseMsg msg = core::RepairResponseMsg::deserialize(r);
  ASSERT_EQ(msg.txns.size(), 1u);
  EXPECT_EQ(msg.txns[0].size_bytes, claimed);
  EXPECT_EQ(msg.serialize(), wire);
}

// The forensics snapshot codec replays captures through the full protocol
// engines, so a capture file is wire input too: an oversized claim in a
// stored mempool must die at load, not at replay-time re-encode.
TEST(WireRegression, ForensicCaptureOversizedTxClaimRejectedOnLoad) {
  core::ForensicCapture cap;
  cap.kind = "decode_failure";
  cap.stage = "p1_peel";
  chain::Transaction tx;
  tx.size_bytes = static_cast<std::uint32_t>(util::wire::kMaxTxWireSize + 1);
  cap.mempool.push_back(tx);
  const std::string json = cap.to_json();  // producer side still serializes
  EXPECT_THROW((void)core::ForensicCapture::from_json(json),
               util::DeserializeError);
}

// ---------------------------------------------------------------------------
// Sender::serve sizes the response IBLT as b + y* items. Wire parsing caps
// both, but a request built in-process (or a future message type that
// forgets the cap) must hit the sender's own revalidation, not an allocator.
TEST(WireRegression, SenderRejectsOversizedRequestParameters) {
  util::Rng rng(42);
  chain::ScenarioSpec spec;
  spec.block_txns = 50;
  spec.extra_txns = 50;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  const core::Sender sender(s.block, /*salt=*/1);

  core::GrapheneRequestMsg req;
  req.z = 100;
  req.fpr_r = 0.1;
  req.filter_r = bloom::BloomFilter(100, 0.1, 2);
  req.b = std::numeric_limits<std::uint64_t>::max() - 5;  // b + y* wraps
  req.y_star = 10;
  EXPECT_THROW((void)sender.serve(req), core::ProtocolError);

  req.b = 1;
  req.y_star = util::wire::kMaxSizingParam + 1;
  EXPECT_THROW((void)sender.serve(req), core::ProtocolError);
}

}  // namespace
}  // namespace graphene
