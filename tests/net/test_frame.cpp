// Length-prefixed framing: encode/decode symmetry, incremental reassembly
// from arbitrary stream splits, and rejection of every malformed envelope an
// adversarial or corrupted peer can present.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "util/random.hpp"

namespace graphene::net {
namespace {

Message make_msg(MessageType type, std::size_t payload_len, std::uint8_t fill = 0xab) {
  return Message{type, util::Bytes(payload_len, fill)};
}

void expect_same(const Message& a, const Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(Frame, RoundTripsOneMessage) {
  const Message msg = make_msg(MessageType::kDaemonHello, 37);
  const util::Bytes wire = encode_frame(msg);
  ASSERT_EQ(wire.size(), kEnvelopeBytes + 37);

  FrameReader reader;
  reader.absorb(wire);
  const std::optional<Message> got = reader.next();
  ASSERT_TRUE(got.has_value());
  expect_same(msg, *got);
  EXPECT_FALSE(reader.mid_frame());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Frame, RoundTripsEmptyPayload) {
  FrameReader reader;
  reader.absorb(encode_frame(make_msg(MessageType::kDaemonBye, 0)));
  const std::optional<Message> got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, MessageType::kDaemonBye);
  EXPECT_TRUE(got->payload.empty());
}

TEST(Frame, ReassemblesFromSingleByteDribble) {
  const Message msg = make_msg(MessageType::kGrapheneBlock, 129, 0x5c);
  const util::Bytes wire = encode_frame(msg);

  FrameReader reader;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (i + 1 < wire.size()) {
      reader.absorb(util::ByteView(&wire[i], 1));
      EXPECT_FALSE(reader.next().has_value()) << "complete at byte " << i;
      EXPECT_TRUE(reader.mid_frame());
    } else {
      reader.absorb(util::ByteView(&wire[i], 1));
    }
  }
  const std::optional<Message> got = reader.next();
  ASSERT_TRUE(got.has_value());
  expect_same(msg, *got);
  EXPECT_FALSE(reader.mid_frame());
}

TEST(Frame, DecodesCoalescedFramesInOrder) {
  const Message a = make_msg(MessageType::kDaemonHello, 5, 1);
  const Message b = make_msg(MessageType::kGrapheneRequest, 0, 2);
  const Message c = make_msg(MessageType::kDaemonError, 77, 3);
  util::Bytes wire = encode_frame(a);
  const util::Bytes wb = encode_frame(b);
  const util::Bytes wc = encode_frame(c);
  wire.insert(wire.end(), wb.begin(), wb.end());
  wire.insert(wire.end(), wc.begin(), wc.end());

  FrameReader reader;
  // Split the coalesced stream at an arbitrary point inside frame b.
  const std::size_t cut = encode_frame(a).size() + 7;
  reader.absorb(util::ByteView(wire.data(), cut));
  std::optional<Message> got = reader.next();
  ASSERT_TRUE(got.has_value());
  expect_same(a, *got);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.mid_frame());

  reader.absorb(util::ByteView(wire.data() + cut, wire.size() - cut));
  got = reader.next();
  ASSERT_TRUE(got.has_value());
  expect_same(b, *got);
  got = reader.next();
  ASSERT_TRUE(got.has_value());
  expect_same(c, *got);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Frame, RejectsBadMagic) {
  util::Bytes wire = encode_frame(make_msg(MessageType::kInv, 4));
  wire[0] ^= 0xff;
  FrameReader reader;
  reader.absorb(wire);
  EXPECT_THROW((void)reader.next(), util::DeserializeError);
}

TEST(Frame, RejectsUnknownCommand) {
  util::Bytes wire = encode_frame(make_msg(MessageType::kInv, 0));
  wire[4] = 'z';  // first command byte: "znv" names nothing
  FrameReader reader;
  reader.absorb(wire);
  EXPECT_THROW((void)reader.next(), util::DeserializeError);
}

TEST(Frame, RejectsNonNulCommandPadding) {
  util::Bytes wire = encode_frame(make_msg(MessageType::kInv, 0));
  wire[4 + kFrameCommandBytes - 1] = 'x';  // garbage after the NUL terminator
  FrameReader reader;
  reader.absorb(wire);
  EXPECT_THROW((void)reader.next(), util::DeserializeError);
}

TEST(Frame, RejectsOversizedLengthBeforeBuffering) {
  // Envelope only — the declared length must be refused without waiting for
  // (or allocating) the phantom payload.
  util::Bytes wire = encode_frame(make_msg(MessageType::kInv, 8));
  wire.resize(kEnvelopeBytes);
  wire[16] = 0xff;  // length field: way beyond the test cap
  wire[17] = 0xff;
  wire[18] = 0xff;
  wire[19] = 0x00;
  FrameReader reader(/*max_payload=*/1024);
  reader.absorb(wire);
  EXPECT_THROW((void)reader.next(), util::DeserializeError);
}

TEST(Frame, RejectsChecksumMismatch) {
  util::Bytes wire = encode_frame(make_msg(MessageType::kGrapheneBlock, 64));
  wire.back() ^= 0x01;  // flip one payload bit
  FrameReader reader;
  reader.absorb(wire);
  EXPECT_THROW((void)reader.next(), util::DeserializeError);
}

TEST(Frame, EverySingleBitFlipIsRejectedOrIncomplete) {
  // A corrupted frame must never decode as a (different) valid message:
  // every single-bit corruption either throws a typed error or leaves the
  // reader waiting for bytes that never add up.
  const Message msg = make_msg(MessageType::kDaemonHello, 21, 0x3e);
  const util::Bytes wire = encode_frame(msg);
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      util::Bytes corrupt = wire;
      corrupt[byte] = static_cast<std::uint8_t>(corrupt[byte] ^ (1u << bit));
      FrameReader reader;
      reader.absorb(corrupt);
      try {
        const std::optional<Message> got = reader.next();
        EXPECT_FALSE(got.has_value())
            << "bit " << bit << " of byte " << byte << " decoded a message";
      } catch (const util::DeserializeError&) {
        // typed rejection: the expected outcome for most positions
      }
    }
  }
}

TEST(Frame, EncodeRefusesOversizedPayload) {
  EXPECT_THROW((void)encode_frame(make_msg(MessageType::kInv, 100), /*max_payload=*/64),
               util::DeserializeError);
}

TEST(Frame, AbsorbCapsRunawayBuffering) {
  FrameReader reader(/*max_payload=*/128);
  const util::Bytes junk(1024, 0x00);
  // A caller that ignores next()'s throw and keeps absorbing must hit the
  // high-water mark instead of growing without bound.
  bool threw = false;
  try {
    for (int i = 0; i < 64; ++i) reader.absorb(junk);
  } catch (const util::DeserializeError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(Frame, ChecksumMatchesDoubleSha256Convention) {
  // Spot-check against an independently computed value: double-SHA256 of an
  // empty payload starts 5d f6 e0 e2 (the Bitcoin empty-checksum constant).
  const auto ck = frame_checksum(util::ByteView());
  EXPECT_EQ(ck[0], 0x5d);
  EXPECT_EQ(ck[1], 0xf6);
  EXPECT_EQ(ck[2], 0xe0);
  EXPECT_EQ(ck[3], 0xe2);
}

TEST(Frame, RandomSplitsAlwaysReassemble) {
  util::Rng rng(0xf7a3e5);
  for (int round = 0; round < 50; ++round) {
    const Message msg =
        make_msg(MessageType::kGrapheneResponse, rng.below(2000),
                 static_cast<std::uint8_t>(rng.next()));
    const util::Bytes wire = encode_frame(msg);
    FrameReader reader;
    std::size_t off = 0;
    std::optional<Message> got;
    while (off < wire.size()) {
      const std::size_t n =
          std::min<std::size_t>(wire.size() - off, 1 + rng.below(97));
      reader.absorb(util::ByteView(wire.data() + off, n));
      off += n;
      if (!got) got = reader.next();
    }
    if (!got) got = reader.next();
    ASSERT_TRUE(got.has_value());
    expect_same(msg, *got);
  }
}

}  // namespace
}  // namespace graphene::net
