// Table-driven malformed-input suite over every wire deserializer.
//
// The contract tested here is the one the fuzz harnesses (fuzz/) enforce
// continuously: for any byte string, deserialize() either returns a value or
// throws DeserializeError / invalid_argument — never crashes, never throws
// anything else, never reads out of bounds. Where the fuzzers explore
// randomly, this suite is exhaustive in two cheap dimensions: every prefix
// length of a valid message (truncation mid-field, mid-varint, mid-payload)
// and every single-byte overwrite with the length-field extremes 0x00/0xff.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/cuckoo_filter.hpp"
#include "bloom/golomb_set.hpp"
#include "chain/transaction.hpp"
#include "graphene/messages.hpp"
#include "iblt/iblt.hpp"
#include "iblt/kv_iblt.hpp"
#include "iblt/strata_estimator.hpp"
#include "reconcile/rateless_backend.hpp"
#include "reconcile/set_reconciler.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"
#include "util/varint.hpp"

namespace graphene {
namespace {

using ParseFn = void (*)(util::ByteReader&);

struct WireCase {
  std::string name;
  util::Bytes wire;
  ParseFn parse;
};

template <typename T>
ParseFn parser() {
  return +[](util::ByteReader& r) { (void)T::deserialize(r); };
}

/// Runs `parse` over `bytes`, asserting the exception contract.
void expect_contract(const WireCase& c, const util::Bytes& bytes, const std::string& what) {
  util::ByteReader r{util::ByteView(bytes)};
  try {
    c.parse(r);
  } catch (const util::DeserializeError&) {
  } catch (const std::invalid_argument&) {
  } catch (const std::exception& e) {
    FAIL() << c.name << " " << what << ": escaped " << typeid(e).name() << ": " << e.what();
  }
}

std::vector<WireCase> make_cases() {
  util::Rng rng(0xbadbeef);
  std::vector<WireCase> cases;

  const auto digest32 = [&rng] {
    reconcile::ItemDigest d;
    for (auto& b : d) b = static_cast<std::uint8_t>(rng.next());
    return d;
  };

  {
    bloom::BloomFilter f(60, 0.02, rng.next());
    for (int i = 0; i < 60; ++i) {
      const auto id = chain::make_random_transaction(rng).id;
      f.insert(util::ByteView(id.data(), id.size()));
    }
    cases.push_back({"BloomFilter", f.serialize(), parser<bloom::BloomFilter>()});
  }
  {
    std::vector<util::Bytes> digests;
    for (int i = 0; i < 40; ++i) {
      const auto id = chain::make_random_transaction(rng).id;
      digests.emplace_back(id.begin(), id.end());
    }
    cases.push_back({"GolombSet", bloom::GolombSet(digests, 0.01, rng.next()).serialize(),
                     parser<bloom::GolombSet>()});
  }
  {
    bloom::CuckooFilter f(64, 0.02, rng.next());
    for (int i = 0; i < 50; ++i) {
      const auto id = chain::make_random_transaction(rng).id;
      f.insert(util::ByteView(id.data(), id.size()));
    }
    cases.push_back({"CuckooFilter", f.serialize(), parser<bloom::CuckooFilter>()});
  }
  {
    iblt::Iblt t(iblt::IbltParams{4, 40}, rng.next());
    for (int i = 0; i < 12; ++i) t.insert(rng.next());
    cases.push_back({"Iblt", t.serialize(), parser<iblt::Iblt>()});
  }
  {
    iblt::KvIblt t(4, 40, rng.next());
    for (int i = 0; i < 12; ++i) t.insert(rng.next(), rng.next());
    cases.push_back({"KvIblt", t.serialize(), parser<iblt::KvIblt>()});
  }
  {
    iblt::StrataEstimator est(/*universe_hint=*/1u << 10);
    for (int i = 0; i < 100; ++i) est.insert(rng.next());
    cases.push_back({"StrataEstimator", est.serialize(), parser<iblt::StrataEstimator>()});
  }

  {
    core::GrapheneBlockMsg msg;
    msg.n = 40;
    msg.shortid_salt = rng.next();
    msg.filter_s = bloom::BloomFilter(40, 0.01, rng.next());
    for (int i = 0; i < 40; ++i) {
      const auto id = chain::make_random_transaction(rng).id;
      msg.filter_s.insert(util::ByteView(id.data(), id.size()));
    }
    msg.iblt_i = iblt::Iblt(iblt::IbltParams{4, 24}, rng.next());
    for (int i = 0; i < 6; ++i) msg.iblt_i.insert(rng.next());
    cases.push_back({"GrapheneBlockMsg", msg.serialize(), parser<core::GrapheneBlockMsg>()});
  }
  {
    core::GrapheneRequestMsg msg;
    msg.z = 70;
    msg.b = 5;
    msg.y_star = 9;
    msg.fpr_r = 0.04;
    msg.reversed = true;
    msg.filter_r = bloom::BloomFilter(70, 0.04, rng.next());
    cases.push_back({"GrapheneRequestMsg", msg.serialize(), parser<core::GrapheneRequestMsg>()});
  }
  {
    core::GrapheneResponseMsg msg;
    for (int i = 0; i < 3; ++i) msg.missing.push_back(chain::make_random_transaction(rng));
    msg.iblt_j = iblt::Iblt(iblt::IbltParams{4, 16}, rng.next());
    msg.filter_f = bloom::BloomFilter(30, 0.1, rng.next());
    cases.push_back({"GrapheneResponseMsg", msg.serialize(), parser<core::GrapheneResponseMsg>()});
  }
  {
    core::RepairRequestMsg msg;
    for (int i = 0; i < 7; ++i) msg.short_ids.push_back(rng.next());
    cases.push_back({"RepairRequestMsg", msg.serialize(), parser<core::RepairRequestMsg>()});
  }
  {
    core::RepairResponseMsg msg;
    for (int i = 0; i < 4; ++i) msg.txns.push_back(chain::make_random_transaction(rng));
    cases.push_back({"RepairResponseMsg", msg.serialize(), parser<core::RepairResponseMsg>()});
  }

  {
    reconcile::Offer msg;
    msg.count = 25;
    msg.salt = rng.next();
    msg.set_checksum = rng.next();
    msg.filter = bloom::BloomFilter(25, 0.02, rng.next());
    msg.correction = iblt::Iblt(iblt::IbltParams{4, 20}, rng.next());
    cases.push_back({"reconcile::Offer", msg.serialize(), parser<reconcile::Offer>()});
  }
  {
    reconcile::Request msg;
    msg.candidate_count = 30;
    msg.b = 4;
    msg.y_star = 6;
    msg.fpr_r = 0.08;
    msg.filter = bloom::BloomFilter(30, 0.08, rng.next());
    cases.push_back({"reconcile::Request", msg.serialize(), parser<reconcile::Request>()});
  }
  {
    reconcile::Response msg;
    msg.missing = {digest32(), digest32()};
    msg.correction = iblt::Iblt(iblt::IbltParams{4, 12}, rng.next());
    msg.compensation = bloom::BloomFilter(20, 0.1, rng.next());
    cases.push_back({"reconcile::Response", msg.serialize(), parser<reconcile::Response>()});
  }
  {
    reconcile::FetchRequest msg;
    for (int i = 0; i < 5; ++i) msg.short_ids.push_back(rng.next());
    cases.push_back({"reconcile::FetchRequest", msg.serialize(),
                     parser<reconcile::FetchRequest>()});
  }
  {
    reconcile::FetchResponse msg;
    msg.items = {digest32(), digest32(), digest32()};
    cases.push_back({"reconcile::FetchResponse", msg.serialize(),
                     parser<reconcile::FetchResponse>()});
  }
  {
    reconcile::RatelessChunk msg;
    msg.start = 3;
    msg.host_count = 90;
    msg.salt = rng.next();
    msg.set_checksum = rng.next();
    iblt::RatelessEncoder enc(msg.salt);
    for (int i = 0; i < 90; ++i) {
      const auto d = digest32();
      enc.add_item(d);
    }
    for (int i = 0; i < 8; ++i) msg.symbols.push_back(enc.next_symbol());
    cases.push_back({"reconcile::RatelessChunk", msg.serialize(),
                     parser<reconcile::RatelessChunk>()});
  }
  {
    reconcile::RatelessNeed msg;
    msg.next_index = 17;
    msg.count = 64;
    cases.push_back({"reconcile::RatelessNeed", msg.serialize(),
                     parser<reconcile::RatelessNeed>()});
  }

  return cases;
}

TEST(Malformed, FullWireParsesAndConsumesExactly) {
  for (const WireCase& c : make_cases()) {
    util::ByteReader r{util::ByteView(c.wire)};
    ASSERT_NO_THROW(c.parse(r)) << c.name;
    EXPECT_TRUE(r.done()) << c.name << ": " << r.remaining() << " trailing bytes unread";
  }
}

TEST(Malformed, EveryTruncationHonorsContract) {
  for (const WireCase& c : make_cases()) {
    ASSERT_FALSE(c.wire.empty()) << c.name;
    for (std::size_t len = 0; len < c.wire.size(); ++len) {
      util::Bytes cut(c.wire.begin(), c.wire.begin() + static_cast<std::ptrdiff_t>(len));
      expect_contract(c, cut, "truncated to " + std::to_string(len));
    }
  }
}

TEST(Malformed, EveryByteForcedToExtremesHonorsContract) {
  // 0xff maximizes varint length fields (and makes them 9-byte encodings
  // when hit at a field start); 0x00 zeroes counts and flags. Both extremes
  // at every offset sweep the interesting misparse space deterministically.
  for (const WireCase& c : make_cases()) {
    for (const std::uint8_t forced : {std::uint8_t{0x00}, std::uint8_t{0xff}}) {
      for (std::size_t pos = 0; pos < c.wire.size(); ++pos) {
        if (c.wire[pos] == forced) continue;
        util::Bytes mutated = c.wire;
        mutated[pos] = forced;
        expect_contract(c, mutated,
                        "byte " + std::to_string(pos) + " forced to " + std::to_string(forced));
      }
    }
  }
}

TEST(Malformed, RandomBitFlipsHonorContract) {
  util::Rng rng(0xf1a9);
  for (const WireCase& c : make_cases()) {
    for (int trial = 0; trial < 300; ++trial) {
      util::Bytes mutated = c.wire;
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      expect_contract(c, mutated, "bit flip at " + std::to_string(pos));
    }
  }
}

TEST(Malformed, EmptyAndJunkInputsHonorContract) {
  for (const WireCase& c : make_cases()) {
    expect_contract(c, {}, "empty input");
    expect_contract(c, util::Bytes(64, 0x00), "64 zero bytes");
    expect_contract(c, util::Bytes(64, 0xff), "64 0xff bytes");
    // A canonical 9-byte varint announcing 2^64-1 of whatever comes first.
    expect_contract(c, util::Bytes{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
                    "maximal varint");
  }
}

}  // namespace
}  // namespace graphene
