#include <gtest/gtest.h>

#include <cstdlib>

#include "testkit/gen.hpp"
#include "testkit/stat_gate.hpp"

namespace graphene::testkit {
namespace {

TEST(StatGate, AlwaysSucceedingTrialPasses) {
  StatGateSpec spec;
  spec.name = "always";
  spec.trials = 50;
  spec.min_rate = 0.99;
  const GateResult r = StatGate(spec).run([](util::Rng&, std::uint64_t) { return true; });
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.successes, r.trials);
  EXPECT_EQ(r.cp_upper, 1.0);
}

TEST(StatGate, GrosslyDeficientRateFails) {
  StatGateSpec spec;
  spec.name = "coin";
  spec.trials = 200;
  spec.min_rate = 0.95;
  const GateResult r =
      StatGate(spec).run([](util::Rng& rng, std::uint64_t) { return rng.chance(0.5); });
  EXPECT_FALSE(r.passed) << r.message;
  EXPECT_FALSE(r.failing_trials.empty());
}

TEST(StatGate, HealthyRateAtThePromisedBoundPasses) {
  // A trial that genuinely meets min_rate must essentially never fail the
  // gate (false-alarm probability ≤ 1 − confidence).
  StatGateSpec spec;
  spec.name = "healthy";
  spec.trials = 400;
  spec.min_rate = 0.9;
  spec.confidence = 0.999;
  const GateResult r =
      StatGate(spec).run([](util::Rng& rng, std::uint64_t) { return rng.chance(0.93); });
  EXPECT_TRUE(r.passed) << r.message;
}

TEST(StatGate, ResultIsDeterministicForAGivenSeed) {
  StatGateSpec spec;
  spec.name = "det";
  spec.trials = 100;
  spec.min_rate = 0.3;
  const auto trial = [](util::Rng& rng, std::uint64_t) { return rng.chance(0.5); };
  const GateResult a = StatGate(spec).run(trial);
  const GateResult b = StatGate(spec).run(trial);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.message, b.message);
}

TEST(StatGate, TrialIndexReproducesFromSplit) {
  // The documented reproduction recipe: trial i runs on Rng(seed).split(i).
  StatGateSpec spec;
  spec.name = "repro";
  spec.trials = 64;
  spec.min_rate = 0.0;
  std::vector<std::uint64_t> draws;
  StatGate(spec).run([&](util::Rng& rng, std::uint64_t) {
    draws.push_back(rng.next());
    return true;
  });
  for (std::uint64_t i = 0; i < spec.trials; ++i) {
    util::Rng replay = util::Rng(spec.seed).split(i);
    EXPECT_EQ(replay.next(), draws[i]) << "trial " << i;
  }
}

TEST(StatGate, MessageCarriesSeedAndVerdict) {
  StatGateSpec spec;
  spec.name = "msg";
  spec.trials = 20;
  spec.min_rate = 0.99;
  spec.seed = 424242;
  const GateResult r =
      StatGate(spec).run([](util::Rng&, std::uint64_t) { return false; });
  EXPECT_NE(r.message.find("StatGate[msg] FAIL"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("seed=424242"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("failing trials:"), std::string::npos) << r.message;
}

TEST(StatGate, RunCasesShrinksTheCounterexample) {
  StatGateSpec spec;
  spec.name = "shrink";
  spec.trials = 50;
  spec.min_rate = 0.99;
  ScenarioDims dims;
  dims.min_block_txns = 1;
  dims.max_block_txns = 2000;
  // Property that fails for any block over 100 txns: the shrinker should
  // walk the failing case down toward the threshold, never below it.
  const GateResult r = StatGate(spec).run_cases<GenCase>(
      [&](util::Rng& rng) { return gen_case(rng, dims); },
      [](const GenCase& c, util::Rng&) { return c.spec.block_txns <= 100; },
      [](const GenCase& c) { return shrink_case(c); },
      [](const GenCase& c) { return describe_case(c); });
  ASSERT_FALSE(r.passed);
  ASSERT_NE(r.message.find("shrunk counterexample:"), std::string::npos) << r.message;
  ASSERT_NE(r.message.find("original failure:"), std::string::npos) << r.message;
  // Extract n= from the shrunk line and check it stayed a failing case in
  // (100, 200]: one more halving would make it pass.
  const std::size_t at = r.message.find("shrunk counterexample: {n=");
  const std::size_t start = at + std::string("shrunk counterexample: {n=").size();
  const std::uint64_t n = std::strtoull(r.message.c_str() + start, nullptr, 10);
  EXPECT_GT(n, 100u) << r.message;
  EXPECT_LE(n, 200u) << r.message;
}

TEST(StatGate, PassingPropertyReportsNoCounterexample) {
  StatGateSpec spec;
  spec.name = "pass";
  spec.trials = 30;
  spec.min_rate = 0.9;
  const GateResult r = StatGate(spec).run_cases<GenCase>(
      [&](util::Rng& rng) { return gen_case(rng, ScenarioDims{}); },
      [](const GenCase&, util::Rng&) { return true; },
      [](const GenCase& c) { return shrink_case(c); },
      [](const GenCase& c) { return describe_case(c); });
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.message.find("shrunk counterexample"), std::string::npos);
}

TEST(StatGate, StressScaleMultipliesTrials) {
  // setenv/unsetenv are process-global: fine here, this binary runs tests
  // serially.
  ASSERT_EQ(setenv("GRAPHENE_STRESS", "3", 1), 0);
  EXPECT_EQ(stress_scale(), 3u);
  StatGateSpec spec;
  spec.name = "stress";
  spec.trials = 10;
  spec.min_rate = 0.0;
  const GateResult r =
      StatGate(spec).run([](util::Rng&, std::uint64_t) { return true; });
  EXPECT_EQ(r.trials, 30u);
  ASSERT_EQ(setenv("GRAPHENE_STRESS", "1", 1), 0);
  // Any non-numeric / ≤1 value means "the default stress factor of 10".
  EXPECT_EQ(stress_scale(), 10u);
  ASSERT_EQ(unsetenv("GRAPHENE_STRESS"), 0);
  EXPECT_EQ(stress_scale(), 1u);
}

}  // namespace
}  // namespace graphene::testkit
