#include <gtest/gtest.h>

#include "testkit/faulty_channel.hpp"

namespace graphene::testkit {
namespace {

util::Bytes bytes_of(std::initializer_list<std::uint8_t> v) { return util::Bytes(v); }

TEST(FaultyChannel, CleanSpecIsAPassthrough) {
  FaultyChannel ch(FaultSpec{});
  for (int i = 0; i < 20; ++i) {
    const util::Bytes payload = bytes_of({1, 2, 3, static_cast<std::uint8_t>(i)});
    const auto out = ch.transmit(net::Direction::kSenderToReceiver,
                                 net::MessageType::kGrapheneBlock, payload);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], payload);
  }
  EXPECT_EQ(ch.counts().sent, 20u);
  EXPECT_EQ(ch.counts().delivered, 20u);
  EXPECT_EQ(ch.counts().faults(), 0u);
}

TEST(FaultyChannel, DropOneLosesEverything) {
  FaultSpec spec;
  spec.drop = 1.0;
  FaultyChannel ch(spec);
  for (int i = 0; i < 10; ++i) {
    const auto out = ch.transmit(net::Direction::kSenderToReceiver,
                                 net::MessageType::kGrapheneBlock, bytes_of({1, 2}));
    EXPECT_TRUE(out.empty());
  }
  EXPECT_EQ(ch.counts().dropped, 10u);
  EXPECT_EQ(ch.counts().delivered, 0u);
}

TEST(FaultyChannel, DuplicateOneDeliversTwice) {
  FaultSpec spec;
  spec.duplicate = 1.0;
  FaultyChannel ch(spec);
  const auto out = ch.transmit(net::Direction::kSenderToReceiver,
                               net::MessageType::kGrapheneBlock, bytes_of({9}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], out[1]);
  EXPECT_EQ(ch.counts().duplicated, 1u);
}

TEST(FaultyChannel, ReorderHoldsUntilNextTransmitInSameDirection) {
  FaultSpec spec;
  spec.reorder = 1.0;
  FaultyChannel ch(spec);
  // Every transmit is held; each delivery contains only the PREVIOUS
  // message, so arrival order is shifted by one.
  const auto first = ch.transmit(net::Direction::kSenderToReceiver,
                                 net::MessageType::kGrapheneBlock, bytes_of({1}));
  EXPECT_TRUE(first.empty());
  const auto second = ch.transmit(net::Direction::kSenderToReceiver,
                                  net::MessageType::kGrapheneBlock, bytes_of({2}));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], bytes_of({1}));
  const auto flushed = ch.flush(net::Direction::kSenderToReceiver);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0], bytes_of({2}));
  EXPECT_EQ(ch.counts().reordered, 2u);
  EXPECT_EQ(ch.counts().delivered, 2u);
}

TEST(FaultyChannel, DirectionsHoldIndependently) {
  FaultSpec spec;
  spec.reorder = 1.0;
  FaultyChannel ch(spec);
  ASSERT_TRUE(ch.transmit(net::Direction::kSenderToReceiver,
                          net::MessageType::kGrapheneBlock, bytes_of({1}))
                  .empty());
  // A transmit in the OTHER direction must not release the held message.
  ASSERT_TRUE(ch.transmit(net::Direction::kReceiverToSender,
                          net::MessageType::kGrapheneRequest, bytes_of({2}))
                  .empty());
  EXPECT_EQ(ch.flush(net::Direction::kSenderToReceiver).size(), 1u);
  EXPECT_EQ(ch.flush(net::Direction::kReceiverToSender).size(), 1u);
}

TEST(FaultyChannel, TruncateNeverGrowsThePayload) {
  FaultSpec spec;
  spec.truncate = 1.0;
  FaultyChannel ch(spec);
  for (int i = 0; i < 50; ++i) {
    util::Bytes payload(64);
    const auto out = ch.transmit(net::Direction::kSenderToReceiver,
                                 net::MessageType::kGrapheneBlock, payload);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_LE(out[0].size(), 64u);
  }
  EXPECT_EQ(ch.counts().truncated, 50u);
}

TEST(FaultyChannel, BitflipChangesBytesButNotLength) {
  FaultSpec spec;
  spec.bitflip = 1.0;
  FaultyChannel ch(spec);
  const util::Bytes payload(32, 0xAA);
  const auto out = ch.transmit(net::Direction::kSenderToReceiver,
                               net::MessageType::kGrapheneBlock, payload);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), payload.size());
  EXPECT_NE(out[0], payload);
}

TEST(FaultyChannel, ScheduleIsDeterministicInTheSeed) {
  FaultSpec spec;
  spec.drop = 0.2;
  spec.duplicate = 0.2;
  spec.reorder = 0.2;
  spec.truncate = 0.2;
  spec.bitflip = 0.2;
  spec.seed = 77;
  const auto run = [&] {
    FaultyChannel ch(spec);
    std::vector<util::Bytes> all;
    util::Rng payload_rng(5);
    for (int i = 0; i < 100; ++i) {
      util::Bytes p(1 + payload_rng.below(40));
      payload_rng.fill(p);
      for (auto& b : ch.transmit(net::Direction::kSenderToReceiver,
                                 net::MessageType::kGrapheneBlock, p)) {
        all.push_back(std::move(b));
      }
    }
    for (auto& b : ch.flush(net::Direction::kSenderToReceiver)) all.push_back(std::move(b));
    return std::make_pair(all, ch.counts());
  };
  const auto [a, ca] = run();
  const auto [b, cb] = run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(ca.dropped, cb.dropped);
  EXPECT_EQ(ca.delivered, cb.delivered);
  EXPECT_EQ(ca.faults(), cb.faults());
  EXPECT_GT(ca.faults(), 0u);
}

TEST(FaultyChannel, ConservationSentEqualsDeliveredPlusDroppedPlusDupes) {
  FaultSpec spec;
  spec.drop = 0.3;
  spec.duplicate = 0.3;
  spec.reorder = 0.3;
  spec.seed = 3;
  FaultyChannel ch(spec);
  for (int i = 0; i < 500; ++i) {
    ch.transmit(net::Direction::kSenderToReceiver, net::MessageType::kGrapheneBlock,
                bytes_of({1}));
  }
  ch.flush(net::Direction::kSenderToReceiver);
  const FaultCounts& c = ch.counts();
  EXPECT_EQ(c.delivered + c.dropped, c.sent + c.duplicated);
}

TEST(FaultyChannel, InnerChannelSeesEveryOriginalSend) {
  net::Channel inner;
  FaultSpec spec;
  spec.drop = 1.0;  // the link loses everything...
  FaultyChannel ch(spec, &inner);
  const util::Bytes payload(10, 0x42);
  ch.transmit(net::Direction::kSenderToReceiver, net::MessageType::kGrapheneBlock,
              payload);
  // ...but accounting still records what the sender put on the wire.
  ASSERT_EQ(inner.message_count(), 1u);
  EXPECT_EQ(inner.payload_bytes(net::Direction::kSenderToReceiver), payload.size());
  EXPECT_EQ(ch.inner(), &inner);
}

}  // namespace
}  // namespace graphene::testkit
