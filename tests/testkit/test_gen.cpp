#include <gtest/gtest.h>

#include <set>

#include "testkit/gen.hpp"

namespace graphene::testkit {
namespace {

TEST(Gen, CaseIsDeterministicInTheRngStream) {
  const ScenarioDims dims;
  util::Rng a(7);
  util::Rng b(7);
  for (int i = 0; i < 50; ++i) {
    const GenCase ca = gen_case(a, dims);
    const GenCase cb = gen_case(b, dims);
    EXPECT_EQ(ca.spec.block_txns, cb.spec.block_txns);
    EXPECT_EQ(ca.spec.extra_txns, cb.spec.extra_txns);
    EXPECT_EQ(ca.spec.block_fraction_in_mempool, cb.spec.block_fraction_in_mempool);
    EXPECT_EQ(ca.salt, cb.salt);
    EXPECT_EQ(ca.scenario_seed, cb.scenario_seed);
  }
}

TEST(Gen, CasesRespectDims) {
  ScenarioDims dims;
  dims.min_block_txns = 5;
  dims.max_block_txns = 100;
  dims.max_extra_multiple = 2.0;
  dims.min_fraction = 0.25;
  dims.max_fraction = 0.75;
  util::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const GenCase c = gen_case(rng, dims);
    EXPECT_GE(c.spec.block_txns, dims.min_block_txns);
    EXPECT_LE(c.spec.block_txns, dims.max_block_txns);
    EXPECT_LE(c.spec.extra_txns,
              static_cast<std::uint64_t>(dims.max_extra_multiple *
                                         static_cast<double>(c.spec.block_txns)) +
                  1);
    EXPECT_GE(c.spec.block_fraction_in_mempool, dims.min_fraction);
    EXPECT_LE(c.spec.block_fraction_in_mempool, dims.max_fraction);
    EXPECT_EQ(c.spec.sender_extra_txns, 0u);
  }
}

TEST(Gen, LogUniformCoversSmallAndLargeBlocks) {
  const ScenarioDims dims;  // 1..2000
  util::Rng rng(13);
  int small = 0, large = 0;
  for (int i = 0; i < 400; ++i) {
    const GenCase c = gen_case(rng, dims);
    if (c.spec.block_txns <= 10) ++small;
    if (c.spec.block_txns >= 500) ++large;
  }
  // Log-uniform in [1, 2000]: each decade gets a comparable share.
  EXPECT_GT(small, 20);
  EXPECT_GT(large, 20);
}

TEST(Gen, ScenarioMatchesSpecExactly) {
  ScenarioDims dims;
  dims.min_block_txns = 10;
  util::Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    const GenCase c = gen_case(rng, dims);
    const chain::Scenario s = build_scenario(c);
    EXPECT_EQ(s.n, c.spec.block_txns);
    const auto want_x = static_cast<std::uint64_t>(
        c.spec.block_fraction_in_mempool * static_cast<double>(s.n));
    // make_scenario uses exact overlap counts.
    EXPECT_NEAR(static_cast<double>(s.x), static_cast<double>(want_x), 1.0);
    EXPECT_EQ(s.m, s.x + c.spec.extra_txns);
  }
}

TEST(Gen, BuildScenarioIsReproducible) {
  util::Rng rng(19);
  const GenCase c = gen_case(rng, ScenarioDims{});
  const chain::Scenario a = build_scenario(c);
  const chain::Scenario b = build_scenario(c);
  EXPECT_EQ(a.block.tx_ids(), b.block.tx_ids());
  EXPECT_EQ(a.m, b.m);
  EXPECT_EQ(a.x, b.x);
}

TEST(Gen, ShrinkCandidatesAreStrictlySimpler) {
  GenCase c;
  c.spec.block_txns = 64;
  c.spec.extra_txns = 100;
  c.spec.block_fraction_in_mempool = 0.5;
  c.spec.sender_extra_txns = 3;
  for (const GenCase& s : shrink_case(c)) {
    const bool simpler =
        s.spec.block_txns < c.spec.block_txns || s.spec.extra_txns < c.spec.extra_txns ||
        s.spec.block_fraction_in_mempool > c.spec.block_fraction_in_mempool ||
        s.spec.sender_extra_txns < c.spec.sender_extra_txns;
    EXPECT_TRUE(simpler);
    // Scenario seed and salt are preserved so the shrunk case replays the
    // same stream.
    EXPECT_EQ(s.salt, c.salt);
    EXPECT_EQ(s.scenario_seed, c.scenario_seed);
  }
}

TEST(Gen, ShrinkOfMinimalCaseIsEmpty) {
  GenCase c;
  c.spec.block_txns = 1;
  c.spec.extra_txns = 0;
  c.spec.block_fraction_in_mempool = 1.0;
  c.spec.sender_extra_txns = 0;
  EXPECT_TRUE(shrink_case(c).empty());
}

TEST(Gen, GreedyShrinkTerminates) {
  GenCase c;
  c.spec.block_txns = 2000;
  c.spec.extra_txns = 10000;
  c.spec.block_fraction_in_mempool = 0.123;
  c.spec.sender_extra_txns = 7;
  int steps = 0;
  bool progressed = true;
  while (progressed && steps < 1000) {
    progressed = false;
    for (const GenCase& cand : shrink_case(c)) {
      c = cand;  // accept every first candidate — worst case for termination
      progressed = true;
      ++steps;
      break;
    }
  }
  EXPECT_LT(steps, 1000);
}

TEST(Gen, DescribeMentionsEveryReproductionInput) {
  util::Rng rng(23);
  const GenCase c = gen_case(rng, ScenarioDims{});
  const std::string d = describe_case(c);
  EXPECT_NE(d.find("n=" + std::to_string(c.spec.block_txns)), std::string::npos);
  EXPECT_NE(d.find("salt=" + std::to_string(c.salt)), std::string::npos);
  EXPECT_NE(d.find("scenario_seed=" + std::to_string(c.scenario_seed)),
            std::string::npos);
}

TEST(Gen, TransactionsHaveBoundedSizeAndDistinctIds) {
  util::Rng rng(29);
  std::set<std::uint64_t> first_words;
  for (int i = 0; i < 200; ++i) {
    const chain::Transaction tx = gen_transaction(rng, 150, 600);
    EXPECT_GE(tx.size_bytes, 150u);
    EXPECT_LE(tx.size_bytes, 600u);
    std::uint64_t w = 0;
    for (int b = 0; b < 8; ++b) w |= static_cast<std::uint64_t>(tx.id[static_cast<std::size_t>(b)]) << (8 * b);
    first_words.insert(w);
  }
  EXPECT_EQ(first_words.size(), 200u);
}

TEST(Gen, WireBytesAreBounded) {
  util::Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    const util::Bytes b = gen_wire_bytes(rng, 64);
    EXPECT_LE(b.size(), 64u);
  }
}

TEST(Gen, WireBytesMutateTheBaseEncoding) {
  util::Rng rng(37);
  util::Bytes base(128);
  rng.fill(base);
  int differs = 0, noise = 0;
  for (int i = 0; i < 200; ++i) {
    const util::Bytes b = gen_wire_bytes(rng, 256, &base);
    EXPECT_LE(b.size(), 256u);
    if (b.size() == base.size() && b != base) ++differs;
    if (b.size() != base.size()) ++noise;
  }
  // Both the mutate-base and pure-noise paths must be exercised.
  EXPECT_GT(differs, 10);
  EXPECT_GT(noise, 10);
}

}  // namespace
}  // namespace graphene::testkit
