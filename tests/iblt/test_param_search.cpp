#include "iblt/param_search.hpp"

#include <gtest/gtest.h>

#include "iblt/hypergraph.hpp"
#include "util/thread_pool.hpp"

namespace graphene::iblt {
namespace {

SearchOptions fast_options() {
  SearchOptions opts;
  opts.max_trials = 3000;
  opts.batch = 64;
  return opts;
}

TEST(ParamSearch, ZeroItemsTrivial) {
  util::Rng rng(1);
  const auto r = search_cells(0, 4, 0.95, rng, fast_options());
  ASSERT_TRUE(r.cells.has_value());
  EXPECT_EQ(*r.cells, 4u);
  EXPECT_TRUE(r.certified);
}

TEST(ParamSearch, ReturnsMultipleOfK) {
  util::Rng rng(2);
  for (const std::uint32_t k : {3u, 4u, 5u}) {
    const auto r = search_cells(25, k, 0.95, rng, fast_options());
    ASSERT_TRUE(r.cells.has_value());
    EXPECT_EQ(*r.cells % k, 0u) << "k=" << k;
  }
}

TEST(ParamSearch, FoundSizeMeetsRate) {
  util::Rng rng(3);
  const double p = 0.95;
  const auto r = search_cells(30, 4, p, rng, fast_options());
  ASSERT_TRUE(r.cells.has_value());
  const double rate = measure_decode_rate(30, 4, *r.cells, 4000, rng);
  EXPECT_GE(rate, p - 0.03);
}

TEST(ParamSearch, OneStepSmallerMissesRate) {
  // The returned c should be near-minimal: shrinking by one k-block must
  // drop the decode rate below (or near) the target.
  util::Rng rng(4);
  const double p = 0.99;
  const std::uint32_t k = 4;
  const auto r = search_cells(40, k, p, rng, fast_options());
  ASSERT_TRUE(r.cells.has_value());
  ASSERT_GT(*r.cells, k);
  const double smaller_rate = measure_decode_rate(40, k, *r.cells - k, 8000, rng);
  EXPECT_LT(smaller_rate, p + 0.005);
}

TEST(ParamSearch, HigherTargetRateNeedsMoreCells) {
  util::Rng rng(5);
  const auto c_low = search_cells(50, 4, 0.90, rng, fast_options());
  const auto c_high = search_cells(50, 4, 0.999, rng, fast_options());
  ASSERT_TRUE(c_low.cells && c_high.cells);
  EXPECT_LT(*c_low.cells, *c_high.cells);
}

TEST(ParamSearch, MoreItemsNeedMoreCells) {
  util::Rng rng(6);
  const auto c10 = search_cells(10, 4, 0.95, rng, fast_options());
  const auto c100 = search_cells(100, 4, 0.95, rng, fast_options());
  ASSERT_TRUE(c10.cells && c100.cells);
  EXPECT_LT(*c10.cells, *c100.cells);
}

TEST(ParamSearch, FullSearchPicksSmallestAcrossK) {
  util::Rng rng(7);
  SearchOptions opts = fast_options();
  opts.k_min = 3;
  opts.k_max = 6;
  const SearchResult best = search_params(60, 0.95, rng, opts);
  ASSERT_NE(best.params.cells, 0u);
  EXPECT_GE(best.params.k, opts.k_min);
  EXPECT_LE(best.params.k, opts.k_max);
  // No individual k should beat the chosen size materially.
  for (std::uint32_t k = opts.k_min; k <= opts.k_max; ++k) {
    const auto r = search_cells(60, k, 0.95, rng, opts);
    if (r.cells) EXPECT_GE(*r.cells + 2 * k, best.params.cells) << "k=" << k;
  }
  EXPECT_GT(best.decode_rate, 0.9);
}

TEST(ParamSearch, HedgeFactorIsReasonable) {
  // Literature: peeling thresholds put c/j in roughly [1.2, 3] for mid-size
  // j at moderate rates.
  util::Rng rng(8);
  const auto r = search_cells(100, 4, 0.95, rng, fast_options());
  ASSERT_TRUE(r.cells.has_value());
  const double tau = static_cast<double>(*r.cells) / 100.0;
  EXPECT_GT(tau, 1.0);
  EXPECT_LT(tau, 3.0);
}

TEST(ParamSearch, UncertifiedWhenTrialCapTooSmall) {
  // One trial per decision: a single Bernoulli sample cannot separate a
  // Wilson CI from an interior p, so every decision falls through to the
  // point-estimate exit and the result must be flagged uncertified.
  util::Rng rng(9);
  SearchOptions opts = fast_options();
  opts.max_trials = 1;
  opts.batch = 1;
  const auto r = search_cells(30, 4, 0.5, rng, opts);
  EXPECT_FALSE(r.certified);

  util::Rng rng2(9);
  const SearchResult full = search_params(30, 0.5, rng2, opts);
  EXPECT_FALSE(full.certified);
}

TEST(ParamSearch, CertifiedPropagatesFromFullSearch) {
  // At p = 0.5 the decode-rate curve is steep around the threshold, so
  // every binary-search decision separates well before the cap with this
  // seed; deterministic given the seed, so this cannot flake.
  util::Rng rng(10);
  SearchOptions opts = fast_options();
  opts.max_trials = 20000;
  const SearchResult best = search_params(25, 0.5, rng, opts);
  ASSERT_NE(best.params.cells, 0u);
  EXPECT_TRUE(best.certified);
}

TEST(ParamSearch, ParallelSearchMatchesSerialForAnyWorkerCount) {
  // The tentpole determinism guarantee: identical results for 1, 2, and 8
  // workers (and the no-pool serial path) under a fixed seed.
  const auto run = [](util::ThreadPool* pool) {
    util::Rng rng(42);
    SearchOptions opts;
    opts.k_min = 3;
    opts.k_max = 6;
    opts.max_trials = 4000;
    opts.batch = 64;
    opts.pool = pool;
    return search_params(50, 0.95, rng, opts);
  };

  const SearchResult serial = run(nullptr);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    util::ThreadPool pool(workers);
    const SearchResult parallel = run(&pool);
    EXPECT_EQ(parallel.params.k, serial.params.k) << workers << " workers";
    EXPECT_EQ(parallel.params.cells, serial.params.cells) << workers << " workers";
    EXPECT_EQ(parallel.decode_rate, serial.decode_rate) << workers << " workers";
    EXPECT_EQ(parallel.certified, serial.certified) << workers << " workers";
  }
}

TEST(ParamSearch, MeasureDecodeRateMatchesAcrossPools) {
  const auto run = [](util::ThreadPool* pool) {
    util::Rng rng(11);
    return measure_decode_rate(60, 4, 120, 3000, rng, pool);
  };
  const double serial = run(nullptr);
  util::ThreadPool pool(4);
  EXPECT_EQ(run(&pool), serial);
}

}  // namespace
}  // namespace graphene::iblt
