#include "iblt/param_search.hpp"

#include <gtest/gtest.h>

#include "iblt/hypergraph.hpp"

namespace graphene::iblt {
namespace {

SearchOptions fast_options() {
  SearchOptions opts;
  opts.max_trials = 3000;
  opts.batch = 64;
  return opts;
}

TEST(ParamSearch, ZeroItemsTrivial) {
  util::Rng rng(1);
  const auto c = search_cells(0, 4, 0.95, rng, fast_options());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 4u);
}

TEST(ParamSearch, ReturnsMultipleOfK) {
  util::Rng rng(2);
  for (const std::uint32_t k : {3u, 4u, 5u}) {
    const auto c = search_cells(25, k, 0.95, rng, fast_options());
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c % k, 0u) << "k=" << k;
  }
}

TEST(ParamSearch, FoundSizeMeetsRate) {
  util::Rng rng(3);
  const double p = 0.95;
  const auto c = search_cells(30, 4, p, rng, fast_options());
  ASSERT_TRUE(c.has_value());
  const double rate = measure_decode_rate(30, 4, *c, 4000, rng);
  EXPECT_GE(rate, p - 0.03);
}

TEST(ParamSearch, OneStepSmallerMissesRate) {
  // The returned c should be near-minimal: shrinking by one k-block must
  // drop the decode rate below (or near) the target.
  util::Rng rng(4);
  const double p = 0.99;
  const std::uint32_t k = 4;
  const auto c = search_cells(40, k, p, rng, fast_options());
  ASSERT_TRUE(c.has_value());
  ASSERT_GT(*c, k);
  const double smaller_rate = measure_decode_rate(40, k, *c - k, 8000, rng);
  EXPECT_LT(smaller_rate, p + 0.005);
}

TEST(ParamSearch, HigherTargetRateNeedsMoreCells) {
  util::Rng rng(5);
  const auto c_low = search_cells(50, 4, 0.90, rng, fast_options());
  const auto c_high = search_cells(50, 4, 0.999, rng, fast_options());
  ASSERT_TRUE(c_low && c_high);
  EXPECT_LT(*c_low, *c_high);
}

TEST(ParamSearch, MoreItemsNeedMoreCells) {
  util::Rng rng(6);
  const auto c10 = search_cells(10, 4, 0.95, rng, fast_options());
  const auto c100 = search_cells(100, 4, 0.95, rng, fast_options());
  ASSERT_TRUE(c10 && c100);
  EXPECT_LT(*c10, *c100);
}

TEST(ParamSearch, FullSearchPicksSmallestAcrossK) {
  util::Rng rng(7);
  SearchOptions opts = fast_options();
  opts.k_min = 3;
  opts.k_max = 6;
  const SearchResult best = search_params(60, 0.95, rng, opts);
  ASSERT_NE(best.params.cells, 0u);
  EXPECT_GE(best.params.k, opts.k_min);
  EXPECT_LE(best.params.k, opts.k_max);
  // No individual k should beat the chosen size materially.
  for (std::uint32_t k = opts.k_min; k <= opts.k_max; ++k) {
    const auto c = search_cells(60, k, 0.95, rng, opts);
    if (c) EXPECT_GE(*c + 2 * k, best.params.cells) << "k=" << k;
  }
  EXPECT_GT(best.decode_rate, 0.9);
}

TEST(ParamSearch, HedgeFactorIsReasonable) {
  // Literature: peeling thresholds put c/j in roughly [1.2, 3] for mid-size
  // j at moderate rates.
  util::Rng rng(8);
  const auto c = search_cells(100, 4, 0.95, rng, fast_options());
  ASSERT_TRUE(c.has_value());
  const double tau = static_cast<double>(*c) / 100.0;
  EXPECT_GT(tau, 1.0);
  EXPECT_LT(tau, 3.0);
}

}  // namespace
}  // namespace graphene::iblt
