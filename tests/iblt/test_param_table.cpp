#include "iblt/param_table.hpp"

#include <gtest/gtest.h>

#include "iblt/param_search.hpp"
#include "util/random.hpp"

namespace graphene::iblt {
namespace {

TEST(ParamTable, TableIsNonEmptyAndWellFormed) {
  const auto table = raw_table();
  ASSERT_FALSE(table.empty());
  for (const TableEntry& e : table) {
    EXPECT_GT(e.j, 0u);
    EXPECT_GE(e.k, 2u);
    EXPECT_LE(e.k, 16u);
    EXPECT_EQ(e.cells % e.k, 0u) << "j=" << e.j;
    EXPECT_GE(e.cells, e.k);
  }
}

TEST(ParamTable, LookupReturnsUsableParams) {
  for (const std::uint64_t j : {1ULL, 5ULL, 50ULL, 500ULL, 5000ULL}) {
    const IbltParams p = lookup_params(j, 240);
    EXPECT_GE(p.k, 2u);
    EXPECT_GE(p.cells, j) << "j=" << j;  // need at least ~τj ≥ j cells
  }
}

TEST(ParamTable, ZeroSnapsToOne) {
  const IbltParams p0 = lookup_params(0, 240);
  const IbltParams p1 = lookup_params(1, 240);
  EXPECT_EQ(p0.cells, p1.cells);
}

TEST(ParamTable, CellsMonotoneInJ) {
  std::uint64_t prev = 0;
  for (std::uint64_t j = 1; j <= 2000; j += 7) {
    const std::uint64_t cells = lookup_params(j, 240).cells;
    EXPECT_GE(cells + 8, prev) << "j=" << j;  // small tolerance for k changes
    prev = cells;
  }
}

TEST(ParamTable, StricterRateCostsMoreCells) {
  for (const std::uint64_t j : {10ULL, 100ULL, 1000ULL}) {
    EXPECT_LE(lookup_params(j, 24).cells, lookup_params(j, 240).cells + 4) << j;
    EXPECT_LE(lookup_params(j, 240).cells, lookup_params(j, 2400).cells + 4) << j;
  }
}

TEST(ParamTable, UnknownDenomSnapsUp) {
  // 100 snaps to 240 (stricter), 9999 snaps to 2400 (strictest available).
  EXPECT_EQ(lookup_params(50, 100).cells, lookup_params(50, 240).cells);
  EXPECT_EQ(lookup_params(50, 9999).cells, lookup_params(50, 2400).cells);
}

TEST(ParamTable, ExtrapolationBeyondGridStaysProportional) {
  const double tau_at_edge = hedge_factor(3000, 240);
  const double tau_beyond = hedge_factor(30000, 240);
  EXPECT_LT(tau_beyond, tau_at_edge * 1.3);
  EXPECT_GT(tau_beyond, 1.0);
}

TEST(ParamTable, IbltBytesMatchesCellCount) {
  const IbltParams p = lookup_params(100, 240);
  EXPECT_EQ(iblt_bytes(100, 240), Iblt::serialized_size_for(p.cells));
}

class ParamTableDecodeRate : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParamTableDecodeRate, MeetsAdvertisedRateAt240) {
  // The shipped (j, k, cells) must hit ≥ 1 − 1/240 ≈ 0.9958 decode rate;
  // check it clears 0.98 at modest trial counts (tight bound needs ~10⁵
  // trials; the bench does that).
  const std::uint64_t j = GetParam();
  const IbltParams p = lookup_params(j, 240);
  util::Rng rng(j * 31 + 7);
  const double rate = measure_decode_rate(j, p.k, p.cells, 3000, rng);
  EXPECT_GE(rate, 0.98) << "j=" << j << " k=" << p.k << " c=" << p.cells;
}

INSTANTIATE_TEST_SUITE_P(Grid, ParamTableDecodeRate,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 50, 100, 300, 1000));

}  // namespace
}  // namespace graphene::iblt
