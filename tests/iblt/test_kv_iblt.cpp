#include "iblt/kv_iblt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/random.hpp"

namespace graphene::iblt {
namespace {

std::map<std::uint64_t, std::uint64_t> random_entries(std::size_t count,
                                                      util::Rng& rng) {
  std::map<std::uint64_t, std::uint64_t> out;
  while (out.size() < count) out.emplace(rng.next(), rng.next());
  return out;
}

TEST(KvIblt, DecodeRecoversEntriesWithValues) {
  util::Rng rng(1);
  const auto entries = random_entries(15, rng);
  KvIblt t(4, 80);
  for (const auto& [k, v] : entries) t.insert(k, v);
  const KvDecodeResult dec = t.decode();
  ASSERT_TRUE(dec.success);
  ASSERT_EQ(dec.positives.size(), 15u);
  for (const KvEntry& e : dec.positives) {
    ASSERT_TRUE(entries.count(e.key) > 0);
    EXPECT_EQ(entries.at(e.key), e.value);
  }
}

TEST(KvIblt, GetResolvesFromPureCell) {
  util::Rng rng(2);
  KvIblt t(4, 100);
  t.insert(42, 1042);
  t.insert(77, 1077);
  bool indeterminate = false;
  const auto v = t.get(42, &indeterminate);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1042u);
  EXPECT_FALSE(indeterminate);
}

TEST(KvIblt, GetAbsentKeyIsNullopt) {
  util::Rng rng(3);
  KvIblt t(4, 100);
  for (const auto& [k, v] : random_entries(10, rng)) t.insert(k, v);
  bool indeterminate = false;
  EXPECT_FALSE(t.get(0xdead, &indeterminate).has_value());
}

TEST(KvIblt, GetInOverloadedTableReportsIndeterminate) {
  util::Rng rng(4);
  KvIblt t(4, 8);
  for (const auto& [k, v] : random_entries(100, rng)) t.insert(k, v);
  int indeterminate_count = 0;
  for (const auto& [k, v] : random_entries(50, rng)) {
    bool ind = false;
    (void)t.get(k, &ind);
    indeterminate_count += ind ? 1 : 0;
  }
  EXPECT_GT(indeterminate_count, 25);  // nearly every probe is crowded
}

TEST(KvIblt, SubtractRecoversSymmetricDifferenceWithValues) {
  util::Rng rng(5);
  const auto common = random_entries(50, rng);
  const auto only_a = random_entries(6, rng);
  const auto only_b = random_entries(7, rng);
  KvIblt a(4, 80, 9), b(4, 80, 9);
  for (const auto& [k, v] : common) {
    a.insert(k, v);
    b.insert(k, v);
  }
  for (const auto& [k, v] : only_a) a.insert(k, v);
  for (const auto& [k, v] : only_b) b.insert(k, v);

  const KvDecodeResult dec = a.subtract(b).decode();
  ASSERT_TRUE(dec.success);
  EXPECT_EQ(dec.positives.size(), only_a.size());
  EXPECT_EQ(dec.negatives.size(), only_b.size());
  for (const KvEntry& e : dec.positives) EXPECT_EQ(only_a.at(e.key), e.value);
  for (const KvEntry& e : dec.negatives) EXPECT_EQ(only_b.at(e.key), e.value);
}

TEST(KvIblt, ValueMismatchOnSameKeyIsDetectedNotSilent) {
  // Same key with different values on the two sides: the subtraction leaves
  // a cell whose keySum matches but whose valueSum is the xor of both
  // values; the count is 0 so the residual is non-decodable — the failure is
  // reported, never silently wrong.
  KvIblt a(4, 40, 1), b(4, 40, 1);
  a.insert(5, 100);
  b.insert(5, 200);
  const KvDecodeResult dec = a.subtract(b).decode();
  EXPECT_FALSE(dec.success);
}

TEST(KvIblt, InsertEraseCancels) {
  KvIblt t(4, 40);
  t.insert(1, 10);
  t.erase(1, 10);
  const KvDecodeResult dec = t.decode();
  EXPECT_TRUE(dec.success);
  EXPECT_TRUE(dec.positives.empty());
}

TEST(KvIblt, SerializeRoundTrip) {
  util::Rng rng(6);
  KvIblt t(5, 50, 77);
  for (const auto& [k, v] : random_entries(8, rng)) t.insert(k, v);
  const util::Bytes wire = t.serialize();
  util::ByteReader r{util::ByteView(wire)};
  const KvIblt u = KvIblt::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(u.cell_count(), t.cell_count());
  const KvIblt diff = t.subtract(u);
  EXPECT_TRUE(diff.decode().success);
  EXPECT_TRUE(diff.decode().positives.empty());
}

TEST(KvIblt, RejectsBadParameters) {
  EXPECT_THROW(KvIblt(1, 10), std::invalid_argument);
  EXPECT_THROW(KvIblt(99, 10), std::invalid_argument);
}

}  // namespace
}  // namespace graphene::iblt
