#include "iblt/pingpong.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "iblt/param_table.hpp"
#include "util/random.hpp"

namespace graphene::iblt {
namespace {

struct DiffSets {
  std::vector<std::uint64_t> common;
  std::vector<std::uint64_t> only_a;
  std::vector<std::uint64_t> only_b;
};

DiffSets make_sets(std::size_t common, std::size_t a, std::size_t b, std::uint64_t seed) {
  util::Rng rng(seed);
  std::set<std::uint64_t> all;
  while (all.size() < common + a + b) all.insert(rng.next());
  DiffSets out;
  auto it = all.begin();
  for (std::size_t i = 0; i < common; ++i) out.common.push_back(*it++);
  for (std::size_t i = 0; i < a; ++i) out.only_a.push_back(*it++);
  for (std::size_t i = 0; i < b; ++i) out.only_b.push_back(*it++);
  return out;
}

Iblt build_diff(const DiffSets& sets, IbltParams params, std::uint64_t seed) {
  Iblt a(params, seed), b(params, seed);
  for (const std::uint64_t k : sets.common) {
    a.insert(k);
    b.insert(k);
  }
  for (const std::uint64_t k : sets.only_a) a.insert(k);
  for (const std::uint64_t k : sets.only_b) b.insert(k);
  return a.subtract(b);
}

TEST(PingPong, BothDecodableAgreesWithSingle) {
  const DiffSets sets = make_sets(50, 4, 3, 1);
  const Iblt d1 = build_diff(sets, IbltParams{4, 40}, 11);
  const Iblt d2 = build_diff(sets, IbltParams{3, 30}, 22);
  const PingPongResult pp = pingpong_decode(d1, d2);
  ASSERT_TRUE(pp.success);
  auto pos = pp.positives;
  auto neg = pp.negatives;
  std::sort(pos.begin(), pos.end());
  std::sort(neg.begin(), neg.end());
  auto ea = sets.only_a;
  auto eb = sets.only_b;
  std::sort(ea.begin(), ea.end());
  std::sort(eb.begin(), eb.end());
  EXPECT_EQ(pos, ea);
  EXPECT_EQ(neg, eb);
}

TEST(PingPong, EmptyDifferencesSucceedImmediately) {
  const DiffSets sets = make_sets(30, 0, 0, 2);
  const Iblt d1 = build_diff(sets, IbltParams{4, 24}, 1);
  const Iblt d2 = build_diff(sets, IbltParams{4, 16}, 2);
  const PingPongResult pp = pingpong_decode(d1, d2);
  EXPECT_TRUE(pp.success);
  EXPECT_TRUE(pp.positives.empty());
  EXPECT_TRUE(pp.negatives.empty());
}

TEST(PingPong, RescuesUndersizedSibling) {
  // d_small alone cannot decode 24 items in 16 cells; the larger sibling
  // peels most items, whose cancellation unlocks the small one.
  const DiffSets sets = make_sets(100, 14, 10, 3);
  const Iblt d_small = build_diff(sets, IbltParams{4, 16}, 31);
  const Iblt d_large = build_diff(sets, IbltParams{4, 60}, 32);
  ASSERT_FALSE(d_small.decode().success);
  const PingPongResult pp = pingpong_decode(d_small, d_large);
  ASSERT_TRUE(pp.success);
  EXPECT_EQ(pp.positives.size(), sets.only_a.size());
  EXPECT_EQ(pp.negatives.size(), sets.only_b.size());
}

TEST(PingPong, ImprovesDecodeRateOverSingle) {
  // Fig. 11's claim in miniature: two optimally-small 1/240-rate IBLTs with
  // independent seeds jointly fail far less often than one alone. With a
  // sibling of equal size the joint rate should be ≈ (1/240)² — too small to
  // observe here, so simply require strictly fewer failures.
  const std::uint64_t j = 20;
  const IbltParams params = lookup_params(j, 24);  // looser rate → visible failures
  util::Rng rng(4);
  int single_failures = 0, joint_failures = 0;
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t) {
    const DiffSets sets = make_sets(0, j, 0, rng.next());
    const Iblt d1 = build_diff(sets, params, rng.next());
    const Iblt d2 = build_diff(sets, params, rng.next());
    single_failures += d1.decode().success ? 0 : 1;
    joint_failures += pingpong_decode(d1, d2).success ? 0 : 1;
  }
  EXPECT_LT(joint_failures * 4, single_failures + 4)
      << "single=" << single_failures << " joint=" << joint_failures;
}

TEST(PingPong, ReportsMalformedSibling) {
  const DiffSets sets = make_sets(10, 2, 0, 5);
  Iblt bad(IbltParams{4, 40}, 1);
  // k−1-cell insertion crafted via direct cell edits.
  {
    Iblt good(IbltParams{4, 40}, 1);
    good.insert(999);
    auto& cells = good.cells_for_test();
    for (auto& cell : cells) {
      if (cell.count == 1) {
        cell.count = 0;
        cell.key_sum = 0;
        cell.check_sum = 0;
        break;
      }
    }
    bad = good;
  }
  const Iblt ok = build_diff(sets, IbltParams{4, 40}, 2);
  const PingPongResult pp = pingpong_decode(bad, ok);
  EXPECT_FALSE(pp.success);
}

TEST(PingPong, TerminatesWhenNeitherDecodes) {
  // Two heavily-overloaded IBLTs: no progress possible; must terminate.
  const DiffSets sets = make_sets(0, 500, 0, 6);
  const Iblt d1 = build_diff(sets, IbltParams{4, 16}, 1);
  const Iblt d2 = build_diff(sets, IbltParams{4, 16}, 2);
  const PingPongResult pp = pingpong_decode(d1, d2);
  EXPECT_FALSE(pp.success);
}

}  // namespace
}  // namespace graphene::iblt
