#include "iblt/strata_estimator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/random.hpp"

namespace graphene::iblt {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t count, util::Rng& rng) {
  std::set<std::uint64_t> keys;
  while (keys.size() < count) keys.insert(rng.next());
  return {keys.begin(), keys.end()};
}

TEST(StrataEstimator, IdenticalSetsEstimateNearZero) {
  util::Rng rng(1);
  StrataEstimator a(1000), b(1000);
  for (const std::uint64_t k : random_keys(800, rng)) {
    a.insert(k);
    b.insert(k);
  }
  EXPECT_LE(a.estimate_difference(b), 1u);  // floor of 1
}

class StrataAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrataAccuracy, WithinFactorTwoMostly) {
  const std::uint64_t true_diff = GetParam();
  util::Rng rng(true_diff * 17 + 3);
  int within = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    StrataEstimator::Config cfg;
    cfg.seed = rng.next();
    StrataEstimator a(2000, cfg), b(2000, cfg);
    for (const std::uint64_t k : random_keys(1000, rng)) {
      a.insert(k);
      b.insert(k);
    }
    for (const std::uint64_t k : random_keys(true_diff, rng)) a.insert(k);
    const std::uint64_t est = a.estimate_difference(b);
    const double ratio = static_cast<double>(est) / static_cast<double>(true_diff);
    within += (ratio >= 0.45 && ratio <= 2.5) ? 1 : 0;
  }
  EXPECT_GE(within, kTrials * 2 / 3) << "diff " << true_diff;
}

INSTANTIATE_TEST_SUITE_P(Diffs, StrataAccuracy, ::testing::Values(16, 64, 256, 1024));

TEST(StrataEstimator, SmallDifferencesAreExact) {
  // Differences below one stratum's capacity decode fully: exact estimate.
  util::Rng rng(2);
  StrataEstimator a(500), b(500);
  for (const std::uint64_t k : random_keys(400, rng)) {
    a.insert(k);
    b.insert(k);
  }
  const auto extras = random_keys(10, rng);
  for (const std::uint64_t k : extras) a.insert(k);
  EXPECT_EQ(a.estimate_difference(b), 10u);
}

TEST(StrataEstimator, MismatchedConfigThrows) {
  StrataEstimator a(100);
  StrataEstimator::Config other;
  other.seed = 999;
  StrataEstimator b(100, other);
  EXPECT_THROW((void)a.estimate_difference(b), std::invalid_argument);
}

TEST(StrataEstimator, SerializeRoundTrip) {
  util::Rng rng(3);
  StrataEstimator a(1000);
  for (const std::uint64_t k : random_keys(200, rng)) a.insert(k);
  const util::Bytes wire = a.serialize();
  EXPECT_EQ(wire.size(), a.serialized_size());
  util::ByteReader r{util::ByteView(wire)};
  const StrataEstimator b = StrataEstimator::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(b.strata_count(), a.strata_count());
  EXPECT_LE(a.estimate_difference(b), 1u);  // identical content
}

TEST(StrataEstimator, StrataCountScalesWithUniverse) {
  const StrataEstimator small(100);
  const StrataEstimator large(1000000);
  EXPECT_LT(small.strata_count(), large.strata_count());
}

}  // namespace
}  // namespace graphene::iblt
