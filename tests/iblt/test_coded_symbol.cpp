// Rateless IBLT primitives (arXiv 2402.02668): index-sequence mapper,
// streaming encoder, incremental peeling decoder, and the hostile-stream
// termination defenses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "iblt/coded_symbol.hpp"
#include "util/random.hpp"

namespace graphene::iblt {
namespace {

Digest32 random_digest(util::Rng& rng) {
  Digest32 d;
  for (std::size_t i = 0; i < d.size(); i += 8) {
    const std::uint64_t w = rng.next();
    for (std::size_t b = 0; b < 8; ++b) d[i + b] = static_cast<std::uint8_t>(w >> (8 * b));
  }
  return d;
}

std::vector<Digest32> random_digests(std::size_t count, util::Rng& rng) {
  std::vector<Digest32> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(random_digest(rng));
  return out;
}

TEST(IndexMapper, StartsAtZeroAndStrictlyIncreases) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    IndexMapper mapper(rng.next());
    EXPECT_EQ(mapper.current(), 0u);  // every item participates in symbol 0
    std::uint64_t prev = 0;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t next = mapper.next();
      EXPECT_GT(next, prev);
      prev = next;
    }
  }
}

TEST(IndexMapper, DeterministicPerSeed) {
  // 42|1 == 43|1: the mapper forces seeds odd, so pick c two apart.
  IndexMapper a(42), b(42), c(45);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(IndexMapper, ParticipationDensityDecaysLogarithmically) {
  // An item should hit ~2·ln(M) of the first M indices (E[log gap growth]
  // = 1/2). Pin a generous band so a density regression (every index, or a
  // constant number of indices) fails loudly.
  util::Rng rng(7);
  const std::uint64_t kM = 1 << 16;
  double total_hits = 0;
  const int kItems = 64;
  for (int i = 0; i < kItems; ++i) {
    IndexMapper mapper(rng.next());
    std::uint64_t hits = 0;
    for (std::uint64_t idx = mapper.current(); idx < kM; idx = mapper.next()) ++hits;
    total_hits += static_cast<double>(hits);
  }
  const double mean = total_hits / kItems;
  const double ln_m = std::log(static_cast<double>(kM));
  EXPECT_GT(mean, 1.0 * ln_m);
  EXPECT_LT(mean, 4.0 * ln_m);
}

TEST(CodedSymbol, ApplyIsSelfInverse) {
  util::Rng rng(2);
  const Digest32 d = random_digest(rng);
  const std::uint64_t chk = coded_symbol_check(d, 99);
  CodedSymbol cell;
  cell.apply(d, chk, +1);
  EXPECT_FALSE(cell.is_zero());
  EXPECT_EQ(cell.count, 1);
  cell.apply(d, chk, -1);
  EXPECT_TRUE(cell.is_zero());
}

TEST(RatelessEncoder, StreamIsDeterministicAndChecksumIsXor) {
  util::Rng rng(3);
  const auto items = random_digests(100, rng);
  RatelessEncoder a(0x5a17), b(0x5a17);
  std::uint64_t expected_check = 0;
  for (const Digest32& d : items) {
    a.add_item(d);
    b.add_item(d);
    expected_check ^= coded_symbol_check(d, 0x5a17);
  }
  EXPECT_EQ(a.set_checksum(), expected_check);
  for (int i = 0; i < 300; ++i) {
    const CodedSymbol sa = a.next_symbol();
    const CodedSymbol sb = b.next_symbol();
    EXPECT_EQ(sa.sum, sb.sum);
    EXPECT_EQ(sa.check, sb.check);
    EXPECT_EQ(sa.count, sb.count);
  }
  EXPECT_EQ(a.produced(), 300u);
}

TEST(RatelessEncoder, SymbolZeroCoversEveryItem) {
  util::Rng rng(4);
  const auto items = random_digests(50, rng);
  RatelessEncoder enc(1);
  CodedSymbol expected;
  for (const Digest32& d : items) {
    enc.add_item(d);
    expected.apply(d, coded_symbol_check(d, 1), +1);
  }
  const CodedSymbol first = enc.next_symbol();
  EXPECT_EQ(first.count, static_cast<std::int64_t>(items.size()));
  EXPECT_EQ(first.sum, expected.sum);
  EXPECT_EQ(first.check, expected.check);
}

/// Streams host symbols into a decoder seeded with the client set until it
/// decodes; returns the symbols consumed (0 = gave up after `cap`).
std::uint64_t decode_stream(const std::vector<Digest32>& host,
                            const std::vector<Digest32>& client, std::uint64_t salt,
                            RatelessDecoder& dec, std::uint64_t cap = 100000) {
  RatelessEncoder enc(salt);
  for (const Digest32& d : host) enc.add_item(d);
  for (const Digest32& d : client) dec.add_local(d);
  for (std::uint64_t i = 0; i < cap; ++i) {
    dec.add_symbol(enc.next_symbol());
    if (dec.decoded()) return dec.received();
    if (dec.malformed()) return 0;
  }
  return 0;
}

TEST(RatelessDecoder, RecoversSymmetricDifferenceExactly) {
  util::Rng rng(5);
  for (const std::size_t d_host : {1u, 5u, 30u}) {
    for (const std::size_t d_client : {0u, 3u, 20u}) {
      const auto shared = random_digests(200, rng);
      const auto host_only = random_digests(d_host, rng);
      const auto client_only = random_digests(d_client, rng);
      std::vector<Digest32> host = shared, client = shared;
      host.insert(host.end(), host_only.begin(), host_only.end());
      client.insert(client.end(), client_only.begin(), client_only.end());

      RatelessDecoder dec(0xabcdef);
      const std::uint64_t used = decode_stream(host, client, 0xabcdef, dec);
      ASSERT_GT(used, 0u) << "d_host=" << d_host << " d_client=" << d_client;

      const std::set<Digest32> pos(dec.positives().begin(), dec.positives().end());
      const std::set<Digest32> neg(dec.negatives().begin(), dec.negatives().end());
      EXPECT_EQ(pos, std::set<Digest32>(host_only.begin(), host_only.end()));
      EXPECT_EQ(neg, std::set<Digest32>(client_only.begin(), client_only.end()));
    }
  }
}

TEST(RatelessDecoder, IdenticalSetsDecodeWithOneSymbol) {
  util::Rng rng(6);
  const auto items = random_digests(500, rng);
  RatelessDecoder dec(77);
  EXPECT_EQ(decode_stream(items, items, 77, dec), 1u);
  EXPECT_TRUE(dec.positives().empty());
  EXPECT_TRUE(dec.negatives().empty());
}

TEST(RatelessDecoder, LargeDifferenceDecodesWithinTwoXOverhead) {
  util::Rng rng(8);
  const auto host = random_digests(600, rng);
  const auto client = random_digests(100, rng);  // disjoint: d = 700
  RatelessDecoder dec(123);
  const std::uint64_t used = decode_stream(host, client, 123, dec, 5000);
  ASSERT_GT(used, 0u);
  EXPECT_LT(used, 2u * 700u);
}

TEST(RatelessDecoder, GarbageStreamTerminatesViaBudgetNotHang) {
  // A stream of random cells has no consistent peeling order: the decoder
  // must end in malformed() (work budget / double-peel defense) or simply
  // never decode — but each add_symbol must do bounded work.
  util::Rng rng(9);
  RatelessDecoder dec(55);
  for (const Digest32& d : random_digests(50, rng)) dec.add_local(d);
  for (int i = 0; i < 2000 && !dec.malformed(); ++i) {
    CodedSymbol junk;
    junk.sum = random_digest(rng);
    junk.check = rng.next();
    junk.count = static_cast<std::int64_t>(rng.below(5)) - 2;
    dec.add_symbol(junk);
  }
  EXPECT_FALSE(dec.decoded());
}

TEST(RatelessDecoder, RepeatedFirstSymbolDoesNotDecodeWrong) {
  // Feeding the same symbol at every stream position is internally
  // inconsistent (positions imply different participation sets). The decoder
  // may stall or flag malformed; it must not report a bogus decode of a
  // non-empty difference.
  util::Rng rng(10);
  const auto host = random_digests(40, rng);
  RatelessEncoder enc(3);
  for (const Digest32& d : host) enc.add_item(d);
  const CodedSymbol first = enc.next_symbol();

  RatelessDecoder dec(3);  // empty local set: true difference is 40 items
  for (int i = 0; i < 500 && !dec.malformed() && !dec.decoded(); ++i) {
    dec.add_symbol(first);
  }
  if (dec.decoded()) {
    EXPECT_EQ(dec.positives().size(), host.size());
    EXPECT_TRUE(dec.negatives().empty());
  }
}

TEST(RatelessDecoder, UpdateOpsGrowSubquadratically) {
  // The lazy windows make per-symbol work ~O(log) amortized; catching an
  // accidental rescan-everything regression.
  util::Rng rng(11);
  const auto host = random_digests(400, rng);
  const auto client = random_digests(100, rng);
  RatelessDecoder dec(9);
  const std::uint64_t used = decode_stream(host, client, 9, dec, 5000);
  ASSERT_GT(used, 0u);
  EXPECT_LT(dec.update_ops(), 64u * used * 20u);
}

}  // namespace
}  // namespace graphene::iblt
