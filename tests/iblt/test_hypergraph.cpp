#include "iblt/hypergraph.hpp"

#include <gtest/gtest.h>

#include "iblt/iblt.hpp"
#include "iblt/param_search.hpp"
#include "util/random.hpp"

namespace graphene::iblt {
namespace {

TEST(Hypergraph, ZeroEdgesAlwaysDecodes) {
  util::Rng rng(1);
  EXPECT_TRUE(hypergraph_decodes(0, 4, 40, rng));
}

TEST(Hypergraph, TooFewVerticesNeverDecodes) {
  util::Rng rng(2);
  EXPECT_FALSE(hypergraph_decodes(5, 4, 2, rng));
}

TEST(Hypergraph, AmpleVerticesNearlyAlwaysDecode) {
  util::Rng rng(3);
  int successes = 0;
  for (int t = 0; t < 200; ++t) successes += hypergraph_decodes(20, 4, 200, rng) ? 1 : 0;
  EXPECT_GE(successes, 198);
}

TEST(Hypergraph, ScarceVerticesRarelyDecode) {
  util::Rng rng(4);
  int successes = 0;
  for (int t = 0; t < 200; ++t) successes += hypergraph_decodes(100, 4, 104, rng) ? 1 : 0;
  EXPECT_LE(successes, 20);
}

TEST(Hypergraph, DecodeRateMonotoneInCells) {
  util::Rng rng(5);
  const std::uint64_t j = 50;
  double prev_rate = -1.0;
  for (const std::uint64_t c : {60ULL, 80ULL, 120ULL, 200ULL}) {
    const double rate = measure_decode_rate(j, 4, c, 2000, rng);
    EXPECT_GE(rate, prev_rate - 0.03) << "c=" << c;  // noise tolerance
    prev_rate = rate;
  }
}

TEST(Hypergraph, MatchesRealIbltDecodeRate) {
  // The hypergraph model must track the decode rate of real IBLTs closely —
  // that equivalence is what makes Algorithm 1's speedup legitimate.
  util::Rng rng(6);
  const std::uint64_t j = 30, c = 60;
  const std::uint32_t k = 4;
  constexpr int kTrials = 3000;

  int graph_successes = 0;
  for (int t = 0; t < kTrials; ++t) {
    graph_successes += hypergraph_decodes(j, k, c, rng) ? 1 : 0;
  }

  int iblt_successes = 0;
  for (int t = 0; t < kTrials; ++t) {
    Iblt table(IbltParams{k, c}, rng.next());
    for (std::uint64_t i = 0; i < j; ++i) table.insert(rng.next());
    iblt_successes += table.decode().success ? 1 : 0;
  }

  const double graph_rate = static_cast<double>(graph_successes) / kTrials;
  const double iblt_rate = static_cast<double>(iblt_successes) / kTrials;
  EXPECT_NEAR(graph_rate, iblt_rate, 0.04);
}

}  // namespace
}  // namespace graphene::iblt
