#include <gtest/gtest.h>

#include <set>

#include "iblt/param_table.hpp"
#include "iblt/pingpong.hpp"
#include "util/random.hpp"

namespace graphene::iblt {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t count, util::Rng& rng) {
  std::set<std::uint64_t> keys;
  while (keys.size() < count) keys.insert(rng.next());
  return {keys.begin(), keys.end()};
}

/// Builds a difference IBLT holding exactly `keys` as positives.
Iblt diff_of(const std::vector<std::uint64_t>& keys, IbltParams params,
             std::uint64_t seed) {
  Iblt t(params, seed);
  for (const std::uint64_t k : keys) t.insert(k);
  return t;
}

TEST(PingPongMulti, EmptyInputFails) {
  const PingPongResult r = pingpong_decode_multi({});
  EXPECT_FALSE(r.success);
}

TEST(PingPongMulti, SingleTableBehavesLikeDecode) {
  util::Rng rng(1);
  const auto keys = random_keys(10, rng);
  const Iblt t = diff_of(keys, IbltParams{4, 60}, 5);
  const Iblt tables[] = {t};
  const PingPongResult r = pingpong_decode_multi(tables);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.positives.size(), 10u);
}

TEST(PingPongMulti, ThreeNeighborsRescueUndersizedTables) {
  // §4.2's multi-neighbor suggestion: three undersized IBLTs over the same
  // 30-item difference, each unable to decode alone, jointly succeed most of
  // the time.
  util::Rng rng(2);
  int alone = 0, joint = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const auto keys = random_keys(30, rng);
    const IbltParams small{4, 36};  // τ = 1.2: decodes alone only sometimes
    const Iblt tables[] = {diff_of(keys, small, rng.next()),
                           diff_of(keys, small, rng.next()),
                           diff_of(keys, small, rng.next())};
    alone += tables[0].decode().success ? 1 : 0;
    joint += pingpong_decode_multi(tables).success ? 1 : 0;
  }
  EXPECT_GT(joint, alone);
  EXPECT_GE(joint, kTrials * 8 / 10);
}

TEST(PingPongMulti, RecoveredItemsAreExact) {
  util::Rng rng(3);
  const auto keys = random_keys(20, rng);
  const Iblt tables[] = {diff_of(keys, IbltParams{4, 28}, 7),
                         diff_of(keys, IbltParams{3, 27}, 8),
                         diff_of(keys, IbltParams{5, 30}, 9)};
  const PingPongResult r = pingpong_decode_multi(tables);
  if (r.success) {
    auto pos = r.positives;
    std::sort(pos.begin(), pos.end());
    EXPECT_EQ(pos, keys);
    EXPECT_TRUE(r.negatives.empty());
  }
}

TEST(PingPongMulti, MalformedTableDetected) {
  util::Rng rng(4);
  const auto keys = random_keys(5, rng);
  Iblt bad = diff_of(keys, IbltParams{4, 40}, 10);
  auto& cells = bad.cells_for_test();
  for (auto& cell : cells) {
    if (cell.count == 1) {
      cell.count = 0;  // break one insertion
      break;
    }
  }
  const Iblt ok = diff_of(keys, IbltParams{4, 40}, 11);
  const Iblt tables[] = {bad, ok};
  const PingPongResult r = pingpong_decode_multi(tables);
  // Termination (this test finishing) is the §6.1 guarantee; success may
  // still be achieved via the healthy sibling.
  if (!r.success) SUCCEED();
}

TEST(PingPongMulti, MixedSignsAcrossTables) {
  util::Rng rng(5);
  const auto pos_keys = random_keys(8, rng);
  const auto neg_keys = random_keys(8, rng);
  auto build = [&](IbltParams params, std::uint64_t seed) {
    Iblt a(params, seed), b(params, seed);
    for (const std::uint64_t k : pos_keys) a.insert(k);
    for (const std::uint64_t k : neg_keys) b.insert(k);
    return a.subtract(b);
  };
  const Iblt tables[] = {build(IbltParams{4, 24}, 1), build(IbltParams{4, 48}, 2)};
  const PingPongResult r = pingpong_decode_multi(tables);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.positives.size(), 8u);
  EXPECT_EQ(r.negatives.size(), 8u);
}

}  // namespace
}  // namespace graphene::iblt
