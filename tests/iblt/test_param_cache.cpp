#include "iblt/param_cache.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "iblt/param_table.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace graphene::iblt {
namespace {

TEST(ParamCache, MatchesDirectLookup) {
  ParamCache cache;
  for (const std::uint64_t j : {1ull, 10ull, 100ull, 1000ull, 100000ull}) {
    for (const std::uint32_t denom : {24u, 240u, 2400u}) {
      const IbltParams direct = lookup_params(j, denom);
      const IbltParams cached = cache.params(j, denom);
      EXPECT_EQ(cached.k, direct.k) << "j=" << j << " denom=" << denom;
      EXPECT_EQ(cached.cells, direct.cells) << "j=" << j << " denom=" << denom;
      EXPECT_EQ(cache.bytes(j, denom), iblt_bytes(j, denom));
    }
  }
}

TEST(ParamCache, CountsHitsAndMisses) {
  ParamCache cache;
  (void)cache.params(50);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  (void)cache.params(50);
  (void)cache.bytes(50);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ParamCache, CanonicalizesFailDenom) {
  // Denominators snap up to the shipped grid, so every spelling of the same
  // effective rate shares one cache entry.
  ParamCache cache;
  (void)cache.params(50, 240);
  (void)cache.params(50, 100);  // snaps to 240
  (void)cache.params(50, 239);  // snaps to 240
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(snap_fail_denom(100), 240u);
  EXPECT_EQ(snap_fail_denom(240), 240u);
  EXPECT_EQ(snap_fail_denom(241), 2400u);
  EXPECT_EQ(snap_fail_denom(1000000), 2400u);  // beyond grid: strictest shipped
}

TEST(ParamCache, ClearDropsEntriesKeepsCounters) {
  ParamCache cache;
  (void)cache.params(10);
  (void)cache.params(10);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  (void)cache.params(10);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ParamCache, NullCacheHelpersFallBackToDirect) {
  const IbltParams direct = lookup_params(77, 240);
  const IbltParams via = cached_params(nullptr, 77, 240);
  EXPECT_EQ(via.k, direct.k);
  EXPECT_EQ(via.cells, direct.cells);
  EXPECT_EQ(cached_iblt_bytes(nullptr, 77, 240), iblt_bytes(77, 240));

  ParamCache cache;
  EXPECT_EQ(cached_params(&cache, 77, 240).cells, direct.cells);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ParamCache, SearchMemoizesFullResult) {
  ParamCache cache;
  util::Rng rng(1);
  const SearchResult first = cache.search(20, 0.95, rng);
  EXPECT_EQ(cache.misses(), 1u);
  ASSERT_GT(first.params.cells, 0u);

  // Hit path: identical result without touching the rng.
  util::Rng untouched(99);
  const std::uint64_t probe = util::Rng(99).next();
  const SearchResult second = cache.search(20, 0.95, untouched);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(untouched.next(), probe) << "cache hit must not consume the caller's rng";
  EXPECT_EQ(second.params.k, first.params.k);
  EXPECT_EQ(second.params.cells, first.params.cells);
  EXPECT_EQ(second.certified, first.certified);
  EXPECT_EQ(second.decode_rate, first.decode_rate);

  // Distinct (j, p) keys do not collide.
  (void)cache.search(20, 0.99, rng);
  (void)cache.search(21, 0.95, rng);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(ParamCache, UncertifiedFlagSurvivesCacheHits) {
  // Force the point-estimate path: a trial cap this small cannot separate
  // the Wilson CI from p, so Algorithm 1 must answer certified=false — and
  // the cache must keep saying so on every subsequent hit, not just the
  // first (miss) computation.
  ParamCache cache;
  SearchOptions opts;
  opts.max_trials = 8;
  opts.batch = 4;
  util::Rng rng(7);
  const SearchResult miss = cache.search(50, 239.0 / 240.0, rng, opts);
  EXPECT_FALSE(miss.certified);

  for (int i = 0; i < 3; ++i) {
    const SearchResult hit = cache.search(50, 239.0 / 240.0, rng, opts);
    EXPECT_FALSE(hit.certified) << "hit " << i << " laundered the certified flag";
    EXPECT_EQ(hit.params.cells, miss.params.cells);
  }
  EXPECT_EQ(cache.hits(), 3u);

  // A comfortable budget at a steep point of the decode curve (p = 0.5, so
  // every binary-search decision separates fast) certifies normally.
  SearchOptions generous;
  generous.max_trials = 20000;
  generous.batch = 64;
  util::Rng cert_rng(10);
  const SearchResult ok = cache.search(25, 0.5, cert_rng, generous);
  EXPECT_TRUE(ok.certified);
}

TEST(ParamCache, SearchAndLookupEntriesCoexist) {
  ParamCache cache;
  util::Rng rng(3);
  (void)cache.params(50, 240);
  (void)cache.search(50, 0.95, rng);
  EXPECT_EQ(cache.entries(), 2u);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  // Post-clear searches recompute (miss), not replay stale results.
  (void)cache.search(50, 0.95, rng);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(ParamCache, ExportStatsPublishesGauges) {
  ParamCache cache;
  (void)cache.params(50);   // miss
  (void)cache.params(50);   // hit
  (void)cache.params(120);  // miss
  obs::Registry reg;
  cache.export_stats(&reg);
  EXPECT_DOUBLE_EQ(reg.gauge("graphene_param_cache_hits").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("graphene_param_cache_misses").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("graphene_param_cache_entries").value(), 2.0);
  // Gauges, not counters: a re-export overwrites instead of double-counting.
  (void)cache.params(120);  // hit
  cache.export_stats(&reg);
  EXPECT_DOUBLE_EQ(reg.gauge("graphene_param_cache_hits").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("graphene_param_cache_misses").value(), 2.0);
  // A null registry is a no-op, matching the rest of the obs opt-in surface.
  cache.export_stats(nullptr);
}

TEST(ParamCache, ConcurrentHitMissInsertIsRaceFree) {
  // TSan target: many threads hammer overlapping key sets so shared-lock
  // hits, exclusive-lock inserts, and racing same-key misses all interleave.
  const char* stress = std::getenv("GRAPHENE_STRESS");
  const std::uint64_t rounds = (stress != nullptr && *stress == '1') ? 20000 : 2000;
  ParamCache cache;
  util::ThreadPool pool(8);
  util::parallel_for(&pool, rounds, [&](std::uint64_t i) {
    const std::uint64_t j = 1 + (i % 97);
    const std::uint32_t denom = kFailDenoms[i % 3];
    const IbltParams p = cache.params(j, denom);
    const IbltParams direct = lookup_params(j, denom);
    ASSERT_EQ(p.k, direct.k);
    ASSERT_EQ(p.cells, direct.cells);
    ASSERT_EQ(cache.bytes(j, denom), iblt_bytes(j, denom));
  });
  EXPECT_EQ(cache.entries(), 97u * 3u);
  EXPECT_EQ(cache.hits() + cache.misses(), 2 * rounds);
}

}  // namespace
}  // namespace graphene::iblt
