#include "iblt/iblt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>

#include "util/hex.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace graphene::iblt {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::set<std::uint64_t> keys;
  while (keys.size() < count) keys.insert(rng.next());
  return {keys.begin(), keys.end()};
}

TEST(Iblt, ConstructorRoundsCellsUpToMultipleOfK) {
  const Iblt t(IbltParams{4, 10});
  EXPECT_EQ(t.cell_count(), 12u);
  EXPECT_EQ(t.hash_count(), 4u);
}

TEST(Iblt, RejectsBadHashCount) {
  EXPECT_THROW(Iblt(IbltParams{1, 10}), std::invalid_argument);
  EXPECT_THROW(Iblt(IbltParams{17, 100}), std::invalid_argument);
}

TEST(Iblt, InsertThenEraseIsEmpty) {
  Iblt t(IbltParams{4, 40});
  for (const std::uint64_t k : random_keys(10, 1)) t.insert(k);
  EXPECT_FALSE(t.empty());
  for (const std::uint64_t k : random_keys(10, 1)) t.erase(k);
  EXPECT_TRUE(t.empty());
}

TEST(Iblt, DecodeRecoverasInsertedKeys) {
  Iblt t(IbltParams{4, 60});
  const auto keys = random_keys(12, 2);
  for (const std::uint64_t k : keys) t.insert(k);
  const DecodeResult dec = t.decode();
  ASSERT_TRUE(dec.success);
  EXPECT_TRUE(dec.negatives.empty());
  auto sorted = dec.positives;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, keys);
}

TEST(Iblt, DecodeIsNonDestructive) {
  Iblt t(IbltParams{4, 40});
  t.insert(123);
  (void)t.decode();
  const DecodeResult again = t.decode();
  ASSERT_TRUE(again.success);
  ASSERT_EQ(again.positives.size(), 1u);
  EXPECT_EQ(again.positives[0], 123u);
}

TEST(Iblt, SubtractRecoversSymmetricDifference) {
  const auto common = random_keys(100, 3);
  const auto only_a = random_keys(8, 4);
  const auto only_b = random_keys(9, 5);

  const IbltParams params{4, 120};
  Iblt a(params, /*seed=*/7), b(params, /*seed=*/7);
  for (const std::uint64_t k : common) {
    a.insert(k);
    b.insert(k);
  }
  for (const std::uint64_t k : only_a) a.insert(k);
  for (const std::uint64_t k : only_b) b.insert(k);

  const DecodeResult dec = a.subtract(b).decode();
  ASSERT_TRUE(dec.success);
  auto pos = dec.positives;
  auto neg = dec.negatives;
  std::sort(pos.begin(), pos.end());
  std::sort(neg.begin(), neg.end());
  EXPECT_EQ(pos, only_a);
  EXPECT_EQ(neg, only_b);
}

TEST(Iblt, SubtractIdenticalSetsIsEmpty) {
  const IbltParams params{3, 30};
  Iblt a(params, 1), b(params, 1);
  for (const std::uint64_t k : random_keys(50, 6)) {
    a.insert(k);
    b.insert(k);
  }
  const Iblt diff = a.subtract(b);
  EXPECT_TRUE(diff.empty());
  EXPECT_TRUE(diff.decode().success);
}

TEST(Iblt, SubtractRequiresMatchingParameters) {
  const Iblt a(IbltParams{4, 40}, 1);
  const Iblt b4(IbltParams{4, 44}, 1);
  const Iblt b5(IbltParams{5, 40}, 1);
  const Iblt bseed(IbltParams{4, 40}, 2);
  EXPECT_THROW((void)a.subtract(b4), std::invalid_argument);
  EXPECT_THROW((void)a.subtract(b5), std::invalid_argument);
  EXPECT_THROW((void)a.subtract(bseed), std::invalid_argument);
}

TEST(Iblt, OverloadedTableFailsButReportsPartial) {
  // 12 cells cannot decode 100 items; decode must fail without hanging.
  Iblt t(IbltParams{4, 12});
  for (const std::uint64_t k : random_keys(100, 7)) t.insert(k);
  const DecodeResult dec = t.decode();
  EXPECT_FALSE(dec.success);
  EXPECT_FALSE(dec.malformed);
  EXPECT_LT(dec.positives.size(), 100u);
}

TEST(Iblt, CancelRemovesRecoveredItem) {
  const IbltParams params{4, 40};
  Iblt a(params, 3), b(params, 3);
  a.insert(111);
  a.insert(222);
  b.insert(333);
  Iblt diff = a.subtract(b);
  diff.cancel(111, +1);
  diff.cancel(333, -1);
  const DecodeResult dec = diff.decode();
  ASSERT_TRUE(dec.success);
  ASSERT_EQ(dec.positives.size(), 1u);
  EXPECT_EQ(dec.positives[0], 222u);
  EXPECT_TRUE(dec.negatives.empty());
}

TEST(Iblt, MalformedInsertionDetected) {
  // §6.1 attack: insert an item into only k−1 cells by crafting cells
  // directly, which would loop forever in a naive decoder.
  Iblt t(IbltParams{4, 40});
  t.insert(777);
  // Corrupt: remove the item from one cell only (simulates a k−1 insertion).
  auto& cells = t.cells_for_test();
  for (auto& cell : cells) {
    if (cell.count == 1 && cell.key_sum == 777) {
      cell.count = 0;
      cell.key_sum = 0;
      cell.check_sum = 0;
      break;
    }
  }
  const DecodeResult dec = t.decode();
  EXPECT_FALSE(dec.success);
  // Either flagged malformed (item peeled twice) or simply undecodable;
  // never an endless loop (the test completing proves termination).
}

TEST(Iblt, ChecksumCatchesCorruptedKeySum) {
  Iblt t(IbltParams{4, 40});
  t.insert(42);
  auto& cells = t.cells_for_test();
  for (auto& cell : cells) {
    if (cell.count == 1) {
      cell.key_sum ^= 0xff;  // corrupt the key, leave checksum
      break;
    }
  }
  const DecodeResult dec = t.decode();
  EXPECT_FALSE(dec.success);  // the corrupted cell is never "pure"
}

TEST(Iblt, SerializeRoundTrip) {
  Iblt t(IbltParams{5, 50}, /*seed=*/1234);
  for (const std::uint64_t k : random_keys(9, 8)) t.insert(k);
  const util::Bytes wire = t.serialize();
  EXPECT_EQ(wire.size(), t.serialized_size());
  EXPECT_EQ(wire.size(), Iblt::serialized_size_for(t.cell_count()));

  util::ByteReader r{util::ByteView(wire)};
  const Iblt u = Iblt::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(u.cell_count(), t.cell_count());
  EXPECT_EQ(u.hash_count(), t.hash_count());
  EXPECT_EQ(u.seed(), t.seed());
  EXPECT_TRUE(t.subtract(u).empty());
}

TEST(Iblt, DeserializeRejectsBadK) {
  Iblt t(IbltParams{4, 40});
  util::Bytes wire = t.serialize();
  wire[1] = 1;  // k below minimum (cells fit in 1-byte varint)
  util::ByteReader r{util::ByteView(wire)};
  EXPECT_THROW(Iblt::deserialize(r), util::DeserializeError);
}

TEST(Iblt, CellBytesConstantMatchesWireFormat) {
  const Iblt t(IbltParams{4, 100});
  // header = varint(100)=1 + k(1) + seed(8)
  EXPECT_EQ(t.serialized_size(), 10u + 100u * Iblt::kCellBytes);
}

TEST(Iblt, NegativeOnlyDecodes) {
  const IbltParams params{4, 40};
  Iblt a(params, 9), b(params, 9);
  const auto keys = random_keys(5, 9);
  for (const std::uint64_t k : keys) b.insert(k);
  const DecodeResult dec = a.subtract(b).decode();
  ASSERT_TRUE(dec.success);
  EXPECT_TRUE(dec.positives.empty());
  EXPECT_EQ(dec.negatives.size(), keys.size());
}

class IbltCapacitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IbltCapacitySweep, DecodesAtTableCapacity) {
  // τ = 3 overprovisioning should decode essentially always for these sizes.
  const std::uint64_t j = GetParam();
  util::Rng rng(j);
  int successes = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Iblt t(IbltParams{4, std::max<std::uint64_t>(3 * j, 16)}, rng.next());
    std::set<std::uint64_t> keys;
    while (keys.size() < j) keys.insert(rng.next());
    for (const std::uint64_t k : keys) t.insert(k);
    successes += t.decode().success ? 1 : 0;
  }
  EXPECT_GE(successes, 45) << "j=" << j;
}

INSTANTIATE_TEST_SUITE_P(Sizes, IbltCapacitySweep,
                         ::testing::Values(8, 16, 32, 64, 128, 256, 512));


// ---------------------------------------------------------------------------
// Wire-format pin + batch/parallel parity
// ---------------------------------------------------------------------------

// Eight fixed keys in a tiny table, serialized bytes pinned as hex. Any
// change to the cell layout, the per-row hash family, or the checksum salt
// rewrites these bytes and must be treated as a wire format break.
TEST(Iblt, GoldenWireBytesAndDecodePinned) {
  util::Rng rng(777);
  Iblt table(IbltParams{4, 24}, 0x5151);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 8; ++i) keys.push_back(rng.next());
  for (const std::uint64_t key : keys) table.insert(key);

  EXPECT_EQ(util::to_hex(table.serialize()),
            "1804515100000000000001000000d8d41446309a963cbdfcffbe00000000000000"
            "00000000000000000000000000000000000000000000000000010000008964b6eb"
            "2c171009f281f556030000005e1de7dcc4c7e260e3023944030000009e9eda65e5"
            "4e7afd3b121a83020000004ccccdf38a0b099da9d92ac8000000000000000000000"
            "0000000000002000000a98ccce5cea56c694623f1ee020000000a8603d05fdfe55c"
            "2f37cff5020000007ef59dd226759e0057a03dfc000000000000000000000000000"
            "0000002000000a6b6ab466a07cdef019d1cdc02000000e0fc6565bfd3212e8773f9"
            "e10100000057cf8084ec0ea51486b30a5001000000f7912b390a628e09a521c8aa0"
            "20000007727fa8a0ebcd97432110ee80000000000000000000000000000000001000"
            "000d8d41446309a963cbdfcffbe02000000ac30a89635d828b32eaad32901000000"
            "fe434c6122abc97dc090fbbe0000000000000000000000000000000001000000f79"
            "12b390a628e09a521c8aa03000000ec05449c108fe753618a36ac");

  // Peeling the difference (∅ − table) recovers all eight keys on the
  // negative side, in a pinned number of iterations.
  const Iblt empty(IbltParams{4, 24}, 0x5151);
  const DecodeResult dec = empty.subtract(table).decode();
  EXPECT_TRUE(dec.success);
  EXPECT_EQ(dec.positives.size(), 0u);
  EXPECT_EQ(dec.negatives.size(), 8u);
  EXPECT_EQ(dec.peel_iterations, 18u);
  std::set<std::uint64_t> recovered(dec.negatives.begin(), dec.negatives.end());
  EXPECT_EQ(recovered, std::set<std::uint64_t>(keys.begin(), keys.end()));
}

TEST(Iblt, InsertBatchMatchesSequentialInsert) {
  const auto keys = random_keys(3000, 0xba7c4);
  Iblt one(IbltParams{3, 900}, 7);
  Iblt other(IbltParams{3, 900}, 7);
  for (const std::uint64_t key : keys) one.insert(key);
  other.insert_batch(keys.data(), keys.size());
  EXPECT_EQ(one.serialize(), other.serialize());
}

TEST(Iblt, InsertAllIsBitIdenticalForAnyWorkerCount) {
  // 20k keys clears the kMinKeysPerShard threshold, so the pooled runs
  // genuinely build per-worker partial tables and merge them. Cell updates
  // are counter adds and XORs — commutative and associative — so the merged
  // table must equal the serial one bit for bit, whatever the worker count.
  const auto keys = random_keys(20000, 0xa11);
  Iblt serial(IbltParams{4, 240}, 99);
  serial.insert_batch(keys.data(), keys.size());
  const util::Bytes want = serial.serialize();

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool pool(workers);
    Iblt pooled(IbltParams{4, 240}, 99);
    pooled.insert_all(std::span<const std::uint64_t>(keys), &pool);
    EXPECT_EQ(pooled.serialize(), want) << "workers=" << workers;
  }
}

TEST(Iblt, SubtractWithPoolMatchesSerial) {
  // 40k cells crosses the chunked-subtract threshold. The difference of two
  // overlapping sets must come out identical with and without a pool, and
  // still decode to the symmetric difference.
  const auto mine = random_keys(600, 1);
  const auto theirs = random_keys(600, 2);
  Iblt a(IbltParams{4, 40000}, 5);
  Iblt b(IbltParams{4, 40000}, 5);
  a.insert_batch(mine.data(), mine.size());
  b.insert_batch(theirs.data(), theirs.size());

  const Iblt serial_diff = a.subtract(b);
  util::ThreadPool pool(4);
  const Iblt pooled_diff = a.subtract(b, &pool);
  EXPECT_EQ(pooled_diff.serialize(), serial_diff.serialize());

  const DecodeResult dec = pooled_diff.decode();
  ASSERT_TRUE(dec.success);
  std::set<std::uint64_t> mine_set(mine.begin(), mine.end());
  std::set<std::uint64_t> theirs_set(theirs.begin(), theirs.end());
  for (const std::uint64_t key : dec.positives) {
    EXPECT_TRUE(mine_set.count(key) == 1 && theirs_set.count(key) == 0) << key;
  }
  for (const std::uint64_t key : dec.negatives) {
    EXPECT_TRUE(theirs_set.count(key) == 1 && mine_set.count(key) == 0) << key;
  }
}

}  // namespace
}  // namespace graphene::iblt
