#include "iblt/iblt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/random.hpp"

namespace graphene::iblt {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::set<std::uint64_t> keys;
  while (keys.size() < count) keys.insert(rng.next());
  return {keys.begin(), keys.end()};
}

TEST(Iblt, ConstructorRoundsCellsUpToMultipleOfK) {
  const Iblt t(IbltParams{4, 10});
  EXPECT_EQ(t.cell_count(), 12u);
  EXPECT_EQ(t.hash_count(), 4u);
}

TEST(Iblt, RejectsBadHashCount) {
  EXPECT_THROW(Iblt(IbltParams{1, 10}), std::invalid_argument);
  EXPECT_THROW(Iblt(IbltParams{17, 100}), std::invalid_argument);
}

TEST(Iblt, InsertThenEraseIsEmpty) {
  Iblt t(IbltParams{4, 40});
  for (const std::uint64_t k : random_keys(10, 1)) t.insert(k);
  EXPECT_FALSE(t.empty());
  for (const std::uint64_t k : random_keys(10, 1)) t.erase(k);
  EXPECT_TRUE(t.empty());
}

TEST(Iblt, DecodeRecoverasInsertedKeys) {
  Iblt t(IbltParams{4, 60});
  const auto keys = random_keys(12, 2);
  for (const std::uint64_t k : keys) t.insert(k);
  const DecodeResult dec = t.decode();
  ASSERT_TRUE(dec.success);
  EXPECT_TRUE(dec.negatives.empty());
  auto sorted = dec.positives;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, keys);
}

TEST(Iblt, DecodeIsNonDestructive) {
  Iblt t(IbltParams{4, 40});
  t.insert(123);
  (void)t.decode();
  const DecodeResult again = t.decode();
  ASSERT_TRUE(again.success);
  ASSERT_EQ(again.positives.size(), 1u);
  EXPECT_EQ(again.positives[0], 123u);
}

TEST(Iblt, SubtractRecoversSymmetricDifference) {
  const auto common = random_keys(100, 3);
  const auto only_a = random_keys(8, 4);
  const auto only_b = random_keys(9, 5);

  const IbltParams params{4, 120};
  Iblt a(params, /*seed=*/7), b(params, /*seed=*/7);
  for (const std::uint64_t k : common) {
    a.insert(k);
    b.insert(k);
  }
  for (const std::uint64_t k : only_a) a.insert(k);
  for (const std::uint64_t k : only_b) b.insert(k);

  const DecodeResult dec = a.subtract(b).decode();
  ASSERT_TRUE(dec.success);
  auto pos = dec.positives;
  auto neg = dec.negatives;
  std::sort(pos.begin(), pos.end());
  std::sort(neg.begin(), neg.end());
  EXPECT_EQ(pos, only_a);
  EXPECT_EQ(neg, only_b);
}

TEST(Iblt, SubtractIdenticalSetsIsEmpty) {
  const IbltParams params{3, 30};
  Iblt a(params, 1), b(params, 1);
  for (const std::uint64_t k : random_keys(50, 6)) {
    a.insert(k);
    b.insert(k);
  }
  const Iblt diff = a.subtract(b);
  EXPECT_TRUE(diff.empty());
  EXPECT_TRUE(diff.decode().success);
}

TEST(Iblt, SubtractRequiresMatchingParameters) {
  const Iblt a(IbltParams{4, 40}, 1);
  const Iblt b4(IbltParams{4, 44}, 1);
  const Iblt b5(IbltParams{5, 40}, 1);
  const Iblt bseed(IbltParams{4, 40}, 2);
  EXPECT_THROW((void)a.subtract(b4), std::invalid_argument);
  EXPECT_THROW((void)a.subtract(b5), std::invalid_argument);
  EXPECT_THROW((void)a.subtract(bseed), std::invalid_argument);
}

TEST(Iblt, OverloadedTableFailsButReportsPartial) {
  // 12 cells cannot decode 100 items; decode must fail without hanging.
  Iblt t(IbltParams{4, 12});
  for (const std::uint64_t k : random_keys(100, 7)) t.insert(k);
  const DecodeResult dec = t.decode();
  EXPECT_FALSE(dec.success);
  EXPECT_FALSE(dec.malformed);
  EXPECT_LT(dec.positives.size(), 100u);
}

TEST(Iblt, CancelRemovesRecoveredItem) {
  const IbltParams params{4, 40};
  Iblt a(params, 3), b(params, 3);
  a.insert(111);
  a.insert(222);
  b.insert(333);
  Iblt diff = a.subtract(b);
  diff.cancel(111, +1);
  diff.cancel(333, -1);
  const DecodeResult dec = diff.decode();
  ASSERT_TRUE(dec.success);
  ASSERT_EQ(dec.positives.size(), 1u);
  EXPECT_EQ(dec.positives[0], 222u);
  EXPECT_TRUE(dec.negatives.empty());
}

TEST(Iblt, MalformedInsertionDetected) {
  // §6.1 attack: insert an item into only k−1 cells by crafting cells
  // directly, which would loop forever in a naive decoder.
  Iblt t(IbltParams{4, 40});
  t.insert(777);
  // Corrupt: remove the item from one cell only (simulates a k−1 insertion).
  auto& cells = t.cells_for_test();
  for (auto& cell : cells) {
    if (cell.count == 1 && cell.key_sum == 777) {
      cell.count = 0;
      cell.key_sum = 0;
      cell.check_sum = 0;
      break;
    }
  }
  const DecodeResult dec = t.decode();
  EXPECT_FALSE(dec.success);
  // Either flagged malformed (item peeled twice) or simply undecodable;
  // never an endless loop (the test completing proves termination).
}

TEST(Iblt, ChecksumCatchesCorruptedKeySum) {
  Iblt t(IbltParams{4, 40});
  t.insert(42);
  auto& cells = t.cells_for_test();
  for (auto& cell : cells) {
    if (cell.count == 1) {
      cell.key_sum ^= 0xff;  // corrupt the key, leave checksum
      break;
    }
  }
  const DecodeResult dec = t.decode();
  EXPECT_FALSE(dec.success);  // the corrupted cell is never "pure"
}

TEST(Iblt, SerializeRoundTrip) {
  Iblt t(IbltParams{5, 50}, /*seed=*/1234);
  for (const std::uint64_t k : random_keys(9, 8)) t.insert(k);
  const util::Bytes wire = t.serialize();
  EXPECT_EQ(wire.size(), t.serialized_size());
  EXPECT_EQ(wire.size(), Iblt::serialized_size_for(t.cell_count()));

  util::ByteReader r{util::ByteView(wire)};
  const Iblt u = Iblt::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(u.cell_count(), t.cell_count());
  EXPECT_EQ(u.hash_count(), t.hash_count());
  EXPECT_EQ(u.seed(), t.seed());
  EXPECT_TRUE(t.subtract(u).empty());
}

TEST(Iblt, DeserializeRejectsBadK) {
  Iblt t(IbltParams{4, 40});
  util::Bytes wire = t.serialize();
  wire[1] = 1;  // k below minimum (cells fit in 1-byte varint)
  util::ByteReader r{util::ByteView(wire)};
  EXPECT_THROW(Iblt::deserialize(r), util::DeserializeError);
}

TEST(Iblt, CellBytesConstantMatchesWireFormat) {
  const Iblt t(IbltParams{4, 100});
  // header = varint(100)=1 + k(1) + seed(8)
  EXPECT_EQ(t.serialized_size(), 10u + 100u * Iblt::kCellBytes);
}

TEST(Iblt, NegativeOnlyDecodes) {
  const IbltParams params{4, 40};
  Iblt a(params, 9), b(params, 9);
  const auto keys = random_keys(5, 9);
  for (const std::uint64_t k : keys) b.insert(k);
  const DecodeResult dec = a.subtract(b).decode();
  ASSERT_TRUE(dec.success);
  EXPECT_TRUE(dec.positives.empty());
  EXPECT_EQ(dec.negatives.size(), keys.size());
}

class IbltCapacitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IbltCapacitySweep, DecodesAtTableCapacity) {
  // τ = 3 overprovisioning should decode essentially always for these sizes.
  const std::uint64_t j = GetParam();
  util::Rng rng(j);
  int successes = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Iblt t(IbltParams{4, std::max<std::uint64_t>(3 * j, 16)}, rng.next());
    std::set<std::uint64_t> keys;
    while (keys.size() < j) keys.insert(rng.next());
    for (const std::uint64_t k : keys) t.insert(k);
    successes += t.decode().success ? 1 : 0;
  }
  EXPECT_GE(successes, 45) << "j=" << j;
}

INSTANTIATE_TEST_SUITE_P(Sizes, IbltCapacitySweep,
                         ::testing::Values(8, 16, 32, 64, 128, 256, 512));

}  // namespace
}  // namespace graphene::iblt
