#include "graphene/messages.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace graphene::core {
namespace {

chain::Transaction random_tx(util::Rng& rng) { return chain::make_random_transaction(rng); }

TEST(FullTxWire, SizeMatchesNominal) {
  util::Rng rng(1);
  chain::Transaction tx = random_tx(rng);
  tx.size_bytes = 250;
  util::ByteWriter w;
  write_full_tx(w, tx);
  EXPECT_EQ(w.size(), 250u);
  EXPECT_EQ(full_tx_wire_size(tx), 250u);
}

TEST(FullTxWire, TinyTransactionClampsToHeader) {
  util::Rng rng(2);
  chain::Transaction tx = random_tx(rng);
  tx.size_bytes = 10;  // smaller than id+length fields
  util::ByteWriter w;
  write_full_tx(w, tx);
  EXPECT_EQ(w.size(), 36u);
  EXPECT_EQ(full_tx_wire_size(tx), 36u);
}

TEST(FullTxWire, RoundTripPreservesIdAndSize) {
  util::Rng rng(3);
  chain::Transaction tx = random_tx(rng);
  util::ByteWriter w;
  write_full_tx(w, tx);
  util::ByteReader r{util::ByteView(w.bytes())};
  const chain::Transaction back = read_full_tx(r);
  EXPECT_EQ(back.id, tx.id);
  EXPECT_EQ(back.size_bytes, tx.size_bytes);
  EXPECT_TRUE(r.done());
}

TEST(GrapheneBlockMsg, RoundTrip) {
  util::Rng rng(4);
  GrapheneBlockMsg msg;
  msg.header.nonce = 777;
  msg.n = 1234;
  msg.shortid_salt = 0xabcdef;
  msg.filter_s = bloom::BloomFilter(100, 0.05, 9);
  for (int i = 0; i < 100; ++i) {
    const auto id = random_tx(rng).id;
    msg.filter_s.insert(util::ByteView(id.data(), id.size()));
  }
  msg.iblt_i = iblt::Iblt(iblt::IbltParams{4, 40}, 5);
  msg.iblt_i.insert(42);

  const util::Bytes wire = msg.serialize();
  util::ByteReader r{util::ByteView(wire)};
  const GrapheneBlockMsg back = GrapheneBlockMsg::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.header.nonce, 777u);
  EXPECT_EQ(back.n, 1234u);
  EXPECT_EQ(back.shortid_salt, 0xabcdefu);
  EXPECT_EQ(back.filter_s.bit_count(), msg.filter_s.bit_count());
  EXPECT_TRUE(back.iblt_i.subtract(msg.iblt_i).empty());
}

TEST(GrapheneRequestMsg, RoundTripIncludingFpr) {
  GrapheneRequestMsg req;
  req.z = 5000;
  req.b = 17;
  req.y_star = 23;
  req.fpr_r = 0.0375;
  req.reversed = true;
  req.filter_r = bloom::BloomFilter(10, 0.1, 3);

  const util::Bytes wire = req.serialize();
  util::ByteReader r{util::ByteView(wire)};
  const GrapheneRequestMsg back = GrapheneRequestMsg::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.z, 5000u);
  EXPECT_EQ(back.b, 17u);
  EXPECT_EQ(back.y_star, 23u);
  EXPECT_DOUBLE_EQ(back.fpr_r, 0.0375);
  EXPECT_TRUE(back.reversed);
}

TEST(GrapheneResponseMsg, RoundTripWithAndWithoutF) {
  util::Rng rng(5);
  GrapheneResponseMsg resp;
  resp.missing = {random_tx(rng), random_tx(rng)};
  resp.iblt_j = iblt::Iblt(iblt::IbltParams{3, 30}, 8);
  resp.iblt_j.insert(1);

  {
    const util::Bytes wire = resp.serialize();
    util::ByteReader r{util::ByteView(wire)};
    const GrapheneResponseMsg back = GrapheneResponseMsg::deserialize(r);
    EXPECT_TRUE(r.done());
    ASSERT_EQ(back.missing.size(), 2u);
    EXPECT_EQ(back.missing[0].id, resp.missing[0].id);
    EXPECT_FALSE(back.filter_f.has_value());
  }

  resp.filter_f = bloom::BloomFilter(50, 0.1, 4);
  {
    const util::Bytes wire = resp.serialize();
    util::ByteReader r{util::ByteView(wire)};
    const GrapheneResponseMsg back = GrapheneResponseMsg::deserialize(r);
    ASSERT_TRUE(back.filter_f.has_value());
    EXPECT_EQ(back.filter_f->bit_count(), resp.filter_f->bit_count());
  }
}

TEST(GrapheneResponseMsg, MissingTxBytesSumsWireSizes) {
  util::Rng rng(6);
  GrapheneResponseMsg resp;
  resp.missing = {random_tx(rng), random_tx(rng), random_tx(rng)};
  std::size_t expected = 0;
  for (const auto& tx : resp.missing) expected += full_tx_wire_size(tx);
  EXPECT_EQ(resp.missing_tx_bytes(), expected);
}

TEST(RepairMsgs, RoundTrip) {
  util::Rng rng(7);
  RepairRequestMsg req;
  req.short_ids = {1, 2, 0xffffffffffffffffULL};
  {
    const util::Bytes wire = req.serialize();
    util::ByteReader r{util::ByteView(wire)};
    EXPECT_EQ(RepairRequestMsg::deserialize(r).short_ids, req.short_ids);
  }
  RepairResponseMsg resp;
  resp.txns = {random_tx(rng)};
  {
    const util::Bytes wire = resp.serialize();
    util::ByteReader r{util::ByteView(wire)};
    const RepairResponseMsg back = RepairResponseMsg::deserialize(r);
    ASSERT_EQ(back.txns.size(), 1u);
    EXPECT_EQ(back.txns[0].id, resp.txns[0].id);
  }
}

TEST(Messages, TruncatedBufferThrows) {
  GrapheneRequestMsg req;
  req.filter_r = bloom::BloomFilter(10, 0.1, 3);
  util::Bytes wire = req.serialize();
  wire.resize(wire.size() - 1);
  util::ByteReader r{util::ByteView(wire)};
  EXPECT_THROW(GrapheneRequestMsg::deserialize(r), util::DeserializeError);
}

}  // namespace
}  // namespace graphene::core
