// ProtocolConfig knobs: β-assurance level, IBLT target rate, short-ID
// keying, and ping-pong — each must steer sizes/behavior the way the
// analysis says.
#include <gtest/gtest.h>

#include "graphene/params.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "sim/scenario.hpp"

namespace graphene::core {
namespace {

TEST(ConfigVariants, HigherBetaBuysBiggerAStar) {
  ProtocolConfig loose;
  loose.beta = 0.9;
  ProtocolConfig tight;
  tight.beta = 0.9999;
  const Protocol1Params pl = optimize_protocol1(2000, 6000, loose);
  const Protocol1Params pt = optimize_protocol1(2000, 6000, tight);
  // For a comparable false-positive budget the tighter assurance provisions
  // a larger recovery margin.
  const double slack_loose = static_cast<double>(pl.a_star) / static_cast<double>(pl.a);
  const double slack_tight = static_cast<double>(pt.a_star) / static_cast<double>(pt.a);
  EXPECT_GT(slack_tight, slack_loose);
}

TEST(ConfigVariants, StricterIbltRateCostsBytes) {
  ProtocolConfig loose;
  loose.fail_denom = 24;
  ProtocolConfig strict;
  strict.fail_denom = 2400;
  const std::size_t bytes_loose = optimize_protocol1(2000, 6000, loose).total_bytes();
  const std::size_t bytes_strict = optimize_protocol1(2000, 6000, strict).total_bytes();
  EXPECT_LT(bytes_loose, bytes_strict);
}

class BetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(BetaSweep, ProtocolDecodesAcrossAssuranceLevels) {
  ProtocolConfig cfg;
  cfg.beta = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(cfg.beta * 1e6));
  int decoded = 0;
  for (int t = 0; t < 10; ++t) {
    chain::ScenarioSpec spec;
    spec.block_txns = 300;
    spec.extra_txns = 600;
    const chain::Scenario s = chain::make_scenario(spec, rng);
    Sender sender(s.block, rng.next(), cfg);
    ReceiveSession session = Receiver(s.receiver_mempool, cfg).session();
    ReceiveOutcome out = session.receive_block(sender.encode(s.m).msg);
    if (out.status == ReceiveStatus::kNeedsProtocol2) {
      out = session.complete(sender.serve(session.build_request()));
    }
    if (out.status == ReceiveStatus::kNeedsRepair) {
      out = session.complete_repair(sender.serve_repair(session.build_repair()));
    }
    decoded += out.status == ReceiveStatus::kDecoded ? 1 : 0;
  }
  // Lower β means more Protocol 1 retries land in Protocol 2, but the full
  // pipeline still converges.
  EXPECT_GE(decoded, 9);
}

INSTANTIATE_TEST_SUITE_P(Levels, BetaSweep, ::testing::Values(0.9, 0.99, 239.0 / 240.0,
                                                              0.9999));

TEST(ConfigVariants, SenderAndReceiverMustAgreeOnKeying) {
  // Config mismatch (keyed vs truncated short IDs) must fail closed, not
  // produce a wrong block.
  util::Rng rng(7);
  chain::ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 200;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  ProtocolConfig keyed;
  keyed.keyed_short_ids = true;
  ProtocolConfig unkeyed;
  unkeyed.keyed_short_ids = false;
  Sender sender(s.block, 42, keyed);
  ReceiveSession session = Receiver(s.receiver_mempool, unkeyed).session();
  const ReceiveOutcome out = session.receive_block(sender.encode(s.m).msg);
  EXPECT_NE(out.status, ReceiveStatus::kDecoded);
}

TEST(ConfigVariants, NearEqualFprRangeFromPaperAllWork) {
  // §3.3.2: "a large range of values execute efficiently (we tested from
  // 0.001 to 0.2)".
  util::Rng rng(8);
  for (const double fpr : {0.001, 0.01, 0.1, 0.2}) {
    ProtocolConfig cfg;
    cfg.near_equal_fpr = fpr;
    chain::ScenarioSpec spec;
    spec.block_txns = 400;
    spec.extra_txns = 200;  // m = n
    spec.block_fraction_in_mempool = 0.5;
    const chain::Scenario s = chain::make_scenario(spec, rng);
    ASSERT_EQ(s.m, s.n);
    Sender sender(s.block, rng.next(), cfg);
    ReceiveSession session = Receiver(s.receiver_mempool, cfg).session();
    ReceiveOutcome out = session.receive_block(sender.encode(s.m).msg);
    ASSERT_EQ(out.status, ReceiveStatus::kNeedsProtocol2) << fpr;
    out = session.complete(sender.serve(session.build_request()));
    if (out.status == ReceiveStatus::kNeedsRepair) {
      out = session.complete_repair(sender.serve_repair(session.build_repair()));
    }
    EXPECT_EQ(out.status, ReceiveStatus::kDecoded) << "fpr_R=" << fpr;
  }
}

}  // namespace
}  // namespace graphene::core
