#include <gtest/gtest.h>

#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "sim/scenario.hpp"
#include "testkit/gen.hpp"
#include "testkit/stat_gate.hpp"

namespace graphene::core {
namespace {

// Property sweep over the whole (n, extra) lattice rather than a fixed case
// list: every trial draws a fresh scenario from the generator (log-uniform
// block size, random extras, full overlap — Theorem 1's regime), and the
// decode rate is pinned with a Clopper–Pearson gate. A failing case shrinks
// and prints with its seed; see docs/TESTING.md for the reproduction recipe.
TEST(Protocol1Property, DecodesWhenReceiverHasWholeBlock) {
  testkit::StatGateSpec gspec;
  gspec.name = "p1_whole_block";
  gspec.trials = 200;
  // Failure sources compose: a* exceeded (≤ 1 − β) or IBLT tail (≤ 1/240).
  gspec.min_rate = 1.0 - 2.0 / 240.0;
  testkit::ScenarioDims dims;
  dims.min_block_txns = 1;
  dims.max_block_txns = 2000;
  dims.max_extra_multiple = 5.0;
  dims.min_fraction = 1.0;
  dims.max_fraction = 1.0;
  const testkit::GateResult r = testkit::StatGate(gspec).run_cases<testkit::GenCase>(
      [&](util::Rng& rng) { return testkit::gen_case(rng, dims); },
      [](const testkit::GenCase& c, util::Rng&) {
        const chain::Scenario s = testkit::build_scenario(c);
        Sender sender(s.block, c.salt);
        ReceiveSession receiver = Receiver(s.receiver_mempool).session();
        const ReceiveOutcome out =
            receiver.receive_block(sender.encode(s.receiver_mempool.size()).msg);
        if (out.status != ReceiveStatus::kDecoded) return false;
        return out.merkle_ok && out.block_ids == s.block.tx_ids();
      },
      [](const testkit::GenCase& c) { return testkit::shrink_case(c); },
      [](const testkit::GenCase& c) { return testkit::describe_case(c); });
  GRAPHENE_EXPECT_GATE(r);
}

TEST(Protocol1, DecodedTransactionsAreRecoverable) {
  util::Rng rng(1);
  chain::ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 200;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 42);
  ReceiveSession receiver = Receiver(s.receiver_mempool).session();
  const ReceiveOutcome out = receiver.receive_block(sender.encode(s.m).msg);
  ASSERT_EQ(out.status, ReceiveStatus::kDecoded);
  const auto txs = receiver.block_transactions();
  ASSERT_EQ(txs.size(), 100u);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(txs[i].id, s.block.transactions()[i].id);
  }
}

TEST(Protocol1, MissingTransactionsForceProtocol2) {
  util::Rng rng(2);
  chain::ScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 200;
  spec.block_fraction_in_mempool = 0.9;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 43);
  ReceiveSession receiver = Receiver(s.receiver_mempool).session();
  const ReceiveOutcome out = receiver.receive_block(sender.encode(s.m).msg);
  EXPECT_NE(out.status, ReceiveStatus::kDecoded);
}

TEST(Protocol1, EncodingSmallerThanCompactBlocksAt2000) {
  util::Rng rng(3);
  chain::ScenarioSpec spec;
  spec.block_txns = 2000;
  spec.extra_txns = 2000;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 44);
  const GrapheneBlockMsg msg = sender.encode(s.m).msg;
  const std::size_t graphene_bytes =
      msg.filter_s.serialized_size() + msg.iblt_i.serialized_size();
  EXPECT_LT(graphene_bytes, 6u * 2000u);
}

TEST(Protocol1, UnkeyedShortIdsAlsoWork) {
  util::Rng rng(4);
  ProtocolConfig cfg;
  cfg.keyed_short_ids = false;
  chain::ScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 400;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 45, cfg);
  ReceiveSession receiver = Receiver(s.receiver_mempool, cfg).session();
  const ReceiveOutcome out = receiver.receive_block(sender.encode(s.m).msg);
  EXPECT_EQ(out.status, ReceiveStatus::kDecoded);
}

TEST(Protocol1, EmptyMempoolBeyondBlockStillDecodes) {
  // m = n exactly: degenerate filter + minimal IBLT.
  util::Rng rng(5);
  chain::ScenarioSpec spec;
  spec.block_txns = 300;
  spec.extra_txns = 0;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 46);
  ReceiveSession receiver = Receiver(s.receiver_mempool).session();
  const GrapheneBlockMsg msg = sender.encode(s.m).msg;
  EXPECT_TRUE(msg.filter_s.matches_everything());
  const ReceiveOutcome out = receiver.receive_block(msg);
  EXPECT_EQ(out.status, ReceiveStatus::kDecoded);
}

TEST(Protocol1, EncodeResultParamsMatchMessageSizes) {
  util::Rng rng(6);
  chain::ScenarioSpec spec;
  spec.block_txns = 500;
  spec.extra_txns = 1500;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 47);
  const EncodeResult enc = sender.encode(s.m);
  EXPECT_EQ(enc.params.bloom_bytes, enc.msg.filter_s.serialized_size());
  EXPECT_EQ(enc.params.iblt_bytes, enc.msg.iblt_i.serialized_size());
}

}  // namespace
}  // namespace graphene::core
