#include <gtest/gtest.h>

#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "sim/scenario.hpp"

namespace graphene::core {
namespace {

struct P1Case {
  std::uint64_t n;
  std::uint64_t extra;
};

class Protocol1Sweep : public ::testing::TestWithParam<P1Case> {};

TEST_P(Protocol1Sweep, DecodesWhenReceiverHasWholeBlock) {
  const auto [n, extra] = GetParam();
  util::Rng rng(n * 1000 + extra);
  int decoded = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    chain::ScenarioSpec spec;
    spec.block_txns = n;
    spec.extra_txns = extra;
    spec.block_fraction_in_mempool = 1.0;
    const chain::Scenario s = chain::make_scenario(spec, rng);

    Sender sender(s.block, /*salt=*/rng.next());
    Receiver receiver(s.receiver_mempool);
    const GrapheneBlockMsg msg = sender.encode(s.receiver_mempool.size()).msg;
    const ReceiveOutcome out = receiver.receive_block(msg);
    decoded += out.status == ReceiveStatus::kDecoded ? 1 : 0;
    if (out.status == ReceiveStatus::kDecoded) {
      EXPECT_TRUE(out.merkle_ok);
      EXPECT_EQ(out.block_ids.size(), n);
      EXPECT_EQ(out.block_ids, s.block.tx_ids());
    }
  }
  // β = 239/240 per trial; 20 trials with ≥18 successes is conservative.
  EXPECT_GE(decoded, kTrials - 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Protocol1Sweep,
    ::testing::Values(P1Case{20, 0}, P1Case{20, 100}, P1Case{200, 0}, P1Case{200, 100},
                      P1Case{200, 400}, P1Case{200, 1000}, P1Case{2000, 1000},
                      P1Case{2000, 4000}, P1Case{1, 10}, P1Case{2, 0}));

TEST(Protocol1, DecodedTransactionsAreRecoverable) {
  util::Rng rng(1);
  chain::ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 200;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 42);
  Receiver receiver(s.receiver_mempool);
  const ReceiveOutcome out = receiver.receive_block(sender.encode(s.m).msg);
  ASSERT_EQ(out.status, ReceiveStatus::kDecoded);
  const auto txs = receiver.block_transactions();
  ASSERT_EQ(txs.size(), 100u);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(txs[i].id, s.block.transactions()[i].id);
  }
}

TEST(Protocol1, MissingTransactionsForceProtocol2) {
  util::Rng rng(2);
  chain::ScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 200;
  spec.block_fraction_in_mempool = 0.9;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 43);
  Receiver receiver(s.receiver_mempool);
  const ReceiveOutcome out = receiver.receive_block(sender.encode(s.m).msg);
  EXPECT_NE(out.status, ReceiveStatus::kDecoded);
}

TEST(Protocol1, EncodingSmallerThanCompactBlocksAt2000) {
  util::Rng rng(3);
  chain::ScenarioSpec spec;
  spec.block_txns = 2000;
  spec.extra_txns = 2000;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 44);
  const GrapheneBlockMsg msg = sender.encode(s.m).msg;
  const std::size_t graphene_bytes =
      msg.filter_s.serialized_size() + msg.iblt_i.serialized_size();
  EXPECT_LT(graphene_bytes, 6u * 2000u);
}

TEST(Protocol1, UnkeyedShortIdsAlsoWork) {
  util::Rng rng(4);
  ProtocolConfig cfg;
  cfg.keyed_short_ids = false;
  chain::ScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 400;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 45, cfg);
  Receiver receiver(s.receiver_mempool, cfg);
  const ReceiveOutcome out = receiver.receive_block(sender.encode(s.m).msg);
  EXPECT_EQ(out.status, ReceiveStatus::kDecoded);
}

TEST(Protocol1, EmptyMempoolBeyondBlockStillDecodes) {
  // m = n exactly: degenerate filter + minimal IBLT.
  util::Rng rng(5);
  chain::ScenarioSpec spec;
  spec.block_txns = 300;
  spec.extra_txns = 0;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 46);
  Receiver receiver(s.receiver_mempool);
  const GrapheneBlockMsg msg = sender.encode(s.m).msg;
  EXPECT_TRUE(msg.filter_s.matches_everything());
  const ReceiveOutcome out = receiver.receive_block(msg);
  EXPECT_EQ(out.status, ReceiveStatus::kDecoded);
}

TEST(Protocol1, EncodeResultParamsMatchMessageSizes) {
  util::Rng rng(6);
  chain::ScenarioSpec spec;
  spec.block_txns = 500;
  spec.extra_txns = 1500;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 47);
  const EncodeResult enc = sender.encode(s.m);
  EXPECT_EQ(enc.params.bloom_bytes, enc.msg.filter_s.serialized_size());
  EXPECT_EQ(enc.params.iblt_bytes, enc.msg.iblt_i.serialized_size());
}

}  // namespace
}  // namespace graphene::core
