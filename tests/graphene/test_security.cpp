// Security behaviors from §6.1: malformed IBLTs must not hang the receiver,
// and manufactured short-ID collisions must degrade gracefully rather than
// deterministically break the protocol.
#include <gtest/gtest.h>

#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "sim/scenario.hpp"

namespace graphene::core {
namespace {

TEST(Security, MalformedIbltInBlockMessageIsRejectedNotLooped) {
  util::Rng rng(1);
  chain::ScenarioSpec spec;
  spec.block_txns = 50;
  spec.extra_txns = 100;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 7);
  GrapheneBlockMsg msg = sender.encode(s.m).msg;

  // Craft a k−1 insertion directly in the wire IBLT: decode at the receiver
  // must terminate (status anything but a hang) — §6.1.
  auto& cells = msg.iblt_i.cells_for_test();
  bool corrupted = false;
  for (auto& cell : cells) {
    if (cell.count >= 1) {
      cell.count -= 1;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);

  ReceiveSession session = Receiver(s.receiver_mempool).session();
  const ReceiveOutcome out = session.receive_block(msg);
  EXPECT_NE(out.status, ReceiveStatus::kDecoded);
}

TEST(Security, KeyedShortIdsDefeatPrecomputedCollisions) {
  // Two transactions crafted to share truncated 8-byte IDs: with keyed
  // (SipHash) short IDs their IBLT keys differ for almost every salt.
  util::Rng rng(2);
  chain::Transaction t1 = chain::make_random_transaction(rng);
  chain::Transaction t2 = chain::make_random_transaction(rng);
  // Force the first 8 bytes equal (the truncation an attacker can grind).
  for (int i = 0; i < 8; ++i) t2.id[static_cast<std::size_t>(i)] = t1.id[static_cast<std::size_t>(i)];

  ASSERT_EQ(chain::short_id(t1.id), chain::short_id(t2.id));

  ProtocolConfig keyed;
  keyed.keyed_short_ids = true;
  int collisions = 0;
  for (std::uint64_t salt = 0; salt < 100; ++salt) {
    if (derive_short_id(t1.id, salt, keyed) == derive_short_id(t2.id, salt, keyed)) {
      ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Security, TruncatedCollisionInMempoolStillUsuallyDecodes) {
  // Worst case from §6.1 staged with *unkeyed* short IDs: the receiver's
  // mempool holds a transaction whose truncated ID collides with a block
  // transaction she does not have. Graphene fails only with probability
  // f_S·f_R; over a few trials at least one full run must succeed.
  util::Rng rng(3);
  ProtocolConfig cfg;
  cfg.keyed_short_ids = false;

  int decoded = 0;
  for (int t = 0; t < 5; ++t) {
    chain::ScenarioSpec spec;
    spec.block_txns = 100;
    spec.extra_txns = 200;
    spec.block_fraction_in_mempool = 1.0;
    chain::Scenario s = chain::make_scenario(spec, rng);

    // Attacker: collide a new mempool transaction with block txn 0 on the
    // first 8 bytes, then remove the real one from the receiver's pool.
    const chain::Transaction& victim = s.block.transactions()[0];
    chain::Transaction evil = chain::make_random_transaction(rng);
    for (int i = 0; i < 8; ++i) evil.id[static_cast<std::size_t>(i)] = victim.id[static_cast<std::size_t>(i)];
    chain::Mempool attacked = s.receiver_mempool;
    attacked.erase(victim.id);
    attacked.insert(evil);
    s.receiver_mempool = attacked;

    Sender sender(s.block, rng.next(), cfg);
    ReceiveSession session = Receiver(s.receiver_mempool, cfg).session();
    ReceiveOutcome out = session.receive_block(sender.encode(s.receiver_mempool.size()).msg);
    if (out.status == ReceiveStatus::kNeedsProtocol2) {
      out = session.complete(sender.serve(session.build_request()));
    }
    if (out.status == ReceiveStatus::kNeedsRepair) {
      out = session.complete_repair(sender.serve_repair(session.build_repair()));
    }
    decoded += out.status == ReceiveStatus::kDecoded ? 1 : 0;
  }
  EXPECT_GE(decoded, 1);
}

TEST(Security, MerkleValidationCatchesWrongCandidateSet) {
  // If the receiver's candidate set silently diverges (simulated by feeding
  // a block message whose header root is wrong), finalize must fail closed.
  util::Rng rng(4);
  chain::ScenarioSpec spec;
  spec.block_txns = 50;
  spec.extra_txns = 50;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 8);
  GrapheneBlockMsg msg = sender.encode(s.m).msg;
  msg.header.merkle_root[0] ^= 0xff;

  ReceiveSession session = Receiver(s.receiver_mempool).session();
  const ReceiveOutcome out = session.receive_block(msg);
  EXPECT_NE(out.status, ReceiveStatus::kDecoded);
  EXPECT_FALSE(out.merkle_ok);
}

}  // namespace
}  // namespace graphene::core
