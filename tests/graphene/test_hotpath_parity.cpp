// Hot-path parity gates: the batch / blocked / pooled data-plane paths must
// be bit-for-bit interchangeable with the scalar serial ones.
//
// These are exact properties, not rates, so every gate runs with
// min_rate = 1.0 — a single diverging trial fails the gate and prints the
// shrunk (n, m, fraction) counterexample. Cases come from the same testkit
// scenario lattice the theorem gates sample, so parity is checked across the
// (m, n, x, y) regimes the protocol actually visits, and every pooled check
// runs at 1, 2, and 8 workers.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "iblt/iblt.hpp"
#include "testkit/gen.hpp"
#include "testkit/stat_gate.hpp"
#include "util/thread_pool.hpp"

namespace graphene {
namespace {

constexpr bloom::HashStrategy kStrategies[] = {bloom::HashStrategy::kSplitDigest,
                                               bloom::HashStrategy::kRehash,
                                               bloom::HashStrategy::kBlocked};

testkit::ScenarioDims parity_dims() {
  testkit::ScenarioDims dims;
  dims.min_block_txns = 2;
  dims.max_block_txns = 400;
  dims.max_extra_multiple = 4.0;
  dims.min_fraction = 0.5;
  dims.max_fraction = 1.0;
  return dims;
}

std::vector<util::ByteView> id_views(const std::vector<chain::TxId>& ids) {
  std::vector<util::ByteView> views;
  views.reserve(ids.size());
  for (const chain::TxId& id : ids) views.emplace_back(id);
  return views;
}

// Bloom: for every strategy, insert_batch must build the same bits as
// scalar insert, and contains_batch / pooled contains_all must answer
// exactly like scalar contains.
TEST(HotpathParity, BloomBatchAndPooledPathsMatchScalar) {
  util::ThreadPool pools[] = {util::ThreadPool(1), util::ThreadPool(2),
                              util::ThreadPool(8)};
  const testkit::ScenarioDims dims = parity_dims();
  testkit::StatGateSpec spec;
  spec.name = "hotpath_bloom_parity";
  spec.trials = 60;
  spec.min_rate = 1.0;
  const testkit::GateResult r = testkit::StatGate(spec).run_cases<testkit::GenCase>(
      [&](util::Rng& rng) { return testkit::gen_case(rng, dims); },
      [&](const testkit::GenCase& c, util::Rng&) {
        const chain::Scenario s = testkit::build_scenario(c);
        const std::vector<chain::TxId> block_ids = s.block.tx_ids();
        const std::vector<chain::TxId> probe_ids = s.receiver_mempool.ids();
        const auto block_views = id_views(block_ids);
        const auto probe_views = id_views(probe_ids);
        for (const bloom::HashStrategy strategy : kStrategies) {
          bloom::BloomFilter scalar(block_ids.size(), 0.02, c.salt, strategy);
          for (const chain::TxId& id : block_ids) scalar.insert(util::ByteView(id));
          bloom::BloomFilter batch(block_ids.size(), 0.02, c.salt, strategy);
          batch.insert_batch(block_views.data(), block_views.size());
          if (scalar.serialize() != batch.serialize()) return false;

          std::vector<std::uint8_t> got(probe_views.size(), 0);
          batch.contains_batch(probe_views.data(), probe_views.size(), got.data());
          for (std::size_t i = 0; i < probe_ids.size(); ++i) {
            const bool want = scalar.contains(util::ByteView(probe_ids[i]));
            if (want != (got[i] != 0)) return false;
          }
          for (util::ThreadPool& pool : pools) {
            std::vector<std::uint8_t> pooled(probe_views.size(), 0);
            bloom::contains_all(batch, probe_views.data(), probe_views.size(),
                                pooled.data(), &pool);
            if (pooled != got) return false;
          }
        }
        return true;
      },
      [](const testkit::GenCase& c) { return testkit::shrink_case(c); },
      [](const testkit::GenCase& c) { return testkit::describe_case(c); });
  GRAPHENE_EXPECT_GATE(r);
}

// IBLT: insert_all over any worker count and pooled subtract must reproduce
// the serial cells exactly, and the decoded difference must match.
TEST(HotpathParity, IbltPooledBuildAndSubtractMatchSerial) {
  util::ThreadPool pools[] = {util::ThreadPool(1), util::ThreadPool(2),
                              util::ThreadPool(8)};
  const testkit::ScenarioDims dims = parity_dims();
  testkit::StatGateSpec spec;
  spec.name = "hotpath_iblt_parity";
  spec.trials = 60;
  spec.min_rate = 1.0;
  const testkit::GateResult r = testkit::StatGate(spec).run_cases<testkit::GenCase>(
      [&](util::Rng& rng) { return testkit::gen_case(rng, dims); },
      [&](const testkit::GenCase& c, util::Rng& rng) {
        const chain::Scenario s = testkit::build_scenario(c);
        std::vector<std::uint64_t> sender_sids;
        for (const chain::TxId& id : s.block.tx_ids()) {
          sender_sids.push_back(chain::short_id(id) ^ c.salt);
        }
        std::vector<std::uint64_t> receiver_sids;
        for (const chain::TxId& id : s.receiver_mempool.ids()) {
          receiver_sids.push_back(chain::short_id(id) ^ c.salt);
        }
        const iblt::IbltParams params{3, 30 + 3 * (rng.below(40) + 1)};

        iblt::Iblt serial_i(params, c.salt);
        serial_i.insert_batch(sender_sids.data(), sender_sids.size());
        iblt::Iblt serial_j(params, c.salt);
        serial_j.insert_batch(receiver_sids.data(), receiver_sids.size());
        const iblt::Iblt serial_diff = serial_i.subtract(serial_j);
        const util::Bytes want_i = serial_i.serialize();
        const util::Bytes want_diff = serial_diff.serialize();
        const iblt::DecodeResult want_dec = serial_diff.decode();

        for (util::ThreadPool& pool : pools) {
          iblt::Iblt pooled_i(params, c.salt);
          pooled_i.insert_all(std::span<const std::uint64_t>(sender_sids), &pool);
          if (pooled_i.serialize() != want_i) return false;
          iblt::Iblt pooled_j(params, c.salt);
          pooled_j.insert_all(std::span<const std::uint64_t>(receiver_sids), &pool);
          const iblt::Iblt pooled_diff = pooled_i.subtract(pooled_j, &pool);
          if (pooled_diff.serialize() != want_diff) return false;
          const iblt::DecodeResult dec = pooled_diff.decode();
          if (dec.success != want_dec.success || dec.positives != want_dec.positives ||
              dec.negatives != want_dec.negatives) {
            return false;
          }
        }
        return true;
      },
      [](const testkit::GenCase& c) { return testkit::shrink_case(c); },
      [](const testkit::GenCase& c) { return testkit::describe_case(c); });
  GRAPHENE_EXPECT_GATE(r);
}

// End to end: a full Protocol 1/2 exchange must put identical bytes on the
// wire and decode to the identical block whether cfg.pool is null or a pool
// of any size — for the default split-digest filters and for the blocked
// layout.
TEST(HotpathParity, EndToEndRunIsPoolInvariant) {
  util::ThreadPool pool2(2);
  util::ThreadPool pool8(8);
  util::ThreadPool* pools[] = {nullptr, &pool2, &pool8};
  const testkit::ScenarioDims dims = parity_dims();
  testkit::StatGateSpec spec;
  spec.name = "hotpath_e2e_parity";
  spec.trials = 40;
  spec.min_rate = 1.0;
  const testkit::GateResult r = testkit::StatGate(spec).run_cases<testkit::GenCase>(
      [&](util::Rng& rng) { return testkit::gen_case(rng, dims); },
      [&](const testkit::GenCase& c, util::Rng&) {
        const chain::Scenario s = testkit::build_scenario(c);
        for (const bloom::HashStrategy strategy :
             {bloom::HashStrategy::kSplitDigest, bloom::HashStrategy::kBlocked}) {
          util::Bytes want_block, want_req, want_resp;
          core::ReceiveStatus want_status{};
          std::vector<chain::TxId> want_ids;
          bool first = true;
          for (util::ThreadPool* pool : pools) {
            core::ProtocolConfig cfg;
            cfg.pool = pool;
            cfg.bloom_strategy = strategy;
            core::Sender sender(s.block, c.salt, cfg);
            core::ReceiveSession session(s.receiver_mempool, cfg);
            const core::GrapheneBlockMsg msg = sender.encode(s.m).msg;
            const util::Bytes block_bytes = msg.serialize();
            core::ReceiveOutcome out = session.receive_block(msg);
            util::Bytes req_bytes, resp_bytes;
            if (out.status == core::ReceiveStatus::kNeedsProtocol2) {
              const core::GrapheneRequestMsg req = session.build_request();
              req_bytes = req.serialize();
              const core::GrapheneResponseMsg resp = sender.serve(req);
              resp_bytes = resp.serialize();
              out = session.complete(resp);
            }
            if (first) {
              first = false;
              want_block = block_bytes;
              want_req = req_bytes;
              want_resp = resp_bytes;
              want_status = out.status;
              want_ids = out.block_ids;
            } else if (block_bytes != want_block || req_bytes != want_req ||
                       resp_bytes != want_resp || out.status != want_status ||
                       out.block_ids != want_ids) {
              return false;
            }
          }
        }
        return true;
      },
      [](const testkit::GenCase& c) { return testkit::shrink_case(c); },
      [](const testkit::GenCase& c) { return testkit::describe_case(c); });
  GRAPHENE_EXPECT_GATE(r);
}

}  // namespace
}  // namespace graphene
