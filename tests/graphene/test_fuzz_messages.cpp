// Robustness property: deserializing any truncated or bit-flipped prefix of
// a valid message must either succeed or throw DeserializeError /
// invalid_argument — never crash, hang, or read out of bounds. This is the
// byte-level counterpart of §6.1's "inputs from the network are hostile".
#include <gtest/gtest.h>

#include "graphene/messages.hpp"
#include "util/random.hpp"

namespace graphene::core {
namespace {

template <typename Msg>
void check_all_truncations(const util::Bytes& wire) {
  for (std::size_t len = 0; len < wire.size(); ++len) {
    util::Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
    util::ByteReader r{util::ByteView(cut)};
    try {
      (void)Msg::deserialize(r);
      // Shorter prefixes may parse if trailing fields were empty; fine.
    } catch (const util::DeserializeError&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

template <typename Msg>
void check_random_corruptions(const util::Bytes& wire, std::uint64_t seed) {
  util::Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    util::Bytes mutated = wire;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    util::ByteReader r{util::ByteView(mutated)};
    try {
      (void)Msg::deserialize(r);
    } catch (const util::DeserializeError&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

GrapheneBlockMsg sample_block_msg(util::Rng& rng) {
  GrapheneBlockMsg msg;
  msg.n = 50;
  msg.shortid_salt = rng.next();
  msg.filter_s = bloom::BloomFilter(50, 0.05, rng.next());
  for (int i = 0; i < 50; ++i) {
    const auto id = chain::make_random_transaction(rng).id;
    msg.filter_s.insert(util::ByteView(id.data(), id.size()));
  }
  msg.iblt_i = iblt::Iblt(iblt::IbltParams{4, 40}, rng.next());
  for (int i = 0; i < 10; ++i) msg.iblt_i.insert(rng.next());
  return msg;
}

TEST(MessageFuzz, BlockMsgTruncations) {
  util::Rng rng(1);
  check_all_truncations<GrapheneBlockMsg>(sample_block_msg(rng).serialize());
}

TEST(MessageFuzz, BlockMsgCorruptions) {
  util::Rng rng(2);
  check_random_corruptions<GrapheneBlockMsg>(sample_block_msg(rng).serialize(), 3);
}

TEST(MessageFuzz, RequestMsgTruncationsAndCorruptions) {
  util::Rng rng(4);
  GrapheneRequestMsg req;
  req.z = 100;
  req.b = 5;
  req.y_star = 9;
  req.fpr_r = 0.03;
  req.filter_r = bloom::BloomFilter(100, 0.03, rng.next());
  const util::Bytes wire = req.serialize();
  check_all_truncations<GrapheneRequestMsg>(wire);
  check_random_corruptions<GrapheneRequestMsg>(wire, 5);
}

TEST(MessageFuzz, ResponseMsgTruncationsAndCorruptions) {
  util::Rng rng(6);
  GrapheneResponseMsg resp;
  for (int i = 0; i < 5; ++i) resp.missing.push_back(chain::make_random_transaction(rng));
  resp.iblt_j = iblt::Iblt(iblt::IbltParams{3, 30}, rng.next());
  resp.filter_f = bloom::BloomFilter(20, 0.1, rng.next());
  const util::Bytes wire = resp.serialize();
  check_all_truncations<GrapheneResponseMsg>(wire);
  check_random_corruptions<GrapheneResponseMsg>(wire, 7);
}

TEST(MessageFuzz, RepairMsgsTruncations) {
  util::Rng rng(8);
  RepairRequestMsg req;
  for (int i = 0; i < 20; ++i) req.short_ids.push_back(rng.next());
  check_all_truncations<RepairRequestMsg>(req.serialize());

  RepairResponseMsg resp;
  for (int i = 0; i < 3; ++i) resp.txns.push_back(chain::make_random_transaction(rng));
  check_all_truncations<RepairResponseMsg>(resp.serialize());
}

TEST(MessageFuzz, GarbageBytesNeverCrash) {
  util::Rng rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    util::Bytes garbage(rng.below(300) + 1);
    rng.fill(garbage);
    util::ByteReader r{util::ByteView(garbage)};
    try {
      (void)GrapheneBlockMsg::deserialize(r);
    } catch (const util::DeserializeError&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::length_error&) {
      // A huge varint can request an unsatisfiable allocation; rejecting it
      // via the container's own guard is acceptable, crashing is not.
    } catch (const std::bad_alloc&) {
    }
  }
}

}  // namespace
}  // namespace graphene::core
