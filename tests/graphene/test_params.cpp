#include "graphene/params.hpp"

#include <gtest/gtest.h>

#include "bloom/bloom_math.hpp"
#include "graphene/bounds.hpp"
#include "iblt/param_table.hpp"

namespace graphene::core {
namespace {

std::size_t total_for_a(std::uint64_t a, std::uint64_t n, std::uint64_t m,
                        const ProtocolConfig& cfg) {
  const double fpr = std::min(1.0, static_cast<double>(a) / static_cast<double>(m - n));
  const std::uint64_t a_star = bound_a_star(static_cast<double>(a), cfg.beta);
  return bloom::serialized_bytes(n, fpr) +
         iblt::Iblt::serialized_size_for(iblt::lookup_params(a_star, cfg.fail_denom).cells);
}

TEST(OptimizeProtocol1, MatchesBruteForceSmall) {
  const ProtocolConfig cfg;
  for (const auto [n, m] : {std::pair<std::uint64_t, std::uint64_t>{200, 400},
                            {200, 1200}, {50, 80}, {2000, 6000}}) {
    const Protocol1Params p = optimize_protocol1(n, m, cfg);
    std::size_t best = SIZE_MAX;
    for (std::uint64_t a = 1; a <= m - n; ++a) best = std::min(best, total_for_a(a, n, m, cfg));
    EXPECT_LE(p.total_bytes(), best + best / 50)  // within 2% of true optimum
        << "n=" << n << " m=" << m;
  }
}

TEST(OptimizeProtocol1, EqualPoolsDegenerateToIbltOnly) {
  const Protocol1Params p = optimize_protocol1(1000, 1000);
  EXPECT_EQ(p.fpr, 1.0);
  EXPECT_EQ(p.a, 0u);
  EXPECT_GE(p.a_star, 1u);
  EXPECT_LT(p.bloom_bytes, 16u);  // header-only filter
}

TEST(OptimizeProtocol1, FprIsAOverDiff) {
  const Protocol1Params p = optimize_protocol1(2000, 6000);
  EXPECT_NEAR(p.fpr, static_cast<double>(p.a) / 4000.0, 1e-12);
}

TEST(OptimizeProtocol1, AStarRespectsTheorem1) {
  const ProtocolConfig cfg;
  const Protocol1Params p = optimize_protocol1(2000, 6000, cfg);
  EXPECT_EQ(p.a_star, bound_a_star(static_cast<double>(p.a), cfg.beta));
}

TEST(OptimizeProtocol1, TotalGrowsSublinearlyInMempool) {
  // Fig. 14's qualitative claim: cost grows sublinearly as extra mempool
  // transactions accumulate.
  const std::size_t at_1x = optimize_protocol1(2000, 4000).total_bytes();
  const std::size_t at_5x = optimize_protocol1(2000, 12000).total_bytes();
  EXPECT_LT(at_5x, at_1x * 3);
  EXPECT_GT(at_5x, at_1x);
}

TEST(OptimizeProtocol1, BeatsCompactBlocksForPaperSizes) {
  // §5.3: Graphene is smaller than Compact Blocks (6 bytes/txn) for all but
  // tiny blocks.
  for (const std::uint64_t n : {200ULL, 2000ULL, 10000ULL}) {
    const std::uint64_t m = n + n;  // mempool = 2 blocks' worth
    const Protocol1Params p = optimize_protocol1(n, m);
    EXPECT_LT(p.total_bytes(), 6 * n) << "n=" << n;
  }
}

TEST(OptimizeProtocol1, Eq3ContinuousApproximationIsInTheRightRegime) {
  // Eq. 3 with τ from the table should land within a factor ~4 of the
  // discrete optimum for large n (the paper notes up to 20% error for
  // a < 100 plus table discretization).
  const std::uint64_t n = 10000, m = 30000;
  const Protocol1Params p = optimize_protocol1(n, m);
  const double tau = iblt::hedge_factor(p.a_star, 240);
  const double a_cont = eq3_continuous_a(n, tau);
  EXPECT_GT(static_cast<double>(p.a), a_cont / 4.0);
  EXPECT_LT(static_cast<double>(p.a), a_cont * 4.0);
}

TEST(OptimizeProtocol2, NormalPathProducesConsistentParams) {
  // z = 150 of m = 500 passed S at FPR 0.05; block n = 200.
  const ProtocolConfig cfg;
  const Protocol2Params p = optimize_protocol2(150, 500, 200, 0.05, cfg);
  EXPECT_FALSE(p.reversed);
  EXPECT_LE(p.x_star, 150u);
  EXPECT_GE(p.y_star, 1u);
  EXPECT_GE(p.b, 1u);
  EXPECT_NEAR(p.fpr,
              static_cast<double>(p.b) / static_cast<double>(200 - p.x_star), 1e-9);
  EXPECT_GT(p.total_bytes(), 0u);
}

TEST(OptimizeProtocol2, ReversedPathTriggersWhenPoolsMatch) {
  // m ≈ n with FPR ~1: z = m, y* ≈ m — the §3.3.2 special case.
  const Protocol2Params p = optimize_protocol2(1000, 1000, 1000, 1.0, {});
  EXPECT_TRUE(p.reversed);
  EXPECT_NEAR(p.fpr, 0.1, 1e-12);
}

TEST(OptimizeProtocol2, IbltSizedForBPlusYStar) {
  const ProtocolConfig cfg;
  const Protocol2Params p = optimize_protocol2(300, 1000, 400, 0.02, cfg);
  const iblt::IbltParams expected = iblt::lookup_params(p.b + p.y_star, cfg.fail_denom);
  EXPECT_EQ(p.iblt.cells, expected.cells);
}

TEST(OptimizeProtocol2, MatchesBruteForceOverB) {
  const ProtocolConfig cfg;
  const std::uint64_t z = 150, m = 500, n = 200;
  const double f_s = 0.05;
  const Protocol2Params p = optimize_protocol2(z, m, n, f_s, cfg);
  ASSERT_FALSE(p.reversed);
  const std::uint64_t missing = n - p.x_star;
  std::size_t best = SIZE_MAX;
  for (std::uint64_t b = 1; b <= missing; ++b) {
    const double fr = std::min(1.0, static_cast<double>(b) / static_cast<double>(missing));
    const std::size_t total =
        bloom::serialized_bytes(z, fr) +
        iblt::Iblt::serialized_size_for(
            iblt::lookup_params(b + p.y_star, cfg.fail_denom).cells);
    best = std::min(best, total);
  }
  EXPECT_LE(p.total_bytes(), best + best / 50);
}

}  // namespace
}  // namespace graphene::core
