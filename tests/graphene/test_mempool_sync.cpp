#include "graphene/mempool_sync.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "chain/workload.hpp"

namespace graphene::core {
namespace {

bool pools_equal(const chain::Mempool& a, const chain::Mempool& b) {
  if (a.size() != b.size()) return false;
  for (const chain::TxId& id : a.ids()) {
    if (!b.contains(id)) return false;
  }
  return true;
}

class MempoolSyncSweep : public ::testing::TestWithParam<double> {};

TEST_P(MempoolSyncSweep, BothPoolsConvergeToUnion) {
  const double fraction_common = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(fraction_common * 1000) + 17);
  int successes = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t size = 400;
    const auto common = static_cast<std::uint64_t>(fraction_common * size);
    chain::MempoolPair pair = chain::make_mempool_pair(size, common, rng);
    const std::uint64_t expected_union = 2 * size - common;

    const MempoolSyncResult result = sync_mempools(pair.a, pair.b, rng.next());
    if (result.success) {
      ++successes;
      EXPECT_EQ(pair.a.size(), expected_union);
      EXPECT_TRUE(pools_equal(pair.a, pair.b));
    }
  }
  EXPECT_GE(successes, kTrials - 1);
}

INSTANTIATE_TEST_SUITE_P(Overlap, MempoolSyncSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.95, 1.0));

TEST(MempoolSync, IdenticalPoolsUseProtocol1Only) {
  util::Rng rng(1);
  chain::MempoolPair pair = chain::make_mempool_pair(300, 300, rng);
  const MempoolSyncResult result = sync_mempools(pair.a, pair.b, 7);
  EXPECT_TRUE(result.success);
  EXPECT_FALSE(result.used_protocol2);
  EXPECT_EQ(result.receiver_gained, 0u);
  EXPECT_EQ(result.sender_gained, 0u);
}

TEST(MempoolSync, EmptySenderPoolFallsBackToDump) {
  util::Rng rng(2);
  chain::Mempool sender_pool;
  chain::Mempool receiver_pool;
  for (int i = 0; i < 50; ++i) receiver_pool.insert(chain::make_random_transaction(rng));
  const MempoolSyncResult result = sync_mempools(sender_pool, receiver_pool, 8);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(sender_pool.size(), 50u);
  EXPECT_EQ(result.sender_gained, 50u);
}

TEST(MempoolSync, EmptyReceiverPoolReceivesEverything) {
  util::Rng rng(3);
  chain::Mempool sender_pool;
  chain::Mempool receiver_pool;
  for (int i = 0; i < 50; ++i) sender_pool.insert(chain::make_random_transaction(rng));
  const MempoolSyncResult result = sync_mempools(sender_pool, receiver_pool, 9);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(receiver_pool.size(), 50u);
  EXPECT_EQ(result.receiver_gained, 50u);
}

TEST(MempoolSync, ChannelRecordsTraffic) {
  util::Rng rng(4);
  chain::MempoolPair pair = chain::make_mempool_pair(200, 100, rng);
  net::Channel channel;
  const MempoolSyncResult result = sync_mempools(pair.a, pair.b, 10, {}, &channel);
  EXPECT_TRUE(result.success);
  EXPECT_GE(channel.message_count(), 1u);
  EXPECT_GT(channel.payload_bytes(net::Direction::kSenderToReceiver), 0u);
}

TEST(MempoolSync, GrapheneBytesBeatNaiveFullDump) {
  // With high overlap, sync encoding must be far below shipping all IDs.
  util::Rng rng(5);
  chain::MempoolPair pair = chain::make_mempool_pair(2000, 1900, rng);
  const MempoolSyncResult result = sync_mempools(pair.a, pair.b, 11);
  ASSERT_TRUE(result.success);
  EXPECT_LT(result.graphene_bytes, 2000u * 32u / 4u);
}

TEST(MempoolSync, GainsMatchSetDifferences) {
  util::Rng rng(6);
  chain::MempoolPair pair = chain::make_mempool_pair(500, 350, rng);
  const MempoolSyncResult result = sync_mempools(pair.a, pair.b, 12);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.receiver_gained, 150u);
  EXPECT_EQ(result.sender_gained, 150u);
}

}  // namespace
}  // namespace graphene::core
