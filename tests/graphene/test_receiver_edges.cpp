// Receiver state-machine edge cases: calls out of order, re-used receivers,
// degenerate block/mempool shapes, and the spam-relay scenario from §2.2.
#include <gtest/gtest.h>

#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "sim/scenario.hpp"

namespace graphene::core {
namespace {

TEST(ReceiverEdges, BuildRequestBeforeReceiveThrows) {
  chain::Mempool pool;
  ReceiveSession receiver = Receiver(pool).session();
  EXPECT_THROW((void)receiver.build_request(), std::logic_error);
}

TEST(ReceiverEdges, BuildRequestErrorCarriesDiagnosticContext) {
  chain::Mempool pool;
  ReceiveSession receiver = Receiver(pool).session();
  try {
    (void)receiver.build_request();
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.stage(), "build_request");
    EXPECT_FALSE(e.context().have_block_msg);
    EXPECT_EQ(e.context().z, 0u);
    // what() embeds the formatted snapshot for plain log consumers.
    const std::string what = e.what();
    EXPECT_NE(what.find("have_block_msg=false"), std::string::npos) << what;
    EXPECT_NE(what.find("z=0"), std::string::npos) << what;
  }
}

TEST(ReceiverEdges, ErrorContextReflectsObservedState) {
  // After a real Protocol-1 failure path the context snapshots the observed
  // z and the Theorem-2/3 bounds from the last request.
  util::Rng rng(77);
  chain::ScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 200;
  spec.block_fraction_in_mempool = 0.7;
  const chain::Scenario s = chain::make_scenario(spec, rng);

  Sender sender(s.block, 123);
  ReceiveSession receiver = Receiver(s.receiver_mempool).session();
  const ReceiveOutcome out = receiver.receive_block(sender.encode(s.m).msg);
  ASSERT_EQ(out.status, ReceiveStatus::kNeedsProtocol2);
  const GrapheneRequestMsg req = receiver.build_request();
  EXPECT_EQ(receiver.observed_z(), req.z);
  EXPECT_EQ(receiver.request_params().y_star, req.y_star);
}

TEST(ReceiverEdges, CompleteBeforeReceiveFailsClosed) {
  chain::Mempool pool;
  ReceiveSession receiver = Receiver(pool).session();
  GrapheneResponseMsg resp;
  resp.iblt_j = iblt::Iblt(iblt::IbltParams{4, 8}, 1);
  const ReceiveOutcome out = receiver.complete(resp);
  EXPECT_EQ(out.status, ReceiveStatus::kFailed);
}

TEST(ReceiverEdges, ReceiverIsReusableAcrossBlocks) {
  util::Rng rng(1);
  chain::ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 100;
  const chain::Scenario s1 = chain::make_scenario(spec, rng);
  ReceiveSession receiver = Receiver(s1.receiver_mempool).session();
  {
    Sender sender(s1.block, rng.next());
    EXPECT_EQ(receiver.receive_block(sender.encode(s1.m).msg).status,
              ReceiveStatus::kDecoded);
  }
  // A second, different block against the same receiver object: per-block
  // state must fully reset. Build its mempool from the first scenario's pool
  // plus the new block.
  chain::Scenario s2 = chain::make_scenario(spec, rng);
  chain::Mempool merged = s1.receiver_mempool;
  for (const chain::Transaction& tx : s2.block.transactions()) merged.insert(tx);
  ReceiveSession receiver2 = Receiver(merged).session();
  Sender sender2(s2.block, rng.next());
  EXPECT_EQ(receiver2.receive_block(sender2.encode(merged.size()).msg).status,
            ReceiveStatus::kDecoded);
}

TEST(ReceiverEdges, SingleTransactionBlock) {
  util::Rng rng(2);
  chain::ScenarioSpec spec;
  spec.block_txns = 1;
  spec.extra_txns = 100;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, rng.next());
  ReceiveSession receiver = Receiver(s.receiver_mempool).session();
  const ReceiveOutcome out = receiver.receive_block(sender.encode(s.m).msg);
  EXPECT_EQ(out.status, ReceiveStatus::kDecoded);
  EXPECT_EQ(out.block_ids.size(), 1u);
}

TEST(ReceiverEdges, ReceiverUnderstatesMempoolCount) {
  // The receiver claims a smaller mempool than it has: S gets a lower FPR
  // than needed, the IBLT absorbs extra false positives or Protocol 2 runs —
  // the protocol must still converge.
  util::Rng rng(3);
  chain::ScenarioSpec spec;
  spec.block_txns = 300;
  spec.extra_txns = 900;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, rng.next());
  ReceiveSession receiver = Receiver(s.receiver_mempool).session();
  ReceiveOutcome out = receiver.receive_block(sender.encode(s.m / 2).msg);  // lie: m/2
  if (out.status == ReceiveStatus::kNeedsProtocol2) {
    out = receiver.complete(sender.serve(receiver.build_request()));
  }
  if (out.status == ReceiveStatus::kNeedsRepair) {
    out = receiver.complete_repair(sender.serve_repair(receiver.build_repair()));
  }
  EXPECT_EQ(out.status, ReceiveStatus::kDecoded);
}

TEST(ReceiverEdges, SpamFilteredBlockRecoversViaProtocol2) {
  // §2.2: low-fee transactions the receiver refused to relay appear in the
  // block anyway; Protocol 2 ships them.
  util::Rng rng(4);
  int decoded = 0;
  for (int t = 0; t < 10; ++t) {
    chain::SpamScenarioSpec spec;
    spec.block_txns = 400;
    spec.extra_txns = 400;
    spec.low_fee_fraction = 0.08;
    const chain::Scenario s = chain::make_spam_scenario(spec, rng);
    ASSERT_LT(s.x, s.n);

    Sender sender(s.block, rng.next());
    ReceiveSession receiver = Receiver(s.receiver_mempool).session();
    ReceiveOutcome out = receiver.receive_block(sender.encode(s.m).msg);
    EXPECT_NE(out.status, ReceiveStatus::kDecoded);  // missing low-fee txns
    if (out.status == ReceiveStatus::kNeedsProtocol2) {
      out = receiver.complete(sender.serve(receiver.build_request()));
    }
    if (out.status == ReceiveStatus::kNeedsRepair) {
      out = receiver.complete_repair(sender.serve_repair(receiver.build_repair()));
    }
    decoded += out.status == ReceiveStatus::kDecoded ? 1 : 0;
  }
  EXPECT_GE(decoded, 9);
}

TEST(ReceiverEdges, HugeMempoolSmallBlock) {
  util::Rng rng(5);
  chain::ScenarioSpec spec;
  spec.block_txns = 50;
  spec.extra_txns = 20000;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, rng.next());
  ReceiveSession receiver = Receiver(s.receiver_mempool).session();
  const GrapheneBlockMsg msg = sender.encode(s.m).msg;
  const ReceiveOutcome out = receiver.receive_block(msg);
  EXPECT_EQ(out.status, ReceiveStatus::kDecoded);
  // Even with m = 400n the encoding stays compact.
  EXPECT_LT(msg.filter_s.serialized_size() + msg.iblt_i.serialized_size(), 2000u);
}

}  // namespace
}  // namespace graphene::core
