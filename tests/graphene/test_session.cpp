// Session-based receive API: Receiver::session() minting, independence of
// concurrent sessions, and the shared pool + parameter cache wiring through
// ProtocolConfig.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "iblt/param_cache.hpp"
#include "sim/scenario.hpp"
#include "util/thread_pool.hpp"

namespace graphene::core {
namespace {

chain::Scenario desync_scenario(std::uint64_t seed, double fraction = 0.8) {
  util::Rng rng(seed);
  chain::ScenarioSpec spec;
  spec.block_txns = 300;
  spec.extra_txns = 600;
  spec.block_fraction_in_mempool = fraction;
  return chain::make_scenario(spec, rng);
}

/// Drives one session through Protocol 1 → 2 → repair against `sender`.
ReceiveOutcome drive(ReceiveSession& session, const Sender& sender,
                     const GrapheneBlockMsg& msg) {
  ReceiveOutcome out = session.receive_block(msg);
  if (out.status == ReceiveStatus::kNeedsProtocol2) {
    out = session.complete(sender.serve(session.build_request()));
  }
  if (out.status == ReceiveStatus::kNeedsRepair) {
    out = session.complete_repair(sender.serve_repair(session.build_repair()));
  }
  return out;
}

TEST(ReceiveSessionApi, SessionDrivesFullProtocol) {
  const chain::Scenario s = desync_scenario(1);
  Sender sender(s.block, 7);
  Receiver receiver(s.receiver_mempool);
  ReceiveSession session = receiver.session();
  const ReceiveOutcome out = drive(session, sender, sender.encode(s.m).msg);
  EXPECT_EQ(out.status, ReceiveStatus::kDecoded);
  EXPECT_TRUE(out.merkle_ok);
  EXPECT_EQ(session.block_transactions().size(), s.block.tx_count());
}

TEST(ReceiveSessionApi, SessionsFromOneReceiverAreIndependent) {
  const chain::Scenario s = desync_scenario(2);
  Sender sender_a(s.block, 11);
  Sender sender_b(s.block, 22);  // different salt → different short IDs
  Receiver receiver(s.receiver_mempool);

  // Interleave two relays of the same block from two peers; each session
  // keeps its own candidate set and salt, so neither disturbs the other.
  ReceiveSession sa = receiver.session();
  ReceiveSession sb = receiver.session();
  const GrapheneBlockMsg ma = sender_a.encode(s.m).msg;
  const GrapheneBlockMsg mb = sender_b.encode(s.m).msg;
  ReceiveOutcome oa = sa.receive_block(ma);
  ReceiveOutcome ob = sb.receive_block(mb);
  if (oa.status == ReceiveStatus::kNeedsProtocol2) {
    const GrapheneRequestMsg ra = sa.build_request();
    if (ob.status == ReceiveStatus::kNeedsProtocol2) {
      ob = sb.complete(sender_b.serve(sb.build_request()));
    }
    oa = sa.complete(sender_a.serve(ra));
  } else if (ob.status == ReceiveStatus::kNeedsProtocol2) {
    ob = sb.complete(sender_b.serve(sb.build_request()));
  }
  if (oa.status == ReceiveStatus::kNeedsRepair) {
    oa = sa.complete_repair(sender_a.serve_repair(sa.build_repair()));
  }
  if (ob.status == ReceiveStatus::kNeedsRepair) {
    ob = sb.complete_repair(sender_b.serve_repair(sb.build_repair()));
  }
  EXPECT_EQ(oa.status, ReceiveStatus::kDecoded);
  EXPECT_EQ(ob.status, ReceiveStatus::kDecoded);
}

TEST(ReceiveSessionApi, ConcurrentSessionsAcrossPoolThreads) {
  // TSan target for the tentpole claim: one Sender and one Receiver driven
  // against many peers at once. encode() is const with no mutable state and
  // every relay gets its own session, so this must be race-free — with the
  // shared ParamCache and pool plumbed through the config as in production.
  const chain::Scenario s = desync_scenario(3);
  util::ThreadPool pool(4);
  iblt::ParamCache cache;
  ProtocolConfig cfg;
  cfg.param_cache = &cache;

  Sender sender(s.block, 99, cfg);
  Receiver receiver(s.receiver_mempool, cfg);

  constexpr std::uint64_t kPeers = 16;
  std::atomic<std::uint64_t> decoded{0};
  util::parallel_for(&pool, kPeers, [&](std::uint64_t peer) {
    // Each peer claims a different mempool size, so encodes differ too.
    const EncodeResult enc = sender.encode(s.m + peer);
    ReceiveSession session = receiver.session();
    const ReceiveOutcome out = drive(session, sender, enc.msg);
    if (out.status == ReceiveStatus::kDecoded) {
      decoded.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Individual relays may hit the ~1/fail_denom IBLT failure; all failing
  // would mean shared state corruption, not bad luck.
  EXPECT_GE(decoded.load(), kPeers - 2);
  EXPECT_GT(cache.hits(), 0u);
}

TEST(ReceiveSessionApi, EncodeIsPureAndRepeatable) {
  const chain::Scenario s = desync_scenario(4);
  Sender sender(s.block, 5);
  const EncodeResult a = sender.encode(s.m);
  const EncodeResult b = sender.encode(s.m);
  EXPECT_EQ(a.params.a_star, b.params.a_star);
  EXPECT_EQ(a.params.bloom_bytes, b.params.bloom_bytes);
  EXPECT_EQ(a.msg.serialize(), b.msg.serialize());
}

TEST(ReceiveSessionApi, FreshSessionsDecodeTheSameBlockRepeatedly) {
  // Replaying one relayed block through sessions minted from the same
  // Receiver must work every time — each session starts fresh.
  const chain::Scenario s = desync_scenario(5, /*fraction=*/1.0);
  Sender sender(s.block, 13);
  Receiver receiver(s.receiver_mempool);
  const GrapheneBlockMsg msg = sender.encode(s.m).msg;
  for (int round = 0; round < 2; ++round) {
    ReceiveSession session = receiver.session();
    const ReceiveOutcome out = session.receive_block(msg);
    EXPECT_EQ(out.status, ReceiveStatus::kDecoded) << "round " << round;
    // With full overlap every block transaction passes S, so z >= n.
    EXPECT_GE(session.observed_z(), s.block.tx_count());
  }
}

TEST(ReceiveSessionApi, SharedParamCacheAcceleratesOptimizers) {
  const chain::Scenario s = desync_scenario(6);
  iblt::ParamCache cache;
  ProtocolConfig cfg;
  cfg.param_cache = &cache;
  Sender sender(s.block, 21, cfg);
  (void)sender.encode(s.m);
  const std::uint64_t misses_after_first = cache.misses();
  EXPECT_GT(misses_after_first, 0u);
  (void)sender.encode(s.m);  // identical optimization: pure cache hits
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace graphene::core
