#include <gtest/gtest.h>

#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "sim/scenario.hpp"
#include "testkit/gen.hpp"
#include "testkit/stat_gate.hpp"

namespace graphene::core {
namespace {

/// Drives the full protocol (1 → 2 → repair) and returns the last outcome.
ReceiveOutcome run_full(const chain::Scenario& s, std::uint64_t salt,
                        const ProtocolConfig& cfg = {}) {
  Sender sender(s.block, salt, cfg);
  ReceiveSession receiver(s.receiver_mempool, cfg);
  ReceiveOutcome out = receiver.receive_block(sender.encode(s.receiver_mempool.size()).msg);
  if (out.status == ReceiveStatus::kNeedsProtocol2) {
    const GrapheneRequestMsg req = receiver.build_request();
    out = receiver.complete(sender.serve(req));
  }
  if (out.status == ReceiveStatus::kNeedsRepair) {
    out = receiver.complete_repair(sender.serve_repair(receiver.build_repair()));
  }
  return out;
}

// Property sweep over the full (n, extra, overlap-fraction) lattice: the
// complete Protocol 1 → 2 → repair pipeline must recover the block at a
// statistically pinned rate for ANY point of the grid, not just a fixed
// case list. Failing cases shrink toward the trivial corner and print with
// the gate seed (docs/TESTING.md).
TEST(Protocol2Property, RecoversBlockDespiteMissingTransactions) {
  testkit::StatGateSpec gspec;
  gspec.name = "p2_full_pipeline";
  gspec.trials = 150;
  gspec.min_rate = 0.93;  // matches the old ≥14/15-per-case floor
  testkit::ScenarioDims dims;
  dims.min_block_txns = 1;
  dims.max_block_txns = 2000;
  dims.max_extra_multiple = 5.0;
  dims.min_fraction = 0.0;
  dims.max_fraction = 1.0;
  const testkit::GateResult r = testkit::StatGate(gspec).run_cases<testkit::GenCase>(
      [&](util::Rng& rng) { return testkit::gen_case(rng, dims); },
      [](const testkit::GenCase& c, util::Rng&) {
        const chain::Scenario s = testkit::build_scenario(c);
        const ReceiveOutcome out = run_full(s, c.salt);
        if (out.status != ReceiveStatus::kDecoded) return false;
        return out.block_ids == s.block.tx_ids();
      },
      [](const testkit::GenCase& c) { return testkit::shrink_case(c); },
      [](const testkit::GenCase& c) { return testkit::describe_case(c); });
  GRAPHENE_EXPECT_GATE(r);
}

TEST(Protocol2, NearEqualPoolsUseReversedPath) {
  // m ≈ n with low overlap triggers the §3.3.2 reversal with filter F.
  util::Rng rng(1);
  chain::ScenarioSpec spec;
  spec.block_txns = 500;
  spec.extra_txns = 250;  // m = 0.5·500 + 250 = 500 = n
  spec.block_fraction_in_mempool = 0.5;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  ASSERT_EQ(s.m, s.n);

  Sender sender(s.block, 99);
  ReceiveSession receiver(s.receiver_mempool);
  ReceiveOutcome out = receiver.receive_block(sender.encode(s.m).msg);
  ASSERT_EQ(out.status, ReceiveStatus::kNeedsProtocol2);

  const GrapheneRequestMsg req = receiver.build_request();
  EXPECT_TRUE(req.reversed);
  EXPECT_NEAR(req.fpr_r, 0.1, 1e-12);

  const GrapheneResponseMsg resp = sender.serve(req);
  EXPECT_TRUE(resp.filter_f.has_value());

  out = receiver.complete(resp);
  if (out.status == ReceiveStatus::kNeedsRepair) {
    out = receiver.complete_repair(sender.serve_repair(receiver.build_repair()));
  }
  EXPECT_EQ(out.status, ReceiveStatus::kDecoded);
}

TEST(Protocol2, ReversedPathIbltSmallerThanBlock) {
  // The whole point of the reversal: without it, J would be sized ~m.
  util::Rng rng(2);
  chain::ScenarioSpec spec;
  spec.block_txns = 1000;
  spec.extra_txns = 500;
  spec.block_fraction_in_mempool = 0.5;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 100);
  ReceiveSession receiver(s.receiver_mempool);
  ASSERT_EQ(receiver.receive_block(sender.encode(s.m).msg).status,
            ReceiveStatus::kNeedsProtocol2);
  const GrapheneRequestMsg req = receiver.build_request();
  const GrapheneResponseMsg resp = sender.serve(req);
  EXPECT_LT(resp.iblt_j.cell_count(), s.n);
}

TEST(Protocol2, MissingTransactionsAreDeliveredInFull) {
  util::Rng rng(3);
  chain::ScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 400;
  spec.block_fraction_in_mempool = 0.8;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 101);
  ReceiveSession receiver(s.receiver_mempool);
  ASSERT_EQ(receiver.receive_block(sender.encode(s.m).msg).status,
            ReceiveStatus::kNeedsProtocol2);
  const GrapheneRequestMsg req = receiver.build_request();
  const GrapheneResponseMsg resp = sender.serve(req);
  // 40 block txns absent at the receiver; R's false positives may hide a few
  // (expected b ≈ small), but most must arrive here.
  EXPECT_GE(resp.missing.size(), 30u);
  for (const chain::Transaction& tx : resp.missing) {
    EXPECT_FALSE(s.receiver_mempool.contains(tx.id));
  }
}

TEST(Protocol2, RequestParamsMatchOptimizer) {
  util::Rng rng(4);
  chain::ScenarioSpec spec;
  spec.block_txns = 300;
  spec.extra_txns = 600;
  spec.block_fraction_in_mempool = 0.7;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  Sender sender(s.block, 102);
  ReceiveSession receiver(s.receiver_mempool);
  ASSERT_EQ(receiver.receive_block(sender.encode(s.m).msg).status,
            ReceiveStatus::kNeedsProtocol2);
  const GrapheneRequestMsg req = receiver.build_request();
  const Protocol2Params& p = receiver.request_params();
  EXPECT_EQ(req.b, p.b);
  EXPECT_EQ(req.y_star, p.y_star);
  EXPECT_EQ(req.filter_r.serialized_size(), p.bloom_bytes);
}

TEST(Protocol2, PingPongEngagesOnUndersizedJ) {
  // Force a tiny J by intercepting the request and shrinking b/y*: the
  // receiver's ping-pong with I must still frequently rescue the decode.
  util::Rng rng(5);
  int rescued = 0, plain_failures = 0;
  for (int t = 0; t < 10; ++t) {
    // Large block + large mempool so S produces enough false positives that
    // a sabotaged J (sized for ~2 items) cannot decode alone.
    chain::ScenarioSpec spec;
    spec.block_txns = 2000;
    spec.extra_txns = 2000;
    spec.block_fraction_in_mempool = 0.98;
    const chain::Scenario s = chain::make_scenario(spec, rng);
    Sender sender(s.block, rng.next());
    ReceiveSession receiver(s.receiver_mempool);
    if (receiver.receive_block(sender.encode(s.m).msg).status !=
        ReceiveStatus::kNeedsProtocol2) {
      continue;
    }
    GrapheneRequestMsg req = receiver.build_request();
    req.y_star = 1;  // sabotage J sizing: far below the real difference
    req.b = 1;
    const GrapheneResponseMsg resp = sender.serve(req);
    ReceiveOutcome out = receiver.complete(resp);
    const bool pinged = out.used_pingpong;
    if (out.status == ReceiveStatus::kNeedsRepair) {
      out = receiver.complete_repair(sender.serve_repair(receiver.build_repair()));
    }
    if (pinged && out.status == ReceiveStatus::kDecoded) ++rescued;
    if (out.status != ReceiveStatus::kDecoded) ++plain_failures;
  }
  // Ping-pong should rescue at least some sabotaged runs; hard failures
  // should not dominate.
  EXPECT_GT(rescued, 0);
  EXPECT_LT(plain_failures, 5);
}

}  // namespace
}  // namespace graphene::core
