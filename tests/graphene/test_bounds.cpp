#include "graphene/bounds.hpp"

#include <gtest/gtest.h>

#include "bloom/bloom_filter.hpp"
#include "chain/transaction.hpp"
#include "util/random.hpp"

namespace graphene::core {
namespace {

constexpr double kBeta = 239.0 / 240.0;

TEST(BoundAStar, AtLeastOneAndAboveMean) {
  EXPECT_GE(bound_a_star(0.0, kBeta), 1u);
  for (const double a : {1.0, 5.0, 20.0, 500.0}) {
    EXPECT_GT(static_cast<double>(bound_a_star(a, kBeta)), a);
  }
}

TEST(BoundAStar, RelativeSlackShrinksWithA) {
  const double slack_small =
      static_cast<double>(bound_a_star(5.0, kBeta)) / 5.0;
  const double slack_large =
      static_cast<double>(bound_a_star(500.0, kBeta)) / 500.0;
  EXPECT_GT(slack_small, slack_large);
  EXPECT_LT(slack_large, 1.5);
}

TEST(BoundAStar, HoldsEmpiricallyAtBeta) {
  // Theorem 1 validation (paper Fig. 15 foundation): pass m−n non-block
  // transactions through a Bloom filter at FPR a/(m−n); the realized false
  // positive count must be ≤ a* in ≥ β of trials.
  util::Rng rng(1);
  const std::uint64_t m_minus_n = 2000;
  const double a = 12.0;
  const double fpr = a / static_cast<double>(m_minus_n);
  const std::uint64_t a_star = bound_a_star(a, kBeta);

  constexpr int kTrials = 4000;
  int within = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t fps = 0;
    for (std::uint64_t i = 0; i < m_minus_n; ++i) fps += rng.chance(fpr) ? 1 : 0;
    within += fps <= a_star ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(within) / kTrials, kBeta - 0.005);
}

TEST(BoundXStar, NeverExceedsObservedPositivesOrBlockSize) {
  for (const std::uint64_t z : {10ULL, 100ULL, 900ULL}) {
    const std::uint64_t x_star = bound_x_star(z, 1000, 900, 0.01, kBeta);
    EXPECT_LE(x_star, z);
    EXPECT_LE(x_star, 900u);
  }
}

TEST(BoundXStar, ApproachesZWhenFprTiny) {
  // With a tiny FPR almost all z positives must be true positives.
  const std::uint64_t x_star = bound_x_star(500, 10000, 600, 1e-6, kBeta);
  EXPECT_GE(x_star, 495u);
}

TEST(BoundXStar, ZeroWhenEverythingPasses) {
  // FPR 1: all m pass, nothing can be inferred.
  const std::uint64_t x_star = bound_x_star(1000, 1000, 500, 1.0, kBeta);
  EXPECT_EQ(x_star, 0u);
}

TEST(BoundXStar, IsLowerBoundEmpirically) {
  // Theorem 2 validation (paper Fig. 19): x* ≤ x in at least β of trials.
  util::Rng rng(2);
  const std::uint64_t n = 200, m = 600;
  const std::uint64_t x_true = 120;  // receiver holds 60% of the block
  const double fpr = 0.02;

  constexpr int kTrials = 3000;
  int ok = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t y = 0;
    for (std::uint64_t i = 0; i < m - x_true; ++i) y += rng.chance(fpr) ? 1 : 0;
    const std::uint64_t z = x_true + y;
    ok += bound_x_star(z, m, n, fpr, kBeta) <= x_true ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(ok) / kTrials, kBeta - 0.005);
}

TEST(BoundYStar, IsUpperBoundEmpirically) {
  // Theorem 3 validation (paper Fig. 20): y* ≥ y in at least β of trials.
  util::Rng rng(3);
  const std::uint64_t n = 200, m = 600;
  const std::uint64_t x_true = 120;
  const double fpr = 0.02;

  constexpr int kTrials = 3000;
  int ok = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t y = 0;
    for (std::uint64_t i = 0; i < m - x_true; ++i) y += rng.chance(fpr) ? 1 : 0;
    const std::uint64_t z = x_true + y;
    const std::uint64_t x_star = bound_x_star(z, m, n, fpr, kBeta);
    const std::uint64_t y_star = bound_y_star(m, x_star, fpr, kBeta);
    ok += y_star >= y ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(ok) / kTrials, kBeta - 0.005);
}

TEST(BoundYStar, DegenerateCases) {
  EXPECT_GE(bound_y_star(100, 100, 0.1, kBeta), 1u);  // x* = m
  EXPECT_GE(bound_y_star(100, 0, 0.0, kBeta), 1u);    // zero FPR
}

TEST(BoundYStar, ScalesWithRemainingPool) {
  const std::uint64_t small = bound_y_star(1000, 900, 0.05, kBeta);
  const std::uint64_t large = bound_y_star(1000, 100, 0.05, kBeta);
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace graphene::core
