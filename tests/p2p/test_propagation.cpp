#include "p2p/propagation.hpp"

#include <gtest/gtest.h>

#include "chain/workload.hpp"

namespace graphene::p2p {
namespace {

chain::Block make_block(std::uint64_t n, util::Rng& rng) {
  std::vector<chain::Transaction> txs;
  txs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) txs.push_back(chain::make_random_transaction(rng));
  return chain::Block(chain::BlockHeader{}, std::move(txs));
}

TEST(Propagation, BlockReachesEveryPeer) {
  util::Rng rng(1);
  const chain::Block block = make_block(100, rng);
  const Topology topo = Topology::random_regular(20, 4, rng);
  PropagationConfig cfg;
  cfg.protocol = RelayProtocol::kGraphene;
  const PropagationResult r = propagate_block(block, topo, cfg, rng);
  EXPECT_GT(r.relays, 0u);
  EXPECT_GT(r.total_bytes, 0u);
  EXPECT_GT(r.t99_s, 0.0);
  EXPECT_LE(r.t50_s, r.t99_s);
}

TEST(Propagation, GrapheneUsesFarFewerBytesThanFullBlocks) {
  util::Rng rng(2);
  const chain::Block block = make_block(500, rng);
  const Topology topo = Topology::random_regular(15, 4, rng);

  PropagationConfig graphene_cfg;
  graphene_cfg.protocol = RelayProtocol::kGraphene;
  util::Rng r1(99);
  const PropagationResult graphene = propagate_block(block, topo, graphene_cfg, r1);

  PropagationConfig full_cfg;
  full_cfg.protocol = RelayProtocol::kFullBlocks;
  util::Rng r2(99);
  const PropagationResult full = propagate_block(block, topo, full_cfg, r2);

  EXPECT_LT(graphene.total_bytes * 10, full.total_bytes);
  EXPECT_LT(graphene.t99_s, full.t99_s);
}

TEST(Propagation, CompactBlocksBetweenGrapheneAndFull) {
  util::Rng rng(3);
  const chain::Block block = make_block(500, rng);
  const Topology topo = Topology::random_regular(15, 4, rng);
  std::size_t bytes[3] = {};
  const RelayProtocol protocols[] = {RelayProtocol::kGraphene,
                                     RelayProtocol::kCompactBlocks,
                                     RelayProtocol::kFullBlocks};
  for (int i = 0; i < 3; ++i) {
    PropagationConfig cfg;
    cfg.protocol = protocols[i];
    util::Rng r(42);
    bytes[static_cast<std::size_t>(i)] = propagate_block(block, topo, cfg, r).total_bytes;
  }
  EXPECT_LT(bytes[0], bytes[1]);
  EXPECT_LT(bytes[1], bytes[2]);
}

TEST(Propagation, IncompleteMempoolsStillPropagate) {
  util::Rng rng(4);
  const chain::Block block = make_block(200, rng);
  const Topology topo = Topology::random_regular(12, 4, rng);
  PropagationConfig cfg;
  cfg.protocol = RelayProtocol::kGraphene;
  cfg.mempool_coverage = 0.8;  // every peer missing ~20% of the block
  const PropagationResult r = propagate_block(block, topo, cfg, rng);
  EXPECT_GT(r.relays, 0u);
  // Missing txns flow as payload, so bytes exceed the fully-synced case.
  PropagationConfig synced = cfg;
  synced.mempool_coverage = 1.0;
  util::Rng r2(4);
  const PropagationResult full_sync = propagate_block(block, topo, synced, r2);
  EXPECT_GT(r.total_bytes, full_sync.total_bytes);
}

TEST(Propagation, LatencyScalesWithBandwidth) {
  util::Rng rng(5);
  const chain::Block block = make_block(300, rng);
  const Topology topo = Topology::random_regular(10, 3, rng);
  PropagationConfig fast;
  fast.protocol = RelayProtocol::kFullBlocks;
  fast.link.bandwidth_bps = 10e6;
  PropagationConfig slow = fast;
  slow.link.bandwidth_bps = 0.1e6;
  util::Rng ra(7), rb(7);
  const PropagationResult rfast = propagate_block(block, topo, fast, ra);
  const PropagationResult rslow = propagate_block(block, topo, slow, rb);
  EXPECT_GT(rslow.t99_s, rfast.t99_s);
}

TEST(Propagation, ProtocolNamesAreDistinct) {
  EXPECT_STRNE(protocol_name(RelayProtocol::kGraphene),
               protocol_name(RelayProtocol::kCompactBlocks));
  EXPECT_STRNE(protocol_name(RelayProtocol::kXthin),
               protocol_name(RelayProtocol::kFullBlocks));
}

}  // namespace
}  // namespace graphene::p2p
