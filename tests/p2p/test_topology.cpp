#include "p2p/topology.hpp"

#include <gtest/gtest.h>

namespace graphene::p2p {
namespace {

TEST(Topology, RandomRegularIsConnectedWithMinDegree) {
  util::Rng rng(1);
  for (const std::uint32_t nodes : {10u, 50u, 200u}) {
    const Topology t = Topology::random_regular(nodes, 8, rng);
    EXPECT_EQ(t.node_count(), nodes);
    EXPECT_TRUE(t.connected());
    for (std::uint32_t u = 0; u < nodes; ++u) {
      EXPECT_GE(t.neighbors(u).size(), std::min(8u, nodes - 1)) << "node " << u;
    }
  }
}

TEST(Topology, NeighborsAreSymmetric) {
  util::Rng rng(2);
  const Topology t = Topology::random_regular(30, 4, rng);
  for (std::uint32_t u = 0; u < t.node_count(); ++u) {
    for (const std::uint32_t v : t.neighbors(u)) {
      const auto& back = t.neighbors(v);
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
    }
  }
}

TEST(Topology, NoSelfLoops) {
  util::Rng rng(3);
  const Topology t = Topology::random_regular(40, 6, rng);
  for (std::uint32_t u = 0; u < t.node_count(); ++u) {
    for (const std::uint32_t v : t.neighbors(u)) EXPECT_NE(u, v);
  }
}

TEST(Topology, CliqueHasAllEdges) {
  const Topology t = Topology::clique(10);
  EXPECT_EQ(t.edge_count(), 45u);
  EXPECT_TRUE(t.connected());
  for (std::uint32_t u = 0; u < 10; ++u) EXPECT_EQ(t.neighbors(u).size(), 9u);
}

TEST(Topology, DegreeClampedForTinyNetworks) {
  util::Rng rng(4);
  const Topology t = Topology::random_regular(3, 8, rng);
  EXPECT_TRUE(t.connected());
  for (std::uint32_t u = 0; u < 3; ++u) EXPECT_LE(t.neighbors(u).size(), 4u);
}

}  // namespace
}  // namespace graphene::p2p
