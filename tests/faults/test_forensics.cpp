// Decode-failure forensics: every non-success termination — a forced
// undersized-IBLT decode failure, a ProtocolError, or a FaultyChannel abort —
// must leave behind a self-contained JSON capture that replay_capture()
// re-executes to the identical outcome, byte-comparing every regenerated
// message. The sweep at the bottom drives adversarial link profiles and
// checks the property on every failed trial, not just a hand-picked one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "graphene/forensics.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "obs/obs.hpp"
#include "testkit/faulty_channel.hpp"
#include "testkit/gen.hpp"
#include "util/bytes.hpp"

namespace graphene::core {
namespace {

namespace fs = std::filesystem;

// Raise the per-process dump cap before anything caches it (the limit is
// read once): the fault sweep below legitimately dumps many captures.
const bool kLimitRaised = [] {
  ::setenv("GRAPHENE_CAPTURE_LIMIT", "1000000", /*overwrite=*/1);
  return true;
}();

/// Points GRAPHENE_CAPTURE_DIR at a fresh temp directory for one test and
/// restores the previous value (CI sets its own) on the way out.
class ScopedCaptureDir {
 public:
  ScopedCaptureDir() {
    if (const char* prev = std::getenv("GRAPHENE_CAPTURE_DIR")) previous_ = prev;
    std::string tmpl = ::testing::TempDir() + "graphene_forensics_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr) << tmpl;
    dir_ = made != nullptr ? made : tmpl;
    ::setenv("GRAPHENE_CAPTURE_DIR", dir_.c_str(), /*overwrite=*/1);
  }

  ScopedCaptureDir(const ScopedCaptureDir&) = delete;
  ScopedCaptureDir& operator=(const ScopedCaptureDir&) = delete;

  ~ScopedCaptureDir() {
    if (previous_.has_value()) {
      ::setenv("GRAPHENE_CAPTURE_DIR", previous_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv("GRAPHENE_CAPTURE_DIR");
    }
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] const std::string& path() const noexcept { return dir_; }

  /// Files currently in the directory (non-consuming).
  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for ([[maybe_unused]] const fs::directory_entry& entry : fs::directory_iterator(dir_)) ++n;
    return n;
  }

  /// Capture files that appeared since the last call, lexicographic order.
  std::vector<fs::path> drain_new() {
    std::vector<fs::path> fresh;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
      if (seen_.insert(entry.path().string()).second) fresh.push_back(entry.path());
    }
    std::sort(fresh.begin(), fresh.end());
    return fresh;
  }

 private:
  std::string dir_;
  std::optional<std::string> previous_;
  std::set<std::string> seen_;
};

ForensicCapture load_capture(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << file;
  std::ostringstream text;
  text << in.rdbuf();
  ForensicCapture cap = ForensicCapture::from_json(text.str());
  // Self-contained: the capture survives its own JSON round trip exactly.
  EXPECT_EQ(cap.to_json(), ForensicCapture::from_json(cap.to_json()).to_json()) << file;
  return cap;
}

TEST(ForensicsEnv, CaptureDisabledWithoutDir) {
  std::optional<std::string> previous;
  if (const char* prev = std::getenv("GRAPHENE_CAPTURE_DIR")) previous = prev;
  ::unsetenv("GRAPHENE_CAPTURE_DIR");
  EXPECT_FALSE(capture_enabled());
  chain::Mempool pool;
  const ForensicCapture cap =
      make_capture("decode_failure", "p1_peel", pool, ProtocolConfig{}, 7);
  EXPECT_FALSE(maybe_dump_capture(cap).has_value());
  if (previous.has_value()) {
    ::setenv("GRAPHENE_CAPTURE_DIR", previous->c_str(), /*overwrite=*/1);
  }
}

TEST(ForensicsEnv, CaptureRoundTripsWithoutTelemetry) {
  // No registry attached: the capture still carries the session environment
  // (mempool, config scalars, salt) even though the event log is empty.
  util::Rng rng(11);
  chain::ScenarioSpec spec;
  spec.block_txns = 20;
  spec.extra_txns = 10;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  ProtocolConfig cfg;
  cfg.enable_pingpong = false;
  ForensicCapture cap =
      make_capture("protocol_error", "build_request", s.receiver_mempool, cfg, 99);
  cap.note = "unit";
  attach_block(cap, s.block, s.m);
  const ForensicCapture back = ForensicCapture::from_json(cap.to_json());
  EXPECT_EQ(back.kind, "protocol_error");
  EXPECT_EQ(back.stage, "build_request");
  EXPECT_EQ(back.note, "unit");
  EXPECT_EQ(back.salt, 99u);
  EXPECT_EQ(back.claimed_m, s.m);
  EXPECT_FALSE(back.enable_pingpong);
  EXPECT_TRUE(back.has_block);
  EXPECT_EQ(back.mempool.size(), s.receiver_mempool.size());
  EXPECT_EQ(back.block_txns.size(), s.block.tx_count());
}

#if GRAPHENE_OBS_ENABLED

TEST(Forensics, ForcedUndersizedIbltFailureReplaysExactly) {
  ScopedCaptureDir capture_dir;
  util::Rng rng(0x5eed);
  chain::ScenarioSpec spec;
  spec.block_txns = 120;
  spec.extra_txns = 200;
  spec.block_fraction_in_mempool = 0.5;  // 60 block txns genuinely missing
  const chain::Scenario s = chain::make_scenario(spec, rng);

  obs::Registry reg;
  ProtocolConfig cfg;
  cfg.obs = &reg;
  cfg.enable_pingpong = false;  // the undersized J must fail, not be rescued
  const std::uint64_t salt = 0x1badb002;
  Sender sender(s.block, salt);  // plain config: receiver-only capture
  ReceiveSession session(s.receiver_mempool, cfg);

  ReceiveOutcome out = session.receive_block(sender.encode(s.m).msg);
  ASSERT_EQ(out.status, ReceiveStatus::kNeedsProtocol2);

  // Adversarial downgrade: the receiver computed honest sizing, but the
  // request the sender answers asks for a ~2-item IBLT J while the
  // match-everything filter R hides all 60 missing transactions from the
  // direct-send path. The symmetric difference (>= 60 items) exceeds J's
  // cell count, so the peel cannot terminate successfully.
  GrapheneRequestMsg req = session.build_request();
  req.b = 1;
  req.y_star = 1;
  req.fpr_r = 1.0;
  req.filter_r = bloom::BloomFilter();  // degenerate: everything "passes R"
  out = session.complete(sender.serve(req));
  ASSERT_EQ(out.status, ReceiveStatus::kFailed);

  const std::vector<fs::path> files = capture_dir.drain_new();
  ASSERT_EQ(files.size(), 1u) << "exactly one decode_failure capture expected";
  EXPECT_EQ(reg.counter("graphene_captures_total", {{"kind", "decode_failure"}}).value(), 1u);
  const ForensicCapture cap = load_capture(files[0]);
  EXPECT_EQ(cap.kind, "decode_failure");
  EXPECT_EQ(cap.stage, "p2_peel");
  EXPECT_EQ(cap.salt, salt);
  EXPECT_FALSE(cap.enable_pingpong);
  EXPECT_TRUE(cap.has_error);
  EXPECT_EQ(cap.mempool.size(), s.receiver_mempool.size());
  ASSERT_FALSE(cap.events.empty());

  const ReplayReport rep = replay_capture(cap);
  EXPECT_TRUE(rep.ran);
  std::string notes;
  for (const std::string& n : rep.notes) notes += n + "; ";
  EXPECT_TRUE(rep.outcome_match) << notes;
  EXPECT_TRUE(rep.bytes_match) << notes;
  EXPECT_TRUE(rep.ok()) << notes;
  EXPECT_EQ(rep.recorded_outcome, "p2:failed");
  EXPECT_EQ(rep.replayed_outcome, "p2:failed");
}

TEST(Forensics, ChannelAbortCaptureReproducesDeserializeFailure) {
  ScopedCaptureDir capture_dir;
  util::Rng rng(0xabc);
  chain::ScenarioSpec spec;
  spec.block_txns = 40;
  spec.extra_txns = 30;
  const chain::Scenario s = chain::make_scenario(spec, rng);

  obs::Registry reg;
  ProtocolConfig cfg;
  cfg.obs = &reg;
  const std::uint64_t salt = 0xcafe;
  Sender sender(s.block, salt);

  // The link truncated the only grblk frame; the receiver never got a
  // parseable message. The driver records what the far side saw plus the
  // channel error, then snapshots the session environment.
  util::Bytes frame = sender.encode(s.m).msg.serialize();
  ASSERT_GT(frame.size(), 8u);
  frame.resize(frame.size() / 2);
  {
    util::ByteReader reader(frame);
    EXPECT_THROW((void)GrapheneBlockMsg::deserialize(reader), util::DeserializeError);
  }
  {
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kMsgReceived;
    e.label = "grblk";
    e.wire = frame;
    reg.recorder().record(std::move(e));
    obs::FlightEvent err;
    err.kind = obs::FlightEventKind::kError;
    err.label = "channel";
    reg.recorder().record(std::move(err));
  }
  const ForensicCapture built =
      make_capture("channel_abort", "channel", s.receiver_mempool, cfg, salt);
  const std::optional<std::string> path = maybe_dump_capture(built);
  ASSERT_TRUE(path.has_value());

  const ForensicCapture cap = load_capture(fs::path(*path));
  EXPECT_EQ(cap.kind, "channel_abort");
  const ReplayReport rep = replay_capture(cap);
  EXPECT_TRUE(rep.ran);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.recorded_outcome, "error:channel");
  EXPECT_EQ(rep.replayed_outcome, "error:channel");
}

// ---------------------------------------------------------------------------
// Adversarial sweep: every non-success termination leaves a replayable capture.
// ---------------------------------------------------------------------------

enum class End : std::uint8_t {
  kDecodedCorrect,
  kFailedOutcome,   ///< a kFailed decode — engine dumps decode_failure
  kProtocolError,   ///< typed error — engine dumps on the receiver side
  kAborted,         ///< link never delivered a parseable frame — driver dumps
  kWrongBlock,      ///< must never happen (covered by test_fault_injection)
};

constexpr int kMaxAttemptsPerStep = 3;

const char* receive_label(net::MessageType type) {
  switch (type) {
    case net::MessageType::kGrapheneBlock:
      return "grblk";
    case net::MessageType::kGrapheneResponse:
      return "grresp";
    case net::MessageType::kBlockTxn:
      return "blocktxn";
    default:
      return nullptr;
  }
}

/// The bounded-retry peer loop from test_fault_injection, extended to leave a
/// replayable trace on abort: when the last sender->receiver frame failed to
/// parse, that frame plus a "channel" error event go into the flight log, so
/// replay re-raises the identical DeserializeError from the identical bytes.
template <typename Msg>
std::optional<Msg> deliver(testkit::FaultyChannel& ch, net::Direction dir,
                           net::MessageType type, const Msg& msg, obs::Registry& reg) {
  const util::Bytes encoded = msg.serialize();
  util::Bytes last_corrupt;
  for (int attempt = 0; attempt < kMaxAttemptsPerStep; ++attempt) {
    std::vector<util::Bytes> buffers = ch.transmit(dir, type, encoded);
    if (attempt + 1 == kMaxAttemptsPerStep) {
      for (util::Bytes& held : ch.flush(dir)) buffers.push_back(std::move(held));
    }
    for (util::Bytes& b : buffers) {
      try {
        util::ByteReader reader(b);
        return Msg::deserialize(reader);
      } catch (const util::DeserializeError&) {
        if (dir == net::Direction::kSenderToReceiver) last_corrupt = std::move(b);
      }
    }
  }
  if (obs::FlightRecorder* fr = obs::flight(&reg)) {
    const char* label = receive_label(type);
    if (label != nullptr && !last_corrupt.empty()) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kMsgReceived;
      e.label = label;
      e.wire = std::move(last_corrupt);
      fr->record(std::move(e));
      obs::FlightEvent err;
      err.kind = obs::FlightEventKind::kError;
      err.label = "channel";
      fr->record(std::move(err));
    } else {
      obs::FlightEvent note;
      note.kind = obs::FlightEventKind::kNote;
      note.label = "link_abort";
      note.attrs = {{"dir", dir == net::Direction::kSenderToReceiver ? 0.0 : 1.0}};
      fr->record(std::move(note));
    }
  }
  return std::nullopt;
}

End run_with_forensics(const testkit::GenCase& c, const testkit::FaultSpec& faults,
                       const ScopedCaptureDir& dir) {
  const std::size_t baseline = dir.count();
  const chain::Scenario s = testkit::build_scenario(c);
  obs::Registry reg;
  ProtocolConfig cfg;
  cfg.obs = &reg;
  // The sender runs without telemetry so the capture is strictly the
  // receiver's view — receiver-only replay then has no sender-side events
  // whose regeneration could depend on what the faulty link delivered.
  Sender sender(s.block, c.salt);
  ReceiveSession session(s.receiver_mempool, cfg);
  testkit::FaultyChannel ch(faults);
  ch.attach_obs(&reg);

  // Engine dumps cover receiver-side kFailed outcomes and receiver-side
  // raises; everything else (aborts, sender-side raises like p2_serve
  // rejecting a bit-flipped request, a terminal still-needs-repair end) is
  // the driver's responsibility — it is the one party that can see the
  // receiver's mempool and the shared flight log.
  const auto ensure_capture = [&](std::string kind, std::string stage) {
    if (dir.count() == baseline) {
      const ForensicCapture cap = make_capture(std::move(kind), std::move(stage),
                                               s.receiver_mempool, cfg, c.salt);
      (void)maybe_dump_capture(cap);
    }
  };
  const auto abort_capture = [&] {
    ensure_capture("channel_abort", "channel");
    return End::kAborted;
  };

  try {
    const auto block = deliver(ch, net::Direction::kSenderToReceiver,
                               net::MessageType::kGrapheneBlock,
                               sender.encode(s.m).msg, reg);
    if (!block) return abort_capture();
    ReceiveOutcome out = session.receive_block(*block);

    if (out.status == ReceiveStatus::kNeedsProtocol2) {
      const auto request = deliver(ch, net::Direction::kReceiverToSender,
                                   net::MessageType::kGrapheneRequest,
                                   session.build_request(), reg);
      if (!request) return abort_capture();
      const auto response = deliver(ch, net::Direction::kSenderToReceiver,
                                    net::MessageType::kGrapheneResponse,
                                    sender.serve(*request), reg);
      if (!response) return abort_capture();
      out = session.complete(*response);
    }

    if (out.status == ReceiveStatus::kNeedsRepair) {
      const auto repair_req = deliver(ch, net::Direction::kReceiverToSender,
                                      net::MessageType::kGetBlockTxn,
                                      session.build_repair(), reg);
      if (!repair_req) return abort_capture();
      const auto repair = deliver(ch, net::Direction::kSenderToReceiver,
                                  net::MessageType::kBlockTxn,
                                  sender.serve_repair(*repair_req), reg);
      if (!repair) return abort_capture();
      out = session.complete_repair(*repair);
    }

    if (out.status != ReceiveStatus::kDecoded) {
      // kFailed dumped inside the engine; a terminal needs_protocol2 /
      // needs_repair (peer gave up) did not — cover it here.
      ensure_capture("decode_failure", to_string(out.status));
      return End::kFailedOutcome;
    }
    if (!out.merkle_ok || out.block_ids != s.block.tx_ids()) return End::kWrongBlock;
    return End::kDecodedCorrect;
  } catch (const ProtocolError& pe) {
    ensure_capture("protocol_error", pe.stage());
    return End::kProtocolError;
  } catch (const util::DeserializeError&) {
    ensure_capture("protocol_error", "channel");
    return End::kProtocolError;
  }
}

TEST(Forensics, EveryFaultInducedFailureYieldsReplayableCapture) {
  ScopedCaptureDir capture_dir;
  (void)capture_dir.drain_new();

  struct Profile {
    const char* name;
    testkit::FaultSpec spec;
  };
  std::vector<Profile> profiles;
  {
    testkit::FaultSpec f;
    f.bitflip = 0.3;
    profiles.push_back({"bitflip", f});
  }
  {
    testkit::FaultSpec f;
    f.truncate = 0.3;
    profiles.push_back({"truncate", f});
  }
  {
    testkit::FaultSpec f;
    f.drop = 0.1;
    f.duplicate = 0.15;
    f.reorder = 0.15;
    f.truncate = 0.15;
    f.bitflip = 0.15;
    profiles.push_back({"everything", f});
  }

  testkit::ScenarioDims dims;
  dims.min_block_txns = 1;
  dims.max_block_txns = 200;
  dims.max_extra_multiple = 2.0;

  std::uint64_t failures = 0;
  std::uint64_t replayed = 0;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    util::Rng rng(0xf0c5 + p);
    for (std::uint64_t i = 0; i < 25; ++i) {
      const testkit::GenCase c = testkit::gen_case(rng, dims);
      testkit::FaultSpec f = profiles[p].spec;
      f.seed = rng.next();
      const End end = run_with_forensics(c, f, capture_dir);
      const std::vector<fs::path> fresh = capture_dir.drain_new();
      const std::string where = std::string(profiles[p].name) + " trial " +
                                std::to_string(i) + " (" + testkit::describe_case(c) +
                                ", fault seed " + std::to_string(f.seed) + ")";

      ASSERT_NE(end, End::kWrongBlock) << where;
      if (end == End::kDecodedCorrect) {
        EXPECT_TRUE(fresh.empty()) << where << ": capture dumped on success";
        continue;
      }

      ++failures;
      ASSERT_FALSE(fresh.empty()) << where << ": failure left no capture";
      for (const fs::path& file : fresh) {
        const ForensicCapture cap = load_capture(file);
        EXPECT_FALSE(cap.kind.empty()) << where;
        const ReplayReport rep = replay_capture(cap);
        std::string notes;
        for (const std::string& n : rep.notes) notes += n + "; ";
        if (rep.ran) {
          ++replayed;
          EXPECT_TRUE(rep.outcome_match)
              << where << " " << file << ": " << rep.recorded_outcome << " vs "
              << rep.replayed_outcome << "; " << notes;
          EXPECT_TRUE(rep.bytes_match) << where << " " << file << ": " << notes;
          EXPECT_EQ(rep.recorded_outcome, rep.replayed_outcome) << where << " " << file;
        } else {
          // Nothing ever crossed the link (pure-drop abort before the first
          // parseable frame): the capture is still parseable and carries the
          // session environment, there is just no traffic to re-execute.
          EXPECT_EQ(rep.replayed_outcome, "nothing-replayed") << where << " " << file;
        }
      }
    }
  }
  // The property must not be vacuous: the profiles above have to break a
  // healthy share of trials, and most failures must be actively replayable.
  EXPECT_GT(failures, 10u);
  EXPECT_GT(replayed, 0u);
}

#endif  // GRAPHENE_OBS_ENABLED

}  // namespace
}  // namespace graphene::core
