// Fault injection for the generic set reconciler (reconcile::Host/Client).
//
// Same property as the block-relay suite: under any seeded fault schedule
// the one-way reconciliation terminates with either the host's exact set, a
// typed error, or a bounded abort — never a hang or a silently wrong set
// (the offer's xor-of-short-id checksum is the exactness guard).
#include <gtest/gtest.h>

#include "graphene/errors.hpp"
#include "reconcile/set_reconciler.hpp"
#include "testkit/faulty_channel.hpp"
#include "testkit/gen.hpp"
#include "testkit/stat_gate.hpp"
#include "util/wire_limits.hpp"

namespace graphene::reconcile {
namespace {

ItemSet random_set(util::Rng& rng, std::uint64_t count) {
  ItemSet out;
  out.reserve(count);
  while (out.size() < count) {
    ItemDigest d;
    for (auto& byte : d) byte = static_cast<std::uint8_t>(rng.next());
    out.insert(d);
  }
  return out;
}

enum class End : std::uint8_t { kExactSet, kTypedError, kAborted, kWrongSet };

constexpr int kMaxAttemptsPerStep = 3;

template <typename Msg>
std::optional<Msg> deliver(testkit::FaultyChannel& ch, net::Direction dir, const Msg& msg) {
  const util::Bytes encoded = msg.serialize();
  for (int attempt = 0; attempt < kMaxAttemptsPerStep; ++attempt) {
    std::vector<util::Bytes> buffers =
        ch.transmit(dir, net::MessageType::kInv, encoded);
    if (attempt + 1 == kMaxAttemptsPerStep) {
      for (util::Bytes& held : ch.flush(dir)) buffers.push_back(std::move(held));
    }
    for (const util::Bytes& b : buffers) {
      try {
        util::ByteReader reader(b);
        return Msg::deserialize(reader);
      } catch (const util::DeserializeError&) {
      }
    }
  }
  return std::nullopt;
}

End run_reconcile_through_faults(util::Rng& rng, const testkit::FaultSpec& faults) {
  const std::uint64_t host_count = 1 + rng.below(300);
  const std::uint64_t shared = rng.below(host_count + 1);
  const ItemSet host_items = random_set(rng, host_count);
  ItemSet client_items;
  for (const ItemDigest& d : host_items) {
    if (client_items.size() >= shared) break;
    client_items.insert(d);
  }
  for (const ItemDigest& d : random_set(rng, rng.below(300))) client_items.insert(d);

  const Host host(host_items, /*salt=*/rng.next());
  Client client(client_items);
  testkit::FaultyChannel ch(faults);

  const auto classify = [&](const Outcome& out) {
    if (out.status != Outcome::Status::kComplete) return End::kTypedError;
    return out.host_set == host.items() ? End::kExactSet : End::kWrongSet;
  };

  try {
    const auto offer = deliver(ch, net::Direction::kSenderToReceiver,
                               host.make_offer(client_items.size()));
    if (!offer) return End::kAborted;
    Outcome out = client.absorb(*offer);

    if (out.status == Outcome::Status::kNeedsRequest) {
      const auto request =
          deliver(ch, net::Direction::kReceiverToSender, client.make_request());
      if (!request) return End::kAborted;
      const auto response =
          deliver(ch, net::Direction::kSenderToReceiver, host.serve(*request));
      if (!response) return End::kAborted;
      out = client.complete(*response);
    }

    if (out.status == Outcome::Status::kNeedsFetch) {
      const auto fetch_req =
          deliver(ch, net::Direction::kReceiverToSender, client.make_fetch());
      if (!fetch_req) return End::kAborted;
      const auto fetch =
          deliver(ch, net::Direction::kSenderToReceiver, host.serve_fetch(*fetch_req));
      if (!fetch) return End::kAborted;
      out = client.complete_fetch(*fetch);
    }

    // Any state still short of kComplete after the protocol's rounds is a
    // bounded, reported failure — the checksum refused to certify.
    return classify(out);
  } catch (const core::ProtocolError&) {
    return End::kTypedError;
  } catch (const util::DeserializeError&) {
    return End::kTypedError;
  }
}

TEST(ReconcileFaults, TerminatesWithExactSetOrTypedFailure) {
  const double kProfiles[][5] = {
      // drop, duplicate, reorder, truncate, bitflip
      {0.15, 0.0, 0.0, 0.0, 0.0},
      {0.0, 0.3, 0.3, 0.0, 0.0},
      {0.0, 0.0, 0.0, 0.25, 0.25},
      {0.08, 0.15, 0.15, 0.12, 0.12},
  };
  for (const auto& p : kProfiles) {
    testkit::StatGateSpec spec;
    spec.name = "reconcile_faults";
    spec.trials = 50;
    spec.min_rate = 0.0;
    std::uint64_t wrong = 0;
    const testkit::GateResult r =
        testkit::StatGate(spec).run([&](util::Rng& rng, std::uint64_t) {
          testkit::FaultSpec f;
          f.drop = p[0];
          f.duplicate = p[1];
          f.reorder = p[2];
          f.truncate = p[3];
          f.bitflip = p[4];
          f.seed = rng.next();
          const End end = run_reconcile_through_faults(rng, f);
          if (end == End::kWrongSet) ++wrong;
          return end != End::kWrongSet;
        });
    GRAPHENE_ASSERT_GATE(r);
    ASSERT_EQ(wrong, 0u);
  }
}

TEST(ReconcileFaults, CleanLinkReconcilesExactly) {
  testkit::StatGateSpec spec;
  spec.name = "reconcile_control";
  spec.trials = 60;
  spec.min_rate = 0.95;
  const testkit::GateResult r =
      testkit::StatGate(spec).run([&](util::Rng& rng, std::uint64_t) {
        return run_reconcile_through_faults(rng, testkit::FaultSpec{}) ==
               End::kExactSet;
      });
  GRAPHENE_EXPECT_GATE(r);
}

TEST(ReconcileFaults, HostRejectsOversizedRequestSizing) {
  // Regression guard for the Host::serve revalidation: a request whose
  // fields pass the individual wire caps but whose b + y* would allocate an
  // IBLT beyond kMaxIbltCells must throw a typed error, not allocate.
  util::Rng rng(91);
  const Host host(random_set(rng, 20), 5);
  Request req;
  req.candidate_count = 10;
  req.b = util::wire::kMaxSizingParam;
  req.y_star = util::wire::kMaxSizingParam;
  req.fpr_r = 0.1;
  req.filter = bloom::BloomFilter(10, 0.1, 1);
  EXPECT_THROW(host.serve(req), core::ProtocolError);

  Request nan_req;
  nan_req.candidate_count = 10;
  nan_req.b = 1;
  nan_req.y_star = 1;
  nan_req.fpr_r = 0.0;  // out of (0, 1]
  nan_req.filter = bloom::BloomFilter(10, 0.1, 1);
  EXPECT_THROW(host.serve(nan_req), core::ProtocolError);
}

}  // namespace
}  // namespace graphene::reconcile
