// Fault injection for the wire-level backend drivers, rateless included.
//
// Property: under any seeded fault schedule (drop / duplicate / reorder /
// truncate / bitflip), a backend session terminates within the round cap
// with either the host's exact set, a typed error, or a bounded abort —
// never a hang and never a silently wrong set. For the rateless backend the
// exactness guard is the stream checksum (xor of per-item checksums); for
// Graphene it is the offer's short-ID checksum.
#include <gtest/gtest.h>

#include <optional>

#include "graphene/errors.hpp"
#include "reconcile/rateless_backend.hpp"
#include "reconcile/set_reconciler.hpp"
#include "testkit/faulty_channel.hpp"
#include "testkit/stat_gate.hpp"
#include "util/wire_limits.hpp"

namespace graphene::reconcile {
namespace {

ItemSet random_set(util::Rng& rng, std::uint64_t count) {
  ItemSet out;
  out.reserve(count);
  while (out.size() < count) {
    ItemDigest d;
    for (auto& byte : d) byte = static_cast<std::uint8_t>(rng.next());
    out.insert(d);
  }
  return out;
}

enum class End : std::uint8_t { kExactSet, kTypedError, kAborted, kWrongSet };

constexpr int kMaxAttemptsPerStep = 3;

/// Pushes one WireMsg payload through the faulty link; returns the first
/// delivered (possibly corrupted) payload, re-typed as the original message
/// type. Retries a few times so pure drops do not dominate the sweep.
std::optional<WireMsg> deliver(testkit::FaultyChannel& ch, net::Direction dir,
                               const WireMsg& msg) {
  for (int attempt = 0; attempt < kMaxAttemptsPerStep; ++attempt) {
    std::vector<util::Bytes> buffers = ch.transmit(dir, msg.type, msg.payload);
    if (attempt + 1 == kMaxAttemptsPerStep) {
      for (util::Bytes& held : ch.flush(dir)) buffers.push_back(std::move(held));
    }
    if (!buffers.empty()) {
      WireMsg out;
      out.type = msg.type;
      out.payload = std::move(buffers.front());
      return out;
    }
  }
  return std::nullopt;
}

End run_backend_through_faults(util::Rng& rng, core::ReconcileBackend backend,
                               const testkit::FaultSpec& faults) {
  const std::uint64_t host_count = 1 + rng.below(300);
  const std::uint64_t shared = rng.below(host_count + 1);
  const ItemSet host_items = random_set(rng, host_count);
  ItemSet client_items;
  for (const ItemDigest& d : host_items) {
    if (client_items.size() >= shared) break;
    client_items.insert(d);
  }
  for (const ItemDigest& d : random_set(rng, rng.below(300))) client_items.insert(d);

  core::ProtocolConfig cfg;
  cfg.reconcile_backend = backend;
  Host host(host_items, rng.next(), cfg);
  Client client(client_items, cfg);
  testkit::FaultyChannel ch(faults);

  try {
    auto delivered = deliver(ch, net::Direction::kSenderToReceiver,
                             host.open(client_items.size()));
    if (!delivered) return End::kAborted;
    Outcome out = client.absorb_wire(*delivered);

    // The driver loop with the structural round cap — termination holds
    // even if a corrupted message convinces a backend it needs more.
    std::uint32_t rounds = 0;
    while (needs_more(out.status) && rounds < cfg.reconcile_round_cap) {
      ++rounds;
      const auto request =
          deliver(ch, net::Direction::kReceiverToSender, client.next_request());
      if (!request) return End::kAborted;
      const auto response =
          deliver(ch, net::Direction::kSenderToReceiver, host.serve_wire(*request));
      if (!response) return End::kAborted;
      out = client.absorb_wire(*response);
    }

    if (out.status != Outcome::Status::kComplete) return End::kTypedError;
    return out.host_set == host_items ? End::kExactSet : End::kWrongSet;
  } catch (const core::ProtocolError&) {
    return End::kTypedError;
  } catch (const util::DeserializeError&) {
    return End::kTypedError;
  }
}

class BackendFaultSweep
    : public ::testing::TestWithParam<core::ReconcileBackend> {};

TEST_P(BackendFaultSweep, TerminatesWithExactSetOrTypedFailure) {
  const double kProfiles[][5] = {
      // drop, duplicate, reorder, truncate, bitflip
      {0.15, 0.0, 0.0, 0.0, 0.0},
      {0.0, 0.3, 0.3, 0.0, 0.0},
      {0.0, 0.0, 0.0, 0.25, 0.25},
      {0.08, 0.15, 0.15, 0.12, 0.12},
  };
  for (const auto& p : kProfiles) {
    testkit::StatGateSpec spec;
    spec.name = "backend_faults";
    spec.trials = 40;
    spec.min_rate = 0.0;
    std::uint64_t wrong = 0;
    const testkit::GateResult r =
        testkit::StatGate(spec).run([&](util::Rng& rng, std::uint64_t) {
          testkit::FaultSpec f;
          f.drop = p[0];
          f.duplicate = p[1];
          f.reorder = p[2];
          f.truncate = p[3];
          f.bitflip = p[4];
          f.seed = rng.next();
          const End end = run_backend_through_faults(rng, GetParam(), f);
          if (end == End::kWrongSet) ++wrong;
          return end != End::kWrongSet;
        });
    GRAPHENE_ASSERT_GATE(r);
    ASSERT_EQ(wrong, 0u);
  }
}

TEST_P(BackendFaultSweep, CleanLinkReconcilesExactly) {
  testkit::StatGateSpec spec;
  spec.name = "backend_faults_control";
  spec.trials = 40;
  spec.min_rate = 0.9;
  const testkit::GateResult r =
      testkit::StatGate(spec).run([&](util::Rng& rng, std::uint64_t) {
        return run_backend_through_faults(rng, GetParam(), testkit::FaultSpec{}) ==
               End::kExactSet;
      });
  GRAPHENE_EXPECT_GATE(r);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendFaultSweep,
                         ::testing::Values(core::ReconcileBackend::kGraphene,
                                           core::ReconcileBackend::kRatelessIblt),
                         [](const auto& info) {
                           return info.param == core::ReconcileBackend::kGraphene
                                      ? "Graphene"
                                      : "RatelessIblt";
                         });

TEST(RatelessFaults, TruncatedChunkIsTypedErrorNotCrash) {
  util::Rng rng(17);
  const ItemSet host_items = random_set(rng, 100);
  const ItemSet client_items = random_set(rng, 80);
  core::ProtocolConfig cfg;
  cfg.reconcile_backend = core::ReconcileBackend::kRatelessIblt;
  Host host(host_items, rng.next(), cfg);
  const WireMsg opening = host.open(client_items.size());
  const std::size_t cuts[] = {0, 1, 8, 24, opening.payload.size() - 1};
  for (const std::size_t keep : cuts) {
    Client client(client_items, cfg);
    WireMsg cut = opening;
    cut.payload.resize(keep);
    EXPECT_THROW((void)client.absorb_wire(cut), util::DeserializeError) << keep;
  }
}

TEST(RatelessFaults, HostStreamBudgetStopsInfiniteSymbolRequests) {
  // A client (or attacker) endlessly asking for more symbols must hit the
  // host's stream budget as a typed error, not spin the encoder forever.
  util::Rng rng(18);
  const ItemSet host_items = random_set(rng, 50);
  core::ProtocolConfig cfg;
  cfg.reconcile_backend = core::ReconcileBackend::kRatelessIblt;
  Host host(host_items, rng.next(), cfg);
  (void)host.open(50);

  bool refused = false;
  std::uint64_t cursor = 0;
  for (int round = 0; round < 64; ++round) {
    RatelessNeed need;
    need.next_index = cursor;
    need.count = 1024;
    WireMsg req;
    req.type = net::MessageType::kRatelessNeed;
    req.payload = need.serialize();
    try {
      const WireMsg chunk = host.serve_wire(req);
      (void)chunk;
      cursor += need.count;
    } catch (const core::ProtocolError&) {
      refused = true;
      break;
    }
  }
  EXPECT_TRUE(refused);
}

}  // namespace
}  // namespace graphene::reconcile
