// Protocol robustness under an adversarial link.
//
// Property: for ANY seeded fault schedule (drop / truncate / duplicate /
// reorder / bitflip) the Sender/ReceiveSession pair terminates in a bounded
// number of steps with one of: a decoded block that matches the sender's
// (Merkle-checked), a typed error (core::ProtocolError or
// util::DeserializeError), or a clean abort after bounded retries. Never a
// hang, a crash, or a silently wrong block. The driver below is the bounded
// retry loop a real peer would run; every trial reproduces from the gate
// seed.
#include <gtest/gtest.h>

#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "testkit/faulty_channel.hpp"
#include "testkit/gen.hpp"
#include "testkit/stat_gate.hpp"
#include "util/wire_limits.hpp"

namespace graphene {
namespace {

enum class End : std::uint8_t {
  kDecodedCorrect,  ///< kDecoded with Merkle pass and the sender's exact ids
  kTypedError,      ///< ProtocolError / DeserializeError / kFailed outcome
  kAborted,         ///< link never delivered a parseable message in bounds
  kWrongBlock,      ///< the one outcome that must never happen
};

constexpr int kMaxAttemptsPerStep = 3;

/// Sends `msg` through the channel until one delivered buffer parses as a
/// `Msg`, retransmitting on silence up to kMaxAttemptsPerStep, flushing
/// held-back messages before giving up. Parse failures of individual
/// buffers are tolerated (a real peer skips garbage frames); returns
/// nullopt when the link stayed dead.
template <typename Msg>
std::optional<Msg> deliver(testkit::FaultyChannel& ch, net::Direction dir,
                           net::MessageType type, const Msg& msg) {
  const util::Bytes encoded = msg.serialize();
  for (int attempt = 0; attempt < kMaxAttemptsPerStep; ++attempt) {
    std::vector<util::Bytes> buffers = ch.transmit(dir, type, encoded);
    if (attempt + 1 == kMaxAttemptsPerStep) {
      for (util::Bytes& held : ch.flush(dir)) buffers.push_back(std::move(held));
    }
    for (const util::Bytes& b : buffers) {
      try {
        util::ByteReader reader(b);
        return Msg::deserialize(reader);
      } catch (const util::DeserializeError&) {
        // corrupted frame — skip it, maybe a later delivery parses
      }
    }
  }
  return std::nullopt;
}

End run_through_faults(const testkit::GenCase& c, const testkit::FaultSpec& faults) {
  const chain::Scenario s = testkit::build_scenario(c);
  core::Sender sender(s.block, c.salt);
  core::ReceiveSession session = core::Receiver(s.receiver_mempool).session();
  testkit::FaultyChannel ch(faults);

  const auto classify = [&](const core::ReceiveOutcome& out) {
    if (out.status != core::ReceiveStatus::kDecoded) return End::kTypedError;
    if (!out.merkle_ok || out.block_ids != s.block.tx_ids()) return End::kWrongBlock;
    return End::kDecodedCorrect;
  };

  try {
    const auto block = deliver(ch, net::Direction::kSenderToReceiver,
                               net::MessageType::kGrapheneBlock,
                               sender.encode(s.m).msg);
    if (!block) return End::kAborted;
    core::ReceiveOutcome out = session.receive_block(*block);

    if (out.status == core::ReceiveStatus::kNeedsProtocol2) {
      const auto request = deliver(ch, net::Direction::kReceiverToSender,
                                   net::MessageType::kGrapheneRequest,
                                   session.build_request());
      if (!request) return End::kAborted;
      const auto response = deliver(ch, net::Direction::kSenderToReceiver,
                                    net::MessageType::kGrapheneResponse,
                                    sender.serve(*request));
      if (!response) return End::kAborted;
      out = session.complete(*response);
    }

    if (out.status == core::ReceiveStatus::kNeedsRepair) {
      const auto repair_req = deliver(ch, net::Direction::kReceiverToSender,
                                      net::MessageType::kGetBlockTxn,
                                      session.build_repair());
      if (!repair_req) return End::kAborted;
      const auto repair = deliver(ch, net::Direction::kSenderToReceiver,
                                  net::MessageType::kBlockTxn,
                                  sender.serve_repair(*repair_req));
      if (!repair) return End::kAborted;
      out = session.complete_repair(*repair);
    }

    return classify(out);
  } catch (const core::ProtocolError&) {
    return End::kTypedError;
  } catch (const util::DeserializeError&) {
    return End::kTypedError;
  }
}

struct FaultProfile {
  const char* name;
  testkit::FaultSpec spec;
};

std::vector<FaultProfile> profiles() {
  std::vector<FaultProfile> out;
  {
    testkit::FaultSpec f;
    f.drop = 0.15;
    out.push_back({"drop", f});
  }
  {
    testkit::FaultSpec f;
    f.truncate = 0.25;
    out.push_back({"truncate", f});
  }
  {
    testkit::FaultSpec f;
    f.bitflip = 0.25;
    out.push_back({"bitflip", f});
  }
  {
    testkit::FaultSpec f;
    f.duplicate = 0.3;
    f.reorder = 0.3;
    out.push_back({"dup_reorder", f});
  }
  {
    testkit::FaultSpec f;
    f.drop = 0.08;
    f.duplicate = 0.15;
    f.reorder = 0.15;
    f.truncate = 0.12;
    f.bitflip = 0.12;
    out.push_back({"everything", f});
  }
  return out;
}

TEST(FaultInjection, ProtocolAlwaysTerminatesCleanly) {
  for (const FaultProfile& profile : profiles()) {
    testkit::StatGateSpec spec;
    spec.name = std::string("faults_") + profile.name;
    spec.trials = 60;
    spec.min_rate = 0.0;  // the property is absolute; rate not at issue
    std::uint64_t wrong = 0;
    testkit::ScenarioDims dims;
    dims.min_block_txns = 1;
    dims.max_block_txns = 300;
    dims.max_extra_multiple = 3.0;
    const testkit::GateResult r =
        testkit::StatGate(spec).run([&](util::Rng& rng, std::uint64_t i) {
          const testkit::GenCase c = testkit::gen_case(rng, dims);
          testkit::FaultSpec f = profile.spec;
          f.seed = rng.split(0xfau).next() + i;
          const End end = run_through_faults(c, f);
          if (end == End::kWrongBlock) ++wrong;
          return end != End::kWrongBlock;
        });
    GRAPHENE_ASSERT_GATE(r);
    ASSERT_EQ(wrong, 0u) << "silent wrong block under profile " << profile.name;
  }
}

TEST(FaultInjection, CleanLinkDecodesAtFullRate) {
  // Control: the same driver with a fault-free schedule must essentially
  // always land in kDecodedCorrect — proves the driver itself isn't the
  // source of aborts in the faulted runs.
  testkit::StatGateSpec spec;
  spec.name = "faults_control";
  spec.trials = 80;
  spec.min_rate = 0.95;
  testkit::ScenarioDims dims;
  dims.min_block_txns = 1;
  dims.max_block_txns = 300;
  const testkit::GateResult r =
      testkit::StatGate(spec).run([&](util::Rng& rng, std::uint64_t) {
        const testkit::GenCase c = testkit::gen_case(rng, dims);
        return run_through_faults(c, testkit::FaultSpec{}) == End::kDecodedCorrect;
      });
  GRAPHENE_EXPECT_GATE(r);
}

TEST(FaultInjection, HeavyLossStillNeverHangsOrCorrupts) {
  testkit::StatGateSpec spec;
  spec.name = "faults_heavy_loss";
  spec.trials = 40;
  spec.min_rate = 0.0;
  testkit::ScenarioDims dims;
  dims.max_block_txns = 100;
  std::uint64_t aborted = 0;
  const testkit::GateResult r =
      testkit::StatGate(spec).run([&](util::Rng& rng, std::uint64_t) {
        const testkit::GenCase c = testkit::gen_case(rng, dims);
        testkit::FaultSpec f;
        f.drop = 0.7;
        f.seed = rng.next();
        const End end = run_through_faults(c, f);
        if (end == End::kAborted) ++aborted;
        return end != End::kWrongBlock;
      });
  GRAPHENE_ASSERT_GATE(r);
  // At 70% loss the bounded-retry driver must actually give up sometimes —
  // otherwise the abort path is dead code and the property above is vacuous.
  EXPECT_GT(aborted, 0u);
}

TEST(FaultInjection, SenderRejectsOversizedJointSizing) {
  // The b + y* sum guard in Sender::serve: each field passes its individual
  // wire cap but the pair would size an IBLT beyond kMaxIbltCells.
  util::Rng rng(71);
  chain::ScenarioSpec spec;
  spec.block_txns = 50;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  core::Sender sender(s.block, 7);
  core::GrapheneRequestMsg req;
  req.z = 10;
  req.b = util::wire::kMaxSizingParam;
  req.y_star = util::wire::kMaxSizingParam;
  req.fpr_r = 0.1;
  req.filter_r = bloom::BloomFilter(10, 0.1, 1);
  EXPECT_THROW(sender.serve(req), core::ProtocolError);
}

}  // namespace
}  // namespace graphene
