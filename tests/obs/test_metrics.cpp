// Telemetry subsystem: counter/gauge/histogram semantics, JSON round-trip,
// trace spans, and Registry thread-safety.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace graphene::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, BucketIndexAndBounds) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), 64u);
  // Inclusive upper bounds: bucket i covers (upper(i-1), upper(i)].
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(64), UINT64_MAX);
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 5ull, 1000ull, (1ull << 40)}) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_upper(i)) << v;
    if (i > 0) EXPECT_GT(v, Histogram::bucket_upper(i - 1)) << v;
  }
}

TEST(Histogram, StatsTrackSamples) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  for (std::uint64_t v : {7ull, 3ull, 100ull, 0ull}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 27.5);
  EXPECT_EQ(h.bucket_count(0), 1u);  // the 0 sample
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(3)), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(7)), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(100)), 1u);
}

TEST(Histogram, QuantileApproximatesFromBuckets) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  // Quantiles are bucket upper bounds: correct order of magnitude, never
  // below the true value's bucket lower bound, capped at the observed max.
  EXPECT_LE(h.quantile(0.0), 1u);
  EXPECT_GE(h.quantile(0.5), 32u);
  EXPECT_LE(h.quantile(0.5), 63u);
  EXPECT_EQ(h.quantile(1.0), 100u);  // capped at max()
}

TEST(Registry, SameNameAndLabelsShareAMetric) {
  Registry reg;
  Counter& a = reg.counter("relay_total", {{"proto", "p1"}});
  Counter& b = reg.counter("relay_total", {{"proto", "p1"}});
  Counter& other = reg.counter("relay_total", {{"proto", "p2"}});
  a.inc();
  b.inc();
  other.inc();
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(other.value(), 1u);
}

TEST(Registry, LabelOrderIsCanonicalized) {
  Registry reg;
  Counter& a = reg.counter("m", {{"x", "1"}, {"y", "2"}});
  Counter& b = reg.counter("m", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, FindDoesNotCreate) {
  Registry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  reg.counter("yes").inc();
  ASSERT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.find_counter("yes")->value(), 1u);
  EXPECT_EQ(reg.find_histogram("yes"), nullptr);  // type-separated namespaces
}

TEST(Registry, JsonRoundTrip) {
  Registry reg;
  reg.counter("runs_total", {{"result", "ok"}}).inc(3);
  reg.gauge("fpr_observed").set(0.125);
  Histogram& h = reg.histogram("stage_ns", {{"stage", "p1_peel"}});
  h.observe(5);
  h.observe(900);

  const json::Value doc = json::parse(reg.to_json());
  ASSERT_TRUE(doc.is_object());

  const json::Value& counters = doc.at("counters");
  ASSERT_EQ(counters.array.size(), 1u);
  EXPECT_EQ(counters.array[0].at("name").string, "runs_total");
  EXPECT_EQ(counters.array[0].at("labels").at("result").string, "ok");
  EXPECT_DOUBLE_EQ(counters.array[0].at("value").number, 3.0);

  const json::Value& gauges = doc.at("gauges");
  ASSERT_EQ(gauges.array.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges.array[0].at("value").number, 0.125);

  const json::Value& hists = doc.at("histograms");
  ASSERT_EQ(hists.array.size(), 1u);
  const json::Value& hist = hists.array[0];
  EXPECT_EQ(hist.at("labels").at("stage").string, "p1_peel");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 905.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 5.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 900.0);
  ASSERT_EQ(hist.at("buckets").array.size(), 2u);  // zero buckets elided

  // The quantile summary block rides on every histogram entry and must agree
  // with the Histogram's own estimator.
  EXPECT_DOUBLE_EQ(hist.at("mean").number, h.mean());
  EXPECT_DOUBLE_EQ(hist.at("p50").number, static_cast<double>(h.quantile(0.50)));
  EXPECT_DOUBLE_EQ(hist.at("p95").number, static_cast<double>(h.quantile(0.95)));
  EXPECT_DOUBLE_EQ(hist.at("p99").number, static_cast<double>(h.quantile(0.99)));
  EXPECT_LE(hist.at("p50").number, hist.at("p99").number);
}

TEST(Registry, ThreadSafeConcurrentUpdates) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        // Lookup every iteration: exercises the interning mutex as well as
        // the lock-free update path.
        reg.counter("contended").inc();
        reg.histogram("contended_ns").observe(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("contended").value(), kThreads * kIters);
  EXPECT_EQ(reg.histogram("contended_ns").count(), kThreads * kIters);
}

TEST(Json, EscapedStringsRoundTrip) {
  const std::string ugly = "quote\" backslash\\ newline\n tab\t ctrl\x01 done";
  json::Writer w;
  w.begin_object();
  w.key("s");
  w.string(ugly);
  w.end_object();
  const json::Value doc = json::parse(w.take());
  EXPECT_EQ(doc.at("s").string, ugly);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)json::parse("{"), json::ParseError);
  EXPECT_THROW((void)json::parse("[1,]"), json::ParseError);
  EXPECT_THROW((void)json::parse("{} extra"), json::ParseError);
  EXPECT_THROW((void)json::parse("tru"), json::ParseError);
}

TEST(Json, NumbersAndNesting) {
  const json::Value doc = json::parse(R"({"a":[1,2.5,-3,true,null],"b":{"c":1e3}})");
  ASSERT_EQ(doc.at("a").array.size(), 5u);
  EXPECT_DOUBLE_EQ(doc.at("a").array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(doc.at("a").array[2].number, -3.0);
  EXPECT_TRUE(doc.at("a").array[3].boolean);
  EXPECT_TRUE(doc.at("a").array[4].is_null());
  EXPECT_DOUBLE_EQ(doc.at("b").at("c").number, 1000.0);
}

TEST(TraceSink, RecordsInOrderWithSequenceNumbers) {
  TraceSink sink;
  TraceSpan a;
  a.stage = "p1_optimize";
  TraceSpan b;
  b.stage = "p1_peel";
  b.attrs.emplace_back("peeled", 12.0);
  sink.record(a);
  sink.record(b);

  EXPECT_EQ(sink.size(), 2u);
  const std::vector<std::string> stages = sink.stages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0], "p1_optimize");
  EXPECT_EQ(stages[1], "p1_peel");
  EXPECT_EQ(sink.spans()[0].seq, 0u);
  EXPECT_EQ(sink.spans()[1].seq, 1u);

  TraceSpan found;
  ASSERT_TRUE(sink.find("p1_peel", &found));
  EXPECT_DOUBLE_EQ(found.attr("peeled"), 12.0);
  EXPECT_DOUBLE_EQ(found.attr("absent", -1.0), -1.0);
  EXPECT_FALSE(sink.find("nope"));
}

TEST(TraceSink, JsonlLinesParse) {
  TraceSink sink;
  TraceSpan s;
  s.stage = "encode";
  s.dur_ns = 123;
  s.attrs.emplace_back("n", 2000.0);
  sink.record(s);
  sink.record(s);

  std::ostringstream out;
  sink.write_jsonl(out);
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const json::Value doc = json::parse(line);
    EXPECT_EQ(doc.at("stage").string, "encode");
    EXPECT_DOUBLE_EQ(doc.at("dur_ns").number, 123.0);
    EXPECT_DOUBLE_EQ(doc.at("n").number, 2000.0);
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(ScopedSpan, RecordsSpanAndStageHistogram) {
  Registry reg;
  {
    ScopedSpan span(&reg, "unit_stage");
    span.attr("x", 7);
  }
#if GRAPHENE_OBS_ENABLED
  TraceSpan got;
  ASSERT_TRUE(reg.trace().find("unit_stage", &got));
  EXPECT_DOUBLE_EQ(got.attr("x"), 7.0);
  const Histogram* h = reg.find_histogram("graphene_stage_ns", {{"stage", "unit_stage"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
#else
  EXPECT_EQ(reg.trace().size(), 0u);
#endif
}

TEST(ScopedSpan, NullRegistryIsANoOp) {
  ScopedSpan span(nullptr, "ignored");
  span.attr("x", 1);
  EXPECT_FALSE(span.enabled());
}

TEST(ScopedTimer, ObservesElapsedNanoseconds) {
  Histogram h;
  {
    ScopedTimer t(&h);
    (void)t;
  }
  EXPECT_EQ(h.count(), 1u);
  ScopedTimer disabled(nullptr);
  EXPECT_EQ(disabled.elapsed_ns(), 0u);
}

TEST(ScopedTimer, FakeClockGivesExactDurations) {
  // Real-clock duration asserts are the classic flaky test; the fake clock
  // makes the observed value exact instead of "hopefully small".
  ScopedFakeClock clock(/*start_ns=*/1000);
  Histogram h;
  {
    ScopedTimer t(&h);
    clock.advance(250);
    EXPECT_EQ(t.elapsed_ns(), 250u);
    clock.advance(4750);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 5000u);
}

TEST(FakeClock, OverridesAndRestoresMonotonicNs) {
  const std::uint64_t real_before = monotonic_ns();
  {
    ScopedFakeClock clock(42);
    EXPECT_EQ(monotonic_ns(), 42u);
    clock.set(100);
    EXPECT_EQ(monotonic_ns(), 100u);
    clock.advance(11);
    EXPECT_EQ(monotonic_ns(), 111u);
    EXPECT_EQ(clock.now(), 111u);
  }
  // Destruction restores the real clock, which keeps moving forward.
  EXPECT_GE(monotonic_ns(), real_before);
}

}  // namespace
}  // namespace graphene::obs
