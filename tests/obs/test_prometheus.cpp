// Prometheus text exposition (format 0.0.4): structure, cumulative buckets,
// escaping, and a full format round-trip through a minimal parser.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace graphene::obs {
namespace {

struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Minimal parser for the subset of the text format the Registry emits.
/// Throws via ADD_FAILURE-equivalent asserts: any line that does not parse
/// is a format bug.
struct PromDoc {
  std::map<std::string, std::string> types;  // family -> counter|gauge|histogram
  std::vector<PromSample> samples;
};

PromDoc parse_prometheus(const std::string& text) {
  PromDoc doc;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hdr(line);
      std::string hash, kw, family, type;
      hdr >> hash >> kw >> family >> type;
      EXPECT_EQ(hash, "#");
      EXPECT_EQ(kw, "TYPE");
      EXPECT_FALSE(family.empty());
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram") << line;
      doc.types[family] = type;
      continue;
    }
    PromSample s;
    std::size_t i = 0;
    while (i < line.size() && (std::isalnum(static_cast<unsigned char>(line[i])) ||
                               line[i] == '_' || line[i] == ':')) {
      s.name.push_back(line[i++]);
    }
    EXPECT_FALSE(s.name.empty()) << line;
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::string key;
        while (i < line.size() && line[i] != '=') key.push_back(line[i++]);
        ++i;  // '='
        EXPECT_LT(i, line.size());
        EXPECT_EQ(line[i], '"') << line;
        ++i;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) {
            ++i;
            value.push_back(line[i] == 'n' ? '\n' : line[i]);
          } else {
            value.push_back(line[i]);
          }
          ++i;
        }
        ++i;  // closing quote
        if (i < line.size() && line[i] == ',') ++i;
        s.labels[key] = value;
      }
      EXPECT_LT(i, line.size()) << "unterminated labels: " << line;
      ++i;  // '}'
    }
    EXPECT_LT(i, line.size()) << line;
    EXPECT_EQ(line[i], ' ') << line;
    s.value = std::stod(line.substr(i + 1));
    doc.samples.push_back(std::move(s));
  }
  return doc;
}

const PromSample* find_sample(const PromDoc& doc, const std::string& name,
                              const std::map<std::string, std::string>& labels = {}) {
  for (const PromSample& s : doc.samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

TEST(Prometheus, FormatRoundTrip) {
  Registry reg;
  reg.counter("graphene_encode_total").inc(3);
  reg.counter("graphene_encode_total", {{"proto", "p2"}}).inc(1);
  reg.gauge("graphene_fpr_observed").set(0.125);
  Histogram& h = reg.histogram("graphene_stage_ns", {{"stage", "p1_peel"}});
  h.observe(5);
  h.observe(5);
  h.observe(900);

  const std::string text = reg.to_prometheus();
  const PromDoc doc = parse_prometheus(text);

  // TYPE headers, one per family.
  EXPECT_EQ(doc.types.at("graphene_encode_total"), "counter");
  EXPECT_EQ(doc.types.at("graphene_fpr_observed"), "gauge");
  EXPECT_EQ(doc.types.at("graphene_stage_ns"), "histogram");

  const PromSample* plain = find_sample(doc, "graphene_encode_total");
  ASSERT_NE(plain, nullptr);
  EXPECT_DOUBLE_EQ(plain->value, 3.0);
  const PromSample* labeled =
      find_sample(doc, "graphene_encode_total", {{"proto", "p2"}});
  ASSERT_NE(labeled, nullptr);
  EXPECT_DOUBLE_EQ(labeled->value, 1.0);

  const PromSample* gauge = find_sample(doc, "graphene_fpr_observed");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 0.125);

  // Histogram: _sum, _count, and cumulative non-decreasing buckets ending in
  // the mandatory +Inf == _count.
  const std::map<std::string, std::string> stage{{"stage", "p1_peel"}};
  const PromSample* sum = find_sample(doc, "graphene_stage_ns_sum", stage);
  const PromSample* count = find_sample(doc, "graphene_stage_ns_count", stage);
  ASSERT_NE(sum, nullptr);
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(sum->value, 910.0);
  EXPECT_DOUBLE_EQ(count->value, 3.0);

  double prev = 0.0;
  const PromSample* inf_bucket = nullptr;
  for (const PromSample& s : doc.samples) {
    if (s.name != "graphene_stage_ns_bucket") continue;
    EXPECT_EQ(s.labels.at("stage"), "p1_peel");
    EXPECT_GE(s.value, prev) << "buckets must be cumulative";
    prev = s.value;
    if (s.labels.at("le") == "+Inf") inf_bucket = &s;
  }
  ASSERT_NE(inf_bucket, nullptr) << "+Inf bucket is mandatory";
  EXPECT_DOUBLE_EQ(inf_bucket->value, count->value);
}

TEST(Prometheus, LabelValuesEscape) {
  Registry reg;
  reg.counter("weird_total", {{"path", "a\\b\"c\nd"}}).inc();
  const PromDoc doc = parse_prometheus(reg.to_prometheus());
  const PromSample* s = find_sample(doc, "weird_total", {{"path", "a\\b\"c\nd"}});
  ASSERT_NE(s, nullptr) << reg.to_prometheus();
  EXPECT_DOUBLE_EQ(s->value, 1.0);
}

TEST(Prometheus, MetricNamesSanitized) {
  Registry reg;
  reg.counter("bad-name.total").inc();
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("bad_name_total"), std::string::npos);
  EXPECT_EQ(text.find("bad-name"), std::string::npos);
}

TEST(Prometheus, TypeHeaderEmittedOncePerFamily) {
  Registry reg;
  reg.counter("family_total", {{"a", "1"}}).inc();
  reg.counter("family_total", {{"a", "2"}}).inc();
  const std::string text = reg.to_prometheus();
  const std::string header = "# TYPE family_total counter";
  const std::size_t first = text.find(header);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(header, first + 1), std::string::npos);
}

TEST(Prometheus, EmptyRegistryEmitsNothing) {
  Registry reg;
  EXPECT_TRUE(reg.to_prometheus().empty());
}

}  // namespace
}  // namespace graphene::obs
