// Flight recorder: event stamping, ring bounds, runtime switches, JSON
// round-trip, and the obs::flight() gate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace graphene::obs {
namespace {

FlightEvent make_event(const char* label, FlightEventKind kind = FlightEventKind::kNote) {
  FlightEvent e;
  e.kind = kind;
  e.label = label;
  return e;
}

TEST(FlightEventKindStrings, RoundTrip) {
  for (const FlightEventKind kind :
       {FlightEventKind::kMsgSent, FlightEventKind::kMsgReceived, FlightEventKind::kDecode,
        FlightEventKind::kError, FlightEventKind::kNote}) {
    FlightEventKind back = FlightEventKind::kNote;
    ASSERT_TRUE(kind_from_string(to_string(kind), &back)) << to_string(kind);
    EXPECT_EQ(back, kind);
  }
  FlightEventKind ignored;
  EXPECT_FALSE(kind_from_string("not-a-kind", &ignored));
  EXPECT_FALSE(kind_from_string("", &ignored));
}

#if GRAPHENE_OBS_ENABLED

TEST(FlightRecorder, StampsSequenceAndTime) {
  ScopedFakeClock clock(1000);
  FlightRecorder rec;
  rec.record(make_event("a"));
  clock.advance(17);
  rec.record(make_event("b"));

  const std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[0].t_ns, 1000u);
  EXPECT_EQ(events[1].t_ns, 1017u);
  EXPECT_EQ(events[0].label, "a");
  EXPECT_EQ(rec.total_recorded(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorder, RingDropsOldestAndCounts) {
  FlightRecorder rec(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) rec.record(make_event(std::to_string(i).c_str()));
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.total_recorded(), 5u);
  EXPECT_EQ(rec.dropped(), 2u);
  const std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].label, "2");  // oldest surviving
  EXPECT_EQ(events[2].label, "4");
  EXPECT_EQ(events[2].seq, 4u);     // sequence keeps counting across drops
}

TEST(FlightRecorder, ShrinkingCapacityKeepsNewest) {
  FlightRecorder rec(8);
  for (int i = 0; i < 6; ++i) rec.record(make_event(std::to_string(i).c_str()));
  rec.set_capacity(2);
  const std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].label, "4");
  EXPECT_EQ(events[1].label, "5");
}

TEST(FlightRecorder, DisabledRecorderDropsEverything) {
  FlightRecorder rec;
  rec.set_enabled(false);
  rec.record(make_event("ignored"));
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  rec.set_enabled(true);
  rec.record(make_event("kept"));
  EXPECT_EQ(rec.size(), 1u);
}

TEST(FlightRecorder, ClearResetsRingAndCounters) {
  FlightRecorder rec(2);
  for (int i = 0; i < 4; ++i) rec.record(make_event("x"));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightEvent, JsonRoundTripWithWireAndAttrs) {
  FlightEvent e;
  e.seq = 7;
  e.t_ns = 12345;
  e.kind = FlightEventKind::kMsgSent;
  e.label = "grblk";
  e.attrs = {{"n", 500.0}, {"fpr_s", 0.0078125}};
  e.wire = {0x01, 0x00, 0xff, 0x7e};

  const FlightEvent back = FlightEvent::from_json(json::parse(e.to_json()));
  EXPECT_EQ(back.seq, e.seq);
  EXPECT_EQ(back.t_ns, e.t_ns);
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.label, e.label);
  // Attr order may not survive the JSON object round trip; the attr()
  // lookup is the contract.
  ASSERT_EQ(back.attrs.size(), 2u);
  EXPECT_DOUBLE_EQ(back.attr("n"), 500.0);
  EXPECT_DOUBLE_EQ(back.attr("fpr_s"), 0.0078125);
  EXPECT_EQ(back.wire, e.wire);
}

TEST(FlightEvent, JsonOmitsEmptyWire) {
  FlightEvent e;
  e.label = "p1";
  e.kind = FlightEventKind::kDecode;
  const std::string text = e.to_json();
  EXPECT_EQ(text.find("wire_b64"), std::string::npos);
  const FlightEvent back = FlightEvent::from_json(json::parse(text));
  EXPECT_TRUE(back.wire.empty());
}

TEST(FlightRecorder, ToJsonCarriesEnvelopeAndEvents) {
  FlightRecorder rec(2);
  for (int i = 0; i < 3; ++i) rec.record(make_event(std::to_string(i).c_str()));
  const json::Value doc = json::parse(rec.to_json());
  EXPECT_DOUBLE_EQ(doc.at("capacity").number, 2.0);
  EXPECT_DOUBLE_EQ(doc.at("recorded").number, 3.0);
  EXPECT_DOUBLE_EQ(doc.at("dropped").number, 1.0);
  ASSERT_EQ(doc.at("events").array.size(), 2u);
  EXPECT_EQ(doc.at("events").array[0].at("label").string, "1");
}

TEST(FlightGate, ReturnsRecorderOnlyWhenAttachedAndEnabled) {
  EXPECT_EQ(flight(nullptr), nullptr);
  Registry reg;
  FlightRecorder* rec = flight(&reg);
  ASSERT_NE(rec, nullptr);  // recorder defaults on once a registry is attached
  EXPECT_EQ(rec, &reg.recorder());
  reg.recorder().set_enabled(false);
  EXPECT_EQ(flight(&reg), nullptr);
}

TEST(Registry, ClearAlsoClearsRecorder) {
  Registry reg;
  reg.recorder().record(make_event("x"));
  ASSERT_EQ(reg.recorder().size(), 1u);
  reg.clear();
  EXPECT_EQ(reg.recorder().size(), 0u);
}

#else  // !GRAPHENE_OBS_ENABLED

TEST(FlightRecorder, CompiledOutRecordsNothing) {
  FlightRecorder rec;
  rec.record(make_event("ignored"));
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(flight(nullptr), nullptr);
}

#endif  // GRAPHENE_OBS_ENABLED

}  // namespace
}  // namespace graphene::obs
