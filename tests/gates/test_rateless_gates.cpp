// Statistical gates for the rateless IBLT backend.
//
// The arXiv 2402.02668 claim under test: the expected number of coded
// symbols to decode a symmetric difference of size d approaches ~1.35·d for
// moderate d (their Fig. 4), with decode failure vanishing as the stream
// extends — so "decode failure" never surfaces as an outcome, only "read
// more symbols". The gates pin both the per-trial tail and the aggregate
// overhead band so a regression in the index mapper, the peeling windows, or
// the chunk sizing shows up as a statistically meaningful failure.
#include <gtest/gtest.h>

#include "iblt/coded_symbol.hpp"
#include "reconcile/set_reconciler.hpp"
#include "testkit/stat_gate.hpp"
#include "util/random.hpp"

namespace graphene::reconcile {
namespace {

ItemSet random_items(util::Rng& rng, std::size_t count) {
  ItemSet out;
  while (out.size() < count) {
    ItemDigest d;
    for (auto& byte : d) byte = static_cast<std::uint8_t>(rng.next());
    out.insert(d);
  }
  return out;
}

struct TrialResult {
  bool success = false;
  std::uint64_t symbols = 0;
  std::uint64_t d = 0;
};

/// One full rateless reconciliation over a random divergence: host has
/// `d_host` own items, client has `d_client` own items, both share `shared`.
TrialResult run_rateless_trial(util::Rng& rng) {
  const std::uint64_t shared = 50 + rng.below(400);
  const std::uint64_t d_host = 1 + rng.below(150);
  const std::uint64_t d_client = rng.below(150);

  const ItemSet shared_items = random_items(rng, shared);
  ItemSet host_items = shared_items;
  for (const ItemDigest& x : random_items(rng, d_host)) host_items.insert(x);
  ItemSet client_items = shared_items;
  for (const ItemDigest& x : random_items(rng, d_client)) client_items.insert(x);

  core::ProtocolConfig cfg;
  cfg.reconcile_backend = core::ReconcileBackend::kRatelessIblt;

  Host host(host_items, rng.next(), cfg);
  Client client(client_items, cfg);
  Outcome out;
  const SyncStats stats = reconcile_one_way(host, client, out);

  TrialResult r;
  r.success = stats.success && out.host_set == host_items;
  r.symbols = stats.symbols_consumed;
  r.d = host_items.size() + client_items.size() - 2 * shared;
  return r;
}

TEST(RatelessGates, DecodeAlwaysCompletesWithBoundedOverhead) {
  // Per-trial tail gate: every reconciliation must finish, and within
  // 2·d + 32 symbols (the ~1.35·d mean plus generous tail room). min_rate
  // 0.99 with exact Clopper–Pearson: a systematic overhead regression
  // cannot hide behind luck.
  testkit::StatGateSpec spec;
  spec.name = "rateless_overhead_tail";
  spec.trials = 150;
  spec.min_rate = 0.99;
  const testkit::GateResult r =
      testkit::StatGate(spec).run([](util::Rng& rng, std::uint64_t) {
        const TrialResult t = run_rateless_trial(rng);
        return t.success && t.symbols <= 2 * t.d + 32;
      });
  GRAPHENE_EXPECT_GATE(r);
}

TEST(RatelessGates, MeanSymbolOverheadSitsInThePaperBand) {
  // Aggregate gate: mean(symbols / d) over many trials must sit in the
  // band the paper reports (~1.35×) — we allow [1.15, 1.75] to absorb the
  // small-d constant terms that our d ∈ [1, 300] mix includes.
  util::Rng rng(0x1355);
  double ratio_sum = 0;
  int counted = 0;
  for (int t = 0; t < 60; ++t) {
    const TrialResult r = run_rateless_trial(rng);
    ASSERT_TRUE(r.success) << "trial " << t;
    if (r.d < 20) continue;  // constant terms dominate tiny differences
    ratio_sum += static_cast<double>(r.symbols) / static_cast<double>(r.d);
    ++counted;
  }
  ASSERT_GT(counted, 20);
  const double mean = ratio_sum / counted;
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 1.75);
}

TEST(RatelessGates, ZeroRepairRoundTripsByConstruction) {
  // The tentpole claim: across every trial, the rateless backend never uses
  // a decode-failure repair round or a short-ID fetch round — continuation
  // chunks are flow control, not repairs.
  util::Rng rng(0x2402);
  for (int t = 0; t < 40; ++t) {
    const std::uint64_t shared = rng.below(300);
    const ItemSet shared_items = random_items(rng, shared);
    ItemSet host_items = shared_items;
    for (const ItemDigest& x : random_items(rng, 1 + rng.below(200))) {
      host_items.insert(x);
    }
    ItemSet client_items = shared_items;
    for (const ItemDigest& x : random_items(rng, rng.below(200))) {
      client_items.insert(x);
    }
    core::ProtocolConfig cfg;
    cfg.reconcile_backend = core::ReconcileBackend::kRatelessIblt;
    Host host(host_items, rng.next(), cfg);
    Client client(client_items, cfg);
    Outcome out;
    const SyncStats stats = reconcile_one_way(host, client, out);
    ASSERT_TRUE(stats.success);
    EXPECT_FALSE(stats.used_request_round);
    EXPECT_FALSE(stats.used_fetch_round);
    EXPECT_TRUE(out.unresolved.empty());
  }
}

}  // namespace
}  // namespace graphene::reconcile
