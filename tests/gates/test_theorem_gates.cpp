// Theorem-level statistical CI gates.
//
// Each gate pins a rate the paper promises — not an example of it. Trials
// are seeded (trial i runs on Rng(seed).split(i)) and the verdict uses the
// exact one-sided Clopper–Pearson interval, so a pass is reproducible and a
// failure is statistically meaningful, never a flake: a gate only fails when
// the observed data is incompatible with the promised rate at the gate's
// confidence (see src/testkit/stat_gate.hpp and docs/TESTING.md).
#include <gtest/gtest.h>

#include "graphene/bounds.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "iblt/hypergraph.hpp"
#include "iblt/param_search.hpp"
#include "iblt/param_table.hpp"
#include "iblt/pingpong.hpp"
#include "testkit/gen.hpp"
#include "testkit/stat_gate.hpp"

namespace graphene {
namespace {

constexpr double kBeta = 239.0 / 240.0;

// --- Theorem 1: a* is a β-assurance bound on Bloom false positives --------

TEST(TheoremGates, Theorem1AStarBoundHoldsAtRateBeta) {
  testkit::StatGateSpec spec;
  spec.name = "thm1_a_star";
  spec.trials = 2000;
  spec.min_rate = kBeta;
  const testkit::GateResult r =
      testkit::StatGate(spec).run([](util::Rng& rng, std::uint64_t) {
        const std::uint64_t n = 1 + rng.below(2000);
        const std::uint64_t m = n + 1 + rng.below(10000);
        const double f_s = 0.001 + 0.2 * rng.uniform();
        const double a = static_cast<double>(m - n) * f_s;
        const std::uint64_t a_star = core::bound_a_star(a, kBeta);
        const std::uint64_t realized = rng.binomial(m - n, f_s);
        return realized <= a_star;
      });
  GRAPHENE_EXPECT_GATE(r);
}

// --- Theorem 1 end-to-end: Protocol 1 decodes at rate ≥ β when the
// receiver holds the whole block. Failure sources compose (a* exceeded OR
// the IBLT hits its 1/240 tail), so the promised rate is 1 − 2·(1 − β). ---

TEST(TheoremGates, Theorem1Protocol1DecodeRate) {
  testkit::StatGateSpec spec;
  spec.name = "thm1_p1_decode";
  spec.trials = 300;
  spec.min_rate = 1.0 - 2.0 * (1.0 - kBeta);
  testkit::ScenarioDims dims;
  dims.min_block_txns = 2;
  dims.max_block_txns = 600;
  dims.max_extra_multiple = 4.0;
  dims.min_fraction = 1.0;  // Theorem 1's regime: no missing block txns
  dims.max_fraction = 1.0;
  const testkit::GateResult r = testkit::StatGate(spec).run_cases<testkit::GenCase>(
      [&](util::Rng& rng) { return testkit::gen_case(rng, dims); },
      [](const testkit::GenCase& c, util::Rng&) {
        const chain::Scenario s = testkit::build_scenario(c);
        core::Sender sender(s.block, c.salt);
        core::ReceiveSession session = core::Receiver(s.receiver_mempool).session();
        const core::ReceiveOutcome out =
            session.receive_block(sender.encode(s.m).msg);
        if (out.status != core::ReceiveStatus::kDecoded) return false;
        return out.merkle_ok && out.block_ids == s.block.tx_ids();
      },
      [](const testkit::GenCase& c) { return testkit::shrink_case(c); },
      [](const testkit::GenCase& c) { return testkit::describe_case(c); });
  GRAPHENE_EXPECT_GATE(r);
}

// --- Theorems 2 and 3: x* under- and y* over-estimate at rate ≥ β ---------

TEST(TheoremGates, Theorem2XStarViolationRateAtMostDelta) {
  testkit::StatGateSpec spec;
  spec.name = "thm2_x_star";
  spec.trials = 2000;
  spec.min_rate = kBeta;
  const testkit::GateResult r =
      testkit::StatGate(spec).run([](util::Rng& rng, std::uint64_t) {
        const std::uint64_t n = 1 + rng.below(2000);
        const std::uint64_t x = rng.below(n + 1);  // true positives at receiver
        const std::uint64_t m = x + rng.below(10000);
        const double f_s = 0.001 + 0.2 * rng.uniform();
        // z = true positives + Bloom false positives over the m − x others.
        const std::uint64_t z = x + rng.binomial(m - x, f_s);
        const std::uint64_t x_star = core::bound_x_star(z, m, n, f_s, kBeta);
        return x_star <= x;
      });
  GRAPHENE_EXPECT_GATE(r);
}

TEST(TheoremGates, Theorem3YStarViolationRateAtMostDelta) {
  testkit::StatGateSpec spec;
  spec.name = "thm3_y_star";
  spec.trials = 2000;
  spec.min_rate = kBeta;
  const testkit::GateResult r =
      testkit::StatGate(spec).run([](util::Rng& rng, std::uint64_t) {
        const std::uint64_t n = 1 + rng.below(2000);
        const std::uint64_t x = rng.below(n + 1);
        const std::uint64_t m = x + rng.below(10000);
        const double f_s = 0.001 + 0.2 * rng.uniform();
        const std::uint64_t y = rng.binomial(m - x, f_s);  // true false-positive count
        const std::uint64_t z = x + y;
        const std::uint64_t x_star = core::bound_x_star(z, m, n, f_s, kBeta);
        const std::uint64_t y_star = core::bound_y_star(m, x_star, f_s, kBeta);
        // Theorem 3 builds on Theorem 2: y* must cover y whenever x* held.
        // Joint coverage is what Protocol 2 actually relies on.
        return x_star > x || y_star >= y;
      });
  GRAPHENE_EXPECT_GATE(r);
}

// --- Algorithm 1 / the shipped table: (k, c) meets the decode-rate target -

TEST(TheoremGates, ParamTableMeetsTargetDecodeRate) {
  testkit::StatGateSpec spec;
  spec.name = "alg1_table_rate";
  spec.trials = 2000;
  spec.min_rate = kBeta;  // table entries target failure ≤ 1/240
  const testkit::GateResult r =
      testkit::StatGate(spec).run([](util::Rng& rng, std::uint64_t) {
        static constexpr std::uint64_t kJs[] = {2, 8, 25, 60, 120, 300};
        const std::uint64_t j = kJs[rng.below(std::size(kJs))];
        const iblt::IbltParams p = iblt::lookup_params(j, 240);
        return iblt::hypergraph_decodes(j, p.k, p.cells, rng);
      });
  GRAPHENE_EXPECT_GATE(r);
}

TEST(TheoremGates, Algorithm1SearchMeetsRequestedRate) {
  // Run the certified search once, then gate the decode rate of the (k, c)
  // it returned at the rate it was asked for.
  constexpr std::uint64_t kJ = 30;
  constexpr double kP = 0.95;
  util::Rng search_rng(0xa151);
  iblt::SearchOptions opts;
  opts.max_trials = 6000;
  const iblt::SearchResult found = iblt::search_params(kJ, kP, search_rng, opts);
  ASSERT_GT(found.params.cells, 0u);

  testkit::StatGateSpec spec;
  spec.name = "alg1_search_rate";
  spec.trials = 1500;
  spec.min_rate = kP;
  const testkit::GateResult r =
      testkit::StatGate(spec).run([&](util::Rng& rng, std::uint64_t) {
        return iblt::hypergraph_decodes(kJ, found.params.k, found.params.cells, rng);
      });
  GRAPHENE_EXPECT_GATE(r);
}

// --- §4.2: ping-pong decoding beats a single IBLT ------------------------

TEST(TheoremGates, PingPongImprovesOverSingleIblt) {
  // Deliberately undersized tables (≈1.17 cells/item at k=3) put the single
  // decode mid-range; Fig. 11 predicts joint failure ≈ (single failure)²
  // with an equal-size sibling, so ping-pong must clear a visibly higher bar.
  constexpr std::uint64_t kJ = 60;
  const iblt::IbltParams params{3, 75};
  std::uint64_t single_ok = 0, pp_ok = 0;
  const std::uint64_t trials = 600 * testkit::stress_scale();

  testkit::StatGateSpec spec;
  spec.name = "pingpong_rescue";
  spec.trials = 600;
  spec.min_rate = 0.55;  // single alone sits well below this
  const testkit::GateResult r =
      testkit::StatGate(spec).run([&](util::Rng& rng, std::uint64_t) {
        iblt::Iblt a(params, /*seed=*/rng.next());
        iblt::Iblt b(params, /*seed=*/rng.next());
        for (std::uint64_t i = 0; i < kJ; ++i) {
          const std::uint64_t key = rng.next();
          a.insert(key);
          b.insert(key);
        }
        if (a.decode().success) ++single_ok;
        const bool pp = iblt::pingpong_decode(a, b).success;
        if (pp) ++pp_ok;
        return pp;
      });
  GRAPHENE_EXPECT_GATE(r);
  // Paired comparison over the same instances: the joint decode can only
  // add successes, and at this sizing it must add a lot of them.
  EXPECT_GT(pp_ok, single_ok) << "single=" << single_ok << " pp=" << pp_ok
                              << " trials=" << trials;
}

}  // namespace
}  // namespace graphene
