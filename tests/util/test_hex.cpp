#include "util/hex.hpp"

#include <gtest/gtest.h>

namespace graphene::util {
namespace {

TEST(Hex, EncodesLowercase) {
  const Bytes b = {0xde, 0xad, 0xBE, 0xEF, 0x00, 0x7f};
  EXPECT_EQ(to_hex(ByteView(b)), "deadbeef007f");
}

TEST(Hex, EmptyRoundTrip) {
  EXPECT_EQ(to_hex(ByteView{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, DecodesMixedCase) {
  const Bytes expected = {0xab, 0xcd, 0xef};
  EXPECT_EQ(from_hex("AbCdEf"), expected);
}

TEST(Hex, RoundTripsRandomBytes) {
  Bytes b;
  for (int i = 0; i < 256; ++i) b.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(from_hex(to_hex(ByteView(b))), b);
}

TEST(Hex, RejectsOddLength) { EXPECT_THROW(from_hex("abc"), DeserializeError); }

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_THROW(from_hex("zz"), DeserializeError);
  EXPECT_THROW(from_hex("0g"), DeserializeError);
}

}  // namespace
}  // namespace graphene::util
