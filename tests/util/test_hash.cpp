#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/random.hpp"

namespace graphene::util {
namespace {

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping any input bit should change roughly half the output bits.
  const std::uint64_t base = mix64(0x123456789abcdef0ULL);
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t flipped = mix64(0x123456789abcdef0ULL ^ (1ULL << bit));
    const int hamming = __builtin_popcountll(base ^ flipped);
    EXPECT_GT(hamming, 12) << "bit " << bit;
    EXPECT_LT(hamming, 52) << "bit " << bit;
  }
}

TEST(Mix64, DistinctInputsGiveDistinctOutputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(MixHasher, DifferentSeedsDecorrelate) {
  const MixHasher h1(1), h2(2);
  int same = 0;
  for (std::uint64_t item = 0; item < 100; ++item) {
    if (h1(item, 0) % 1000 == h2(item, 0) % 1000) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(MixHasher, IndexVariesProbe) {
  const MixHasher h(7);
  std::set<std::uint64_t> probes;
  for (std::uint32_t i = 0; i < 8; ++i) probes.insert(h(42, i) % 4096);
  EXPECT_GE(probes.size(), 7u);  // 8 probes, collisions unlikely in 4096 slots
}

TEST(SplitDigestWords, SplitsLittleEndian) {
  Bytes digest(32);
  for (std::size_t i = 0; i < 32; ++i) digest[i] = static_cast<std::uint8_t>(i);
  const auto words = split_digest_words(ByteView(digest));
  EXPECT_EQ(words[0], 0x0706050403020100ULL);
  EXPECT_EQ(words[1], 0x0f0e0d0c0b0a0908ULL);
  EXPECT_EQ(words[2], 0x1716151413121110ULL);
  EXPECT_EQ(words[3], 0x1f1e1d1c1b1a1918ULL);
}

TEST(SplitDigestWords, ShortInputZeroExtends) {
  const Bytes digest = {0xff, 0xee};
  const auto words = split_digest_words(ByteView(digest));
  EXPECT_EQ(words[0], 0xeeffULL);
  EXPECT_EQ(words[1], 0u);
  EXPECT_EQ(words[3], 0u);
}

TEST(Hash64, SeedChangesOutput) {
  const Bytes data = {1, 2, 3};
  EXPECT_NE(hash64(ByteView(data), 0), hash64(ByteView(data), 1));
}

TEST(Hash64, EmptyInputIsStable) {
  EXPECT_EQ(hash64(ByteView{}, 0), hash64(ByteView{}, 0));
}

TEST(FastMod64, MatchesHardwareModuloAcrossDivisors) {
  util::Rng rng(0xfee1);
  const std::uint64_t divisors[] = {1,
                                    2,
                                    3,
                                    5,
                                    7,
                                    63,
                                    64,
                                    65,
                                    511,
                                    512,
                                    513,
                                    1000003,
                                    (1ULL << 32) - 1,
                                    (1ULL << 32) + 1,
                                    0x9e3779b97f4a7c15ULL,
                                    ~0ULL};
  for (const std::uint64_t d : divisors) {
    const FastMod64 fm(d);
    EXPECT_EQ(fm.divisor(), d);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t n = rng.next();
      ASSERT_EQ(fm.mod(n), n % d) << "n=" << n << " d=" << d;
    }
    const std::uint64_t edges[] = {0, 1, d - 1, d, d + 1, ~0ULL, ~0ULL - 1};
    for (const std::uint64_t n : edges) {
      ASSERT_EQ(fm.mod(n), n % d) << "n=" << n << " d=" << d;
    }
  }
}

TEST(FastMod64, ExhaustiveSmallDivisors) {
  // Every (n, d) pair in a dense small grid — the regime stride/block
  // reductions in the Bloom/IBLT hot loops actually hit.
  for (std::uint64_t d = 1; d <= 257; ++d) {
    const FastMod64 fm(d);
    for (std::uint64_t n = 0; n < 1024; ++n) {
      ASSERT_EQ(fm.mod(n), n % d) << "n=" << n << " d=" << d;
    }
  }
}

}  // namespace
}  // namespace graphene::util
