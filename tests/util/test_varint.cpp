#include "util/varint.hpp"

#include <gtest/gtest.h>

namespace graphene::util {
namespace {

struct VarintCase {
  std::uint64_t value;
  std::size_t expected_size;
};

class VarintRoundTrip : public ::testing::TestWithParam<VarintCase> {};

TEST_P(VarintRoundTrip, EncodesAtExpectedSizeAndDecodes) {
  const auto [value, expected_size] = GetParam();
  ByteWriter w;
  write_varint(w, value);
  EXPECT_EQ(w.size(), expected_size);
  EXPECT_EQ(varint_size(value), expected_size);
  ByteReader r{ByteView(w.bytes())};
  EXPECT_EQ(read_varint(r), value);
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(VarintCase{0, 1}, VarintCase{1, 1},
                                           VarintCase{0xfc, 1}, VarintCase{0xfd, 3},
                                           VarintCase{0xffff, 3}, VarintCase{0x10000, 5},
                                           VarintCase{0xffffffff, 5},
                                           VarintCase{0x100000000ULL, 9},
                                           VarintCase{0xffffffffffffffffULL, 9}));

TEST(Varint, RejectsNonCanonical2Byte) {
  const Bytes b = {0xfd, 0x10, 0x00};  // 16 should be 1 byte
  ByteReader r{ByteView(b)};
  EXPECT_THROW(read_varint(r), DeserializeError);
}

TEST(Varint, RejectsNonCanonical4Byte) {
  const Bytes b = {0xfe, 0xff, 0xff, 0x00, 0x00};
  ByteReader r{ByteView(b)};
  EXPECT_THROW(read_varint(r), DeserializeError);
}

TEST(Varint, RejectsNonCanonical8Byte) {
  const Bytes b = {0xff, 0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00};
  ByteReader r{ByteView(b)};
  EXPECT_THROW(read_varint(r), DeserializeError);
}

TEST(Varint, ThrowsOnTruncation) {
  const Bytes b = {0xfd, 0x10};
  ByteReader r{ByteView(b)};
  EXPECT_THROW(read_varint(r), DeserializeError);
}

}  // namespace
}  // namespace graphene::util
