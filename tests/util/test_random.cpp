#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace graphene::util {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal_count = 0;
  for (int i = 0; i < 100; ++i) equal_count += a.next() == b.next() ? 1 : 0;
  EXPECT_EQ(equal_count, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  int counts[kBound] = {};
  for (int i = 0; i < kSamples; ++i) counts[rng.below(kBound)]++;
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBound, 5 * std::sqrt(kSamples / kBound));
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(19);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kSamples, 1.0, 0.03);
}

class BinomialSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, double>> {};

TEST_P(BinomialSweep, MomentsMatchTheory) {
  const auto [n, p] = GetParam();
  Rng rng(n * 7 + static_cast<std::uint64_t>(p * 1000));
  const double mean = static_cast<double>(n) * p;
  const double stddev = std::sqrt(mean * (1.0 - p));
  double sum = 0.0, sumsq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const auto s = static_cast<double>(rng.binomial(n, p));
    ASSERT_LE(s, static_cast<double>(n));
    sum += s;
    sumsq += s * s;
  }
  const double sample_mean = sum / kSamples;
  const double sample_var = sumsq / kSamples - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, 5.0 * stddev / std::sqrt(kSamples) + 0.05);
  EXPECT_NEAR(sample_var, stddev * stddev, stddev * stddev * 0.15 + 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialSweep,
    ::testing::Values(std::pair<std::uint64_t, double>{100, 0.01},   // inversion
                      std::pair<std::uint64_t, double>{1000, 0.02},  // moderate
                      std::pair<std::uint64_t, double>{2000, 0.5},   // symmetry
                      std::pair<std::uint64_t, double>{500000, 0.01},  // normal
                      std::pair<std::uint64_t, double>{100, 0.99}));

TEST(RngBinomial, EdgeCases) {
  Rng rng(41);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Rng, FillRandomizesBuffer) {
  Rng rng(23);
  Bytes buf(64, 0);
  rng.fill(buf);
  int zeros = 0;
  for (const std::uint8_t b : buf) zeros += b == 0 ? 1 : 0;
  EXPECT_LT(zeros, 8);
}

TEST(Rng, ReseedResetsSequence) {
  Rng rng(31);
  const std::uint64_t first = rng.next();
  rng.next();
  rng.reseed(31);
  EXPECT_EQ(rng.next(), first);
}

}  // namespace
}  // namespace graphene::util
