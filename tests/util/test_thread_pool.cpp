#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace graphene::util {
namespace {

// These tests target the TSan CI leg: they exercise the pool's queue
// handoff, parallel_for's caller participation, and the completion wakeup
// under real contention. GRAPHENE_STRESS=1 scales the iteration counts up.

std::uint64_t stress_multiplier() {
  const char* s = std::getenv("GRAPHENE_STRESS");
  return (s != nullptr && *s == '1') ? 20 : 1;
}

TEST(ThreadPool, RunsPostedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    for (int i = 0; i < 100; ++i) {
      pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroRequestsHardwareSize) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  const std::uint64_t count = 10000 * stress_multiplier();
  ThreadPool pool(4);
  std::vector<std::atomic<std::uint32_t>> hits(count);
  parallel_for(&pool, count, [&](std::uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint64_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForNullPoolRunsInline) {
  std::vector<std::uint64_t> order;
  parallel_for(nullptr, 5, [&](std::uint64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(&pool, 0, [](std::uint64_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The caller participates in draining, so nesting completes even when
  // every pool worker is already busy with outer iterations.
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total{0};
  parallel_for(&pool, 8, [&](std::uint64_t) {
    parallel_for(&pool, 8, [&](std::uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(&pool, 100,
                   [](std::uint64_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, ManyConcurrentParallelForsFromPoolThreads) {
  // Several parallel_for calls sharing one pool, launched from pool threads
  // themselves — the shape Sender/Receiver sessions produce when several
  // peers are served at once.
  ThreadPool pool(4);
  const std::uint64_t outer = 16 * stress_multiplier();
  std::vector<std::uint64_t> sums(outer, 0);
  parallel_for(&pool, outer, [&](std::uint64_t o) {
    std::atomic<std::uint64_t> local{0};
    parallel_for(&pool, 64, [&](std::uint64_t i) {
      local.fetch_add(i, std::memory_order_relaxed);
    });
    sums[o] = local.load();
  });
  for (const std::uint64_t s : sums) EXPECT_EQ(s, 64u * 63u / 2);
}

}  // namespace
}  // namespace graphene::util
