#include "util/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/hex.hpp"

namespace graphene::util {
namespace {

std::string hash_hex(const std::string& input) {
  const Sha256Digest d = sha256(str_bytes(input));
  return to_hex(ByteView(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update(str_bytes(chunk));
  }
  EXPECT_EQ(to_hex(ByteView(h.finalize().data(), 32)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, BlockBoundaryLengths) {
  // 55/56/57 bytes straddle the length-field boundary; 63/64/65 the block
  // boundary. One-shot and byte-at-a-time hashing must agree at each.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const std::string s(len, 'q');
    const auto d1 = sha256(str_bytes(s));
    Sha256 incremental;
    for (char ch : s) incremental.update(&ch, 1);
    EXPECT_EQ(d1, incremental.finalize()) << "length " << len;
  }
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string input = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  h.update(input.data(), 10);
  h.update(input.data() + 10, input.size() - 10);
  const auto incremental = h.finalize();
  const auto oneshot = sha256(str_bytes(input));
  EXPECT_EQ(incremental, oneshot);
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update("abc", 3);
  const auto first = h.finalize();
  h.reset();
  h.update("abc", 3);
  EXPECT_EQ(first, h.finalize());
}

TEST(Sha256, DoubleHashMatchesComposition) {
  const Bytes payload = {1, 2, 3, 4};
  const auto once = sha256(ByteView(payload));
  const auto composed = sha256(ByteView(once.data(), once.size()));
  EXPECT_EQ(sha256d(ByteView(payload)), composed);
}

}  // namespace
}  // namespace graphene::util
