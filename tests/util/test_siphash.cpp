#include "util/siphash.hpp"

#include <gtest/gtest.h>

namespace graphene::util {
namespace {

// Reference vectors from the SipHash paper's appendix: key =
// 000102...0e0f, messages 00, 0001, 000102, ... The canonical test vector
// for the 15-byte message is 0xa129ca6149be45e5.
SipHashKey reference_key() {
  // k0 = little-endian bytes 00..07, k1 = 08..0f.
  return SipHashKey{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
}

TEST(SipHash, ReferenceVector15Bytes) {
  Bytes msg;
  for (std::uint8_t i = 0; i < 15; ++i) msg.push_back(i);
  EXPECT_EQ(siphash24(reference_key(), ByteView(msg)), 0xa129ca6149be45e5ULL);
}

TEST(SipHash, ReferenceVectorEmpty) {
  EXPECT_EQ(siphash24(reference_key(), ByteView{}), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHash, ReferenceVectorOneByte) {
  const Bytes msg = {0x00};
  EXPECT_EQ(siphash24(reference_key(), ByteView(msg)), 0x74f839c593dc67fdULL);
}

TEST(SipHash, ReferenceVectorEightBytes) {
  Bytes msg;
  for (std::uint8_t i = 0; i < 8; ++i) msg.push_back(i);
  EXPECT_EQ(siphash24(reference_key(), ByteView(msg)), 0x93f5f5799a932462ULL);
}

TEST(SipHash, WordOverloadMatchesByteOverload) {
  const SipHashKey key{0x1234, 0x5678};
  const std::uint64_t word = 0xdeadbeefcafebabeULL;
  Bytes bytes;
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
  EXPECT_EQ(siphash24(key, word), siphash24(key, ByteView(bytes)));
}

TEST(SipHash, KeySensitivity) {
  const Bytes msg = {1, 2, 3};
  EXPECT_NE(siphash24(SipHashKey{1, 2}, ByteView(msg)),
            siphash24(SipHashKey{1, 3}, ByteView(msg)));
}

TEST(SipHash, MessageSensitivity) {
  const SipHashKey key{42, 43};
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 4};
  EXPECT_NE(siphash24(key, ByteView(a)), siphash24(key, ByteView(b)));
}

}  // namespace
}  // namespace graphene::util
