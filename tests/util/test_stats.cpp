#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace graphene::util {
namespace {

TEST(ChernoffDelta, ZeroMuReturnsZero) { EXPECT_EQ(chernoff_delta(0.0, 0.99), 0.0); }

TEST(ChernoffDelta, SatisfiesDefiningEquation) {
  // δ must satisfy δ = (s + sqrt(s² + 8s))/2 with s = −ln(1−β)/µ, which
  // rearranges to δ²/(2+δ) = s.
  for (const double mu : {1.0, 5.0, 50.0, 500.0}) {
    for (const double beta : {0.9, 0.99, 239.0 / 240.0}) {
      const double delta = chernoff_delta(mu, beta);
      const double s = -std::log(1.0 - beta) / mu;
      EXPECT_NEAR(delta * delta / (2.0 + delta), s, 1e-9);
    }
  }
}

TEST(ChernoffDelta, DecreasesWithMu) {
  EXPECT_GT(chernoff_delta(1.0, 0.99), chernoff_delta(10.0, 0.99));
  EXPECT_GT(chernoff_delta(10.0, 0.99), chernoff_delta(100.0, 0.99));
}

TEST(ChernoffDelta, IncreasesWithBeta) {
  EXPECT_LT(chernoff_delta(10.0, 0.9), chernoff_delta(10.0, 0.999));
}

TEST(ChernoffDelta, BoundHoldsEmpirically) {
  // Binomial(m, p) with mean µ: (1+δ)µ should exceed the realized count in
  // at least β of trials.
  Rng rng(1234);
  constexpr double kBeta = 239.0 / 240.0;
  constexpr int kTrials = 20000;
  const double p = 0.01;
  const int m = 2000;
  const double mu = m * p;
  const double bound = (1.0 + chernoff_delta(mu, kBeta)) * mu;
  int within = 0;
  for (int t = 0; t < kTrials; ++t) {
    int count = 0;
    for (int i = 0; i < m; ++i) count += rng.chance(p) ? 1 : 0;
    within += count <= bound ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(within) / kTrials, kBeta - 0.002);
}

TEST(ChernoffUpperTail, VacuousForNonPositiveDelta) {
  EXPECT_EQ(chernoff_upper_tail(0.0, 10.0), 1.0);
  EXPECT_EQ(chernoff_upper_tail(-0.5, 10.0), 1.0);
}

TEST(ChernoffUpperTail, DecreasesWithDeltaAndMu) {
  EXPECT_GT(chernoff_upper_tail(0.5, 10.0), chernoff_upper_tail(1.0, 10.0));
  EXPECT_GT(chernoff_upper_tail(0.5, 10.0), chernoff_upper_tail(0.5, 20.0));
}

TEST(ChernoffUpperTail, MatchesClosedForm) {
  const double delta = 1.0, mu = 10.0;
  const double expected = std::pow(std::exp(1.0) / 4.0, 10.0);  // (e^1/2^2)^10
  EXPECT_NEAR(chernoff_upper_tail(delta, mu), expected, expected * 1e-9);
}

TEST(WilsonInterval, CentersNearProportionForLargeN) {
  const Interval ci = wilson_interval(500, 1000);
  EXPECT_NEAR(ci.center, 0.5, 0.01);
  EXPECT_NEAR(ci.half_width, 1.96 * std::sqrt(0.25 / 1000.0), 0.002);
}

TEST(WilsonInterval, NeverEscapesUnitInterval) {
  for (const std::uint64_t s : {0ULL, 1ULL, 5ULL, 10ULL}) {
    const Interval ci = wilson_interval(s, 10);
    EXPECT_GE(ci.lo(), -1e-12);
    EXPECT_LE(ci.hi(), 1.0 + 1e-12);
  }
}

TEST(WilsonInterval, ZeroTrialsIsMaximallyUncertain) {
  const Interval ci = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(ci.lo(), 0.0);
  EXPECT_DOUBLE_EQ(ci.hi(), 1.0);
}

TEST(WilsonInterval, ShrinksWithMoreTrials) {
  EXPECT_GT(wilson_interval(5, 10).half_width, wilson_interval(500, 1000).half_width);
}

TEST(WilsonInterval, CoversTrueRate) {
  // 95% interval should cover the true proportion in ~95% of experiments.
  Rng rng(77);
  const double p = 0.95;
  int covered = 0;
  constexpr int kExperiments = 2000;
  for (int e = 0; e < kExperiments; ++e) {
    std::uint64_t successes = 0;
    constexpr std::uint64_t kTrials = 500;
    for (std::uint64_t t = 0; t < kTrials; ++t) successes += rng.chance(p) ? 1 : 0;
    const Interval ci = wilson_interval(successes, kTrials);
    covered += (ci.lo() <= p && p <= ci.hi()) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(covered) / kExperiments, 0.92);
}

TEST(LogBinomialCdf, MatchesExactSmallCases) {
  // n = 4, p = 0.5: P(X ≤ k) = (1, 5, 11, 15, 16)/16.
  const double cases[] = {1.0 / 16, 5.0 / 16, 11.0 / 16, 15.0 / 16, 1.0};
  for (std::uint64_t k = 0; k <= 4; ++k) {
    EXPECT_NEAR(std::exp(log_binomial_cdf(k, 4, 0.5)), cases[k], 1e-12) << "k=" << k;
  }
  // Degenerate p.
  EXPECT_NEAR(std::exp(log_binomial_cdf(0, 10, 0.0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_cdf(9, 10, 1.0)), 0.0, 1e-12);
}

TEST(ClopperPearson, ZeroSuccessesUpperHasClosedForm) {
  // P(X ≤ 0) = (1 − p)^n = α  ⟹  upper = 1 − α^(1/n).
  for (const std::uint64_t n : {10ULL, 100ULL, 1000ULL}) {
    const double alpha = 0.01;
    const double expected = 1.0 - std::pow(alpha, 1.0 / static_cast<double>(n));
    EXPECT_NEAR(clopper_pearson_upper(0, n, 1.0 - alpha), expected, 1e-6) << n;
  }
}

TEST(ClopperPearson, AllSuccessesLowerHasClosedForm) {
  // P(X ≥ n) = p^n = α  ⟹  lower = α^(1/n).
  for (const std::uint64_t n : {10ULL, 100ULL, 1000ULL}) {
    const double alpha = 0.01;
    const double expected = std::pow(alpha, 1.0 / static_cast<double>(n));
    EXPECT_NEAR(clopper_pearson_lower(n, n, 1.0 - alpha), expected, 1e-6) << n;
  }
}

TEST(ClopperPearson, EdgeCasesAndOrdering) {
  EXPECT_EQ(clopper_pearson_lower(0, 100), 0.0);
  EXPECT_EQ(clopper_pearson_upper(100, 100), 1.0);
  EXPECT_EQ(clopper_pearson_upper(0, 0), 1.0);
  EXPECT_EQ(clopper_pearson_lower(0, 0), 0.0);
  const double lo = clopper_pearson_lower(80, 100);
  const double hi = clopper_pearson_upper(80, 100);
  EXPECT_LT(lo, 0.8);
  EXPECT_GT(hi, 0.8);
  EXPECT_LT(lo, hi);
}

TEST(ClopperPearson, TightensWithMoreTrials) {
  const double w100 = clopper_pearson_upper(90, 100) - clopper_pearson_lower(90, 100);
  const double w10k =
      clopper_pearson_upper(9000, 10000) - clopper_pearson_lower(9000, 10000);
  EXPECT_LT(w10k, w100);
}

TEST(ClopperPearson, UpperBoundIsExactNotApproximate) {
  // The defining property: at p = upper, P(X ≤ successes) = α exactly.
  const std::uint64_t successes = 42, n = 200;
  const double conf = 0.999;
  const double upper = clopper_pearson_upper(successes, n, conf);
  EXPECT_NEAR(std::exp(log_binomial_cdf(successes, n, upper)), 1.0 - conf,
              (1.0 - conf) * 1e-3);
}

TEST(ClopperPearson, OneSidedCoverageHolds) {
  // The one-sided 99% upper bound must sit above the true rate in ≥99% of
  // experiments — the exact guarantee the StatGate verdict rule relies on.
  Rng rng(123);
  const double p = 0.9;
  int covered = 0;
  constexpr int kExperiments = 1000;
  for (int e = 0; e < kExperiments; ++e) {
    std::uint64_t successes = 0;
    constexpr std::uint64_t kTrials = 300;
    for (std::uint64_t t = 0; t < kTrials; ++t) successes += rng.chance(p) ? 1 : 0;
    covered += clopper_pearson_upper(successes, kTrials, 0.99) >= p ? 1 : 0;
  }
  EXPECT_GE(covered, 980);
}

}  // namespace
}  // namespace graphene::util
