// util::Arena / ScratchScope semantics: slab reuse, LIFO rewind, and the
// zero-heap steady state the hot paths (Sender::serve, scan_ids) rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/arena.hpp"

namespace graphene::util {
namespace {

TEST(Arena, SpansAreUsableAndDisjoint) {
  Arena arena;
  const std::span<std::uint64_t> a = arena.allocate_span<std::uint64_t>(100);
  const std::span<std::uint32_t> b = arena.allocate_span<std::uint32_t>(50);
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = i;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<std::uint32_t>(~i);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], i);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i], static_cast<std::uint32_t>(~i));
  }
  EXPECT_TRUE(arena.allocate_span<std::uint8_t>(0).empty());
}

TEST(Arena, ZeroedSpansAreZero) {
  Arena arena;
  // Dirty a slab, recycle it, and demand zeroed memory from the same bytes.
  auto dirty = arena.allocate_span<std::uint8_t>(4096);
  std::memset(dirty.data(), 0xab, dirty.size());
  arena.reset();
  const auto clean = arena.allocate_zeroed<std::uint8_t>(4096);
  for (const std::uint8_t b : clean) ASSERT_EQ(b, 0);
}

TEST(Arena, ResetRecyclesSlabsWithoutGrowth) {
  Arena arena(1 << 12);
  (void)arena.allocate_span<std::uint8_t>(3000);
  (void)arena.allocate_span<std::uint8_t>(3000);
  const std::size_t reserved = arena.bytes_reserved();
  ASSERT_GT(reserved, 0u);
  // Steady state: identical allocation patterns after reset must not grow
  // the footprint.
  for (int round = 0; round < 10; ++round) {
    arena.reset();
    (void)arena.allocate_span<std::uint8_t>(3000);
    (void)arena.allocate_span<std::uint8_t>(3000);
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, OversizedRequestGetsDedicatedSlab) {
  Arena arena(1 << 12);
  const auto big = arena.allocate_span<std::uint8_t>(1 << 16);
  ASSERT_EQ(big.size(), std::size_t{1} << 16);
  std::memset(big.data(), 0x5a, big.size());
  // A small allocation still works after the oversized slab.
  const auto small = arena.allocate_span<std::uint8_t>(16);
  EXPECT_EQ(small.size(), 16u);
}

TEST(Arena, MarkRewindIsLifo) {
  Arena arena(1 << 12);
  const auto outer = arena.allocate_span<std::uint64_t>(64);
  for (std::size_t i = 0; i < outer.size(); ++i) outer[i] = i * 3;

  const Arena::Mark m = arena.mark();
  const std::size_t used_at_mark = arena.bytes_in_use();
  (void)arena.allocate_span<std::uint8_t>(10000);  // spills to a new slab
  (void)arena.allocate_span<std::uint8_t>(100);
  arena.rewind(m);
  EXPECT_EQ(arena.bytes_in_use(), used_at_mark);

  // Outer span survives the rewind; the rewound bytes are reusable.
  for (std::size_t i = 0; i < outer.size(); ++i) ASSERT_EQ(outer[i], i * 3);
  const auto again = arena.allocate_span<std::uint8_t>(10000);
  EXPECT_EQ(again.size(), 10000u);
}

TEST(Arena, ScratchScopeNestsAndRecycles) {
  Arena& arena = thread_scratch();
  const std::size_t baseline = arena.bytes_in_use();
  {
    ScratchScope outer;
    const auto a = outer.span<std::uint32_t>(100);
    ASSERT_EQ(a.size(), 100u);
    a[0] = 7;
    {
      ScratchScope inner;
      const auto b = inner.zeroed<std::uint32_t>(200);
      ASSERT_EQ(b.size(), 200u);
      EXPECT_EQ(b[199], 0u);
    }
    // Inner scope rewound; outer span is intact.
    EXPECT_EQ(a[0], 7u);
    EXPECT_GT(arena.bytes_in_use(), baseline);
  }
  EXPECT_EQ(thread_scratch().bytes_in_use(), baseline);
}

}  // namespace
}  // namespace graphene::util
