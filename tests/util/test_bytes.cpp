#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace graphene::util {
namespace {

TEST(ByteWriter, WritesLittleEndianIntegers) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0302);
  w.u32(0x07060504);
  w.u64(0x0f0e0d0c0b0a0908ULL);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 15u);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i], i + 1) << "byte " << i;
  }
}

TEST(ByteWriter, SignedRoundTrip) {
  ByteWriter w;
  w.i32(-7);
  w.i64(-123456789012345LL);
  ByteReader r{ByteView(w.bytes())};
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.i64(), -123456789012345LL);
  EXPECT_TRUE(r.done());
}

TEST(ByteWriter, RawAppends) {
  ByteWriter w;
  const Bytes chunk = {0xde, 0xad, 0xbe, 0xef};
  w.raw(ByteView(chunk));
  w.raw(chunk.data(), 2);
  EXPECT_EQ(w.size(), 6u);
  EXPECT_EQ(w.bytes()[4], 0xde);
}

TEST(ByteReader, ReadsBackWhatWriterWrote) {
  ByteWriter w;
  w.u64(0xdeadbeefcafebabeULL);
  w.u16(0x1234);
  ByteReader r{ByteView(w.bytes())};
  EXPECT_EQ(r.u64(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, ThrowsOnTruncatedInteger) {
  const Bytes b = {0x01, 0x02};
  ByteReader r{ByteView(b)};
  EXPECT_THROW(r.u32(), DeserializeError);
}

TEST(ByteReader, ThrowsOnTruncatedRaw) {
  const Bytes b = {0x01, 0x02, 0x03};
  ByteReader r{ByteView(b)};
  EXPECT_THROW(r.raw(4), DeserializeError);
}

TEST(ByteReader, RemainingTracksConsumption) {
  const Bytes b(10, 0xaa);
  ByteReader r{ByteView(b)};
  EXPECT_EQ(r.remaining(), 10u);
  r.u32();
  EXPECT_EQ(r.remaining(), 6u);
  (void)r.raw(6);
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, RawIntoCopiesExactBytes) {
  const Bytes b = {1, 2, 3, 4, 5};
  ByteReader r{ByteView(b)};
  std::uint8_t dst[3] = {};
  r.raw_into(dst, 3);
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[2], 3);
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(BytesEqual, ComparesContent) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(equal(ByteView(a), ByteView(b)));
  EXPECT_FALSE(equal(ByteView(a), ByteView(c)));
  EXPECT_FALSE(equal(ByteView(a), ByteView(d)));
}

TEST(ByteWriter, TakeMovesBuffer) {
  ByteWriter w;
  w.u32(42);
  Bytes b = w.take();
  EXPECT_EQ(b.size(), 4u);
}

}  // namespace
}  // namespace graphene::util
