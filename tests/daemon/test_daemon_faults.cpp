// Fault and soak suite for the relay daemon: tens of concurrent scripted
// peers per trial — clean clients, FaultyChannel-corrupted links, mid-frame
// quitters, garbage blasters — driven deterministically on fake time. The
// gated property is the termination guarantee: every connection ends in a
// decoded-and-verified session, a typed error, or a bounded abort, with all
// descriptors reclaimed; never a hang or a leak. GRAPHENE_STRESS multiplies
// the trial count as usual.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "harness.hpp"
#include "obs/obs.hpp"
#include "testkit/faulty_channel.hpp"
#include "testkit/stat_gate.hpp"

namespace graphene::daemon {
namespace {

using testing::ScriptedPeer;
using testing::count_open_fds;
using testing::make_items;

constexpr std::uint64_t kIdleNs = 50'000'000;

/// One scripted peer of the soak: behavior depends on its kind.
struct SoakPeer {
  enum class Kind : std::uint8_t {
    kClean,        ///< full protocol, must complete
    kFaultyLink,   ///< frames pass a FaultyChannel before hitting the wire
    kMidFrameQuit, ///< sends half a hello, then disconnects
    kGarbage,      ///< blasts non-protocol bytes
  };

  SoakPeer(Kind kind_in, reconcile::ItemSet items_in, core::ProtocolConfig cfg,
           testkit::FaultSpec faults)
      : kind(kind_in), items(std::move(items_in)), client(items, cfg), link(faults) {}

  Kind kind;
  reconcile::ItemSet items;  ///< owned: ClientSession borrows it
  ScriptedPeer sock;
  ClientSession client;
  testkit::FaultyChannel link;
  net::FrameReader reader;
  bool finished = false;  ///< this peer's script ran to its end
};

void send_through_link(SoakPeer& peer, const net::Message& msg) {
  const util::Bytes frame = net::encode_frame(msg);
  if (peer.kind != SoakPeer::Kind::kFaultyLink) {
    peer.sock.send_bytes(frame);
    return;
  }
  for (const util::Bytes& delivered :
       peer.link.transmit(net::Direction::kSenderToReceiver, msg.type, frame)) {
    peer.sock.send_bytes(delivered);
  }
}

/// Steps one peer: absorbs daemon replies, advances its script. Returns true
/// while the peer still has work to do.
bool step_peer(SoakPeer& peer) {
  if (peer.finished) return false;
  switch (peer.kind) {
    case SoakPeer::Kind::kMidFrameQuit: {
      const util::Bytes frame = net::encode_frame(peer.client.hello());
      peer.sock.send_bytes(util::ByteView(frame.data(), frame.size() / 2));
      peer.sock.close_now();
      peer.finished = true;
      return false;
    }
    case SoakPeer::Kind::kGarbage: {
      const util::Bytes junk(97, 0xd5);
      peer.sock.send_bytes(junk);
      peer.finished = true;  // daemon answers with an error and closes
      return false;
    }
    case SoakPeer::Kind::kClean:
    case SoakPeer::Kind::kFaultyLink:
      break;
  }

  std::vector<net::Message> to_daemon;
  try {
    peer.reader.absorb(peer.sock.recv_available());
    while (std::optional<net::Message> msg = peer.reader.next()) {
      if (peer.client.on_message(*msg, to_daemon) != ClientSession::Status::kInFlight) {
        for (const net::Message& bye : to_daemon) send_through_link(peer, bye);
        peer.sock.close_now();
        peer.finished = true;
        return false;
      }
    }
  } catch (const util::DeserializeError&) {
    // Replies themselves are clean; only reachable if the daemon closed
    // mid-frame on us — give up, which is itself a valid peer behavior.
    peer.sock.close_now();
    peer.finished = true;
    return false;
  }
  for (const net::Message& msg : to_daemon) send_through_link(peer, msg);
  return true;
}

bool soak_trial(util::Rng& rng, std::size_t peer_count) {
  const std::size_t fds_before = count_open_fds();
  bool ok = true;
  {
    obs::ScopedFakeClock clock(1'000'000'000);
    DaemonOptions opts;
    opts.limits.idle_timeout_ns = kIdleNs;
    opts.limits.session_timeout_ns = kIdleNs;
    RelayDaemon daemon(make_items(90), opts);

    std::vector<std::unique_ptr<SoakPeer>> peers;
    std::uint64_t clean_count = 0;
    for (std::size_t i = 0; i < peer_count; ++i) {
      const auto kind = static_cast<SoakPeer::Kind>(rng.below(4));
      if (kind == SoakPeer::Kind::kClean) ++clean_count;
      core::ProtocolConfig cfg;
      cfg.reconcile_backend = rng.below(2) == 0
                                  ? core::ReconcileBackend::kGraphene
                                  : core::ReconcileBackend::kRatelessIblt;
      testkit::FaultSpec faults;
      faults.drop = 0.1;
      faults.duplicate = 0.1;
      faults.truncate = 0.15;
      faults.bitflip = 0.15;
      faults.seed = rng.next();
      auto peer =
          std::make_unique<SoakPeer>(kind, make_items(70, rng.below(40)), cfg, faults);
      peer->sock.adopt_into(daemon);
      peers.push_back(std::move(peer));
    }
    testing::drive(daemon, static_cast<int>(peer_count));

    // Kick every conversation off, then round-robin until quiescent.
    for (auto& peer : peers) {
      if (peer->kind == SoakPeer::Kind::kClean ||
          peer->kind == SoakPeer::Kind::kFaultyLink) {
        send_through_link(*peer, peer->client.hello());
      }
    }
    for (int step = 0; step < 400; ++step) {
      testing::drive(daemon, 2);
      bool any = false;
      for (auto& peer : peers) any = step_peer(*peer) || any;
      if (!any) break;
      clock.advance(1'000);  // keep activity stamps moving, far below timeouts
    }

    // Whatever survives (dropped hellos, sessions a corrupted frame killed
    // client-side) must be reaped by the timeout sweep — bounded abort.
    testing::drive(daemon, 2);
    clock.advance(kIdleNs + 1'000'000);
    testing::drive(daemon, 4);

    if (daemon.open_connections() != 0) ok = false;
    const DaemonStats stats = daemon.stats();
    if (stats.conns_closed != peer_count) ok = false;
    // Every clean peer's sessions decoded and verified end to end.
    std::uint64_t clean_ok = 0;
    for (const auto& peer : peers) {
      if (peer->kind == SoakPeer::Kind::kClean &&
          peer->client.status() == ClientSession::Status::kComplete) {
        ++clean_ok;
      }
    }
    if (clean_ok != clean_count) ok = false;
    if (stats.sessions_ok < clean_ok) ok = false;
  }
  // Daemon and every peer destroyed: the process fd table must be restored.
  if (count_open_fds() != fds_before) ok = false;
  return ok;
}

TEST(DaemonSoak, ConcurrentFaultyPeersAlwaysTerminateWithoutLeaks) {
  testkit::StatGateSpec spec;
  spec.name = "daemon_soak_termination";
  spec.trials = 5;  // ×10 under GRAPHENE_STRESS
  spec.min_rate = 1.0;  // the termination guarantee admits no failures
  spec.seed = 0xda330;
  const testkit::StatGate gate(spec);
  const testkit::GateResult result = gate.run(
      [](util::Rng& rng, std::uint64_t) { return soak_trial(rng, /*peer_count=*/64); });
  GRAPHENE_ASSERT_GATE(result);
}

}  // namespace
}  // namespace graphene::daemon
