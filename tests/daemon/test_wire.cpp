// Daemon control frames: serialize/deserialize symmetry and strict rejection
// of out-of-range fields.
#include "daemon/wire.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.hpp"
#include "util/wire_limits.hpp"

namespace graphene::daemon {
namespace {

template <typename Msg>
Msg roundtrip(const Msg& msg) {
  const util::Bytes wire = msg.serialize();
  util::ByteReader reader(wire);
  Msg out = Msg::deserialize(reader);
  EXPECT_TRUE(reader.done());
  return out;
}

TEST(DaemonWire, HelloRoundTrips) {
  HelloMsg hello;
  hello.version = kDaemonProtocolVersion;
  hello.backend = 1;
  hello.item_count = 123456789;
  const HelloMsg got = roundtrip(hello);
  EXPECT_EQ(got.version, hello.version);
  EXPECT_EQ(got.backend, hello.backend);
  EXPECT_EQ(got.item_count, hello.item_count);
}

TEST(DaemonWire, HelloRejectsUnknownBackend) {
  HelloMsg hello;
  hello.backend = 2;
  const util::Bytes wire = hello.serialize();
  util::ByteReader reader(wire);
  EXPECT_THROW((void)HelloMsg::deserialize(reader), util::DeserializeError);
}

TEST(DaemonWire, ByeRoundTripsAndRejectsBadOk) {
  ByeMsg bye;
  bye.ok = 1;
  bye.rounds = 7;
  const ByeMsg got = roundtrip(bye);
  EXPECT_EQ(got.ok, 1);
  EXPECT_EQ(got.rounds, 7u);

  bye.ok = 9;
  const util::Bytes wire = bye.serialize();
  util::ByteReader reader(wire);
  EXPECT_THROW((void)ByeMsg::deserialize(reader), util::DeserializeError);
}

TEST(DaemonWire, ErrorRoundTripsAndTruncatesDetail) {
  ErrorMsg err;
  err.code = ErrorCode::kLimit;
  err.detail = std::string(10000, 'x');  // far beyond the wire cap
  const util::Bytes wire = err.serialize();
  util::ByteReader reader(wire);
  const ErrorMsg got = ErrorMsg::deserialize(reader);
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(got.code, ErrorCode::kLimit);
  EXPECT_EQ(got.detail.size(), util::wire::kMaxDaemonTextBytes);
}

TEST(DaemonWire, ErrorRejectsUnknownCode) {
  ErrorMsg err;
  err.code = static_cast<ErrorCode>(200);
  const util::Bytes wire = err.serialize();
  util::ByteReader reader(wire);
  EXPECT_THROW((void)ErrorMsg::deserialize(reader), util::DeserializeError);
}

TEST(DaemonWire, ErrorCodesHaveStableNames) {
  EXPECT_STREQ(to_string(ErrorCode::kProtocol), "protocol");
  EXPECT_STREQ(to_string(ErrorCode::kMalformed), "malformed");
  EXPECT_STREQ(to_string(ErrorCode::kLimit), "limit");
  EXPECT_STREQ(to_string(ErrorCode::kUnsupported), "unsupported");
  EXPECT_STREQ(to_string(ErrorCode::kShutdown), "shutdown");
}

}  // namespace
}  // namespace graphene::daemon
