// Edge paths the main loop/fault suites don't reach: obs-instrumented
// sessions, the TCP accept path refusing beyond max_connections, the
// pause/resume backpressure window (between the soft cap and the hard cap),
// the post-close drain window (both outcomes: peer drains it, deadline
// reaps it), listen() error paths, session move construction, and the
// loadgen's connection-error accounting.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <vector>

#include "daemon/loadgen.hpp"
#include "harness.hpp"
#include "obs/obs.hpp"

namespace graphene::daemon {
namespace {

using testing::ScriptedPeer;
using testing::drive;
using testing::make_items;

DaemonOptions no_timeout_opts() {
  DaemonOptions opts;
  opts.limits.idle_timeout_ns = 1ULL << 62;
  opts.limits.session_timeout_ns = 1ULL << 62;
  return opts;
}

/// Encodes `pairs` pipelined hello/bye exchanges as one byte script.
util::Bytes hello_bye_script(int pairs, std::uint8_t backend = 0) {
  HelloMsg hello;
  hello.version = kDaemonProtocolVersion;
  hello.backend = backend;
  hello.item_count = 10;
  ByeMsg bye;
  bye.ok = 1;
  bye.rounds = 1;
  util::Bytes script;
  for (int i = 0; i < pairs; ++i) {
    const util::Bytes h =
        net::encode_frame({net::MessageType::kDaemonHello, hello.serialize()});
    const util::Bytes b =
        net::encode_frame({net::MessageType::kDaemonBye, bye.serialize()});
    script.insert(script.end(), h.begin(), h.end());
    script.insert(script.end(), b.begin(), b.end());
  }
  return script;
}

/// Counts complete frames of the given type in a drained byte stream.
std::size_t count_frames(net::FrameReader& reader, util::ByteView bytes,
                         net::MessageType type) {
  reader.absorb(bytes);
  std::size_t count = 0;
  while (std::optional<net::Message> msg = reader.next()) {
    if (msg->type == type) ++count;
  }
  return count;
}

TEST(DaemonEdges, ObsMetersSessionsAndCloseReasons) {
  obs::Registry reg;
  DaemonOptions opts = no_timeout_opts();
  opts.protocol.obs = &reg;
  RelayDaemon daemon(make_items(40), opts);

  // One clean session per backend, plus one garbage peer for the error path.
  for (const std::uint8_t backend : {std::uint8_t{0}, std::uint8_t{1}}) {
    ScriptedPeer peer;
    peer.adopt_into(daemon);
    drive(daemon, 2);
    peer.send_bytes(hello_bye_script(1, backend));
    drive(daemon, 4);
    peer.close_now();
    drive(daemon, 4);
  }
  ScriptedPeer garbage;
  garbage.adopt_into(daemon);
  drive(daemon, 2);
  const util::Bytes junk(64, 0x21);
  garbage.send_bytes(junk);
  drive(daemon, 4);
  EXPECT_EQ(daemon.open_connections(), 0u);

  // Both backends metered, both close reasons counted, gauge back at zero.
  EXPECT_EQ(reg.counter("daemon_sessions_total", {{"backend", "graphene"}, {"ok", "1"}})
                .value(),
            1u);
  EXPECT_EQ(reg.counter("daemon_sessions_total", {{"backend", "rateless"}, {"ok", "1"}})
                .value(),
            1u);
  EXPECT_GE(reg.histogram("daemon_session_rounds", {{"backend", "graphene"}}).count(),
            1u);
  EXPECT_EQ(reg.counter("daemon_session_errors_total", {{"code", "malformed"}}).value(),
            1u);
  EXPECT_EQ(reg.counter("daemon_conns_closed_total", {{"reason", "peer_closed"}}).value(),
            2u);
  EXPECT_EQ(reg.counter("daemon_conns_closed_total", {{"reason", "malformed"}}).value(),
            1u);
  EXPECT_EQ(reg.gauge("daemon_connections_open").value(), 0.0);
}

TEST(DaemonEdges, TcpAcceptRefusesBeyondMaxConnections) {
  DaemonOptions opts = no_timeout_opts();
  opts.max_connections = 1;
  RelayDaemon daemon(make_items(10), opts);
  const std::uint16_t port = daemon.listen("127.0.0.1", 0);
  ASSERT_NE(port, 0);

  // No start(): the accept path runs deterministically through poll_once.
  const auto connect_client = [port]() {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd, static_cast<const sockaddr*>(static_cast<const void*>(&addr)),
                        sizeof(addr)),
              0);
    return fd;
  };
  const int first = connect_client();
  const int second = connect_client();
  drive(daemon, 4);

  EXPECT_EQ(daemon.open_connections(), 1u);
  EXPECT_EQ(daemon.stats().conns_refused, 1u);
  // The refused socket reads EOF; the accepted one stays open.
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(second, &byte, 1, 0), 0);
  ::close(first);
  ::close(second);
  drive(daemon, 4);
  EXPECT_EQ(daemon.open_connections(), 0u);
}

TEST(DaemonEdges, BackpressurePausesThenResumesReads) {
  DaemonOptions opts = no_timeout_opts();
  opts.limits.send_queue_cap = 600;       // a handful of queued offers trips it
  opts.limits.send_queue_hard_cap = 1 << 20;  // far away: pause, don't close
  RelayDaemon daemon(make_items(120), opts);

  ScriptedPeer peer;
  peer.shrink_daemon_sndbuf();  // flushes stall, so the queue actually grows
  peer.adopt_into(daemon);
  drive(daemon, 2);

  // One batch of pipelined sessions lands the queue between the caps.
  peer.send_bytes(hello_bye_script(10));
  drive(daemon, 4);
  EXPECT_EQ(daemon.open_connections(), 1u);

  // Drain the peer side until every queued offer arrives — the daemon must
  // flush, drop below the low watermark, and resume reading.
  net::FrameReader reader;
  std::size_t offers = 0;
  for (int i = 0; i < 200 && offers < 10; ++i) {
    drive(daemon, 1);
    offers += count_frames(reader, peer.recv_available(),
                           net::MessageType::kReconcileOffer);
  }
  EXPECT_EQ(offers, 10u);

  // Reads resumed: one more session completes end to end.
  peer.send_bytes(hello_bye_script(1));
  for (int i = 0; i < 50 && offers < 11; ++i) {
    drive(daemon, 1);
    offers += count_frames(reader, peer.recv_available(),
                           net::MessageType::kReconcileOffer);
  }
  EXPECT_EQ(offers, 11u);

  peer.close_now();
  drive(daemon, 4);
  EXPECT_EQ(daemon.open_connections(), 0u);
  // Per-session stats aggregate into daemon totals at connection close.
  EXPECT_EQ(daemon.stats().sessions_ok, 11u);
}

TEST(DaemonEdges, DrainWindowDeliversFinalFramesBeforeClose) {
  RelayDaemon daemon(make_items(120), no_timeout_opts());
  ScriptedPeer peer;
  peer.shrink_daemon_sndbuf();
  peer.adopt_into(daemon);
  drive(daemon, 2);

  // Stuff the send queue well past the shrunken socket buffer, then
  // misbehave: the kMalformed close happens with frames still queued, so the
  // daemon enters the drain window.
  peer.send_bytes(hello_bye_script(40));
  drive(daemon, 4);
  const util::Bytes junk(48, 0x13);
  peer.send_bytes(junk);
  drive(daemon, 4);

  // Reading the peer side lets the drain complete: all offers, then the
  // typed error, then EOF.
  net::FrameReader reader;
  std::size_t errors = 0;
  for (int i = 0; i < 200 && daemon.open_connections() != 0; ++i) {
    drive(daemon, 1);
    errors += count_frames(reader, peer.recv_available(),
                           net::MessageType::kDaemonError);
  }
  errors += count_frames(reader, peer.recv_available(), net::MessageType::kDaemonError);
  EXPECT_EQ(daemon.open_connections(), 0u);
  EXPECT_EQ(errors, 1u);
  EXPECT_TRUE(peer.saw_eof());
  EXPECT_EQ(daemon.stats().closed_by_reason[static_cast<std::size_t>(
                CloseReason::kMalformed)],
            1u);
}

TEST(DaemonEdges, DrainDeadlineReapsUnreadPeer) {
  obs::ScopedFakeClock clock(1'000'000'000);
  DaemonOptions opts = no_timeout_opts();
  opts.drain_timeout_ns = 2'000'000;
  RelayDaemon daemon(make_items(120), opts);
  ScriptedPeer peer;
  peer.shrink_daemon_sndbuf();
  peer.adopt_into(daemon);
  drive(daemon, 2);

  peer.send_bytes(hello_bye_script(40));
  drive(daemon, 4);
  const util::Bytes junk(48, 0x13);
  peer.send_bytes(junk);
  drive(daemon, 4);
  EXPECT_EQ(daemon.open_connections(), 1u);  // draining, peer never reads

  clock.advance(opts.drain_timeout_ns + 1'000'000);
  drive(daemon, 2);
  EXPECT_EQ(daemon.open_connections(), 0u);
  EXPECT_EQ(daemon.stats().closed_by_reason[static_cast<std::size_t>(
                CloseReason::kMalformed)],
            1u);
}

TEST(DaemonEdges, ListenRejectsBadAndUnassignableAddresses) {
  RelayDaemon daemon(make_items(10), no_timeout_opts());
  EXPECT_THROW((void)daemon.listen("not-an-address", 0), std::runtime_error);
  // TEST-NET-3 (RFC 5737) is never assigned locally, so bind must fail.
  EXPECT_THROW((void)daemon.listen("203.0.113.7", 0), std::runtime_error);
}

TEST(DaemonEdges, SessionsAreMoveConstructible) {
  const reconcile::ItemSet host_items = make_items(30);
  DaemonLimits limits;
  core::ProtocolConfig cfg;
  PeerSession original(host_items, /*salt=*/7, limits, cfg);
  PeerSession moved(std::move(original));

  const reconcile::ItemSet client_items = make_items(25, 5);
  ClientSession client_orig(client_items, cfg);
  ClientSession client(std::move(client_orig));

  EXPECT_EQ(testing::pump_session(moved, client, /*now_ns=*/1'000'000'000),
            ClientSession::Status::kComplete);
}

TEST(LoadgenEdges, DeadPortReportsEveryConnectionAsError) {
  // Bind-then-close so the port is known dead, not merely unlikely.
  RelayDaemon placeholder(make_items(5));
  const std::uint16_t port = placeholder.listen("127.0.0.1", 0);
  placeholder.stop();

  const reconcile::ItemSet client_items = make_items(10);
  LoadgenOptions lg;
  lg.port = port;
  lg.connections = 4;
  lg.sessions_per_conn = 1;
  lg.workers = 2;
  lg.items = &client_items;
  lg.deadline_ns = 20ULL * 1000 * 1000 * 1000;
  const LoadgenReport report = run_loadgen(lg);
  EXPECT_EQ(report.sessions_ok, 0u);
  EXPECT_EQ(report.conn_errors, 4u);
}

TEST(LoadgenEdges, RefusedConnectionsCountAsErrorsAndMirrorIntoObs) {
  obs::Registry reg;
  DaemonOptions opts = no_timeout_opts();
  opts.max_connections = 4;
  RelayDaemon daemon(make_items(60), opts);
  const std::uint16_t port = daemon.listen("127.0.0.1", 0);
  daemon.start();

  const reconcile::ItemSet client_items = make_items(50, 10);
  LoadgenOptions lg;
  lg.port = port;
  lg.connections = 8;  // four beyond the daemon's cap
  lg.sessions_per_conn = 1;
  lg.workers = 2;
  lg.items = &client_items;
  lg.protocol.obs = &reg;
  lg.deadline_ns = 60ULL * 1000 * 1000 * 1000;
  const LoadgenReport report = run_loadgen(lg);
  daemon.stop();

  EXPECT_EQ(report.sessions_ok, 4u);
  EXPECT_EQ(report.conn_errors, 4u);
  EXPECT_EQ(reg.histogram("loadgen_session_ns").count(), 4u);
}

}  // namespace
}  // namespace graphene::daemon
