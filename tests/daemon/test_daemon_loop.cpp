// RelayDaemon driven deterministically: socketpair peers scripted byte by
// byte through poll_once(), fake-clock timeouts, backpressure, drain
// windows, shutdown aborts, and descriptor hygiene.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "harness.hpp"
#include "obs/obs.hpp"

namespace graphene::daemon {
namespace {

using testing::ScriptedPeer;
using testing::count_open_fds;
using testing::drive;
using testing::make_items;

DaemonOptions small_opts() {
  DaemonOptions opts;
  opts.limits.idle_timeout_ns = 1ULL << 62;  // tests drive time explicitly
  opts.limits.session_timeout_ns = 1ULL << 62;
  return opts;
}

/// Runs one complete client session over a scripted socketpair, splitting
/// every outbound frame into `chunk`-byte writes with a poll_once between
/// each — partial reads from the daemon's point of view.
ClientSession::Status run_scripted_session(RelayDaemon& daemon,
                                           const reconcile::ItemSet& client_items,
                                           core::ReconcileBackend backend,
                                           std::size_t chunk) {
  core::ProtocolConfig cfg;
  cfg.reconcile_backend = backend;
  ScriptedPeer peer;
  peer.adopt_into(daemon);
  drive(daemon, 2);  // adopt + register

  ClientSession client(client_items, cfg);
  net::FrameReader reader;
  std::vector<net::Message> to_daemon{client.hello()};
  for (int step = 0; step < 400; ++step) {
    for (const net::Message& msg : to_daemon) {
      const util::Bytes frame = net::encode_frame(msg);
      for (std::size_t off = 0; off < frame.size(); off += chunk) {
        const std::size_t n = std::min(chunk, frame.size() - off);
        peer.send_bytes(util::ByteView(frame.data() + off, n));
        drive(daemon, 1);  // the daemon sees each split separately
      }
    }
    to_daemon.clear();
    drive(daemon, 2);
    reader.absorb(peer.recv_available());
    while (std::optional<net::Message> msg = reader.next()) {
      if (client.on_message(*msg, to_daemon) != ClientSession::Status::kInFlight) {
        for (const net::Message& bye : to_daemon) peer.send_message(bye);
        drive(daemon, 4);
        peer.close_now();
        drive(daemon, 4);
        return client.status();
      }
    }
    if (to_daemon.empty()) break;  // waiting on the daemon; keep polling
  }
  return client.status();
}

TEST(RelayDaemon, CompletesSessionOverSocketpair) {
  RelayDaemon daemon(make_items(150), small_opts());
  const reconcile::ItemSet client_items = make_items(130, /*start=*/40);
  EXPECT_EQ(run_scripted_session(daemon, client_items,
                                 core::ReconcileBackend::kGraphene, /*chunk=*/4096),
            ClientSession::Status::kComplete);
  drive(daemon, 2);
  EXPECT_EQ(daemon.open_connections(), 0u);
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.sessions_ok, 1u);
  EXPECT_EQ(stats.sessions_failed, 0u);
  EXPECT_EQ(stats.closed_by_reason[static_cast<std::size_t>(CloseReason::kPeerClosed)],
            1u);
}

TEST(RelayDaemon, CompletesRatelessSessionWithSingleByteWrites) {
  RelayDaemon daemon(make_items(60), small_opts());
  const reconcile::ItemSet client_items = make_items(50, /*start=*/20);
  EXPECT_EQ(run_scripted_session(daemon, client_items,
                                 core::ReconcileBackend::kRatelessIblt, /*chunk=*/1),
            ClientSession::Status::kComplete);
}

TEST(RelayDaemon, MidMessageDisconnectIsPeerReset) {
  RelayDaemon daemon(make_items(50), small_opts());
  ScriptedPeer peer;
  peer.adopt_into(daemon);
  drive(daemon, 2);

  core::ProtocolConfig cfg;
  const reconcile::ItemSet client_items = make_items(10);
  ClientSession client(client_items, cfg);
  const util::Bytes frame = net::encode_frame(client.hello());
  peer.send_bytes(util::ByteView(frame.data(), frame.size() / 2));
  drive(daemon, 2);
  EXPECT_EQ(daemon.open_connections(), 1u);

  peer.close_now();
  drive(daemon, 4);
  EXPECT_EQ(daemon.open_connections(), 0u);
  EXPECT_EQ(daemon.stats().closed_by_reason[static_cast<std::size_t>(
                CloseReason::kPeerReset)],
            1u);
}

TEST(RelayDaemon, GarbageGetsTypedErrorFrameThenClose) {
  RelayDaemon daemon(make_items(50), small_opts());
  ScriptedPeer peer;
  peer.adopt_into(daemon);
  drive(daemon, 2);

  const util::Bytes garbage(200, 0x77);
  peer.send_bytes(garbage);
  drive(daemon, 4);

  net::FrameReader reader;
  reader.absorb(peer.recv_available());
  const std::optional<net::Message> msg = reader.next();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, net::MessageType::kDaemonError);
  util::ByteReader payload(msg->payload);
  EXPECT_EQ(ErrorMsg::deserialize(payload).code, ErrorCode::kMalformed);
  EXPECT_TRUE(peer.saw_eof());
  EXPECT_EQ(daemon.open_connections(), 0u);
  EXPECT_EQ(daemon.stats().closed_by_reason[static_cast<std::size_t>(
                CloseReason::kMalformed)],
            1u);
}

TEST(RelayDaemon, IdleTimeoutClosesOnFakeClock) {
  obs::ScopedFakeClock clock(1'000'000);
  DaemonOptions opts;
  opts.limits.idle_timeout_ns = 5'000'000;
  RelayDaemon daemon(make_items(20), opts);
  ScriptedPeer peer;
  peer.adopt_into(daemon);
  drive(daemon, 2);
  EXPECT_EQ(daemon.open_connections(), 1u);

  clock.advance(4'999'999);
  drive(daemon, 1);
  EXPECT_EQ(daemon.open_connections(), 1u);
  clock.advance(2);
  drive(daemon, 1);
  EXPECT_EQ(daemon.open_connections(), 0u);
  EXPECT_EQ(daemon.stats().closed_by_reason[static_cast<std::size_t>(
                CloseReason::kIdleTimeout)],
            1u);
}

TEST(RelayDaemon, SessionTimeoutClosesOnFakeClock) {
  obs::ScopedFakeClock clock(1'000'000);
  DaemonOptions opts;
  opts.limits.idle_timeout_ns = 1ULL << 62;
  opts.limits.session_timeout_ns = 10'000'000;
  RelayDaemon daemon(make_items(40), opts);
  ScriptedPeer peer;
  peer.adopt_into(daemon);
  drive(daemon, 2);

  core::ProtocolConfig cfg;
  const reconcile::ItemSet client_items = make_items(30, 10);
  ClientSession client(client_items, cfg);
  peer.send_message(client.hello());
  drive(daemon, 2);  // session opens; offer comes back

  clock.advance(10'000'001);
  drive(daemon, 2);
  EXPECT_EQ(daemon.open_connections(), 0u);
  EXPECT_EQ(daemon.stats().closed_by_reason[static_cast<std::size_t>(
                CloseReason::kSessionTimeout)],
            1u);
}

TEST(RelayDaemon, SlowDrainPeerHitsSendQueueHardCap) {
  DaemonOptions opts = small_opts();
  opts.limits.send_queue_cap = 2048;
  opts.limits.send_queue_hard_cap = 8192;
  RelayDaemon daemon(make_items(300), opts);

  ScriptedPeer peer;
  peer.shrink_daemon_sndbuf();  // make the kernel buffer fill in KiB
  peer.adopt_into(daemon);
  drive(daemon, 2);

  // Pipeline hello/bye pairs and never read a single reply byte: the daemon
  // processes the whole batch in one read, queueing an offer per pair for a
  // peer that is not draining — the aggregate blows the hard cap no matter
  // how small one offer is.
  HelloMsg hello;
  hello.version = kDaemonProtocolVersion;
  hello.item_count = 10;
  ByeMsg bye;
  bye.ok = 0;
  bye.rounds = 0;
  util::Bytes script;
  for (int i = 0; i < 200; ++i) {
    const util::Bytes h =
        net::encode_frame({net::MessageType::kDaemonHello, hello.serialize()});
    const util::Bytes b =
        net::encode_frame({net::MessageType::kDaemonBye, bye.serialize()});
    script.insert(script.end(), h.begin(), h.end());
    script.insert(script.end(), b.begin(), b.end());
  }
  bool closed = false;
  std::size_t off = 0;
  for (int i = 0; i < 200 && !closed; ++i) {
    if (off < script.size()) {
      off += peer.send_bytes(
          util::ByteView(script.data() + off, script.size() - off));
    }
    drive(daemon, 1);
    closed = daemon.open_connections() == 0;
  }
  ASSERT_TRUE(closed) << "slow-drain peer was never cut off";
  EXPECT_EQ(
      daemon.stats().closed_by_reason[static_cast<std::size_t>(CloseReason::kLimit)],
      1u);
}

TEST(RelayDaemon, StopAbortsInFlightSessionsTyped) {
  RelayDaemon daemon(make_items(80), small_opts());
  std::vector<std::unique_ptr<ScriptedPeer>> peers;
  core::ProtocolConfig cfg;
  const reconcile::ItemSet client_items = make_items(60, 10);
  for (int i = 0; i < 5; ++i) {
    auto peer = std::make_unique<ScriptedPeer>();
    peer->adopt_into(daemon);
    drive(daemon, 1);
    ClientSession client(client_items, cfg);
    peer->send_message(client.hello());  // leave every session mid-flight
    peers.push_back(std::move(peer));
  }
  drive(daemon, 4);
  EXPECT_EQ(daemon.open_connections(), 5u);

  daemon.stop();
  EXPECT_EQ(daemon.open_connections(), 0u);
  EXPECT_EQ(daemon.stats().closed_by_reason[static_cast<std::size_t>(
                CloseReason::kShutdown)],
            5u);
  // Each peer got the typed shutdown error before its fd closed.
  for (auto& peer : peers) {
    net::FrameReader reader;
    reader.absorb(peer->recv_available());
    bool saw_shutdown = false;
    while (std::optional<net::Message> msg = reader.next()) {
      if (msg->type != net::MessageType::kDaemonError) continue;
      util::ByteReader payload(msg->payload);
      saw_shutdown = ErrorMsg::deserialize(payload).code == ErrorCode::kShutdown;
    }
    EXPECT_TRUE(saw_shutdown);
  }
}

TEST(RelayDaemon, MaxConnectionsRefusesExtras) {
  DaemonOptions opts = small_opts();
  opts.max_connections = 2;
  RelayDaemon daemon(make_items(10), opts);
  ScriptedPeer a, b, c;
  a.adopt_into(daemon);
  b.adopt_into(daemon);
  c.adopt_into(daemon);
  drive(daemon, 3);
  EXPECT_EQ(daemon.open_connections(), 2u);
  EXPECT_EQ(daemon.stats().conns_refused, 1u);
  EXPECT_TRUE(c.saw_eof());
}

TEST(RelayDaemon, LifecycleLeaksNoDescriptors) {
  const std::size_t before = count_open_fds();
  {
    RelayDaemon daemon(make_items(60), small_opts());
    for (int round = 0; round < 3; ++round) {
      const reconcile::ItemSet client_items = make_items(50, 20);
      EXPECT_EQ(run_scripted_session(daemon, client_items,
                                     core::ReconcileBackend::kGraphene, 512),
                ClientSession::Status::kComplete);
    }
    // And one abandoned mid-frame.
    ScriptedPeer peer;
    peer.adopt_into(daemon);
    drive(daemon, 2);
    const util::Bytes junk(10, 0x42);
    peer.send_bytes(junk);
    drive(daemon, 1);
    peer.close_now();
    drive(daemon, 4);
    EXPECT_EQ(daemon.open_connections(), 0u);
  }
  EXPECT_EQ(count_open_fds(), before);
}

}  // namespace
}  // namespace graphene::daemon
