// PeerSession/ClientSession state machines at the message level: happy paths
// on both backends, every typed error path, policy caps, and the deadline
// arithmetic — all transport-free and on fake time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness.hpp"
#include "net/frame.hpp"

namespace graphene::daemon {
namespace {

using testing::make_items;
using testing::pump_session;

constexpr std::uint64_t kNow = 1'000'000'000;

core::ProtocolConfig cfg_for(core::ReconcileBackend backend) {
  core::ProtocolConfig cfg;
  cfg.reconcile_backend = backend;
  return cfg;
}

struct SessionRig {
  explicit SessionRig(core::ReconcileBackend backend = core::ReconcileBackend::kGraphene,
                      DaemonLimits limits = {})
      : host_items(make_items(120)),
        client_items(make_items(100, /*start=*/40)),  // 80 shared, 20+40 delta
        session(host_items, /*salt=*/0x5eed, limits, cfg_for(backend)),
        client(client_items, cfg_for(backend)) {}

  reconcile::ItemSet host_items;
  reconcile::ItemSet client_items;
  PeerSession session;
  ClientSession client;
};

TEST(PeerSession, GrapheneSessionCompletes) {
  SessionRig rig;
  EXPECT_EQ(pump_session(rig.session, rig.client, kNow),
            ClientSession::Status::kComplete);
  EXPECT_EQ(rig.client.outcome().host_set, rig.host_items);
  EXPECT_FALSE(rig.session.closed());
  EXPECT_FALSE(rig.session.in_session());  // back to await-hello after bye
  EXPECT_EQ(rig.session.stats().sessions_ok, 1u);
  EXPECT_EQ(rig.session.stats().sessions_failed, 0u);
}

TEST(PeerSession, RatelessSessionCompletes) {
  SessionRig rig(core::ReconcileBackend::kRatelessIblt);
  EXPECT_EQ(pump_session(rig.session, rig.client, kNow),
            ClientSession::Status::kComplete);
  EXPECT_EQ(rig.client.outcome().host_set, rig.host_items);
  EXPECT_EQ(rig.session.stats().sessions_ok, 1u);
}

TEST(PeerSession, RunsSessionsBackToBack) {
  SessionRig rig;
  for (int i = 0; i < 3; ++i) {
    ClientSession client(rig.client_items, cfg_for(core::ReconcileBackend::kGraphene));
    EXPECT_EQ(pump_session(rig.session, client, kNow),
              ClientSession::Status::kComplete);
  }
  EXPECT_EQ(rig.session.stats().sessions_ok, 3u);
  EXPECT_FALSE(rig.session.closed());
}

TEST(PeerSession, RequestBeforeHelloIsProtocolError) {
  SessionRig rig;
  std::vector<net::Message> out;
  const net::Message premature{net::MessageType::kGrapheneRequest, util::Bytes{}};
  EXPECT_FALSE(rig.session.on_bytes(kNow, net::encode_frame(premature), out));
  EXPECT_EQ(rig.session.reason(), CloseReason::kProtocolError);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, net::MessageType::kDaemonError);
  util::ByteReader reader(out[0].payload);
  EXPECT_EQ(ErrorMsg::deserialize(reader).code, ErrorCode::kProtocol);
}

TEST(PeerSession, UnsupportedVersionIsRejected) {
  SessionRig rig;
  HelloMsg hello;
  hello.version = kDaemonProtocolVersion + 7;
  hello.item_count = 10;
  std::vector<net::Message> out;
  const net::Message msg{net::MessageType::kDaemonHello, hello.serialize()};
  EXPECT_FALSE(rig.session.on_bytes(kNow, net::encode_frame(msg), out));
  EXPECT_EQ(rig.session.reason(), CloseReason::kProtocolError);
  ASSERT_EQ(out.size(), 1u);
  util::ByteReader reader(out[0].payload);
  EXPECT_EQ(ErrorMsg::deserialize(reader).code, ErrorCode::kUnsupported);
}

TEST(PeerSession, TrailingBytesInHelloAreMalformed) {
  SessionRig rig;
  HelloMsg hello;
  hello.item_count = 10;
  util::Bytes payload = hello.serialize();
  payload.push_back(0x00);
  std::vector<net::Message> out;
  const net::Message msg{net::MessageType::kDaemonHello, payload};
  EXPECT_FALSE(rig.session.on_bytes(kNow, net::encode_frame(msg), out));
  EXPECT_EQ(rig.session.reason(), CloseReason::kMalformed);
}

TEST(PeerSession, GarbageBytesAreMalformed) {
  SessionRig rig;
  std::vector<net::Message> out;
  const util::Bytes garbage(64, 0x6f);
  EXPECT_FALSE(rig.session.on_bytes(kNow, garbage, out));
  EXPECT_EQ(rig.session.reason(), CloseReason::kMalformed);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, net::MessageType::kDaemonError);
}

TEST(PeerSession, HelloInsideSessionIsProtocolError) {
  SessionRig rig;
  HelloMsg hello;
  hello.item_count = rig.client_items.size();
  const net::Message msg{net::MessageType::kDaemonHello, hello.serialize()};
  std::vector<net::Message> out;
  ASSERT_TRUE(rig.session.on_bytes(kNow, net::encode_frame(msg), out));
  EXPECT_TRUE(rig.session.in_session());
  out.clear();
  EXPECT_FALSE(rig.session.on_bytes(kNow, net::encode_frame(msg), out));
  EXPECT_EQ(rig.session.reason(), CloseReason::kProtocolError);
}

TEST(PeerSession, SessionMessageCapCloses) {
  DaemonLimits limits;
  limits.session_msg_cap = 0;  // the first in-session request already trips
  SessionRig rig(core::ReconcileBackend::kGraphene, limits);
  EXPECT_EQ(pump_session(rig.session, rig.client, kNow),
            ClientSession::Status::kFailed);
  EXPECT_EQ(rig.session.reason(), CloseReason::kLimit);
  ASSERT_NE(rig.client.daemon_error(), nullptr);
  EXPECT_EQ(rig.client.daemon_error()->code, ErrorCode::kLimit);
}

TEST(PeerSession, ConnSessionCapRotates) {
  DaemonLimits limits;
  limits.conn_session_cap = 1;
  SessionRig rig(core::ReconcileBackend::kGraphene, limits);
  EXPECT_EQ(pump_session(rig.session, rig.client, kNow),
            ClientSession::Status::kComplete);
  EXPECT_TRUE(rig.session.closed());
  EXPECT_EQ(rig.session.reason(), CloseReason::kLimit);
  EXPECT_EQ(rig.session.stats().sessions_ok, 1u);
}

TEST(PeerSession, IdleTimeoutFires) {
  DaemonLimits limits;
  limits.idle_timeout_ns = 1000;
  SessionRig rig(core::ReconcileBackend::kGraphene, limits);
  EXPECT_TRUE(rig.session.check_deadlines(kNow));  // stamps first activity
  EXPECT_EQ(rig.session.next_deadline_ns(), kNow + 1000);
  EXPECT_TRUE(rig.session.check_deadlines(kNow + 999));
  EXPECT_FALSE(rig.session.check_deadlines(kNow + 1000));
  EXPECT_EQ(rig.session.reason(), CloseReason::kIdleTimeout);
}

TEST(PeerSession, SessionTimeoutFires) {
  DaemonLimits limits;
  limits.session_timeout_ns = 5000;
  limits.idle_timeout_ns = 1ULL << 60;
  SessionRig rig(core::ReconcileBackend::kGraphene, limits);
  HelloMsg hello;
  hello.item_count = rig.client_items.size();
  std::vector<net::Message> out;
  const net::Message msg{net::MessageType::kDaemonHello, hello.serialize()};
  ASSERT_TRUE(rig.session.on_bytes(kNow, net::encode_frame(msg), out));
  EXPECT_EQ(rig.session.next_deadline_ns(), kNow + 5000);
  EXPECT_TRUE(rig.session.check_deadlines(kNow + 4999));
  EXPECT_FALSE(rig.session.check_deadlines(kNow + 5000));
  EXPECT_EQ(rig.session.reason(), CloseReason::kSessionTimeout);
}

TEST(PeerSession, EofBetweenSessionsIsClean) {
  SessionRig rig;
  EXPECT_EQ(pump_session(rig.session, rig.client, kNow),
            ClientSession::Status::kComplete);
  rig.session.on_eof();
  EXPECT_EQ(rig.session.reason(), CloseReason::kPeerClosed);
}

TEST(PeerSession, EofMidSessionIsReset) {
  SessionRig rig;
  HelloMsg hello;
  hello.item_count = rig.client_items.size();
  std::vector<net::Message> out;
  const net::Message msg{net::MessageType::kDaemonHello, hello.serialize()};
  ASSERT_TRUE(rig.session.on_bytes(kNow, net::encode_frame(msg), out));
  rig.session.on_eof();
  EXPECT_EQ(rig.session.reason(), CloseReason::kPeerReset);
}

TEST(PeerSession, EofMidFrameIsReset) {
  SessionRig rig;
  const util::Bytes frame = net::encode_frame(rig.client.hello());
  std::vector<net::Message> out;
  ASSERT_TRUE(rig.session.on_bytes(
      kNow, util::ByteView(frame.data(), frame.size() / 2), out));
  rig.session.on_eof();
  EXPECT_EQ(rig.session.reason(), CloseReason::kPeerReset);
}

TEST(PeerSession, AdministrativeCloseEmitsErrorOnlyMidSession) {
  SessionRig rig;
  std::vector<net::Message> out;
  rig.session.close(CloseReason::kShutdown, ErrorCode::kShutdown, "bye", out);
  EXPECT_TRUE(out.empty());  // not serving: no one to tell
  EXPECT_EQ(rig.session.reason(), CloseReason::kShutdown);

  SessionRig serving;
  HelloMsg hello;
  hello.item_count = serving.client_items.size();
  std::vector<net::Message> replies;
  const net::Message msg{net::MessageType::kDaemonHello, hello.serialize()};
  ASSERT_TRUE(serving.session.on_bytes(kNow, net::encode_frame(msg), replies));
  replies.clear();
  serving.session.close(CloseReason::kShutdown, ErrorCode::kShutdown, "bye", replies);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, net::MessageType::kDaemonError);
  // Idempotent: a second close neither re-emits nor rewrites the reason.
  replies.clear();
  serving.session.close(CloseReason::kMalformed, ErrorCode::kMalformed, "x", replies);
  EXPECT_TRUE(replies.empty());
  EXPECT_EQ(serving.session.reason(), CloseReason::kShutdown);
}

TEST(ClientSession, RoundCapBoundsHostileDaemon) {
  // A daemon that replies with syntactically valid but useless rateless
  // chunks forever must be cut off by the client's round cap.
  const reconcile::ItemSet client_items = make_items(50);
  core::ProtocolConfig cfg = cfg_for(core::ReconcileBackend::kRatelessIblt);
  cfg.reconcile_round_cap = 4;
  ClientSession client(client_items, cfg);

  // Build a real host so the replies parse, but feed only its first symbol
  // batch over and over: never enough to finish.
  const reconcile::ItemSet host_items = make_items(400, 1000);
  auto host = reconcile::make_host_backend(host_items, 0x5eed,
                                           cfg_for(core::ReconcileBackend::kRatelessIblt));
  const reconcile::WireMsg opening = host->open(client_items.size());
  net::Message stuck = opening.to_message();

  std::vector<net::Message> out;
  ClientSession::Status status = ClientSession::Status::kInFlight;
  for (int i = 0; i < 100 && status == ClientSession::Status::kInFlight; ++i) {
    out.clear();
    status = client.on_message(stuck, out);
  }
  EXPECT_EQ(status, ClientSession::Status::kFailed);
  EXPECT_LE(client.rounds(), 5u);
}

TEST(CloseReason, NamesAreStable) {
  EXPECT_STREQ(to_string(CloseReason::kOpen), "open");
  EXPECT_STREQ(to_string(CloseReason::kPeerClosed), "peer_closed");
  EXPECT_STREQ(to_string(CloseReason::kPeerReset), "peer_reset");
  EXPECT_STREQ(to_string(CloseReason::kMalformed), "malformed");
  EXPECT_STREQ(to_string(CloseReason::kProtocolError), "protocol_error");
  EXPECT_STREQ(to_string(CloseReason::kLimit), "limit");
  EXPECT_STREQ(to_string(CloseReason::kIdleTimeout), "idle_timeout");
  EXPECT_STREQ(to_string(CloseReason::kSessionTimeout), "session_timeout");
  EXPECT_STREQ(to_string(CloseReason::kShutdown), "shutdown");
}

}  // namespace
}  // namespace graphene::daemon
