// Deterministic harness for the relay daemon suites.
//
// Two layers, matching the daemon's own split:
//   * message-level — PeerSession/ClientSession shuttled through encoded
//     frames in process, no sockets, fake time passed explicitly;
//   * transport-level — a real RelayDaemon driven single-threaded through
//     poll_once() over socketpairs the tests script byte by byte (partial
//     reads, split writes, slow drains, mid-message disconnects), with
//     ScopedFakeClock driving every timeout.
// Both layers bound every loop, so a protocol hang fails an assertion
// instead of wedging the suite; fd hygiene is checked by counting
// /proc/self/fd before and after.
#pragma once

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

#include "daemon/client.hpp"
#include "daemon/daemon.hpp"
#include "daemon/session.hpp"
#include "net/frame.hpp"
#include "reconcile/types.hpp"

namespace graphene::daemon::testing {

inline reconcile::ItemDigest make_digest(std::uint64_t v) {
  reconcile::ItemDigest d{};
  for (std::size_t i = 0; i < 8; ++i) {
    d[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  d[31] = 0x9c;  // keep test digests disjoint from the all-zero digest
  return d;
}

/// `count` digests starting at `start` — overlapping ranges model shared
/// items between host and client sets.
inline reconcile::ItemSet make_items(std::uint64_t count, std::uint64_t start = 0) {
  reconcile::ItemSet items;
  items.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) items.insert(make_digest(start + i));
  return items;
}

/// Open descriptors of this process — the leak detector for the soak suite.
inline std::size_t count_open_fds() {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

/// One end of a socketpair whose far end a RelayDaemon adopted. All I/O is
/// nonblocking; tests interleave writes/reads with daemon.poll_once(0).
class ScriptedPeer {
 public:
  ScriptedPeer() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0, fds) !=
        0) {
      return;
    }
    mine_ = fds[0];
    theirs_ = fds[1];
  }
  ~ScriptedPeer() {
    if (mine_ >= 0) ::close(mine_);
    if (theirs_ >= 0) ::close(theirs_);
  }
  ScriptedPeer(const ScriptedPeer&) = delete;
  ScriptedPeer& operator=(const ScriptedPeer&) = delete;

  /// Hands the daemon its end (ownership transfers; call exactly once).
  void adopt_into(RelayDaemon& daemon) {
    daemon.adopt(theirs_);
    theirs_ = -1;
  }

  /// Writes as much of `data` as the kernel accepts; returns bytes taken
  /// (short when the daemon applies backpressure and the buffer fills).
  std::size_t send_bytes(util::ByteView data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(mine_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      break;  // EAGAIN (buffer full) or daemon closed its end
    }
    return off;
  }

  void send_message(const net::Message& msg) {
    const util::Bytes frame = net::encode_frame(msg);
    send_bytes(frame);
  }

  /// Drains everything currently readable (empty when nothing is pending).
  util::Bytes recv_available() {
    util::Bytes out;
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::read(mine_, buf, sizeof buf);
      if (n > 0) {
        out.insert(out.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return out;  // EOF or EAGAIN
    }
  }

  /// True once the daemon closed its end and all bytes are drained.
  [[nodiscard]] bool saw_eof() {
    std::uint8_t b = 0;
    const ssize_t n = ::recv(mine_, &b, 1, MSG_PEEK);
    return n == 0;
  }

  void shutdown_write() { (void)::shutdown(mine_, SHUT_WR); }
  void close_now() {
    if (mine_ >= 0) ::close(mine_);
    mine_ = -1;
  }
  [[nodiscard]] int fd() const noexcept { return mine_; }
  /// Shrinks the daemon-side send buffer before adoption so slow-drain tests
  /// can fill it with kilobytes instead of the default hundreds of KiB.
  void shrink_daemon_sndbuf() {
    const int tiny = 1;  // kernel clamps to its minimum
    (void)::setsockopt(theirs_, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny);
  }

 private:
  int mine_ = -1;
  int theirs_ = -1;
};

/// Steps poll_once(0) `iters` times — bounded, so a wedged loop fails fast.
inline void drive(RelayDaemon& daemon, int iters) {
  for (int i = 0; i < iters; ++i) (void)daemon.poll_once(/*timeout_ms=*/0);
}

/// Message-level shuttle: runs one full client session against a PeerSession
/// with no transport at all. Returns the client's final status; `now_ns` is
/// passed straight through to the session (fake time).
inline ClientSession::Status pump_session(PeerSession& session, ClientSession& client,
                                          std::uint64_t now_ns, int max_steps = 200) {
  std::vector<net::Message> to_daemon{client.hello()};
  for (int step = 0; step < max_steps; ++step) {
    std::vector<net::Message> to_client;
    for (const net::Message& msg : to_daemon) {
      const util::Bytes frame = net::encode_frame(msg);
      if (!session.on_bytes(now_ns, frame, to_client)) break;
    }
    to_daemon.clear();
    for (const net::Message& msg : to_client) {
      if (client.on_message(msg, to_daemon) != ClientSession::Status::kInFlight) {
        // flush the bye so the session's accounting sees the result
        for (const net::Message& bye : to_daemon) {
          std::vector<net::Message> ignored;
          (void)session.on_bytes(now_ns, net::encode_frame(bye), ignored);
        }
        return client.status();
      }
    }
    if (to_daemon.empty()) break;  // neither side has anything to say
  }
  return client.status();
}

}  // namespace graphene::daemon::testing
