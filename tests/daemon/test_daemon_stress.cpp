// Threaded daemon tests over real TCP: the loadgen engine end to end, and
// the shutdown race — stop() fired while worker threads have sessions in
// flight. The latter is the TSan CI leg's subject (test names match the
// sanitizer stress regex): the property is that stop() always joins, every
// connection ends typed, and no descriptor outlives the daemon.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "daemon/loadgen.hpp"
#include "harness.hpp"

namespace graphene::daemon {
namespace {

using testing::count_open_fds;
using testing::make_items;

TEST(DaemonTcpIntegration, LoadgenCompletesSessionsOnBothBackends) {
  RelayDaemon daemon(make_items(200));
  const std::uint16_t port = daemon.listen("127.0.0.1", 0);
  ASSERT_NE(port, 0);
  daemon.start();

  const reconcile::ItemSet client_items = make_items(170, /*start=*/50);
  std::uint64_t expected_ok = 0;
  for (const auto backend :
       {core::ReconcileBackend::kGraphene, core::ReconcileBackend::kRatelessIblt}) {
    LoadgenOptions lg;
    lg.port = port;
    lg.connections = 8;
    lg.sessions_per_conn = 2;
    lg.workers = 2;
    lg.items = &client_items;
    lg.protocol.reconcile_backend = backend;
    lg.deadline_ns = 60ULL * 1000 * 1000 * 1000;
    const LoadgenReport report = run_loadgen(lg);
    // Graphene promises β = 239/240 per session, not certainty, and the
    // daemon salts each connection with its fd — so an honest decode failure
    // is possible and run-dependent. Budget one; demand the rest succeed.
    EXPECT_EQ(report.sessions_ok + report.sessions_failed, 16u);
    EXPECT_LE(report.sessions_failed, 1u);
    expected_ok += report.sessions_ok;
    EXPECT_EQ(report.conn_errors, 0u);
    EXPECT_GT(report.p50_ns, 0u);
    EXPECT_GE(report.p99_ns, report.p50_ns);
    EXPECT_GT(report.sessions_per_sec, 0.0);
  }

  daemon.stop();
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.sessions_ok, expected_ok);
  EXPECT_EQ(stats.conns_opened, 16u);
  EXPECT_EQ(stats.conns_closed, 16u);
  EXPECT_EQ(daemon.open_connections(), 0u);
}

TEST(DaemonShutdownStress, StopRacesInFlightSessions) {
  const std::size_t fds_before = count_open_fds();
  const reconcile::ItemSet host_items = make_items(150);
  const reconcile::ItemSet client_items = make_items(120, /*start=*/40);

  // Each round stops at a different point of the load's lifetime — from
  // "barely connected" to "most sessions done" — so the stop path races
  // accept, mid-session serving, and drain.
  for (int round = 0; round < 4; ++round) {
    RelayDaemon daemon(host_items);
    const std::uint16_t port = daemon.listen("127.0.0.1", 0);
    daemon.start();

    LoadgenOptions lg;
    lg.port = port;
    lg.connections = 16;
    lg.sessions_per_conn = 4;
    lg.workers = 4;
    lg.items = &client_items;
    lg.deadline_ns = 60ULL * 1000 * 1000 * 1000;
    LoadgenReport report;
    std::atomic<bool> load_done{false};
    std::thread load([&] {
      report = run_loadgen(lg);
      load_done.store(true, std::memory_order_release);
    });

    // Busy-wait (bounded) until the daemon has seen enough traffic for this
    // round's race point, then pull the rug.
    const std::uint64_t want_sessions = static_cast<std::uint64_t>(round) * 8;
    for (std::uint64_t spin = 0; spin < 400'000'000ULL; ++spin) {
      if (load_done.load(std::memory_order_acquire)) break;
      const DaemonStats s = daemon.stats();
      if (s.conns_opened >= 4 && s.sessions_ok + s.sessions_failed >= want_sessions) {
        break;
      }
      std::this_thread::yield();
    }
    daemon.stop();
    load.join();

    // Typed termination on both sides: the daemon kept nothing open, and
    // every client session either completed or failed cleanly before the
    // loadgen returned (no hang — join() already proved that).
    EXPECT_EQ(daemon.open_connections(), 0u);
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.conns_opened, stats.conns_closed);
    EXPECT_LE(report.sessions_ok, 64u);
  }
  EXPECT_EQ(count_open_fds(), fds_before);
}

TEST(DaemonShutdownStress, StopIsIdempotentAndSafeWithoutStart) {
  RelayDaemon daemon(make_items(10));
  daemon.stop();  // never started, nothing listening
  daemon.stop();
  EXPECT_EQ(daemon.open_connections(), 0u);

  RelayDaemon served(make_items(10));
  (void)served.listen("127.0.0.1", 0);
  served.start();
  served.stop();
  served.stop();
  EXPECT_EQ(served.open_connections(), 0u);
}

}  // namespace
}  // namespace graphene::daemon
