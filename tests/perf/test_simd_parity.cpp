// SIMD kernel parity gates: every ISA variant the build carries must be
// bit-exact against the portable reference table, both at the raw kernel
// level (random inputs, including unaligned tails and saturating counts) and
// end-to-end through the containers that call active() (Bloom build/probe,
// IBLT merge/subtract/serialize, coded-symbol fold).
//
// These are exact properties: every gate runs min_rate = 1.0, so one
// diverging trial fails and prints the shrunk counterexample. On hosts where
// no vector ISA is available the variant table aliases portable and the
// gates degenerate to self-comparison (still valid, trivially green).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "iblt/coded_symbol.hpp"
#include "iblt/iblt.hpp"
#include "testkit/gen.hpp"
#include "testkit/stat_gate.hpp"
#include "util/random.hpp"
#include "util/simd/simd.hpp"

namespace graphene {
namespace {

namespace simd = util::simd;

/// The non-portable ISAs this build can actually run. Empty on a machine
/// without AVX2/NEON — each gate then checks portable against itself.
std::vector<simd::Isa> vector_isas() {
  std::vector<simd::Isa> isas;
  for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (simd::isa_available(isa)) isas.push_back(isa);
  }
  if (isas.empty()) isas.push_back(simd::Isa::kPortable);
  return isas;
}

testkit::StatGateSpec exact_spec(const char* name, std::uint32_t trials) {
  testkit::StatGateSpec spec;
  spec.name = name;
  spec.trials = trials;
  spec.min_rate = 1.0;
  return spec;
}

struct BlockCase {
  std::array<std::uint64_t, 8> block{};
  std::uint32_t k = 1;
  std::uint32_t x = 0;
  std::uint32_t y = 0;
};

TEST(SimdParity, BloomBlockKernelsMatchPortable) {
  const simd::Kernels& ref = simd::kernels_for(simd::Isa::kPortable);
  for (const simd::Isa isa : vector_isas()) {
    const simd::Kernels& var = simd::kernels_for(isa);
    const testkit::GateResult r =
        testkit::StatGate(exact_spec("simd_bloom_block_parity", 400))
            .run_cases<BlockCase>(
                [](util::Rng& rng) {
                  BlockCase c;
                  const double density = rng.uniform();
                  for (auto& w : c.block) {
                    w = 0;
                    for (std::uint32_t b = 0; b < 64; ++b) {
                      if (rng.chance(density)) w |= std::uint64_t{1} << b;
                    }
                  }
                  c.k = 1 + static_cast<std::uint32_t>(rng.below(63));
                  c.x = static_cast<std::uint32_t>(rng.below(512));
                  c.y = static_cast<std::uint32_t>(rng.below(512));
                  return c;
                },
                [&](const BlockCase& c, util::Rng&) {
                  if (ref.bloom_test_block(c.block.data(), c.k, c.x, c.y) !=
                      var.bloom_test_block(c.block.data(), c.k, c.x, c.y)) {
                    return false;
                  }
                  std::array<std::uint64_t, 8> a = c.block;
                  std::array<std::uint64_t, 8> b = c.block;
                  ref.bloom_set_block(a.data(), c.k, c.x, c.y);
                  var.bloom_set_block(b.data(), c.k, c.x, c.y);
                  if (a != b) return false;
                  // After set, a probe with the same coordinates must hit on
                  // both tables.
                  return ref.bloom_test_block(a.data(), c.k, c.x, c.y) &&
                         var.bloom_test_block(a.data(), c.k, c.x, c.y);
                },
                [](const BlockCase&) { return std::vector<BlockCase>{}; },
                [](const BlockCase& c) {
                  return "k=" + std::to_string(c.k) + " x=" + std::to_string(c.x) +
                         " y=" + std::to_string(c.y);
                });
    GRAPHENE_EXPECT_GATE(r);
  }
}

struct CellsCase {
  std::vector<std::uint8_t> dst;  // n_cells * 16 bytes, host cell layout
  std::vector<std::uint8_t> src;
  std::size_t n_cells = 0;
};

CellsCase gen_cells_case(util::Rng& rng) {
  CellsCase c;
  // Cover the SIMD width boundaries: 0, 1 (SSE tail), 2 (one AVX2 vector),
  // odd counts (vector body + tail), and larger runs.
  c.n_cells = rng.below(67);
  c.dst.resize(c.n_cells * 16);
  c.src.resize(c.n_cells * 16);
  for (auto& b : c.dst) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : c.src) b = static_cast<std::uint8_t>(rng.next());
  if (c.n_cells > 0 && rng.chance(0.2)) {
    // Force count-lane wraparound: INT_MIN - 1 and INT_MAX + 1 must wrap
    // identically in both variants (two's-complement add/sub).
    const std::size_t cell = rng.below(c.n_cells);
    const std::uint32_t extreme = rng.chance(0.5) ? 0x7fffffffU : 0x80000000U;
    std::memcpy(c.dst.data() + cell * 16 + 8, &extreme, 4);
  }
  return c;
}

TEST(SimdParity, IbltCellKernelsMatchPortable) {
  const simd::Kernels& ref = simd::kernels_for(simd::Isa::kPortable);
  for (const simd::Isa isa : vector_isas()) {
    const simd::Kernels& var = simd::kernels_for(isa);
    const testkit::GateResult r =
        testkit::StatGate(exact_spec("simd_iblt_cells_parity", 400))
            .run_cases<CellsCase>(gen_cells_case, [&](const CellsCase& c, util::Rng&) {
              std::vector<std::uint8_t> a = c.dst;
              std::vector<std::uint8_t> b = c.dst;
              ref.cells_add(a.data(), c.src.data(), c.n_cells);
              var.cells_add(b.data(), c.src.data(), c.n_cells);
              if (a != b) return false;
              a = c.dst;
              b = c.dst;
              ref.cells_sub(a.data(), c.src.data(), c.n_cells);
              var.cells_sub(b.data(), c.src.data(), c.n_cells);
              return a == b;
            },
            [](const CellsCase& c) {
              // Shrink toward fewer cells: the kernel loop structure is the
              // only state, so halving the run preserves any width-boundary
              // failure class.
              std::vector<CellsCase> out;
              if (c.n_cells > 0) {
                CellsCase half = c;
                half.n_cells = c.n_cells / 2;
                half.dst.resize(half.n_cells * 16);
                half.src.resize(half.n_cells * 16);
                out.push_back(std::move(half));
              }
              return out;
            },
            [](const CellsCase& c) { return "n_cells=" + std::to_string(c.n_cells); });
    GRAPHENE_EXPECT_GATE(r);
  }
}

struct BytesCase {
  std::vector<std::uint8_t> a;
  std::vector<std::uint8_t> b;
};

BytesCase gen_bytes_case(util::Rng& rng) {
  BytesCase c;
  // Straddle every tail split of the 32-byte vector width, plus long runs.
  const std::size_t n = rng.below(200);
  c.a.resize(n);
  c.b.resize(n);
  for (auto& v : c.a) v = static_cast<std::uint8_t>(rng.next());
  if (rng.chance(0.25)) {
    c.b = c.a;  // equal buffers: bytes_equal must say true
  } else if (rng.chance(0.3) && n > 0) {
    c.b = c.a;  // single-byte flip at a random offset, often in the tail
    c.b[rng.below(n)] ^= static_cast<std::uint8_t>(1 + rng.below(255));
  } else {
    for (auto& v : c.b) v = static_cast<std::uint8_t>(rng.next());
  }
  if (rng.chance(0.2)) std::fill(c.a.begin(), c.a.end(), 0);  // all_zero hits
  return c;
}

TEST(SimdParity, ByteKernelsMatchPortable) {
  const simd::Kernels& ref = simd::kernels_for(simd::Isa::kPortable);
  for (const simd::Isa isa : vector_isas()) {
    const simd::Kernels& var = simd::kernels_for(isa);
    const testkit::GateResult r =
        testkit::StatGate(exact_spec("simd_bytes_parity", 400))
            .run_cases<BytesCase>(gen_bytes_case, [&](const BytesCase& c, util::Rng&) {
              std::vector<std::uint8_t> x = c.a;
              std::vector<std::uint8_t> y = c.a;
              ref.xor_bytes(x.data(), c.b.data(), x.size());
              var.xor_bytes(y.data(), c.b.data(), y.size());
              if (x != y) return false;
              if (ref.all_zero(c.a.data(), c.a.size()) !=
                  var.all_zero(c.a.data(), c.a.size())) {
                return false;
              }
              return ref.bytes_equal(c.a.data(), c.b.data(), c.a.size()) ==
                     var.bytes_equal(c.a.data(), c.b.data(), c.a.size());
            },
            [](const BytesCase& c) {
              std::vector<BytesCase> out;
              if (!c.a.empty()) {
                BytesCase half = c;
                half.a.resize(c.a.size() / 2);
                half.b.resize(c.b.size() / 2);
                out.push_back(std::move(half));
              }
              return out;
            },
            [](const BytesCase& c) { return "len=" + std::to_string(c.a.size()); });
    GRAPHENE_EXPECT_GATE(r);
  }
}

// End-to-end: the containers route through active(), so running the same
// build/merge/fold under each override must produce identical serialized
// bytes — the kernels are invisible at the wire.
TEST(SimdParity, ContainersBitExactAcrossIsaOverride) {
  testkit::ScenarioDims dims;
  dims.min_block_txns = 2;
  dims.max_block_txns = 300;
  const testkit::GateResult r =
      testkit::StatGate(exact_spec("simd_container_parity", 40))
          .run_cases<testkit::GenCase>(
              [&](util::Rng& rng) { return testkit::gen_case(rng, dims); },
              [&](const testkit::GenCase& c, util::Rng&) {
                const chain::Scenario s = testkit::build_scenario(c);
                const std::vector<chain::TxId> ids = s.block.tx_ids();

                std::vector<util::Bytes> bloom_wire;
                std::vector<util::Bytes> iblt_wire;
                std::vector<std::array<std::uint8_t, 32>> folded;
                for (const simd::Isa isa :
                     {simd::Isa::kPortable, simd::detected_isa()}) {
                  simd::ScopedIsaOverride force(isa);
                  bloom::BloomFilter f(ids.size(), 0.02, c.salt,
                                       bloom::HashStrategy::kBlocked);
                  for (const chain::TxId& id : ids) f.insert(util::ByteView(id));
                  bloom_wire.push_back(f.serialize());

                  iblt::Iblt t(iblt::IbltParams{4, 40}, c.salt);
                  for (const chain::TxId& id : ids) {
                    t.insert(util::hash64(util::ByteView(id), c.salt));
                  }
                  // Subtract a half-populated twin: routes through the
                  // cells_sub kernel before serializing.
                  iblt::Iblt t2(iblt::IbltParams{4, 40}, c.salt);
                  for (std::size_t i = 0; i < ids.size(); i += 2) {
                    t2.insert(util::hash64(util::ByteView(ids[i]), c.salt));
                  }
                  iblt_wire.push_back(t.subtract(t2).serialize());

                  iblt::CodedSymbol sym;
                  for (const chain::TxId& id : ids) {
                    sym.apply(id, util::hash64(util::ByteView(id), c.salt), +1);
                  }
                  folded.push_back(sym.sum);
                }
                return bloom_wire[0] == bloom_wire[1] && iblt_wire[0] == iblt_wire[1] &&
                       folded[0] == folded[1];
              },
              [](const testkit::GenCase& c) { return testkit::shrink_case(c); },
              [](const testkit::GenCase& c) { return testkit::describe_case(c); });
  GRAPHENE_EXPECT_GATE(r);
}

// The dispatch plumbing itself: overrides nest and restore, and every
// returned table has all slots populated.
TEST(SimdParity, DispatchOverrideRestoresAndTablesAreComplete) {
  const simd::Isa original = simd::active_isa();
  {
    simd::ScopedIsaOverride outer(simd::Isa::kPortable);
    EXPECT_EQ(simd::active_isa(), simd::Isa::kPortable);
    {
      simd::ScopedIsaOverride inner(simd::detected_isa());
      EXPECT_EQ(simd::active_isa(), simd::detected_isa());
    }
    EXPECT_EQ(simd::active_isa(), simd::Isa::kPortable);
  }
  EXPECT_EQ(simd::active_isa(), original);

  for (const simd::Isa isa :
       {simd::Isa::kPortable, simd::Isa::kAvx2, simd::Isa::kNeon}) {
    const simd::Kernels& k = simd::kernels_for(isa);
    EXPECT_NE(k.bloom_test_block, nullptr);
    EXPECT_NE(k.bloom_set_block, nullptr);
    EXPECT_NE(k.cells_add, nullptr);
    EXPECT_NE(k.cells_sub, nullptr);
    EXPECT_NE(k.xor_bytes, nullptr);
    EXPECT_NE(k.all_zero, nullptr);
    EXPECT_NE(k.bytes_equal, nullptr);
    EXPECT_NE(simd::isa_name(isa), nullptr);
  }
}

}  // namespace
}  // namespace graphene
