// Zero-copy wire pins.
//
// Three properties hold the scatter-writer / borrow-reader machinery to the
// copying paths it replaces:
//   1. serialize_into() into a shared writer is byte-identical to the
//      legacy serialize()-and-concatenate path, for every wire type;
//   2. begin_frame/end_frame scatter framing and encode_frame_into produce
//      exactly encode_frame()'s bytes, including mid-buffer appends;
//   3. every views::*View::parse accepts a byte string iff the copying
//      deserializer does (GolombSet excepted, where the view is a documented
//      structural superset), consumes the same extent, borrows spans that
//      alias the input, and materialize() round-trips to equal objects.
// Property 3 is swept across every truncated prefix of each wire form, which
// is also what drives the src/net coverage floor through views.cpp's error
// branches.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/cuckoo_filter.hpp"
#include "bloom/golomb_set.hpp"
#include "chain/block.hpp"
#include "daemon/wire.hpp"
#include "graphene/messages.hpp"
#include "iblt/iblt.hpp"
#include "iblt/kv_iblt.hpp"
#include "iblt/strata_estimator.hpp"
#include "net/frame.hpp"
#include "net/views.hpp"
#include "reconcile/graphene_backend.hpp"
#include "reconcile/rateless_backend.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"
#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene {
namespace {

using net::views::FrameView;

util::ByteView bv(const util::Bytes& b) { return util::ByteView(b); }

// --- shared fixtures ---------------------------------------------------------

bloom::BloomFilter make_bloom(bloom::HashStrategy strategy) {
  bloom::BloomFilter f(40, 0.02, 7, strategy);
  util::Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    util::Bytes id(32);
    rng.fill(id);
    f.insert(bv(id));
  }
  return f;
}

iblt::Iblt make_iblt() {
  iblt::Iblt t(iblt::IbltParams{4, 24}, 9);
  for (std::uint64_t k = 1; k <= 30; ++k) t.insert(k * 0x9e3779b9ULL);
  return t;
}

chain::Transaction make_tx(std::uint8_t tag, std::uint32_t size) {
  chain::Transaction tx;
  tx.id.fill(tag);
  tx.size_bytes = size;
  return tx;
}

core::GrapheneBlockMsg make_block_msg() {
  core::GrapheneBlockMsg msg;
  msg.header.version = 2;
  msg.header.prev_hash.fill(0xaa);
  msg.header.merkle_root.fill(0xbb);
  msg.header.time = 1234;
  msg.header.bits = 0x1d00ffff;
  msg.header.nonce = 99;
  msg.n = 40;
  msg.shortid_salt = 0xfeed;
  msg.filter_s = make_bloom(bloom::HashStrategy::kSplitDigest);
  msg.iblt_i = make_iblt();
  return msg;
}

core::GrapheneResponseMsg make_response_msg() {
  core::GrapheneResponseMsg msg;
  msg.missing.push_back(make_tx(0x01, 250));
  msg.missing.push_back(make_tx(0x02, 10));  // size below fixed overhead
  msg.iblt_j = make_iblt();
  msg.filter_f = make_bloom(bloom::HashStrategy::kRehash);
  return msg;
}

reconcile::RatelessChunk make_chunk() {
  reconcile::RatelessChunk c;
  c.start = 3;
  c.host_count = 50;
  c.salt = 0x5a17;
  c.set_checksum = 0xc4ec;
  for (int i = 0; i < 4; ++i) {
    iblt::CodedSymbol s;
    s.count = i - 2;
    s.check = static_cast<std::uint64_t>(i) * 0x1111;
    s.sum.fill(static_cast<std::uint8_t>(i));
    c.symbols.push_back(s);
  }
  return c;
}

// --- property 1: serialize_into == serialize ---------------------------------

template <typename T>
void expect_scatter_identical(const T& value) {
  // Seed the writer with a nonzero prefix so offset-sensitive bugs (absolute
  // positions leaking into the scatter path) can't hide at offset zero.
  util::ByteWriter w;
  w.u32(0xdeadbeef);
  value.serialize_into(w);
  const util::Bytes got = w.take();

  util::ByteWriter prefix;
  prefix.u32(0xdeadbeef);
  util::Bytes want = prefix.take();
  const util::Bytes alone = value.serialize();
  want.insert(want.end(), alone.begin(), alone.end());
  EXPECT_EQ(got, want);
}

TEST(ZeroCopyWrite, SerializeIntoMatchesSerializeForEveryType) {
  expect_scatter_identical(make_bloom(bloom::HashStrategy::kSplitDigest));
  expect_scatter_identical(make_bloom(bloom::HashStrategy::kBlocked));
  expect_scatter_identical(make_iblt());
  {
    const std::vector<util::Bytes> digests = {util::Bytes(32, 0x11),
                                              util::Bytes(32, 0x22)};
    expect_scatter_identical(bloom::GolombSet(digests, 0.01, 5));
  }
  {
    bloom::CuckooFilter f(64, 0.02, 3);
    util::Bytes id(32, 0x33);
    f.insert(bv(id));
    expect_scatter_identical(f);
  }
  {
    iblt::KvIblt kv(3, 12, 5);
    kv.insert(1, 100);
    kv.insert(2, 200);
    expect_scatter_identical(kv);
  }
  {
    iblt::StrataEstimator est(77);
    expect_scatter_identical(est);
  }
  expect_scatter_identical(make_block_msg());
  {
    core::GrapheneRequestMsg req;
    req.z = 12;
    req.b = 3;
    req.y_star = 4;
    req.fpr_r = 0.125;
    req.reversed = true;
    req.filter_r = make_bloom(bloom::HashStrategy::kRehash);
    expect_scatter_identical(req);
  }
  expect_scatter_identical(make_response_msg());
  {
    core::RepairRequestMsg req;
    req.short_ids = {1, 2, 3};
    expect_scatter_identical(req);
    core::RepairResponseMsg resp;
    resp.txns.push_back(make_tx(0x04, 80));
    expect_scatter_identical(resp);
  }
  {
    reconcile::Offer offer;
    offer.count = 50;
    offer.salt = 1;
    offer.set_checksum = 2;
    offer.filter = make_bloom(bloom::HashStrategy::kSplitDigest);
    offer.correction = make_iblt();
    expect_scatter_identical(offer);

    reconcile::Request req;
    req.candidate_count = 9;
    req.b = 2;
    req.y_star = 3;
    req.fpr_r = 0.5;
    req.filter = make_bloom(bloom::HashStrategy::kRehash);
    expect_scatter_identical(req);

    reconcile::Response resp;
    reconcile::ItemDigest d{};
    d.fill(0x44);
    resp.missing.push_back(d);
    resp.correction = make_iblt();
    resp.compensation = make_bloom(bloom::HashStrategy::kSplitDigest);
    expect_scatter_identical(resp);

    reconcile::FetchRequest freq;
    freq.short_ids = {7, 8};
    expect_scatter_identical(freq);

    reconcile::FetchResponse fresp;
    fresp.items.push_back(d);
    expect_scatter_identical(fresp);
  }
  expect_scatter_identical(make_chunk());
  {
    reconcile::RatelessNeed need;
    need.next_index = 40;
    need.count = 8;
    expect_scatter_identical(need);
  }
  {
    daemon::HelloMsg hello;
    hello.version = 1;
    hello.backend = 1;
    hello.item_count = 5000;
    expect_scatter_identical(hello);
    daemon::ByeMsg bye;
    bye.ok = 1;
    bye.rounds = 3;
    expect_scatter_identical(bye);
    daemon::ErrorMsg err;
    err.code = daemon::ErrorCode::kLimit;
    err.detail = "cap exceeded";
    expect_scatter_identical(err);
  }
}

// --- property 2: scatter framing == encode_frame -----------------------------

TEST(ZeroCopyWrite, ScatterFramingMatchesEncodeFrame) {
  const core::GrapheneBlockMsg msg = make_block_msg();
  net::Message wire;
  wire.type = net::MessageType::kGrapheneBlock;
  wire.payload = msg.serialize();
  const util::Bytes want = net::encode_frame(wire);

  util::ByteWriter w;
  const net::FramePatch patch = net::begin_frame(w, net::MessageType::kGrapheneBlock);
  msg.serialize_into(w);
  net::end_frame(w, patch);
  EXPECT_EQ(w.take(), want);
}

TEST(ZeroCopyWrite, EncodeFrameIntoAppendsInPlace) {
  net::Message a;
  a.type = net::MessageType::kDaemonHello;
  a.payload = daemon::HelloMsg{1, 0, 10}.serialize();
  net::Message b;
  b.type = net::MessageType::kDaemonBye;
  b.payload = daemon::ByeMsg{1, 2}.serialize();

  util::Bytes queue;
  net::encode_frame_into(queue, a);
  net::encode_frame_into(queue, b);

  util::Bytes want = net::encode_frame(a);
  const util::Bytes second = net::encode_frame(b);
  want.insert(want.end(), second.begin(), second.end());
  EXPECT_EQ(queue, want);
}

TEST(ZeroCopyWrite, EndFrameEnforcesPayloadCap) {
  util::ByteWriter w;
  const net::FramePatch patch = net::begin_frame(w, net::MessageType::kDaemonBye);
  for (int i = 0; i < 100; ++i) w.u8(0);
  EXPECT_THROW(net::end_frame(w, patch, /*max_payload=*/64), util::DeserializeError);
}

TEST(ZeroCopyWrite, ByteWriterPatchAndAdopt) {
  util::ByteWriter w;
  w.u32(0);
  w.u64(0x1122334455667788ULL);
  w.patch_u32(0, 0xa0b0c0d0);
  util::Bytes first = w.take();
  {
    util::ByteReader r(bv(first));
    EXPECT_EQ(r.u32(), 0xa0b0c0d0);
    EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
  }

  // Adopt-and-take must preserve the existing prefix.
  util::ByteWriter adopted(std::move(first));
  adopted.u8(0x5a);
  const util::Bytes out = adopted.take();
  ASSERT_EQ(out.size(), 13u);
  EXPECT_EQ(out.back(), 0x5a);

  // Out-of-range patches are a caller bug and must throw, not scribble.
  util::ByteWriter bad;
  bad.u8(1);
  EXPECT_THROW(bad.patch_u32(0, 1), std::out_of_range);
  EXPECT_THROW(bad.patch_raw(2, bv(out)), std::out_of_range);
}

// --- property 3: views vs copying deserializers ------------------------------

/// Outcome of one parse attempt: accepted extent, or rejection.
struct ParseOutcome {
  bool ok = false;
  std::size_t consumed = 0;
};

using ParseFn = std::function<ParseOutcome(util::ByteView)>;

template <typename F>
ParseFn outcome_of(F parse) {
  return [parse](util::ByteView data) {
    util::ByteReader r(data);
    ParseOutcome out;
    try {
      parse(r);
      out.ok = true;
      out.consumed = data.size() - r.tail().size();
    } catch (const util::DeserializeError&) {
      out.ok = false;
    }
    return out;
  };
}

/// Sweeps every prefix of `wire`: the view must accept iff the copying path
/// does (exact twin) and consume the identical extent on acceptance.
void expect_exact_twin(const util::Bytes& wire, const ParseFn& view_parse,
                       const ParseFn& copy_parse, const std::string& what) {
  for (std::size_t len = 0; len <= wire.size(); ++len) {
    const util::ByteView prefix = bv(wire).first(len);
    const ParseOutcome v = view_parse(prefix);
    const ParseOutcome c = copy_parse(prefix);
    ASSERT_EQ(v.ok, c.ok) << what << ": accept/reject diverged at prefix " << len;
    if (v.ok) {
      ASSERT_EQ(v.consumed, c.consumed)
          << what << ": extent diverged at prefix " << len;
    }
  }
}

template <typename View, typename Copy>
void check_view_type(const util::Bytes& wire, const std::string& what, Copy copy) {
  expect_exact_twin(
      wire, outcome_of([](util::ByteReader& r) { (void)View::parse(r); }),
      outcome_of(copy), what);

  // On the full buffer: spans alias the input and materialize() rebuilds the
  // same bytes the copying deserializer consumes.
  util::ByteReader r(bv(wire));
  const View v = View::parse(r);
  ASSERT_GE(v.span.data(), wire.data());
  ASSERT_LE(v.span.data() + v.span.size(), wire.data() + wire.size());
  EXPECT_EQ(v.span.size(), wire.size() - r.tail().size()) << what;
  EXPECT_EQ(v.materialize().serialize(), wire) << what;
}

TEST(ZeroCopyRead, BloomFilterViewIsExactTwin) {
  for (const bloom::HashStrategy s :
       {bloom::HashStrategy::kSplitDigest, bloom::HashStrategy::kRehash,
        bloom::HashStrategy::kBlocked}) {
    check_view_type<net::views::BloomFilterView>(
        make_bloom(s).serialize(), "BloomFilterView",
        [](util::ByteReader& r) { (void)bloom::BloomFilter::deserialize(r); });
  }
}

TEST(ZeroCopyRead, ContainerViewsAreExactTwins) {
  check_view_type<net::views::IbltView>(
      make_iblt().serialize(), "IbltView",
      [](util::ByteReader& r) { (void)iblt::Iblt::deserialize(r); });
  {
    iblt::KvIblt kv(3, 12, 5);
    kv.insert(1, 100);
    kv.insert(2, 200);
    check_view_type<net::views::KvIbltView>(
        kv.serialize(), "KvIbltView",
        [](util::ByteReader& r) { (void)iblt::KvIblt::deserialize(r); });
  }
  {
    bloom::CuckooFilter f(64, 0.02, 3);
    util::Bytes id(32, 0x33);
    f.insert(bv(id));
    check_view_type<net::views::CuckooFilterView>(
        f.serialize(), "CuckooFilterView",
        [](util::ByteReader& r) { (void)bloom::CuckooFilter::deserialize(r); });
  }
  {
    iblt::StrataEstimator est(77);
    check_view_type<net::views::StrataEstimatorView>(
        est.serialize(), "StrataEstimatorView",
        [](util::ByteReader& r) { (void)iblt::StrataEstimator::deserialize(r); });
  }
}

// GolombSet is the one documented exception: the view validates structure
// only, so view-accept is a superset of copy-accept, but whenever the copying
// path accepts, the view must too, with the same extent.
TEST(ZeroCopyRead, GolombSetViewIsStructuralSuperset) {
  const std::vector<util::Bytes> digests = {
      util::Bytes(32, 0x11), util::Bytes(32, 0x22), util::Bytes(32, 0x33)};
  const bloom::GolombSet g(digests, 0.01, 5);
  const util::Bytes wire = g.serialize();

  const ParseFn view_parse =
      outcome_of([](util::ByteReader& r) { (void)net::views::GolombSetView::parse(r); });
  const ParseFn copy_parse =
      outcome_of([](util::ByteReader& r) { (void)bloom::GolombSet::deserialize(r); });
  for (std::size_t len = 0; len <= wire.size(); ++len) {
    const util::ByteView prefix = bv(wire).first(len);
    const ParseOutcome v = view_parse(prefix);
    const ParseOutcome c2 = copy_parse(prefix);
    if (c2.ok) {
      ASSERT_TRUE(v.ok) << "GolombSetView rejected copy-accepted prefix " << len;
      ASSERT_EQ(v.consumed, c2.consumed);
    }
  }

  util::ByteReader r(bv(wire));
  const auto v = net::views::GolombSetView::parse(r);
  EXPECT_EQ(v.materialize().serialize(), wire);
}

TEST(ZeroCopyRead, ProtocolMessageViewsAreExactTwins) {
  check_view_type<net::views::GrapheneBlockMsgView>(
      make_block_msg().serialize(), "GrapheneBlockMsgView",
      [](util::ByteReader& r) { (void)core::GrapheneBlockMsg::deserialize(r); });
  {
    core::GrapheneRequestMsg req;
    req.z = 12;
    req.b = 3;
    req.y_star = 4;
    req.fpr_r = 0.125;
    req.reversed = true;
    req.filter_r = make_bloom(bloom::HashStrategy::kRehash);
    check_view_type<net::views::GrapheneRequestMsgView>(
        req.serialize(), "GrapheneRequestMsgView",
        [](util::ByteReader& r) { (void)core::GrapheneRequestMsg::deserialize(r); });
  }
  check_view_type<net::views::GrapheneResponseMsgView>(
      make_response_msg().serialize(), "GrapheneResponseMsgView",
      [](util::ByteReader& r) { (void)core::GrapheneResponseMsg::deserialize(r); });
  {
    core::RepairRequestMsg req;
    req.short_ids = {1, 2, 3};
    check_view_type<net::views::RepairRequestMsgView>(
        req.serialize(), "RepairRequestMsgView",
        [](util::ByteReader& r) { (void)core::RepairRequestMsg::deserialize(r); });
  }
  {
    core::RepairResponseMsg resp;
    resp.txns.push_back(make_tx(0x04, 80));
    check_view_type<net::views::RepairResponseMsgView>(
        resp.serialize(), "RepairResponseMsgView",
        [](util::ByteReader& r) { (void)core::RepairResponseMsg::deserialize(r); });
  }
}

TEST(ZeroCopyRead, ReconcileViewsAreExactTwins) {
  {
    reconcile::Offer offer;
    offer.count = 50;
    offer.salt = 1;
    offer.set_checksum = 2;
    offer.filter = make_bloom(bloom::HashStrategy::kSplitDigest);
    offer.correction = make_iblt();
    check_view_type<net::views::OfferView>(
        offer.serialize(), "OfferView",
        [](util::ByteReader& r) { (void)reconcile::Offer::deserialize(r); });
  }
  {
    reconcile::Request req;
    req.candidate_count = 9;
    req.b = 2;
    req.y_star = 3;
    req.fpr_r = 0.5;
    req.filter = make_bloom(bloom::HashStrategy::kRehash);
    check_view_type<net::views::RequestView>(
        req.serialize(), "RequestView",
        [](util::ByteReader& r) { (void)reconcile::Request::deserialize(r); });
  }
  {
    reconcile::Response resp;
    reconcile::ItemDigest d{};
    d.fill(0x44);
    resp.missing.push_back(d);
    resp.correction = make_iblt();
    resp.compensation = make_bloom(bloom::HashStrategy::kSplitDigest);
    check_view_type<net::views::ResponseView>(
        resp.serialize(), "ResponseView",
        [](util::ByteReader& r) { (void)reconcile::Response::deserialize(r); });
  }
  {
    reconcile::FetchRequest req;
    req.short_ids = {7, 8};
    check_view_type<net::views::FetchRequestView>(
        req.serialize(), "FetchRequestView",
        [](util::ByteReader& r) { (void)reconcile::FetchRequest::deserialize(r); });
  }
  {
    reconcile::FetchResponse resp;
    reconcile::ItemDigest d{};
    d.fill(0x45);
    resp.items.push_back(d);
    check_view_type<net::views::FetchResponseView>(
        resp.serialize(), "FetchResponseView",
        [](util::ByteReader& r) { (void)reconcile::FetchResponse::deserialize(r); });
  }
  check_view_type<net::views::RatelessChunkView>(
      make_chunk().serialize(), "RatelessChunkView",
      [](util::ByteReader& r) { (void)reconcile::RatelessChunk::deserialize(r); });
  {
    reconcile::RatelessNeed need;
    need.next_index = 40;
    need.count = 8;
    check_view_type<net::views::RatelessNeedView>(
        need.serialize(), "RatelessNeedView",
        [](util::ByteReader& r) { (void)reconcile::RatelessNeed::deserialize(r); });
  }
}

TEST(ZeroCopyRead, DaemonViewsAreExactTwins) {
  check_view_type<net::views::HelloMsgView>(
      daemon::HelloMsg{1, 1, 5000}.serialize(), "HelloMsgView",
      [](util::ByteReader& r) { (void)daemon::HelloMsg::deserialize(r); });
  check_view_type<net::views::ByeMsgView>(
      daemon::ByeMsg{1, 3}.serialize(), "ByeMsgView",
      [](util::ByteReader& r) { (void)daemon::ByeMsg::deserialize(r); });
  {
    daemon::ErrorMsg err;
    err.code = daemon::ErrorCode::kMalformed;
    err.detail = "boom";
    check_view_type<net::views::ErrorMsgView>(
        err.serialize(), "ErrorMsgView",
        [](util::ByteReader& r) { (void)daemon::ErrorMsg::deserialize(r); });
  }
}

// Malformed-input spot checks: the mutations tests/net/test_malformed.cpp
// aims at the copying paths must be rejected identically by the views.
TEST(ZeroCopyRead, ViewsRejectCanonicalMalformations) {
  // Non-canonical presence flag.
  {
    util::Bytes wire = make_response_msg().serialize();
    wire[wire.size() - make_bloom(bloom::HashStrategy::kRehash).serialize().size() - 1] =
        2;
    util::ByteReader vr(bv(wire));
    EXPECT_THROW((void)net::views::GrapheneResponseMsgView::parse(vr),
                 util::DeserializeError);
    util::ByteReader cr(bv(wire));
    EXPECT_THROW((void)core::GrapheneResponseMsg::deserialize(cr),
                 util::DeserializeError);
  }
  // Bloom hash count of zero.
  {
    util::Bytes wire = make_bloom(bloom::HashStrategy::kSplitDigest).serialize();
    util::ByteReader probe(bv(wire));
    (void)util::read_varint_bounded(probe, util::wire::kMaxBloomBits, "probe");
    const std::size_t k_at = wire.size() - probe.remaining();
    wire[k_at] = 0;
    util::ByteReader vr(bv(wire));
    EXPECT_THROW((void)net::views::BloomFilterView::parse(vr), util::DeserializeError);
    util::ByteReader cr(bv(wire));
    EXPECT_THROW((void)bloom::BloomFilter::deserialize(cr), util::DeserializeError);
  }
  // IBLT cell count not a multiple of k.
  {
    iblt::Iblt t(iblt::IbltParams{4, 24}, 9);
    util::Bytes wire = t.serialize();
    wire[0] = 25;  // single-byte varint: 25 % 4 != 0
    util::ByteReader vr(bv(wire));
    EXPECT_THROW((void)net::views::IbltView::parse(vr), util::DeserializeError);
    util::ByteReader cr(bv(wire));
    EXPECT_THROW((void)iblt::Iblt::deserialize(cr), util::DeserializeError);
  }
}

// --- FrameView ---------------------------------------------------------------

TEST(ZeroCopyRead, FrameViewMatchesFrameReader) {
  net::Message msg;
  msg.type = net::MessageType::kDaemonHello;
  msg.payload = daemon::HelloMsg{1, 0, 42}.serialize();
  const util::Bytes wire = net::encode_frame(msg);

  const std::optional<FrameView> v = FrameView::parse(bv(wire));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, msg.type);
  EXPECT_EQ(v->span.size(), wire.size());
  EXPECT_TRUE(util::equal(v->payload, bv(msg.payload)));
  const net::Message back = v->materialize();
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.payload, msg.payload);

  // Truncations anywhere return nullopt (need more bytes), never throw.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(FrameView::parse(bv(wire).first(len)).has_value()) << len;
  }

  // Trailing bytes beyond the frame are ignored: the span still covers
  // exactly one frame (stream decoding peels them one at a time).
  util::Bytes doubled = wire;
  doubled.insert(doubled.end(), wire.begin(), wire.end());
  const std::optional<FrameView> first = FrameView::parse(bv(doubled));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->span.size(), wire.size());

  // Corruptions throw exactly like FrameReader::next().
  util::Bytes bad = wire;
  bad[0] ^= 0xff;  // magic
  EXPECT_THROW((void)FrameView::parse(bv(bad)), util::DeserializeError);
  bad = wire;
  bad[4] = 0xff;  // command not NUL-padded / unknown
  EXPECT_THROW((void)FrameView::parse(bv(bad)), util::DeserializeError);
  bad = wire;
  bad[bad.size() - 1] ^= 0x01;  // payload corruption -> checksum mismatch
  EXPECT_THROW((void)FrameView::parse(bv(bad)), util::DeserializeError);
  bad = wire;
  bad[16] = 0xff;  // length field beyond cap
  bad[17] = 0xff;
  bad[18] = 0xff;
  bad[19] = 0xff;
  EXPECT_THROW((void)FrameView::parse(bv(bad)), util::DeserializeError);
}

}  // namespace
}  // namespace graphene
