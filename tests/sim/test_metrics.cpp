#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace graphene::sim {
namespace {

TEST(Accumulator, MeanAndVariance) {
  Accumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, SingleSampleHasZeroSpread) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.ci95(), 0.0);
}

TEST(Accumulator, CiShrinksWithSamples) {
  Accumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(RateCounter, TracksRate) {
  RateCounter rc;
  for (int i = 0; i < 100; ++i) rc.add(i < 75);
  EXPECT_EQ(rc.trials(), 100u);
  EXPECT_EQ(rc.successes(), 75u);
  EXPECT_DOUBLE_EQ(rc.rate(), 0.75);
  EXPECT_DOUBLE_EQ(rc.failure_rate(), 0.25);
}

TEST(RateCounter, EmptyIsZero) {
  const RateCounter rc;
  EXPECT_DOUBLE_EQ(rc.rate(), 0.0);
}

}  // namespace
}  // namespace graphene::sim
