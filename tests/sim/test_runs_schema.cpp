// Golden schema for the runs.jsonl export (GRAPHENE_RUNS_JSONL).
//
// External tooling consumes these records; this test pins the contract:
// every line is one strict-JSON object with the required keys at the
// required types. Adding keys is fine; removing or retyping one fails here
// before it breaks a dashboard.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hpp"
#include "sim/simulator.hpp"

namespace graphene::sim {
namespace {

void expect_number(const obs::json::Value& v, const std::string& key) {
  ASSERT_TRUE(v.contains(key)) << "missing key: " << key;
  EXPECT_TRUE(v.at(key).is_number()) << key << " must be a number";
}

void expect_bool(const obs::json::Value& v, const std::string& key) {
  ASSERT_TRUE(v.contains(key)) << "missing key: " << key;
  EXPECT_TRUE(v.at(key).is_bool()) << key << " must be a bool";
}

TEST(RunsJsonlSchema, EveryRecordCarriesTheContractKeys) {
  chain::ScenarioSpec spec;
  spec.block_txns = 120;
  spec.extra_txns = 200;
  spec.block_fraction_in_mempool = 0.9;  // exercise the Protocol 2 fields too
  std::ostringstream sink;
  const TrialStats stats = run_trials(spec, /*trials=*/8, /*seed=*/41, {},
                                      /*protocol1_only=*/false, &sink);
  EXPECT_EQ(stats.trials, 8u);

  std::istringstream lines(sink.str());
  std::string line;
  std::uint64_t records = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    obs::json::Value v;
    ASSERT_NO_THROW(v = obs::json::parse(line)) << line;
    ASSERT_TRUE(v.is_object());

    // v2 envelope: versioned, and the round count is derivable from the
    // outcome flags (1 + protocol2 + repair) — pin both.
    expect_number(v, "schema");
    EXPECT_EQ(static_cast<std::uint64_t>(v.at("schema").number), 2u);
    expect_number(v, "rounds");

    expect_number(v, "trial");
    expect_number(v, "salt");
    expect_number(v, "n");
    expect_number(v, "m");
    EXPECT_EQ(static_cast<std::uint64_t>(v.at("trial").number), records);
    EXPECT_EQ(static_cast<std::uint64_t>(v.at("n").number), spec.block_txns);

    expect_bool(v, "decoded");
    expect_bool(v, "p1_decoded");
    expect_bool(v, "used_protocol2");
    expect_bool(v, "used_repair");
    expect_bool(v, "used_pingpong");
    const double expected_rounds = 1.0 + (v.at("used_protocol2").boolean ? 1.0 : 0.0) +
                                   (v.at("used_repair").boolean ? 1.0 : 0.0);
    EXPECT_DOUBLE_EQ(v.at("rounds").number, expected_rounds);

    ASSERT_TRUE(v.contains("bytes"));
    const obs::json::Value& bytes = v.at("bytes");
    ASSERT_TRUE(bytes.is_object());
    for (const char* key : {"getdata", "bloom_s", "iblt_i", "bloom_r", "iblt_j",
                            "bloom_f", "missing_txn", "repair", "encoding", "total"}) {
      expect_number(bytes, key);
    }
    // Internal consistency, not just presence.
    const double total = bytes.at("total").number;
    const double encoding = bytes.at("encoding").number;
    const double missing = bytes.at("missing_txn").number;
    EXPECT_DOUBLE_EQ(total, encoding + missing);
    EXPECT_GT(bytes.at("bloom_s").number + bytes.at("iblt_i").number, 0.0);

#if GRAPHENE_OBS_ENABLED
    // The observed-FPR block rides on the p1_candidates span, which every
    // telemetry-enabled run records; a GRAPHENE_OBS=OFF build records no
    // spans, so these keys are legitimately absent there.
    expect_number(v, "fpr_s_target");
    expect_number(v, "fp_observed");
    expect_number(v, "fpr_s_observed");

    ASSERT_TRUE(v.contains("spans"));
    const obs::json::Value& spans = v.at("spans");
    ASSERT_TRUE(spans.is_array());
    ASSERT_FALSE(spans.array.empty());
    for (const obs::json::Value& span : spans.array) {
      ASSERT_TRUE(span.is_object());
      expect_number(span, "seq");
      expect_number(span, "dur_ns");
      ASSERT_TRUE(span.contains("stage"));
      EXPECT_TRUE(span.at("stage").is_string());
    }
#endif  // GRAPHENE_OBS_ENABLED
    ++records;
  }
  EXPECT_EQ(records, 8u);
}

TEST(RunsJsonlSchema, Protocol1OnlyRunsStillConform) {
  chain::ScenarioSpec spec;
  spec.block_txns = 50;
  std::ostringstream sink;
  run_trials(spec, 3, 5, {}, /*protocol1_only=*/true, &sink);
  std::istringstream lines(sink.str());
  std::string line;
  std::uint64_t records = 0;
  while (std::getline(lines, line)) {
    const obs::json::Value v = obs::json::parse(line);
    ASSERT_TRUE(v.contains("decoded"));
    ASSERT_TRUE(v.contains("bytes"));
    EXPECT_FALSE(v.at("used_protocol2").boolean);
    EXPECT_DOUBLE_EQ(v.at("bytes").at("bloom_r").number, 0.0);
    EXPECT_DOUBLE_EQ(v.at("rounds").number, 1.0);
    ++records;
  }
  EXPECT_EQ(records, 3u);
}

}  // namespace
}  // namespace graphene::sim
