#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/obs.hpp"

namespace graphene::sim {
namespace {

TEST(Simulator, Protocol1PathHasNoProtocol2Bytes) {
  util::Rng rng(1);
  ScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 400;
  const Scenario s = chain::make_scenario(spec, rng);
  const GrapheneRun run = run_graphene(s, 7);
  EXPECT_TRUE(run.decoded);
  if (run.p1_decoded) {
    EXPECT_EQ(run.bloom_r_bytes, 0u);
    EXPECT_EQ(run.iblt_j_bytes, 0u);
    EXPECT_EQ(run.missing_txn_bytes, 0u);
  }
  EXPECT_GT(run.bloom_s_bytes, 0u);
  EXPECT_GT(run.iblt_i_bytes, 0u);
  EXPECT_EQ(run.getdata_bytes, kGetdataBytes);
}

TEST(Simulator, MissingBlockFractionDrivesProtocol2) {
  util::Rng rng(2);
  ScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 200;
  spec.block_fraction_in_mempool = 0.5;
  const Scenario s = chain::make_scenario(spec, rng);
  const GrapheneRun run = run_graphene(s, 8);
  EXPECT_TRUE(run.used_protocol2);
  EXPECT_GT(run.bloom_r_bytes, 0u);
  EXPECT_GT(run.iblt_j_bytes, 0u);
  EXPECT_GT(run.missing_txn_bytes, 0u);
  EXPECT_TRUE(run.decoded);
}

TEST(Simulator, Protocol1OnlyStopsBeforeRecovery) {
  util::Rng rng(3);
  ScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 200;
  spec.block_fraction_in_mempool = 0.5;
  const Scenario s = chain::make_scenario(spec, rng);
  const GrapheneRun run = run_graphene_protocol1_only(s, 9);
  EXPECT_FALSE(run.decoded);
  EXPECT_FALSE(run.used_protocol2);
  EXPECT_EQ(run.bloom_r_bytes, 0u);
}

TEST(Simulator, EncodingBytesExcludeTransactions) {
  util::Rng rng(4);
  ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 100;
  spec.block_fraction_in_mempool = 0.7;
  const Scenario s = chain::make_scenario(spec, rng);
  const GrapheneRun run = run_graphene(s, 10);
  EXPECT_EQ(run.total_bytes(), run.encoding_bytes() + run.missing_txn_bytes);
}

TEST(Simulator, TrialsAggregateConsistently) {
  ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 200;
  const TrialStats stats = run_trials(spec, 50, /*seed=*/11);
  EXPECT_EQ(stats.trials, 50u);
  EXPECT_LE(stats.decode_failures, stats.trials);
  EXPECT_GT(stats.mean_encoding_bytes, 0.0);
  EXPECT_NEAR(stats.mean_encoding_bytes,
              stats.mean_getdata + stats.mean_bloom_s + stats.mean_iblt_i +
                  stats.mean_bloom_r + stats.mean_iblt_j + stats.mean_bloom_f,
              stats.mean_encoding_bytes * 0.05 + 40.0);
  // Protocol 2 can only rescue Protocol 1 failures, never add new ones.
  EXPECT_LE(stats.decode_failures, stats.p1_decode_failures);
}

TEST(Simulator, RunsJsonlRecordsOneParsableLinePerTrial) {
  ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 200;
  std::ostringstream jsonl;
  const TrialStats stats = run_trials(spec, 5, /*seed=*/21, {}, false, &jsonl);
  EXPECT_EQ(stats.trials, 5u);

  std::istringstream lines(jsonl.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const obs::json::Value doc = obs::json::parse(line);
    EXPECT_EQ(doc.at("trial").number, static_cast<double>(count));
    EXPECT_DOUBLE_EQ(doc.at("n").number, 100.0);
    EXPECT_TRUE(doc.at("decoded").is_bool());
    EXPECT_GT(doc.at("bytes").at("total").number, 0.0);
#if GRAPHENE_OBS_ENABLED
    // Span sequence and per-stage detail only exist when telemetry is
    // compiled in; the byte decomposition above is always present.
    const obs::json::Value& spans = doc.at("spans");
    ASSERT_GE(spans.array.size(), 5u);
    EXPECT_EQ(spans.array[0].at("stage").string, "p1_optimize");
    bool saw_peel = false;
    for (const obs::json::Value& span : spans.array) {
      if (span.at("stage").string == "p1_peel") {
        saw_peel = true;
        EXPECT_TRUE(span.contains("peel_iterations"));
      }
    }
    EXPECT_TRUE(saw_peel);
    EXPECT_TRUE(doc.contains("fpr_s_observed"));
    EXPECT_TRUE(doc.contains("fpr_s_target"));
    EXPECT_LE(doc.at("fpr_s_observed").number, 1.0);
    EXPECT_GE(doc.at("fpr_s_observed").number, 0.0);
#endif
    ++count;
  }
  EXPECT_EQ(count, 5);
}

TEST(Simulator, DeterministicForFixedSeed) {
  ScenarioSpec spec;
  spec.block_txns = 60;
  spec.extra_txns = 60;
  const TrialStats a = run_trials(spec, 20, 12);
  const TrialStats b = run_trials(spec, 20, 12);
  EXPECT_DOUBLE_EQ(a.mean_encoding_bytes, b.mean_encoding_bytes);
  EXPECT_EQ(a.decode_failures, b.decode_failures);
}

}  // namespace
}  // namespace graphene::sim
