#include "sim/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace graphene::sim {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 23456 |"), std::string::npos);
  // header + rule + 2 rows
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00 MB");
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(Format, Prob) {
  EXPECT_EQ(format_prob(0.0), "0");
  EXPECT_EQ(format_prob(0.00021), "2.10e-04");
}

}  // namespace
}  // namespace graphene::sim
