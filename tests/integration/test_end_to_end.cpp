// Cross-module integration: full wire-serialized relay through a Channel,
// exercising serialization, both protocols, repair, validation, and byte
// accounting together.
#include <gtest/gtest.h>

#include "baselines/compact_blocks.hpp"
#include "baselines/xthin.hpp"
#include "graphene/mempool_sync.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "net/channel.hpp"
#include "obs/obs.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace graphene {
namespace {

/// Relays a block with every message round-tripped through real bytes, as a
/// remote peer would see them.
core::ReceiveOutcome relay_over_wire(const chain::Scenario& s, std::uint64_t salt,
                                     net::Channel& channel,
                                     const core::ProtocolConfig& cfg = {}) {
  core::Sender sender(s.block, salt, cfg);
  core::ReceiveSession receiver(s.receiver_mempool, cfg);

  const auto roundtrip = [&](auto msg, net::Direction dir, net::MessageType type) {
    const net::Message& sent = channel.send(dir, net::Message{type, msg.serialize()});
    util::ByteReader reader{util::ByteView(sent.payload)};
    auto parsed = decltype(msg)::deserialize(reader);
    EXPECT_TRUE(reader.done());
    return parsed;
  };

  core::ReceiveOutcome out = receiver.receive_block(
      roundtrip(sender.encode(s.receiver_mempool.size()).msg,
                net::Direction::kSenderToReceiver, net::MessageType::kGrapheneBlock));
  if (out.status == core::ReceiveStatus::kNeedsProtocol2) {
    const auto req = roundtrip(receiver.build_request(),
                               net::Direction::kReceiverToSender,
                               net::MessageType::kGrapheneRequest);
    out = receiver.complete(roundtrip(sender.serve(req),
                                      net::Direction::kSenderToReceiver,
                                      net::MessageType::kGrapheneResponse));
  }
  if (out.status == core::ReceiveStatus::kNeedsRepair) {
    const auto req = roundtrip(receiver.build_repair(),
                               net::Direction::kReceiverToSender,
                               net::MessageType::kGetData);
    out = receiver.complete_repair(roundtrip(sender.serve_repair(req),
                                             net::Direction::kSenderToReceiver,
                                             net::MessageType::kBlockTxn));
  }
  return out;
}

TEST(EndToEnd, WireSerializedProtocol1) {
  util::Rng rng(1);
  chain::ScenarioSpec spec;
  spec.block_txns = 500;
  spec.extra_txns = 1000;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  net::Channel channel;
  const core::ReceiveOutcome out = relay_over_wire(s, 77, channel);
  ASSERT_EQ(out.status, core::ReceiveStatus::kDecoded);
  EXPECT_EQ(out.block_ids, s.block.tx_ids());
  EXPECT_GT(channel.payload_bytes(net::Direction::kSenderToReceiver), 0u);
}

TEST(EndToEnd, WireSerializedProtocol2WithMissingTxns) {
  util::Rng rng(2);
  int decoded = 0;
  for (int t = 0; t < 10; ++t) {
    chain::ScenarioSpec spec;
    spec.block_txns = 300;
    spec.extra_txns = 300;
    spec.block_fraction_in_mempool = 0.8;
    const chain::Scenario s = chain::make_scenario(spec, rng);
    net::Channel channel;
    const core::ReceiveOutcome out = relay_over_wire(s, rng.next(), channel);
    if (out.status == core::ReceiveStatus::kDecoded) {
      ++decoded;
      EXPECT_EQ(out.block_ids, s.block.tx_ids());
      // Protocol 2 ⇒ traffic flowed in both directions.
      EXPECT_GT(channel.payload_bytes(net::Direction::kReceiverToSender), 0u);
    }
  }
  EXPECT_GE(decoded, 9);
}

TEST(EndToEnd, GrapheneBeatsCompactBlocksAndXthinOnWire) {
  // §5.3 headline, measured over real serialized messages.
  util::Rng rng(3);
  chain::ScenarioSpec spec;
  spec.block_txns = 2000;
  spec.extra_txns = 2000;
  const chain::Scenario s = chain::make_scenario(spec, rng);

  net::Channel graphene_ch;
  ASSERT_EQ(relay_over_wire(s, 88, graphene_ch).status, core::ReceiveStatus::kDecoded);
  const std::size_t graphene_bytes =
      graphene_ch.payload_bytes(net::Direction::kSenderToReceiver) +
      graphene_ch.payload_bytes(net::Direction::kReceiverToSender);

  const auto cb = baselines::run_compact_blocks(s.block, s.receiver_mempool, 88);
  const auto xt = baselines::run_xthin(s.block, s.receiver_mempool);

  EXPECT_LT(graphene_bytes, cb.encoding_bytes());
  EXPECT_LT(graphene_bytes, xt.encoding_bytes());
  EXPECT_LT(graphene_bytes, xt.encoding_bytes_xthin_star());
}

TEST(EndToEnd, RepeatedRelaysFromSameSenderState) {
  // A sender must be able to serve multiple receivers (pure encode/serve).
  util::Rng rng(4);
  chain::ScenarioSpec spec;
  spec.block_txns = 150;
  spec.extra_txns = 150;
  const chain::Scenario s1 = chain::make_scenario(spec, rng);

  core::Sender sender(s1.block, 5);
  for (int i = 0; i < 3; ++i) {
    core::ReceiveSession receiver(s1.receiver_mempool);
    const auto out = receiver.receive_block(sender.encode(s1.m).msg);
    EXPECT_EQ(out.status, core::ReceiveStatus::kDecoded);
  }
}

TEST(EndToEnd, Protocol1RunEmitsExpectedSpanSequence) {
  // Telemetry contract: a clean Protocol-1 relay produces exactly the
  // sender's three encode stages followed by the receiver's two decode
  // stages, and the per-outcome counter records the decode.
#if !GRAPHENE_OBS_ENABLED
  GTEST_SKIP() << "telemetry compiled out (GRAPHENE_OBS=OFF)";
#endif
  util::Rng rng(6);
  chain::ScenarioSpec spec;
  spec.block_txns = 500;
  spec.extra_txns = 1000;
  const chain::Scenario s = chain::make_scenario(spec, rng);

  obs::Registry reg;
  core::ProtocolConfig cfg;
  cfg.obs = &reg;
  core::Sender sender(s.block, 99, cfg);
  core::ReceiveSession receiver(s.receiver_mempool, cfg);
  const auto out = receiver.receive_block(sender.encode(s.receiver_mempool.size()).msg);
  ASSERT_EQ(out.status, core::ReceiveStatus::kDecoded);

  const std::vector<std::string> expected = {"p1_optimize", "sfilter_build",
                                             "iblt_build", "p1_candidates", "p1_peel"};
  EXPECT_EQ(reg.trace().stages(), expected);

  obs::TraceSpan peel;
  ASSERT_TRUE(reg.trace().find("p1_peel", &peel));
  EXPECT_DOUBLE_EQ(peel.attr("success"), 1.0);
  EXPECT_DOUBLE_EQ(peel.attr("residual_cells"), 0.0);

  obs::TraceSpan cand;
  ASSERT_TRUE(reg.trace().find("p1_candidates", &cand));
  EXPECT_GE(cand.attr("z"), static_cast<double>(spec.block_txns));
  EXPECT_DOUBLE_EQ(cand.attr("m"), static_cast<double>(s.receiver_mempool.size()));

  const obs::Counter* decoded =
      reg.find_counter("graphene_p1_decode_total", {{"result", "decoded"}});
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->value(), 1u);
}

TEST(EndToEnd, Protocol2RunEmitsRequestAndPeelSpans) {
  // Drive a receiver that is missing block transactions; the trace must walk
  // through the Protocol 2 stages in order.
#if !GRAPHENE_OBS_ENABLED
  GTEST_SKIP() << "telemetry compiled out (GRAPHENE_OBS=OFF)";
#endif
  util::Rng rng(7);
  chain::ScenarioSpec spec;
  spec.block_txns = 300;
  spec.extra_txns = 300;
  spec.block_fraction_in_mempool = 0.8;
  const chain::Scenario s = chain::make_scenario(spec, rng);

  obs::Registry reg;
  core::ProtocolConfig cfg;
  cfg.obs = &reg;
  core::Sender sender(s.block, 44, cfg);
  core::ReceiveSession receiver(s.receiver_mempool, cfg);
  auto out = receiver.receive_block(sender.encode(s.receiver_mempool.size()).msg);
  ASSERT_EQ(out.status, core::ReceiveStatus::kNeedsProtocol2);
  out = receiver.complete(sender.serve(receiver.build_request()));

  for (const char* stage : {"thm_bounds", "rfilter_build", "p2_serve", "p2_peel"}) {
    EXPECT_TRUE(reg.trace().find(stage)) << stage;
  }
  obs::TraceSpan bounds;
  ASSERT_TRUE(reg.trace().find("thm_bounds", &bounds));
  EXPECT_GT(bounds.attr("y_star"), 0.0);
  EXPECT_GT(bounds.attr("b"), 0.0);
}

TEST(EndToEnd, MempoolSyncThenBlockRelay) {
  // Realistic pipeline: peers sync mempools, then a block composed of the
  // synced transactions relays via Protocol 1 on the first try.
  util::Rng rng(5);
  chain::MempoolPair pair = chain::make_mempool_pair(600, 300, rng);
  const core::MempoolSyncResult sync = core::sync_mempools(pair.a, pair.b, rng.next());
  ASSERT_TRUE(sync.success);

  // Mine a block from 200 of the (now shared) transactions.
  auto txs = pair.a.transactions();
  txs.resize(200);
  const chain::Block block(chain::BlockHeader{}, txs);

  chain::Scenario s;
  s.block = block;
  s.receiver_mempool = pair.b;
  s.n = 200;
  s.m = pair.b.size();
  const sim::GrapheneRun run = sim::run_graphene(s, rng.next());
  EXPECT_TRUE(run.decoded);
  EXPECT_TRUE(run.p1_decoded);
}

}  // namespace
}  // namespace graphene
