// Cross-module integration: full wire-serialized relay through a Channel,
// exercising serialization, both protocols, repair, validation, and byte
// accounting together.
#include <gtest/gtest.h>

#include "baselines/compact_blocks.hpp"
#include "baselines/xthin.hpp"
#include "graphene/mempool_sync.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "net/channel.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace graphene {
namespace {

/// Relays a block with every message round-tripped through real bytes, as a
/// remote peer would see them.
core::ReceiveOutcome relay_over_wire(const chain::Scenario& s, std::uint64_t salt,
                                     net::Channel& channel,
                                     const core::ProtocolConfig& cfg = {}) {
  core::Sender sender(s.block, salt, cfg);
  core::Receiver receiver(s.receiver_mempool, cfg);

  const auto roundtrip = [&](auto msg, net::Direction dir, net::MessageType type) {
    const net::Message& sent = channel.send(dir, net::Message{type, msg.serialize()});
    util::ByteReader reader{util::ByteView(sent.payload)};
    auto parsed = decltype(msg)::deserialize(reader);
    EXPECT_TRUE(reader.done());
    return parsed;
  };

  core::ReceiveOutcome out = receiver.receive_block(
      roundtrip(sender.encode(s.receiver_mempool.size()),
                net::Direction::kSenderToReceiver, net::MessageType::kGrapheneBlock));
  if (out.status == core::ReceiveStatus::kNeedsProtocol2) {
    const auto req = roundtrip(receiver.build_request(),
                               net::Direction::kReceiverToSender,
                               net::MessageType::kGrapheneRequest);
    out = receiver.complete(roundtrip(sender.serve(req),
                                      net::Direction::kSenderToReceiver,
                                      net::MessageType::kGrapheneResponse));
  }
  if (out.status == core::ReceiveStatus::kNeedsRepair) {
    const auto req = roundtrip(receiver.build_repair(),
                               net::Direction::kReceiverToSender,
                               net::MessageType::kGetData);
    out = receiver.complete_repair(roundtrip(sender.serve_repair(req),
                                             net::Direction::kSenderToReceiver,
                                             net::MessageType::kBlockTxn));
  }
  return out;
}

TEST(EndToEnd, WireSerializedProtocol1) {
  util::Rng rng(1);
  chain::ScenarioSpec spec;
  spec.block_txns = 500;
  spec.extra_txns = 1000;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  net::Channel channel;
  const core::ReceiveOutcome out = relay_over_wire(s, 77, channel);
  ASSERT_EQ(out.status, core::ReceiveStatus::kDecoded);
  EXPECT_EQ(out.block_ids, s.block.tx_ids());
  EXPECT_GT(channel.payload_bytes(net::Direction::kSenderToReceiver), 0u);
}

TEST(EndToEnd, WireSerializedProtocol2WithMissingTxns) {
  util::Rng rng(2);
  int decoded = 0;
  for (int t = 0; t < 10; ++t) {
    chain::ScenarioSpec spec;
    spec.block_txns = 300;
    spec.extra_txns = 300;
    spec.block_fraction_in_mempool = 0.8;
    const chain::Scenario s = chain::make_scenario(spec, rng);
    net::Channel channel;
    const core::ReceiveOutcome out = relay_over_wire(s, rng.next(), channel);
    if (out.status == core::ReceiveStatus::kDecoded) {
      ++decoded;
      EXPECT_EQ(out.block_ids, s.block.tx_ids());
      // Protocol 2 ⇒ traffic flowed in both directions.
      EXPECT_GT(channel.payload_bytes(net::Direction::kReceiverToSender), 0u);
    }
  }
  EXPECT_GE(decoded, 9);
}

TEST(EndToEnd, GrapheneBeatsCompactBlocksAndXthinOnWire) {
  // §5.3 headline, measured over real serialized messages.
  util::Rng rng(3);
  chain::ScenarioSpec spec;
  spec.block_txns = 2000;
  spec.extra_txns = 2000;
  const chain::Scenario s = chain::make_scenario(spec, rng);

  net::Channel graphene_ch;
  ASSERT_EQ(relay_over_wire(s, 88, graphene_ch).status, core::ReceiveStatus::kDecoded);
  const std::size_t graphene_bytes =
      graphene_ch.payload_bytes(net::Direction::kSenderToReceiver) +
      graphene_ch.payload_bytes(net::Direction::kReceiverToSender);

  const auto cb = baselines::run_compact_blocks(s.block, s.receiver_mempool, 88);
  const auto xt = baselines::run_xthin(s.block, s.receiver_mempool);

  EXPECT_LT(graphene_bytes, cb.encoding_bytes());
  EXPECT_LT(graphene_bytes, xt.encoding_bytes());
  EXPECT_LT(graphene_bytes, xt.encoding_bytes_xthin_star());
}

TEST(EndToEnd, RepeatedRelaysFromSameSenderState) {
  // A sender must be able to serve multiple receivers (pure encode/serve).
  util::Rng rng(4);
  chain::ScenarioSpec spec;
  spec.block_txns = 150;
  spec.extra_txns = 150;
  const chain::Scenario s1 = chain::make_scenario(spec, rng);

  core::Sender sender(s1.block, 5);
  for (int i = 0; i < 3; ++i) {
    core::Receiver receiver(s1.receiver_mempool);
    const auto out = receiver.receive_block(sender.encode(s1.m));
    EXPECT_EQ(out.status, core::ReceiveStatus::kDecoded);
  }
}

TEST(EndToEnd, MempoolSyncThenBlockRelay) {
  // Realistic pipeline: peers sync mempools, then a block composed of the
  // synced transactions relays via Protocol 1 on the first try.
  util::Rng rng(5);
  chain::MempoolPair pair = chain::make_mempool_pair(600, 300, rng);
  const core::MempoolSyncResult sync = core::sync_mempools(pair.a, pair.b, rng.next());
  ASSERT_TRUE(sync.success);

  // Mine a block from 200 of the (now shared) transactions.
  auto txs = pair.a.transactions();
  txs.resize(200);
  const chain::Block block(chain::BlockHeader{}, txs);

  chain::Scenario s;
  s.block = block;
  s.receiver_mempool = pair.b;
  s.n = 200;
  s.m = pair.b.size();
  const sim::GrapheneRun run = sim::run_graphene(s, rng.next());
  EXPECT_TRUE(run.decoded);
  EXPECT_TRUE(run.p1_decoded);
}

}  // namespace
}  // namespace graphene
