#include "bloom/bloom_math.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/varint.hpp"

namespace graphene::bloom {
namespace {

TEST(BloomMath, IdealBytesMatchesPaperFormula) {
  // T_BF = −n ln(f) / (8 ln² 2)
  const double n = 2000, f = 0.01;
  const double expected = -n * std::log(f) / (8.0 * std::log(2.0) * std::log(2.0));
  EXPECT_NEAR(ideal_bytes(n, f), expected, 1e-9);
}

TEST(BloomMath, IdealBytesZeroForDegenerateFilter) {
  EXPECT_EQ(ideal_bytes(1000, 1.0), 0.0);
  EXPECT_EQ(ideal_bytes(0, 0.01), 0.0);
}

TEST(BloomMath, OptimalBitsGrowsWithItemsAndShrinksWithFpr) {
  EXPECT_GT(optimal_bits(2000, 0.01), optimal_bits(1000, 0.01));
  EXPECT_GT(optimal_bits(1000, 0.001), optimal_bits(1000, 0.01));
  EXPECT_EQ(optimal_bits(1000, 1.0), 0u);
  EXPECT_EQ(optimal_bits(0, 0.01), 0u);
}

TEST(BloomMath, OptimalBitsIsCeilOfContinuous) {
  const std::uint64_t n = 777;
  const double f = 0.02;
  const double cont = -static_cast<double>(n) * std::log(f) / (std::log(2.0) * std::log(2.0));
  EXPECT_EQ(optimal_bits(n, f), static_cast<std::uint64_t>(std::ceil(cont)));
}

TEST(BloomMath, OptimalHashCountNearLn2Ratio) {
  const std::uint64_t n = 1000;
  const std::uint64_t bits = optimal_bits(n, 0.01);
  const std::uint32_t k = optimal_hash_count(bits, n);
  // For FPR 0.01 the optimum is ~6.6 hashes.
  EXPECT_GE(k, 6u);
  EXPECT_LE(k, 8u);
}

TEST(BloomMath, HashCountClampedToValidRange) {
  EXPECT_EQ(optimal_hash_count(0, 100), 1u);
  EXPECT_EQ(optimal_hash_count(100, 0), 1u);
  EXPECT_GE(optimal_hash_count(1ULL << 40, 1), 1u);
  EXPECT_LE(optimal_hash_count(1ULL << 40, 1), 64u);
}

TEST(BloomMath, ExpectedFprAtDesignPointApproximatesTarget) {
  for (const double f : {0.1, 0.01, 0.001}) {
    const std::uint64_t n = 5000;
    const std::uint64_t bits = optimal_bits(n, f);
    const std::uint32_t k = optimal_hash_count(bits, n);
    const double actual = expected_fpr(bits, k, n);
    EXPECT_LT(actual, f * 1.3) << "target " << f;
    EXPECT_GT(actual, f * 0.5) << "target " << f;
  }
}

TEST(BloomMath, ExpectedFprEdgeCases) {
  EXPECT_EQ(expected_fpr(0, 4, 10), 1.0);
  EXPECT_EQ(expected_fpr(100, 4, 0), 0.0);
}

TEST(BloomMath, SerializedBytesIncludesHeader) {
  // Degenerate filter: header only (varint 0 + k byte + seed).
  EXPECT_EQ(serialized_bytes(100, 1.0), 1u + 1u + 8u);
  // Real filter: header + ceil(bits/8).
  const std::uint64_t bits = optimal_bits(100, 0.01);
  EXPECT_EQ(serialized_bytes(100, 0.01), util::varint_size(bits) + 1 + 8 + (bits + 7) / 8);
}

TEST(BloomMath, SerializedSizeMonotoneInItems) {
  std::size_t prev = 0;
  for (std::uint64_t n = 100; n <= 10000; n += 100) {
    const std::size_t s = serialized_bytes(n, 0.01);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace graphene::bloom
