#include "bloom/golomb_set.hpp"

#include <gtest/gtest.h>

#include "bloom/bloom_math.hpp"
#include "chain/transaction.hpp"
#include "util/random.hpp"

namespace graphene::bloom {
namespace {

using chain::TxId;

std::vector<TxId> random_ids(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<TxId> ids(count);
  for (auto& id : ids) id = chain::make_random_transaction(rng).id;
  return ids;
}

GolombSet build(const std::vector<TxId>& ids, double fpr, std::uint64_t seed = 0) {
  std::vector<util::ByteView> views;
  views.reserve(ids.size());
  for (const TxId& id : ids) views.emplace_back(id.data(), id.size());
  return GolombSet::from_views(views, fpr, seed);
}

TEST(GolombSet, NoFalseNegatives) {
  const auto ids = random_ids(2000, 1);
  const GolombSet g = build(ids, 0.01);
  for (const TxId& id : ids) {
    EXPECT_TRUE(g.contains(util::ByteView(id.data(), id.size())));
  }
}

class GcsFprSweep : public ::testing::TestWithParam<double> {};

TEST_P(GcsFprSweep, EmpiricalFprNearTarget) {
  const double target = GetParam();
  const auto members = random_ids(2000, 2);
  const auto probes = random_ids(30000, 3);
  const GolombSet g = build(members, target);
  std::size_t fps = 0;
  for (const TxId& id : probes) {
    fps += g.contains(util::ByteView(id.data(), id.size())) ? 1 : 0;
  }
  const double observed = static_cast<double>(fps) / static_cast<double>(probes.size());
  EXPECT_LT(observed, target * 2.0 + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Targets, GcsFprSweep, ::testing::Values(0.05, 0.01, 0.002));

TEST(GolombSet, SerializeRoundTrip) {
  const auto ids = random_ids(500, 4);
  const GolombSet g = build(ids, 0.01, 77);
  const util::Bytes wire = g.serialize();
  EXPECT_EQ(wire.size(), g.serialized_size());
  util::ByteReader r{util::ByteView(wire)};
  const GolombSet h = GolombSet::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(h.item_count(), 500u);
  for (const TxId& id : ids) {
    EXPECT_TRUE(h.contains(util::ByteView(id.data(), id.size())));
  }
}

TEST(GolombSet, NearOptimalBitsPerItem) {
  // ~log2(1/f)+1.5 bits/item — tighter than a Bloom filter's 1.44·log2(1/f)
  // for small f.
  const std::uint64_t n = 5000;
  const double f = 1.0 / 1024.0;  // log2(1/f) = 10
  const auto ids = random_ids(n, 5);
  const GolombSet g = build(ids, f);
  const double bits_per_item =
      static_cast<double>(g.serialized_size()) * 8.0 / static_cast<double>(n);
  EXPECT_LT(bits_per_item, 12.5);
  EXPECT_GT(bits_per_item, 10.0);
  EXPECT_LT(g.serialized_size(), serialized_bytes(n, f));  // beats Bloom here
}

TEST(GolombSet, PredictionTracksActual) {
  const auto ids = random_ids(3000, 6);
  const GolombSet g = build(ids, 0.01);
  const double predicted = static_cast<double>(gcs_serialized_bytes(3000, 0.01));
  EXPECT_NEAR(predicted, static_cast<double>(g.serialized_size()), predicted * 0.1);
}

TEST(GolombSet, EmptySetContainsNothing) {
  const GolombSet g = build({}, 0.01);
  const auto probes = random_ids(10, 7);
  for (const TxId& id : probes) {
    EXPECT_FALSE(g.contains(util::ByteView(id.data(), id.size())));
  }
}

TEST(GolombSet, TruncatedStreamThrows) {
  const auto ids = random_ids(100, 8);
  const GolombSet g = build(ids, 0.01);
  util::Bytes wire = g.serialize();
  wire.resize(wire.size() - 3);
  util::ByteReader r{util::ByteView(wire)};
  EXPECT_THROW(GolombSet::deserialize(r), util::DeserializeError);
}

}  // namespace
}  // namespace graphene::bloom
