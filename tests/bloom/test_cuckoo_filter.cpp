#include "bloom/cuckoo_filter.hpp"

#include <gtest/gtest.h>

#include "bloom/bloom_math.hpp"
#include "chain/transaction.hpp"
#include "util/random.hpp"

namespace graphene::bloom {
namespace {

using chain::TxId;

std::vector<TxId> random_ids(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<TxId> ids(count);
  for (auto& id : ids) id = chain::make_random_transaction(rng).id;
  return ids;
}

util::ByteView view(const TxId& id) { return util::ByteView(id.data(), id.size()); }

TEST(CuckooFilter, NoFalseNegatives) {
  const auto ids = random_ids(5000, 1);
  CuckooFilter f(ids.size(), 0.01, 42);
  for (const TxId& id : ids) f.insert(view(id));
  for (const TxId& id : ids) EXPECT_TRUE(f.contains(view(id)));
}

class CuckooFprSweep : public ::testing::TestWithParam<double> {};

TEST_P(CuckooFprSweep, EmpiricalFprNearTarget) {
  const double target = GetParam();
  const auto members = random_ids(4000, 2);
  const auto probes = random_ids(40000, 3);
  CuckooFilter f(members.size(), target, 7);
  for (const TxId& id : members) f.insert(view(id));
  std::size_t fps = 0;
  for (const TxId& id : probes) fps += f.contains(view(id)) ? 1 : 0;
  const double observed = static_cast<double>(fps) / static_cast<double>(probes.size());
  EXPECT_LT(observed, target * 2.0 + 1e-4) << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, CuckooFprSweep, ::testing::Values(0.05, 0.01, 0.002));

TEST(CuckooFilter, SupportsDeletion) {
  const auto ids = random_ids(100, 4);
  CuckooFilter f(ids.size(), 0.01, 9);
  for (const TxId& id : ids) f.insert(view(id));
  EXPECT_TRUE(f.erase(view(ids[0])));
  // Deleting may leave a same-fingerprint twin, but with 100 items the
  // overwhelmingly likely outcome is a clean negative.
  int present = 0;
  for (const TxId& id : ids) present += f.contains(view(id)) ? 1 : 0;
  EXPECT_GE(present, 99);
}

TEST(CuckooFilter, DegenerateMatchesEverything) {
  CuckooFilter f(1000, 1.0);
  EXPECT_TRUE(f.matches_everything());
  for (const TxId& id : random_ids(50, 5)) EXPECT_TRUE(f.contains(view(id)));
}

TEST(CuckooFilter, SerializeRoundTrip) {
  const auto ids = random_ids(700, 6);
  CuckooFilter f(ids.size(), 0.01, 11);
  for (const TxId& id : ids) f.insert(view(id));

  const util::Bytes wire = f.serialize();
  util::ByteReader r{util::ByteView(wire)};
  const CuckooFilter g = CuckooFilter::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(g.bucket_count(), f.bucket_count());
  EXPECT_EQ(g.fingerprint_bits(), f.fingerprint_bits());
  for (const TxId& id : ids) EXPECT_TRUE(g.contains(view(id)));
  for (const TxId& id : random_ids(2000, 7)) {
    EXPECT_EQ(f.contains(view(id)), g.contains(view(id)));
  }
}

TEST(CuckooFilter, DeserializeRejectsBadParameters) {
  CuckooFilter f(100, 0.01, 3);
  util::Bytes wire = f.serialize();
  // Fingerprint width byte follows the varint bucket count (1 byte here).
  wire[1] = 2;  // below minimum
  util::ByteReader r{util::ByteView(wire)};
  EXPECT_THROW(CuckooFilter::deserialize(r), util::DeserializeError);
}

TEST(CuckooFilter, OverfillGoesToStashWithoutFalseNegatives) {
  // Insert 3x the design capacity: inserts may report failure, but lookups
  // must still find every inserted item (stash guarantee).
  const auto ids = random_ids(600, 8);
  CuckooFilter f(200, 0.01, 13);
  for (const TxId& id : ids) f.insert(view(id));
  for (const TxId& id : ids) EXPECT_TRUE(f.contains(view(id)));
}

TEST(CuckooFilter, SizePredictionMatchesActual) {
  const auto ids = random_ids(1000, 9);
  CuckooFilter f(ids.size(), 0.01, 15);
  for (const TxId& id : ids) f.insert(view(id));
  EXPECT_EQ(f.serialize().size(), f.serialized_size());
  // Prediction assumes an empty stash; allow slack for stashed victims.
  EXPECT_NEAR(static_cast<double>(cuckoo_serialized_bytes(1000, 0.01)),
              static_cast<double>(f.serialized_size()), 64.0);
}

TEST(CuckooFilter, LowFprCheaperThanBloomHighFprCostlier) {
  // The §3.3.2 trade: Bloom costs 1.44·log2(1/f) bits/item, Cuckoo
  // (w≥4)/0.95 (+pow2 rounding). At f=0.1 Bloom wins; at f≈1e-4, Cuckoo's
  // per-item bits undercut Bloom's.
  EXPECT_LT(bloom::serialized_bytes(10000, 0.1), cuckoo_serialized_bytes(10000, 0.1));
  // Compare per-item bits directly at low FPR (power-of-two table rounding
  // can still mask the win at some n; use a friendly n).
  const std::uint64_t n = 48000;  // ~0.95 load at 2^14 buckets... pick large
  EXPECT_LT(cuckoo_serialized_bytes(n, 0.0001),
            bloom::serialized_bytes(n, 0.0001) * 12 / 10);
}

}  // namespace
}  // namespace graphene::bloom
