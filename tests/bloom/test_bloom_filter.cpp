#include "bloom/bloom_filter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "chain/transaction.hpp"
#include "util/varint.hpp"
#include "util/random.hpp"

namespace graphene::bloom {
namespace {

using chain::TxId;

std::vector<TxId> random_ids(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<TxId> ids(count);
  for (auto& id : ids) id = chain::make_random_transaction(rng).id;
  return ids;
}

util::ByteView view(const TxId& id) { return util::ByteView(id.data(), id.size()); }

TEST(BloomFilter, NoFalseNegatives) {
  const auto ids = random_ids(5000, 1);
  BloomFilter f(ids.size(), 0.01, /*seed=*/42);
  for (const TxId& id : ids) f.insert(view(id));
  for (const TxId& id : ids) EXPECT_TRUE(f.contains(view(id)));
}

class BloomFprSweep : public ::testing::TestWithParam<double> {};

TEST_P(BloomFprSweep, EmpiricalFprNearTarget) {
  const double target = GetParam();
  const auto members = random_ids(4000, 2);
  const auto non_members = random_ids(40000, 3);
  BloomFilter f(members.size(), target, /*seed=*/7);
  for (const TxId& id : members) f.insert(view(id));

  std::size_t fps = 0;
  for (const TxId& id : non_members) fps += f.contains(view(id)) ? 1 : 0;
  const double observed = static_cast<double>(fps) / static_cast<double>(non_members.size());
  EXPECT_LT(observed, target * 1.8) << "target " << target;
  // Shouldn't be wildly over-built either (within ~3x of target).
  EXPECT_GT(observed, target / 3.0) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, BloomFprSweep, ::testing::Values(0.1, 0.02, 0.005));

TEST(BloomFilter, DegenerateFilterMatchesEverything) {
  BloomFilter f(1000, 1.0);
  EXPECT_TRUE(f.matches_everything());
  EXPECT_EQ(f.bit_count(), 0u);
  for (const TxId& id : random_ids(100, 4)) EXPECT_TRUE(f.contains(view(id)));
}

TEST(BloomFilter, DefaultConstructedMatchesEverything) {
  const BloomFilter f;
  EXPECT_TRUE(f.matches_everything());
}

TEST(BloomFilter, SerializeRoundTrip) {
  const auto ids = random_ids(500, 5);
  BloomFilter f(ids.size(), 0.02, /*seed=*/99);
  for (const TxId& id : ids) f.insert(view(id));

  const util::Bytes wire = f.serialize();
  EXPECT_EQ(wire.size(), f.serialized_size());

  util::ByteReader r{util::ByteView(wire)};
  const BloomFilter g = BloomFilter::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(g.bit_count(), f.bit_count());
  EXPECT_EQ(g.hash_count(), f.hash_count());
  EXPECT_EQ(g.seed(), f.seed());
  for (const TxId& id : ids) EXPECT_TRUE(g.contains(view(id)));
  // Identical probe answers on non-members too.
  for (const TxId& id : random_ids(2000, 6)) {
    EXPECT_EQ(f.contains(view(id)), g.contains(view(id)));
  }
}

TEST(BloomFilter, DegenerateSerializeRoundTrip) {
  BloomFilter f(100, 1.0, 3);
  const util::Bytes wire = f.serialize();
  util::ByteReader r{util::ByteView(wire)};
  const BloomFilter g = BloomFilter::deserialize(r);
  EXPECT_TRUE(g.matches_everything());
}

TEST(BloomFilter, DeserializeRejectsZeroHashCount) {
  BloomFilter f(100, 0.01, 3);
  util::Bytes wire = f.serialize();
  // Hash-count byte sits right after the varint bit count.
  const std::size_t k_offset = util::varint_size(f.bit_count());
  wire[k_offset] = 0;
  util::ByteReader r{util::ByteView(wire)};
  EXPECT_THROW(BloomFilter::deserialize(r), util::DeserializeError);
}

TEST(BloomFilter, SeedsDecorrelateFalsePositives) {
  const auto members = random_ids(1000, 7);
  const auto probes = random_ids(20000, 8);
  BloomFilter f1(members.size(), 0.05, 1);
  BloomFilter f2(members.size(), 0.05, 2);
  for (const TxId& id : members) {
    f1.insert(view(id));
    f2.insert(view(id));
  }
  std::size_t both = 0, either = 0;
  for (const TxId& id : probes) {
    const bool a = f1.contains(view(id));
    const bool b = f2.contains(view(id));
    both += (a && b) ? 1 : 0;
    either += (a || b) ? 1 : 0;
  }
  // Independent filters: P(both) ≈ f² ≪ P(either).
  EXPECT_LT(both * 10, either + 10);
}

TEST(BloomFilter, RehashStrategyAlsoCorrect) {
  const auto ids = random_ids(1000, 9);
  BloomFilter f(ids.size(), 0.01, 11, HashStrategy::kRehash);
  for (const TxId& id : ids) f.insert(view(id));
  for (const TxId& id : ids) EXPECT_TRUE(f.contains(view(id)));
  std::size_t fps = 0;
  for (const TxId& id : random_ids(20000, 10)) fps += f.contains(view(id)) ? 1 : 0;
  EXPECT_LT(static_cast<double>(fps) / 20000.0, 0.02);
}

TEST(BloomFilter, RehashStrategySurvivesSerialization) {
  const auto ids = random_ids(100, 12);
  BloomFilter f(ids.size(), 0.01, 13, HashStrategy::kRehash);
  for (const TxId& id : ids) f.insert(view(id));
  const util::Bytes wire = f.serialize();
  util::ByteReader r{util::ByteView(wire)};
  const BloomFilter g = BloomFilter::deserialize(r);
  for (const TxId& id : ids) EXPECT_TRUE(g.contains(view(id)));
}

TEST(BloomFilter, HighHashCountFprNotInflated) {
  // Regression: plain double hashing inflated the FPR ~1.6x at k ≈ 13
  // (surfaced by the Fig. 13 workload: tiny blocks against a 60k mempool).
  // Enhanced double hashing must track the theoretical rate closely.
  const std::uint64_t n = 120;
  const double target = 10.0 / 59880.0;  // k ≈ 13
  util::Rng rng(99);
  std::uint64_t fps = 0;
  constexpr int kProbes = 400000;
  BloomFilter f(n, target, rng.next());
  ASSERT_GE(f.hash_count(), 10u);
  for (std::uint64_t i = 0; i < n; ++i) {
    const TxId id = chain::make_random_transaction(rng).id;
    f.insert(view(id));
  }
  for (int i = 0; i < kProbes; ++i) {
    const TxId id = chain::make_random_transaction(rng).id;
    fps += f.contains(view(id)) ? 1 : 0;
  }
  const double observed = static_cast<double>(fps) / kProbes;
  EXPECT_LT(observed, target * 1.35);
}

TEST(BloomFilter, EffectiveFprTracksLoad) {
  BloomFilter f(1000, 0.01, 14);
  EXPECT_EQ(f.effective_fpr(), 0.0);  // nothing inserted yet
  for (const TxId& id : random_ids(1000, 15)) f.insert(view(id));
  EXPECT_NEAR(f.effective_fpr(), 0.01, 0.005);
}

}  // namespace
}  // namespace graphene::bloom
