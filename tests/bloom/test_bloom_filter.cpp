#include "bloom/bloom_filter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include <atomic>
#include <thread>

#include "chain/transaction.hpp"
#include "util/hex.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace graphene::bloom {
namespace {

using chain::TxId;

std::vector<TxId> random_ids(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<TxId> ids(count);
  for (auto& id : ids) id = chain::make_random_transaction(rng).id;
  return ids;
}

util::ByteView view(const TxId& id) { return util::ByteView(id.data(), id.size()); }

TEST(BloomFilter, NoFalseNegatives) {
  const auto ids = random_ids(5000, 1);
  BloomFilter f(ids.size(), 0.01, /*seed=*/42);
  for (const TxId& id : ids) f.insert(view(id));
  for (const TxId& id : ids) EXPECT_TRUE(f.contains(view(id)));
}

class BloomFprSweep : public ::testing::TestWithParam<double> {};

TEST_P(BloomFprSweep, EmpiricalFprNearTarget) {
  const double target = GetParam();
  const auto members = random_ids(4000, 2);
  const auto non_members = random_ids(40000, 3);
  BloomFilter f(members.size(), target, /*seed=*/7);
  for (const TxId& id : members) f.insert(view(id));

  std::size_t fps = 0;
  for (const TxId& id : non_members) fps += f.contains(view(id)) ? 1 : 0;
  const double observed = static_cast<double>(fps) / static_cast<double>(non_members.size());
  EXPECT_LT(observed, target * 1.8) << "target " << target;
  // Shouldn't be wildly over-built either (within ~3x of target).
  EXPECT_GT(observed, target / 3.0) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, BloomFprSweep, ::testing::Values(0.1, 0.02, 0.005));

TEST(BloomFilter, DegenerateFilterMatchesEverything) {
  BloomFilter f(1000, 1.0);
  EXPECT_TRUE(f.matches_everything());
  EXPECT_EQ(f.bit_count(), 0u);
  for (const TxId& id : random_ids(100, 4)) EXPECT_TRUE(f.contains(view(id)));
}

TEST(BloomFilter, DefaultConstructedMatchesEverything) {
  const BloomFilter f;
  EXPECT_TRUE(f.matches_everything());
}

TEST(BloomFilter, SerializeRoundTrip) {
  const auto ids = random_ids(500, 5);
  BloomFilter f(ids.size(), 0.02, /*seed=*/99);
  for (const TxId& id : ids) f.insert(view(id));

  const util::Bytes wire = f.serialize();
  EXPECT_EQ(wire.size(), f.serialized_size());

  util::ByteReader r{util::ByteView(wire)};
  const BloomFilter g = BloomFilter::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(g.bit_count(), f.bit_count());
  EXPECT_EQ(g.hash_count(), f.hash_count());
  EXPECT_EQ(g.seed(), f.seed());
  for (const TxId& id : ids) EXPECT_TRUE(g.contains(view(id)));
  // Identical probe answers on non-members too.
  for (const TxId& id : random_ids(2000, 6)) {
    EXPECT_EQ(f.contains(view(id)), g.contains(view(id)));
  }
}

TEST(BloomFilter, DegenerateSerializeRoundTrip) {
  BloomFilter f(100, 1.0, 3);
  const util::Bytes wire = f.serialize();
  util::ByteReader r{util::ByteView(wire)};
  const BloomFilter g = BloomFilter::deserialize(r);
  EXPECT_TRUE(g.matches_everything());
}

TEST(BloomFilter, DeserializeRejectsZeroHashCount) {
  BloomFilter f(100, 0.01, 3);
  util::Bytes wire = f.serialize();
  // Hash-count byte sits right after the varint bit count.
  const std::size_t k_offset = util::varint_size(f.bit_count());
  wire[k_offset] = 0;
  util::ByteReader r{util::ByteView(wire)};
  EXPECT_THROW(BloomFilter::deserialize(r), util::DeserializeError);
}

TEST(BloomFilter, SeedsDecorrelateFalsePositives) {
  const auto members = random_ids(1000, 7);
  const auto probes = random_ids(20000, 8);
  BloomFilter f1(members.size(), 0.05, 1);
  BloomFilter f2(members.size(), 0.05, 2);
  for (const TxId& id : members) {
    f1.insert(view(id));
    f2.insert(view(id));
  }
  std::size_t both = 0, either = 0;
  for (const TxId& id : probes) {
    const bool a = f1.contains(view(id));
    const bool b = f2.contains(view(id));
    both += (a && b) ? 1 : 0;
    either += (a || b) ? 1 : 0;
  }
  // Independent filters: P(both) ≈ f² ≪ P(either).
  EXPECT_LT(both * 10, either + 10);
}

TEST(BloomFilter, RehashStrategyAlsoCorrect) {
  const auto ids = random_ids(1000, 9);
  BloomFilter f(ids.size(), 0.01, 11, HashStrategy::kRehash);
  for (const TxId& id : ids) f.insert(view(id));
  for (const TxId& id : ids) EXPECT_TRUE(f.contains(view(id)));
  std::size_t fps = 0;
  for (const TxId& id : random_ids(20000, 10)) fps += f.contains(view(id)) ? 1 : 0;
  EXPECT_LT(static_cast<double>(fps) / 20000.0, 0.02);
}

TEST(BloomFilter, RehashStrategySurvivesSerialization) {
  const auto ids = random_ids(100, 12);
  BloomFilter f(ids.size(), 0.01, 13, HashStrategy::kRehash);
  for (const TxId& id : ids) f.insert(view(id));
  const util::Bytes wire = f.serialize();
  util::ByteReader r{util::ByteView(wire)};
  const BloomFilter g = BloomFilter::deserialize(r);
  for (const TxId& id : ids) EXPECT_TRUE(g.contains(view(id)));
}

TEST(BloomFilter, HighHashCountFprNotInflated) {
  // Regression: plain double hashing inflated the FPR ~1.6x at k ≈ 13
  // (surfaced by the Fig. 13 workload: tiny blocks against a 60k mempool).
  // Enhanced double hashing must track the theoretical rate closely.
  const std::uint64_t n = 120;
  const double target = 10.0 / 59880.0;  // k ≈ 13
  util::Rng rng(99);
  std::uint64_t fps = 0;
  constexpr int kProbes = 400000;
  BloomFilter f(n, target, rng.next());
  ASSERT_GE(f.hash_count(), 10u);
  for (std::uint64_t i = 0; i < n; ++i) {
    const TxId id = chain::make_random_transaction(rng).id;
    f.insert(view(id));
  }
  for (int i = 0; i < kProbes; ++i) {
    const TxId id = chain::make_random_transaction(rng).id;
    fps += f.contains(view(id)) ? 1 : 0;
  }
  const double observed = static_cast<double>(fps) / kProbes;
  EXPECT_LT(observed, target * 1.35);
}

TEST(BloomFilter, EffectiveFprTracksLoad) {
  BloomFilter f(1000, 0.01, 14);
  EXPECT_EQ(f.effective_fpr(), 0.0);  // nothing inserted yet
  for (const TxId& id : random_ids(1000, 15)) f.insert(view(id));
  EXPECT_NEAR(f.effective_fpr(), 0.01, 0.005);
}

// --- blocked layout, batch APIs, and wire-format pins (PR 5) ---------------

/// The exact transaction stream the pinned wire fixtures below were captured
/// from: 40 ids drawn from Rng(12345).
std::vector<TxId> fixture_ids() {
  util::Rng rng(12345);
  std::vector<TxId> ids(40);
  for (auto& id : ids) id = chain::make_random_transaction(rng).id;
  return ids;
}

TEST(BloomFilter, GoldenWireBytesPinAllStrategies) {
  // Serialized bytes pin BOTH the wire header and every probe position; any
  // change to index derivation (hashing, reduction) or payload layout shows
  // up here as a diff. Captured from the seed implementation for split and
  // rehash, and from the first blocked implementation for kBlocked.
  const auto ids = fixture_ids();
  BloomFilter split(40, 0.02, 0xabcdef);
  BloomFilter rehash(40, 0.02, 0xabcdef, HashStrategy::kRehash);
  BloomFilter blocked(40, 0.02, 0xabcdef, HashStrategy::kBlocked);
  for (const TxId& id : ids) {
    split.insert(view(id));
    rehash.insert(view(id));
    blocked.insert(view(id));
  }
  EXPECT_EQ(util::to_hex(split.serialize()),
            "fd460106efcdab00000000007c02dd1b70e8463c250da3316bbd88e128732a75ee2c1a"
            "01ffef744d8ce2c9be06cf36e253bbfbce38");
  EXPECT_EQ(util::to_hex(rehash.serialize()),
            "fd460186efcdab00000000002db3b2c1e577d1e345f24a75a3312a24effbe04a93de2a"
            "cec833863e5cb0aa750727c3f43b6e24d317");
  EXPECT_EQ(util::to_hex(blocked.serialize()),
            "fd0002c9efcdab00000000003fb1dcb044711b04fc24057d3934443def3404994b32ec"
            "465815e8f90f752ba8c8ae99d39fd4dbe3a5d01793c32a4994379281949382e7637db5"
            "c84cea5ee41d");
}

TEST(BloomFilter, BlockedStrategyCorrectAndRoundTrips) {
  const auto members = random_ids(3000, 21);
  const auto non_members = random_ids(30000, 22);
  BloomFilter f(members.size(), 0.01, /*seed=*/31, HashStrategy::kBlocked);
  EXPECT_EQ(f.strategy(), HashStrategy::kBlocked);
  EXPECT_EQ(f.bit_count() % BloomFilter::kBlockBits, 0u);
  EXPECT_LE(f.hash_count(), 63u);
  for (const TxId& id : members) f.insert(view(id));
  for (const TxId& id : members) ASSERT_TRUE(f.contains(view(id)));

  // Blocking costs a constant factor of FPR, not an order of magnitude.
  std::size_t fps = 0;
  for (const TxId& id : non_members) fps += f.contains(view(id)) ? 1 : 0;
  const double observed =
      static_cast<double>(fps) / static_cast<double>(non_members.size());
  EXPECT_LT(observed, 0.04);

  util::Bytes wire = f.serialize();
  EXPECT_EQ(wire.size(), f.serialized_size());
  util::ByteReader reader(wire);
  const BloomFilter g = BloomFilter::deserialize(reader);
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(g.strategy(), HashStrategy::kBlocked);
  EXPECT_EQ(g.bit_count(), f.bit_count());
  EXPECT_EQ(g.hash_count(), f.hash_count());
  EXPECT_EQ(g.serialize(), wire);
  for (const TxId& id : members) ASSERT_TRUE(g.contains(view(id)));
  for (const TxId& id : non_members) {
    ASSERT_EQ(g.contains(view(id)), f.contains(view(id)));
  }
}

TEST(BloomFilter, ByteC0StillParsesAsRehashK64) {
  // 0xc0 was a valid k byte before the blocked layout claimed the 0xc1–0xff
  // range: rehash with k = 64. It must keep that meaning.
  util::ByteWriter w;
  util::write_varint(w, 512);
  w.u8(0xc0);
  w.u64(77);
  for (int i = 0; i < 64; ++i) w.u8(0);
  util::ByteReader reader(w.bytes());
  const BloomFilter f = BloomFilter::deserialize(reader);
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(f.strategy(), HashStrategy::kRehash);
  EXPECT_EQ(f.hash_count(), 64u);
}

TEST(BloomFilter, BlockedHeaderRequiresWholeBlocks) {
  // A blocked strategy byte with a bit count that is not a multiple of 512
  // cannot have been produced by this implementation; reject it.
  util::ByteWriter w;
  util::write_varint(w, 256);
  w.u8(0xc0 | 3);
  w.u64(77);
  for (int i = 0; i < 32; ++i) w.u8(0);
  util::ByteReader reader(w.bytes());
  EXPECT_THROW((void)BloomFilter::deserialize(reader), util::DeserializeError);
}

TEST(BloomFilter, DegenerateBlockedFallsBackToSplitHeader) {
  // FPR >= 1 yields the zero-bit filter whose header must stay parseable;
  // the constructor falls back to the split-digest encoding for it.
  const BloomFilter f(1000, 1.0, 5, HashStrategy::kBlocked);
  EXPECT_TRUE(f.matches_everything());
  util::Bytes wire = f.serialize();
  util::ByteReader reader(wire);
  const BloomFilter g = BloomFilter::deserialize(reader);
  EXPECT_TRUE(g.matches_everything());
}

class BloomBatchParity : public ::testing::TestWithParam<HashStrategy> {};

TEST_P(BloomBatchParity, BatchPathsMatchScalarBitForBit) {
  const HashStrategy strategy = GetParam();
  const auto members = random_ids(2500, 23);
  const auto probes = random_ids(5000, 24);

  BloomFilter scalar(members.size(), 0.015, /*seed=*/9, strategy);
  BloomFilter batch(members.size(), 0.015, /*seed=*/9, strategy);
  for (const TxId& id : members) scalar.insert(view(id));
  std::vector<util::ByteView> member_views;
  for (const TxId& id : members) member_views.push_back(view(id));
  batch.insert_batch(member_views.data(), member_views.size());
  ASSERT_EQ(batch.serialize(), scalar.serialize());
  EXPECT_EQ(batch.insert_count(), scalar.insert_count());

  std::vector<util::ByteView> probe_views;
  for (const TxId& id : probes) probe_views.push_back(view(id));
  std::vector<std::uint8_t> out(probe_views.size());
  batch.contains_batch(probe_views.data(), probe_views.size(), out.data());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(out[i] != 0, scalar.contains(view(probes[i]))) << i;
  }
  // One relaxed stats update per batch, same totals as the scalar loop.
  EXPECT_EQ(batch.query_count(), scalar.query_count());
  EXPECT_EQ(batch.hit_count(), scalar.hit_count());

  // contains_all (the chunk-parallel scan) agrees for any worker count.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool pool(workers);
    std::vector<std::uint8_t> par(probe_views.size());
    contains_all(batch, probe_views.data(), probe_views.size(), par.data(), &pool);
    ASSERT_EQ(par, out) << "workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, BloomBatchParity,
                         ::testing::Values(HashStrategy::kSplitDigest,
                                           HashStrategy::kRehash,
                                           HashStrategy::kBlocked));

TEST(BloomFilter, CopyAndMovePreserveStatsCounters) {
  const auto ids = random_ids(100, 25);
  BloomFilter f(ids.size(), 0.01, 3);
  for (const TxId& id : ids) f.insert(view(id));
  for (const TxId& id : ids) (void)f.contains(view(id));
  ASSERT_EQ(f.query_count(), ids.size());
  ASSERT_EQ(f.hit_count(), ids.size());

  const BloomFilter copy = f;
  EXPECT_EQ(copy.insert_count(), f.insert_count());
  EXPECT_EQ(copy.query_count(), ids.size());
  EXPECT_EQ(copy.hit_count(), ids.size());
  EXPECT_EQ(copy.serialize(), f.serialize());

  BloomFilter moved = std::move(f);
  EXPECT_EQ(moved.query_count(), ids.size());
  EXPECT_EQ(moved.serialize(), copy.serialize());
}

TEST(BloomFilterConcurrent, ContainsIsRaceFreeAcrossThreads) {
  // contains()/contains_batch() advertise thread-safety for concurrent
  // readers (relaxed atomic stats, read-only bit array). Hammer one filter
  // from several threads; TSan (the CI stress leg matches "Concurrent")
  // proves race-freedom and the relaxed counters must not lose increments.
  const auto members = random_ids(512, 26);
  const auto probes = random_ids(2048, 27);
  BloomFilter f(members.size(), 0.01, 11, HashStrategy::kBlocked);
  for (const TxId& id : members) f.insert(view(id));
  f.reset_query_stats();

  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::atomic<std::uint64_t> expected_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t hits = 0;
      std::vector<util::ByteView> views;
      for (const TxId& id : probes) views.push_back(view(id));
      std::vector<std::uint8_t> out(views.size());
      for (int round = 0; round < kRounds; ++round) {
        if ((t + round) % 2 == 0) {
          for (const TxId& id : probes) hits += f.contains(view(id)) ? 1 : 0;
        } else {
          f.contains_batch(views.data(), views.size(), out.data());
          for (const std::uint8_t bit : out) hits += bit;
        }
      }
      expected_hits.fetch_add(hits, std::memory_order_relaxed);
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(f.query_count(),
            static_cast<std::uint64_t>(kThreads) * kRounds * probes.size());
  EXPECT_EQ(f.hit_count(), expected_hits.load());
}

}  // namespace
}  // namespace graphene::bloom
