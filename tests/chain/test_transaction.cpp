#include "chain/transaction.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/hex.hpp"

namespace graphene::chain {
namespace {

TEST(Transaction, PayloadHashIsDoubleSha256) {
  const util::Bytes payload = {1, 2, 3};
  const Transaction tx = make_transaction(util::ByteView(payload));
  EXPECT_EQ(tx.id, util::sha256d(util::ByteView(payload)));
  EXPECT_EQ(tx.size_bytes, 3u);
}

TEST(Transaction, RandomTransactionsHaveDistinctIds) {
  util::Rng rng(1);
  std::set<TxId> ids;
  for (int i = 0; i < 10000; ++i) ids.insert(make_random_transaction(rng).id);
  EXPECT_EQ(ids.size(), 10000u);
}

TEST(Transaction, RandomSizesInModeledRange) {
  util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const Transaction tx = make_random_transaction(rng);
    EXPECT_GE(tx.size_bytes, 100u);
    EXPECT_LE(tx.size_bytes, 1100u);
  }
}

TEST(ShortId, TakesFirstEightBytesLittleEndian) {
  TxId id{};
  for (std::size_t i = 0; i < id.size(); ++i) id[i] = static_cast<std::uint8_t>(i + 1);
  EXPECT_EQ(short_id(id), 0x0807060504030201ULL);
}

TEST(ShortId, KeyedVariesWithKey) {
  util::Rng rng(3);
  const TxId id = make_random_transaction(rng).id;
  EXPECT_NE(short_id_keyed(util::SipHashKey{1, 2}, id),
            short_id_keyed(util::SipHashKey{1, 3}, id));
}

TEST(ShortId, SixByteVariantFitsIn48Bits) {
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const TxId id = make_random_transaction(rng).id;
    EXPECT_EQ(short_id6(util::SipHashKey{5, 6}, id) >> 48, 0u);
  }
}

TEST(CtorLess, OrdersLexicographically) {
  Transaction a, b;
  a.id.fill(0x01);
  b.id.fill(0x02);
  const CtorLess less;
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
  EXPECT_FALSE(less(a, a));
}

TEST(TxIdHasher, AgreesWithShortId) {
  util::Rng rng(5);
  const TxId id = make_random_transaction(rng).id;
  EXPECT_EQ(TxIdHasher{}(id), static_cast<std::size_t>(short_id(id)));
}

TEST(Transaction, EqualityIsIdentityOnId) {
  util::Rng rng(6);
  Transaction a = make_random_transaction(rng);
  Transaction b = a;
  b.size_bytes += 1;
  EXPECT_EQ(a, b);  // same id ⇒ same transaction
  b.id[0] ^= 1;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace graphene::chain
