#include "chain/mempool.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.hpp"

namespace graphene::chain {
namespace {

TEST(Mempool, InsertContainsGet) {
  util::Rng rng(1);
  Mempool pool;
  const Transaction tx = make_random_transaction(rng);
  EXPECT_TRUE(pool.insert(tx));
  EXPECT_TRUE(pool.contains(tx.id));
  ASSERT_TRUE(pool.get(tx.id).has_value());
  EXPECT_EQ(pool.get(tx.id)->id, tx.id);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, DuplicateInsertRejected) {
  util::Rng rng(2);
  Mempool pool;
  const Transaction tx = make_random_transaction(rng);
  EXPECT_TRUE(pool.insert(tx));
  EXPECT_FALSE(pool.insert(tx));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, EraseRemoves) {
  util::Rng rng(3);
  Mempool pool;
  const Transaction tx = make_random_transaction(rng);
  pool.insert(tx);
  EXPECT_TRUE(pool.erase(tx.id));
  EXPECT_FALSE(pool.contains(tx.id));
  EXPECT_FALSE(pool.erase(tx.id));
  EXPECT_EQ(pool.size(), 0u);
}

TEST(Mempool, GetMissingIsNullopt) {
  Mempool pool;
  EXPECT_FALSE(pool.get(TxId{}).has_value());
}

TEST(Mempool, IdsSnapshotCoversAll) {
  util::Rng rng(4);
  Mempool pool;
  std::vector<TxId> inserted;
  for (int i = 0; i < 500; ++i) {
    const Transaction tx = make_random_transaction(rng);
    pool.insert(tx);
    inserted.push_back(tx.id);
  }
  auto ids = pool.ids();
  EXPECT_EQ(ids.size(), 500u);
  std::sort(ids.begin(), ids.end());
  std::sort(inserted.begin(), inserted.end());
  EXPECT_EQ(ids, inserted);
}

TEST(Mempool, TransactionsSnapshotPreservesMetadata) {
  util::Rng rng(5);
  Mempool pool;
  Transaction tx = make_random_transaction(rng);
  tx.size_bytes = 777;
  pool.insert(tx);
  const auto txs = pool.transactions();
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_EQ(txs[0].size_bytes, 777u);
}

}  // namespace
}  // namespace graphene::chain
