#include "chain/merkle.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace graphene::chain {
namespace {

std::vector<TxId> random_ids(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<TxId> ids(count);
  for (auto& id : ids) id = make_random_transaction(rng).id;
  return ids;
}

TEST(Merkle, EmptyIsZero) { EXPECT_EQ(merkle_root({}), TxId{}); }

TEST(Merkle, SingleLeafIsItself) {
  const auto ids = random_ids(1, 1);
  EXPECT_EQ(merkle_root(ids), ids[0]);
}

TEST(Merkle, TwoLeavesMatchManualHash) {
  const auto ids = random_ids(2, 2);
  util::Sha256 h;
  h.update(util::ByteView(ids[0].data(), 32));
  h.update(util::ByteView(ids[1].data(), 32));
  const auto once = h.finalize();
  EXPECT_EQ(merkle_root(ids), util::sha256(util::ByteView(once.data(), 32)));
}

TEST(Merkle, OddCountDuplicatesLast) {
  auto ids = random_ids(3, 3);
  auto padded = ids;
  padded.push_back(ids.back());
  EXPECT_EQ(merkle_root(ids), merkle_root(padded));
}

TEST(Merkle, OrderSensitive) {
  auto ids = random_ids(4, 4);
  const TxId original = merkle_root(ids);
  std::swap(ids[0], ids[1]);
  EXPECT_NE(merkle_root(ids), original);
}

TEST(Merkle, ContentSensitive) {
  auto ids = random_ids(8, 5);
  const TxId original = merkle_root(ids);
  ids[3][0] ^= 1;
  EXPECT_NE(merkle_root(ids), original);
}

TEST(Merkle, DeterministicAcrossCalls) {
  const auto ids = random_ids(100, 6);
  EXPECT_EQ(merkle_root(ids), merkle_root(ids));
}

class MerkleSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSizeSweep, RootChangesWhenAnyLeafRemoved) {
  auto ids = random_ids(GetParam(), 7);
  const TxId full = merkle_root(ids);
  ids.pop_back();
  EXPECT_NE(merkle_root(ids), full);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizeSweep,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 15, 16, 17, 64, 100));

}  // namespace
}  // namespace graphene::chain
