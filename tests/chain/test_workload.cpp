#include "chain/workload.hpp"

#include <gtest/gtest.h>

namespace graphene::chain {
namespace {

TEST(Workload, ScenarioMeetsSpecExactly) {
  util::Rng rng(1);
  ScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 300;
  spec.block_fraction_in_mempool = 1.0;
  const Scenario s = make_scenario(spec, rng);

  EXPECT_EQ(s.block.tx_count(), 200u);
  EXPECT_EQ(s.n, 200u);
  EXPECT_EQ(s.x, 200u);
  EXPECT_EQ(s.m, 500u);
  EXPECT_EQ(s.receiver_mempool.size(), 500u);
  for (const TxId& id : s.block.tx_ids()) {
    EXPECT_TRUE(s.receiver_mempool.contains(id));
  }
}

TEST(Workload, PartialFractionGivesExactOverlap) {
  util::Rng rng(2);
  ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 50;
  spec.block_fraction_in_mempool = 0.6;
  const Scenario s = make_scenario(spec, rng);

  EXPECT_EQ(s.x, 60u);
  std::size_t overlap = 0;
  for (const TxId& id : s.block.tx_ids()) {
    overlap += s.receiver_mempool.contains(id) ? 1 : 0;
  }
  EXPECT_EQ(overlap, 60u);
  EXPECT_EQ(s.receiver_mempool.size(), 110u);
}

TEST(Workload, ZeroFractionDisjoint) {
  util::Rng rng(3);
  ScenarioSpec spec;
  spec.block_txns = 50;
  spec.extra_txns = 50;
  spec.block_fraction_in_mempool = 0.0;
  const Scenario s = make_scenario(spec, rng);
  for (const TxId& id : s.block.tx_ids()) {
    EXPECT_FALSE(s.receiver_mempool.contains(id));
  }
}

TEST(Workload, SenderMempoolIsSupersetOfBlock) {
  util::Rng rng(4);
  ScenarioSpec spec;
  spec.block_txns = 80;
  spec.sender_extra_txns = 20;
  const Scenario s = make_scenario(spec, rng);
  EXPECT_EQ(s.sender_mempool.size(), 100u);
  for (const TxId& id : s.block.tx_ids()) {
    EXPECT_TRUE(s.sender_mempool.contains(id));
  }
}

TEST(Workload, DeterministicGivenSeed) {
  ScenarioSpec spec;
  spec.block_txns = 30;
  util::Rng rng1(42), rng2(42);
  const Scenario a = make_scenario(spec, rng1);
  const Scenario b = make_scenario(spec, rng2);
  EXPECT_EQ(a.block.header().merkle_root, b.block.header().merkle_root);
}

TEST(Workload, EthBlockSizesWithinClampAndPlausible) {
  util::Rng rng(5);
  double sum = 0;
  std::uint64_t over_1000 = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t n = sample_eth_block_size(rng, 1000);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 1000u);
    sum += static_cast<double>(n);
    over_1000 += n == 1000 ? 1 : 0;
  }
  const double mean = sum / kSamples;
  EXPECT_GT(mean, 100.0);  // log-normal mean > median 120·exp(σ²/2) ≈ 170
  EXPECT_LT(mean, 300.0);
  EXPECT_LT(over_1000, kSamples / 50);  // clamp rarely binds
}

TEST(Workload, SpamScenarioReceiverMissesOnlyLowFee) {
  util::Rng rng(10);
  SpamScenarioSpec spec;
  spec.block_txns = 200;
  spec.extra_txns = 100;
  spec.low_fee_fraction = 0.1;
  spec.min_fee_per_kb = 1000;
  const Scenario s = make_spam_scenario(spec, rng);

  EXPECT_EQ(s.block.tx_count(), 200u);
  EXPECT_EQ(s.x, 180u);  // 20 low-fee txns dropped by the relay policy
  std::size_t missing = 0;
  for (const Transaction& tx : s.block.transactions()) {
    if (!s.receiver_mempool.contains(tx.id)) {
      ++missing;
      EXPECT_LT(tx.fee_per_kb, spec.min_fee_per_kb);
    }
  }
  EXPECT_EQ(missing, 20u);
  EXPECT_EQ(s.m, 280u);
}

TEST(Workload, SpamScenarioZeroFractionFullySynced) {
  util::Rng rng(11);
  SpamScenarioSpec spec;
  spec.low_fee_fraction = 0.0;
  const Scenario s = make_spam_scenario(spec, rng);
  EXPECT_EQ(s.x, spec.block_txns);
}

TEST(Workload, MempoolPairHasExactCommonCount) {
  util::Rng rng(6);
  const MempoolPair p = make_mempool_pair(1000, 400, rng);
  EXPECT_EQ(p.a.size(), 1000u);
  EXPECT_EQ(p.b.size(), 1000u);
  std::size_t common = 0;
  for (const TxId& id : p.a.ids()) common += p.b.contains(id) ? 1 : 0;
  EXPECT_EQ(common, 400u);
}

TEST(Workload, MempoolPairCommonClampedToSize) {
  util::Rng rng(7);
  const MempoolPair p = make_mempool_pair(10, 50, rng);
  EXPECT_EQ(p.a.size(), 10u);
  std::size_t common = 0;
  for (const TxId& id : p.a.ids()) common += p.b.contains(id) ? 1 : 0;
  EXPECT_EQ(common, 10u);
}

}  // namespace
}  // namespace graphene::chain
