#include "chain/block.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.hpp"

namespace graphene::chain {
namespace {

std::vector<Transaction> random_txs(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Transaction> txs(count);
  for (auto& tx : txs) tx = make_random_transaction(rng);
  return txs;
}

TEST(BlockHeader, SerializeRoundTrip) {
  util::Rng rng(1);
  BlockHeader h;
  h.version = 3;
  h.prev_hash = make_random_transaction(rng).id;
  h.merkle_root = make_random_transaction(rng).id;
  h.time = 1234567;
  h.bits = 0x1a2b3c4d;
  h.nonce = 987654;

  const util::Bytes wire = h.serialize();
  EXPECT_EQ(wire.size(), BlockHeader::kWireSize);
  util::ByteReader r{util::ByteView(wire)};
  EXPECT_EQ(BlockHeader::deserialize(r), h);
  EXPECT_TRUE(r.done());
}

TEST(Block, SortsTransactionsIntoCtorOrder) {
  const Block block(BlockHeader{}, random_txs(100, 2));
  const auto& txs = block.transactions();
  EXPECT_TRUE(std::is_sorted(txs.begin(), txs.end(), CtorLess{}));
}

TEST(Block, HeaderCommitsToMerkleRoot) {
  const Block block(BlockHeader{}, random_txs(10, 3));
  EXPECT_EQ(block.header().merkle_root, merkle_root(block.tx_ids()));
}

TEST(Block, SameTxsAnyInputOrderSameRoot) {
  auto txs = random_txs(20, 4);
  const Block a(BlockHeader{}, txs);
  std::reverse(txs.begin(), txs.end());
  const Block b(BlockHeader{}, txs);
  EXPECT_EQ(a.header().merkle_root, b.header().merkle_root);
}

TEST(Block, ValidatesItsOwnIdsInAnyOrder) {
  const Block block(BlockHeader{}, random_txs(50, 5));
  auto ids = block.tx_ids();
  std::reverse(ids.begin(), ids.end());
  EXPECT_TRUE(block.validates(std::move(ids)));
}

TEST(Block, RejectsWrongCount) {
  const Block block(BlockHeader{}, random_txs(10, 6));
  auto ids = block.tx_ids();
  ids.pop_back();
  EXPECT_FALSE(block.validates(std::move(ids)));
}

TEST(Block, RejectsSubstitutedTransaction) {
  util::Rng rng(7);
  const Block block(BlockHeader{}, random_txs(10, 8));
  auto ids = block.tx_ids();
  ids[4] = make_random_transaction(rng).id;
  EXPECT_FALSE(block.validates(std::move(ids)));
}

TEST(Block, FullBlockBytesSumsTransactionSizes) {
  const auto txs = random_txs(5, 9);
  std::size_t expected = BlockHeader::kWireSize + 1;  // varint(5) = 1 byte
  for (const auto& tx : txs) expected += tx.size_bytes;
  const Block block(BlockHeader{}, txs);
  EXPECT_EQ(block.full_block_bytes(), expected);
}

TEST(OrderingCost, MatchesNLogNOver8) {
  EXPECT_EQ(ordering_cost_bytes(0), 0u);
  EXPECT_EQ(ordering_cost_bytes(1), 0u);
  // 1024·log2(1024) = 10240 bits = 1280 bytes.
  EXPECT_EQ(ordering_cost_bytes(1024), 1280u);
  // Grows superlinearly.
  EXPECT_GT(ordering_cost_bytes(2000) * 10, ordering_cost_bytes(200) * 20);
}

TEST(Block, EmptyBlockValidatesEmptyList) {
  const Block block(BlockHeader{}, {});
  EXPECT_EQ(block.tx_count(), 0u);
  EXPECT_TRUE(block.validates({}));
}

}  // namespace
}  // namespace graphene::chain
