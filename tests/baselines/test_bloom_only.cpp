#include "baselines/bloom_only.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graphene/params.hpp"
#include "sim/scenario.hpp"

namespace graphene::baselines {
namespace {

TEST(BloomOnly, FprMatchesPaperFormula) {
  EXPECT_DOUBLE_EQ(bloom_only_fpr(100, 1100), 1.0 / (144.0 * 1000.0));
  EXPECT_DOUBLE_EQ(bloom_only_fpr(100, 100), 1.0);  // degenerate
}

TEST(BloomOnly, UsuallyRecoversExactBlock) {
  util::Rng rng(1);
  int successes = 0;
  constexpr int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    chain::ScenarioSpec spec;
    spec.block_txns = 200;
    spec.extra_txns = 400;
    const chain::Scenario s = chain::make_scenario(spec, rng);
    const BloomOnlyResult r = run_bloom_only(s.block, s.receiver_mempool, rng.next());
    successes += r.success ? 1 : 0;
  }
  // Expected failure ~1/144 per block; 50 trials nearly always all succeed.
  EXPECT_GE(successes, kTrials - 3);
}

TEST(BloomOnly, GrapheneProtocol1IsSmaller) {
  // Theorem 4's comparison. The claim is asymptotic — §5.1 concedes that
  // small blocks (and the β-assurance overhead on a tiny IBLT) can go the
  // other way — so test the regime the paper claims: n ≥ ~2000.
  for (const std::uint64_t n : {2000ULL, 10000ULL, 50000ULL}) {
    const std::uint64_t m = 2 * n;
    const std::size_t bloom_size = bloom_only_bytes(n, m);
    const std::size_t graphene_size = core::optimize_protocol1(n, m).total_bytes();
    EXPECT_LT(graphene_size, bloom_size) << "n=" << n;
  }
}

TEST(BloomOnly, GapGrowsWithN) {
  // Ω(n log n) bit advantage ⇒ the byte gap must widen as n grows.
  const auto gap = [](std::uint64_t n) {
    const std::uint64_t m = 2 * n;
    return static_cast<double>(bloom_only_bytes(n, m)) -
           static_cast<double>(core::optimize_protocol1(n, m).total_bytes());
  };
  EXPECT_GT(gap(2000), gap(200));
  EXPECT_GT(gap(20000), gap(2000));
}

TEST(BloomOnly, BeatsCarterBoundIsImpossible) {
  // Sanity: a real Bloom filter cannot be smaller than the approximate-
  // membership lower bound at the same FPR (up to the ln2² inefficiency).
  const std::uint64_t n = 1000, m = 5000;
  const double fpr = bloom_only_fpr(n, m);
  EXPECT_GE(static_cast<double>(bloom_only_bytes(n, m)),
            carter_lower_bound_bytes(n, fpr));
}

TEST(BloomOnly, ExactDescriptionBoundSane) {
  // log2 C(m, n)/8 for n=1: log2(m)/8 bytes.
  const double one = exact_description_bound_bytes(1, 1024);
  EXPECT_NEAR(one, 10.0 / 8.0, 1e-9);
  EXPECT_EQ(exact_description_bound_bytes(0, 100), 0.0);
  EXPECT_EQ(exact_description_bound_bytes(100, 100), 0.0);
}

}  // namespace
}  // namespace graphene::baselines
