#include "baselines/xthin.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace graphene::baselines {
namespace {

TEST(Xthin, ShortIdCostIsEightBytesPerTxn) {
  util::Rng rng(1);
  chain::ScenarioSpec spec;
  spec.block_txns = 400;
  spec.extra_txns = 400;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  const XthinResult r = run_xthin(s.block, s.receiver_mempool);
  EXPECT_EQ(r.shortid_bytes, 80u + 3u + 8u * 400u);
  EXPECT_EQ(r.encoding_bytes_xthin_star(), r.shortid_bytes);
  EXPECT_EQ(r.encoding_bytes(), r.shortid_bytes + r.getdata_filter_bytes);
}

TEST(Xthin, FilterCostScalesWithMempool) {
  util::Rng rng(2);
  chain::ScenarioSpec small_spec{.block_txns = 100, .extra_txns = 100};
  chain::ScenarioSpec big_spec{.block_txns = 100, .extra_txns = 2000};
  const chain::Scenario small = chain::make_scenario(small_spec, rng);
  const chain::Scenario big = chain::make_scenario(big_spec, rng);
  const XthinResult rs = run_xthin(small.block, small.receiver_mempool);
  const XthinResult rb = run_xthin(big.block, big.receiver_mempool);
  EXPECT_GT(rb.getdata_filter_bytes, rs.getdata_filter_bytes * 5);
}

TEST(Xthin, SynchronizedMempoolPushesNothing) {
  util::Rng rng(3);
  chain::ScenarioSpec spec;
  spec.block_txns = 300;
  spec.extra_txns = 300;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  const XthinResult r = run_xthin(s.block, s.receiver_mempool);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.pushed_txn_count, 0u);
  EXPECT_EQ(r.pushed_txn_bytes, 0u);
}

TEST(Xthin, MissingTransactionsArePushedProactively) {
  // XThin can fail unrecoverably when a missing block transaction falsely
  // passes the receiver's mempool filter (its §6.1 weakness, ~0.1% per
  // missing txn), so assert statistically across trials.
  util::Rng rng(4);
  int successes = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    chain::ScenarioSpec spec;
    spec.block_txns = 200;
    spec.extra_txns = 200;
    spec.block_fraction_in_mempool = 0.85;  // 30 missing
    const chain::Scenario s = chain::make_scenario(spec, rng);
    XthinConfig cfg;
    cfg.filter_seed = rng.next();
    const XthinResult r = run_xthin(s.block, s.receiver_mempool, cfg);
    if (r.success) {
      ++successes;
      // All 30 genuinely-missing txns fail the filter (no false negatives)
      // and are pushed.
      EXPECT_EQ(r.pushed_txn_count, 30u);
      EXPECT_GT(r.pushed_txn_bytes, 0u);
    }
  }
  EXPECT_GE(successes, kTrials - 2);
}

TEST(Xthin, ChannelSeesBothMessages) {
  util::Rng rng(5);
  chain::ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 50;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  net::Channel channel;
  (void)run_xthin(s.block, s.receiver_mempool, {}, &channel);
  EXPECT_EQ(channel.message_count(), 2u);
  EXPECT_GT(channel.payload_bytes(net::Direction::kReceiverToSender), 0u);
  EXPECT_GT(channel.payload_bytes(net::Direction::kSenderToReceiver), 0u);
}

}  // namespace
}  // namespace graphene::baselines
