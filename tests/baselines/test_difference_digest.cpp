#include "baselines/difference_digest.hpp"

#include <gtest/gtest.h>

#include "graphene/params.hpp"
#include "sim/scenario.hpp"

namespace graphene::baselines {
namespace {

TEST(DifferenceDigest, ComputesTrueDifference) {
  util::Rng rng(1);
  chain::ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 60;
  spec.block_fraction_in_mempool = 0.9;  // 10 block-only + 60 pool-only = 70
  const chain::Scenario s = chain::make_scenario(spec, rng);
  const DifferenceDigestResult r = run_difference_digest(s.block, s.receiver_mempool);
  EXPECT_EQ(r.true_diff, 70u);
}

TEST(DifferenceDigest, UsuallyDecodes) {
  util::Rng rng(2);
  int successes = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    chain::ScenarioSpec spec;
    spec.block_txns = 200;
    spec.extra_txns = 100;
    spec.block_fraction_in_mempool = 0.9;
    const chain::Scenario s = chain::make_scenario(spec, rng);
    DifferenceDigestConfig cfg;
    cfg.seed = rng.next();
    successes += run_difference_digest(s.block, s.receiver_mempool, cfg).success ? 1 : 0;
  }
  // 2× overprovisioning on the strata estimate decodes most of the time.
  EXPECT_GE(successes, kTrials * 6 / 10);
}

TEST(DifferenceDigest, EstimatorWithinFactorFourTypically) {
  util::Rng rng(3);
  int within = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    chain::ScenarioSpec spec;
    spec.block_txns = 500;
    spec.extra_txns = 300;
    spec.block_fraction_in_mempool = 0.8;
    const chain::Scenario s = chain::make_scenario(spec, rng);
    DifferenceDigestConfig cfg;
    cfg.seed = rng.next();
    const DifferenceDigestResult r = run_difference_digest(s.block, s.receiver_mempool, cfg);
    const double ratio =
        static_cast<double>(r.estimated_diff) / static_cast<double>(r.true_diff);
    within += (ratio > 0.25 && ratio < 4.0) ? 1 : 0;
  }
  EXPECT_GE(within, kTrials * 7 / 10);
}

TEST(DifferenceDigest, EstimatorCostIsStrataTimes80Cells) {
  util::Rng rng(4);
  chain::ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 900;  // m = 1000 → 11 strata (ceil(log2 1000)+1)
  const chain::Scenario s = chain::make_scenario(spec, rng);
  const DifferenceDigestResult r = run_difference_digest(s.block, s.receiver_mempool);
  const std::size_t one_strata = iblt::Iblt::serialized_size_for(80);
  EXPECT_EQ(r.estimator_bytes, 1u + 11u * one_strata);  // header + 11 strata
}

TEST(DifferenceDigest, MoreExpensiveThanGrapheneProtocol2Setup) {
  // §5.3.2's qualitative claim: the Difference Digest costs several times
  // Graphene's Protocol 1+2 encoding for like-for-like scenarios.
  util::Rng rng(5);
  chain::ScenarioSpec spec;
  spec.block_txns = 2000;
  spec.extra_txns = 1000;
  spec.block_fraction_in_mempool = 0.98;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  const DifferenceDigestResult dd = run_difference_digest(s.block, s.receiver_mempool);
  const std::size_t graphene =
      core::optimize_protocol1(s.n, s.m).total_bytes() * 2;  // generous 2× for P2
  EXPECT_GT(dd.total_bytes(), graphene);
}

}  // namespace
}  // namespace graphene::baselines
