#include "baselines/compact_blocks.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace graphene::baselines {
namespace {

TEST(CompactBlocks, EncodingIsSixBytesPerTxnPlusOverhead) {
  // 80 header + 8 nonce + varint(n) + 6n + varint(0 prefilled)
  EXPECT_EQ(compact_block_encoding_bytes(100), 80u + 8u + 1u + 600u + 1u);
  EXPECT_EQ(compact_block_encoding_bytes(2000), 80u + 8u + 3u + 12000u + 1u);
}

TEST(CompactBlocks, IndexBytesSwitchAt256) {
  EXPECT_EQ(index_bytes(255), 1u);
  EXPECT_EQ(index_bytes(256), 3u);
}

TEST(CompactBlocks, NoRoundtripWhenMempoolCoversBlock) {
  util::Rng rng(1);
  chain::ScenarioSpec spec;
  spec.block_txns = 500;
  spec.extra_txns = 500;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  const CompactBlocksResult r = run_compact_blocks(s.block, s.receiver_mempool, 42);
  EXPECT_TRUE(r.success);
  EXPECT_FALSE(r.needed_roundtrip);
  EXPECT_EQ(r.missing_count, 0u);
  EXPECT_EQ(r.getblocktxn_bytes, 0u);
  EXPECT_EQ(r.encoding_bytes(), compact_block_encoding_bytes(500));
}

TEST(CompactBlocks, MissingTransactionsTriggerRoundtrip) {
  util::Rng rng(2);
  chain::ScenarioSpec spec;
  spec.block_txns = 300;
  spec.extra_txns = 300;
  spec.block_fraction_in_mempool = 0.9;  // 30 missing
  const chain::Scenario s = chain::make_scenario(spec, rng);
  const CompactBlocksResult r = run_compact_blocks(s.block, s.receiver_mempool, 43);
  EXPECT_TRUE(r.needed_roundtrip);
  EXPECT_GE(r.missing_count, 30u);  // ≥: collisions can add requests
  EXPECT_LE(r.missing_count, 32u);
  // 300 txns ⇒ 3-byte indexes.
  EXPECT_EQ(r.getblocktxn_bytes, 1u + r.missing_count * 3u);
  EXPECT_GT(r.blocktxn_bytes, 0u);
}

TEST(CompactBlocks, ChannelTrafficMatchesReportedBytes) {
  util::Rng rng(3);
  chain::ScenarioSpec spec;
  spec.block_txns = 100;
  spec.extra_txns = 100;
  spec.block_fraction_in_mempool = 0.8;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  net::Channel channel;
  const CompactBlocksResult r = run_compact_blocks(s.block, s.receiver_mempool, 44, &channel);
  const auto by_type = channel.payload_by_type();
  EXPECT_EQ(by_type.at(net::MessageType::kCompactBlock), r.cmpctblock_bytes);
  EXPECT_EQ(by_type.at(net::MessageType::kGetBlockTxn), r.getblocktxn_bytes);
  EXPECT_EQ(by_type.at(net::MessageType::kBlockTxn), r.blocktxn_bytes);
}

TEST(CompactBlocks, EmptyMempoolRequestsWholeBlock) {
  util::Rng rng(4);
  chain::ScenarioSpec spec;
  spec.block_txns = 50;
  spec.extra_txns = 0;
  spec.block_fraction_in_mempool = 0.0;
  const chain::Scenario s = chain::make_scenario(spec, rng);
  const CompactBlocksResult r = run_compact_blocks(s.block, s.receiver_mempool, 45);
  EXPECT_EQ(r.missing_count, 50u);
}

}  // namespace
}  // namespace graphene::baselines
