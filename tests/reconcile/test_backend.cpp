// The reconciliation backend seam: golden wire pins proving the Graphene
// messages survived the refactor byte-for-byte, the backend-agnostic driver
// loop, the rateless backend end-to-end, and the DigestHasher fix.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graphene/errors.hpp"
#include "reconcile/rateless_backend.hpp"
#include "reconcile/set_reconciler.hpp"
#include "util/hex.hpp"
#include "util/random.hpp"
#include "util/sha256.hpp"

namespace graphene::reconcile {
namespace {

ItemSet pinned_items(std::uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  ItemSet out;
  while (out.size() < count) {
    ItemDigest d;
    for (std::size_t i = 0; i < d.size(); i += 8) {
      const std::uint64_t w = rng.next();
      for (std::size_t b = 0; b < 8; ++b) d[i + b] = static_cast<std::uint8_t>(w >> (8 * b));
    }
    out.insert(d);
  }
  return out;
}

/// Subset slicing goes through sorted digests so scenarios are independent
/// of the hasher's iteration order.
std::vector<ItemDigest> sorted_of(const ItemSet& s) {
  std::vector<ItemDigest> v(s.begin(), s.end());
  std::sort(v.begin(), v.end());
  return v;
}

std::string pin(const util::Bytes& wire) {
  const auto h = util::sha256(util::ByteView(wire));
  return util::to_hex(util::ByteView(h.data(), h.size()));
}

core::ProtocolConfig rateless_cfg() {
  core::ProtocolConfig cfg;
  cfg.reconcile_backend = core::ReconcileBackend::kRatelessIblt;
  return cfg;
}

// --- Golden wire pins ------------------------------------------------------
//
// SHA-256 of every serialized Graphene reconcile message across three pinned
// scenarios. These bytes are the on-wire protocol: any refactor of the
// backend seam must reproduce them exactly. (Response.missing is emitted in
// sorted-digest order — the one deliberate canonicalization — and these pins
// bake that in.)

TEST(BackendGoldenWire, DisjointHeavyScenarioPinsHold) {
  const ItemSet host_items = pinned_items(0x9001, 300);
  ItemSet client_items = pinned_items(0x9002, 100);
  const std::vector<ItemDigest> host_sorted = sorted_of(host_items);
  for (std::size_t i = 0; i < 200; ++i) client_items.insert(host_sorted[i]);

  const Host host(host_items, 0x5a17);
  Client client(client_items);
  const Offer offer = host.make_offer(client_items.size());
  EXPECT_EQ(pin(offer.serialize()),
            "ee194862bb3502e2bb8f245ec147e71101f4504265fbe4f57eb731845953547d");
  const Outcome o1 = client.absorb(offer);
  ASSERT_EQ(o1.status, Outcome::Status::kNeedsRequest);
  const Request req = client.make_request();
  EXPECT_EQ(pin(req.serialize()),
            "29a18609c37b86678f2d1324c17c9b80ebdff7be16ac62ba937ea808e2616f4f");
  const Response resp = host.serve(req);
  EXPECT_EQ(pin(resp.serialize()),
            "58360ef3d2432e359c3707b07209b2122fdbbf01879bbdcecfe0ac28290f3e1b");
  EXPECT_TRUE(std::is_sorted(resp.missing.begin(), resp.missing.end()));
}

TEST(BackendGoldenWire, SupersetClientScenarioPinsHold) {
  const ItemSet host_items = pinned_items(0xb001, 150);
  ItemSet client_items = host_items;
  for (const ItemDigest& d : pinned_items(0xb002, 50)) client_items.insert(d);

  const Host host(host_items, 0xfeed);
  Client client(client_items);
  const Offer offer = host.make_offer(client_items.size());
  EXPECT_EQ(pin(offer.serialize()),
            "9cf9932d42b24aee38953a6eaf34d22303e2dab35203a4cf54fd1e0370f9be7e");
  EXPECT_EQ(client.absorb(offer).status, Outcome::Status::kComplete);
}

TEST(BackendGoldenWire, ReversedPathScenarioPinsHoldThroughFetch) {
  const ItemSet host_items = pinned_items(0xc001, 400);
  ItemSet client_items = pinned_items(0xc002, 10);
  const std::vector<ItemDigest> host_sorted = sorted_of(host_items);
  for (std::size_t i = 0; i < 380; ++i) client_items.insert(host_sorted[i]);

  const Host host(host_items, 0xc0de);
  Client client(client_items);
  const Offer offer = host.make_offer(client_items.size());
  EXPECT_EQ(pin(offer.serialize()),
            "11229fdbf6604900ce01c5d8dbb21be542a63962869e8c1d15bc7b605a2a1b2a");
  ASSERT_EQ(client.absorb(offer).status, Outcome::Status::kNeedsRequest);
  const Request req = client.make_request();
  EXPECT_TRUE(req.reversed);
  EXPECT_EQ(pin(req.serialize()),
            "46d4854362074b2202a9c2b638ef1a2832558384f8fea8fe82e6d2a5e962f9b2");
  const Response resp = host.serve(req);
  EXPECT_EQ(pin(resp.serialize()),
            "6e334829a72e6b127af8bce905e41aa198d8c5087757188c087ed743427683bb");
  ASSERT_EQ(client.complete(resp).status, Outcome::Status::kNeedsFetch);
  const FetchRequest freq = client.make_fetch();
  EXPECT_EQ(pin(freq.serialize()),
            "ef8423963c3ef769a5f57051257af18c62636b121fdc7f8b264266256751af25");
  const FetchResponse fresp = host.serve_fetch(freq);
  EXPECT_EQ(pin(fresp.serialize()),
            "489c6cd12b823efc5f45a578ea50265cea105d22362a0c72193068663eaf5e51");
  const Outcome fin = client.complete_fetch(fresp);
  EXPECT_EQ(fin.status, Outcome::Status::kComplete);
  EXPECT_EQ(fin.host_set, host_items);
}

// --- The backend-agnostic driver -------------------------------------------

TEST(BackendDriver, WireDriverMatchesTypedGrapheneFlow) {
  util::Rng rng(21);
  for (int t = 0; t < 5; ++t) {
    const ItemSet host_items = pinned_items(rng.next(), 300);
    ItemSet client_items = pinned_items(rng.next(), 50);
    const std::vector<ItemDigest> host_sorted = sorted_of(host_items);
    for (std::size_t i = 0; i < 250; ++i) client_items.insert(host_sorted[i]);
    const std::uint64_t salt = rng.next();

    Host wire_host(host_items, salt);
    Client wire_client(client_items);
    Outcome wire_out;
    const SyncStats wire_stats = reconcile_one_way(wire_host, wire_client, wire_out);

    const Host typed_host(host_items, salt);
    Client typed_client(client_items);
    Outcome typed_out;
    const SyncStats typed_stats = reconcile_one_way(
        typed_host, typed_client, typed_host.make_offer(client_items.size()),
        typed_out);

    EXPECT_EQ(wire_stats.success, typed_stats.success);
    EXPECT_EQ(wire_out.status, typed_out.status);
    if (wire_stats.success) {
      EXPECT_EQ(wire_out.host_set, host_items);
      EXPECT_EQ(typed_out.host_set, host_items);
      // Same messages, same sizes: the wire driver only adds framing-free
      // payload accounting.
      EXPECT_EQ(wire_stats.round_bytes, typed_stats.round_bytes);
    }
  }
}

TEST(BackendDriver, RoundCapBoundsTheLoop) {
  core::ProtocolConfig cfg = rateless_cfg();
  cfg.reconcile_round_cap = 1;  // one message only: offer/chunk then stop
  cfg.rateless_initial_symbols = 1;
  util::Rng rng(22);
  const ItemSet host_items = pinned_items(rng.next(), 400);
  const ItemSet client_items = pinned_items(rng.next(), 400);
  Host host(host_items, rng.next(), cfg);
  Client client(client_items, cfg);
  Outcome out;
  const SyncStats stats = reconcile_one_way(host, client, out);
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(out.status, Outcome::Status::kFailed);
  EXPECT_LE(stats.round_bytes.size(), 3u);
}

TEST(BackendDriver, SyncStatsLegacyAccessorsMirrorRoundBytes) {
  util::Rng rng(23);
  const ItemSet host_items = pinned_items(rng.next(), 300);
  ItemSet client_items;
  const std::vector<ItemDigest> host_sorted = sorted_of(host_items);
  for (std::size_t i = 0; i < 200; ++i) client_items.insert(host_sorted[i]);
  Host host(host_items, rng.next());
  Client client(client_items);
  Outcome out;
  const SyncStats stats = reconcile_one_way(host, client, out);
  ASSERT_TRUE(stats.success);
  ASSERT_TRUE(stats.used_request_round);
  ASSERT_GE(stats.round_bytes.size(), 3u);
  EXPECT_EQ(stats.offer_bytes(), stats.round_bytes[0]);
  EXPECT_EQ(stats.request_bytes(), stats.round_bytes[1]);
  EXPECT_EQ(stats.response_bytes(), stats.round_bytes[2]);
  std::size_t fetch = 0;
  for (std::size_t i = 3; i < stats.round_bytes.size(); ++i) fetch += stats.round_bytes[i];
  EXPECT_EQ(stats.fetch_bytes(), fetch);
  EXPECT_EQ(stats.total_bytes(), stats.offer_bytes() + stats.request_bytes() +
                                     stats.response_bytes() + stats.fetch_bytes());
}

// --- The rateless backend --------------------------------------------------

TEST(RatelessBackend, CompletesAcrossDivergenceRegimes) {
  util::Rng rng(31);
  const struct {
    std::size_t host;
    std::size_t shared;
    std::size_t client_extra;
  } kCells[] = {
      {200, 200, 0},    // identical sets
      {200, 200, 50},   // client superset
      {300, 250, 0},    // client subset
      {300, 150, 150},  // heavy two-sided divergence
      {1, 0, 0},        // single-item host, empty client
      {500, 490, 10},   // small difference in large sets
  };
  for (const auto& cell : kCells) {
    const ItemSet host_items = pinned_items(rng.next(), cell.host);
    ItemSet client_items;
    const std::vector<ItemDigest> host_sorted = sorted_of(host_items);
    for (std::size_t i = 0; i < cell.shared; ++i) client_items.insert(host_sorted[i]);
    for (const ItemDigest& d : pinned_items(rng.next(), cell.client_extra)) {
      client_items.insert(d);
    }

    Host host(host_items, rng.next(), rateless_cfg());
    Client client(client_items, rateless_cfg());
    Outcome out;
    const SyncStats stats = reconcile_one_way(host, client, out);
    ASSERT_TRUE(stats.success) << "host=" << cell.host << " shared=" << cell.shared;
    EXPECT_EQ(out.host_set, host_items);
    EXPECT_GT(stats.symbols_consumed, 0u);
    // No decode-failure repair and no short-ID fetch — structurally absent.
    EXPECT_FALSE(stats.used_request_round);
    EXPECT_FALSE(stats.used_fetch_round);
    EXPECT_TRUE(out.unresolved.empty());
  }
}

TEST(RatelessBackend, EmptyHostSetCompletesTrivially) {
  util::Rng rng(32);
  const ItemSet client_items = pinned_items(rng.next(), 60);
  Host host(ItemSet{}, rng.next(), rateless_cfg());
  Client client(client_items, rateless_cfg());
  Outcome out;
  const SyncStats stats = reconcile_one_way(host, client, out);
  ASSERT_TRUE(stats.success);
  EXPECT_TRUE(out.host_set.empty());
}

TEST(RatelessBackend, TypedGrapheneApiThrowsLogicError) {
  util::Rng rng(33);
  const ItemSet items = pinned_items(rng.next(), 20);
  const Host host(items, 1, rateless_cfg());
  EXPECT_THROW((void)host.make_offer(20), std::logic_error);
  Client client(items, rateless_cfg());
  EXPECT_THROW((void)client.absorb(Offer{}), std::logic_error);
}

TEST(RatelessBackend, ChunkReServesAreByteIdentical) {
  util::Rng rng(34);
  const ItemSet items = pinned_items(rng.next(), 100);
  RatelessHostBackend backend(items, 7, rateless_cfg());
  (void)backend.open(100);

  RatelessNeed need;
  need.next_index = 0;
  need.count = 16;
  WireMsg req;
  req.type = net::MessageType::kRatelessNeed;
  req.payload = need.serialize();
  const WireMsg a = backend.serve_wire(req);
  const WireMsg b = backend.serve_wire(req);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.type, net::MessageType::kRatelessChunk);
}

TEST(RatelessBackend, WireMessagesRoundTrip) {
  util::Rng rng(35);
  RatelessChunk chunk;
  chunk.start = 5;
  chunk.host_count = 123;
  chunk.salt = rng.next();
  chunk.set_checksum = rng.next();
  for (int i = 0; i < 3; ++i) {
    iblt::CodedSymbol s;
    for (auto& b : s.sum) b = static_cast<std::uint8_t>(rng.next());
    s.check = rng.next();
    s.count = static_cast<std::int64_t>(rng.next() % 1000) - 500;
    chunk.symbols.push_back(s);
  }
  const util::Bytes wire = chunk.serialize();
  util::ByteReader reader{util::ByteView(wire)};
  const RatelessChunk back = RatelessChunk::deserialize(reader);
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(back.start, chunk.start);
  EXPECT_EQ(back.host_count, chunk.host_count);
  EXPECT_EQ(back.salt, chunk.salt);
  EXPECT_EQ(back.set_checksum, chunk.set_checksum);
  ASSERT_EQ(back.symbols.size(), chunk.symbols.size());
  for (std::size_t i = 0; i < back.symbols.size(); ++i) {
    EXPECT_EQ(back.symbols[i].sum, chunk.symbols[i].sum);
    EXPECT_EQ(back.symbols[i].check, chunk.symbols[i].check);
    EXPECT_EQ(back.symbols[i].count, chunk.symbols[i].count);
  }

  RatelessNeed need;
  need.next_index = 99;
  need.count = 4;
  const util::Bytes need_wire = need.serialize();
  util::ByteReader nr{util::ByteView(need_wire)};
  const RatelessNeed need_back = RatelessNeed::deserialize(nr);
  EXPECT_TRUE(nr.done());
  EXPECT_EQ(need_back.next_index, need.next_index);
  EXPECT_EQ(need_back.count, need.count);
}

// --- Wire hygiene ----------------------------------------------------------

TEST(BackendWire, TrailingPayloadBytesAreRejected) {
  util::Rng rng(41);
  const ItemSet host_items = pinned_items(rng.next(), 50);
  const ItemSet client_items = pinned_items(rng.next(), 50);
  for (const core::ReconcileBackend backend :
       {core::ReconcileBackend::kGraphene, core::ReconcileBackend::kRatelessIblt}) {
    core::ProtocolConfig cfg;
    cfg.reconcile_backend = backend;
    Host host(host_items, rng.next(), cfg);
    Client client(client_items, cfg);
    WireMsg opening = host.open(client_items.size());
    opening.payload.push_back(0x00);  // smuggled appendix
    EXPECT_THROW((void)client.absorb_wire(opening), util::DeserializeError);
  }
}

TEST(BackendWire, UnexpectedMessageTypeFailsClosed) {
  util::Rng rng(42);
  const ItemSet host_items = pinned_items(rng.next(), 50);
  const ItemSet client_items = pinned_items(rng.next(), 50);

  // Graphene client: a rateless chunk is out of protocol → kFailed.
  {
    Host host(host_items, rng.next());
    Client client(client_items);
    WireMsg opening = host.open(client_items.size());
    opening.type = net::MessageType::kRatelessChunk;
    EXPECT_EQ(client.absorb_wire(opening).status, Outcome::Status::kFailed);
  }
  // Rateless host: a graphene request is out of protocol → ProtocolError.
  {
    Host host(host_items, rng.next(), rateless_cfg());
    (void)host.open(client_items.size());
    WireMsg bogus;
    bogus.type = net::MessageType::kReconcileRequest;
    EXPECT_THROW((void)host.serve_wire(bogus), core::ProtocolError);
  }
}

// --- DigestHasher ----------------------------------------------------------

TEST(DigestHasher, MixesAllFourWordsOfTheDigest) {
  // The regression this guards: hashing only bytes 0–7 sent every digest
  // with a shared 8-byte prefix — exactly what an adversary grinds for —
  // into one bucket. Build 4096 digests identical except in their LAST word
  // and require a near-uniform spread over 64 buckets.
  DigestHasher hasher;
  util::Rng rng(51);
  ItemDigest base;
  for (auto& b : base) b = static_cast<std::uint8_t>(rng.next());

  constexpr std::size_t kBuckets = 64;
  constexpr std::size_t kDigests = 4096;
  std::array<std::size_t, kBuckets> counts{};
  std::unordered_set<std::size_t> distinct;
  for (std::size_t i = 0; i < kDigests; ++i) {
    ItemDigest d = base;
    for (std::size_t b = 0; b < 8; ++b) d[24 + b] = static_cast<std::uint8_t>(i >> (8 * b));
    const std::size_t h = hasher(d);
    distinct.insert(h);
    counts[h % kBuckets] += 1;
  }
  EXPECT_EQ(distinct.size(), kDigests);  // no wholesale collisions
  const std::size_t expected = kDigests / kBuckets;
  for (const std::size_t c : counts) {
    EXPECT_GT(c, expected / 4);
    EXPECT_LT(c, expected * 4);
  }
}

}  // namespace
}  // namespace graphene::reconcile
