#include "reconcile/set_reconciler.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace graphene::reconcile {
namespace {

ItemSet random_items(std::size_t count, util::Rng& rng) {
  ItemSet out;
  while (out.size() < count) {
    ItemDigest d;
    for (std::size_t i = 0; i < d.size(); i += 8) {
      const std::uint64_t w = rng.next();
      for (std::size_t b = 0; b < 8; ++b) d[i + b] = static_cast<std::uint8_t>(w >> (8 * b));
    }
    out.insert(d);
  }
  return out;
}

/// Client holds `overlap` of the host's items plus `extra` others.
struct SyncSetup {
  ItemSet host_items;
  ItemSet client_items;
};

SyncSetup make_setup(std::size_t host_count, std::size_t overlap, std::size_t extra,
                 util::Rng& rng) {
  SyncSetup s;
  s.host_items = random_items(host_count, rng);
  std::size_t taken = 0;
  for (const ItemDigest& d : s.host_items) {
    if (taken++ >= overlap) break;
    s.client_items.insert(d);
  }
  const ItemSet extras = random_items(extra, rng);
  s.client_items.insert(extras.begin(), extras.end());
  return s;
}

TEST(SetReconciler, OfferAloneSufficesWhenClientHasSuperset) {
  util::Rng rng(1);
  const SyncSetup s = make_setup(500, 500, 500, rng);
  const Host host(s.host_items, rng.next());
  Client client(s.client_items);
  const Outcome out = client.absorb(host.make_offer(s.client_items.size()));
  ASSERT_EQ(out.status, Outcome::Status::kComplete);
  EXPECT_EQ(out.host_set, s.host_items);
}

class ReconcileOverlapSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReconcileOverlapSweep, FullRoundRecoversHostSet) {
  const double overlap_frac = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(overlap_frac * 1000) + 3);
  int complete = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const std::size_t host_count = 400;
    const auto overlap = static_cast<std::size_t>(overlap_frac * host_count);
    const SyncSetup s = make_setup(host_count, overlap, 200, rng);
    const Host host(s.host_items, rng.next());
    Client client(s.client_items);
    Outcome out;
    const SyncStats stats =
        reconcile_one_way(host, client, host.make_offer(s.client_items.size()), out);
    if (stats.success) {
      ++complete;
      EXPECT_EQ(out.host_set, s.host_items);
    }
  }
  EXPECT_GE(complete, kTrials - 1);
}

INSTANTIATE_TEST_SUITE_P(Overlaps, ReconcileOverlapSweep,
                         ::testing::Values(0.0, 0.3, 0.6, 0.9, 1.0));

TEST(SetReconciler, CrliteStyleRevocationCheck) {
  // CRLite scenario (§1): a CA host publishes its revocation set; a client
  // holding last week's set plus local observations reconciles to the
  // current one.
  util::Rng rng(4);
  ItemSet revocations = random_items(1000, rng);
  ItemSet client = revocations;  // last week's copy
  const ItemSet newly_revoked = random_items(50, rng);
  revocations.insert(newly_revoked.begin(), newly_revoked.end());

  const Host ca(revocations, rng.next());
  Client checker(client);
  Outcome out;
  const SyncStats stats =
      reconcile_one_way(ca, checker, ca.make_offer(client.size()), out);
  ASSERT_TRUE(stats.success);
  for (const ItemDigest& d : newly_revoked) EXPECT_TRUE(out.host_set.count(d) > 0);
  // Far cheaper than shipping 1050 × 32-byte digests.
  EXPECT_LT(stats.total_bytes(), 1050u * 32u / 2u);
}

TEST(SetReconciler, WireRoundTripOfAllMessages) {
  util::Rng rng(5);
  const SyncSetup s = make_setup(300, 200, 100, rng);
  const Host host(s.host_items, rng.next());
  Client client(s.client_items);

  const Offer offer = host.make_offer(s.client_items.size());
  util::Bytes offer_wire = offer.serialize();
  EXPECT_EQ(offer_wire.size(), offer.serialized_size());
  util::ByteReader ro{util::ByteView(offer_wire)};
  const Offer offer2 = Offer::deserialize(ro);
  EXPECT_EQ(offer2.count, offer.count);
  EXPECT_EQ(offer2.set_checksum, offer.set_checksum);

  Outcome out = client.absorb(offer2);
  if (out.status == Outcome::Status::kNeedsRequest) {
    const Request req = client.make_request();
    util::Bytes req_wire = req.serialize();
    util::ByteReader rr{util::ByteView(req_wire)};
    const Request req2 = Request::deserialize(rr);
    EXPECT_EQ(req2.b, req.b);
    EXPECT_DOUBLE_EQ(req2.fpr_r, req.fpr_r);

    const Response resp = host.serve(req2);
    util::Bytes resp_wire = resp.serialize();
    util::ByteReader rs{util::ByteView(resp_wire)};
    out = client.complete(Response::deserialize(rs));
  }
  if (out.status == Outcome::Status::kNeedsFetch) {
    const FetchRequest freq = client.make_fetch();
    util::Bytes freq_wire = freq.serialize();
    util::ByteReader rf{util::ByteView(freq_wire)};
    const FetchResponse fresp = host.serve_fetch(FetchRequest::deserialize(rf));
    util::Bytes fresp_wire = fresp.serialize();
    util::ByteReader rg{util::ByteView(fresp_wire)};
    out = client.complete_fetch(FetchResponse::deserialize(rg));
  }
  EXPECT_EQ(out.status, Outcome::Status::kComplete);
}

TEST(SetReconciler, ChecksumCatchesWrongFinalSet) {
  util::Rng rng(6);
  const SyncSetup s = make_setup(100, 100, 0, rng);
  const Host host(s.host_items, rng.next());
  Client client(s.client_items);
  Offer offer = host.make_offer(s.client_items.size());
  offer.set_checksum ^= 0xdeadbeef;  // corrupted commitment
  const Outcome out = client.absorb(offer);
  EXPECT_NE(out.status, Outcome::Status::kComplete);
}

TEST(SetReconciler, DigestOfIsSha256) {
  const util::Bytes payload = {1, 2, 3};
  EXPECT_EQ(digest_of(util::ByteView(payload)), util::sha256(util::ByteView(payload)));
}

TEST(SetReconciler, EmptyHostSetCompletesTrivially) {
  util::Rng rng(7);
  const ItemSet client_items = random_items(50, rng);
  const Host host(ItemSet{}, rng.next());
  Client client(client_items);
  const Outcome out = client.absorb(host.make_offer(client_items.size()));
  EXPECT_EQ(out.status, Outcome::Status::kComplete);
  EXPECT_TRUE(out.host_set.empty());
}

}  // namespace
}  // namespace graphene::reconcile
