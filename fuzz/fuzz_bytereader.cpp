// Exercises util::ByteReader and the CompactSize codec with an arbitrary
// operation stream: the first bytes select reader operations, the rest is
// the buffer under read. Every operation must either return or throw
// DeserializeError — no out-of-bounds read, no position desync.
#include <cstdlib>

#include "harness.hpp"
#include "util/varint.hpp"

using graphene::util::ByteReader;
using graphene::util::Bytes;
using graphene::util::DeserializeError;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 2) return 0;
  const std::size_t script_len = std::min<std::size_t>(data[0], size - 1);
  const std::uint8_t* script = data + 1;
  ByteReader r(graphene::fuzz::view(data + 1 + script_len, size - 1 - script_len));

  try {
    for (std::size_t i = 0; i < script_len; ++i) {
      const std::size_t before = r.remaining();
      switch (script[i] % 8) {
        case 0: (void)r.u8(); break;
        case 1: (void)r.u16(); break;
        case 2: (void)r.u32(); break;
        case 3: (void)r.u64(); break;
        case 4: (void)r.i32(); break;
        case 5: (void)graphene::util::read_varint(r); break;
        case 6: {
          const Bytes raw = r.raw(script[i] / 8);
          if (raw.size() != script[i] / 8u) std::abort();
          break;
        }
        case 7: {
          const std::uint64_t v = graphene::util::read_varint_bounded(
              r, /*max=*/1u << 20, "fuzz length");
          if (v > (1u << 20)) std::abort();
          break;
        }
        default: break;
      }
      // A successful read must consume bytes (position monotonicity).
      if (r.remaining() > before) std::abort();
    }
  } catch (const DeserializeError&) {
    // Sanctioned failure: truncated or non-canonical input.
  }

  // Round-trip: any varint that decodes must re-encode to the same bytes.
  ByteReader vr(graphene::fuzz::view(data + 1, size - 1));
  try {
    const std::size_t avail = vr.remaining();
    const std::uint64_t v = graphene::util::read_varint(vr);
    const std::size_t used = avail - vr.remaining();
    graphene::util::ByteWriter w;
    graphene::util::write_varint(w, v);
    if (w.size() != used || graphene::util::varint_size(v) != used) std::abort();
    for (std::size_t i = 0; i < used; ++i) {
      if (w.bytes()[i] != data[1 + i]) std::abort();
    }
  } catch (const DeserializeError&) {
  }
  return 0;
}
