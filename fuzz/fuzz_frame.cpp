// Incremental TCP framing. The first input byte picks a chunk size; the
// rest is a raw byte stream fed to net::FrameReader two ways — absorbed
// whole, and absorbed chunk by chunk with decoding interleaved, exactly as
// the daemon's read loop does. The two decodes must agree byte for byte
// (same messages, same terminal error), and every decoded message must
// survive an encode_frame/decode round trip with nothing left buffered.
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "harness.hpp"
#include "net/frame.hpp"

namespace {

// Small enough that the fuzzer reaches the length cap and the buffering
// ceiling with kilobyte inputs; large enough for every corpus frame.
constexpr std::uint64_t kMaxPayload = 1u << 16;

struct Decode {
  std::vector<graphene::net::Message> msgs;
  bool error = false;
};

bool same_message(const graphene::net::Message& a, const graphene::net::Message& b) {
  return a.type == b.type && a.payload == b.payload;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 2) return 0;
  const std::size_t chunk = 1 + data[0] % 97;
  const graphene::util::ByteView stream = graphene::fuzz::view(data + 1, size - 1);

  // Reference pass: the whole stream in one absorb. Oversized inputs hit the
  // buffering ceiling inside absorb() itself — a legitimate rejection, but
  // one the chunked pass (which drains as it goes) never sees, so skip the
  // differential for those.
  Decode whole;
  bool whole_comparable = true;
  {
    graphene::net::FrameReader reader(kMaxPayload);
    try {
      reader.absorb(stream);
    } catch (const graphene::util::DeserializeError&) {
      whole_comparable = false;
    }
    if (whole_comparable) {
      try {
        while (std::optional<graphene::net::Message> msg = reader.next()) {
          whole.msgs.push_back(std::move(*msg));
        }
      } catch (const graphene::util::DeserializeError&) {
        whole.error = true;
      }
    }
  }

  // Chunked pass: absorb and decode interleaved, stopping at the first
  // malformed envelope like a connection owner would.
  Decode chunked;
  {
    graphene::net::FrameReader reader(kMaxPayload);
    std::size_t off = 0;
    try {
      while (off < stream.size() && !chunked.error) {
        const std::size_t n = std::min(chunk, stream.size() - off);
        reader.absorb(graphene::util::ByteView(stream.data() + off, n));
        off += n;
        while (std::optional<graphene::net::Message> msg = reader.next()) {
          chunked.msgs.push_back(std::move(*msg));
        }
      }
    } catch (const graphene::util::DeserializeError&) {
      chunked.error = true;
    }
  }

  // Split points must be invisible: same messages, same terminal judgment.
  if (whole_comparable) {
    if (whole.error != chunked.error) std::abort();
    if (whole.msgs.size() != chunked.msgs.size()) std::abort();
    for (std::size_t i = 0; i < whole.msgs.size(); ++i) {
      if (!same_message(whole.msgs[i], chunked.msgs[i])) std::abort();
    }
  }

  // Everything the reader accepted must re-encode and decode to itself.
  for (const graphene::net::Message& msg : chunked.msgs) {
    const graphene::util::Bytes frame = graphene::net::encode_frame(msg, kMaxPayload);
    graphene::net::FrameReader reader(kMaxPayload);
    reader.absorb(graphene::util::ByteView(frame));
    const std::optional<graphene::net::Message> again = reader.next();
    if (!again.has_value() || !same_message(*again, msg)) std::abort();
    if (reader.mid_frame()) std::abort();
  }
  return 0;
}
