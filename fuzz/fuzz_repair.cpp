// Repair-round messages (DESIGN.md §6): the first input byte routes between
// RepairRequestMsg (short IDs) and RepairResponseMsg (full transactions).
#include <cstdlib>

#include "graphene/messages.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  graphene::util::ByteReader r(graphene::fuzz::view(data + 1, size - 1));
  try {
    if (data[0] % 2 == 0) {
      const auto msg = graphene::core::RepairRequestMsg::deserialize(r);
      const graphene::util::Bytes wire = msg.serialize();
      graphene::util::ByteReader r2{graphene::util::ByteView(wire)};
      if (graphene::core::RepairRequestMsg::deserialize(r2).serialize() != wire) std::abort();
    } else {
      const auto msg = graphene::core::RepairResponseMsg::deserialize(r);
      const graphene::util::Bytes wire = msg.serialize();
      graphene::util::ByteReader r2{graphene::util::ByteView(wire)};
      if (graphene::core::RepairResponseMsg::deserialize(r2).serialize() != wire) std::abort();
    }
  } catch (const graphene::util::DeserializeError&) {
  }
  return 0;
}
