// iblt::StrataEstimator::deserialize over hostile bytes (a vector of IBLTs;
// stresses repeated nested deserialization).
#include "harness.hpp"
#include "iblt/strata_estimator.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  graphene::util::ByteReader r(graphene::fuzz::view(data, size));
  try {
    (void)graphene::iblt::StrataEstimator::deserialize(r);
  } catch (const graphene::util::DeserializeError&) {
  }
  return 0;
}
