// Structure-aware round-trip harness: the fuzz input is a parameter stream
// from which real messages are *built* (not parsed), then the serializer and
// deserializer are checked against each other:
//
//     deserialize(serialize(x)) == x      (compared via re-serialization)
//
// This direction catches encoder/decoder disagreements that byte-level
// harnesses cannot reach, because it explores the space of valid messages
// instead of the space of valid prefixes.
#include <cstdlib>

#include "chain/transaction.hpp"
#include "graphene/messages.hpp"
#include "harness.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"

namespace {

using namespace graphene;

/// Draws structured values from the fuzz input, falling back to a PRNG
/// keyed by the input once the bytes run out.
class ParamSource {
 public:
  ParamSource(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size), rng_(util::hash64(util::ByteView(data, size))) {}

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | next_byte();
    return v;
  }
  std::uint64_t below(std::uint64_t bound) { return bound == 0 ? 0 : u64() % bound; }
  double unit_fpr() {
    // (0, 1]: degenerate and tiny FPRs included.
    return 1.0 / static_cast<double>(1 + below(1u << 20));
  }

 private:
  std::uint8_t next_byte() {
    if (pos_ < size_) return data_[pos_++];
    return static_cast<std::uint8_t>(rng_.next());
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  util::Rng rng_;
};

template <typename Msg>
void check_roundtrip(const Msg& msg) {
  const util::Bytes wire = msg.serialize();
  util::ByteReader r{util::ByteView(wire)};
  const Msg back = Msg::deserialize(r);
  if (!r.done()) std::abort();  // decoder must consume exactly what the encoder wrote
  if (back.serialize() != wire) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  ParamSource src(data, size);
  util::Rng rng(src.u64());

  const std::uint64_t n_txs = src.below(64);
  std::vector<chain::Transaction> txs;
  txs.reserve(n_txs);
  for (std::uint64_t i = 0; i < n_txs; ++i) {
    chain::Transaction tx = chain::make_random_transaction(rng);
    tx.size_bytes = 36 + static_cast<std::uint32_t>(src.below(600));
    txs.push_back(tx);
  }

  core::GrapheneBlockMsg blk;
  blk.n = src.below(1u << 20);
  blk.shortid_salt = src.u64();
  blk.filter_s = bloom::BloomFilter(1 + src.below(500), src.unit_fpr(), src.u64());
  for (const auto& tx : txs) blk.filter_s.insert(util::ByteView(tx.id.data(), tx.id.size()));
  blk.iblt_i = iblt::Iblt(
      iblt::IbltParams{static_cast<std::uint32_t>(2 + src.below(15)), 1 + src.below(256)},
      src.u64());
  for (const auto& tx : txs) blk.iblt_i.insert(chain::short_id(tx.id));
  check_roundtrip(blk);

  core::GrapheneRequestMsg req;
  req.z = src.below(1u << 20);
  req.b = src.below(1u << 16);
  req.y_star = src.below(1u << 16);
  req.fpr_r = src.unit_fpr();
  req.reversed = src.below(2) == 1;
  req.filter_r = bloom::BloomFilter(1 + src.below(500), src.unit_fpr(), src.u64());
  check_roundtrip(req);

  core::GrapheneResponseMsg resp;
  resp.missing = txs;
  resp.iblt_j = iblt::Iblt(
      iblt::IbltParams{static_cast<std::uint32_t>(2 + src.below(15)), 1 + src.below(256)},
      src.u64());
  if (src.below(2) == 1) {
    resp.filter_f = bloom::BloomFilter(1 + src.below(500), src.unit_fpr(), src.u64());
  }
  check_roundtrip(resp);

  core::RepairRequestMsg rreq;
  const std::uint64_t n_ids = src.below(128);
  for (std::uint64_t i = 0; i < n_ids; ++i) rreq.short_ids.push_back(src.u64());
  check_roundtrip(rreq);

  core::RepairResponseMsg rresp;
  rresp.txns = txs;
  check_roundtrip(rresp);
  return 0;
}
