// Common scaffolding for the fuzz harnesses.
//
// Every harness defines LLVMFuzzerTestOneInput, the libFuzzer entry point.
// Under clang the target links -fsanitize=fuzzer and libFuzzer drives it;
// under toolchains without libFuzzer (gcc), standalone_main.cpp supplies a
// main() that replays corpus files through the same entry point, so the
// harnesses stay runnable — and CI-checkable — on either compiler.
//
// Contract: a harness may only let util::DeserializeError,
// core::ProtocolError, and std::invalid_argument escape *caught*; any other
// escape (bad_alloc from an unbounded resize, length_error, an assert, a
// sanitizer report) is a finding.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace graphene::fuzz {

inline util::ByteView view(const std::uint8_t* data, std::size_t size) {
  return {data, size};
}

}  // namespace graphene::fuzz
