// bloom::CuckooFilter::deserialize over hostile bytes.
#include "bloom/cuckoo_filter.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  graphene::util::ByteReader r(graphene::fuzz::view(data, size));
  try {
    const auto filter = graphene::bloom::CuckooFilter::deserialize(r);
    const std::uint8_t probe[32] = {0xaa, 0xbb};
    (void)filter.contains(graphene::util::ByteView(probe, sizeof(probe)));
  } catch (const graphene::util::DeserializeError&) {
  }
  return 0;
}
