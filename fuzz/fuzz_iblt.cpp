// iblt::Iblt::deserialize over hostile bytes. Accepted tables are peeled —
// decode() must terminate on any cell contents (the §6.1 endless-decode
// defense) — and must round-trip byte-exactly.
#include <cstdlib>

#include "harness.hpp"
#include "iblt/iblt.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  graphene::util::ByteReader r(graphene::fuzz::view(data, size));
  try {
    const auto iblt = graphene::iblt::Iblt::deserialize(r);

    // decode() must terminate on any cell contents; a peeling blowup shows
    // up as a hang under the fuzzer's timeout. success/malformed are both
    // acceptable outcomes for hostile bytes.
    const auto decoded = iblt.decode();
    if (decoded.success && decoded.residual_cells != 0) std::abort();

    const graphene::util::Bytes wire = iblt.serialize();
    graphene::util::ByteReader r2{graphene::util::ByteView(wire)};
    if (graphene::iblt::Iblt::deserialize(r2).serialize() != wire) std::abort();
  } catch (const graphene::util::DeserializeError&) {
  }
  return 0;
}
