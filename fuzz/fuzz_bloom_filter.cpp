// bloom::BloomFilter::deserialize over hostile bytes. Accepted filters are
// queried (the decode loop and probe derivation must tolerate any bit
// pattern) and re-serialized: a parsed filter must round-trip byte-exactly,
// otherwise two peers could disagree about the same wire bytes.
#include <cstdlib>

#include "bloom/bloom_filter.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  graphene::util::ByteReader r(graphene::fuzz::view(data, size));
  try {
    const auto filter = graphene::bloom::BloomFilter::deserialize(r);

    const std::uint8_t probe[32] = {0xde, 0xad, 0xbe, 0xef};
    (void)filter.contains(graphene::util::ByteView(probe, sizeof(probe)));
    (void)filter.effective_fpr();

    const graphene::util::Bytes wire = filter.serialize();
    graphene::util::ByteReader r2{graphene::util::ByteView(wire)};
    const auto again = graphene::bloom::BloomFilter::deserialize(r2);
    if (again.serialize() != wire) std::abort();
  } catch (const graphene::util::DeserializeError&) {
  }
  return 0;
}
