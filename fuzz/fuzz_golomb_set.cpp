// bloom::GolombSet::deserialize over hostile bytes. The Rice-coded bit
// stream is fully decoded at parse time; accepted sets are also queried.
#include "bloom/golomb_set.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  graphene::util::ByteReader r(graphene::fuzz::view(data, size));
  try {
    const auto set = graphene::bloom::GolombSet::deserialize(r);
    const std::uint8_t probe[32] = {0x01, 0x02, 0x03};
    (void)set.contains(graphene::util::ByteView(probe, sizeof(probe)));
  } catch (const graphene::util::DeserializeError&) {
  }
  return 0;
}
