// core::GrapheneRequestMsg::deserialize (Protocol 2, step 2) over hostile
// bytes: z, b, y*, fpr, reversal flag, Bloom filter R.
#include <cstdlib>

#include "graphene/messages.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  graphene::util::ByteReader r(graphene::fuzz::view(data, size));
  try {
    const auto msg = graphene::core::GrapheneRequestMsg::deserialize(r);
    const graphene::util::Bytes wire = msg.serialize();
    graphene::util::ByteReader r2{graphene::util::ByteView(wire)};
    if (graphene::core::GrapheneRequestMsg::deserialize(r2).serialize() != wire) std::abort();
  } catch (const graphene::util::DeserializeError&) {
  }
  return 0;
}
