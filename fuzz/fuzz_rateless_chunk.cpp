// Rateless-backend wire messages: the first input byte routes between
// RatelessChunk (coded-symbol batch) and RatelessNeed (continuation ask).
#include <cstdlib>

#include "harness.hpp"
#include "reconcile/rateless_backend.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  graphene::util::ByteReader r(graphene::fuzz::view(data + 1, size - 1));
  try {
    if (data[0] % 2 == 0) {
      const auto msg = graphene::reconcile::RatelessChunk::deserialize(r);
      const graphene::util::Bytes wire = msg.serialize();
      graphene::util::ByteReader r2{graphene::util::ByteView(wire)};
      if (graphene::reconcile::RatelessChunk::deserialize(r2).serialize() != wire) {
        std::abort();
      }
    } else {
      const auto msg = graphene::reconcile::RatelessNeed::deserialize(r);
      const graphene::util::Bytes wire = msg.serialize();
      graphene::util::ByteReader r2{graphene::util::ByteView(wire)};
      if (graphene::reconcile::RatelessNeed::deserialize(r2).serialize() != wire) {
        std::abort();
      }
    }
  } catch (const graphene::util::DeserializeError&) {
  }
  return 0;
}
