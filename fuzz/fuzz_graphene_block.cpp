// core::GrapheneBlockMsg::deserialize (Protocol 1, step 3) over hostile
// bytes: header + n + salt + Bloom filter S + IBLT I.
#include <cstdlib>

#include "graphene/messages.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  graphene::util::ByteReader r(graphene::fuzz::view(data, size));
  try {
    const auto msg = graphene::core::GrapheneBlockMsg::deserialize(r);
    // A parsed message must serialize back to a parseable message.
    const graphene::util::Bytes wire = msg.serialize();
    graphene::util::ByteReader r2{graphene::util::ByteView(wire)};
    if (graphene::core::GrapheneBlockMsg::deserialize(r2).serialize() != wire) std::abort();
  } catch (const graphene::util::DeserializeError&) {
  }
  return 0;
}
