// Differential fuzzer: views::*View::parse vs the copying deserializers.
//
// The first input byte routes to one wire type; the remainder is fed to both
// the zero-copy view parser and the copying deserializer. The contract under
// test (src/net/views.hpp):
//   * accept/reject is identical, and on accept both consume the same
//     extent — except GolombSet, where the view is a documented structural
//     superset (view-accept ⊇ copy-accept; extents equal on common accepts);
//   * on accept, materialize() returns an object equal (by re-serialization)
//     to what the copying deserializer produced from the same bytes;
//   * FrameView mirrors FrameReader::next() exactly, including the
//     nullopt-on-truncation / throw-on-malformed split.
// Any divergence aborts; DeserializeError is the only expected exception.
#include <cstdlib>
#include <optional>

#include "bloom/bloom_filter.hpp"
#include "bloom/cuckoo_filter.hpp"
#include "bloom/golomb_set.hpp"
#include "daemon/wire.hpp"
#include "graphene/messages.hpp"
#include "harness.hpp"
#include "iblt/iblt.hpp"
#include "iblt/kv_iblt.hpp"
#include "iblt/strata_estimator.hpp"
#include "net/frame.hpp"
#include "net/views.hpp"
#include "reconcile/graphene_backend.hpp"
#include "reconcile/rateless_backend.hpp"

namespace {

using namespace graphene;

/// Runs one view/copy pair over `data` and enforces the exact-twin contract.
/// `Materialized::serialize()` must exist (true for every wire type here).
template <typename View, typename CopyFn>
void check_exact(util::ByteView data, CopyFn copy) {
  std::optional<View> view;
  std::size_t view_consumed = 0;
  try {
    util::ByteReader r(data);
    view = View::parse(r);
    view_consumed = data.size() - r.tail().size();
  } catch (const util::DeserializeError&) {
  }

  bool copy_ok = false;
  std::size_t copy_consumed = 0;
  util::Bytes canonical;
  try {
    util::ByteReader r(data);
    auto obj = copy(r);
    copy_ok = true;
    copy_consumed = data.size() - r.tail().size();
    canonical = obj.serialize();
  } catch (const util::DeserializeError&) {
  }

  if (view.has_value() != copy_ok) std::abort();  // accept/reject diverged
  if (!view.has_value()) return;
  if (view_consumed != copy_consumed) std::abort();  // extent diverged
  if (view->span.size() != view_consumed) std::abort();
  // materialize() re-runs the copying deserializer over the recorded span,
  // so the two objects must re-serialize identically. (The input itself need
  // not round-trip byte-exact: discarded tx body padding and bit-packing
  // slack re-serialize canonically.)
  if (view->materialize().serialize() != canonical) std::abort();
}

/// GolombSet: structural superset — the view may accept streams the decoding
/// path rejects, never the reverse, and extents agree on common accepts.
void check_golomb(util::ByteView data) {
  std::optional<net::views::GolombSetView> view;
  std::size_t view_consumed = 0;
  try {
    util::ByteReader r(data);
    view = net::views::GolombSetView::parse(r);
    view_consumed = data.size() - r.tail().size();
  } catch (const util::DeserializeError&) {
  }

  bool copy_ok = false;
  std::size_t copy_consumed = 0;
  try {
    util::ByteReader r(data);
    (void)bloom::GolombSet::deserialize(r);
    copy_ok = true;
    copy_consumed = data.size() - r.tail().size();
  } catch (const util::DeserializeError&) {
  }

  if (copy_ok && !view.has_value()) std::abort();  // view must be a superset
  if (copy_ok && view_consumed != copy_consumed) std::abort();
  if (view.has_value() && view->span.size() != view_consumed) std::abort();
  // materialize() on a view-accepted stream may throw (semantic rejection);
  // it must agree with the copying verdict.
  if (view.has_value()) {
    try {
      (void)view->materialize();
      if (!copy_ok) std::abort();
    } catch (const util::DeserializeError&) {
      if (copy_ok) std::abort();
    }
  }
}

/// FrameView vs FrameReader: same tri-state (message / need-more / throw).
void check_frame(util::ByteView data) {
  std::optional<net::views::FrameView> view;
  bool view_threw = false;
  try {
    view = net::views::FrameView::parse(data);
  } catch (const util::DeserializeError&) {
    view_threw = true;
  }

  std::optional<net::Message> msg;
  bool reader_threw = false;
  try {
    net::FrameReader reader;
    reader.absorb(data);
    msg = reader.next();
  } catch (const util::DeserializeError&) {
    reader_threw = true;
  }

  if (view_threw != reader_threw) std::abort();
  if (view_threw) return;
  if (view.has_value() != msg.has_value()) std::abort();
  if (!view.has_value()) return;
  const net::Message got = view->materialize();
  if (got.type != msg->type || got.payload != msg->payload) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t route = data[0];
  const util::ByteView body = fuzz::view(data + 1, size - 1);

  switch (route % 22) {
    case 0:
      check_exact<net::views::BloomFilterView>(
          body, [](util::ByteReader& r) { return bloom::BloomFilter::deserialize(r); });
      break;
    case 1:
      check_golomb(body);
      break;
    case 2:
      check_exact<net::views::CuckooFilterView>(
          body, [](util::ByteReader& r) { return bloom::CuckooFilter::deserialize(r); });
      break;
    case 3:
      check_exact<net::views::IbltView>(
          body, [](util::ByteReader& r) { return iblt::Iblt::deserialize(r); });
      break;
    case 4:
      check_exact<net::views::KvIbltView>(
          body, [](util::ByteReader& r) { return iblt::KvIblt::deserialize(r); });
      break;
    case 5:
      check_exact<net::views::StrataEstimatorView>(body, [](util::ByteReader& r) {
        return iblt::StrataEstimator::deserialize(r);
      });
      break;
    case 6:
      check_exact<net::views::GrapheneBlockMsgView>(body, [](util::ByteReader& r) {
        return core::GrapheneBlockMsg::deserialize(r);
      });
      break;
    case 7:
      check_exact<net::views::GrapheneRequestMsgView>(body, [](util::ByteReader& r) {
        return core::GrapheneRequestMsg::deserialize(r);
      });
      break;
    case 8:
      check_exact<net::views::GrapheneResponseMsgView>(body, [](util::ByteReader& r) {
        return core::GrapheneResponseMsg::deserialize(r);
      });
      break;
    case 9:
      check_exact<net::views::RepairRequestMsgView>(body, [](util::ByteReader& r) {
        return core::RepairRequestMsg::deserialize(r);
      });
      break;
    case 10:
      check_exact<net::views::RepairResponseMsgView>(body, [](util::ByteReader& r) {
        return core::RepairResponseMsg::deserialize(r);
      });
      break;
    case 11:
      check_exact<net::views::OfferView>(
          body, [](util::ByteReader& r) { return reconcile::Offer::deserialize(r); });
      break;
    case 12:
      check_exact<net::views::RequestView>(
          body, [](util::ByteReader& r) { return reconcile::Request::deserialize(r); });
      break;
    case 13:
      check_exact<net::views::ResponseView>(
          body, [](util::ByteReader& r) { return reconcile::Response::deserialize(r); });
      break;
    case 14:
      check_exact<net::views::FetchRequestView>(body, [](util::ByteReader& r) {
        return reconcile::FetchRequest::deserialize(r);
      });
      break;
    case 15:
      check_exact<net::views::FetchResponseView>(body, [](util::ByteReader& r) {
        return reconcile::FetchResponse::deserialize(r);
      });
      break;
    case 16:
      check_exact<net::views::RatelessChunkView>(body, [](util::ByteReader& r) {
        return reconcile::RatelessChunk::deserialize(r);
      });
      break;
    case 17:
      check_exact<net::views::RatelessNeedView>(body, [](util::ByteReader& r) {
        return reconcile::RatelessNeed::deserialize(r);
      });
      break;
    case 18:
      check_exact<net::views::HelloMsgView>(
          body, [](util::ByteReader& r) { return daemon::HelloMsg::deserialize(r); });
      break;
    case 19:
      check_exact<net::views::ByeMsgView>(
          body, [](util::ByteReader& r) { return daemon::ByeMsg::deserialize(r); });
      break;
    case 20:
      check_exact<net::views::ErrorMsgView>(
          body, [](util::ByteReader& r) { return daemon::ErrorMsg::deserialize(r); });
      break;
    default:
      check_frame(body);
      break;
  }
  return 0;
}
