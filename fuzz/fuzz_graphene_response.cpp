// core::GrapheneResponseMsg::deserialize (Protocol 2, steps 3–4) over
// hostile bytes: missing transactions, IBLT J, optional filter F.
#include <cstdlib>

#include "graphene/messages.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  graphene::util::ByteReader r(graphene::fuzz::view(data, size));
  try {
    const auto msg = graphene::core::GrapheneResponseMsg::deserialize(r);
    (void)msg.missing_tx_bytes();
    const graphene::util::Bytes wire = msg.serialize();
    graphene::util::ByteReader r2{graphene::util::ByteView(wire)};
    if (graphene::core::GrapheneResponseMsg::deserialize(r2).serialize() != wire) std::abort();
  } catch (const graphene::util::DeserializeError&) {
  }
  return 0;
}
