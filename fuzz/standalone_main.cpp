// Corpus replayer + mutation fuzzer for toolchains without libFuzzer.
//
// Usage: fuzz_<target> [-mutate=N] [-seed=S] <file-or-directory>...
//
// Replays every corpus file (recursing into directories) through
// LLVMFuzzerTestOneInput, then — with -mutate=N — runs N additional inputs
// derived from random corpus files by byte flips, truncations, splices, and
// length-field nudges. Not coverage-guided, but the corpus seeds start deep
// inside the accepting paths, so mutations exercise every reject branch of
// the deserializers.
//
// Every input is written to .fuzz-last-input.bin before it runs and the file
// is removed on clean exit, so any crash — signal or unhandled exception —
// leaves its reproducer on disk for minimization (see docs/FUZZING.md).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

using Input = std::vector<std::uint8_t>;

constexpr const char* kLastInputFile = ".fuzz-last-input.bin";

Input slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void dump(const Input& data) {
  std::FILE* out = std::fopen(kLastInputFile, "wb");
  if (out != nullptr) {
    if (!data.empty()) std::fwrite(data.data(), 1, data.size(), out);
    std::fclose(out);
  }
}

Input mutate(const Input& base, const std::vector<Input>& corpus, std::mt19937_64& rng) {
  Input out = base;
  const auto pick = [&](std::size_t bound) -> std::size_t {
    return bound == 0 ? 0 : rng() % bound;
  };
  const int rounds = 1 + static_cast<int>(pick(4));
  for (int i = 0; i < rounds; ++i) {
    switch (pick(6)) {
      case 0:  // flip bits
        if (!out.empty()) out[pick(out.size())] ^= static_cast<std::uint8_t>(1 + pick(255));
        break;
      case 1:  // truncate
        if (!out.empty()) out.resize(pick(out.size()));
        break;
      case 2: {  // insert junk
        const std::size_t at = pick(out.size() + 1);
        const std::size_t len = 1 + pick(16);
        Input junk(len);
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at), junk.begin(), junk.end());
        break;
      }
      case 3: {  // overwrite a window with 0x00/0xff (length-field extremes)
        if (out.empty()) break;
        const std::size_t at = pick(out.size());
        const std::size_t len = std::min(out.size() - at, 1 + pick(9));
        std::memset(out.data() + at, pick(2) != 0u ? 0xff : 0x00, len);
        break;
      }
      case 4: {  // splice a window from another corpus entry
        const Input& other = corpus[pick(corpus.size())];
        if (other.empty() || out.empty()) break;
        const std::size_t src = pick(other.size());
        const std::size_t dst = pick(out.size());
        const std::size_t len = std::min({other.size() - src, out.size() - dst, 1 + pick(32)});
        std::memcpy(out.data() + dst, other.data() + src, len);
        break;
      }
      case 5:  // duplicate the tail (stresses trailing-collection counts)
        if (!out.empty()) {
          const std::size_t at = pick(out.size());
          out.insert(out.end(), out.begin() + static_cast<std::ptrdiff_t>(at), out.end());
          if (out.size() > (1u << 20)) out.resize(1u << 20);
        }
        break;
      default: break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t mutations = 0;
  std::uint64_t seed = 0x5eedf822;
  std::vector<Input> corpus;

  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("-mutate=", 0) == 0) {
      mutations = std::strtoull(arg.c_str() + 8, nullptr, 10);
      continue;
    }
    if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
      continue;
    }
    if (arg.rfind('-', 0) == 0) continue;  // ignore libFuzzer-style flags
    const std::filesystem::path path(arg);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry : std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) corpus.push_back(slurp(entry.path()));
      }
    } else if (std::filesystem::is_regular_file(path)) {
      corpus.push_back(slurp(path));
    }
  }

  for (const Input& input : corpus) {
    dump(input);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  std::mt19937_64 rng(seed);
  if (mutations > 0 && corpus.empty()) corpus.emplace_back();  // fuzz from nothing
  for (std::size_t i = 0; i < mutations; ++i) {
    const Input input = mutate(corpus[rng() % corpus.size()], corpus, rng);
    dump(input);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  std::remove(kLastInputFile);
  std::printf("standalone fuzz driver: replayed %zu input(s), %zu mutation(s), no findings\n",
              corpus.size(), mutations);
  return 0;
}
