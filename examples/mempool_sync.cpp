// Mempool synchronization (§3.2.1): two peers with partially overlapping
// pools end up with the union on both sides.
//
//   $ ./mempool_sync [pool_size] [fraction_common]   (defaults 5000, 0.7)
#include <cstdio>
#include <cstdlib>

#include "graphene/mempool_sync.hpp"
#include "net/channel.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace graphene;
  const std::uint64_t pool_size = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const double fraction = argc > 2 ? std::atof(argv[2]) : 0.7;
  util::Rng rng(777);

  const auto common = static_cast<std::uint64_t>(fraction * static_cast<double>(pool_size));
  chain::MempoolPair pair = chain::make_mempool_pair(pool_size, common, rng);
  std::printf("peer A: %zu txns | peer B: %zu txns | %llu in common\n", pair.a.size(),
              pair.b.size(), static_cast<unsigned long long>(common));

  // sync_mempools drives a fresh core::ReceiveSession under the hood; see
  // examples/block_relay.cpp for the explicit session flow.
  net::Channel channel;
  const core::MempoolSyncResult result =
      core::sync_mempools(pair.a, pair.b, /*salt=*/rng.next(), {}, &channel);

  if (!result.success) {
    std::printf("sync FAILED (expected at most ~1/240 of runs)\n");
    return 1;
  }
  std::printf("\nafter sync: peer A %zu txns, peer B %zu txns (union %llu)\n",
              pair.a.size(), pair.b.size(),
              static_cast<unsigned long long>(2 * pool_size - common));
  std::printf("A gained %llu, B gained %llu\n",
              static_cast<unsigned long long>(result.sender_gained),
              static_cast<unsigned long long>(result.receiver_gained));
  std::printf("protocol 2 used: %s | repair round used: %s\n",
              result.used_protocol2 ? "yes" : "no", result.used_repair ? "yes" : "no");
  std::printf("\nbandwidth: graphene encodings %zu B, transferred txns %zu B\n",
              result.graphene_bytes, result.txn_bytes);
  std::printf("naive alternative (ship all %llu distinct 32-B ids): %llu B\n",
              static_cast<unsigned long long>(2 * pool_size - common),
              static_cast<unsigned long long>((2 * pool_size - common) * 32));
  std::printf("messages exchanged: %zu\n", channel.message_count());
  return 0;
}
