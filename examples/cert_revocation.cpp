// Beyond blockchains (§1): CRLite-style certificate-revocation sync using
// the generic reconciliation facade. A CA-side host publishes its revocation
// set; a client that holds last week's copy reconciles to the current one
// for a few hundred bytes instead of re-downloading the list.
//
//   $ ./cert_revocation [revocations] [newly_revoked]   (defaults 50000, 300)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "reconcile/set_reconciler.hpp"
#include "util/random.hpp"

namespace {

graphene::reconcile::ItemDigest cert_digest(std::uint64_t serial) {
  // Real deployments hash the certificate; the serial stands in here.
  const std::string s = "certificate-serial-" + std::to_string(serial);
  return graphene::reconcile::digest_of(graphene::util::str_bytes(s));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graphene;
  const std::uint64_t base = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const std::uint64_t fresh = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300;
  util::Rng rng(20260707);

  // Last week's revocation list, held by both sides.
  reconcile::ItemSet revoked;
  for (std::uint64_t serial = 0; serial < base; ++serial) {
    revoked.insert(cert_digest(serial));
  }
  reconcile::ItemSet client_copy = revoked;

  // This week: `fresh` newly revoked certificates, known only to the CA.
  for (std::uint64_t serial = base; serial < base + fresh; ++serial) {
    revoked.insert(cert_digest(serial));
  }

  std::printf("CA revocation set: %zu entries | client copy: %zu entries (stale by %llu)\n",
              revoked.size(), client_copy.size(), static_cast<unsigned long long>(fresh));

  const reconcile::Host ca(revoked, rng.next());
  reconcile::Client client(client_copy);
  reconcile::Outcome outcome;
  const reconcile::SyncStats stats = reconcile::reconcile_one_way(
      ca, client, ca.make_offer(client_copy.size()), outcome);

  if (!stats.success) {
    std::printf("reconciliation FAILED (expected ~1/240 of runs)\n");
    return 1;
  }
  std::printf("\nclient now holds %zu revocations (request round: %s, fetch round: %s)\n",
              outcome.host_set.size(), stats.used_request_round ? "yes" : "no",
              stats.used_fetch_round ? "yes" : "no");
  std::printf("bytes: offer %zu + request %zu + response %zu + fetch %zu = %zu total\n",
              stats.offer_bytes(), stats.request_bytes(), stats.response_bytes(),
              stats.fetch_bytes(), stats.total_bytes());
  const std::size_t naive = revoked.size() * 32;
  std::printf("naive full transfer: %zu bytes — graphene used %.2f%% of that\n", naive,
              100.0 * static_cast<double>(stats.total_bytes()) /
                  static_cast<double>(naive));
  return 0;
}
