// Quickstart: relay one block from a sender to a receiver whose mempool
// already holds every block transaction (Graphene Protocol 1).
//
//   $ ./quickstart
//
// Walks through the three protocol messages and prints the bandwidth used
// compared to shipping the full block or a Compact Block.
#include <cstdio>

#include "baselines/compact_blocks.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace graphene;
  util::Rng rng(2024);

  // A block of 2,000 transactions; the receiver's mempool holds all of them
  // plus 4,000 unrelated transactions.
  chain::ScenarioSpec spec;
  spec.block_txns = 2000;
  spec.extra_txns = 4000;
  const chain::Scenario scenario = chain::make_scenario(spec, rng);

  std::printf("block: %llu txns | receiver mempool: %llu txns\n",
              static_cast<unsigned long long>(scenario.n),
              static_cast<unsigned long long>(scenario.m));

  // --- Sender side -------------------------------------------------------
  // The salt keys the 8-byte short IDs for this block (pick per block).
  core::Sender sender(scenario.block, /*salt=*/rng.next());

  // Step 1-2 (inv/getdata with the receiver's mempool count) are implicit;
  // step 3 builds Bloom filter S and IBLT I, jointly size-optimized.
  const core::GrapheneBlockMsg msg = sender.encode(scenario.m).msg;
  std::printf("Graphene block message: Bloom filter S = %zu B, IBLT I = %zu B\n",
              msg.filter_s.serialized_size(), msg.iblt_i.serialized_size());

  // --- Receiver side ------------------------------------------------------
  core::Receiver receiver(scenario.receiver_mempool);
  core::ReceiveSession session = receiver.session();  // one session per relay
  const core::ReceiveOutcome outcome = session.receive_block(msg);

  if (outcome.status == core::ReceiveStatus::kDecoded) {
    std::printf("decoded %zu transactions; Merkle root %s\n", outcome.block_ids.size(),
                outcome.merkle_ok ? "VALID" : "invalid");
  } else {
    std::printf("Protocol 1 failed (expected ~1/240 of runs) - see block_relay\n"
                "for the Protocol 2 recovery path.\n");
    return 1;
  }

  // --- Comparison ---------------------------------------------------------
  const std::size_t graphene = msg.filter_s.serialized_size() + msg.iblt_i.serialized_size();
  const std::size_t full = scenario.block.full_block_bytes();
  const std::size_t compact = baselines::compact_block_encoding_bytes(scenario.n);
  std::printf("\nbandwidth: graphene %zu B | compact blocks %zu B | full block %zu B\n",
              graphene, compact, full);
  std::printf("graphene is %.1f%% of compact blocks, %.2f%% of the full block\n",
              100.0 * static_cast<double>(graphene) / static_cast<double>(compact),
              100.0 * static_cast<double>(graphene) / static_cast<double>(full));
  return 0;
}
