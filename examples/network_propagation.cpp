// Network-wide block propagation (the paper's motivation, §1): relay one
// block across a random peer graph under each protocol and compare total
// bandwidth and the time until 99% of peers hold the block.
//
//   $ ./network_propagation [peers] [block_txns]   (defaults 30, 1000)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "p2p/propagation.hpp"
#include "sim/table.hpp"

int main(int argc, char** argv) {
  using namespace graphene;
  const auto peers =
      static_cast<std::uint32_t>(argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30);
  const std::uint64_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000;

  util::Rng rng(5150);
  std::vector<chain::Transaction> txs;
  txs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) txs.push_back(chain::make_random_transaction(rng));
  const chain::Block block(chain::BlockHeader{}, std::move(txs));
  const p2p::Topology topo = p2p::Topology::random_regular(peers, 8, rng);

  std::printf("block: %llu txns (%zu bytes full) | %u peers, %zu links | 1 MB/s, 50 ms\n\n",
              static_cast<unsigned long long>(n), block.full_block_bytes(), peers,
              topo.edge_count());

  sim::TablePrinter table({"protocol", "total bytes", "t50", "t99", "relays",
                           "decode failures"});
  for (const p2p::RelayProtocol protocol :
       {p2p::RelayProtocol::kGraphene, p2p::RelayProtocol::kCompactBlocks,
        p2p::RelayProtocol::kXthin, p2p::RelayProtocol::kFullBlocks}) {
    p2p::PropagationConfig cfg;
    cfg.protocol = protocol;
    cfg.mempool_coverage = 0.995;  // peers miss ~0.5% of block txns
    util::Rng run_rng(42);  // same per-protocol randomness for fairness
    const p2p::PropagationResult r = p2p::propagate_block(block, topo, cfg, run_rng);
    table.add_row({p2p::protocol_name(protocol),
                   sim::format_bytes(static_cast<double>(r.total_bytes)),
                   sim::format_double(r.t50_s, 3) + " s",
                   sim::format_double(r.t99_s, 3) + " s", std::to_string(r.relays),
                   std::to_string(r.decode_failures)});
  }
  table.print(std::cout);
  std::printf("\nsmaller encodings -> faster 99%%-propagation -> fewer forks (§1).\n");
  return 0;
}
