// Block relay under desynchronization: the receiver is missing a slice of
// the block, so Protocol 1 fails and the full Protocol 2 path runs —
// request filter R, missing transactions + IBLT J, ping-pong decoding, and
// (if short IDs remain unresolved) a final repair round.
//
//   $ ./block_relay [fraction_held]     (default 0.8)
//
// All messages travel through a byte-accounting channel; the summary shows
// where every byte went.
#include <cstdio>
#include <cstdlib>

#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "net/channel.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace graphene;
  const double fraction = argc > 1 ? std::atof(argv[1]) : 0.8;
  util::Rng rng(4242);

  chain::ScenarioSpec spec;
  spec.block_txns = 2000;
  spec.extra_txns = 2000;
  spec.block_fraction_in_mempool = fraction;
  const chain::Scenario scenario = chain::make_scenario(spec, rng);
  std::printf("block: %llu txns | receiver holds %.0f%% of it | mempool: %llu txns\n\n",
              static_cast<unsigned long long>(scenario.n), 100.0 * fraction,
              static_cast<unsigned long long>(scenario.m));

  core::Sender sender(scenario.block, rng.next());
  // One Receiver per node; one session per relayed block. Sessions are
  // independent, so a node can drive several (one per peer) concurrently.
  core::Receiver receiver(scenario.receiver_mempool);
  core::ReceiveSession session = receiver.session();
  net::Channel channel;

  // Protocol 1 attempt.
  const core::GrapheneBlockMsg block_msg = sender.encode(scenario.m).msg;
  channel.send(net::Direction::kSenderToReceiver,
               net::Message{net::MessageType::kGrapheneBlock, block_msg.serialize()});
  core::ReceiveOutcome outcome = session.receive_block(block_msg);
  std::printf("protocol 1: %s\n",
              outcome.status == core::ReceiveStatus::kDecoded ? "decoded" : "needs protocol 2");

  // Protocol 2 recovery.
  if (outcome.status == core::ReceiveStatus::kNeedsProtocol2) {
    const core::GrapheneRequestMsg req = session.build_request();
    channel.send(net::Direction::kReceiverToSender,
                 net::Message{net::MessageType::kGrapheneRequest, req.serialize()});
    std::printf("protocol 2 request: filter R = %zu B (b=%llu, y*=%llu%s)\n",
                req.filter_r.serialized_size(), static_cast<unsigned long long>(req.b),
                static_cast<unsigned long long>(req.y_star),
                req.reversed ? ", m~n reversed path" : "");

    const core::GrapheneResponseMsg resp = sender.serve(req);
    channel.send(net::Direction::kSenderToReceiver,
                 net::Message{net::MessageType::kGrapheneResponse, resp.serialize()});
    std::printf("protocol 2 response: %zu missing txns (%zu B), IBLT J = %zu B\n",
                resp.missing.size(), resp.missing_tx_bytes(),
                resp.iblt_j.serialized_size());

    outcome = session.complete(resp);
    if (outcome.used_pingpong) std::printf("ping-pong decoding engaged (section 4.2)\n");
  }

  // Short-ID repair round, if some block transactions are still unknown.
  if (outcome.status == core::ReceiveStatus::kNeedsRepair) {
    const core::RepairRequestMsg rep = session.build_repair();
    channel.send(net::Direction::kReceiverToSender,
                 net::Message{net::MessageType::kGetData, rep.serialize()});
    const core::RepairResponseMsg rep_resp = sender.serve_repair(rep);
    channel.send(net::Direction::kSenderToReceiver,
                 net::Message{net::MessageType::kBlockTxn, rep_resp.serialize()});
    std::printf("repair round: fetched %zu transactions by short ID\n",
                rep_resp.txns.size());
    outcome = session.complete_repair(rep_resp);
  }

  if (outcome.status != core::ReceiveStatus::kDecoded) {
    std::printf("FAILED to decode (expected at most ~1/240 of runs)\n");
    return 1;
  }
  std::printf("\ndecoded %zu transactions; Merkle root %s\n", outcome.block_ids.size(),
              outcome.merkle_ok ? "VALID" : "invalid");

  std::printf("\nwire summary:\n");
  for (const auto& [type, bytes] : channel.payload_by_type()) {
    std::printf("  %-12s %8zu B\n", std::string(net::command_name(type)).c_str(), bytes);
  }
  std::printf("  sender->receiver %zu B | receiver->sender %zu B\n",
              channel.payload_bytes(net::Direction::kSenderToReceiver),
              channel.payload_bytes(net::Direction::kReceiverToSender));
  return 0;
}
