#include "iblt/pingpong.hpp"

#include <unordered_set>

namespace graphene::iblt {

PingPongResult pingpong_decode(const Iblt& a, const Iblt& b) {
  PingPongResult result;
  Iblt tables[2] = {a, b};

  // All items recovered so far, deduplicated across rounds and tables.
  std::unordered_set<std::uint64_t> seen_pos;
  std::unordered_set<std::uint64_t> seen_neg;

  bool progress = true;
  int active = 0;
  while (progress) {
    progress = false;
    for (int round_table = 0; round_table < 2; ++round_table) {
      const int idx = (active + round_table) % 2;
      const int other = 1 - idx;
      const DecodeResult dec = tables[idx].decode();
      if (dec.malformed) {
        result.malformed = true;
        return result;
      }
      ++result.rounds;

      // Cancel fresh recoveries in the sibling table.
      for (std::uint64_t key : dec.positives) {
        if (seen_pos.insert(key).second) {
          tables[other].cancel(key, +1);
          tables[idx].cancel(key, +1);
          progress = true;
        }
      }
      for (std::uint64_t key : dec.negatives) {
        if (seen_neg.insert(key).second) {
          tables[other].cancel(key, -1);
          tables[idx].cancel(key, -1);
          progress = true;
        }
      }

      if (tables[idx].empty() || tables[other].empty()) {
        result.success = true;
        result.positives.assign(seen_pos.begin(), seen_pos.end());
        result.negatives.assign(seen_neg.begin(), seen_neg.end());
        return result;
      }
    }
    active = 1 - active;
  }

  result.positives.assign(seen_pos.begin(), seen_pos.end());
  result.negatives.assign(seen_neg.begin(), seen_neg.end());
  return result;
}

PingPongResult pingpong_decode_multi(std::span<const Iblt> tables) {
  PingPongResult result;
  if (tables.empty()) return result;

  std::vector<Iblt> work(tables.begin(), tables.end());
  std::unordered_set<std::uint64_t> seen_pos;
  std::unordered_set<std::uint64_t> seen_neg;

  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t idx = 0; idx < work.size(); ++idx) {
      const DecodeResult dec = work[idx].decode();
      if (dec.malformed) {
        result.malformed = true;
        return result;
      }
      ++result.rounds;

      auto cancel_everywhere = [&](std::uint64_t key, int sign) {
        for (Iblt& table : work) table.cancel(key, sign);
      };
      for (const std::uint64_t key : dec.positives) {
        if (seen_pos.insert(key).second) {
          cancel_everywhere(key, +1);
          progress = true;
        }
      }
      for (const std::uint64_t key : dec.negatives) {
        if (seen_neg.insert(key).second) {
          cancel_everywhere(key, -1);
          progress = true;
        }
      }
      if (work[idx].empty()) {
        result.success = true;
        result.positives.assign(seen_pos.begin(), seen_pos.end());
        result.negatives.assign(seen_neg.begin(), seen_neg.end());
        return result;
      }
    }
  }

  result.positives.assign(seen_pos.begin(), seen_pos.end());
  result.negatives.assign(seen_neg.begin(), seen_neg.end());
  return result;
}

}  // namespace graphene::iblt
