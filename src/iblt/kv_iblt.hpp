// Key-value IBLT — the full "Invertible Bloom Lookup Table" of Goodrich &
// Mitzenmacher, with a valueSum per cell alongside keySum/checkSum.
//
// Graphene itself needs only the key-set variant (src/iblt/iblt.hpp stores
// 8-byte short transaction IDs), but the general structure supports
// listEntries()/get() over (key, value) pairs and set reconciliation where
// reconciled items carry payloads — e.g. synchronizing small KV records
// between replicas without a second fetch round.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace graphene::iblt {

struct KvEntry {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  friend bool operator==(const KvEntry&, const KvEntry&) = default;
};

struct KvDecodeResult {
  bool success = false;
  bool malformed = false;
  std::vector<KvEntry> positives;  ///< in the minuend only
  std::vector<KvEntry> negatives;  ///< in the subtrahend only
};

class KvIblt {
 public:
  static constexpr std::size_t kCellBytes = 24;  // count + keySum + valueSum + checkSum

  KvIblt() = default;
  KvIblt(std::uint32_t k, std::uint64_t cells, std::uint64_t seed = 0);

  void insert(std::uint64_t key, std::uint64_t value) { update(key, value, +1); }
  void erase(std::uint64_t key, std::uint64_t value) { update(key, value, -1); }

  /// Point lookup (the "Lookup Table" operation): returns the value if the
  /// key can be resolved from one of its cells, nullopt when the key is
  /// definitely absent, and nullopt with `*indeterminate = true` when all k
  /// cells are too crowded to tell.
  [[nodiscard]] std::optional<std::uint64_t> get(std::uint64_t key,
                                                 bool* indeterminate = nullptr) const;

  [[nodiscard]] KvIblt subtract(const KvIblt& other) const;

  /// Peels all recoverable entries (listEntries).
  [[nodiscard]] KvDecodeResult decode() const;

  [[nodiscard]] std::uint64_t cell_count() const noexcept { return cells_.size(); }
  [[nodiscard]] std::uint32_t hash_count() const noexcept { return k_; }

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static KvIblt deserialize(util::ByteReader& reader);

 private:
  struct Cell {
    std::int32_t count = 0;
    std::uint64_t key_sum = 0;
    std::uint64_t value_sum = 0;
    std::uint32_t check_sum = 0;
  };

  void update(std::uint64_t key, std::uint64_t value, std::int32_t delta);
  void positions(std::uint64_t key, std::uint64_t* out) const noexcept;
  [[nodiscard]] std::uint32_t check_hash(std::uint64_t key) const noexcept;

  std::vector<Cell> cells_;
  std::uint32_t k_ = 4;
  std::uint64_t seed_ = 0;
};

}  // namespace graphene::iblt
