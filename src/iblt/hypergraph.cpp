#include "iblt/hypergraph.hpp"

#include <vector>

namespace graphene::iblt {

bool hypergraph_decodes(std::uint64_t j, std::uint32_t k, std::uint64_t c, util::Rng& rng) {
  if (j == 0) return true;
  if (c < k) return false;
  const std::uint64_t stride = c / k;
  if (stride == 0) return false;

  // Edge i occupies vertices edge_vertex[i*k .. i*k+k-1].
  std::vector<std::uint32_t> edge_vertex(j * k);
  // Adjacency: per-vertex XOR of incident edge ids plus a degree counter.
  // XOR-trick adjacency avoids per-vertex edge lists: when degree drops to 1
  // the XOR accumulator *is* the remaining edge id.
  std::vector<std::uint32_t> degree(c, 0);
  std::vector<std::uint32_t> edge_xor(c, 0);

  for (std::uint64_t e = 0; e < j; ++e) {
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto v = static_cast<std::uint32_t>(i * stride + rng.below(stride));
      edge_vertex[e * k + i] = v;
      degree[v] += 1;
      edge_xor[v] ^= static_cast<std::uint32_t>(e);
    }
  }

  // Peel: repeatedly remove edges incident to a degree-1 vertex.
  std::vector<std::uint32_t> stack;
  stack.reserve(64);
  for (std::uint32_t v = 0; v < c; ++v) {
    if (degree[v] == 1) stack.push_back(v);
  }

  std::uint64_t removed = 0;
  std::vector<bool> edge_removed(j, false);
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    if (degree[v] != 1) continue;
    const std::uint32_t e = edge_xor[v];
    if (edge_removed[e]) continue;
    edge_removed[e] = true;
    ++removed;
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint32_t u = edge_vertex[e * k + i];
      degree[u] -= 1;
      edge_xor[u] ^= e;
      if (degree[u] == 1) stack.push_back(u);
    }
  }
  return removed == j;
}

}  // namespace graphene::iblt
