#include "iblt/param_cache.hpp"

#include <iterator>

#include "obs/metrics.hpp"

namespace graphene::iblt {

std::uint64_t ParamCache::key(std::uint64_t j, std::uint32_t fail_denom) noexcept {
  // Canonical key: j in the high bits, the index of the snapped denominator
  // in the low two. Collision-free by construction (j < 2^62 in practice).
  const std::uint32_t denom = snap_fail_denom(fail_denom);
  std::uint64_t denom_index = 0;
  for (std::size_t i = 0; i < std::size(kFailDenoms); ++i) {
    if (kFailDenoms[i] == denom) denom_index = i;
  }
  return (j << 2) | denom_index;
}

IbltParams ParamCache::params(std::uint64_t j, std::uint32_t fail_denom) {
  const std::uint64_t k = key(j, fail_denom);
  {
    const util::ReaderLock lock(mu_);
    const auto it = map_.find(k);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Compute outside the lock: lookup_params is pure, so a racing miss on the
  // same key just recomputes the identical value.
  const IbltParams p = lookup_params(j, fail_denom);
  {
    const util::WriterLock lock(mu_);
    map_.emplace(k, p);
  }
  return p;
}

std::size_t ParamCache::bytes(std::uint64_t j, std::uint32_t fail_denom) {
  return Iblt::serialized_size_for(params(j, fail_denom).cells);
}

std::uint64_t ParamCache::search_key(std::uint64_t j, double p) noexcept {
  // p lives in (0, 1]; one-part-per-million quantization keeps every rate the
  // protocol actually uses (239/240, 0.95, ...) on a distinct key while
  // folding float-noise spellings of the same target together.
  const auto ppm = static_cast<std::uint64_t>(p * 1e6 + 0.5);
  return (j << 21) | (ppm & ((1u << 21) - 1));
}

SearchResult ParamCache::search(std::uint64_t j, double p, util::Rng& rng,
                                const SearchOptions& opts) {
  const std::uint64_t k = search_key(j, p);
  {
    const util::ReaderLock lock(mu_);
    const auto it = search_map_.find(k);
    if (it != search_map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  const SearchResult r = search_params(j, p, rng, opts);
  {
    const util::WriterLock lock(mu_);
    search_map_.emplace(k, r);
  }
  return r;
}

std::size_t ParamCache::entries() const {
  const util::ReaderLock lock(mu_);
  return map_.size() + search_map_.size();
}

void ParamCache::clear() {
  const util::WriterLock lock(mu_);
  map_.clear();
  search_map_.clear();
}

void ParamCache::export_stats(obs::Registry* reg) const {
  if (reg == nullptr) return;
  // Gauges, not counters: export_stats publishes snapshots of cache-owned
  // totals, and repeated exports must overwrite rather than accumulate.
  reg->gauge("graphene_param_cache_hits").set(static_cast<double>(hits()));
  reg->gauge("graphene_param_cache_misses").set(static_cast<double>(misses()));
  reg->gauge("graphene_param_cache_entries").set(static_cast<double>(entries()));
}

IbltParams cached_params(ParamCache* cache, std::uint64_t j,
                         std::uint32_t fail_denom) {
  return cache != nullptr ? cache->params(j, fail_denom)
                          : lookup_params(j, fail_denom);
}

std::size_t cached_iblt_bytes(ParamCache* cache, std::uint64_t j,
                              std::uint32_t fail_denom) {
  return cache != nullptr ? cache->bytes(j, fail_denom)
                          : iblt_bytes(j, fail_denom);
}

}  // namespace graphene::iblt
