// Ping-pong decoding (§4.2): joint decoding of two IBLT differences built
// from the same underlying item sets but with independent hash seeds (and
// typically different sizes). Items peeled from one table are cancelled in
// the other, which can unlock its 2-core; the process alternates until both
// decode or neither makes progress. The paper measures failure rates near
// (1−p)² when the sibling is as large as the primary (Fig. 11).
#pragma once

#include <span>

#include "iblt/iblt.hpp"

namespace graphene::iblt {

/// Result of jointly decoding two difference-IBLTs of the same set pair.
struct PingPongResult {
  bool success = false;    ///< true iff either table fully decoded
  bool malformed = false;  ///< a table yielded a repeated item (§6.1 attack)
  std::vector<std::uint64_t> positives;
  std::vector<std::uint64_t> negatives;
  std::uint32_t rounds = 0;  ///< alternations performed
};

/// Jointly decodes `a` and `b`. Both must be subtractions over the same two
/// item sets (so their symmetric differences are identical); they may have
/// different sizes, hash counts and seeds.
[[nodiscard]] PingPongResult pingpong_decode(const Iblt& a, const Iblt& b);

/// N-way generalization — §4.2's "a receiver could ask many neighbors for
/// the same block and the IBLTs can be jointly decoded": every table must
/// describe the same symmetric difference; items recovered from any table
/// are cancelled in all others until a table empties or no table makes
/// progress. With independent seeds the joint failure rate is roughly the
/// product of the individual rates.
[[nodiscard]] PingPongResult pingpong_decode_multi(std::span<const Iblt> tables);

}  // namespace graphene::iblt
