#include "iblt/param_search.hpp"

#include <algorithm>
#include <vector>

#include "iblt/hypergraph.hpp"
#include "util/hash.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace graphene::iblt {

namespace {

/// Seed for trial batch `index` of the sampling run rooted at `root`.
/// Batches are keyed by their position in the fixed schedule — never by
/// which thread ran them — which is what makes the parallel path
/// bit-identical to the serial one.
std::uint64_t batch_seed(std::uint64_t root, std::uint64_t index) {
  return util::mix64(root ^ util::mix64(index + 0x6a09e667f3bcc909ULL));
}

struct RateDecision {
  bool meets = false;
  /// True when the Wilson CI separated from p before the trial cap.
  bool certified = true;
};

/// Adaptive decode-rate test: does configuration (j, k, c) meet rate p?
///
/// The schedule is ceil(max_trials / batch) batches, each seeded from
/// (root, batch index). Batches are dispatched in waves sized to the pool;
/// after each wave the results are scanned IN SCHEDULE ORDER, updating the
/// Wilson interval batch by batch and stopping at the first separating
/// decision — exactly the sequence the serial loop would produce. Extra
/// batches in the decided wave are speculative waste, never a different
/// answer. Falls back to an uncertified point-estimate call at the cap
/// (Alg. 1's L-band exit).
RateDecision meets_rate(std::uint64_t j, std::uint32_t k, std::uint64_t c, double p,
                        std::uint64_t root, const SearchOptions& opts) {
  const std::uint64_t batch = std::max<std::uint64_t>(opts.batch, 1);
  const std::uint64_t total_batches =
      std::max<std::uint64_t>((opts.max_trials + batch - 1) / batch, 1);
  const std::uint64_t wave =
      opts.pool != nullptr
          ? std::max<std::uint64_t>(2 * opts.pool->size(), 1)
          : 1;

  std::vector<std::uint32_t> wave_ok(wave);
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;
  for (std::uint64_t next = 0; next < total_batches;) {
    const std::uint64_t n = std::min(wave, total_batches - next);
    util::parallel_for(opts.pool, n, [&](std::uint64_t i) {
      util::Rng rng(batch_seed(root, next + i));
      std::uint32_t ok = 0;
      for (std::uint64_t t = 0; t < batch; ++t) {
        ok += hypergraph_decodes(j, k, c, rng) ? 1u : 0u;
      }
      wave_ok[i] = ok;
    });
    for (std::uint64_t i = 0; i < n; ++i) {
      successes += wave_ok[i];
      trials += batch;
      const util::Interval ci = util::wilson_interval(successes, trials, opts.z);
      if (ci.lo() >= p) return {true, true};
      if (ci.hi() <= p) return {false, true};
    }
    next += n;
  }
  const double rate = static_cast<double>(successes) / static_cast<double>(trials);
  return {rate >= p, false};
}

std::uint64_t round_up_multiple(std::uint64_t v, std::uint64_t m) {
  return ((v + m - 1) / m) * m;
}

}  // namespace

CellSearchResult search_cells(std::uint64_t j, std::uint32_t k, double p,
                              util::Rng& rng, const SearchOptions& opts) {
  if (j == 0) return {k, true};  // One empty partition row; decodes trivially.

  // One draw per search, consumed identically for every worker count; each
  // candidate c derives its own root so revisiting a size (across searches
  // with the same seed) replays the same trials.
  const std::uint64_t root = rng.next();
  bool certified = true;
  const auto test = [&](std::uint64_t c) {
    const RateDecision d =
        meets_rate(j, k, c, p, util::mix64(root ^ util::mix64(c)), opts);
    certified = certified && d.certified;
    return d.meets;
  };

  // Search in units of k cells so every candidate stays a legal table size.
  std::uint64_t lo = 1;
  std::uint64_t hi = round_up_multiple(std::max<std::uint64_t>(j * opts.cmax_factor, k), k) / k;
  if (!test(hi * k)) return {std::nullopt, certified};

  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (test(mid * k)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return {hi * k, certified};
}

SearchResult search_params(std::uint64_t j, double p, util::Rng& rng,
                           const SearchOptions& opts) {
  SearchResult best;
  best.params.cells = 0;
  for (std::uint32_t k = opts.k_min; k <= opts.k_max; ++k) {
    const CellSearchResult r = search_cells(j, k, p, rng, opts);
    best.certified = best.certified && r.certified;
    if (!r.cells) continue;
    if (best.params.cells == 0 || *r.cells < best.params.cells) {
      best.params = IbltParams{k, *r.cells};
    }
  }
  if (best.params.cells != 0) {
    best.decode_rate =
        measure_decode_rate(j, best.params.k, best.params.cells, 2000, rng, opts.pool);
  }
  return best;
}

double measure_decode_rate(std::uint64_t j, std::uint32_t k, std::uint64_t c,
                           std::uint64_t trials, util::Rng& rng,
                           util::ThreadPool* pool) {
  if (trials == 0) return 0.0;
  const std::uint64_t root = rng.next();
  constexpr std::uint64_t kChunk = 256;
  const std::uint64_t chunks = (trials + kChunk - 1) / kChunk;
  std::vector<std::uint64_t> ok(chunks, 0);
  util::parallel_for(pool, chunks, [&](std::uint64_t i) {
    util::Rng chunk_rng(batch_seed(root, i));
    const std::uint64_t n = std::min(kChunk, trials - i * kChunk);
    std::uint64_t s = 0;
    for (std::uint64_t t = 0; t < n; ++t) {
      s += hypergraph_decodes(j, k, c, chunk_rng) ? 1u : 0u;
    }
    ok[i] = s;
  });
  std::uint64_t successes = 0;
  for (const std::uint64_t s : ok) successes += s;
  return static_cast<double>(successes) / static_cast<double>(trials);
}

}  // namespace graphene::iblt
