#include "iblt/param_search.hpp"

#include <algorithm>

#include "iblt/hypergraph.hpp"
#include "util/stats.hpp"

namespace graphene::iblt {

namespace {

/// Adaptive decode-rate test: does configuration (j, k, c) meet rate p?
/// Runs batches until the Wilson CI excludes p from one side or the trial
/// cap is hit, then falls back to the point estimate (Alg. 1's L-band exit).
bool meets_rate(std::uint64_t j, std::uint32_t k, std::uint64_t c, double p, util::Rng& rng,
                const SearchOptions& opts) {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  while (trials < opts.max_trials) {
    for (std::uint64_t i = 0; i < opts.batch; ++i) {
      successes += hypergraph_decodes(j, k, c, rng) ? 1u : 0u;
    }
    trials += opts.batch;
    const util::Interval ci = util::wilson_interval(successes, trials, opts.z);
    if (ci.lo() >= p) return true;
    if (ci.hi() <= p) return false;
  }
  return static_cast<double>(successes) / static_cast<double>(trials) >= p;
}

std::uint64_t round_up_multiple(std::uint64_t v, std::uint64_t m) {
  return ((v + m - 1) / m) * m;
}

}  // namespace

std::optional<std::uint64_t> search_cells(std::uint64_t j, std::uint32_t k, double p,
                                          util::Rng& rng, const SearchOptions& opts) {
  if (j == 0) return k;  // One empty partition row; decodes trivially.

  // Search in units of k cells so every candidate stays a legal table size.
  std::uint64_t lo = 1;
  std::uint64_t hi = round_up_multiple(std::max<std::uint64_t>(j * opts.cmax_factor, k), k) / k;
  if (!meets_rate(j, k, hi * k, p, rng, opts)) return std::nullopt;

  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (meets_rate(j, k, mid * k, p, rng, opts)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi * k;
}

SearchResult search_params(std::uint64_t j, double p, util::Rng& rng,
                           const SearchOptions& opts) {
  SearchResult best;
  best.params.cells = 0;
  for (std::uint32_t k = opts.k_min; k <= opts.k_max; ++k) {
    const auto c = search_cells(j, k, p, rng, opts);
    if (!c) continue;
    if (best.params.cells == 0 || *c < best.params.cells) {
      best.params = IbltParams{k, *c};
    }
  }
  if (best.params.cells != 0) {
    best.decode_rate =
        measure_decode_rate(j, best.params.k, best.params.cells, 2000, rng);
  }
  return best;
}

double measure_decode_rate(std::uint64_t j, std::uint32_t k, std::uint64_t c,
                           std::uint64_t trials, util::Rng& rng) {
  if (trials == 0) return 0.0;
  std::uint64_t successes = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    successes += hypergraph_decodes(j, k, c, rng) ? 1u : 0u;
  }
  return static_cast<double>(successes) / static_cast<double>(trials);
}

}  // namespace graphene::iblt
