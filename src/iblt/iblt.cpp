#include "iblt/iblt.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "util/simd/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::iblt {

namespace {
// The SIMD cells_add/cells_sub kernels operate on the raw 16-byte cell
// layout; pin the field offsets they assume.
static_assert(sizeof(Iblt::Cell) == 16);
static_assert(offsetof(Iblt::Cell, key_sum) == 0);
static_assert(offsetof(Iblt::Cell, count) == 8);
static_assert(offsetof(Iblt::Cell, check_sum) == 12);

constexpr std::uint32_t kMinHashCount = 2;
constexpr std::uint32_t kMaxHashCount = 16;
constexpr std::uint64_t kCheckSalt = 0xc0ffee3141592653ULL;
/// Lookahead tile of insert_batch: positions and checksums for a tile are
/// derived (and the target cells prefetched) before any cell is touched, so
/// the latency of up to kTile*k cache-line fills overlaps.
constexpr std::size_t kTile = 16;
/// Below this many keys per shard, the cost of zeroing a partial table
/// outweighs the parallel win; insert_all degrades to a serial batch.
constexpr std::size_t kMinKeysPerShard = 4096;
/// Cells per parallel_for chunk in the pool-aware subtract.
constexpr std::size_t kSubtractChunkCells = std::size_t{1} << 14;

// Cell counts come off the wire attacker-controlled (a hostile table can
// carry INT32_MIN), so count arithmetic must wrap two's-complement instead
// of being signed-overflow UB. Peeling termination never depends on the
// count value — the `seen` set bounds it — so wraparound is safe.
std::int32_t wrap_add(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}
std::int32_t wrap_sub(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}

inline void prefetch_write(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1, 1);
#else
  (void)p;
#endif
}

/// Open-addressed set of peeled keys, replacing the unordered_map the §6.1
/// duplicate-peel guard originally used: one flat power-of-two array probed
/// linearly from mix64(key), no per-node allocation, one cache line per
/// lookup at the ~0.66 max load factor enforced below. The empty slot is
/// key 0, so a real zero key is tracked in a side flag.
class SeenSet {
 public:
  explicit SeenSet(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, 0);
  }

  /// Returns true when `key` was newly inserted, false when already present.
  bool insert(std::uint64_t key) {
    if (key == 0) {
      if (has_zero_) return false;
      has_zero_ = true;
      return true;
    }
    if (3 * (size_ + 1) > 2 * slots_.size()) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(util::mix64(key)) & mask;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

 private:
  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    const std::size_t mask = slots_.size() - 1;
    for (std::uint64_t key : old) {
      if (key == 0) continue;
      std::size_t i = static_cast<std::size_t>(util::mix64(key)) & mask;
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = key;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
  bool has_zero_ = false;
};
}  // namespace

Iblt::Iblt(IbltParams params, std::uint64_t seed) : k_(params.k), seed_(seed) {
  if (k_ < kMinHashCount || k_ > kMaxHashCount) {
    throw std::invalid_argument("Iblt: hash count must be in [2, 16]");
  }
  std::uint64_t cells = params.cells == 0 ? k_ : params.cells;
  // Round up so each of the k partitions covers cells/k slots.
  cells = ((cells + k_ - 1) / k_) * k_;
  cells_.assign(cells, Cell{});
  init_derived();
}

void Iblt::init_derived() noexcept {
  if (cells_.empty()) return;
  stride_ = cells_.size() / k_;
  stride_div_ = util::FastMod64(stride_);
  for (std::uint32_t i = 0; i < k_; ++i) {
    seed_mix_[i] = util::mix64(seed_ + 0x9e3779b97f4a7c15ULL * (i + 1));
  }
}

void Iblt::positions(std::uint64_t key, std::uint64_t* out) const noexcept {
  // Partitioned placement: hash i picks one cell in partition i, matching the
  // k-partite hypergraph model used by the parameter search. Each partition
  // gets an *independent* full mix of (key, seed, i) — double hashing would
  // correlate positions across partitions and visibly depress the peeling
  // threshold relative to the hypergraph model. The key-independent inner
  // mix64(seed + C·(i+1)) is hoisted into seed_mix_ and the `% stride` runs
  // through the exact invariant-divisor reduction; positions are
  // bit-identical to the naive formulation.
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint64_t h = util::mix64(key ^ seed_mix_[i]);
    out[i] = static_cast<std::uint64_t>(i) * stride_ + stride_div_.mod(h);
  }
}

std::uint32_t Iblt::check_hash(std::uint64_t key) const noexcept {
  return static_cast<std::uint32_t>(util::mix64(key ^ kCheckSalt ^ seed_));
}

void Iblt::update(std::uint64_t key, std::int32_t delta) {
  std::uint64_t pos[kMaxHashCount];
  positions(key, pos);
  const std::uint32_t check = check_hash(key);
  for (std::uint32_t i = 0; i < k_; ++i) {
    Cell& cell = cells_[pos[i]];
    cell.count = wrap_add(cell.count, delta);
    cell.key_sum ^= key;
    cell.check_sum ^= check;
  }
}

template <std::uint32_t K>
void Iblt::insert_batch_fixed(const std::uint64_t* keys, std::size_t count) {
  // Software pipeline through a ring of kDepth in-flight keys: positions and
  // checksum for key j+kDepth are derived — and their cells prefetched —
  // kDepth iterations before they are applied, so each of the (up to K)
  // cache-line fills has several full hash chains of work to hide behind.
  // A 1-deep pipeline only covers ~one mix64/fastmod chain, far short of a
  // DRAM fill when the table outgrows the last-level cache. K is a
  // compile-time constant, so every inner loop fully unrolls.
  constexpr std::size_t kDepth = 8;  // power of 2: slot index is j & mask
  Cell* cells = cells_.data();
  const std::uint64_t stride = stride_;
  const util::FastMod64 div = stride_div_;
  std::uint64_t mix[K];
  for (std::uint32_t i = 0; i < K; ++i) mix[i] = seed_mix_[i];
  std::uint64_t ring[kDepth][K];
  std::uint32_t checks[kDepth];
  const auto derive = [&](std::uint64_t key, std::size_t slot) {
    std::uint64_t* p = ring[slot];
    std::uint64_t base = 0;
    for (std::uint32_t i = 0; i < K; ++i, base += stride) {
      p[i] = base + div.mod(util::mix64(key ^ mix[i]));
      prefetch_write(&cells[p[i]]);
    }
    checks[slot] = check_hash(key);
  };
  const std::size_t lead = count < kDepth ? count : kDepth;
  for (std::size_t j = 0; j < lead; ++j) derive(keys[j], j);
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t slot = j & (kDepth - 1);
    // Snapshot the slot before refilling it with key j+kDepth.
    std::uint64_t q[K];
    for (std::uint32_t i = 0; i < K; ++i) q[i] = ring[slot][i];
    const std::uint32_t check = checks[slot];
    const std::uint64_t key = keys[j];
    if (j + kDepth < count) derive(keys[j + kDepth], slot);
    for (std::uint32_t i = 0; i < K; ++i) {
      Cell& cell = cells[q[i]];
      cell.count = wrap_add(cell.count, 1);
      cell.key_sum ^= key;
      cell.check_sum ^= check;
    }
  }
}

void Iblt::insert_batch(const std::uint64_t* keys, std::size_t count) {
  if (count == 0) return;
  // Dispatch the common table arities to unrolled pipelines; positions and
  // cell arithmetic are identical to insert() for every k.
  switch (k_) {
    case 2: insert_batch_fixed<2>(keys, count); return;
    case 3: insert_batch_fixed<3>(keys, count); return;
    case 4: insert_batch_fixed<4>(keys, count); return;
    case 5: insert_batch_fixed<5>(keys, count); return;
    case 6: insert_batch_fixed<6>(keys, count); return;
    default: break;
  }
  std::uint64_t pos[kTile][kMaxHashCount];
  std::uint32_t check[kTile];
  std::size_t done = 0;
  while (done < count) {
    const std::size_t tile = std::min(kTile, count - done);
    // Pass 1: derive every position in the tile and prefetch its cell, so
    // the cache misses of pass 2 resolve while later hashes are computed.
    for (std::size_t t = 0; t < tile; ++t) {
      positions(keys[done + t], pos[t]);
      check[t] = check_hash(keys[done + t]);
      for (std::uint32_t i = 0; i < k_; ++i) {
        prefetch_write(&cells_[pos[t][i]]);
      }
    }
    // Pass 2: apply the updates; identical cell arithmetic and order to a
    // plain insert() loop (count-add and XOR per target cell).
    for (std::size_t t = 0; t < tile; ++t) {
      const std::uint64_t key = keys[done + t];
      for (std::uint32_t i = 0; i < k_; ++i) {
        Cell& cell = cells_[pos[t][i]];
        cell.count = wrap_add(cell.count, 1);
        cell.key_sum ^= key;
        cell.check_sum ^= check[t];
      }
    }
    done += tile;
  }
}

void Iblt::insert_all(std::span<const std::uint64_t> keys, util::ThreadPool* pool) {
  const std::size_t workers = pool == nullptr ? 0 : pool->size();
  std::size_t shards = std::min(workers + 1, keys.size() / kMinKeysPerShard);
  if (workers == 0 || shards < 2) {
    insert_batch(keys.data(), keys.size());
    return;
  }
  // Each shard fills a private table over a contiguous key range; the merge
  // below is count-add/XOR, both commutative and associative, so the final
  // cells match a serial insert bit-for-bit regardless of shard count.
  std::vector<Iblt> partials(shards, Iblt(IbltParams{k_, cells_.size()}, seed_));
  const std::size_t chunk = (keys.size() + shards - 1) / shards;
  util::parallel_for(pool, shards, [&](std::uint64_t s) {
    const std::size_t begin = static_cast<std::size_t>(s) * chunk;
    const std::size_t end = std::min(begin + chunk, keys.size());
    partials[static_cast<std::size_t>(s)].insert_batch(keys.data() + begin, end - begin);
  });
  for (const Iblt& p : partials) merge_add(p);
}

void Iblt::merge_add(const Iblt& other) noexcept {
  // Cell is a packed 16-byte {u64, i32, u32} record, so the fold is the
  // SIMD cells_add kernel verbatim (XOR the sums, wrapping-add the counts).
  util::simd::active().cells_add(cells_.data(), other.cells_.data(),
                                 cells_.size());
}

void Iblt::cancel(std::uint64_t key, int sign) {
  update(key, sign > 0 ? -1 : +1);
  // cancel(+1) removes an item that this difference-IBLT counted positively,
  // which is the same cell arithmetic as erasing it once.
}

Iblt Iblt::subtract(const Iblt& other, util::ThreadPool* pool) const {
  if (cells_.size() != other.cells_.size() || k_ != other.k_ || seed_ != other.seed_) {
    throw std::invalid_argument("Iblt::subtract: incompatible parameters");
  }
  Iblt out = *this;
  const std::size_t n = cells_.size();
  auto body = [&](std::size_t begin, std::size_t end) {
    util::simd::active().cells_sub(out.cells_.data() + begin,
                                   other.cells_.data() + begin, end - begin);
  };
  if (pool != nullptr && pool->size() > 0 && n >= 2 * kSubtractChunkCells) {
    // Cells are independent, so any chunking yields the same table.
    const std::uint64_t chunks = (n + kSubtractChunkCells - 1) / kSubtractChunkCells;
    util::parallel_for(pool, chunks, [&](std::uint64_t c) {
      const std::size_t begin = static_cast<std::size_t>(c) * kSubtractChunkCells;
      body(begin, std::min(begin + kSubtractChunkCells, n));
    });
  } else {
    body(0, n);
  }
  return out;
}

bool Iblt::empty() const noexcept {
  const util::ByteView raw = util::object_bytes(cells_.data(), cells_.size());
  return util::simd::active().all_zero(raw.data(), raw.size());
}

DecodeResult Iblt::decode() const {
  DecodeResult result;
  std::vector<Cell> cells = cells_;

  auto pure = [&](const Cell& c) {
    return (c.count == 1 || c.count == -1) && check_hash(c.key_sum) == c.check_sum;
  };

  // FIFO worklist of candidate-pure cell indices: a flat vector drained by a
  // head cursor, preserving the exact peel order of the deque it replaces
  // without its per-block allocation. Total pushes are bounded (initial pure
  // cells + k per peeled item), so the vector stays small.
  std::vector<std::uint64_t> worklist;
  worklist.reserve(cells.size() / 4 + 8);
  for (std::uint64_t i = 0; i < cells.size(); ++i) {
    if (pure(cells[i])) worklist.push_back(i);
  }

  // Tracks peeled items to defeat the malformed-IBLT endless loop (§6.1):
  // a well-formed difference IBLT never yields the same key twice.
  SeenSet seen(cells.size());

  std::uint64_t pos[kMaxHashCount];
  std::size_t head = 0;
  while (head < worklist.size()) {
    const std::uint64_t idx = worklist[head++];
    ++result.peel_iterations;
    if (!pure(cells[idx])) continue;  // May have changed since enqueue.

    const std::uint64_t key = cells[idx].key_sum;
    const int sign = cells[idx].count;
    if (!seen.insert(key)) {
      result.malformed = true;
      return result;
    }
    if (sign > 0) {
      result.positives.push_back(key);
    } else {
      result.negatives.push_back(key);
    }

    const std::uint32_t check = check_hash(key);
    positions(key, pos);
    for (std::uint32_t i = 0; i < k_; ++i) {
      Cell& cell = cells[pos[i]];
      cell.count = wrap_sub(cell.count, static_cast<std::int32_t>(sign));
      cell.key_sum ^= key;
      cell.check_sum ^= check;
      if (pure(cell)) worklist.push_back(pos[i]);
    }
  }

  for (const Cell& c : cells) {
    if (c.count != 0 || c.key_sum != 0 || c.check_sum != 0) ++result.residual_cells;
  }
  result.success = result.residual_cells == 0;
  return result;
}

void Iblt::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, cells_.size());
  w.u8(static_cast<std::uint8_t>(k_));
  w.u64(seed_);
  for (const Cell& c : cells_) {
    w.i32(c.count);
    w.u64(c.key_sum);
    w.u32(c.check_sum);
  }
}

util::Bytes Iblt::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

std::size_t Iblt::serialized_size() const noexcept {
  return util::varint_size(cells_.size()) + 1 + 8 + cells_.size() * kCellBytes;
}

std::size_t Iblt::serialized_size_for(std::uint64_t cells) noexcept {
  return util::varint_size(cells) + 1 + 8 + cells * kCellBytes;
}

Iblt Iblt::deserialize(util::ByteReader& reader) {
  const std::uint64_t cells =
      util::read_varint_bounded(reader, util::wire::kMaxIbltCells, "Iblt cells");
  const std::uint32_t k = reader.u8();
  if (k < kMinHashCount || k > kMaxHashCount) {
    throw util::DeserializeError("Iblt: invalid hash count");
  }
  if (cells == 0 || cells % k != 0) {
    throw util::DeserializeError("Iblt: cell count not a positive multiple of hash count");
  }
  // Bound the claimed size by the bytes actually present (8 for the seed,
  // then kCellBytes per cell): hostile input must not drive an allocation
  // larger than the buffer backing it.
  if (reader.remaining() < 8 || cells > (reader.remaining() - 8) / kCellBytes) {
    throw util::DeserializeError("Iblt: cell count exceeds buffer");
  }
  const std::uint64_t seed = reader.u64();
  Iblt out(IbltParams{k, cells}, seed);
  for (auto& cell : out.cells_) {
    cell.count = reader.i32();
    cell.key_sum = reader.u64();
    cell.check_sum = reader.u32();
  }
  return out;
}

}  // namespace graphene::iblt
