#include "iblt/iblt.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::iblt {

namespace {
constexpr std::uint32_t kMinHashCount = 2;
constexpr std::uint32_t kMaxHashCount = 16;
constexpr std::uint64_t kCheckSalt = 0xc0ffee3141592653ULL;

// Cell counts come off the wire attacker-controlled (a hostile table can
// carry INT32_MIN), so count arithmetic must wrap two's-complement instead
// of being signed-overflow UB. Peeling termination never depends on the
// count value — the `seen` map bounds it — so wraparound is safe.
std::int32_t wrap_add(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}
std::int32_t wrap_sub(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}
}  // namespace

Iblt::Iblt(IbltParams params, std::uint64_t seed) : k_(params.k), seed_(seed) {
  if (k_ < kMinHashCount || k_ > kMaxHashCount) {
    throw std::invalid_argument("Iblt: hash count must be in [2, 16]");
  }
  std::uint64_t cells = params.cells == 0 ? k_ : params.cells;
  // Round up so each of the k partitions covers cells/k slots.
  cells = ((cells + k_ - 1) / k_) * k_;
  cells_.assign(cells, Cell{});
}

void Iblt::positions(std::uint64_t key, std::uint64_t* out) const noexcept {
  // Partitioned placement: hash i picks one cell in partition i, matching the
  // k-partite hypergraph model used by the parameter search. Each partition
  // gets an *independent* full mix of (key, seed, i) — double hashing would
  // correlate positions across partitions and visibly depress the peeling
  // threshold relative to the hypergraph model.
  const std::uint64_t stride = cells_.size() / k_;
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint64_t h =
        util::mix64(key ^ util::mix64(seed_ + 0x9e3779b97f4a7c15ULL * (i + 1)));
    out[i] = static_cast<std::uint64_t>(i) * stride + h % stride;
  }
}

std::uint32_t Iblt::check_hash(std::uint64_t key) const noexcept {
  return static_cast<std::uint32_t>(util::mix64(key ^ kCheckSalt ^ seed_));
}

void Iblt::update(std::uint64_t key, std::int32_t delta) {
  std::uint64_t pos[kMaxHashCount];
  positions(key, pos);
  const std::uint32_t check = check_hash(key);
  for (std::uint32_t i = 0; i < k_; ++i) {
    Cell& cell = cells_[pos[i]];
    cell.count = wrap_add(cell.count, delta);
    cell.key_sum ^= key;
    cell.check_sum ^= check;
  }
}

void Iblt::cancel(std::uint64_t key, int sign) {
  update(key, sign > 0 ? -1 : +1);
  // cancel(+1) removes an item that this difference-IBLT counted positively,
  // which is the same cell arithmetic as erasing it once.
}

Iblt Iblt::subtract(const Iblt& other) const {
  if (cells_.size() != other.cells_.size() || k_ != other.k_ || seed_ != other.seed_) {
    throw std::invalid_argument("Iblt::subtract: incompatible parameters");
  }
  Iblt out = *this;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out.cells_[i].count = wrap_sub(out.cells_[i].count, other.cells_[i].count);
    out.cells_[i].key_sum ^= other.cells_[i].key_sum;
    out.cells_[i].check_sum ^= other.cells_[i].check_sum;
  }
  return out;
}

bool Iblt::empty() const noexcept {
  for (const Cell& c : cells_) {
    if (c.count != 0 || c.key_sum != 0 || c.check_sum != 0) return false;
  }
  return true;
}

DecodeResult Iblt::decode() const {
  DecodeResult result;
  std::vector<Cell> cells = cells_;

  auto pure = [&](const Cell& c) {
    return (c.count == 1 || c.count == -1) && check_hash(c.key_sum) == c.check_sum;
  };

  std::deque<std::uint64_t> queue;
  for (std::uint64_t i = 0; i < cells.size(); ++i) {
    if (pure(cells[i])) queue.push_back(i);
  }

  // Tracks peeled items to defeat the malformed-IBLT endless loop (§6.1):
  // a well-formed difference IBLT never yields the same key twice.
  std::unordered_map<std::uint64_t, int> seen;

  std::uint64_t pos[kMaxHashCount];
  while (!queue.empty()) {
    const std::uint64_t idx = queue.front();
    queue.pop_front();
    ++result.peel_iterations;
    if (!pure(cells[idx])) continue;  // May have changed since enqueue.

    const std::uint64_t key = cells[idx].key_sum;
    const int sign = cells[idx].count;
    if (!seen.emplace(key, sign).second) {
      result.malformed = true;
      return result;
    }
    if (sign > 0) {
      result.positives.push_back(key);
    } else {
      result.negatives.push_back(key);
    }

    const std::uint32_t check = check_hash(key);
    positions(key, pos);
    for (std::uint32_t i = 0; i < k_; ++i) {
      Cell& cell = cells[pos[i]];
      cell.count = wrap_sub(cell.count, static_cast<std::int32_t>(sign));
      cell.key_sum ^= key;
      cell.check_sum ^= check;
      if (pure(cell)) queue.push_back(pos[i]);
    }
  }

  for (const Cell& c : cells) {
    if (c.count != 0 || c.key_sum != 0 || c.check_sum != 0) ++result.residual_cells;
  }
  result.success = result.residual_cells == 0;
  return result;
}

util::Bytes Iblt::serialize() const {
  util::ByteWriter w;
  util::write_varint(w, cells_.size());
  w.u8(static_cast<std::uint8_t>(k_));
  w.u64(seed_);
  for (const Cell& c : cells_) {
    w.i32(c.count);
    w.u64(c.key_sum);
    w.u32(c.check_sum);
  }
  return w.take();
}

std::size_t Iblt::serialized_size() const noexcept {
  return util::varint_size(cells_.size()) + 1 + 8 + cells_.size() * kCellBytes;
}

std::size_t Iblt::serialized_size_for(std::uint64_t cells) noexcept {
  return util::varint_size(cells) + 1 + 8 + cells * kCellBytes;
}

Iblt Iblt::deserialize(util::ByteReader& reader) {
  const std::uint64_t cells =
      util::read_varint_bounded(reader, util::wire::kMaxIbltCells, "Iblt cells");
  const std::uint32_t k = reader.u8();
  if (k < kMinHashCount || k > kMaxHashCount) {
    throw util::DeserializeError("Iblt: invalid hash count");
  }
  if (cells == 0 || cells % k != 0) {
    throw util::DeserializeError("Iblt: cell count not a positive multiple of hash count");
  }
  // Bound the claimed size by the bytes actually present (8 for the seed,
  // then kCellBytes per cell): hostile input must not drive an allocation
  // larger than the buffer backing it.
  if (reader.remaining() < 8 || cells > (reader.remaining() - 8) / kCellBytes) {
    throw util::DeserializeError("Iblt: cell count exceeds buffer");
  }
  const std::uint64_t seed = reader.u64();
  Iblt out(IbltParams{k, cells}, seed);
  for (auto& cell : out.cells_) {
    cell.count = reader.i32();
    cell.key_sum = reader.u64();
    cell.check_sum = reader.u32();
  }
  return out;
}

}  // namespace graphene::iblt
