#include "iblt/coded_symbol.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "util/hash.hpp"

namespace graphene::iblt {

namespace {

// Domain separators so the per-item checksum and the index-sequence seed are
// independent functions of (digest, salt).
constexpr std::uint64_t kCheckDomain = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kMapDomain = 0xc2b2ae3d27d4eb4fULL;

// Largest gap the mapper will take in one step. Honest gaps fit easily
// (they are < 2^32 · idx); the clamp only matters for keeping the
// double→uint64 conversion well defined.
constexpr double kMaxGap = 9.0e15;

[[nodiscard]] std::uint64_t peel_key(const Digest32& digest, std::int64_t dir,
                                     std::uint64_t salt) noexcept {
  const std::uint64_t base =
      util::hash64(util::ByteView(digest.data(), digest.size()), salt ^ kCheckDomain);
  return util::mix64(base ^ (dir > 0 ? 0x5bf03635aULL : 0xa9e4f1c2dULL));
}

}  // namespace

std::uint64_t coded_symbol_check(const Digest32& digest, std::uint64_t salt) noexcept {
  return util::hash64(util::ByteView(digest.data(), digest.size()),
                      salt ^ kCheckDomain);
}

std::uint64_t coded_symbol_map_seed(const Digest32& digest,
                                    std::uint64_t salt) noexcept {
  return util::hash64(util::ByteView(digest.data(), digest.size()), salt ^ kMapDomain);
}

std::uint64_t IndexMapper::next() noexcept {
  // The riblt recurrence: one multiplicative-congruential step, then a gap
  // proportional to the current index scaled by (2^32/sqrt(r+1) - 1) for the
  // fresh PRNG draw r. With u = r/2^64 uniform, the next index is roughly
  // (idx+1.5)/sqrt(u): multiplicative growth with E[log step] = 1/2, so an
  // item visits ~2·ln(M) of the first M indices.
  prng_ *= 0xda942042e4dd58b5ULL;
  const double r = static_cast<double>(prng_);
  double gap = std::ceil((static_cast<double>(idx_) + 1.5) *
                         (4294967296.0 / std::sqrt(r + 1.0) - 1.0));
  // Clamp: r near 2^64 yields gap <= 0 (the sequence must strictly advance),
  // and r near 0 yields gaps beyond exact double range.
  if (!(gap >= 1.0)) gap = 1.0;
  if (gap > kMaxGap) gap = kMaxGap;
  idx_ += static_cast<std::uint64_t>(gap);
  return idx_;
}

void RatelessEncoder::add_item(const Digest32& digest) {
  const std::uint64_t check = coded_symbol_check(digest, salt_);
  Source src{digest, check, IndexMapper(coded_symbol_map_seed(digest, salt_))};
  heap_.emplace(src.mapper.current(), static_cast<std::uint32_t>(sources_.size()));
  sources_.push_back(std::move(src));
  set_check_ ^= check;
}

CodedSymbol RatelessEncoder::next_symbol() {
  CodedSymbol out;
  while (!heap_.empty() && heap_.top().first == next_) {
    const std::uint32_t id = heap_.top().second;
    heap_.pop();
    Source& src = sources_[id];
    out.apply(src.digest, src.check, +1);
    heap_.emplace(src.mapper.next(), id);
  }
  ++next_;
  return out;
}

void RatelessDecoder::add_local(const Digest32& digest) {
  Tracked tracked{digest, coded_symbol_check(digest, salt_),
                  IndexMapper(coded_symbol_map_seed(digest, salt_))};
  local_.add(std::move(tracked));
}

void RatelessDecoder::add_symbol(const CodedSymbol& symbol) {
  if (malformed_) return;
  const std::uint64_t index = received_++;
  cells_.push_back(symbol);
  if (!symbol.is_zero()) ++nonzero_;
  // Difference the arrival against everything we already know: our own set
  // and every item recovered so far.
  apply_window(local_, index, -1);
  apply_window(rec_pos_, index, -1);
  apply_window(rec_neg_, index, +1);
  enqueue_if_candidate(index);
  peel();
  if (over_budget()) malformed_ = true;
}

void RatelessDecoder::apply_window(Window& window, std::uint64_t index,
                                   std::int64_t dir) {
  while (!window.heap.empty() && window.heap.top().first == index) {
    const std::uint32_t id = window.heap.top().second;
    window.heap.pop();
    Tracked& item = window.items[id];
    touch_cell(index, item.digest, item.check, dir);
    window.heap.emplace(item.mapper.next(), id);
  }
}

void RatelessDecoder::touch_cell(std::uint64_t index, const Digest32& digest,
                                 std::uint64_t check, std::int64_t dir) {
  CodedSymbol& cell = cells_[index];
  const bool was_zero = cell.is_zero();
  cell.apply(digest, check, dir);
  const bool now_zero = cell.is_zero();
  if (was_zero && !now_zero) {
    ++nonzero_;
  } else if (!was_zero && now_zero) {
    --nonzero_;
  }
  ++ops_;
}

void RatelessDecoder::enqueue_if_candidate(std::uint64_t index) {
  const CodedSymbol& cell = cells_[index];
  // Cheap pre-filter; the hash-backed purity test runs when the worklist
  // entry is popped (the cell may have changed again by then anyway).
  if (cell.count == 1 || cell.count == -1) worklist_.push_back(index);
}

void RatelessDecoder::peel() {
  while (!worklist_.empty() && !malformed_) {
    const std::uint64_t index = worklist_.back();
    worklist_.pop_back();
    const CodedSymbol cell = cells_[index];
    if (cell.count != 1 && cell.count != -1) continue;
    if (cell.check != coded_symbol_check(cell.sum, salt_)) continue;
    const std::int64_t dir = cell.count;
    const Digest32 digest = cell.sum;
    const std::uint64_t check = cell.check;
    // §6.1-style defense: a digest peeling twice in the same direction means
    // the stream is inconsistent (an honest encoder cancels each recovered
    // item everywhere) — without this an adversary can induce endless
    // recover/re-recover churn.
    if (!peeled_keys_.insert(peel_key(digest, dir, salt_)).second) {
      malformed_ = true;
      return;
    }
    // Cancel the item from every consumed cell it participates in; cells it
    // will participate in later are handled by the recovered windows.
    IndexMapper mapper(coded_symbol_map_seed(digest, salt_));
    std::uint64_t at = mapper.current();
    while (at < received_) {
      touch_cell(at, digest, check, -dir);
      enqueue_if_candidate(at);
      at = mapper.next();
      if (over_budget()) {
        malformed_ = true;
        return;
      }
    }
    Window& future = dir > 0 ? rec_pos_ : rec_neg_;
    future.add(Tracked{digest, check, mapper});
    (dir > 0 ? positives_ : negatives_).push_back(digest);
  }
}

bool RatelessDecoder::over_budget() const noexcept {
  // Every tracked item (local + recovered) touches ~2·ln(M) of the first M
  // cells, plus one op per arriving symbol. Budget that with a generous
  // constant factor; honest streams sit far below, while a hostile stream
  // that manufactures unbounded peeling work trips it in bounded time.
  const std::uint64_t tracked = local_.items.size() + rec_pos_.items.size() +
                                rec_neg_.items.size() + 1;
  const std::uint64_t log_m =
      static_cast<std::uint64_t>(std::bit_width(received_ + 1)) + 4;
  const std::uint64_t cap = 4096 + 16 * received_ + 32 * tracked * log_m;
  return ops_ > cap;
}

}  // namespace graphene::iblt
