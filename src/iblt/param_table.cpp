#include "iblt/param_table.hpp"

#include <algorithm>
#include <cmath>
#include <span>

namespace graphene::iblt {

namespace {

constexpr TableEntry kParamTable[] = {
#include "iblt/param_table_data.inc"
};

/// Safety margin applied when extrapolating beyond the generated grid.
constexpr double kExtrapolationMargin = 1.10;

const TableEntry* find_entry(std::uint64_t j, std::uint32_t denom) {
  const TableEntry* best = nullptr;
  for (const TableEntry& e : kParamTable) {
    if (e.fail_denom != denom) continue;
    if (e.j >= j && (best == nullptr || e.j < best->j)) best = &e;
  }
  return best;
}

const TableEntry* largest_entry(std::uint32_t denom) {
  const TableEntry* best = nullptr;
  for (const TableEntry& e : kParamTable) {
    if (e.fail_denom != denom) continue;
    if (best == nullptr || e.j > best->j) best = &e;
  }
  return best;
}

}  // namespace

std::uint32_t snap_fail_denom(std::uint32_t fail_denom) noexcept {
  // Snap *up*: a stricter failure rate than requested is always acceptable.
  std::uint32_t snapped = kFailDenoms[std::size(kFailDenoms) - 1];
  for (std::uint32_t d : kFailDenoms) {
    if (d >= fail_denom) {
      snapped = d;
      break;
    }
  }
  return snapped;
}

IbltParams lookup_params(std::uint64_t j, std::uint32_t fail_denom) {
  const std::uint32_t denom = snap_fail_denom(fail_denom);
  if (j == 0) j = 1;
  if (const TableEntry* e = find_entry(j, denom)) {
    return IbltParams{e->k, e->cells};
  }
  // Beyond the grid: reuse the largest entry's hedge with a safety margin.
  // Peeling thresholds improve with j, so the largest-j hedge is already an
  // upper bound for bigger tables; the margin absorbs finite-size variance.
  const TableEntry* e = largest_entry(denom);
  const double tau =
      static_cast<double>(e->cells) / static_cast<double>(e->j) * kExtrapolationMargin;
  const std::uint32_t k = e->k;
  auto cells = static_cast<std::uint64_t>(std::ceil(tau * static_cast<double>(j)));
  cells = ((cells + k - 1) / k) * k;
  return IbltParams{k, cells};
}

double hedge_factor(std::uint64_t j, std::uint32_t fail_denom) {
  const IbltParams p = lookup_params(j, fail_denom);
  return static_cast<double>(p.cells) / static_cast<double>(std::max<std::uint64_t>(j, 1));
}

std::size_t iblt_bytes(std::uint64_t j, std::uint32_t fail_denom) {
  return Iblt::serialized_size_for(lookup_params(j, fail_denom).cells);
}

std::span<const TableEntry> raw_table() noexcept { return kParamTable; }

}  // namespace graphene::iblt
