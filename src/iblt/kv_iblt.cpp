#include "iblt/kv_iblt.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_set>

#include "util/varint.hpp"
#include "util/wire_limits.hpp"

namespace graphene::iblt {

namespace {
constexpr std::uint64_t kCheckSalt = 0x1b17ab1e5a17ed00ULL;
constexpr std::uint32_t kMaxHashCount = 16;

// Deserialized cell counts are attacker-controlled; wrap instead of
// overflowing (see the identical helpers in iblt.cpp).
std::int32_t wrap_add(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}
std::int32_t wrap_sub(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}
}  // namespace

KvIblt::KvIblt(std::uint32_t k, std::uint64_t cells, std::uint64_t seed)
    : k_(k), seed_(seed) {
  if (k_ < 2 || k_ > kMaxHashCount) {
    throw std::invalid_argument("KvIblt: hash count must be in [2, 16]");
  }
  cells = std::max<std::uint64_t>(cells, k_);
  cells = ((cells + k_ - 1) / k_) * k_;
  cells_.assign(cells, Cell{});
}

void KvIblt::positions(std::uint64_t key, std::uint64_t* out) const noexcept {
  const std::uint64_t stride = cells_.size() / k_;
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint64_t h =
        util::mix64(key ^ util::mix64(seed_ + 0x9e3779b97f4a7c15ULL * (i + 1)));
    out[i] = static_cast<std::uint64_t>(i) * stride + h % stride;
  }
}

std::uint32_t KvIblt::check_hash(std::uint64_t key) const noexcept {
  return static_cast<std::uint32_t>(util::mix64(key ^ kCheckSalt ^ seed_));
}

void KvIblt::update(std::uint64_t key, std::uint64_t value, std::int32_t delta) {
  std::uint64_t pos[kMaxHashCount];
  positions(key, pos);
  const std::uint32_t check = check_hash(key);
  for (std::uint32_t i = 0; i < k_; ++i) {
    Cell& cell = cells_[pos[i]];
    cell.count = wrap_add(cell.count, delta);
    cell.key_sum ^= key;
    cell.value_sum ^= value;
    cell.check_sum ^= check;
  }
}

std::optional<std::uint64_t> KvIblt::get(std::uint64_t key, bool* indeterminate) const {
  if (indeterminate != nullptr) *indeterminate = false;
  std::uint64_t pos[kMaxHashCount];
  positions(key, pos);
  const std::uint32_t check = check_hash(key);
  for (std::uint32_t i = 0; i < k_; ++i) {
    const Cell& cell = cells_[pos[i]];
    if (cell.count == 0 && cell.key_sum == 0 && cell.check_sum == 0) {
      return std::nullopt;  // key definitely absent
    }
    if (cell.count == 1 && cell.key_sum == key && cell.check_sum == check) {
      return cell.value_sum;
    }
    if (cell.count == 1) return std::nullopt;  // pure cell holds another key
    // count > 1: crowded, keep probing.
  }
  if (indeterminate != nullptr) *indeterminate = true;  // every cell crowded
  return std::nullopt;
}

KvIblt KvIblt::subtract(const KvIblt& other) const {
  if (cells_.size() != other.cells_.size() || k_ != other.k_ || seed_ != other.seed_) {
    throw std::invalid_argument("KvIblt::subtract: incompatible parameters");
  }
  KvIblt out = *this;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out.cells_[i].count = wrap_sub(out.cells_[i].count, other.cells_[i].count);
    out.cells_[i].key_sum ^= other.cells_[i].key_sum;
    out.cells_[i].value_sum ^= other.cells_[i].value_sum;
    out.cells_[i].check_sum ^= other.cells_[i].check_sum;
  }
  return out;
}

KvDecodeResult KvIblt::decode() const {
  KvDecodeResult result;
  std::vector<Cell> cells = cells_;

  auto pure = [&](const Cell& c) {
    return (c.count == 1 || c.count == -1) && check_hash(c.key_sum) == c.check_sum;
  };

  std::deque<std::uint64_t> queue;
  for (std::uint64_t i = 0; i < cells.size(); ++i) {
    if (pure(cells[i])) queue.push_back(i);
  }

  std::unordered_set<std::uint64_t> seen;
  std::uint64_t pos[kMaxHashCount];
  while (!queue.empty()) {
    const std::uint64_t idx = queue.front();
    queue.pop_front();
    if (!pure(cells[idx])) continue;

    const KvEntry entry{cells[idx].key_sum, cells[idx].value_sum};
    const int sign = cells[idx].count;
    if (!seen.insert(entry.key).second) {
      result.malformed = true;
      return result;
    }
    (sign > 0 ? result.positives : result.negatives).push_back(entry);

    const std::uint32_t check = check_hash(entry.key);
    positions(entry.key, pos);
    for (std::uint32_t i = 0; i < k_; ++i) {
      Cell& cell = cells[pos[i]];
      cell.count = wrap_sub(cell.count, static_cast<std::int32_t>(sign));
      cell.key_sum ^= entry.key;
      cell.value_sum ^= entry.value;
      cell.check_sum ^= check;
      if (pure(cell)) queue.push_back(pos[i]);
    }
  }

  for (const Cell& c : cells) {
    if (c.count != 0 || c.key_sum != 0 || c.value_sum != 0 || c.check_sum != 0) {
      return result;
    }
  }
  result.success = true;
  return result;
}

void KvIblt::serialize_into(util::ByteWriter& w) const {
  util::write_varint(w, cells_.size());
  w.u8(static_cast<std::uint8_t>(k_));
  w.u64(seed_);
  for (const Cell& c : cells_) {
    w.i32(c.count);
    w.u64(c.key_sum);
    w.u64(c.value_sum);
    w.u32(c.check_sum);
  }
}

util::Bytes KvIblt::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

KvIblt KvIblt::deserialize(util::ByteReader& reader) {
  const std::uint64_t cells =
      util::read_varint_bounded(reader, util::wire::kMaxIbltCells, "KvIblt cells");
  const std::uint32_t k = reader.u8();
  if (k < 2 || k > kMaxHashCount) {
    throw util::DeserializeError("KvIblt: invalid hash count");
  }
  if (cells == 0 || cells % k != 0) {
    throw util::DeserializeError("KvIblt: cell count not a positive multiple of hash count");
  }
  if (reader.remaining() < 8 || cells > (reader.remaining() - 8) / kCellBytes) {
    throw util::DeserializeError("KvIblt: cell count exceeds buffer");
  }
  const std::uint64_t seed = reader.u64();
  KvIblt out(k, cells, seed);
  for (auto& cell : out.cells_) {
    cell.count = reader.i32();
    cell.key_sum = reader.u64();
    cell.value_sum = reader.u64();
    cell.check_sum = reader.u32();
  }
  return out;
}

}  // namespace graphene::iblt
