// Rateless IBLT coded symbols ("Practical Rateless Set Reconciliation",
// Yang, Gilad & Alizadeh, SIGCOMM 2024; arXiv 2402.02668).
//
// Where a classical IBLT must be sized for the symmetric difference d ahead
// of time — and pays a repair round trip when the estimate is low — the
// rateless construction has no size at all. The encoder emits an unbounded
// stream of coded symbols; symbol i XOR-accumulates every source item whose
// pseudo-random index sequence contains i. The sequence density decays like
// 1/i, so early symbols summarize everything and later symbols isolate
// stragglers. The decoder subtracts its own items and peels exactly like an
// IBLT, but incrementally: it consumes symbols until the difference decodes,
// which happens after ~1.35·d symbols for small d (paper Fig. 4) with decode
// failure probability → 0 as the stream extends. Decode failure stops being
// a failure mode and becomes "read a few more symbols".
//
// Items here are 32-byte digests (reconcile::ItemDigest-compatible): the
// symbol sum XORs whole digests, so recovered host-only items surface as
// full digests — no short-ID indirection and no fetch round.
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/bytes.hpp"
#include "util/simd/simd.hpp"

namespace graphene::iblt {

using Digest32 = std::array<std::uint8_t, 32>;

/// One coded symbol: XOR of member digests, XOR of per-item checksums, and a
/// signed membership count (negative after subtracting a larger local set).
struct CodedSymbol {
  Digest32 sum{};
  std::uint64_t check = 0;
  std::int64_t count = 0;

  /// Serialized bytes: i64 count | u64 check | 32-byte sum.
  static constexpr std::size_t kWireBytes = 48;

  void apply(const Digest32& d, std::uint64_t chk, std::int64_t dir) noexcept {
    util::simd::active().xor_bytes(sum.data(), d.data(), d.size());
    check ^= chk;
    // Wrapping add: a hostile stream can deliver count = INT64_MIN, and the
    // decoder must keep applying items to the garbage cell until its work
    // budget trips — two's-complement wraparound, not UB. (C++20 guarantees
    // the unsigned->signed conversion is the modular inverse.)
    count = static_cast<std::int64_t>(static_cast<std::uint64_t>(count) +
                                      static_cast<std::uint64_t>(dir));
  }

  [[nodiscard]] bool is_zero() const noexcept {
    if (count != 0 || check != 0) return false;
    return util::simd::active().all_zero(sum.data(), sum.size());
  }
};

/// The paper's pseudo-random index sequence: a strictly increasing stream of
/// coded-symbol indices starting at 0, with gaps that grow in proportion to
/// the current index so that an item participates in symbol i with
/// probability Θ(1/i) — O(log M) participations among the first M symbols.
/// Deterministic given the seed; the decoder replays an item's sequence to
/// cancel it everywhere once recovered.
class IndexMapper {
 public:
  /// `seed` keys the per-item gap PRNG (a multiplicative congruential step,
  /// forced odd so the state never collapses to zero).
  explicit IndexMapper(std::uint64_t seed) noexcept : prng_(seed | 1) {}

  [[nodiscard]] std::uint64_t current() const noexcept { return idx_; }

  /// Advances to — and returns — the next index in the sequence.
  std::uint64_t next() noexcept;

 private:
  std::uint64_t prng_;
  std::uint64_t idx_ = 0;
};

/// Streaming encoder over a fixed item set. add_item() every source digest,
/// then draw coded symbols 0, 1, 2, … with next_symbol(); a min-heap on each
/// item's next index makes symbol production O(participants · log n).
class RatelessEncoder {
 public:
  /// `salt` keys the per-item checksums and index sequences; both ends of a
  /// reconciliation must agree on it.
  explicit RatelessEncoder(std::uint64_t salt) noexcept : salt_(salt) {}

  /// Registers a source item. Must precede the first next_symbol() call.
  void add_item(const Digest32& digest);

  /// Produces the coded symbol at index produced() and advances the stream.
  CodedSymbol next_symbol();

  [[nodiscard]] std::uint64_t produced() const noexcept { return next_; }
  [[nodiscard]] std::size_t item_count() const noexcept { return sources_.size(); }

  /// XOR over all items of their checksum — the stream-level exactness
  /// commitment (the analogue of reconcile::Offer::set_checksum).
  [[nodiscard]] std::uint64_t set_checksum() const noexcept { return set_check_; }

 private:
  struct Source {
    Digest32 digest;
    std::uint64_t check;
    IndexMapper mapper;
  };
  using HeapEntry = std::pair<std::uint64_t, std::uint32_t>;  ///< (next index, source)

  std::vector<Source> sources_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::uint64_t next_ = 0;
  std::uint64_t set_check_ = 0;
  std::uint64_t salt_;
};

/// Incremental peeling decoder. Seed it with the local set (add_local),
/// then feed the remote stream in index order (add_symbol); after each
/// symbol the decoder peels as far as possible. decoded() flips true the
/// moment every consumed symbol is fully explained; positives() are then
/// the remote-only digests and negatives() the local-only ones.
///
/// Hostile streams cannot hang it: every recovery is charged against a
/// per-symbol work budget and a digest may peel at most once per direction
/// (the §6.1 double-peel defense), so the decoder either finishes, reports
/// malformed(), or waits for more symbols — in bounded time per symbol.
class RatelessDecoder {
 public:
  explicit RatelessDecoder(std::uint64_t salt) noexcept : salt_(salt) {}

  /// Registers a local item. Must precede the first add_symbol() call.
  void add_local(const Digest32& digest);

  /// Consumes the coded symbol at stream index received().
  void add_symbol(const CodedSymbol& symbol);

  /// True once the consumed prefix of the stream fully decodes (every cell
  /// zero after peeling). At least one symbol must have been consumed.
  [[nodiscard]] bool decoded() const noexcept {
    return received_ > 0 && nonzero_ == 0 && !malformed_;
  }
  /// True when the stream is provably inconsistent (work budget exhausted or
  /// an item peeled twice) — a terminal state; further symbols are ignored.
  [[nodiscard]] bool malformed() const noexcept { return malformed_; }

  [[nodiscard]] const std::vector<Digest32>& positives() const noexcept {
    return positives_;
  }
  [[nodiscard]] const std::vector<Digest32>& negatives() const noexcept {
    return negatives_;
  }
  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }
  /// Cell updates performed so far — the decoder's total work, for telemetry
  /// and the malformed-stream budget.
  [[nodiscard]] std::uint64_t update_ops() const noexcept { return ops_; }

 private:
  struct Tracked {
    Digest32 digest;
    std::uint64_t check;
    IndexMapper mapper;
  };
  /// Items applied to every arriving cell with a fixed direction, advanced
  /// lazily via a min-heap on each item's next index.
  struct Window {
    std::vector<Tracked> items;
    std::priority_queue<std::pair<std::uint64_t, std::uint32_t>,
                        std::vector<std::pair<std::uint64_t, std::uint32_t>>,
                        std::greater<>>
        heap;

    void add(Tracked tracked) {
      heap.emplace(tracked.mapper.current(), static_cast<std::uint32_t>(items.size()));
      items.push_back(std::move(tracked));
    }
  };

  /// Pops every window entry due at `index` and applies it to cells_[index]
  /// with direction `dir`, advancing each popped item's mapper.
  void apply_window(Window& window, std::uint64_t index, std::int64_t dir);
  /// Applies (digest, check, dir) to cells_[index] with zero/pure tracking.
  void touch_cell(std::uint64_t index, const Digest32& digest, std::uint64_t check,
                  std::int64_t dir);
  void enqueue_if_candidate(std::uint64_t index);
  void peel();
  [[nodiscard]] bool over_budget() const noexcept;

  std::uint64_t salt_;
  std::vector<CodedSymbol> cells_;
  Window local_;    ///< initial local set, subtracted from arrivals
  Window rec_pos_;  ///< recovered remote-only items, subtracted from arrivals
  Window rec_neg_;  ///< recovered local-only items, added back to arrivals
  std::vector<std::uint64_t> worklist_;
  std::vector<Digest32> positives_;
  std::vector<Digest32> negatives_;
  std::unordered_set<std::uint64_t> peeled_keys_;
  std::uint64_t received_ = 0;
  std::uint64_t nonzero_ = 0;
  std::uint64_t ops_ = 0;
  bool malformed_ = false;
};

/// Per-item checksum and index-sequence seeds, shared by both ends.
[[nodiscard]] std::uint64_t coded_symbol_check(const Digest32& digest,
                                               std::uint64_t salt) noexcept;
[[nodiscard]] std::uint64_t coded_symbol_map_seed(const Digest32& digest,
                                                  std::uint64_t salt) noexcept;

}  // namespace graphene::iblt
