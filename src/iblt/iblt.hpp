// Invertible Bloom Lookup Table (Goodrich & Mitzenmacher) specialized to
// 64-bit keys — the 8-byte short transaction IDs Graphene stores (§3.1).
//
// Cells hold {count, keySum, checkSum}. Subtracting two IBLTs built from
// roughly equal sets cancels the intersection; iterative peeling of "pure"
// cells then recovers the symmetric difference. The decoder implements the
// §6.1 hardening: it aborts (and flags the IBLT as malformed) if any item
// peels twice, which defeats the endless-decode-loop attack.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace graphene::util {
class ThreadPool;
}  // namespace graphene::util

namespace graphene::iblt {

/// Tuning parameters: `k` hash functions over `cells` cells (divisible by k).
struct IbltParams {
  std::uint32_t k = 4;
  std::uint64_t cells = 0;
};

/// Outcome of peeling. `positives` are items present only in the minuend
/// (count +1), `negatives` only in the subtrahend (count −1). On failure the
/// vectors still hold everything that peeled before the 2-core was reached —
/// ping-pong decoding (§4.2) builds on these partial results.
struct DecodeResult {
  bool success = false;
  bool malformed = false;
  std::vector<std::uint64_t> positives;
  std::vector<std::uint64_t> negatives;
  /// Peeling-loop iterations (queue pops examined), for telemetry — tracks
  /// the real work done, including re-checks of cells that went impure.
  std::uint64_t peel_iterations = 0;
  /// Items successfully peeled (|positives| + |negatives|).
  [[nodiscard]] std::uint64_t peeled() const noexcept {
    return positives.size() + negatives.size();
  }
  /// Non-zero cells remaining after peeling stopped: 0 on success, the
  /// 2-core size (in cells) on failure. Untouched when malformed.
  std::uint64_t residual_cells = 0;
};

class Iblt {
 public:
  /// Serialized bytes per cell: i32 count + u64 keySum + u32 checkSum.
  static constexpr std::size_t kCellBytes = 16;

  Iblt() = default;

  /// Constructs an empty table. `cells` is rounded up to a multiple of k;
  /// k must be in [2, 16].
  Iblt(IbltParams params, std::uint64_t seed = 0);

  void insert(std::uint64_t key) { update(key, +1); }
  void erase(std::uint64_t key) { update(key, -1); }

  /// Inserts `count` keys; identical cell state to inserting each in order,
  /// but pipelines position derivation with software prefetching of the
  /// target cells — the batch primitive behind I′/J′ construction.
  void insert_batch(const std::uint64_t* keys, std::size_t count);

  /// Inserts all keys, fanning the work across `pool` for large batches:
  /// each worker fills a private partial table over a key range and the
  /// partials merge by count-add/XOR. Both operations are commutative and
  /// associative, so the resulting cells are bit-identical to a serial
  /// insert for ANY worker count (the PR-3 determinism contract). A null or
  /// empty pool — or a small batch — degrades to insert_batch.
  void insert_all(std::span<const std::uint64_t> keys, util::ThreadPool* pool = nullptr);

  /// Cell-wise subtraction (this − other). Both tables must share cell
  /// count, k, and seed; throws std::invalid_argument otherwise. A non-null
  /// pool splits the cell range across workers (cells are independent, so
  /// the result is identical for any worker count).
  [[nodiscard]] Iblt subtract(const Iblt& other, util::ThreadPool* pool = nullptr) const;

  /// Peels this table. Non-destructive (operates on a copy of the cells).
  [[nodiscard]] DecodeResult decode() const;

  /// Removes an already-known difference item with the given sign (+1 if it
  /// was a positive, −1 if negative). Used by ping-pong decoding to cancel
  /// items recovered from a sibling IBLT.
  void cancel(std::uint64_t key, int sign);

  [[nodiscard]] std::uint64_t cell_count() const noexcept { return cells_.size(); }
  [[nodiscard]] std::uint32_t hash_count() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// True when every cell is zero (the subtraction of identical sets).
  [[nodiscard]] bool empty() const noexcept;

  /// Wire format: varint(cells) | u8(k) | u64(seed) | cells × 16 bytes.
  /// Appends the wire encoding to `w` (scatter form of serialize()).
  void serialize_into(util::ByteWriter& w) const;
  [[nodiscard]] util::Bytes serialize() const;
  [[nodiscard]] std::size_t serialized_size() const noexcept;
  static Iblt deserialize(util::ByteReader& reader);

  /// Serialized size of a table with `cells` cells, without building it.
  [[nodiscard]] static std::size_t serialized_size_for(std::uint64_t cells) noexcept;

  /// Test hook: direct cell access for corruption/attack tests.
  ///
  /// Field order packs the struct to 16 bytes (key_sum first avoids the
  /// 4+4-byte padding holes of the count-first layout), shrinking the table
  /// a third and keeping every cell inside one cache line. The wire format
  /// is unaffected: serialize() writes count | key_sum | check_sum
  /// explicitly.
  struct Cell {
    std::uint64_t key_sum = 0;
    std::int32_t count = 0;
    std::uint32_t check_sum = 0;
  };
  static_assert(sizeof(Cell) == 16, "Cell must stay one half cache line");
  [[nodiscard]] std::vector<Cell>& cells_for_test() noexcept { return cells_; }

 private:
  void update(std::uint64_t key, std::int32_t delta);
  /// Unrolled, software-pipelined insert_batch body for a compile-time k.
  template <std::uint32_t K>
  void insert_batch_fixed(const std::uint64_t* keys, std::size_t count);
  void positions(std::uint64_t key, std::uint64_t* out) const noexcept;
  [[nodiscard]] std::uint32_t check_hash(std::uint64_t key) const noexcept;
  /// Rebuilds the derived index state (per-hash seed mixes, invariant
  /// divisor) after cells_/k_/seed_ change. Positions are bit-identical to
  /// the naive per-call formulation; this just hoists the key-independent
  /// half of the hash and strength-reduces the `% stride` divide.
  void init_derived() noexcept;
  /// Cell-wise this += other (count-add, XOR sums); parameter-compatibility
  /// is the caller's responsibility. Used to fold parallel partial tables.
  void merge_add(const Iblt& other) noexcept;

  std::vector<Cell> cells_;
  std::uint32_t k_ = 4;
  std::uint64_t seed_ = 0;
  std::uint64_t stride_ = 0;                  ///< cells / k (partition width)
  util::FastMod64 stride_div_;                ///< exact reduction by stride_
  std::array<std::uint64_t, 16> seed_mix_{};  ///< mix64(seed + C·(i+1)) per hash
};

}  // namespace graphene::iblt
