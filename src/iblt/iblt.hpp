// Invertible Bloom Lookup Table (Goodrich & Mitzenmacher) specialized to
// 64-bit keys — the 8-byte short transaction IDs Graphene stores (§3.1).
//
// Cells hold {count, keySum, checkSum}. Subtracting two IBLTs built from
// roughly equal sets cancels the intersection; iterative peeling of "pure"
// cells then recovers the symmetric difference. The decoder implements the
// §6.1 hardening: it aborts (and flags the IBLT as malformed) if any item
// peels twice, which defeats the endless-decode-loop attack.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace graphene::iblt {

/// Tuning parameters: `k` hash functions over `cells` cells (divisible by k).
struct IbltParams {
  std::uint32_t k = 4;
  std::uint64_t cells = 0;
};

/// Outcome of peeling. `positives` are items present only in the minuend
/// (count +1), `negatives` only in the subtrahend (count −1). On failure the
/// vectors still hold everything that peeled before the 2-core was reached —
/// ping-pong decoding (§4.2) builds on these partial results.
struct DecodeResult {
  bool success = false;
  bool malformed = false;
  std::vector<std::uint64_t> positives;
  std::vector<std::uint64_t> negatives;
  /// Peeling-loop iterations (queue pops examined), for telemetry — tracks
  /// the real work done, including re-checks of cells that went impure.
  std::uint64_t peel_iterations = 0;
  /// Items successfully peeled (|positives| + |negatives|).
  [[nodiscard]] std::uint64_t peeled() const noexcept {
    return positives.size() + negatives.size();
  }
  /// Non-zero cells remaining after peeling stopped: 0 on success, the
  /// 2-core size (in cells) on failure. Untouched when malformed.
  std::uint64_t residual_cells = 0;
};

class Iblt {
 public:
  /// Serialized bytes per cell: i32 count + u64 keySum + u32 checkSum.
  static constexpr std::size_t kCellBytes = 16;

  Iblt() = default;

  /// Constructs an empty table. `cells` is rounded up to a multiple of k;
  /// k must be in [2, 16].
  Iblt(IbltParams params, std::uint64_t seed = 0);

  void insert(std::uint64_t key) { update(key, +1); }
  void erase(std::uint64_t key) { update(key, -1); }

  /// Cell-wise subtraction (this − other). Both tables must share cell
  /// count, k, and seed; throws std::invalid_argument otherwise.
  [[nodiscard]] Iblt subtract(const Iblt& other) const;

  /// Peels this table. Non-destructive (operates on a copy of the cells).
  [[nodiscard]] DecodeResult decode() const;

  /// Removes an already-known difference item with the given sign (+1 if it
  /// was a positive, −1 if negative). Used by ping-pong decoding to cancel
  /// items recovered from a sibling IBLT.
  void cancel(std::uint64_t key, int sign);

  [[nodiscard]] std::uint64_t cell_count() const noexcept { return cells_.size(); }
  [[nodiscard]] std::uint32_t hash_count() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// True when every cell is zero (the subtraction of identical sets).
  [[nodiscard]] bool empty() const noexcept;

  /// Wire format: varint(cells) | u8(k) | u64(seed) | cells × 16 bytes.
  [[nodiscard]] util::Bytes serialize() const;
  [[nodiscard]] std::size_t serialized_size() const noexcept;
  static Iblt deserialize(util::ByteReader& reader);

  /// Serialized size of a table with `cells` cells, without building it.
  [[nodiscard]] static std::size_t serialized_size_for(std::uint64_t cells) noexcept;

  /// Test hook: direct cell access for corruption/attack tests.
  struct Cell {
    std::int32_t count = 0;
    std::uint64_t key_sum = 0;
    std::uint32_t check_sum = 0;
  };
  [[nodiscard]] std::vector<Cell>& cells_for_test() noexcept { return cells_; }

 private:
  void update(std::uint64_t key, std::int32_t delta);
  void positions(std::uint64_t key, std::uint64_t* out) const noexcept;
  [[nodiscard]] std::uint32_t check_hash(std::uint64_t key) const noexcept;

  std::vector<Cell> cells_;
  std::uint32_t k_ = 4;
  std::uint64_t seed_ = 0;
};

}  // namespace graphene::iblt
