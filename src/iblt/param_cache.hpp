// Thread-safe memoization of param_table lookups.
//
// lookup_params is a linear scan over the shipped grid, and the b-optimization
// loops in Sender::serve / SetReconciler::Host::serve plus the ternary
// searches in core::optimize_protocol1/2 evaluate it hundreds of times per
// block with heavy key reuse. A shared ParamCache turns those into one
// shared_mutex-guarded hash probe; keys are canonicalized with
// snap_fail_denom so every spelling of the same (j, rate) shares one entry.
//
// Concurrency: readers take a shared lock, writers an exclusive one. A miss
// computes lookup_params OUTSIDE the lock (it is pure), so concurrent misses
// on the same key may both compute — both arrive at the same value, and the
// second insert is a no-op. Hit/miss counters are relaxed atomics; they feed
// telemetry, not control flow.
//
// Intended shape: one cache per process, reached through
// core::ProtocolConfig::param_cache (not owned). A null cache pointer is
// always legal — the cached_* free helpers fall back to direct lookups.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "iblt/iblt.hpp"
#include "iblt/param_search.hpp"
#include "iblt/param_table.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace graphene::obs {
class Registry;
}  // namespace graphene::obs

namespace graphene::iblt {

class ParamCache {
 public:
  ParamCache() = default;

  ParamCache(const ParamCache&) = delete;
  ParamCache& operator=(const ParamCache&) = delete;

  /// Cached equivalent of lookup_params(j, fail_denom).
  [[nodiscard]] IbltParams params(std::uint64_t j, std::uint32_t fail_denom = 240);

  /// Cached equivalent of iblt_bytes(j, fail_denom). Derives the size from
  /// the cached IbltParams, so both queries share one entry per key.
  [[nodiscard]] std::size_t bytes(std::uint64_t j, std::uint32_t fail_denom = 240);

  /// Cached equivalent of search_params(j, p, rng, opts) — Algorithm 1 is
  /// orders of magnitude more expensive than a table lookup, so its results
  /// are memoized too, keyed on (j, p quantized to 1e-6). The full
  /// SearchResult is stored: the `certified` flag survives cache hits, so a
  /// point-estimate answer (trial cap hit before the Wilson CI separated)
  /// stays visibly uncertified no matter how callers reach it. Callers
  /// sharing one cache must use consistent SearchOptions; `rng` is consumed
  /// only on a miss (racing misses may both consume — both store equivalent
  /// results).
  [[nodiscard]] SearchResult search(std::uint64_t j, double p, util::Rng& rng,
                                    const SearchOptions& opts = {});

  /// Telemetry. Counters are monotonically increasing and approximate under
  /// concurrency (relaxed); entries() takes a shared lock.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t entries() const EXCLUDES(mu_);

  /// Drops all entries; counters keep their values.
  void clear() EXCLUDES(mu_);

  /// Publishes the hit/miss/entry counts as gauges in `reg`
  /// (graphene_param_cache_{hits,misses,entries}). No-op on null.
  void export_stats(obs::Registry* reg) const;

 private:
  static std::uint64_t key(std::uint64_t j, std::uint32_t fail_denom) noexcept;
  static std::uint64_t search_key(std::uint64_t j, double p) noexcept;

  mutable util::SharedMutex mu_;
  std::unordered_map<std::uint64_t, IbltParams> map_ GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, SearchResult> search_map_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// lookup_params through `cache` when one is provided, direct otherwise.
[[nodiscard]] IbltParams cached_params(ParamCache* cache, std::uint64_t j,
                                       std::uint32_t fail_denom = 240);

/// iblt_bytes through `cache` when one is provided, direct otherwise.
[[nodiscard]] std::size_t cached_iblt_bytes(ParamCache* cache, std::uint64_t j,
                                            std::uint32_t fail_denom = 240);

}  // namespace graphene::iblt
