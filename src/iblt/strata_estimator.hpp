// Flajolet–Martin strata estimator (Eppstein et al., SIGCOMM 2011) for the
// size of a symmetric difference — the component the Difference Digest
// baseline (§5.3.2) sends before sizing its IBLT, factored out as a reusable
// structure.
//
// Each element lands in stratum i (i = trailing zero bits of a seeded hash)
// with probability 2^{-(i+1)}; each stratum is a fixed-size IBLT. To
// estimate |A △ B|, subtract strata pairwise and decode from the deepest
// stratum down: the first failing stratum i scales everything recovered
// below it by 2^{i+1}.
#pragma once

#include <cstdint>
#include <vector>

#include "iblt/iblt.hpp"

namespace graphene::iblt {

/// Estimator tuning; nested-class default-argument rules push this to
/// namespace scope.
struct StrataConfig {
  std::uint32_t strata_cells = 80;
  std::uint32_t k = 4;
  std::uint64_t seed = 0x57a7a;
};

class StrataEstimator {
 public:
  using Config = StrataConfig;

  /// `universe_hint` sizes the number of strata (⌈log2(hint)⌉ + 1).
  StrataEstimator(std::uint64_t universe_hint, Config config = {});

  void insert(std::uint64_t key);

  /// Estimated |this △ other|, never below 1. Both estimators must share
  /// configuration (checked).
  [[nodiscard]] std::uint64_t estimate_difference(const StrataEstimator& other) const;

  [[nodiscard]] std::uint32_t strata_count() const noexcept {
    return static_cast<std::uint32_t>(strata_.size());
  }

  /// Wire format: u8(strata) | per-stratum IBLT payloads.
  /// Appends the wire encoding to `w` (scatter form of serialize()).
  void serialize_into(util::ByteWriter& w) const;
  [[nodiscard]] util::Bytes serialize() const;
  [[nodiscard]] std::size_t serialized_size() const noexcept;
  static StrataEstimator deserialize(util::ByteReader& reader, Config config = {});

 private:
  [[nodiscard]] std::uint32_t stratum_of(std::uint64_t key) const noexcept;

  Config config_;
  std::vector<Iblt> strata_;
};

}  // namespace graphene::iblt
