// Algorithm 1 (Fig. 9): statistically-certified binary search for the
// smallest IBLT that decodes j items with probability at least p.
//
// For each candidate cell count c the decode rate is estimated by sampling
// hypergraph peelings until the Wilson confidence interval around the
// observed success proportion separates from p (or a trial cap is reached).
// Monotonicity of the decode rate in c justifies the binary search; an outer
// loop tries each k in [k_min, k_max] and keeps the smallest table.
//
// Parallelism: pass SearchOptions::pool to spread trial batches across a
// util::ThreadPool. The batch schedule is fixed up front and every batch
// seeds its own Rng from (root draw, batch index), so decisions — and hence
// the returned parameters — are bit-identical for any worker count,
// including the serial pool == nullptr path. Each call consumes exactly one
// draw from the caller's Rng per search regardless of parallelism.
#pragma once

#include <cstdint>
#include <optional>

#include "iblt/iblt.hpp"
#include "util/random.hpp"

namespace graphene::util {
class ThreadPool;
}  // namespace graphene::util

namespace graphene::iblt {

struct SearchOptions {
  std::uint32_t k_min = 3;
  std::uint32_t k_max = 8;
  /// Upper bracket for the binary search, as a multiple of j (cmax in Alg 1).
  std::uint64_t cmax_factor = 20;
  /// Trials before giving up on CI separation and deciding by point estimate.
  std::uint64_t max_trials = 20000;
  /// Trials per adaptive batch.
  std::uint64_t batch = 64;
  /// z for the Wilson interval (1.96 ≈ 95%).
  double z = 1.96;
  /// Optional worker pool for trial batches; nullptr runs serially. Results
  /// are identical either way (not owned).
  util::ThreadPool* pool = nullptr;
};

/// Result of the inner binary search at a fixed k.
struct CellSearchResult {
  /// Smallest passing cell count, or nullopt if even cmax_factor*j fails.
  std::optional<std::uint64_t> cells;
  /// False when any decision along the search path hit max_trials without
  /// the Wilson CI separating from p — the answer is then a point-estimate
  /// call, not a statistically certified one. Raise max_trials to fix.
  bool certified = true;
};

/// Result of a full search across k.
struct SearchResult {
  IbltParams params;
  /// Point estimate of the decode rate at the returned size.
  double decode_rate = 0.0;
  /// AND of CellSearchResult::certified over every k tried (see above).
  bool certified = true;
};

/// Smallest c (multiple of k) such that j items decode with probability ≥ p
/// for a fixed k. `cells` is nullopt if even cmax_factor*j cells fail.
[[nodiscard]] CellSearchResult search_cells(std::uint64_t j, std::uint32_t k,
                                            double p, util::Rng& rng,
                                            const SearchOptions& opts = {});

/// Full Algorithm 1 with the outer k loop: smallest (k, c) meeting rate p.
[[nodiscard]] SearchResult search_params(std::uint64_t j, double p, util::Rng& rng,
                                         const SearchOptions& opts = {});

/// Measures the decode rate of a (j, k, c) configuration by direct sampling;
/// exposed for tests and the Fig. 7 benchmark. Consumes one draw from `rng`;
/// trials are chunked with per-chunk derived seeds, so the estimate is
/// identical with and without a pool.
[[nodiscard]] double measure_decode_rate(std::uint64_t j, std::uint32_t k, std::uint64_t c,
                                         std::uint64_t trials, util::Rng& rng,
                                         util::ThreadPool* pool = nullptr);

}  // namespace graphene::iblt
