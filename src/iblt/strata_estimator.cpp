#include "iblt/strata_estimator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/varint.hpp"

namespace graphene::iblt {

StrataEstimator::StrataEstimator(std::uint64_t universe_hint, Config config)
    : config_(config) {
  const auto hint = std::max<std::uint64_t>(universe_hint, 2);
  const auto num =
      static_cast<std::uint32_t>(std::ceil(std::log2(static_cast<double>(hint)))) + 1;
  strata_.reserve(num);
  for (std::uint32_t s = 0; s < num; ++s) {
    strata_.emplace_back(IbltParams{config_.k, config_.strata_cells}, config_.seed + s);
  }
}

std::uint32_t StrataEstimator::stratum_of(std::uint64_t key) const noexcept {
  const std::uint64_t h = util::mix64(key ^ config_.seed);
  const auto tz = static_cast<std::uint32_t>(std::countr_zero(h));
  return std::min(tz, static_cast<std::uint32_t>(strata_.size()) - 1);
}

void StrataEstimator::insert(std::uint64_t key) {
  strata_[stratum_of(key)].insert(key);
}

std::uint64_t StrataEstimator::estimate_difference(const StrataEstimator& other) const {
  if (other.strata_.size() != strata_.size() || other.config_.seed != config_.seed) {
    throw std::invalid_argument("StrataEstimator: mismatched configuration");
  }
  double estimate = 0.0;
  for (std::uint32_t s = static_cast<std::uint32_t>(strata_.size()); s-- > 0;) {
    const DecodeResult dec = strata_[s].subtract(other.strata_[s]).decode();
    if (!dec.success) {
      estimate *= std::pow(2.0, static_cast<double>(s) + 1.0);
      break;
    }
    estimate += static_cast<double>(dec.positives.size() + dec.negatives.size());
  }
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(estimate));
}

void StrataEstimator::serialize_into(util::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(strata_.size()));
  for (const Iblt& s : strata_) s.serialize_into(w);
}

util::Bytes StrataEstimator::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

std::size_t StrataEstimator::serialized_size() const noexcept {
  std::size_t total = 1;
  for (const Iblt& s : strata_) total += s.serialized_size();
  return total;
}

StrataEstimator StrataEstimator::deserialize(util::ByteReader& reader, Config config) {
  const std::uint8_t count = reader.u8();
  if (count == 0 || count > 64) {
    throw util::DeserializeError("StrataEstimator: invalid stratum count");
  }
  StrataEstimator est(1, config);
  est.strata_.clear();
  for (std::uint8_t s = 0; s < count; ++s) {
    est.strata_.push_back(Iblt::deserialize(reader));
  }
  return est;
}

}  // namespace graphene::iblt
