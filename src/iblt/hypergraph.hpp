// k-partite k-uniform hypergraph model of an IBLT (§4.1, Fig. 8).
//
// An IBLT with c cells and k hash functions decodes j items iff the random
// hypergraph with c vertices (k partitions of c/k) and j hyperedges has an
// empty 2-core. Sampling this peeling process is an order of magnitude
// faster than allocating real IBLTs (the paper reports 29 s vs 426 s for
// j = 100), which is what makes Algorithm 1 practical.
#pragma once

#include <cstdint>

#include "util/random.hpp"

namespace graphene::iblt {

/// Samples one random (V, X, k) hypergraph with `j` edges over `c` vertices
/// (c divisible by k) and peels it. Returns true iff the 2-core is empty,
/// i.e. the corresponding IBLT would decode.
[[nodiscard]] bool hypergraph_decodes(std::uint64_t j, std::uint32_t k, std::uint64_t c,
                                      util::Rng& rng);

}  // namespace graphene::iblt
