// Aligned ASCII table printing — every bench prints the paper's series as
// rows through this.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace graphene::sim {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders the table (header, rule, rows) to `os`.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3 KB" / "734 B" style formatting.
[[nodiscard]] std::string format_bytes(double bytes);
/// Fixed-precision double.
[[nodiscard]] std::string format_double(double v, int precision = 3);
/// Probability in scientific-ish form ("2.1e-04" or "0").
[[nodiscard]] std::string format_prob(double p);

}  // namespace graphene::sim
