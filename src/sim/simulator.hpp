// End-to-end Graphene runs with per-message byte decomposition — the engine
// behind every figure-reproducing benchmark.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>

#include "graphene/params.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "obs/obs.hpp"
#include "sim/scenario.hpp"

namespace graphene::sim {

/// One sender→receiver block relay, decomposed the way Fig. 17 plots it.
struct GrapheneRun {
  bool p1_decoded = false;   ///< Protocol 1 sufficed
  bool decoded = false;      ///< block recovered by the end of the run
  bool used_protocol2 = false;
  bool used_repair = false;
  bool used_pingpong = false;

  /// Probe layout of filter S as actually sent (bloom::HashStrategy value);
  /// distinguishes blocked-layout runs in the JSONL stream, since the FPR
  /// penalty of blocking shows up in fpr_s_observed.
  std::uint8_t bloom_strategy = 0;

  std::size_t getdata_bytes = 0;   ///< receiver's initial request (inv+count)
  std::size_t bloom_s_bytes = 0;   ///< Protocol 1 filter S
  std::size_t iblt_i_bytes = 0;    ///< Protocol 1 IBLT I
  std::size_t bloom_r_bytes = 0;   ///< Protocol 2 filter R
  std::size_t iblt_j_bytes = 0;    ///< Protocol 2 IBLT J
  std::size_t bloom_f_bytes = 0;   ///< m≈n compensation filter F
  std::size_t missing_txn_bytes = 0;  ///< full transactions shipped
  std::size_t repair_bytes = 0;       ///< short-ID repair round (both ways)

  /// Protocol encoding cost — what the paper's size figures report
  /// (excludes missing transaction bytes).
  [[nodiscard]] std::size_t encoding_bytes() const noexcept {
    return getdata_bytes + bloom_s_bytes + iblt_i_bytes + bloom_r_bytes + iblt_j_bytes +
           bloom_f_bytes + repair_bytes;
  }
  /// Everything on the wire.
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return encoding_bytes() + missing_txn_bytes;
  }
  /// Protocol round trips consumed: 1 for Protocol 1, +1 for the Protocol 2
  /// request/response, +1 for the repair exchange.
  [[nodiscard]] std::uint64_t rounds() const noexcept {
    return std::uint64_t{1} + (used_protocol2 ? 1u : 0u) + (used_repair ? 1u : 0u);
  }
};

/// Fixed model cost for the receiver's step-2 getdata (inv hash + mempool
/// count); matches the small constant the deployed protocol sends.
inline constexpr std::size_t kGetdataBytes = 37;

/// Runs Protocols 1→2→repair as needed over a prepared scenario.
GrapheneRun run_graphene(const Scenario& scenario, std::uint64_t salt,
                         const core::ProtocolConfig& cfg = {});

/// Runs Protocol 1 only (no recovery) — Fig. 14/15 measure this path.
GrapheneRun run_graphene_protocol1_only(const Scenario& scenario, std::uint64_t salt,
                                        const core::ProtocolConfig& cfg = {});

/// Accumulated Monte Carlo statistics over many runs.
struct TrialStats {
  std::uint64_t trials = 0;
  std::uint64_t p1_decode_failures = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t pingpong_rescues = 0;
  double mean_encoding_bytes = 0.0;
  double mean_getdata = 0.0;
  double mean_bloom_s = 0.0;
  double mean_iblt_i = 0.0;
  double mean_bloom_r = 0.0;
  double mean_iblt_j = 0.0;
  double mean_bloom_f = 0.0;
  double mean_missing_txn = 0.0;
};

/// Repeats `spec` for `trials` independently-seeded runs.
///
/// Each trial derives its RNG stream from (seed, trial index), and trials
/// run across cfg.pool when one is set — results are identical for any
/// worker count. cfg.param_cache is shared across the batch (a local cache
/// is used when the caller didn't provide one).
///
/// When `runs_jsonl` is non-null every run is executed serially with a
/// fresh telemetry Registry and appended to the stream as one structured
/// JSON record (see write_run_jsonl) — the machine-readable alternative to
/// the benches' stdout tables.
TrialStats run_trials(const ScenarioSpec& spec, std::uint64_t trials, std::uint64_t seed,
                      const core::ProtocolConfig& cfg = {}, bool protocol1_only = false,
                      std::ostream* runs_jsonl = nullptr);

/// Writes one run as a single JSON line (schema v2): scenario shape, outcome
/// flags, round count, the byte decomposition, observed-vs-target FPR of
/// filter S (ground truth from the scenario), and the full span sequence with
/// stage timings and peel-iteration counts. Every v1 field is preserved; v2
/// adds "schema" and "rounds". `reg` must be the registry the run executed
/// with.
void write_run_jsonl(std::ostream& out, const GrapheneRun& run, const Scenario& scenario,
                     std::uint64_t trial, std::uint64_t salt, const obs::Registry& reg);

/// Opens the path named by GRAPHENE_RUNS_JSONL for appending run records;
/// null when the variable is unset. Benches pass the result straight to
/// run_trials so `GRAPHENE_RUNS_JSONL=runs.jsonl ./bench_fig17...` captures
/// every run without touching the printed tables.
[[nodiscard]] std::unique_ptr<std::ofstream> open_runs_jsonl_from_env();

}  // namespace graphene::sim
