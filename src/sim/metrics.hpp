// Small statistics accumulators for benches (means, 95% CIs, failure rates).
#pragma once

#include <cstdint>

namespace graphene::sim {

/// Streaming mean/variance (Welford) with a normal-approximation 95% CI.
class Accumulator {
 public:
  void add(double sample) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Half-width of the 95% confidence interval around the mean.
  [[nodiscard]] double ci95() const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Bernoulli success counter with a Wilson 95% interval on the rate.
class RateCounter {
 public:
  void add(bool success) noexcept {
    ++trials_;
    successes_ += success ? 1 : 0;
  }
  [[nodiscard]] std::uint64_t trials() const noexcept { return trials_; }
  [[nodiscard]] std::uint64_t successes() const noexcept { return successes_; }
  [[nodiscard]] double rate() const noexcept;
  [[nodiscard]] double failure_rate() const noexcept { return 1.0 - rate(); }

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

}  // namespace graphene::sim
