// Re-exported workload types plus the canonical experiment grids used by the
// paper's evaluation (§5.3): block sizes {200, 2000, 10000} and sweeps over
// mempool multiples / block fractions.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/workload.hpp"

namespace graphene::sim {

using chain::Scenario;
using chain::ScenarioSpec;

/// Block sizes used throughout §5.3 (ETH/BCH-like, BTC-like, large).
[[nodiscard]] std::vector<std::uint64_t> paper_block_sizes();

/// Fig. 14/15 x-axis: extra mempool transactions as multiples of block size.
[[nodiscard]] std::vector<double> mempool_multiples();

/// Fig. 16/17 x-axis: fraction of the block already at the receiver.
[[nodiscard]] std::vector<double> block_fractions();

/// Environment-tunable trial count: GRAPHENE_TRIALS overrides, GRAPHENE_FAST
/// divides defaults by 10. Benches use this so full runs stay tractable.
[[nodiscard]] std::uint64_t trials_from_env(std::uint64_t default_trials);

}  // namespace graphene::sim
