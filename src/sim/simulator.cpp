#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "iblt/param_cache.hpp"
#include "util/thread_pool.hpp"

namespace graphene::sim {

namespace {

GrapheneRun run_impl(const Scenario& scenario, std::uint64_t salt,
                     const core::ProtocolConfig& cfg, bool protocol1_only) {
  GrapheneRun run;
  core::Sender sender(scenario.block, salt, cfg);
  core::ReceiveSession session(scenario.receiver_mempool, cfg);

  run.getdata_bytes = kGetdataBytes;
  const core::GrapheneBlockMsg msg = sender.encode(scenario.receiver_mempool.size()).msg;
  run.bloom_strategy = static_cast<std::uint8_t>(msg.filter_s.strategy());
  run.bloom_s_bytes = msg.filter_s.serialized_size();
  run.iblt_i_bytes = msg.iblt_i.serialized_size();

  core::ReceiveOutcome out = session.receive_block(msg);
  run.p1_decoded = out.status == core::ReceiveStatus::kDecoded;
  if (run.p1_decoded || protocol1_only) {
    run.decoded = run.p1_decoded;
    return run;
  }

  if (out.status == core::ReceiveStatus::kNeedsProtocol2) {
    run.used_protocol2 = true;
    const core::GrapheneRequestMsg req = session.build_request();
    run.bloom_r_bytes = req.filter_r.serialized_size();

    const core::GrapheneResponseMsg resp = sender.serve(req);
    run.iblt_j_bytes = resp.iblt_j.serialized_size();
    if (resp.filter_f) run.bloom_f_bytes = resp.filter_f->serialized_size();
    run.missing_txn_bytes += resp.missing_tx_bytes();

    out = session.complete(resp);
    run.used_pingpong = out.used_pingpong;
  }

  if (out.status == core::ReceiveStatus::kNeedsRepair) {
    run.used_repair = true;
    const core::RepairRequestMsg rep = session.build_repair();
    run.repair_bytes += rep.serialize().size();
    const core::RepairResponseMsg rep_resp = sender.serve_repair(rep);
    run.missing_txn_bytes += rep_resp.serialize().size();
    out = session.complete_repair(rep_resp);
  }

  run.decoded = out.status == core::ReceiveStatus::kDecoded;
  return run;
}

}  // namespace

GrapheneRun run_graphene(const Scenario& scenario, std::uint64_t salt,
                         const core::ProtocolConfig& cfg) {
  return run_impl(scenario, salt, cfg, /*protocol1_only=*/false);
}

GrapheneRun run_graphene_protocol1_only(const Scenario& scenario, std::uint64_t salt,
                                        const core::ProtocolConfig& cfg) {
  return run_impl(scenario, salt, cfg, /*protocol1_only=*/true);
}

void write_run_jsonl(std::ostream& out, const GrapheneRun& run, const Scenario& scenario,
                     std::uint64_t trial, std::uint64_t salt, const obs::Registry& reg) {
  obs::json::Writer w;
  w.begin_object();
  w.key("schema");
  w.number(std::uint64_t{2});
  w.key("trial");
  w.number(trial);
  w.key("salt");
  w.number(salt);
  w.key("n");
  w.number(scenario.n);
  w.key("m");
  w.number(scenario.m);

  w.key("decoded");
  w.boolean(run.decoded);
  w.key("p1_decoded");
  w.boolean(run.p1_decoded);
  w.key("used_protocol2");
  w.boolean(run.used_protocol2);
  w.key("used_repair");
  w.boolean(run.used_repair);
  w.key("used_pingpong");
  w.boolean(run.used_pingpong);
  w.key("bloom_strategy");
  w.number(static_cast<std::uint64_t>(run.bloom_strategy));
  w.key("rounds");
  w.number(run.rounds());

  w.key("bytes");
  w.begin_object();
  w.key("getdata");
  w.number(static_cast<std::uint64_t>(run.getdata_bytes));
  w.key("bloom_s");
  w.number(static_cast<std::uint64_t>(run.bloom_s_bytes));
  w.key("iblt_i");
  w.number(static_cast<std::uint64_t>(run.iblt_i_bytes));
  w.key("bloom_r");
  w.number(static_cast<std::uint64_t>(run.bloom_r_bytes));
  w.key("iblt_j");
  w.number(static_cast<std::uint64_t>(run.iblt_j_bytes));
  w.key("bloom_f");
  w.number(static_cast<std::uint64_t>(run.bloom_f_bytes));
  w.key("missing_txn");
  w.number(static_cast<std::uint64_t>(run.missing_txn_bytes));
  w.key("repair");
  w.number(static_cast<std::uint64_t>(run.repair_bytes));
  w.key("encoding");
  w.number(static_cast<std::uint64_t>(run.encoding_bytes()));
  w.key("total");
  w.number(static_cast<std::uint64_t>(run.total_bytes()));
  w.end_object();

  // Observed vs target FPR of filter S, with ground truth from the scenario:
  // every block transaction the receiver holds passes S (no false
  // negatives), so false positives = z − |block ∩ mempool|.
  obs::TraceSpan cand;
  if (reg.trace().find("p1_candidates", &cand)) {
    std::uint64_t in_mempool = 0;
    for (const chain::TxId& id : scenario.block.tx_ids()) {
      if (scenario.receiver_mempool.contains(id)) ++in_mempool;
    }
    const auto z = static_cast<std::uint64_t>(cand.attr("z"));
    const std::uint64_t fp = z > in_mempool ? z - in_mempool : 0;
    const std::uint64_t negatives =
        scenario.m > in_mempool ? scenario.m - in_mempool : 0;
    w.key("fpr_s_target");
    w.number(cand.attr("target_fpr"));
    w.key("fp_observed");
    w.number(fp);
    w.key("fpr_s_observed");
    w.number(negatives > 0 ? static_cast<double>(fp) / static_cast<double>(negatives)
                           : 0.0);
  }

  w.key("spans");
  w.begin_array();
  for (const obs::TraceSpan& span : reg.trace().spans()) {
    w.begin_object();
    w.key("seq");
    w.number(span.seq);
    w.key("stage");
    w.string(span.stage);
    w.key("dur_ns");
    w.number(span.dur_ns);
    for (const auto& [k, v] : span.attrs) {
      w.key(k);
      w.number(v);
    }
    w.end_object();
  }
  w.end_array();

  w.end_object();
  out << w.str() << '\n';
}

std::unique_ptr<std::ofstream> open_runs_jsonl_from_env() {
  const char* path = std::getenv("GRAPHENE_RUNS_JSONL");
  if (path == nullptr || *path == '\0') return nullptr;
  auto out = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!out->is_open()) return nullptr;
  return out;
}

TrialStats run_trials(const ScenarioSpec& spec, std::uint64_t trials, std::uint64_t seed,
                      const core::ProtocolConfig& cfg, bool protocol1_only,
                      std::ostream* runs_jsonl) {
  TrialStats stats;
  stats.trials = trials;

  // One parameter cache for the whole batch unless the caller shares one
  // already; trials hit the same (a*, b+y*) keys constantly.
  iblt::ParamCache local_cache;
  core::ProtocolConfig shared = cfg;
  if (shared.param_cache == nullptr) shared.param_cache = &local_cache;

  // Every trial derives its own RNG stream from (seed, trial index), so the
  // scenario/salt draws are identical whether trials run serially, on a
  // pool, or with JSONL capture enabled.
  const util::Rng root(seed);
  std::vector<GrapheneRun> runs(trials);
  if (runs_jsonl != nullptr) {
    // JSONL capture stays serial: records append to one stream, and a fresh
    // registry per run keeps each record's span sequence describing exactly
    // one relay, which is what a runs.jsonl record promises.
    for (std::uint64_t t = 0; t < trials; ++t) {
      util::Rng trial_rng = root.split(t);
      const Scenario scenario = chain::make_scenario(spec, trial_rng);
      const std::uint64_t salt = trial_rng.next();
      obs::Registry reg;
      core::ProtocolConfig traced = shared;
      traced.obs = &reg;
      runs[t] = run_impl(scenario, salt, traced, protocol1_only);
      write_run_jsonl(*runs_jsonl, runs[t], scenario, t, salt, reg);
    }
  } else {
    util::parallel_for(shared.pool, trials, [&](std::uint64_t t) {
      util::Rng trial_rng = root.split(t);
      const Scenario scenario = chain::make_scenario(spec, trial_rng);
      const std::uint64_t salt = trial_rng.next();
      runs[t] = run_impl(scenario, salt, shared, protocol1_only);
    });
  }

  // Fold sequentially in trial order so the running means are bit-identical
  // for every worker count.
  for (std::uint64_t t = 0; t < trials; ++t) {
    const GrapheneRun& run = runs[t];
    stats.p1_decode_failures += run.p1_decoded ? 0 : 1;
    stats.decode_failures += run.decoded ? 0 : 1;
    stats.pingpong_rescues += run.used_pingpong && run.decoded ? 1 : 0;
    const double w = 1.0 / static_cast<double>(t + 1);
    auto fold = [w](double& mean, double sample) { mean += (sample - mean) * w; };
    fold(stats.mean_encoding_bytes, static_cast<double>(run.encoding_bytes()));
    fold(stats.mean_getdata, static_cast<double>(run.getdata_bytes));
    fold(stats.mean_bloom_s, static_cast<double>(run.bloom_s_bytes));
    fold(stats.mean_iblt_i, static_cast<double>(run.iblt_i_bytes));
    fold(stats.mean_bloom_r, static_cast<double>(run.bloom_r_bytes));
    fold(stats.mean_iblt_j, static_cast<double>(run.iblt_j_bytes));
    fold(stats.mean_bloom_f, static_cast<double>(run.bloom_f_bytes));
    fold(stats.mean_missing_txn, static_cast<double>(run.missing_txn_bytes));
  }

  // Batch-level aggregation into the caller's registry (the per-run JSONL
  // registries above are throwaway). Counters accumulate across batches;
  // histograms feed the p50/p95/p99 summaries in to_json/to_prometheus.
  if (obs::Registry* reg = obs::enabled(cfg.obs)) {
    for (std::uint64_t t = 0; t < trials; ++t) {
      const GrapheneRun& run = runs[t];
      reg->counter("graphene_sim_trials_total").inc();
      if (!run.decoded) reg->counter("graphene_sim_decode_failures_total").inc();
      if (run.used_protocol2) reg->counter("graphene_sim_protocol2_rounds_total").inc();
      if (run.used_repair) reg->counter("graphene_sim_repair_rounds_total").inc();
      reg->histogram("graphene_sim_rounds").observe(run.rounds());
      reg->histogram("graphene_sim_encoding_bytes").observe(run.encoding_bytes());
      reg->histogram("graphene_sim_total_bytes").observe(run.total_bytes());
      reg->histogram("graphene_sim_missing_txn_bytes").observe(run.missing_txn_bytes);
    }
    reg->gauge("graphene_sim_repair_rate")
        .set(trials > 0 ? static_cast<double>(std::count_if(
                              runs.begin(), runs.end(),
                              [](const GrapheneRun& r) { return r.used_repair; })) /
                              static_cast<double>(trials)
                        : 0.0);
    shared.param_cache->export_stats(reg);
  }
  return stats;
}

}  // namespace graphene::sim
