#include "sim/simulator.hpp"

namespace graphene::sim {

namespace {

GrapheneRun run_impl(const Scenario& scenario, std::uint64_t salt,
                     const core::ProtocolConfig& cfg, bool protocol1_only) {
  GrapheneRun run;
  core::Sender sender(scenario.block, salt, cfg);
  core::Receiver receiver(scenario.receiver_mempool, cfg);

  run.getdata_bytes = kGetdataBytes;
  const core::GrapheneBlockMsg msg = sender.encode(scenario.receiver_mempool.size());
  run.bloom_s_bytes = msg.filter_s.serialized_size();
  run.iblt_i_bytes = msg.iblt_i.serialized_size();

  core::ReceiveOutcome out = receiver.receive_block(msg);
  run.p1_decoded = out.status == core::ReceiveStatus::kDecoded;
  if (run.p1_decoded || protocol1_only) {
    run.decoded = run.p1_decoded;
    return run;
  }

  if (out.status == core::ReceiveStatus::kNeedsProtocol2) {
    run.used_protocol2 = true;
    const core::GrapheneRequestMsg req = receiver.build_request();
    run.bloom_r_bytes = req.filter_r.serialized_size();

    const core::GrapheneResponseMsg resp = sender.serve(req);
    run.iblt_j_bytes = resp.iblt_j.serialized_size();
    if (resp.filter_f) run.bloom_f_bytes = resp.filter_f->serialized_size();
    run.missing_txn_bytes += resp.missing_tx_bytes();

    out = receiver.complete(resp);
    run.used_pingpong = out.used_pingpong;
  }

  if (out.status == core::ReceiveStatus::kNeedsRepair) {
    run.used_repair = true;
    const core::RepairRequestMsg rep = receiver.build_repair();
    run.repair_bytes += rep.serialize().size();
    const core::RepairResponseMsg rep_resp = sender.serve_repair(rep);
    run.missing_txn_bytes += rep_resp.serialize().size();
    out = receiver.complete_repair(rep_resp);
  }

  run.decoded = out.status == core::ReceiveStatus::kDecoded;
  return run;
}

}  // namespace

GrapheneRun run_graphene(const Scenario& scenario, std::uint64_t salt,
                         const core::ProtocolConfig& cfg) {
  return run_impl(scenario, salt, cfg, /*protocol1_only=*/false);
}

GrapheneRun run_graphene_protocol1_only(const Scenario& scenario, std::uint64_t salt,
                                        const core::ProtocolConfig& cfg) {
  return run_impl(scenario, salt, cfg, /*protocol1_only=*/true);
}

TrialStats run_trials(const ScenarioSpec& spec, std::uint64_t trials, std::uint64_t seed,
                      const core::ProtocolConfig& cfg, bool protocol1_only) {
  TrialStats stats;
  stats.trials = trials;
  util::Rng rng(seed);
  for (std::uint64_t t = 0; t < trials; ++t) {
    const Scenario scenario = chain::make_scenario(spec, rng);
    const GrapheneRun run = run_impl(scenario, rng.next(), cfg, protocol1_only);
    stats.p1_decode_failures += run.p1_decoded ? 0 : 1;
    stats.decode_failures += run.decoded ? 0 : 1;
    stats.pingpong_rescues += run.used_pingpong && run.decoded ? 1 : 0;
    const double w = 1.0 / static_cast<double>(t + 1);
    auto fold = [w](double& mean, double sample) { mean += (sample - mean) * w; };
    fold(stats.mean_encoding_bytes, static_cast<double>(run.encoding_bytes()));
    fold(stats.mean_getdata, static_cast<double>(run.getdata_bytes));
    fold(stats.mean_bloom_s, static_cast<double>(run.bloom_s_bytes));
    fold(stats.mean_iblt_i, static_cast<double>(run.iblt_i_bytes));
    fold(stats.mean_bloom_r, static_cast<double>(run.bloom_r_bytes));
    fold(stats.mean_iblt_j, static_cast<double>(run.iblt_j_bytes));
    fold(stats.mean_bloom_f, static_cast<double>(run.bloom_f_bytes));
    fold(stats.mean_missing_txn, static_cast<double>(run.missing_txn_bytes));
  }
  return stats;
}

}  // namespace graphene::sim
