#include "sim/scenario.hpp"

#include <cstdlib>
#include <string>

namespace graphene::sim {

std::vector<std::uint64_t> paper_block_sizes() { return {200, 2000, 10000}; }

std::vector<double> mempool_multiples() {
  return {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0};
}

std::vector<double> block_fractions() {
  return {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

std::uint64_t trials_from_env(std::uint64_t default_trials) {
  if (const char* env = std::getenv("GRAPHENE_TRIALS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  if (const char* fast = std::getenv("GRAPHENE_FAST"); fast != nullptr && fast[0] == '1') {
    return default_trials >= 10 ? default_trials / 10 : 1;
  }
  return default_trials;
}

}  // namespace graphene::sim
