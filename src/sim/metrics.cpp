#include "sim/metrics.hpp"

#include <cmath>

namespace graphene::sim {

void Accumulator::add(double sample) noexcept {
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double Accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::ci95() const noexcept {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

double RateCounter::rate() const noexcept {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

}  // namespace graphene::sim
