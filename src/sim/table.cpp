#include "sim/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace graphene::sim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|";
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
}

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_prob(double p) {
  if (p <= 0.0) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", p);
  return buf;
}

}  // namespace graphene::sim
