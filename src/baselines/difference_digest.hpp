// Difference Digest baseline (Eppstein et al., SIGCOMM 2011), as described
// in §5.3.2: an IBLT-only alternative to Graphene Protocol 2.
//
// The sender announces n; the receiver estimates |mempool △ block| with a
// Flajolet–Martin strata estimator (⌈log2 m⌉ strata IBLTs of 80 cells each,
// every mempool element inserted into the stratum given by the number of
// trailing zero bits of its hash); the sender then ships one IBLT with twice
// the estimated difference to absorb under-estimates.
#pragma once

#include <cstdint>

#include "chain/block.hpp"
#include "chain/mempool.hpp"
#include "util/random.hpp"

namespace graphene::baselines {

struct DifferenceDigestResult {
  bool success = false;
  std::uint64_t estimated_diff = 0;
  std::uint64_t true_diff = 0;
  std::size_t estimator_bytes = 0;  ///< strata IBLTs sent by the receiver
  std::size_t iblt_bytes = 0;       ///< sender's difference IBLT
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return estimator_bytes + iblt_bytes;
  }
};

struct DifferenceDigestConfig {
  std::uint32_t strata_cells = 80;
  std::uint32_t strata_k = 4;
  std::uint32_t final_k = 4;
  std::uint64_t seed = 0xd1ff;
};

/// Runs the two-message difference digest between the receiver's mempool and
/// the sender's block; decodes the symmetric difference IBLT and reports
/// sizes. Used by bench_difference_digest for the §5.3.2 comparison.
DifferenceDigestResult run_difference_digest(const chain::Block& block,
                                             const chain::Mempool& mempool,
                                             const DifferenceDigestConfig& cfg = {});

}  // namespace graphene::baselines
