// Compact Blocks (BIP-152) baseline (§2.2, §5.3).
//
// The sender ships 6-byte SipHash short IDs for every block transaction (plus
// the coinbase prefilled); a receiver missing transactions answers with a
// getblocktxn carrying differentially-encoded indexes (1 or 3 bytes each,
// per the paper's cost model), and the sender returns the transactions.
#pragma once

#include <vector>

#include "chain/block.hpp"
#include "chain/mempool.hpp"
#include "net/channel.hpp"

namespace graphene::baselines {

struct CompactBlocksResult {
  bool success = false;
  std::size_t cmpctblock_bytes = 0;   ///< header + nonce + short IDs + prefilled
  std::size_t getblocktxn_bytes = 0;  ///< index-based repair request
  std::size_t blocktxn_bytes = 0;     ///< full missing transactions
  std::size_t missing_count = 0;
  bool needed_roundtrip = false;
  bool shortid_collision = false;  ///< mempool collision forced extra requests

  /// Protocol encoding cost excluding transaction bytes — the quantity the
  /// paper's figures compare against Graphene.
  [[nodiscard]] std::size_t encoding_bytes() const noexcept {
    return cmpctblock_bytes + getblocktxn_bytes;
  }
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return cmpctblock_bytes + getblocktxn_bytes + blocktxn_bytes;
  }
};

/// Runs the full protocol against `mempool`, logging messages to `channel`
/// when non-null. `nonce` keys the 6-byte short IDs.
CompactBlocksResult run_compact_blocks(const chain::Block& block,
                                       const chain::Mempool& mempool, std::uint64_t nonce,
                                       net::Channel* channel = nullptr);

/// Closed-form encoding size used by sweeps that don't need the full run:
/// header + nonce + varints + 6n short IDs.
[[nodiscard]] std::size_t compact_block_encoding_bytes(std::uint64_t n) noexcept;

/// Per-index getblocktxn cost from the paper: 1 byte for blocks < 256 txns,
/// 3 bytes otherwise.
[[nodiscard]] std::size_t index_bytes(std::uint64_t n) noexcept;

}  // namespace graphene::baselines
