#include "baselines/difference_digest.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "iblt/iblt.hpp"
#include "iblt/strata_estimator.hpp"

namespace graphene::baselines {

DifferenceDigestResult run_difference_digest(const chain::Block& block,
                                             const chain::Mempool& mempool,
                                             const DifferenceDigestConfig& cfg) {
  DifferenceDigestResult result;

  std::vector<std::uint64_t> block_sids;
  std::unordered_set<std::uint64_t> block_set;
  for (const chain::Transaction& tx : block.transactions()) {
    const std::uint64_t sid = chain::short_id(tx.id);
    block_sids.push_back(sid);
    block_set.insert(sid);
  }
  std::vector<std::uint64_t> pool_sids;
  std::unordered_set<std::uint64_t> pool_set;
  for (const chain::TxId& id : mempool.ids()) {
    const std::uint64_t sid = chain::short_id(id);
    pool_sids.push_back(sid);
    pool_set.insert(sid);
  }
  for (const std::uint64_t sid : block_sids) result.true_diff += pool_set.count(sid) == 0;
  for (const std::uint64_t sid : pool_sids) result.true_diff += block_set.count(sid) == 0;

  // Receiver → sender: strata estimator over the mempool. The sender builds
  // the matching strata over the block locally (free) and estimates |△|.
  const iblt::StrataEstimator::Config strata_cfg{cfg.strata_cells, cfg.strata_k, cfg.seed};
  const auto m = std::max<std::uint64_t>(mempool.size(), 2);
  iblt::StrataEstimator pool_strata(m, strata_cfg);
  iblt::StrataEstimator block_strata(m, strata_cfg);
  for (const std::uint64_t sid : pool_sids) pool_strata.insert(sid);
  for (const std::uint64_t sid : block_sids) block_strata.insert(sid);
  result.estimator_bytes = pool_strata.serialized_size();
  result.estimated_diff = block_strata.estimate_difference(pool_strata);

  // Sender → receiver: one IBLT with twice the estimated difference in cells.
  const std::uint64_t d = 2 * result.estimated_diff;
  const std::uint64_t cells = ((std::max<std::uint64_t>(d, cfg.final_k) + cfg.final_k - 1) /
                               cfg.final_k) * cfg.final_k;
  iblt::Iblt sender_iblt(iblt::IbltParams{cfg.final_k, cells}, cfg.seed ^ 0x5a5a);
  for (const std::uint64_t sid : block_sids) sender_iblt.insert(sid);
  result.iblt_bytes = sender_iblt.serialized_size();

  iblt::Iblt receiver_iblt(iblt::IbltParams{cfg.final_k, cells}, cfg.seed ^ 0x5a5a);
  for (const std::uint64_t sid : pool_sids) receiver_iblt.insert(sid);

  const iblt::DecodeResult dec = sender_iblt.subtract(receiver_iblt).decode();
  result.success =
      dec.success && dec.positives.size() + dec.negatives.size() == result.true_diff;
  return result;
}

}  // namespace graphene::baselines
