// Bloom-filter-only relay baseline (§3's motivating strawman and §5.1).
//
// The sender encodes the block as a single Bloom filter with FPR
// f = 1/(144(m−n)) — one expected spurious transaction per ~144 blocks —
// and the receiver takes every mempool transaction that passes. Theorem 4
// shows Graphene Protocol 1 beats this (and the Carter et al. information-
// theoretic lower bound for approximate membership) by Ω(n log n) bits.
#pragma once

#include <cstdint>

#include "chain/block.hpp"
#include "chain/mempool.hpp"

namespace graphene::baselines {

struct BloomOnlyResult {
  bool success = false;          ///< receiver recovered exactly the block
  std::size_t filter_bytes = 0;  ///< serialized filter size
  std::size_t false_positives = 0;
};

/// Paper's FPR choice: one expected false block-membership per 144 blocks.
[[nodiscard]] double bloom_only_fpr(std::uint64_t n, std::uint64_t m) noexcept;

/// Discrete serialized size of the Bloom-only encoding.
[[nodiscard]] std::size_t bloom_only_bytes(std::uint64_t n, std::uint64_t m) noexcept;

/// Carter et al.'s lower bound for any approximate-membership structure at
/// the same FPR: −n·log2(f) bits, returned in bytes.
[[nodiscard]] double carter_lower_bound_bytes(std::uint64_t n, double fpr) noexcept;

/// Information-theoretic bound to *exactly* describe n-of-m: log2(C(m,n))
/// bits ≈ n log2(m/n), returned in bytes.
[[nodiscard]] double exact_description_bound_bytes(std::uint64_t n, std::uint64_t m) noexcept;

/// End-to-end run against a concrete mempool.
BloomOnlyResult run_bloom_only(const chain::Block& block, const chain::Mempool& mempool,
                               std::uint64_t seed = 0xb100f);

}  // namespace graphene::baselines
