#include "baselines/bloom_only.hpp"

#include <cmath>

#include "bloom/bloom_filter.hpp"
#include "bloom/bloom_math.hpp"

namespace graphene::baselines {

double bloom_only_fpr(std::uint64_t n, std::uint64_t m) noexcept {
  const std::uint64_t diff = m > n ? m - n : 0;
  if (diff == 0) return 1.0;
  return 1.0 / (144.0 * static_cast<double>(diff));
}

std::size_t bloom_only_bytes(std::uint64_t n, std::uint64_t m) noexcept {
  return bloom::serialized_bytes(n, bloom_only_fpr(n, m));
}

double carter_lower_bound_bytes(std::uint64_t n, double fpr) noexcept {
  if (fpr >= 1.0) return 0.0;
  return -static_cast<double>(n) * std::log2(fpr) / 8.0;
}

double exact_description_bound_bytes(std::uint64_t n, std::uint64_t m) noexcept {
  if (n == 0 || m <= n) return 0.0;
  // log2(C(m,n)) via lgamma to avoid overflow.
  const double ln_c = std::lgamma(static_cast<double>(m) + 1.0) -
                      std::lgamma(static_cast<double>(n) + 1.0) -
                      std::lgamma(static_cast<double>(m - n) + 1.0);
  return ln_c / std::log(2.0) / 8.0;
}

BloomOnlyResult run_bloom_only(const chain::Block& block, const chain::Mempool& mempool,
                               std::uint64_t seed) {
  BloomOnlyResult result;
  const std::uint64_t n = block.tx_count();
  const std::uint64_t m = mempool.size();
  const double fpr = bloom_only_fpr(n, m);

  bloom::BloomFilter filter(std::max<std::uint64_t>(n, 1), fpr, seed);
  for (const chain::Transaction& tx : block.transactions()) {
    filter.insert(util::ByteView(tx.id.data(), tx.id.size()));
  }
  result.filter_bytes = filter.serialized_size();

  std::vector<chain::TxId> recovered;
  for (const chain::TxId& id : mempool.ids()) {
    if (filter.contains(util::ByteView(id.data(), id.size()))) recovered.push_back(id);
  }
  result.false_positives = recovered.size() > n ? recovered.size() - n : 0;
  result.success = block.validates(std::move(recovered));
  return result;
}

}  // namespace graphene::baselines
