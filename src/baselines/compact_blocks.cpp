#include "baselines/compact_blocks.hpp"

#include <unordered_map>

#include "graphene/messages.hpp"
#include "util/varint.hpp"

namespace graphene::baselines {

namespace {
constexpr std::size_t kShortIdBytes = 6;
constexpr std::size_t kNonceBytes = 8;
}  // namespace

std::size_t index_bytes(std::uint64_t n) noexcept { return n < 256 ? 1 : 3; }

std::size_t compact_block_encoding_bytes(std::uint64_t n) noexcept {
  return chain::BlockHeader::kWireSize + kNonceBytes + util::varint_size(n) +
         n * kShortIdBytes + util::varint_size(0);
}

CompactBlocksResult run_compact_blocks(const chain::Block& block,
                                       const chain::Mempool& mempool, std::uint64_t nonce,
                                       net::Channel* channel) {
  CompactBlocksResult result;
  const std::uint64_t n = block.tx_count();
  const util::SipHashKey key{nonce, nonce ^ 0xb1b2b3b4c5c6c7c8ULL};

  // cmpctblock: header, nonce, n short IDs (no prefilled beyond coinbase in
  // this model — synthetic blocks carry no coinbase).
  result.cmpctblock_bytes = compact_block_encoding_bytes(n);
  if (channel != nullptr) {
    util::ByteWriter w;
    w.raw(block.header().serialize());
    w.u64(nonce);
    util::write_varint(w, n);
    for (const chain::Transaction& tx : block.transactions()) {
      const std::uint64_t sid = chain::short_id6(key, tx.id);
      for (int i = 0; i < 6; ++i) w.u8(static_cast<std::uint8_t>(sid >> (8 * i)));
    }
    util::write_varint(w, 0);  // no prefilled transactions
    channel->send(net::Direction::kSenderToReceiver,
                  net::Message{net::MessageType::kCompactBlock, w.take()});
  }

  // Receiver: match mempool short IDs against the announced ones.
  std::unordered_map<std::uint64_t, std::uint32_t> mempool_sids;  // sid → count
  for (const chain::TxId& id : mempool.ids()) {
    mempool_sids[chain::short_id6(key, id)] += 1;
  }

  std::vector<std::uint64_t> missing_indexes;
  std::uint64_t index = 0;
  for (const chain::Transaction& tx : block.transactions()) {
    const auto it = mempool_sids.find(chain::short_id6(key, tx.id));
    if (it == mempool_sids.end()) {
      missing_indexes.push_back(index);
    } else if (it->second > 1) {
      // BIP-152: a collision inside the mempool is unresolvable from the
      // short ID alone; the receiver requests that index too.
      missing_indexes.push_back(index);
      result.shortid_collision = true;
    }
    ++index;
  }

  result.missing_count = missing_indexes.size();
  if (!missing_indexes.empty()) {
    result.needed_roundtrip = true;
    result.getblocktxn_bytes = util::varint_size(missing_indexes.size()) +
                               missing_indexes.size() * index_bytes(n);
    std::size_t txn_bytes = 0;
    for (const std::uint64_t i : missing_indexes) {
      txn_bytes += core::full_tx_wire_size(block.transactions()[i]);
    }
    result.blocktxn_bytes = txn_bytes;
    if (channel != nullptr) {
      util::ByteWriter req;
      util::write_varint(req, missing_indexes.size());
      for (const std::uint64_t i : missing_indexes) {
        for (std::size_t b = 0; b < index_bytes(n); ++b) {
          req.u8(static_cast<std::uint8_t>(i >> (8 * b)));
        }
      }
      channel->send(net::Direction::kReceiverToSender,
                    net::Message{net::MessageType::kGetBlockTxn, req.take()});
      util::ByteWriter resp;
      for (const std::uint64_t i : missing_indexes) {
        core::write_full_tx(resp, block.transactions()[i]);
      }
      channel->send(net::Direction::kSenderToReceiver,
                    net::Message{net::MessageType::kBlockTxn, resp.take()});
    }
  }

  result.success = true;
  return result;
}

}  // namespace graphene::baselines
