// Xtreme Thinblocks (BUIP010) baseline (§2.2).
//
// The receiver's getdata carries a Bloom filter of her whole mempool; the
// sender answers with every block transaction's 8-byte short ID plus, in
// full, any transaction that does not pass the receiver's filter. XThin
// never needs a second roundtrip, but its cost scales with the mempool.
//
// Fig. 12 compares Graphene against "XThin*": XThin with the receiver's
// Bloom filter cost excluded; both variants are reported here.
#pragma once

#include "chain/block.hpp"
#include "chain/mempool.hpp"
#include "net/channel.hpp"

namespace graphene::baselines {

struct XthinConfig {
  /// FPR of the receiver's mempool filter (BU uses ~0.1%).
  double mempool_filter_fpr = 0.001;
  std::uint64_t filter_seed = 0x7174bdf3;
};

struct XthinResult {
  bool success = false;
  std::size_t getdata_filter_bytes = 0;  ///< receiver's mempool Bloom filter
  std::size_t shortid_bytes = 0;         ///< 8 bytes per block transaction
  std::size_t pushed_txn_bytes = 0;      ///< transactions pushed proactively
  std::size_t pushed_txn_count = 0;
  /// A mempool transaction falsely passed the filter while the real block
  /// transaction was absent — the failure mode §6.1 discusses.
  bool unrecoverable_collision = false;

  /// Full XThin encoding cost (excluding pushed transaction bytes).
  [[nodiscard]] std::size_t encoding_bytes() const noexcept {
    return getdata_filter_bytes + shortid_bytes;
  }
  /// XThin* (Fig. 12): the receiver-filter cost removed.
  [[nodiscard]] std::size_t encoding_bytes_xthin_star() const noexcept {
    return shortid_bytes;
  }
};

XthinResult run_xthin(const chain::Block& block, const chain::Mempool& mempool,
                      const XthinConfig& cfg = {}, net::Channel* channel = nullptr);

}  // namespace graphene::baselines
