#include "baselines/xthin.hpp"

#include <unordered_set>

#include "bloom/bloom_filter.hpp"
#include "graphene/messages.hpp"
#include "util/varint.hpp"

namespace graphene::baselines {

XthinResult run_xthin(const chain::Block& block, const chain::Mempool& mempool,
                      const XthinConfig& cfg, net::Channel* channel) {
  XthinResult result;
  const std::uint64_t m = mempool.size();

  // Receiver → sender: Bloom filter over the mempool.
  bloom::BloomFilter filter(std::max<std::uint64_t>(m, 1), cfg.mempool_filter_fpr,
                            cfg.filter_seed);
  for (const chain::TxId& id : mempool.ids()) {
    filter.insert(util::ByteView(id.data(), id.size()));
  }
  result.getdata_filter_bytes = filter.serialized_size();
  if (channel != nullptr) {
    channel->send(net::Direction::kReceiverToSender,
                  net::Message{net::MessageType::kXthinGetData, filter.serialize()});
  }

  // Sender → receiver: 8-byte IDs for every block txn + full transactions
  // for those failing the filter.
  util::ByteWriter w;
  w.raw(block.header().serialize());
  util::write_varint(w, block.tx_count());
  std::vector<const chain::Transaction*> pushed;
  for (const chain::Transaction& tx : block.transactions()) {
    w.u64(chain::short_id(tx.id));
    if (!filter.contains(util::ByteView(tx.id.data(), tx.id.size()))) {
      pushed.push_back(&tx);
    }
  }
  result.shortid_bytes = chain::BlockHeader::kWireSize +
                         util::varint_size(block.tx_count()) + 8 * block.tx_count();
  util::write_varint(w, pushed.size());
  for (const chain::Transaction* tx : pushed) {
    core::write_full_tx(w, *tx);
    result.pushed_txn_bytes += core::full_tx_wire_size(*tx);
  }
  result.pushed_txn_count = pushed.size();
  if (channel != nullptr) {
    channel->send(net::Direction::kSenderToReceiver,
                  net::Message{net::MessageType::kXthinBlock, w.take()});
  }

  // Receiver-side reconstruction check: every non-pushed block transaction
  // must be resolvable from the mempool by its 8-byte short ID.
  std::unordered_set<std::uint64_t> mempool_sids;
  bool collision = false;
  for (const chain::TxId& id : mempool.ids()) {
    if (!mempool_sids.insert(chain::short_id(id)).second) collision = true;
  }
  std::unordered_set<std::uint64_t> pushed_sids;
  for (const chain::Transaction* tx : pushed) pushed_sids.insert(chain::short_id(tx->id));

  bool ok = true;
  for (const chain::Transaction& tx : block.transactions()) {
    const std::uint64_t sid = chain::short_id(tx.id);
    if (pushed_sids.count(sid) > 0) continue;
    if (mempool.contains(tx.id)) continue;
    // The filter matched a transaction the receiver does not actually have.
    ok = false;
  }
  result.unrecoverable_collision = !ok || collision;
  result.success = ok;
  return result;
}

}  // namespace graphene::baselines
