// Structured run traces: one TraceSpan per protocol stage, collected by a
// TraceSink and exported as JSON Lines.
//
// A span records the stage name, when it started, how long it took, and a
// flat set of numeric attributes (sizing inputs, decode outcomes, byte
// counts). The per-run span sequence is the primary diagnostic artifact:
// a failed IBLT decode can be correlated with the Theorem-1 inputs that
// sized it by reading the preceding `p1_optimize` span of the same run.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace graphene::obs {

/// One protocol stage. Attribute keys must not collide with the reserved
/// top-level keys ("seq", "stage", "start_ns", "dur_ns").
struct TraceSpan {
  std::uint64_t seq = 0;  ///< assigned by the sink; total order per sink
  std::string stage;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::vector<std::pair<std::string, double>> attrs;

  /// Attribute lookup; NaN-free telemetry means 0.0 is the safe default.
  [[nodiscard]] double attr(std::string_view key, double fallback = 0.0) const noexcept;

  /// Compact single-line JSON object with attributes flattened in.
  [[nodiscard]] std::string to_json() const;
};

/// Thread-safe append-only collection of spans.
class TraceSink {
 public:
  void record(TraceSpan span) EXCLUDES(mu_);

  [[nodiscard]] std::vector<TraceSpan> spans() const EXCLUDES(mu_);
  /// Stage names in record order — what the integration tests assert on.
  [[nodiscard]] std::vector<std::string> stages() const EXCLUDES(mu_);
  /// First span with the given stage name, if any.
  [[nodiscard]] bool find(std::string_view stage, TraceSpan* out = nullptr) const
      EXCLUDES(mu_);
  [[nodiscard]] std::size_t size() const EXCLUDES(mu_);

  /// One JSON object per line, in record order.
  void write_jsonl(std::ostream& out) const EXCLUDES(mu_);

  void clear() EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::vector<TraceSpan> spans_ GUARDED_BY(mu_);
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 0;
};

}  // namespace graphene::obs
