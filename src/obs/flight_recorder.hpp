// Protocol flight recorder: a bounded ring buffer of structured protocol
// events, the raw material for post-mortem forensics.
//
// Trace spans (obs/trace.hpp) answer "how long did each stage take"; flight
// events answer "what exactly crossed the wire and what did the decoder do
// with it". Each event carries a kind (message sent/received, decode
// outcome, error, note), a label (wire command or stage), flat numeric
// attributes (component byte breakdowns, sizing params, peel progress), and
// — for message events — the raw wire bytes, so a failed session can be
// dumped as a self-contained, replayable forensic capture
// (src/graphene/forensics.hpp).
//
// The recorder lives on the Registry (Registry::recorder()), so it rides the
// existing ProtocolConfig::obs opt-in: a null registry costs one branch, and
// GRAPHENE_OBS_ENABLED=0 compiles record() to a no-op. The ring is bounded
// (default 256 events) so a long-lived session cannot grow without limit;
// overwritten events are counted in dropped().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

#ifndef GRAPHENE_OBS_ENABLED
#define GRAPHENE_OBS_ENABLED 1
#endif

namespace graphene::obs {

namespace json {
class Value;
}  // namespace json

enum class FlightEventKind : std::uint8_t {
  kMsgSent,      ///< this side produced a wire message
  kMsgReceived,  ///< this side consumed a wire message
  kDecode,       ///< an IBLT decode attempt finished (success or not)
  kError,        ///< a ProtocolError was raised
  kNote,         ///< anything else worth a timeline entry (repair trigger, abort)
};

[[nodiscard]] const char* to_string(FlightEventKind kind) noexcept;
/// Inverse of to_string; false when `s` names no kind.
[[nodiscard]] bool kind_from_string(std::string_view s, FlightEventKind* out) noexcept;

/// One protocol event. Attribute keys must not collide with the reserved
/// top-level JSON keys ("seq", "t_ns", "kind", "label", "wire_b64").
struct FlightEvent {
  std::uint64_t seq = 0;  ///< assigned by the recorder; total order per recorder
  std::uint64_t t_ns = 0; ///< obs::monotonic_ns() at record time
  FlightEventKind kind = FlightEventKind::kNote;
  std::string label;      ///< wire command ("grblk") or stage ("p1")
  std::vector<std::pair<std::string, double>> attrs;
  util::Bytes wire;       ///< raw message bytes; empty for non-message events

  [[nodiscard]] double attr(std::string_view key, double fallback = 0.0) const noexcept;

  /// Compact single-line JSON object; wire bytes as base64 under "wire_b64"
  /// (omitted when empty).
  [[nodiscard]] std::string to_json() const;
  /// Strict inverse of to_json; throws json::ParseError / DeserializeError
  /// on schema violations.
  [[nodiscard]] static FlightEvent from_json(const json::Value& doc);
};

/// Thread-safe bounded ring of FlightEvents. Oldest events are overwritten
/// once `capacity()` is reached; sequence numbers keep counting, so
/// dropped() = total_recorded() - size().
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event (stamps seq and t_ns). No-op when the recorder is
  /// disabled or GRAPHENE_OBS_ENABLED=0.
  void record(FlightEvent event) EXCLUDES(mu_);

  /// Events currently held, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const EXCLUDES(mu_);
  [[nodiscard]] std::size_t size() const EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t total_recorded() const EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t dropped() const EXCLUDES(mu_);

  [[nodiscard]] std::size_t capacity() const EXCLUDES(mu_);
  /// Re-bounds the ring; keeps the newest events when shrinking.
  void set_capacity(std::size_t capacity) EXCLUDES(mu_);

  /// Runtime kill switch (default on): lets a benchmark or a high-traffic
  /// deployment keep the Registry's metrics while skipping event capture.
  void set_enabled(bool enabled) EXCLUDES(mu_);
  [[nodiscard]] bool enabled() const EXCLUDES(mu_);

  /// Skips storing wire bytes (attrs and outcomes still recorded) — trades
  /// replayability for memory on hot paths.
  void set_wire_capture(bool capture) EXCLUDES(mu_);
  [[nodiscard]] bool wire_capture() const EXCLUDES(mu_);

  void clear() EXCLUDES(mu_);

  /// {"capacity":N,"recorded":N,"dropped":N,"events":[...]} — events as in
  /// FlightEvent::to_json.
  [[nodiscard]] std::string to_json() const EXCLUDES(mu_);

 private:
  /// Rotates ring_ so the oldest event sits at index 0 (head_ becomes 0).
  void normalize_locked() REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::vector<FlightEvent> ring_ GUARDED_BY(mu_);  // circular; oldest at head_
  std::size_t head_ GUARDED_BY(mu_) = 0;
  std::size_t capacity_ GUARDED_BY(mu_);
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  bool enabled_ GUARDED_BY(mu_) = true;
  bool wire_capture_ GUARDED_BY(mu_) = true;
};

}  // namespace graphene::obs
