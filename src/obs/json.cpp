#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>

namespace graphene::obs::json {

void escape_to(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void number_to(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Exact integers (the common case: counters, byte sizes, nanoseconds) are
  // emitted without a fractional part so they round-trip as written.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::Type::kBool;
    v.boolean = b;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (telemetry output never emits
          // surrogate pairs; reject them rather than mis-decode).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate pairs unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Value v;
    v.type = Value::Type::kNumber;
    const std::string_view slice = text_.substr(start, pos_ - start);
    const auto [end, ec] =
        std::from_chars(slice.data(), slice.data() + slice.size(), v.number);
    if (ec != std::errc{} || end != slice.data() + slice.size()) fail("invalid number");
    return v;
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

void Writer::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void Writer::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
}

void Writer::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
}

void Writer::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
}

void Writer::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
}

void Writer::key(std::string_view k) {
  comma();
  out_ += '"';
  escape_to(out_, k);
  out_ += "\":";
  after_key_ = true;
}

void Writer::string(std::string_view v) {
  comma();
  out_ += '"';
  escape_to(out_, v);
  out_ += '"';
}

void Writer::number(double v) {
  comma();
  number_to(out_, v);
}

void Writer::number(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
}

void Writer::boolean(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void Writer::null() {
  comma();
  out_ += "null";
}

}  // namespace graphene::obs::json
