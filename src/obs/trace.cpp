#include "obs/trace.hpp"

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/sync.hpp"

namespace graphene::obs {

double TraceSpan::attr(std::string_view key, double fallback) const noexcept {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return fallback;
}

std::string TraceSpan::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("seq");
  w.number(seq);
  w.key("stage");
  w.string(stage);
  w.key("start_ns");
  w.number(start_ns);
  w.key("dur_ns");
  w.number(dur_ns);
  for (const auto& [k, v] : attrs) {
    w.key(k);
    w.number(v);
  }
  w.end_object();
  return w.take();
}

void TraceSink::record(TraceSpan span) {
  const util::MutexLock lock(mu_);
  span.seq = next_seq_++;
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> TraceSink::spans() const {
  const util::MutexLock lock(mu_);
  return spans_;
}

std::vector<std::string> TraceSink::stages() const {
  const util::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(spans_.size());
  for (const TraceSpan& s : spans_) out.push_back(s.stage);
  return out;
}

bool TraceSink::find(std::string_view stage, TraceSpan* out) const {
  const util::MutexLock lock(mu_);
  for (const TraceSpan& s : spans_) {
    if (s.stage == stage) {
      if (out != nullptr) *out = s;
      return true;
    }
  }
  return false;
}

std::size_t TraceSink::size() const {
  const util::MutexLock lock(mu_);
  return spans_.size();
}

void TraceSink::write_jsonl(std::ostream& out) const {
  const util::MutexLock lock(mu_);
  for (const TraceSpan& s : spans_) out << s.to_json() << '\n';
}

void TraceSink::clear() {
  const util::MutexLock lock(mu_);
  spans_.clear();
  next_seq_ = 0;
}

}  // namespace graphene::obs
