// Monotonic clock shared by timers and trace spans.
#pragma once

#include <chrono>
#include <cstdint>

namespace graphene::obs {

/// Nanoseconds on the process-wide monotonic clock. The absolute value is
/// only meaningful relative to other calls in the same process.
[[nodiscard]] inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace graphene::obs
