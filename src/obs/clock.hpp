// Monotonic clock shared by timers and trace spans.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace graphene::obs {

namespace detail {
/// Fake-clock override: kNoFakeClock means "use the real clock". A single
/// atomic keeps reads lock-free and race-free under TSan.
inline constexpr std::uint64_t kNoFakeClock = ~std::uint64_t{0};
inline std::atomic<std::uint64_t>& fake_clock_ns() noexcept {
  static std::atomic<std::uint64_t> value{kNoFakeClock};
  return value;
}
}  // namespace detail

/// Nanoseconds on the process-wide monotonic clock. The absolute value is
/// only meaningful relative to other calls in the same process. While a
/// ScopedFakeClock is alive, returns the fake time instead — tests that
/// assert on durations must use it; asserting on real elapsed time is the
/// classic flake (see docs/TESTING.md).
[[nodiscard]] inline std::uint64_t monotonic_ns() noexcept {
  const std::uint64_t fake = detail::fake_clock_ns().load(std::memory_order_relaxed);
  if (fake != detail::kNoFakeClock) return fake;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII fake clock for deterministic timing tests: while alive, monotonic_ns()
/// returns exactly the value last set via advance()/set(). Not reentrant —
/// one per process at a time (tests run timers single-threaded; the atomic
/// only guards against background threads *reading* the clock).
class ScopedFakeClock {
 public:
  explicit ScopedFakeClock(std::uint64_t start_ns = 1) noexcept {
    detail::fake_clock_ns().store(start_ns, std::memory_order_relaxed);
  }
  ~ScopedFakeClock() {
    detail::fake_clock_ns().store(detail::kNoFakeClock, std::memory_order_relaxed);
  }
  ScopedFakeClock(const ScopedFakeClock&) = delete;
  ScopedFakeClock& operator=(const ScopedFakeClock&) = delete;

  void set(std::uint64_t now_ns) noexcept {
    detail::fake_clock_ns().store(now_ns, std::memory_order_relaxed);
  }
  void advance(std::uint64_t delta_ns) noexcept {
    detail::fake_clock_ns().fetch_add(delta_ns, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t now() const noexcept {
    return detail::fake_clock_ns().load(std::memory_order_relaxed);
  }
};

}  // namespace graphene::obs
