#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

#include "obs/json.hpp"

namespace graphene::obs {

void Histogram::observe(std::uint64_t v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

std::size_t Histogram::bucket_index(std::uint64_t v) noexcept {
  return v == 0 ? 0 : static_cast<std::size_t>(64 - std::countl_zero(v));
}

std::uint64_t Histogram::bucket_upper(std::size_t i) noexcept {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << i) - 1;
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return std::min(bucket_upper(i), max());
  }
  return max();
}

Registry::Key Registry::make_key(std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return Key{std::string(name), std::move(labels)};
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[make_key(name, labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[make_key(name, labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[make_key(name, labels)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* Registry::find_counter(std::string_view name, const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(make_key(name, labels));
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(std::string_view name, const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(make_key(name, labels));
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(std::string_view name,
                                          const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(make_key(name, labels));
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

void write_key_header(json::Writer& w, const Registry* /*tag*/, const std::string& name,
                      const Labels& labels) {
  w.key("name");
  w.string(name);
  w.key("labels");
  w.begin_object();
  for (const auto& [k, v] : labels) {
    w.key(k);
    w.string(v);
  }
  w.end_object();
}

}  // namespace

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  json::Writer w;
  w.begin_object();

  w.key("counters");
  w.begin_array();
  for (const auto& [key, c] : counters_) {
    w.begin_object();
    write_key_header(w, this, key.name, key.labels);
    w.key("value");
    w.number(c->value());
    w.end_object();
  }
  w.end_array();

  w.key("gauges");
  w.begin_array();
  for (const auto& [key, g] : gauges_) {
    w.begin_object();
    write_key_header(w, this, key.name, key.labels);
    w.key("value");
    w.number(g->value());
    w.end_object();
  }
  w.end_array();

  w.key("histograms");
  w.begin_array();
  for (const auto& [key, h] : histograms_) {
    w.begin_object();
    write_key_header(w, this, key.name, key.labels);
    w.key("count");
    w.number(h->count());
    w.key("sum");
    w.number(h->sum());
    w.key("min");
    w.number(h->min());
    w.key("max");
    w.number(h->max());
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      w.begin_object();
      w.key("le");
      w.number(Histogram::bucket_upper(i));
      w.key("count");
      w.number(n);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.take();
}

void Registry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  trace_.clear();
}

}  // namespace graphene::obs
