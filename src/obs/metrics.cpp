#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "obs/json.hpp"
#include "util/sync.hpp"

namespace graphene::obs {

void Histogram::observe(std::uint64_t v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

std::size_t Histogram::bucket_index(std::uint64_t v) noexcept {
  return v == 0 ? 0 : static_cast<std::size_t>(64 - std::countl_zero(v));
}

std::uint64_t Histogram::bucket_upper(std::size_t i) noexcept {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << i) - 1;
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return std::min(bucket_upper(i), max());
  }
  return max();
}

Registry::Key Registry::make_key(std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return Key{std::string(name), std::move(labels)};
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  const util::MutexLock lock(mu_);
  auto& slot = counters_[make_key(name, labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  const util::MutexLock lock(mu_);
  auto& slot = gauges_[make_key(name, labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels) {
  const util::MutexLock lock(mu_);
  auto& slot = histograms_[make_key(name, labels)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* Registry::find_counter(std::string_view name, const Labels& labels) const {
  const util::MutexLock lock(mu_);
  const auto it = counters_.find(make_key(name, labels));
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(std::string_view name, const Labels& labels) const {
  const util::MutexLock lock(mu_);
  const auto it = gauges_.find(make_key(name, labels));
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(std::string_view name,
                                          const Labels& labels) const {
  const util::MutexLock lock(mu_);
  const auto it = histograms_.find(make_key(name, labels));
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

void write_key_header(json::Writer& w, const Registry* /*tag*/, const std::string& name,
                      const Labels& labels) {
  w.key("name");
  w.string(name);
  w.key("labels");
  w.begin_object();
  for (const auto& [k, v] : labels) {
    w.key(k);
    w.string(v);
  }
  w.end_object();
}

}  // namespace

std::string Registry::to_json() const {
  const util::MutexLock lock(mu_);
  json::Writer w;
  w.begin_object();

  w.key("counters");
  w.begin_array();
  for (const auto& [key, c] : counters_) {
    w.begin_object();
    write_key_header(w, this, key.name, key.labels);
    w.key("value");
    w.number(c->value());
    w.end_object();
  }
  w.end_array();

  w.key("gauges");
  w.begin_array();
  for (const auto& [key, g] : gauges_) {
    w.begin_object();
    write_key_header(w, this, key.name, key.labels);
    w.key("value");
    w.number(g->value());
    w.end_object();
  }
  w.end_array();

  w.key("histograms");
  w.begin_array();
  for (const auto& [key, h] : histograms_) {
    w.begin_object();
    write_key_header(w, this, key.name, key.labels);
    w.key("count");
    w.number(h->count());
    w.key("sum");
    w.number(h->sum());
    w.key("min");
    w.number(h->min());
    w.key("max");
    w.number(h->max());
    w.key("mean");
    w.number(h->mean());
    w.key("p50");
    w.number(h->quantile(0.50));
    w.key("p95");
    w.number(h->quantile(0.95));
    w.key("p99");
    w.number(h->quantile(0.99));
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      w.begin_object();
      w.key("le");
      w.number(Histogram::bucket_upper(i));
      w.key("count");
      w.number(n);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.take();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; anything else becomes '_'.
void prom_name_to(std::string& out, const std::string& name) {
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
}

// Label values escape backslash, double-quote, and newline per the text
// exposition format.
void prom_label_value_to(std::string& out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
}

void prom_labels_to(std::string& out, const Labels& labels,
                    const char* extra_key = nullptr, const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    prom_name_to(out, k);
    out += "=\"";
    prom_label_value_to(out, v);
    out.push_back('"');
  }
  if (extra_key != nullptr) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    prom_label_value_to(out, *extra_value);
    out.push_back('"');
  }
  out.push_back('}');
}

void prom_number_to(std::string& out, double v) {
  json::number_to(out, v);  // integral-friendly formatting suits both formats
}

// Emits one `# TYPE` header per family name (the map is sorted by name, so
// equal names are adjacent).
void prom_type_header(std::string& out, std::string& last_name, const std::string& name,
                      const char* type) {
  if (name == last_name) return;
  last_name = name;
  out += "# TYPE ";
  prom_name_to(out, name);
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

}  // namespace

std::string Registry::to_prometheus() const {
  const util::MutexLock lock(mu_);
  std::string out;
  std::string last_name;

  for (const auto& [key, c] : counters_) {
    prom_type_header(out, last_name, key.name, "counter");
    prom_name_to(out, key.name);
    prom_labels_to(out, key.labels);
    out.push_back(' ');
    prom_number_to(out, static_cast<double>(c->value()));
    out.push_back('\n');
  }

  last_name.clear();
  for (const auto& [key, g] : gauges_) {
    prom_type_header(out, last_name, key.name, "gauge");
    prom_name_to(out, key.name);
    prom_labels_to(out, key.labels);
    out.push_back(' ');
    prom_number_to(out, g->value());
    out.push_back('\n');
  }

  last_name.clear();
  for (const auto& [key, h] : histograms_) {
    prom_type_header(out, last_name, key.name, "histogram");
    // Cumulative buckets; empty buckets elided except the mandatory +Inf.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      cumulative += n;
      std::string le;
      json::number_to(le, static_cast<double>(Histogram::bucket_upper(i)));
      prom_name_to(out, key.name);
      out += "_bucket";
      prom_labels_to(out, key.labels, "le", &le);
      out.push_back(' ');
      prom_number_to(out, static_cast<double>(cumulative));
      out.push_back('\n');
    }
    const std::string inf = "+Inf";
    prom_name_to(out, key.name);
    out += "_bucket";
    prom_labels_to(out, key.labels, "le", &inf);
    out.push_back(' ');
    prom_number_to(out, static_cast<double>(h->count()));
    out.push_back('\n');
    prom_name_to(out, key.name);
    out += "_sum";
    prom_labels_to(out, key.labels);
    out.push_back(' ');
    prom_number_to(out, static_cast<double>(h->sum()));
    out.push_back('\n');
    prom_name_to(out, key.name);
    out += "_count";
    prom_labels_to(out, key.labels);
    out.push_back(' ');
    prom_number_to(out, static_cast<double>(h->count()));
    out.push_back('\n');
  }

  return out;
}

void Registry::clear() {
  const util::MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  trace_.clear();
  recorder_.clear();
}

}  // namespace graphene::obs
