// Umbrella header for the telemetry subsystem, plus ScopedSpan — the one
// primitive protocol code uses to instrument a stage.
//
// Instrumentation contract:
//   * every engine takes an optional `obs::Registry*` (via ProtocolConfig or
//     a setter); nullptr means telemetry is off and costs one branch;
//   * building with -DGRAPHENE_OBS=OFF (GRAPHENE_OBS_ENABLED=0) compiles the
//     instrumentation bodies out entirely, for overhead-proof builds;
//   * each protocol stage opens a ScopedSpan which (a) appends a TraceSpan
//     to the registry's TraceSink and (b) feeds the `graphene_stage_ns`
//     histogram family labeled by stage.
//
// Stage names emitted by the pipeline, in protocol order:
//   p1_optimize, sfilter_build, iblt_build   (Sender::encode)
//   p1_candidates, p1_peel                   (ReceiveSession::receive_block)
//   thm_bounds, rfilter_build                (ReceiveSession::build_request)
//   p2_serve, p2_fallback                    (Sender::serve)
//   p2_peel, pingpong                        (ReceiveSession::complete)
//   repair                                   (ReceiveSession::complete_repair)
//   error                                    (diagnostic context on throws)
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace graphene::obs {

#if GRAPHENE_OBS_ENABLED

/// RAII protocol-stage recorder. With a null registry every member is a
/// cheap early-out; with GRAPHENE_OBS_ENABLED=0 the class itself becomes an
/// empty shell (below) and the optimizer deletes the call sites.
class ScopedSpan {
 public:
  ScopedSpan(Registry* reg, std::string_view stage) : reg_(reg) {
    if (reg_ == nullptr) return;
    span_.stage = stage;
    span_.start_ns = monotonic_ns();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric attribute (sizing input, outcome, byte count).
  template <typename T>
  void attr(std::string_view key, T value) {
    if (reg_ == nullptr) return;
    span_.attrs.emplace_back(std::string(key), static_cast<double>(value));
  }

  [[nodiscard]] bool enabled() const noexcept { return reg_ != nullptr; }
  [[nodiscard]] Registry* registry() const noexcept { return reg_; }

  ~ScopedSpan() {
    if (reg_ == nullptr) return;
    span_.dur_ns = monotonic_ns() - span_.start_ns;
    reg_->histogram("graphene_stage_ns", {{"stage", span_.stage}})
        .observe(span_.dur_ns);
    reg_->trace().record(std::move(span_));
  }

 private:
  Registry* reg_;
  TraceSpan span_;
};

#else  // GRAPHENE_OBS_ENABLED == 0: instrumentation compiles to nothing.

class ScopedSpan {
 public:
  ScopedSpan(Registry*, std::string_view) noexcept {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  template <typename T>
  void attr(std::string_view, T) noexcept {}
  [[nodiscard]] bool enabled() const noexcept { return false; }
  [[nodiscard]] Registry* registry() const noexcept { return nullptr; }
};

#endif  // GRAPHENE_OBS_ENABLED

/// Gate for manual instrumentation blocks: returns the registry when
/// telemetry is compiled in, a constant nullptr (letting the optimizer drop
/// the block) when it is not. Call sites write
///   if (obs::Registry* reg = obs::enabled(cfg.obs)) { ... }
[[nodiscard]] inline Registry* enabled(Registry* reg) noexcept {
#if GRAPHENE_OBS_ENABLED
  return reg;
#else
  (void)reg;
  return nullptr;
#endif
}

/// Gate for flight-event blocks: the registry's recorder when telemetry is
/// compiled in and the recorder is runtime-enabled, else a constant nullptr
/// so the optimizer drops the block (including any msg.serialize() cost).
/// Call sites write
///   if (obs::FlightRecorder* fr = obs::flight(reg)) { ... fr->record(...); }
[[nodiscard]] inline FlightRecorder* flight(Registry* reg) {
#if GRAPHENE_OBS_ENABLED
  if (reg == nullptr) return nullptr;
  FlightRecorder& rec = reg->recorder();
  return rec.enabled() ? &rec : nullptr;
#else
  (void)reg;
  return nullptr;
#endif
}

}  // namespace graphene::obs

