// Minimal JSON writer/parser for telemetry export.
//
// The telemetry layer emits machine-readable snapshots (`Registry::to_json`)
// and per-run trace lines (`runs.jsonl`); this header provides the small
// amount of JSON plumbing that requires — escaping, a streaming writer, and
// a strict recursive-descent parser used by tests and tools to round-trip
// the exports. Deliberately zero-dependency (no third-party JSON library).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace graphene::obs::json {

/// Appends `s` to `out` with JSON string escaping (quotes not included).
void escape_to(std::string& out, std::string_view s);

/// Formats a double the way JSON expects: integral values without a trailing
/// ".0" explosion, non-finite values as null (JSON has no NaN/Inf).
void number_to(std::string& out, double v);

/// Parsed JSON value (strict subset: no comments, no trailing commas).
class Value {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_null() const noexcept { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type == Type::kObject; }

  /// Object member access; throws std::out_of_range when absent.
  [[nodiscard]] const Value& at(const std::string& key) const { return object.at(key); }
  [[nodiscard]] bool contains(const std::string& key) const {
    return object.find(key) != object.end();
  }
};

struct ParseError : std::runtime_error {
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses one complete JSON document; throws ParseError on malformed input
/// or trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

/// Incremental writer producing compact (no-whitespace) JSON. Usage:
///
///   Writer w;
///   w.begin_object();
///   w.key("stage"); w.string("encode");
///   w.key("ns"); w.number(123);
///   w.end_object();
///   std::string line = w.take();
class Writer {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);
  void string(std::string_view v);
  void number(double v);
  void number(std::uint64_t v);
  void boolean(bool v);
  void null();

  [[nodiscard]] std::string take() { return std::move(out_); }
  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void comma();

  std::string out_;
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace graphene::obs::json
