// RAII scope timer feeding a (nanosecond) Histogram.
#pragma once

#include <cstdint>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace graphene::obs {

/// Records the enclosing scope's wall time into a Histogram (in ns) on
/// destruction. A null histogram makes the timer a no-op — instrumented code
/// passes `reg ? &reg->histogram(...) : nullptr` and pays one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) noexcept
      : h_(h), start_(h != nullptr ? monotonic_ns() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (h_ != nullptr) h_->observe(monotonic_ns() - start_);
  }

  /// Elapsed time so far; 0 for the disabled timer.
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return h_ != nullptr ? monotonic_ns() - start_ : 0;
  }

 private:
  Histogram* h_;
  std::uint64_t start_;
};

}  // namespace graphene::obs
