#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "util/base64.hpp"
#include "util/sync.hpp"

namespace graphene::obs {

const char* to_string(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kMsgSent:
      return "msg_sent";
    case FlightEventKind::kMsgReceived:
      return "msg_received";
    case FlightEventKind::kDecode:
      return "decode";
    case FlightEventKind::kError:
      return "error";
    case FlightEventKind::kNote:
      return "note";
  }
  return "note";
}

bool kind_from_string(std::string_view s, FlightEventKind* out) noexcept {
  for (const auto kind :
       {FlightEventKind::kMsgSent, FlightEventKind::kMsgReceived, FlightEventKind::kDecode,
        FlightEventKind::kError, FlightEventKind::kNote}) {
    if (s == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

double FlightEvent::attr(std::string_view key, double fallback) const noexcept {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return fallback;
}

std::string FlightEvent::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("seq");
  w.number(seq);
  w.key("t_ns");
  w.number(t_ns);
  w.key("kind");
  w.string(to_string(kind));
  w.key("label");
  w.string(label);
  if (!attrs.empty()) {
    w.key("attrs");
    w.begin_object();
    for (const auto& [k, v] : attrs) {
      w.key(k);
      w.number(v);
    }
    w.end_object();
  }
  if (!wire.empty()) {
    w.key("wire_b64");
    w.string(util::base64_encode(wire));
  }
  w.end_object();
  return w.take();
}

FlightEvent FlightEvent::from_json(const json::Value& doc) {
  if (!doc.is_object()) throw json::ParseError("flight event: expected object");
  FlightEvent e;
  e.seq = static_cast<std::uint64_t>(doc.at("seq").number);
  e.t_ns = static_cast<std::uint64_t>(doc.at("t_ns").number);
  if (!kind_from_string(doc.at("kind").string, &e.kind)) {
    throw json::ParseError("flight event: unknown kind \"" + doc.at("kind").string + "\"");
  }
  e.label = doc.at("label").string;
  if (doc.contains("attrs")) {
    const json::Value& attrs = doc.at("attrs");
    if (!attrs.is_object()) throw json::ParseError("flight event: attrs must be an object");
    e.attrs.reserve(attrs.object.size());
    for (const auto& [k, v] : attrs.object) {
      if (!v.is_number()) throw json::ParseError("flight event: attr values must be numbers");
      e.attrs.emplace_back(k, v.number);
    }
  }
  if (doc.contains("wire_b64")) {
    e.wire = util::base64_decode(doc.at("wire_b64").string);
  }
  return e;
}

void FlightRecorder::record(FlightEvent event) {
#if GRAPHENE_OBS_ENABLED
  const std::uint64_t now = monotonic_ns();
  const util::MutexLock lock(mu_);
  if (!enabled_) return;
  event.seq = next_seq_++;
  event.t_ns = now;
  if (!wire_capture_) event.wire.clear();
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    // Overwrite the oldest slot in place. Readers pay the head-index
    // bookkeeping instead of this hot path paying an O(capacity) rotate —
    // every protocol message lands here, readers run once per dump.
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % ring_.size();
  }
#else
  (void)event;
#endif
}

std::vector<FlightEvent> FlightRecorder::events() const {
  const util::MutexLock lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t FlightRecorder::size() const {
  const util::MutexLock lock(mu_);
  return ring_.size();
}

std::uint64_t FlightRecorder::total_recorded() const {
  const util::MutexLock lock(mu_);
  return next_seq_;
}

std::uint64_t FlightRecorder::dropped() const {
  const util::MutexLock lock(mu_);
  return next_seq_ - ring_.size();
}

std::size_t FlightRecorder::capacity() const {
  const util::MutexLock lock(mu_);
  return capacity_;
}

void FlightRecorder::normalize_locked() {
  if (head_ != 0) {
    std::rotate(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
                ring_.end());
    head_ = 0;
  }
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  const util::MutexLock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  // Re-bounding is rare; restore chronological layout so push_back growth
  // and oldest-first truncation both stay simple.
  normalize_locked();
  if (ring_.size() > capacity_) {
    ring_.erase(ring_.begin(),
                ring_.begin() + static_cast<std::ptrdiff_t>(ring_.size() - capacity_));
  }
}

void FlightRecorder::set_enabled(bool enabled) {
  const util::MutexLock lock(mu_);
  enabled_ = enabled;
}

bool FlightRecorder::enabled() const {
  const util::MutexLock lock(mu_);
  return enabled_;
}

void FlightRecorder::set_wire_capture(bool capture) {
  const util::MutexLock lock(mu_);
  wire_capture_ = capture;
}

bool FlightRecorder::wire_capture() const {
  const util::MutexLock lock(mu_);
  return wire_capture_;
}

void FlightRecorder::clear() {
  const util::MutexLock lock(mu_);
  ring_.clear();
  head_ = 0;
  next_seq_ = 0;
}

std::string FlightRecorder::to_json() const {
  std::vector<FlightEvent> snapshot;
  std::size_t capacity;
  std::uint64_t recorded;
  {
    const util::MutexLock lock(mu_);
    snapshot.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      snapshot.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    capacity = capacity_;
    recorded = next_seq_;
  }
  // The events serialize themselves; assemble the envelope by hand since
  // json::Writer has no raw-splice primitive.
  std::string out = "{\"capacity\":";
  json::number_to(out, static_cast<double>(capacity));
  out += ",\"recorded\":";
  json::number_to(out, static_cast<double>(recorded));
  out += ",\"dropped\":";
  json::number_to(out, static_cast<double>(recorded - snapshot.size()));
  out += ",\"events\":[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) out += ',';
    out += snapshot[i].to_json();
  }
  out += "]}";
  return out;
}

}  // namespace graphene::obs
