// Protocol telemetry: counters, gauges, log-bucketed histograms, and a
// thread-safe Registry of labeled metric families.
//
// Design constraints (ROADMAP: "fast as the hardware allows"):
//   * metric updates are lock-free (relaxed atomics) — the Registry mutex is
//     only taken on first lookup of a (name, labels) pair and on export;
//   * instrumented code holds plain pointers, so the disabled path is a
//     single null check (`if (reg) ...`);
//   * a compile-time toggle (GRAPHENE_OBS_ENABLED=0, set by the CMake option
//     GRAPHENE_OBS=OFF) removes instrumentation bodies entirely for builds
//     that must prove zero overhead.
//
// Metric addresses returned by the Registry are stable for its lifetime, so
// hot loops can resolve a family once and update it without further lookups.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

#ifndef GRAPHENE_OBS_ENABLED
#define GRAPHENE_OBS_ENABLED 1
#endif

namespace graphene::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (doubles, to hold rates and sizes).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed histogram over non-negative 64-bit samples — one bucket per
/// power of two, which is the right resolution for both byte sizes and
/// nanosecond timings (bucket i holds samples in [2^(i-1), 2^i), bucket 0
/// holds zero). Updates are relaxed atomics; snapshots are approximate under
/// concurrency but each individual sample is never lost.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;  ///< 0 when empty
  [[nodiscard]] std::uint64_t max() const noexcept;  ///< 0 when empty
  [[nodiscard]] double mean() const noexcept;

  /// Approximate quantile (q in [0, 1]) from the bucket counts; exact for
  /// values that fall on bucket boundaries, otherwise the bucket's upper
  /// bound — an over-estimate by at most 2x, which log-bucketing accepts.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (0, 1, 3, 7, 15, ...).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept;
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Label set attached to a metric family instance, e.g. {{"msg", "grblk"},
/// {"dir", "s2r"}}. Order-insensitive: the Registry canonicalizes by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Thread-safe home for all metrics of one observed scope (typically one
/// simulation run, one node, or one process). Lookup interns the
/// (name, labels) pair under a mutex; returned references stay valid and
/// lock-free for the Registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name, const Labels& labels = {})
      EXCLUDES(mu_);
  [[nodiscard]] Gauge& gauge(std::string_view name, const Labels& labels = {})
      EXCLUDES(mu_);
  [[nodiscard]] Histogram& histogram(std::string_view name, const Labels& labels = {})
      EXCLUDES(mu_);

  /// Looks up an existing metric without creating it; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(std::string_view name,
                                            const Labels& labels = {}) const
      EXCLUDES(mu_);
  [[nodiscard]] const Gauge* find_gauge(std::string_view name,
                                        const Labels& labels = {}) const EXCLUDES(mu_);
  [[nodiscard]] const Histogram* find_histogram(std::string_view name,
                                                const Labels& labels = {}) const
      EXCLUDES(mu_);

  /// Structured per-stage event log for this scope (spans are recorded by
  /// the protocol engines through ScopedSpan).
  [[nodiscard]] TraceSink& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceSink& trace() const noexcept { return trace_; }

  /// Protocol flight recorder for this scope (events are recorded by the
  /// Graphene sender/receiver and reconcile engines; see flight_recorder.hpp).
  [[nodiscard]] FlightRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const noexcept { return recorder_; }

  /// Full snapshot as one JSON object:
  ///   {"counters": [{"name", "labels", "value"}, ...],
  ///    "gauges":   [...],
  ///    "histograms": [{"name", "labels", "count", "sum", "min", "max",
  ///                    "mean", "p50", "p95", "p99",
  ///                    "buckets": [{"le", "count"}, ...]}, ...]}
  /// Zero-count histogram buckets are elided.
  [[nodiscard]] std::string to_json() const EXCLUDES(mu_);

  /// Prometheus text exposition format (version 0.0.4): counters and gauges
  /// as single samples, histograms as cumulative `_bucket{le=...}` series
  /// plus `_sum`/`_count`. Quantile summaries stay in to_json — Prometheus
  /// computes quantiles server-side from the buckets.
  [[nodiscard]] std::string to_prometheus() const EXCLUDES(mu_);

  /// Drops every registered metric (invalidates outstanding references).
  void clear() EXCLUDES(mu_);

 private:
  struct Key {
    std::string name;
    Labels labels;  // sorted by key
    bool operator<(const Key& o) const {
      return name != o.name ? name < o.name : labels < o.labels;
    }
  };
  static Key make_key(std::string_view name, Labels labels);

  mutable util::Mutex mu_;
  // The map values are stable heap cells: references handed out by
  // counter()/gauge()/histogram() stay valid and lock-free (the cells'
  // atomics are their own synchronization), so only the maps are guarded.
  std::map<Key, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
  TraceSink trace_;
  FlightRecorder recorder_;
};

}  // namespace graphene::obs
