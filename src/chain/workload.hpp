// Synthetic workload generation for simulation and benchmarks.
//
// The paper's evaluation (§5.3) is parameterized by (block size n, mempool
// size m, fraction of the block held by the receiver). `make_scenario`
// constructs exactly that: a sender block, a receiver mempool with a chosen
// overlap, and "extra" unrelated transactions. The Ethereum replay (Fig. 13)
// additionally needs a realistic block-size distribution, modeled as a
// clamped log-normal matching mainnet's ~100-tx median with a heavy tail.
#pragma once

#include <cstdint>

#include "chain/block.hpp"
#include "chain/mempool.hpp"
#include "util/random.hpp"

namespace graphene::chain {

/// A fully-constructed sender/receiver experiment instance.
struct Scenario {
  Block block;              ///< the sender's block (n transactions)
  Mempool sender_mempool;   ///< superset of the block on the sender side
  Mempool receiver_mempool; ///< receiver's pool: overlap + extra transactions
  std::uint64_t n = 0;      ///< block size
  std::uint64_t m = 0;      ///< receiver mempool size
  std::uint64_t x = 0;      ///< block transactions present at the receiver
};

struct ScenarioSpec {
  std::uint64_t block_txns = 200;
  /// Extra receiver-mempool transactions not in the block.
  std::uint64_t extra_txns = 200;
  /// Fraction of the block the receiver already has, in [0, 1].
  double block_fraction_in_mempool = 1.0;
  /// Extra transactions in the *sender's* pool beyond the block.
  std::uint64_t sender_extra_txns = 0;
};

/// Builds a scenario with exact (not sampled) overlap counts so Monte Carlo
/// sweeps hit the requested x = fraction·n precisely.
[[nodiscard]] Scenario make_scenario(const ScenarioSpec& spec, util::Rng& rng);

/// Draws a block-size (transaction count) sample from a clamped log-normal
/// fit of Ethereum mainnet blocks: median ≈ 120 txns, clamp to [1, max_txns].
[[nodiscard]] std::uint64_t sample_eth_block_size(util::Rng& rng, std::uint64_t max_txns = 1000);

/// §2.2's desynchronization cause: "transactions that offer low fees ... are
/// sometimes marked as DoS spam and not propagated by full nodes; yet, they
/// are sometimes included in blocks regardless." The block contains a
/// fraction of low-fee transactions that the receiver's relay policy
/// dropped, so the receiver is missing exactly those.
struct SpamScenarioSpec {
  std::uint64_t block_txns = 200;
  std::uint64_t extra_txns = 200;
  /// Fraction of block transactions below the receiver's fee floor.
  double low_fee_fraction = 0.05;
  /// Receiver relay policy: transactions under this fee/kB are not kept.
  std::uint64_t min_fee_per_kb = 1000;
};

/// Builds a scenario where the receiver's mempool excludes the block's
/// low-fee transactions (and any extra transaction respects the policy).
[[nodiscard]] Scenario make_spam_scenario(const SpamScenarioSpec& spec, util::Rng& rng);

/// Two mempools with `common` shared transactions, sized so both have
/// exactly `size` entries (the m ≈ n mempool-sync workload of Fig. 18).
struct MempoolPair {
  Mempool a;
  Mempool b;
};
[[nodiscard]] MempoolPair make_mempool_pair(std::uint64_t size, std::uint64_t common,
                                            util::Rng& rng);

}  // namespace graphene::chain
