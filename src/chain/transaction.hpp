// Transactions and transaction IDs.
//
// A transaction ID is the double-SHA256 of the transaction payload, as in
// Bitcoin. Graphene's data structures operate on two projections of it:
//  * the full 32-byte ID (Bloom filters, §3.1 "full IDs are used for the
//    Bloom filter"), and
//  * an 8-byte short ID (IBLT cells), optionally keyed with SipHash so that
//    collisions ground out to a single peer (§6.1).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "util/bytes.hpp"
#include "util/random.hpp"
#include "util/sha256.hpp"
#include "util/siphash.hpp"

namespace graphene::chain {

using TxId = util::Sha256Digest;

/// A synthetic transaction: identity plus the metadata the propagation
/// protocols care about (serialized size for full-block accounting, fee for
/// the low-fee/spam relay scenario of §2.2).
struct Transaction {
  TxId id{};
  std::uint32_t size_bytes = 250;  ///< typical P2PKH transaction size
  std::uint64_t fee_per_kb = 1000;

  friend bool operator==(const Transaction& a, const Transaction& b) noexcept {
    return a.id == b.id;
  }
};

/// Creates a transaction whose ID is the double-SHA256 of `payload`.
[[nodiscard]] Transaction make_transaction(util::ByteView payload);

/// Creates a transaction with a uniformly random ID — statistically
/// equivalent to hashing a unique payload but ~50× faster; Monte Carlo
/// simulation uses this path.
[[nodiscard]] Transaction make_random_transaction(util::Rng& rng);

/// First 8 little-endian bytes of the txid (the paper's 8-byte short ID).
[[nodiscard]] std::uint64_t short_id(const TxId& id) noexcept;

/// SipHash-keyed short ID (deployed-client hardening, §6.1).
[[nodiscard]] std::uint64_t short_id_keyed(const util::SipHashKey& key, const TxId& id) noexcept;

/// Truncation to 6 bytes, the Compact Blocks (BIP-152) short ID width.
[[nodiscard]] std::uint64_t short_id6(const util::SipHashKey& key, const TxId& id) noexcept;

/// Lexicographic txid order — the Canonical Transaction Ordering (CTOR)
/// deployed by Bitcoin Cash (§6.2), which removes the n·log2(n) ordering cost.
struct CtorLess {
  bool operator()(const Transaction& a, const Transaction& b) const noexcept {
    return a.id < b.id;
  }
  bool operator()(const TxId& a, const TxId& b) const noexcept { return a < b; }
};

/// Hash functor for unordered containers keyed by TxId.
struct TxIdHasher {
  std::size_t operator()(const TxId& id) const noexcept {
    return static_cast<std::size_t>(short_id(id));
  }
};

}  // namespace graphene::chain
