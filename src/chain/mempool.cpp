#include "chain/mempool.hpp"

namespace graphene::chain {

bool Mempool::insert(const Transaction& tx) { return pool_.emplace(tx.id, tx).second; }

std::optional<Transaction> Mempool::get(const TxId& id) const {
  const auto it = pool_.find(id);
  if (it == pool_.end()) return std::nullopt;
  return it->second;
}

std::vector<TxId> Mempool::ids() const {
  std::vector<TxId> out;
  out.reserve(pool_.size());
  for (const auto& [id, tx] : pool_) out.push_back(id);
  return out;
}

std::vector<Transaction> Mempool::transactions() const {
  std::vector<Transaction> out;
  out.reserve(pool_.size());
  for (const auto& [id, tx] : pool_) out.push_back(tx);
  return out;
}

}  // namespace graphene::chain
