#include "chain/workload.hpp"

#include <algorithm>
#include <cmath>

namespace graphene::chain {

Scenario make_scenario(const ScenarioSpec& spec, util::Rng& rng) {
  Scenario s;
  s.n = spec.block_txns;

  std::vector<Transaction> block_txs;
  block_txs.reserve(spec.block_txns);
  for (std::uint64_t i = 0; i < spec.block_txns; ++i) {
    block_txs.push_back(make_random_transaction(rng));
  }

  const double frac = std::clamp(spec.block_fraction_in_mempool, 0.0, 1.0);
  s.x = static_cast<std::uint64_t>(std::llround(frac * static_cast<double>(spec.block_txns)));

  // Receiver holds the first x block transactions (block order is random, so
  // taking a prefix is an unbiased choice of which x the receiver has).
  for (std::uint64_t i = 0; i < s.x; ++i) s.receiver_mempool.insert(block_txs[i]);
  for (std::uint64_t i = 0; i < spec.extra_txns; ++i) {
    s.receiver_mempool.insert(make_random_transaction(rng));
  }

  for (const Transaction& tx : block_txs) s.sender_mempool.insert(tx);
  for (std::uint64_t i = 0; i < spec.sender_extra_txns; ++i) {
    s.sender_mempool.insert(make_random_transaction(rng));
  }

  BlockHeader header;
  header.time = 1'500'000'000 + static_cast<std::uint32_t>(rng.below(100'000'000));
  header.nonce = static_cast<std::uint32_t>(rng.next());
  s.block = Block(header, std::move(block_txs));
  s.m = s.receiver_mempool.size();
  return s;
}

std::uint64_t sample_eth_block_size(util::Rng& rng, std::uint64_t max_txns) {
  // log-normal with median e^µ ≈ 120 txns and σ = 0.85 gives a shape close to
  // the Jan-2019 mainnet histogram (most blocks 50–300 txns, tail to ~1000).
  constexpr double kMu = 4.787;  // ln(120)
  constexpr double kSigma = 0.85;
  const double sample = std::exp(kMu + kSigma * rng.gaussian());
  const auto clamped =
      std::clamp<std::uint64_t>(static_cast<std::uint64_t>(sample), 1, max_txns);
  return clamped;
}

Scenario make_spam_scenario(const SpamScenarioSpec& spec, util::Rng& rng) {
  Scenario s;
  s.n = spec.block_txns;
  const auto low_fee_count = static_cast<std::uint64_t>(
      std::llround(spec.low_fee_fraction * static_cast<double>(spec.block_txns)));

  std::vector<Transaction> block_txs;
  block_txs.reserve(spec.block_txns);
  for (std::uint64_t i = 0; i < spec.block_txns; ++i) {
    Transaction tx = make_random_transaction(rng);
    if (i < low_fee_count) {
      tx.fee_per_kb = rng.below(spec.min_fee_per_kb);  // below the relay floor
    } else {
      tx.fee_per_kb = spec.min_fee_per_kb + rng.below(10000);
    }
    block_txs.push_back(tx);
  }

  // The receiver's relay policy: keep only transactions meeting the floor.
  for (const Transaction& tx : block_txs) {
    if (tx.fee_per_kb >= spec.min_fee_per_kb) {
      s.receiver_mempool.insert(tx);
      ++s.x;
    }
  }
  for (std::uint64_t i = 0; i < spec.extra_txns; ++i) {
    Transaction tx = make_random_transaction(rng);
    tx.fee_per_kb = spec.min_fee_per_kb + rng.below(10000);
    s.receiver_mempool.insert(tx);
  }

  for (const Transaction& tx : block_txs) s.sender_mempool.insert(tx);
  BlockHeader header;
  header.nonce = static_cast<std::uint32_t>(rng.next());
  s.block = Block(header, std::move(block_txs));
  s.m = s.receiver_mempool.size();
  return s;
}

MempoolPair make_mempool_pair(std::uint64_t size, std::uint64_t common, util::Rng& rng) {
  MempoolPair p;
  common = std::min(common, size);
  for (std::uint64_t i = 0; i < common; ++i) {
    const Transaction tx = make_random_transaction(rng);
    p.a.insert(tx);
    p.b.insert(tx);
  }
  for (std::uint64_t i = common; i < size; ++i) {
    p.a.insert(make_random_transaction(rng));
    p.b.insert(make_random_transaction(rng));
  }
  return p;
}

}  // namespace graphene::chain
