#include "chain/block.hpp"

#include <algorithm>
#include <cmath>

#include "util/varint.hpp"

namespace graphene::chain {

std::size_t ordering_cost_bytes(std::uint64_t n) noexcept {
  if (n < 2) return 0;
  const double bits = static_cast<double>(n) * std::log2(static_cast<double>(n));
  return static_cast<std::size_t>(std::ceil(bits / 8.0));
}

void BlockHeader::serialize_into(util::ByteWriter& w) const {
  w.i32(version);
  w.raw(util::ByteView(prev_hash.data(), prev_hash.size()));
  w.raw(util::ByteView(merkle_root.data(), merkle_root.size()));
  w.u32(time);
  w.u32(bits);
  w.u32(nonce);
}

util::Bytes BlockHeader::serialize() const {
  util::ByteWriter w;
  serialize_into(w);
  return w.take();
}

BlockHeader BlockHeader::deserialize(util::ByteReader& reader) {
  BlockHeader h;
  h.version = reader.i32();
  reader.raw_into(h.prev_hash.data(), h.prev_hash.size());
  reader.raw_into(h.merkle_root.data(), h.merkle_root.size());
  h.time = reader.u32();
  h.bits = reader.u32();
  h.nonce = reader.u32();
  return h;
}

Block::Block(BlockHeader header, std::vector<Transaction> txs)
    : header_(header), txs_(std::move(txs)) {
  std::sort(txs_.begin(), txs_.end(), CtorLess{});
  header_.merkle_root = merkle_root(tx_ids());
}

std::vector<TxId> Block::tx_ids() const {
  std::vector<TxId> ids;
  ids.reserve(txs_.size());
  for (const Transaction& tx : txs_) ids.push_back(tx.id);
  return ids;
}

std::size_t Block::full_block_bytes() const noexcept {
  std::size_t total = BlockHeader::kWireSize + util::varint_size(txs_.size());
  for (const Transaction& tx : txs_) total += tx.size_bytes;
  return total;
}

bool Block::validates(std::vector<TxId> ids) const {
  if (ids.size() != txs_.size()) return false;
  std::sort(ids.begin(), ids.end());
  return merkle_root(ids) == header_.merkle_root;
}

}  // namespace graphene::chain
