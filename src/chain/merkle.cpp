#include "chain/merkle.hpp"

namespace graphene::chain {

TxId merkle_root(const std::vector<TxId>& ids) {
  if (ids.empty()) return TxId{};
  std::vector<TxId> level = ids;
  std::vector<TxId> next;
  while (level.size() > 1) {
    if (level.size() % 2 != 0) level.push_back(level.back());
    next.clear();
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      util::Sha256 h;
      h.update(util::ByteView(level[i].data(), level[i].size()));
      h.update(util::ByteView(level[i + 1].data(), level[i + 1].size()));
      const auto once = h.finalize();
      next.push_back(util::sha256(util::ByteView(once.data(), once.size())));
    }
    level.swap(next);
  }
  return level.front();
}

}  // namespace graphene::chain
