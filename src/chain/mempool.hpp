// The receiver-side transaction pool.
//
// Exposes exactly the operations the propagation protocols need: membership,
// iteration over IDs (to pass the pool through a Bloom filter), and tracked
// insertion so mempool/block overlap can be constructed precisely in
// simulation.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/transaction.hpp"

namespace graphene::chain {

class Mempool {
 public:
  Mempool() = default;

  /// Inserts; returns false if the txid was already present.
  bool insert(const Transaction& tx);

  [[nodiscard]] bool contains(const TxId& id) const noexcept { return pool_.count(id) > 0; }
  [[nodiscard]] std::optional<Transaction> get(const TxId& id) const;
  [[nodiscard]] std::size_t size() const noexcept { return pool_.size(); }

  bool erase(const TxId& id) { return pool_.erase(id) > 0; }

  /// Snapshot of all txids (unordered).
  [[nodiscard]] std::vector<TxId> ids() const;

  /// Snapshot of all transactions (unordered).
  [[nodiscard]] std::vector<Transaction> transactions() const;

 private:
  std::unordered_map<TxId, Transaction, TxIdHasher> pool_;
};

}  // namespace graphene::chain
