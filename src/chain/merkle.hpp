// Merkle tree over ordered transaction IDs (Bitcoin style).
//
// The receiver validates a decoded Graphene block by recomputing the Merkle
// root over the recovered, canonically-ordered transaction set and comparing
// it to the root in the block header — this is the exactness check that
// catches any residual Bloom/IBLT error (§3.3, §6.1).
#pragma once

#include <vector>

#include "chain/transaction.hpp"

namespace graphene::chain {

/// Computes the Merkle root of `ids` (in the given order). Empty input
/// yields the all-zero digest; an odd level duplicates its last node, as in
/// Bitcoin. Interior nodes are sha256d(left || right).
[[nodiscard]] TxId merkle_root(const std::vector<TxId>& ids);

}  // namespace graphene::chain
