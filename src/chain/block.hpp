// Blocks: header + canonically ordered transactions.
#pragma once

#include <vector>

#include "chain/merkle.hpp"
#include "chain/transaction.hpp"

namespace graphene::chain {

/// §6.2: cost in bytes of transmitting an arbitrary transaction ordering for
/// an n-transaction block — ceil(n·log2(n)/8). Zero under a canonical
/// ordering (CTOR); chains without CTOR pay this on top of Graphene.
[[nodiscard]] std::size_t ordering_cost_bytes(std::uint64_t n) noexcept;

/// 80-byte Bitcoin-style block header.
struct BlockHeader {
  std::int32_t version = 2;
  TxId prev_hash{};
  TxId merkle_root{};
  std::uint32_t time = 0;
  std::uint32_t bits = 0x1d00ffff;
  std::uint32_t nonce = 0;

  static constexpr std::size_t kWireSize = 4 + 32 + 32 + 4 + 4 + 4;

  /// Appends the wire encoding to `w` (scatter form of serialize()).

  void serialize_into(util::ByteWriter& w) const;

  [[nodiscard]] util::Bytes serialize() const;
  static BlockHeader deserialize(util::ByteReader& reader);

  friend bool operator==(const BlockHeader&, const BlockHeader&) = default;
};

class Block {
 public:
  Block() = default;

  /// Builds a block from `txs`, sorting them into CTOR order (§6.2) and
  /// committing to them in the header's Merkle root.
  Block(BlockHeader header, std::vector<Transaction> txs);

  [[nodiscard]] const BlockHeader& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<Transaction>& transactions() const noexcept { return txs_; }
  [[nodiscard]] std::size_t tx_count() const noexcept { return txs_.size(); }

  /// Ordered txids (CTOR order).
  [[nodiscard]] std::vector<TxId> tx_ids() const;

  /// Total serialized size of a full block: header + varint + transactions.
  [[nodiscard]] std::size_t full_block_bytes() const noexcept;

  /// True iff `ids`, after canonical ordering, reproduces this block's
  /// Merkle root — the receiver's final validation step.
  [[nodiscard]] bool validates(std::vector<TxId> ids) const;

 private:
  BlockHeader header_{};
  std::vector<Transaction> txs_;
};

}  // namespace graphene::chain
