#include "chain/transaction.hpp"

namespace graphene::chain {

Transaction make_transaction(util::ByteView payload) {
  Transaction tx;
  tx.id = util::sha256d(payload);
  tx.size_bytes = static_cast<std::uint32_t>(payload.size());
  return tx;
}

Transaction make_random_transaction(util::Rng& rng) {
  Transaction tx;
  for (std::size_t i = 0; i < tx.id.size(); i += 8) {
    const std::uint64_t word = rng.next();
    for (std::size_t b = 0; b < 8; ++b) {
      tx.id[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  // 100..1100-byte transactions, mean ≈ 350 (roughly Bitcoin's mix).
  tx.size_bytes = 100 + static_cast<std::uint32_t>(rng.below(250)) * 4;
  tx.fee_per_kb = 1 + rng.below(10000);
  return tx;
}

std::uint64_t short_id(const TxId& id) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(id[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

std::uint64_t short_id_keyed(const util::SipHashKey& key, const TxId& id) noexcept {
  return util::siphash24(key, util::ByteView(id.data(), id.size()));
}

std::uint64_t short_id6(const util::SipHashKey& key, const TxId& id) noexcept {
  return util::siphash24(key, util::ByteView(id.data(), id.size())) & 0xffffffffffffULL;
}

}  // namespace graphene::chain
