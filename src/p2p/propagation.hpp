// Event-driven block propagation over a peer topology.
//
// Reproduces the paper's motivation quantitatively (§1: "throughput is a
// bottleneck for propagating blocks larger than 20KB, and delays grow
// linearly with block size"): a miner announces a block; every peer that
// completes reception relays onward. Per-link transfer time is
// latency + bytes/bandwidth, where bytes come from running the *actual*
// relay protocol (Graphene, Compact Blocks, XThin, or full blocks) against
// the receiving peer's mempool. Outputs: time to reach 50%/99% of peers and
// total network bytes — the quantities that drive fork rates and the
// maximum sustainable block size.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/block.hpp"
#include "chain/mempool.hpp"
#include "p2p/topology.hpp"

namespace graphene::p2p {

enum class RelayProtocol : std::uint8_t {
  kFullBlocks,
  kCompactBlocks,
  kXthin,
  kGraphene,
};

[[nodiscard]] const char* protocol_name(RelayProtocol p) noexcept;

struct LinkModel {
  double latency_s = 0.05;            ///< one-way propagation delay
  double bandwidth_bps = 8e6 / 8.0;   ///< 1 MB/s per link (bytes per second)
};

struct PropagationConfig {
  RelayProtocol protocol = RelayProtocol::kGraphene;
  LinkModel link{};
  /// Probability that a given block transaction is already in a peer's
  /// mempool (models incomplete transaction propagation, §2.2/§3.2).
  double mempool_coverage = 1.0;
  /// Extra (non-block) transactions per peer, as a multiple of block size.
  double extra_mempool_multiple = 1.0;
};

struct PropagationResult {
  double t50_s = 0.0;            ///< time until 50% of peers hold the block
  double t99_s = 0.0;            ///< time until 99% of peers hold the block
  std::size_t total_bytes = 0;   ///< all relay traffic, both directions
  std::size_t relays = 0;        ///< successful link-level relays
  std::size_t decode_failures = 0;  ///< relays that fell back to a full block
};

/// Propagates `block` from node 0 across `topology` under `config`.
/// Deterministic given `rng`'s state.
PropagationResult propagate_block(const chain::Block& block, const Topology& topology,
                                  const PropagationConfig& config, util::Rng& rng);

}  // namespace graphene::p2p
