// Event-driven block propagation over a peer topology.
//
// Reproduces the paper's motivation quantitatively (§1: "throughput is a
// bottleneck for propagating blocks larger than 20KB, and delays grow
// linearly with block size"): a miner announces a block; every peer that
// completes reception relays onward. Per-link transfer time is
// latency + bytes/bandwidth, where bytes come from running the *actual*
// relay protocol (Graphene, Compact Blocks, XThin, or full blocks) against
// the receiving peer's mempool. Outputs: time to reach 50%/99% of peers and
// total network bytes — the quantities that drive fork rates and the
// maximum sustainable block size.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/block.hpp"
#include "chain/mempool.hpp"
#include "p2p/topology.hpp"

namespace graphene::obs {
class Registry;
}  // namespace graphene::obs

namespace graphene::p2p {

enum class RelayProtocol : std::uint8_t {
  kFullBlocks,
  kCompactBlocks,
  kXthin,
  kGraphene,
};

[[nodiscard]] const char* protocol_name(RelayProtocol p) noexcept;

struct LinkModel {
  double latency_s = 0.05;            ///< one-way propagation delay
  double bandwidth_bps = 8e6 / 8.0;   ///< 1 MB/s per link (bytes per second)
};

struct PropagationConfig {
  RelayProtocol protocol = RelayProtocol::kGraphene;
  LinkModel link{};
  /// Probability that a given block transaction is already in a peer's
  /// mempool (models incomplete transaction propagation, §2.2/§3.2).
  double mempool_coverage = 1.0;
  /// Extra (non-block) transactions per peer, as a multiple of block size.
  double extra_mempool_multiple = 1.0;
  /// When non-null (and observability is compiled in), per-relay session
  /// metrics — bytes by component, round counts, decode failures, repair
  /// rate — aggregate into this registry, ready for Registry::to_prometheus.
  obs::Registry* obs = nullptr;
};

struct PropagationResult {
  double t50_s = 0.0;            ///< time until 50% of peers hold the block
  double t99_s = 0.0;            ///< time until 99% of peers hold the block
  std::size_t total_bytes = 0;   ///< all relay traffic, both directions
  std::size_t relays = 0;        ///< successful link-level relays
  std::size_t decode_failures = 0;  ///< relays that fell back to a full block
  std::size_t repairs = 0;          ///< relays that needed the repair round

  /// Per-component decomposition of total_bytes (Graphene relays only; the
  /// baselines report everything under `other_bytes`).
  std::size_t bloom_bytes = 0;        ///< filters S + R + F across all relays
  std::size_t iblt_bytes = 0;         ///< IBLTs I + J across all relays
  std::size_t missing_txn_bytes = 0;  ///< full transactions shipped
  std::size_t repair_bytes = 0;       ///< repair request/response traffic
  std::size_t fallback_bytes = 0;     ///< full blocks sent after decode failure
  std::size_t other_bytes = 0;        ///< headers, requests, baseline traffic

  /// Protocol round trips summed over all relays (1 per relay minimum).
  std::uint64_t rounds = 0;
};

/// Propagates `block` from node 0 across `topology` under `config`.
/// Deterministic given `rng`'s state.
PropagationResult propagate_block(const chain::Block& block, const Topology& topology,
                                  const PropagationConfig& config, util::Rng& rng);

}  // namespace graphene::p2p
