#include "p2p/topology.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace graphene::p2p {

void Topology::add_edge(std::uint32_t a, std::uint32_t b) {
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

std::size_t Topology::edge_count() const noexcept {
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

bool Topology::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::deque<std::uint32_t> queue{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    for (const std::uint32_t v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        queue.push_back(v);
      }
    }
  }
  return visited == adjacency_.size();
}

Topology Topology::random_regular(std::uint32_t nodes, std::uint32_t degree,
                                  util::Rng& rng) {
  degree = std::min(degree, nodes > 0 ? nodes - 1 : 0);
  for (int attempt = 0; attempt < 64; ++attempt) {
    Topology topo(nodes);
    // Each node dials `degree` distinct peers it is not yet connected to —
    // the Bitcoin outbound-connection model; inbound links raise the
    // effective degree above `degree`.
    std::vector<std::unordered_set<std::uint32_t>> links(nodes);
    bool ok = true;
    for (std::uint32_t u = 0; u < nodes && ok; ++u) {
      std::uint32_t dialed = 0;
      std::uint32_t tries = 0;
      while (links[u].size() < degree && dialed < degree && tries < nodes * 4) {
        ++tries;
        const auto v = static_cast<std::uint32_t>(rng.below(nodes));
        if (v == u || links[u].count(v) > 0) continue;
        links[u].insert(v);
        links[v].insert(u);
        topo.add_edge(u, v);
        ++dialed;
      }
      ok = links[u].size() >= std::min(degree, nodes - 1);
    }
    if (ok && topo.connected()) return topo;
  }
  // Fall back to a ring + chords, which is always connected.
  Topology topo(nodes);
  for (std::uint32_t u = 0; u < nodes; ++u) {
    topo.add_edge(u, (u + 1) % nodes);
    if (degree > 2 && nodes > 4) topo.add_edge(u, (u + nodes / 2) % nodes);
  }
  return topo;
}

Topology Topology::clique(std::uint32_t nodes) {
  Topology topo(nodes);
  for (std::uint32_t u = 0; u < nodes; ++u) {
    for (std::uint32_t v = u + 1; v < nodes; ++v) topo.add_edge(u, v);
  }
  return topo;
}

}  // namespace graphene::p2p
