// Random peer topologies for the propagation simulator.
//
// Blockchain gossip networks (§2.2) are approximately random graphs where
// every peer keeps d outbound connections (Bitcoin: d = 8). `random_regular`
// builds such a graph and guarantees connectivity by retrying with a fresh
// seed-derived permutation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace graphene::p2p {

class Topology {
 public:
  /// Undirected graph over `nodes` vertices where every vertex has degree at
  /// least `degree` (Bitcoin-like: outbound connections plus inbound).
  static Topology random_regular(std::uint32_t nodes, std::uint32_t degree,
                                 util::Rng& rng);

  /// Fully-connected clique (the miner overlay described in §2.2).
  static Topology clique(std::uint32_t nodes);

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(std::uint32_t node) const {
    return adjacency_[node];
  }
  [[nodiscard]] std::size_t edge_count() const noexcept;
  [[nodiscard]] bool connected() const;

 private:
  explicit Topology(std::uint32_t nodes) : adjacency_(nodes) {}
  void add_edge(std::uint32_t a, std::uint32_t b);

  std::vector<std::vector<std::uint32_t>> adjacency_;
};

}  // namespace graphene::p2p
