#include "p2p/propagation.hpp"

#include <algorithm>
#include <queue>

#include "baselines/compact_blocks.hpp"
#include "baselines/xthin.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"

namespace graphene::p2p {

namespace {

struct Event {
  double time = 0.0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  friend bool operator>(const Event& a, const Event& b) { return a.time > b.time; }
};

/// Runs one link-level relay and returns the bytes it moved. Bytes include
/// protocol encodings and any transaction payloads the receiver lacked.
std::size_t relay_once(const chain::Block& block, const chain::Mempool& mempool,
                       RelayProtocol protocol, util::Rng& rng, bool& decode_failed) {
  decode_failed = false;
  switch (protocol) {
    case RelayProtocol::kFullBlocks:
      return block.full_block_bytes();
    case RelayProtocol::kCompactBlocks: {
      const baselines::CompactBlocksResult r =
          baselines::run_compact_blocks(block, mempool, rng.next());
      return r.total_bytes();
    }
    case RelayProtocol::kXthin: {
      const baselines::XthinResult r = baselines::run_xthin(block, mempool);
      if (!r.success) {
        decode_failed = true;
        return r.encoding_bytes() + block.full_block_bytes();
      }
      return r.encoding_bytes() + r.pushed_txn_bytes;
    }
    case RelayProtocol::kGraphene: {
      core::Sender sender(block, rng.next());
      core::ReceiveSession receiver(mempool);
      std::size_t bytes = 0;
      const core::GrapheneBlockMsg msg = sender.encode(mempool.size()).msg;
      bytes += msg.filter_s.serialized_size() + msg.iblt_i.serialized_size() +
               chain::BlockHeader::kWireSize;
      core::ReceiveOutcome out = receiver.receive_block(msg);
      if (out.status == core::ReceiveStatus::kNeedsProtocol2) {
        const core::GrapheneRequestMsg req = receiver.build_request();
        bytes += req.serialize().size();
        const core::GrapheneResponseMsg resp = sender.serve(req);
        bytes += resp.serialize().size();
        out = receiver.complete(resp);
      }
      if (out.status == core::ReceiveStatus::kNeedsRepair) {
        const core::RepairRequestMsg rep = receiver.build_repair();
        bytes += rep.serialize().size();
        const core::RepairResponseMsg rep_resp = sender.serve_repair(rep);
        bytes += rep_resp.serialize().size();
        out = receiver.complete_repair(rep_resp);
      }
      if (out.status != core::ReceiveStatus::kDecoded) {
        // Fall back to a full block — the deployed behavior on decode failure.
        decode_failed = true;
        bytes += block.full_block_bytes();
      }
      return bytes;
    }
  }
  return block.full_block_bytes();
}

}  // namespace

const char* protocol_name(RelayProtocol p) noexcept {
  switch (p) {
    case RelayProtocol::kFullBlocks: return "full-blocks";
    case RelayProtocol::kCompactBlocks: return "compact-blocks";
    case RelayProtocol::kXthin: return "xthin";
    case RelayProtocol::kGraphene: return "graphene";
  }
  return "?";
}

PropagationResult propagate_block(const chain::Block& block, const Topology& topology,
                                  const PropagationConfig& config, util::Rng& rng) {
  PropagationResult result;
  const std::uint32_t n_nodes = topology.node_count();
  if (n_nodes == 0) return result;

  // Per-node mempools: each block transaction present with probability
  // `mempool_coverage`, plus unrelated transactions.
  const auto extra = static_cast<std::uint64_t>(config.extra_mempool_multiple *
                                                static_cast<double>(block.tx_count()));
  std::vector<chain::Mempool> mempools(n_nodes);
  for (std::uint32_t node = 1; node < n_nodes; ++node) {
    for (const chain::Transaction& tx : block.transactions()) {
      if (rng.chance(config.mempool_coverage)) mempools[node].insert(tx);
    }
    for (std::uint64_t i = 0; i < extra; ++i) {
      mempools[node].insert(chain::make_random_transaction(rng));
    }
  }

  std::vector<double> received(n_nodes, -1.0);
  received[0] = 0.0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;

  auto schedule_relays = [&](std::uint32_t from, double now) {
    for (const std::uint32_t to : topology.neighbors(from)) {
      if (received[to] >= 0.0) continue;  // inv/getdata suppresses duplicates
      bool failed = false;
      const std::size_t bytes =
          relay_once(block, mempools[to], config.protocol, rng, failed);
      result.total_bytes += bytes;
      result.relays += 1;
      result.decode_failures += failed ? 1 : 0;
      const double arrival = now + config.link.latency_s +
                             static_cast<double>(bytes) / config.link.bandwidth_bps;
      queue.push(Event{arrival, from, to});
    }
  };

  schedule_relays(0, 0.0);
  std::uint32_t have = 1;
  std::vector<double> arrival_times{0.0};
  while (!queue.empty() && have < n_nodes) {
    const Event ev = queue.top();
    queue.pop();
    if (received[ev.to] >= 0.0) continue;
    received[ev.to] = ev.time;
    arrival_times.push_back(ev.time);
    ++have;
    schedule_relays(ev.to, ev.time);
  }

  std::sort(arrival_times.begin(), arrival_times.end());
  const auto index_at = [&](double fraction) {
    const auto idx = static_cast<std::size_t>(fraction * static_cast<double>(n_nodes));
    return arrival_times[std::min(idx, arrival_times.size() - 1)];
  };
  result.t50_s = index_at(0.50);
  result.t99_s = index_at(0.99);
  return result;
}

}  // namespace graphene::p2p
