#include "p2p/propagation.hpp"

#include <algorithm>
#include <queue>

#include "baselines/compact_blocks.hpp"
#include "baselines/xthin.hpp"
#include "graphene/receiver.hpp"
#include "graphene/sender.hpp"
#include "obs/obs.hpp"

namespace graphene::p2p {

namespace {

struct Event {
  double time = 0.0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  friend bool operator>(const Event& a, const Event& b) { return a.time > b.time; }
};

/// Everything one link-level relay moved, decomposed by component so the
/// propagation totals can answer "where did the bandwidth go" per protocol.
struct RelayOutcome {
  std::size_t bytes = 0;
  std::size_t bloom_bytes = 0;        ///< filters S + R + F (Graphene only)
  std::size_t iblt_bytes = 0;         ///< IBLTs I + J (Graphene only)
  std::size_t missing_txn_bytes = 0;  ///< full transactions shipped
  std::size_t repair_bytes = 0;       ///< repair request/response traffic
  std::size_t fallback_bytes = 0;     ///< full block after decode failure
  std::uint64_t rounds = 1;
  bool used_repair = false;
  bool decode_failed = false;

  /// Bytes not claimed by any component above.
  [[nodiscard]] std::size_t other_bytes() const noexcept {
    return bytes - bloom_bytes - iblt_bytes - missing_txn_bytes - repair_bytes -
           fallback_bytes;
  }
};

/// Runs one link-level relay. Bytes include protocol encodings and any
/// transaction payloads the receiver lacked.
RelayOutcome relay_once(const chain::Block& block, const chain::Mempool& mempool,
                        const PropagationConfig& config, util::Rng& rng) {
  RelayOutcome out;
  switch (config.protocol) {
    case RelayProtocol::kFullBlocks:
      out.bytes = block.full_block_bytes();
      return out;
    case RelayProtocol::kCompactBlocks: {
      const baselines::CompactBlocksResult r =
          baselines::run_compact_blocks(block, mempool, rng.next());
      out.bytes = r.total_bytes();
      return out;
    }
    case RelayProtocol::kXthin: {
      const baselines::XthinResult r = baselines::run_xthin(block, mempool);
      if (!r.success) {
        out.decode_failed = true;
        out.fallback_bytes = block.full_block_bytes();
        out.bytes = r.encoding_bytes() + out.fallback_bytes;
        return out;
      }
      out.missing_txn_bytes = r.pushed_txn_bytes;
      out.bytes = r.encoding_bytes() + r.pushed_txn_bytes;
      return out;
    }
    case RelayProtocol::kGraphene: {
      core::ProtocolConfig pcfg;
      pcfg.obs = config.obs;
      core::Sender sender(block, rng.next(), pcfg);
      core::ReceiveSession receiver(mempool, pcfg);
      const core::GrapheneBlockMsg msg = sender.encode(mempool.size()).msg;
      out.bloom_bytes += msg.filter_s.serialized_size();
      out.iblt_bytes += msg.iblt_i.serialized_size();
      out.bytes += msg.filter_s.serialized_size() + msg.iblt_i.serialized_size() +
                   chain::BlockHeader::kWireSize;
      core::ReceiveOutcome ro = receiver.receive_block(msg);
      if (ro.status == core::ReceiveStatus::kNeedsProtocol2) {
        out.rounds += 1;
        const core::GrapheneRequestMsg req = receiver.build_request();
        out.bloom_bytes += req.filter_r.serialized_size();
        out.bytes += req.serialize().size();
        const core::GrapheneResponseMsg resp = sender.serve(req);
        out.iblt_bytes += resp.iblt_j.serialized_size();
        if (resp.filter_f) out.bloom_bytes += resp.filter_f->serialized_size();
        out.missing_txn_bytes += resp.missing_tx_bytes();
        out.bytes += resp.serialize().size();
        ro = receiver.complete(resp);
      }
      if (ro.status == core::ReceiveStatus::kNeedsRepair) {
        out.rounds += 1;
        out.used_repair = true;
        const core::RepairRequestMsg rep = receiver.build_repair();
        const core::RepairResponseMsg rep_resp = sender.serve_repair(rep);
        out.repair_bytes += rep.serialize().size() + rep_resp.serialize().size();
        out.bytes += rep.serialize().size() + rep_resp.serialize().size();
        ro = receiver.complete_repair(rep_resp);
      }
      if (ro.status != core::ReceiveStatus::kDecoded) {
        // Fall back to a full block — the deployed behavior on decode failure.
        out.decode_failed = true;
        out.fallback_bytes = block.full_block_bytes();
        out.bytes += block.full_block_bytes();
      }
      return out;
    }
  }
  out.bytes = block.full_block_bytes();
  return out;
}

}  // namespace

const char* protocol_name(RelayProtocol p) noexcept {
  switch (p) {
    case RelayProtocol::kFullBlocks: return "full-blocks";
    case RelayProtocol::kCompactBlocks: return "compact-blocks";
    case RelayProtocol::kXthin: return "xthin";
    case RelayProtocol::kGraphene: return "graphene";
  }
  return "?";
}

PropagationResult propagate_block(const chain::Block& block, const Topology& topology,
                                  const PropagationConfig& config, util::Rng& rng) {
  PropagationResult result;
  const std::uint32_t n_nodes = topology.node_count();
  if (n_nodes == 0) return result;

  // Per-node mempools: each block transaction present with probability
  // `mempool_coverage`, plus unrelated transactions.
  const auto extra = static_cast<std::uint64_t>(config.extra_mempool_multiple *
                                                static_cast<double>(block.tx_count()));
  std::vector<chain::Mempool> mempools(n_nodes);
  for (std::uint32_t node = 1; node < n_nodes; ++node) {
    for (const chain::Transaction& tx : block.transactions()) {
      if (rng.chance(config.mempool_coverage)) mempools[node].insert(tx);
    }
    for (std::uint64_t i = 0; i < extra; ++i) {
      mempools[node].insert(chain::make_random_transaction(rng));
    }
  }

  std::vector<double> received(n_nodes, -1.0);
  received[0] = 0.0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;

  obs::Registry* reg = obs::enabled(config.obs);
  auto schedule_relays = [&](std::uint32_t from, double now) {
    for (const std::uint32_t to : topology.neighbors(from)) {
      if (received[to] >= 0.0) continue;  // inv/getdata suppresses duplicates
      const RelayOutcome relay = relay_once(block, mempools[to], config, rng);
      result.total_bytes += relay.bytes;
      result.relays += 1;
      result.decode_failures += relay.decode_failed ? 1 : 0;
      result.repairs += relay.used_repair ? 1 : 0;
      result.bloom_bytes += relay.bloom_bytes;
      result.iblt_bytes += relay.iblt_bytes;
      result.missing_txn_bytes += relay.missing_txn_bytes;
      result.repair_bytes += relay.repair_bytes;
      result.fallback_bytes += relay.fallback_bytes;
      result.other_bytes += relay.other_bytes();
      result.rounds += relay.rounds;
      if (reg != nullptr) {
        reg->counter("graphene_p2p_relays_total").inc();
        if (relay.decode_failed) reg->counter("graphene_p2p_decode_failures_total").inc();
        if (relay.used_repair) reg->counter("graphene_p2p_repairs_total").inc();
        reg->counter("graphene_p2p_bytes_total").inc(relay.bytes);
        reg->counter("graphene_p2p_bloom_bytes_total").inc(relay.bloom_bytes);
        reg->counter("graphene_p2p_iblt_bytes_total").inc(relay.iblt_bytes);
        reg->counter("graphene_p2p_missing_txn_bytes_total").inc(relay.missing_txn_bytes);
        reg->counter("graphene_p2p_repair_bytes_total").inc(relay.repair_bytes);
        reg->histogram("graphene_p2p_relay_bytes").observe(relay.bytes);
        reg->histogram("graphene_p2p_relay_rounds").observe(relay.rounds);
      }
      const double arrival = now + config.link.latency_s +
                             static_cast<double>(relay.bytes) / config.link.bandwidth_bps;
      queue.push(Event{arrival, from, to});
    }
  };

  schedule_relays(0, 0.0);
  std::uint32_t have = 1;
  std::vector<double> arrival_times{0.0};
  while (!queue.empty() && have < n_nodes) {
    const Event ev = queue.top();
    queue.pop();
    if (received[ev.to] >= 0.0) continue;
    received[ev.to] = ev.time;
    arrival_times.push_back(ev.time);
    ++have;
    schedule_relays(ev.to, ev.time);
  }

  std::sort(arrival_times.begin(), arrival_times.end());
  const auto index_at = [&](double fraction) {
    const auto idx = static_cast<std::size_t>(fraction * static_cast<double>(n_nodes));
    return arrival_times[std::min(idx, arrival_times.size() - 1)];
  };
  result.t50_s = index_at(0.50);
  result.t99_s = index_at(0.99);
  return result;
}

}  // namespace graphene::p2p
