// Wire message framing.
//
// Every protocol interaction in the library is expressed as framed messages
// so the simulator's byte accounting matches what a TCP peer connection
// would carry. Framing follows the Bitcoin P2P envelope: 4-byte magic,
// 12-byte command, 4-byte length, 4-byte checksum (24 bytes total).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/bytes.hpp"

namespace graphene::net {

enum class MessageType : std::uint8_t {
  kInv,
  kGetData,
  kBlockHeader,
  kFullBlock,
  kGrapheneBlock,      ///< Protocol 1, step 3: S + I (+ header)
  kGrapheneRequest,    ///< Protocol 2, step 2: R, y*, b
  kGrapheneResponse,   ///< Protocol 2, steps 3–4: missing txns + J (+ F when m≈n)
  kCompactBlock,       ///< BIP-152 cmpctblock
  kGetBlockTxn,        ///< BIP-152 index-based repair request
  kBlockTxn,           ///< BIP-152 repair response
  kXthinGetData,       ///< XThin get_xthin with mempool Bloom filter
  kXthinBlock,         ///< XThin response: 8-byte IDs + missing transactions
  kMempoolSyncOffer,   ///< mempool sync: S + I over the sender's pool
  kMempoolSyncRequest,
  kMempoolSyncResponse,
  kReconcileOffer,          ///< reconcile session: Graphene offer (S + I)
  kReconcileRequest,        ///< reconcile session: Protocol 2 repair request
  kReconcileResponse,       ///< reconcile session: repair response
  kReconcileFetch,          ///< reconcile session: unresolved short-ID fetch
  kReconcileFetchResponse,  ///< reconcile session: fetched digests
  kRatelessChunk,           ///< rateless backend: coded-symbol chunk
  kRatelessNeed,            ///< rateless backend: request for more symbols
  kDaemonHello,             ///< relay daemon: session open (version, backend, count)
  kDaemonBye,               ///< relay daemon: client-reported session end
  kDaemonError,             ///< relay daemon: typed error before close
};

/// Human-readable command string (also the wire command field).
[[nodiscard]] std::string_view command_name(MessageType type) noexcept;

/// Inverse of command_name for the framing decoder; nullopt for commands no
/// peer of this version speaks (the frame is then rejected as typed error).
[[nodiscard]] std::optional<MessageType> command_from_name(std::string_view name) noexcept;

/// Size of the P2P envelope prepended to every message.
inline constexpr std::size_t kEnvelopeBytes = 24;

struct Message {
  MessageType type = MessageType::kInv;
  util::Bytes payload;

  /// Envelope + payload: what the socket would carry.
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return kEnvelopeBytes + payload.size();
  }
};

}  // namespace graphene::net
