#include "net/frame.hpp"

#include <cstring>
#include <string>

#include "util/sha256.hpp"

namespace graphene::net {
namespace {

/// Largest buffer the reader will hold: one maximal frame plus one maximal
/// absorb() burst behind it. Beyond that the caller is ignoring errors.
std::uint64_t buffer_ceiling(std::uint64_t max_payload) noexcept {
  return 2 * (kEnvelopeBytes + max_payload);
}

}  // namespace

std::array<std::uint8_t, 4> frame_checksum(util::ByteView payload) noexcept {
  const util::Sha256Digest once = util::sha256(payload);
  const util::Sha256Digest twice = util::sha256(util::ByteView(once.data(), once.size()));
  return {twice[0], twice[1], twice[2], twice[3]};
}

namespace {

void append_envelope(util::ByteWriter& w, MessageType type, std::uint32_t length,
                     const std::array<std::uint8_t, 4>& checksum) {
  w.raw(util::ByteView(kFrameMagic.data(), kFrameMagic.size()));
  const std::string_view cmd = command_name(type);
  std::array<std::uint8_t, kFrameCommandBytes> command{};
  std::memcpy(command.data(), cmd.data(), cmd.size());
  w.raw(util::ByteView(command.data(), command.size()));
  w.u32(length);
  w.raw(util::ByteView(checksum.data(), checksum.size()));
}

}  // namespace

util::Bytes encode_frame(const Message& msg, std::uint64_t max_payload) {
  util::Bytes out;
  encode_frame_into(out, msg, max_payload);
  return out;
}

void encode_frame_into(util::Bytes& out, const Message& msg, std::uint64_t max_payload) {
  if (msg.payload.size() > max_payload) {
    throw util::DeserializeError("frame: payload " + std::to_string(msg.payload.size()) +
                                 " exceeds cap " + std::to_string(max_payload));
  }
  out.reserve(out.size() + kEnvelopeBytes + msg.payload.size());
  util::ByteWriter w(std::move(out));
  append_envelope(w, msg.type, static_cast<std::uint32_t>(msg.payload.size()),
                  frame_checksum(util::ByteView(msg.payload)));
  w.raw(util::ByteView(msg.payload));
  out = w.take();
}

FramePatch begin_frame(util::ByteWriter& w, MessageType type) {
  const FramePatch patch{w.size()};
  append_envelope(w, type, 0, {0, 0, 0, 0});
  return patch;
}

void end_frame(util::ByteWriter& w, const FramePatch& patch, std::uint64_t max_payload) {
  const std::size_t payload_start = patch.envelope_start + kEnvelopeBytes;
  if (payload_start > w.size()) {
    throw util::DeserializeError("frame: end_frame before begin_frame");
  }
  const std::size_t payload_size = w.size() - payload_start;
  if (payload_size > max_payload) {
    throw util::DeserializeError("frame: payload " + std::to_string(payload_size) +
                                 " exceeds cap " + std::to_string(max_payload));
  }
  const util::ByteView payload = w.view().subspan(payload_start);
  const std::array<std::uint8_t, 4> sum = frame_checksum(payload);
  const std::size_t len_at = patch.envelope_start + kFrameMagic.size() + kFrameCommandBytes;
  w.patch_u32(len_at, static_cast<std::uint32_t>(payload_size));
  w.patch_raw(len_at + 4, util::ByteView(sum.data(), sum.size()));
}

void FrameReader::absorb(util::ByteView data) {
  if (buf_.size() - pos_ + data.size() > buffer_ceiling(max_payload_)) {
    throw util::DeserializeError("frame: reader buffer overrun (caller kept absorbing "
                                 "after a framing error)");
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Message> FrameReader::next() {
  const auto compact_and_wait = [this]() -> std::optional<Message> {
    // Reclaim consumed prefix so a long-lived connection's buffer stays
    // proportional to the frame in flight, not to total bytes ever seen.
    if (pos_ > 0) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
    return std::nullopt;
  };

  if (buf_.size() - pos_ < kEnvelopeBytes) return compact_and_wait();

  const std::uint8_t* head = buf_.data() + pos_;
  if (std::memcmp(head, kFrameMagic.data(), kFrameMagic.size()) != 0) {
    throw util::DeserializeError("frame: bad magic");
  }

  // Strict command padding: name, then NULs to the end of the field. A
  // byte after the first NUL re-opens ambiguity (two encodings per command),
  // so it is rejected even when the prefix names a valid command.
  const std::uint8_t* cmd = head + kFrameMagic.size();
  std::size_t name_len = 0;
  while (name_len < kFrameCommandBytes && cmd[name_len] != 0) ++name_len;
  for (std::size_t i = name_len; i < kFrameCommandBytes; ++i) {
    if (cmd[i] != 0) throw util::DeserializeError("frame: command not NUL-padded");
  }
  // uint8_t widens to char element-wise — no pointer reinterpretation needed
  // for a 12-byte field.
  const std::string name(cmd, cmd + name_len);
  const std::optional<MessageType> type = command_from_name(name);
  if (!type) {
    throw util::DeserializeError("frame: unknown command \"" + name + "\"");
  }

  const std::uint8_t* len_field = cmd + kFrameCommandBytes;
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(len_field[i]) << (8 * i);
  }
  if (length > max_payload_) {
    throw util::DeserializeError("frame: payload length " + std::to_string(length) +
                                 " exceeds cap " + std::to_string(max_payload_));
  }

  if (buf_.size() - pos_ < kEnvelopeBytes + length) return compact_and_wait();

  const util::ByteView payload(head + kEnvelopeBytes, length);
  const std::array<std::uint8_t, 4> expect = frame_checksum(payload);
  if (std::memcmp(len_field + 4, expect.data(), expect.size()) != 0) {
    throw util::DeserializeError("frame: checksum mismatch for \"" + name + "\"");
  }

  Message msg;
  msg.type = *type;
  msg.payload.assign(payload.begin(), payload.end());
  pos_ += kEnvelopeBytes + length;
  return msg;
}

}  // namespace graphene::net
