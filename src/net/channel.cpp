#include "net/channel.hpp"

#include "obs/obs.hpp"

namespace graphene::net {

const Message& Channel::send(Direction dir, Message msg) {
  const auto idx = static_cast<std::size_t>(dir);
  bytes_[idx] += msg.wire_size();
  payload_[idx] += msg.payload.size();
  if (obs::Registry* reg = obs::enabled(reg_)) {
    const obs::Labels labels{
        {"msg", std::string(command_name(msg.type))},
        {"dir", dir == Direction::kSenderToReceiver ? "s2r" : "r2s"}};
    reg->histogram("net_message_bytes", labels).observe(msg.payload.size());
    reg->counter("net_messages_total", labels).inc();
  }
  log_.emplace_back(dir, std::move(msg));
  return log_.back().second;
}

std::size_t Channel::bytes(Direction dir) const noexcept {
  return bytes_[static_cast<std::size_t>(dir)];
}

std::size_t Channel::payload_bytes(Direction dir) const noexcept {
  return payload_[static_cast<std::size_t>(dir)];
}

std::map<MessageType, std::size_t> Channel::payload_by_type() const {
  std::map<MessageType, std::size_t> out;
  for (const auto& [dir, msg] : log_) out[msg.type] += msg.payload.size();
  return out;
}

void Channel::reset() {
  log_.clear();
  bytes_[0] = bytes_[1] = 0;
  payload_[0] = payload_[1] = 0;
}

}  // namespace graphene::net
