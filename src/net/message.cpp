#include "net/message.hpp"

namespace graphene::net {

std::string_view command_name(MessageType type) noexcept {
  switch (type) {
    case MessageType::kInv: return "inv";
    case MessageType::kGetData: return "getdata";
    case MessageType::kBlockHeader: return "headers";
    case MessageType::kFullBlock: return "block";
    case MessageType::kGrapheneBlock: return "grblk";
    case MessageType::kGrapheneRequest: return "grblkreq";
    case MessageType::kGrapheneResponse: return "grblkresp";
    case MessageType::kCompactBlock: return "cmpctblock";
    case MessageType::kGetBlockTxn: return "getblocktxn";
    case MessageType::kBlockTxn: return "blocktxn";
    case MessageType::kXthinGetData: return "get_xthin";
    case MessageType::kXthinBlock: return "xthinblock";
    case MessageType::kMempoolSyncOffer: return "mpsync";
    case MessageType::kMempoolSyncRequest: return "mpsyncreq";
    case MessageType::kMempoolSyncResponse: return "mpsyncresp";
    case MessageType::kReconcileOffer: return "rcnoffer";
    case MessageType::kReconcileRequest: return "rcnreq";
    case MessageType::kReconcileResponse: return "rcnresp";
    case MessageType::kReconcileFetch: return "rcnfetch";
    case MessageType::kReconcileFetchResponse: return "rcnfetchresp";
    case MessageType::kRatelessChunk: return "rlchunk";
    case MessageType::kRatelessNeed: return "rlneed";
    case MessageType::kDaemonHello: return "hello";
    case MessageType::kDaemonBye: return "bye";
    case MessageType::kDaemonError: return "error";
  }
  return "unknown";
}

std::optional<MessageType> command_from_name(std::string_view name) noexcept {
  // The message vocabulary is small and framing is not the hot path (one
  // lookup per message, against payloads of KBs), so a linear sweep over the
  // enum beats maintaining a parallel table that can drift.
  for (std::uint8_t t = 0; t <= static_cast<std::uint8_t>(MessageType::kDaemonError);
       ++t) {
    const auto type = static_cast<MessageType>(t);
    if (command_name(type) == name) return type;
  }
  return std::nullopt;
}

}  // namespace graphene::net
