// In-memory peer channel with exact byte accounting.
//
// The Monte Carlo harness routes every protocol message through a Channel so
// each experiment reports the bytes a real socket pair would have exchanged,
// split by direction and message type.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/message.hpp"

namespace graphene::obs {
class Registry;
}  // namespace graphene::obs

namespace graphene::net {

enum class Direction : std::uint8_t { kSenderToReceiver, kReceiverToSender };

class Channel {
 public:
  /// Enqueues a message and records its size. Returns a reference to the
  /// stored message (valid until the next call that mutates the channel).
  const Message& send(Direction dir, Message msg);

  /// Total bytes carried in `dir`, including envelopes.
  [[nodiscard]] std::size_t bytes(Direction dir) const noexcept;

  /// Total payload bytes (without envelopes) in `dir` — the quantity the
  /// paper's figures plot.
  [[nodiscard]] std::size_t payload_bytes(Direction dir) const noexcept;

  /// Payload bytes per message type across both directions.
  [[nodiscard]] std::map<MessageType, std::size_t> payload_by_type() const;

  [[nodiscard]] std::size_t message_count() const noexcept { return log_.size(); }
  [[nodiscard]] const std::vector<std::pair<Direction, Message>>& log() const noexcept {
    return log_;
  }

  void reset();

  /// Streams every subsequent send into per-type byte histograms
  /// (`net_message_bytes{msg,dir}`) and a message counter on `reg`. Null
  /// detaches. Not owned; must outlive the channel's sends.
  void set_registry(obs::Registry* reg) noexcept { reg_ = reg; }

 private:
  std::vector<std::pair<Direction, Message>> log_;
  std::size_t bytes_[2] = {0, 0};
  std::size_t payload_[2] = {0, 0};
  obs::Registry* reg_ = nullptr;
};

}  // namespace graphene::net
