// Borrow-not-copy wire readers.
//
// Every copying deserializer in the library materializes vectors (filter
// words, IBLT cells, digest lists) out of the input buffer. The views here
// are their zero-copy twins: parse() walks the same wire layout with the
// same bounded-read validation, but records util::ByteView spans into the
// caller's buffer instead of allocating — the parsed message borrows the
// frame it arrived in. materialize() re-runs the copying deserializer over
// the recorded extent, which pins the two code paths to identical bytes.
//
// Validation contract: views enforce the full *structural* rule set (caps,
// canonical flags, claimed-size-vs-buffer bounds), so for every type except
// GolombSet a view accepts a byte string iff the copying deserializer does,
// and consumes exactly the same extent. GolombSetView is documented as a
// structural superset: the copying path additionally decodes the coded
// stream end-to-end (semantic validation a borrow cannot do for free), so
// view-accepted golomb bytes may still be rejected on materialize().
// fuzz/fuzz_zero_copy_reader.cpp holds both ends to this contract.
//
// Views alias the buffer handed to parse(): they are valid only while that
// buffer outlives them, and are meant for stack-scoped decode paths (frame
// handler → view → consume), never for storage.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "bloom/bloom_filter.hpp"
#include "bloom/cuckoo_filter.hpp"
#include "bloom/golomb_set.hpp"
#include "chain/block.hpp"
#include "daemon/wire.hpp"
#include "graphene/messages.hpp"
#include "iblt/iblt.hpp"
#include "iblt/kv_iblt.hpp"
#include "iblt/strata_estimator.hpp"
#include "net/message.hpp"
#include "reconcile/graphene_backend.hpp"
#include "reconcile/rateless_backend.hpp"
#include "util/bytes.hpp"
#include "util/wire_limits.hpp"

namespace graphene::net::views {

// --- leaf container views ----------------------------------------------------

struct BloomFilterView {
  std::uint64_t n_bits = 0;
  std::uint8_t k_byte = 0;  ///< raw strategy/k tag (0xC0|k = blocked)
  std::uint64_t seed = 0;
  util::ByteView bits;  ///< packed filter payload, (n_bits + 7) / 8 bytes
  util::ByteView span;  ///< full serialized extent

  static BloomFilterView parse(util::ByteReader& r);
  [[nodiscard]] bloom::BloomFilter materialize() const;
};

struct GolombSetView {
  std::uint64_t n = 0;
  std::uint8_t rice_param = 0;
  std::uint64_t seed = 0;
  std::uint64_t bit_count = 0;
  util::ByteView coded;  ///< rice-coded stream, (bit_count + 7) / 8 bytes
  util::ByteView span;

  /// Structural superset of GolombSet::deserialize — see file comment.
  static GolombSetView parse(util::ByteReader& r);
  [[nodiscard]] bloom::GolombSet materialize() const;
};

struct CuckooFilterView {
  std::uint64_t buckets = 0;
  std::uint8_t fp_bits = 0;
  std::uint64_t seed = 0;
  util::ByteView stash;  ///< u16 LE fingerprints
  util::ByteView table;  ///< bit-packed fingerprint payload
  util::ByteView span;

  static CuckooFilterView parse(util::ByteReader& r);
  [[nodiscard]] bloom::CuckooFilter materialize() const;
};

struct IbltView {
  std::uint64_t cell_count = 0;
  std::uint32_t k = 0;
  std::uint64_t seed = 0;
  util::ByteView cells;  ///< cell_count records of i32|u64|u32
  util::ByteView span;

  static IbltView parse(util::ByteReader& r);
  [[nodiscard]] iblt::Iblt materialize() const;
};

struct KvIbltView {
  std::uint64_t cell_count = 0;
  std::uint32_t k = 0;
  std::uint64_t seed = 0;
  util::ByteView cells;  ///< cell_count records of i32|u64|u64|u32
  util::ByteView span;

  static KvIbltView parse(util::ByteReader& r);
  [[nodiscard]] iblt::KvIblt materialize() const;
};

struct StrataEstimatorView {
  std::uint8_t stratum_count = 0;
  util::ByteView strata;  ///< concatenated serialized Iblt strata
  util::ByteView span;

  static StrataEstimatorView parse(util::ByteReader& r);
  [[nodiscard]] iblt::StrataEstimator materialize() const;
};

// --- core protocol message views ---------------------------------------------

struct GrapheneBlockMsgView {
  chain::BlockHeader header{};  ///< fixed 80-byte record, copied (not bulk)
  std::uint64_t n = 0;
  std::uint64_t shortid_salt = 0;
  BloomFilterView filter_s;
  IbltView iblt_i;
  util::ByteView span;

  static GrapheneBlockMsgView parse(util::ByteReader& r);
  [[nodiscard]] core::GrapheneBlockMsg materialize() const;
};

struct GrapheneRequestMsgView {
  std::uint64_t z = 0;
  std::uint64_t b = 0;
  std::uint64_t y_star = 0;
  double fpr_r = 1.0;
  bool reversed = false;
  BloomFilterView filter_r;
  util::ByteView span;

  static GrapheneRequestMsgView parse(util::ByteReader& r);
  [[nodiscard]] core::GrapheneRequestMsg materialize() const;
};

struct GrapheneResponseMsgView {
  std::uint64_t missing_count = 0;
  util::ByteView missing;  ///< concatenated full-tx records
  IbltView iblt_j;
  bool has_filter_f = false;
  BloomFilterView filter_f;  ///< valid only when has_filter_f
  util::ByteView span;

  static GrapheneResponseMsgView parse(util::ByteReader& r);
  [[nodiscard]] core::GrapheneResponseMsg materialize() const;
};

struct RepairRequestMsgView {
  std::uint64_t id_count = 0;
  util::ByteView short_ids;  ///< id_count u64 LE words
  util::ByteView span;

  static RepairRequestMsgView parse(util::ByteReader& r);
  [[nodiscard]] core::RepairRequestMsg materialize() const;
};

struct RepairResponseMsgView {
  std::uint64_t tx_count = 0;
  util::ByteView txns;  ///< concatenated full-tx records
  util::ByteView span;

  static RepairResponseMsgView parse(util::ByteReader& r);
  [[nodiscard]] core::RepairResponseMsg materialize() const;
};

// --- reconcile backend message views -----------------------------------------

struct OfferView {
  std::uint64_t count = 0;
  std::uint64_t salt = 0;
  std::uint64_t set_checksum = 0;
  BloomFilterView filter;
  IbltView correction;
  util::ByteView span;

  static OfferView parse(util::ByteReader& r);
  [[nodiscard]] reconcile::Offer materialize() const;
};

struct RequestView {
  std::uint64_t candidate_count = 0;
  std::uint64_t b = 0;
  std::uint64_t y_star = 0;
  double fpr_r = 1.0;
  bool reversed = false;
  BloomFilterView filter;
  util::ByteView span;

  static RequestView parse(util::ByteReader& r);
  [[nodiscard]] reconcile::Request materialize() const;
};

struct ResponseView {
  std::uint64_t missing_count = 0;
  util::ByteView missing;  ///< missing_count 32-byte digests
  IbltView correction;
  bool has_compensation = false;
  BloomFilterView compensation;  ///< valid only when has_compensation
  util::ByteView span;

  static ResponseView parse(util::ByteReader& r);
  [[nodiscard]] reconcile::Response materialize() const;
};

struct FetchRequestView {
  std::uint64_t id_count = 0;
  util::ByteView short_ids;  ///< id_count u64 LE words
  util::ByteView span;

  static FetchRequestView parse(util::ByteReader& r);
  [[nodiscard]] reconcile::FetchRequest materialize() const;
};

struct FetchResponseView {
  std::uint64_t item_count = 0;
  util::ByteView items;  ///< item_count 32-byte digests
  util::ByteView span;

  static FetchResponseView parse(util::ByteReader& r);
  [[nodiscard]] reconcile::FetchResponse materialize() const;
};

struct RatelessChunkView {
  std::uint64_t start = 0;
  std::uint64_t host_count = 0;
  std::uint64_t salt = 0;
  std::uint64_t set_checksum = 0;
  std::uint64_t symbol_count = 0;
  util::ByteView symbols;  ///< symbol_count records of u64|u64|32-byte sum
  util::ByteView span;

  static RatelessChunkView parse(util::ByteReader& r);
  [[nodiscard]] reconcile::RatelessChunk materialize() const;
};

struct RatelessNeedView {
  std::uint64_t next_index = 0;
  std::uint64_t count = 0;
  util::ByteView span;

  static RatelessNeedView parse(util::ByteReader& r);
  [[nodiscard]] reconcile::RatelessNeed materialize() const;
};

// --- daemon control-plane views ----------------------------------------------

struct HelloMsgView {
  std::uint32_t version = 0;
  std::uint8_t backend = 0;
  std::uint64_t item_count = 0;
  util::ByteView span;

  static HelloMsgView parse(util::ByteReader& r);
  [[nodiscard]] daemon::HelloMsg materialize() const;
};

struct ByeMsgView {
  std::uint8_t ok = 0;
  std::uint32_t rounds = 0;
  util::ByteView span;

  static ByeMsgView parse(util::ByteReader& r);
  [[nodiscard]] daemon::ByeMsg materialize() const;
};

struct ErrorMsgView {
  std::uint8_t code = 0;
  util::ByteView detail;  ///< bounded UTF-8-ish text, borrowed
  util::ByteView span;

  static ErrorMsgView parse(util::ByteReader& r);
  [[nodiscard]] daemon::ErrorMsg materialize() const;
};

// --- frame view --------------------------------------------------------------

/// Zero-copy twin of FrameReader::next() over a complete buffer: validates
/// the 24-byte envelope (magic, strict NUL padding, known command, length
/// cap, double-SHA checksum) and borrows the payload in place.
struct FrameView {
  MessageType type = MessageType::kGrapheneBlock;
  util::ByteView payload;
  util::ByteView span;  ///< envelope + payload extent

  /// Parses one frame at the front of `data`. Returns nullopt when `data`
  /// ends mid-frame (more bytes needed); throws util::DeserializeError on a
  /// malformed envelope — the exact split FrameReader::next() makes.
  static std::optional<FrameView> parse(
      util::ByteView data,
      std::uint64_t max_payload = util::wire::kMaxFramePayload);
  [[nodiscard]] Message materialize() const;
};

}  // namespace graphene::net::views
